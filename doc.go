// Package stoneage is a complete Go implementation of "Stone Age
// Distributed Computing" (Emek, Smula, Wattenhofer; PODC 2013): the
// networked-finite-state-machine (nFSM) model, the Section 3
// synchronizer and multi-letter-query compilers, the Section 4 MIS
// protocol of Figure 1, the Section 5 tree 3-coloring protocol, the
// Section 6 rLBA equivalence in both directions, the classical
// message-passing and beeping baselines the paper compares against, and
// an experiment harness that regenerates an empirical analogue of every
// theorem.
//
// The implementation lives under internal/; see DESIGN.md for the system
// inventory and the compiled execution core's architecture, BENCH_1.json
// for the tracked benchmark measurements (regenerate with `make bench`),
// and examples/ for runnable entry points. The benchmarks in
// bench_test.go regenerate one measurement per experiment.
package stoneage
