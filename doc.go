// Package stoneage is a complete Go implementation of "Stone Age
// Distributed Computing" (Emek, Smula, Wattenhofer; PODC 2013): the
// networked-finite-state-machine (nFSM) model, the Section 3
// synchronizer and multi-letter-query compilers, the Section 4 MIS
// protocol of Figure 1, the Section 5 tree 3-coloring protocol, the
// Section 6 rLBA equivalence in both directions, the classical
// message-passing and beeping baselines the paper compares against, and
// an experiment harness that regenerates an empirical analogue of every
// theorem.
//
// The implementation lives under internal/; see DESIGN.md for the system
// inventory, the compiled execution core's architecture, the
// asynchronous scheduler (a ladder event queue with pooled per-edge
// delivery FIFOs and silent-chain parking that replays skipped steps
// bit-identically to the reference engine), the campaign layer, the
// protocol registry, the dynamic-network layer, the
// unreliable-channel axis and the loss-tolerant αβ synchronizer,
// the bit-plane synchronous backend (per-node state and clamped
// counters packed into SoA bit-planes, 64 nodes per word, selected by
// SyncConfig.Backend or automatically at n ≥ 2¹⁶ and bit-identical to
// the flat executor), the streamed graph builders
// (graph.EdgeStream → BuildCSR, which reach n = 10⁶ without ever
// materializing an edge list), the distributed-sweep dispatcher
// (internal/dispatch: `stonesim sweep -procs N` shards a campaign's
// cells over re-exec'd worker processes with fsync'd per-cell spill
// checkpoints, lease-based crash recovery and a coordinator-less
// claim-directory mode, merging byte-identically to the in-process
// run at any shard count), BENCH_10.json for
// the tracked benchmark measurements (regenerate with `make bench`,
// which also warns on >15% ns/op regressions against the previous
// snapshot — in CI the warnings become workflow annotations), and
// examples/ for runnable entry points. The benchmarks in bench_test.go
// regenerate one measurement per experiment. Tight run loops — the
// campaign workers, `stonesim run -trials`, the benchmarks — reuse
// per-worker scratch arenas (engine.Scratch / protocol.Scratch), which
// makes steady-state execution allocation-free; testing.AllocsPerRun
// guards in internal/engine pin that in `make check`.
//
// Every protocol — the paper's nFSM machines (internal/mis,
// internal/coloring, internal/degcolor), the extended-model matching
// (internal/matching), the self-stabilizing MIS (internal/ssmis), and
// the classical baselines (internal/baseline) — self-registers a
// capability-typed descriptor in the unified registry internal/protocol
// (machine constructor, output decoder, validator, parameter domains,
// shared compile cache). Clients resolve behavior through the registry,
// never through concrete packages: `stonesim protocols` lists the set,
// `stonesim -protocol <name>` runs any entry, campaign specs sweep any
// subset, and adding a protocol is a single protocol.Register call.
//
// Networks need not be static: internal/scenario schedules timed
// mutation batches (edge churn, region crashes and restarts, staggered
// wake-up) that every engine entry point applies mid-run, carrying
// surviving node and port state across topology re-binds, resetting
// perturbed nodes per capability-resolved policies, validating outputs
// against the final graph, and reporting a recovery-time metric. A
// dynamic reference engine pins the fast one differentially, exactly as
// in the static case.
//
// Channels need not be reliable either: internal/channel composes
// deterministic content-seeded models of message loss, duplication,
// bounded reordering and in-alphabet corruption that both engine pairs
// apply to every transmission (bit-identically, via one shared
// expansion helper), plus Byzantine node behaviors (silent, stuck-at,
// babbling) that replace a node's machine and are excluded from output
// validation on the honest-induced subgraph. Protocols declare measured
// tolerances as capabilities with window bounds where relevant
// (`stonesim protocols` prints them); docs/robustness-matrix.md records
// which protocol survives, degrades or breaks under each pathology and
// names the test behind each cell. For lossy links the async engine
// offers a second compilation mode: the loss-tolerant αβ hybrid
// synchronizer (internal/synchro CompileTolerant) re-pulses the current
// generation's letter after a bounded stall timeout, turning the
// α-synchronizer's loss deadlock into mere delay — select it with
// `stonesim -engine async -synchro tolerant` or a campaign `engines`
// axis (sync | sync-packed | async | async-tolerant | async-voted;
// sync-packed forces the bit-plane backend and must aggregate
// bit-identically to sync). A third tier hardens the hybrid against
// corruption and Byzantine silence: the voted αβv synchronizer
// (internal/synchro CompileVoted, `-synchro voted`) commits a
// neighbor's letter only when it holds k of the last 2k−1 receipts
// (sent as k-copy bursts, so reliable-link time-units stay
// bit-identical to αβ), evicts an edge after a bounded run of
// unanswered re-pulses at fully decayed backoff cadence (recorded in
// the run; the permanently-ε port unsticks the pausing feature a
// silent Byzantine neighbor would deadlock), and gates re-pulses with
// a per-edge multiplicative backoff reset by any receipt.
//
// Statistical claims are measured as campaigns: internal/campaign runs
// the declarative cross product protocol × scenario × graph family ×
// size with many trials per cell on a parallel worker pool, with
// per-trial deterministic seeds (aggregates are identical at every
// worker count) — or sharded across worker processes with
// `-procs N -workdir D`, where finished cells are durable and an
// interrupted sweep resumes without re-running them. Run one with
//
//	go run ./cmd/stonesim sweep -spec examples/specs/mis-families.json
//
// which reproduces an MIS round-complexity table over five sparse
// topology families (G(n,p), random geometric, preferential-attachment
// power law, small-world rewiring, torus) at three sizes with 32 trials
// per cell, and emits JSON/CSV via -json/-csv
// (examples/specs/all-protocols.json sweeps every registered protocol;
// examples/specs/churn-mis.json measures recovery under churn, crashes
// and staggered wake-up; examples/specs/lossy-mis.json measures
// robustness under unreliable channels and Byzantine nodes;
// examples/specs/hostile-mis.json measures the voted tier against
// corruption and Byzantine silence — see
// examples/specs/README.md for the spec format). `make check` runs the
// CI gate (also run on every push and pull request by
// .github/workflows/ci.yml): gofmt, go vet, the race-detector test
// suite, the allocation-regression and ladder-queue suites, the
// registry conformance suite, the smoke, all-protocols,
// churn-recovery, channel-robustness and hostile-channel campaigns,
// and the distributed-sweep gate (the smoke spec sharded over 3 worker
// processes must emit bytes identical to the single-process run).
package stoneage
