module stoneage

go 1.24.0
