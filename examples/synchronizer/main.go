// Synchronizer shows Theorem 3.1 at work: the same locally synchronous
// protocol (the MIS machine of Figure 1) is compiled once and executed
// under increasingly hostile asynchronous adversaries — including one
// that destroys messages by overwriting ports — and the normalized
// run-time stays within a constant factor of the synchronous round count.
package main

import (
	"fmt"
	"log"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/mis"
	"stoneage/internal/synchro"
	"stoneage/internal/xrand"
)

func main() {
	const n = 48
	g := graph.GnpConnected(n, 4.0/float64(n), xrand.New(5))

	sync, err := mis.SolveSync(g, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synchronous reference: %d rounds on n=%d, m=%d\n\n", sync.Rounds, g.N(), g.M())

	compiled, err := synchro.CompileRound(mis.Protocol())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled protocol: %d-letter alphabet, ≤%d steps per simulation phase\n\n",
		compiled.NumLetters(), compiled.PhaseSteps())

	for _, name := range []string{"sync", "uniform", "skew", "overwriter", "drift"} {
		adv := engine.NamedAdversaries(11)[name]
		run, err := mis.SolveAsync(g, 1, adv, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.IsMaximalIndependentSet(run.InSet); err != nil {
			log.Fatalf("%s: invalid MIS: %v", name, err)
		}
		fmt.Printf("  adversary %-10s → valid MIS, %7.0f time units (%.0f per sync round), %d messages lost\n",
			name, run.TimeUnits, run.TimeUnits/float64(sync.Rounds), run.Lost)
	}
	fmt.Println("\nper-round cost is a constant (Theorem 3.1), independent of the adversary.")
}
