// Lbapower demonstrates the computational-power result of Section 6: a
// path network of identical finite state machines decides the canonical
// context-sensitive language aⁿbⁿcⁿ — a language no single finite
// automaton (or pushdown automaton) can decide — by simulating a linear
// bounded automaton via the Lemma 6.2 compiler. The network as a whole is
// exactly as powerful as a randomized LBA.
package main

import (
	"fmt"
	"log"
	"strings"

	"stoneage/internal/lba"
)

func main() {
	tm := lba.ABC()
	words := []string{
		"abc", "aabbcc", "aaabbbccc",
		"aabbc", "abcc", "cab", "aabc",
	}
	fmt.Println("deciding the context-sensitive language { aⁿbⁿcⁿ : n ≥ 1 }")
	fmt.Println("on a path of identical constant-size FSMs (Lemma 6.2):")
	fmt.Println()
	for _, w := range words {
		input := make([]lba.Symbol, len(w))
		for i, c := range w {
			switch c {
			case 'a':
				input[i] = lba.SymA
			case 'b':
				input[i] = lba.SymB
			default:
				input[i] = lba.SymC
			}
		}
		run, err := lba.RunOnPath(tm, input, 1, 0)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "reject"
		if run.Accepted {
			verdict = "ACCEPT"
		}
		fmt.Printf("  %-12s → %-6s  (%d FSM nodes, %d rounds)\n", w, verdict, len(w), run.Rounds)
	}

	fmt.Println()
	fmt.Println("scaling: the network pays O(1) rounds per simulated machine step")
	for n := 2; n <= 16; n *= 2 {
		w := strings.Repeat("a", n) + strings.Repeat("b", n) + strings.Repeat("c", n)
		input := make([]lba.Symbol, len(w))
		for i, c := range w {
			switch c {
			case 'a':
				input[i] = lba.SymA
			case 'b':
				input[i] = lba.SymB
			default:
				input[i] = lba.SymC
			}
		}
		direct, err := tm.Run(input, 1, 0)
		if err != nil {
			log.Fatal(err)
		}
		run, err := lba.RunOnPath(tm, input, 1, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%2d: %5d TM steps → %6d network rounds (%.2f rounds/step)\n",
			n, direct.Steps, run.Rounds, float64(run.Rounds)/float64(direct.Steps))
	}
}
