// Sensornet assigns TDMA-style transmission slots to a tree-structured
// sensor network with the paper's Section 5 protocol: a proper 3-coloring
// of the (undirected) routing tree gives each sensor a slot in which no
// tree neighbor transmits. The sensors are stone-age devices — constant
// memory, constant message vocabulary, no identifiers — and the protocol
// still finishes in O(log n) rounds.
package main

import (
	"fmt"
	"log"

	"stoneage/internal/coloring"
	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

func main() {
	const n = 200
	g := graph.RandomTree(n, xrand.New(99))
	fmt.Printf("sensor routing tree: %d sensors, max degree %d\n", n, g.MaxDegree())

	run, err := coloring.SolveSync(g, 7, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.IsProperColoring(run.Colors, 3); err != nil {
		log.Fatal(err)
	}
	slots := [4]int{}
	for _, c := range run.Colors {
		slots[c]++
	}
	fmt.Printf("slot assignment in %d rounds (%d phases): slot1=%d slot2=%d slot3=%d\n",
		run.Rounds, run.Phases, slots[1], slots[2], slots[3])
	fmt.Println("no two adjacent sensors share a slot — collision-free TDMA schedule.")

	// The same protocol survives a fully asynchronous deployment where
	// the radio stack delays and even drops messages. (A smaller cluster
	// keeps the compiled simulation quick; the adversary makes half the
	// sensors step two orders of magnitude faster than the rest.)
	small := graph.RandomTree(48, xrand.New(100))
	async, err := coloring.SolveAsync(small, 7, engine.Overwriter{Seed: 3}, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	if err := small.IsProperColoring(async.Colors, 3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("asynchronous re-run (48 sensors, message-dropping adversary): valid schedule in %.0f time units\n",
		async.TimeUnits)
}
