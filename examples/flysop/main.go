// Flysop models the biological motivation from the paper's introduction:
// during the development of a fly's nervous system, sensory organ
// precursor (SOP) cells are selected so that every cell either becomes an
// SOP or neighbors one, and no two SOPs are adjacent — Afek et al.
// (Science 2011) showed this process is exactly maximal independent set.
//
// Cells sit on an epithelial lattice and inhibit neighbors within a small
// radius via Delta/Notch signalling; the stone-age model matches the
// biology: constant-size internal state (gene expression), a constant
// protein vocabulary (the alphabet), and concentration sensing that only
// distinguishes a few levels (one-two-many counting).
package main

import (
	"fmt"
	"log"

	"stoneage/internal/graph"
	"stoneage/internal/mis"
)

func main() {
	const rows, cols = 12, 16
	g := graph.ProneuralLattice(rows, cols)
	fmt.Printf("proneural cluster: %d cells, inhibition radius 2 (%d signalling pairs)\n", g.N(), g.M())

	run, err := mis.SolveSync(g, 2026, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.IsMaximalIndependentSet(run.InSet); err != nil {
		log.Fatal(err)
	}

	sops := 0
	for _, in := range run.InSet {
		if in {
			sops++
		}
	}
	fmt.Printf("SOP selection finished in %d signalling rounds: %d SOPs\n\n", run.Rounds, sops)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if run.InSet[r*cols+c] {
				fmt.Print("◉ ")
			} else {
				fmt.Print("· ")
			}
		}
		fmt.Println()
	}
	fmt.Println("\n◉ = sensory organ precursor; every · cell is inhibited by an adjacent ◉.")
}
