package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// captureMain runs main() with stdout captured: the example is a
// straight-line program that terminates the process on any failure, so
// reaching the end with the expected report shape is the smoke
// criterion.
func captureMain(t *testing.T) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	main()
	w.Close()
	return <-done
}

func TestSmoke(t *testing.T) {
	out := captureMain(t)
	for _, want := range []string{
		"valid MIS of size",
		"synchronous",
		"asynchronous",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
