// Quickstart: compute a maximal independent set on a random graph with
// the stone-age MIS protocol (Figure 1 of the paper), first in the
// locally synchronous environment and then fully asynchronously through
// the Theorem 3.1/3.4 synchronizer.
package main

import (
	"fmt"
	"log"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/mis"
	"stoneage/internal/xrand"
)

func main() {
	const (
		n    = 64
		seed = 42
	)
	g := graph.GnpConnected(n, 4.0/float64(n), xrand.New(seed))
	fmt.Printf("random graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDegree())

	// Synchronous run: seven states, seven letters, counting only
	// "zero or at least one" (b = 1) — and still O(log² n) rounds.
	sync, err := mis.SolveSync(g, seed, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.IsMaximalIndependentSet(sync.InSet); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synchronous:  valid MIS of size %d in %d rounds\n", count(sync.InSet), sync.Rounds)

	// Asynchronous run: the same protocol compiled through the
	// synchronizer, under an adversary that randomizes every step length
	// and delivery delay.
	async, err := mis.SolveAsync(g, seed, engine.UniformRandom{Seed: 7}, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.IsMaximalIndependentSet(async.InSet); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("asynchronous: valid MIS of size %d in %.0f time units (%d machine steps)\n",
		count(async.InSet), async.TimeUnits, async.Steps)
}

func count(mask []bool) int {
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}
