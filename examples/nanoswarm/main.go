// Nanoswarm exercises the repository's two extension protocols on a
// nano-robotics scenario. A swarm of identical constant-memory robots
// sits on a communication torus:
//
//  1. frequency assignment — each robot needs a radio slot distinct from
//     all four lattice neighbors: (Δ+1)-coloring with Δ = 4 under the
//     pure stone-age model (internal/degcolor);
//  2. buddy pairing — robots must pair up with a physical neighbor for a
//     cooperative task, leaving no two unpaired neighbors: maximal
//     matching under the extended model with targeted replies
//     (internal/matching), the modification the paper's introduction
//     flags as unavoidable.
package main

import (
	"fmt"
	"log"

	"stoneage/internal/degcolor"
	"stoneage/internal/graph"
	"stoneage/internal/matching"
)

func main() {
	const side = 12
	g := graph.Torus(side, side)
	fmt.Printf("nano-swarm on a %d×%d torus: %d robots, %d links\n\n", side, side, g.N(), g.M())

	colors, err := degcolor.SolveSync(g, 4, 11, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.IsProperColoring(colors.Colors, 5); err != nil {
		log.Fatal(err)
	}
	hist := [6]int{}
	for _, c := range colors.Colors {
		hist[c]++
	}
	fmt.Printf("radio slots in %d rounds: slot counts %v (5-slot palette, Δ=4)\n",
		colors.Rounds, hist[1:])

	pairs, err := matching.Solve(g, 13, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.IsMaximalMatching(pairs.Mate); err != nil {
		log.Fatal(err)
	}
	paired := 0
	for _, m := range pairs.Mate {
		if m != -1 {
			paired++
		}
	}
	fmt.Printf("buddy pairing in %d rounds: %d of %d robots paired (maximal matching)\n",
		pairs.Rounds, paired, g.N())
	fmt.Println("\nevery unpaired robot has all neighbors paired; no slot clashes on any link.")
}
