# Tier-1 verification, CI checks and tracked benchmarks.

.PHONY: all build test check bench

all: build test

build:
	go build ./...

test:
	go test ./...

# check is the CI gate: static analysis, the full test suite under the
# race detector (the campaign runner and the sharded engine are the
# concurrency hot spots), and a short end-to-end campaign smoke run
# through the sweep CLI.
check: build
	go vet ./...
	go test -race ./...
	go run ./cmd/stonesim sweep -spec examples/specs/smoke.json -q -json /tmp/stonesim-smoke.json
	@echo "check: OK"

# bench regenerates BENCH_2.json from the tracked benchmark set
# (E1 MIS sync, E2 MIS async, E3 synchronizer overhead, E5 tree
# coloring, E9 nFSM-simulates-LBA, the engine ref-vs-compiled and
# per-step ablations, and the campaign sweep), with -benchmem. Override
# the output file or iteration count with BENCH_OUT / BENCH_TIME.
BENCH_OUT ?= BENCH_2.json
BENCH_TIME ?= 20x

bench:
	sh scripts/bench.sh $(BENCH_OUT) $(BENCH_TIME)
