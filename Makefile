# Tier-1 verification and tracked benchmarks.

.PHONY: all build test bench

all: build test

build:
	go build ./...

test:
	go test ./...

# bench regenerates BENCH_1.json from the tracked benchmark set
# (E1 MIS sync, E5 tree coloring, E9 nFSM-simulates-LBA, and the
# engine ref-vs-compiled ablation), with -benchmem. Override the output
# file or iteration count with BENCH_OUT / BENCH_TIME.
BENCH_OUT ?= BENCH_1.json
BENCH_TIME ?= 20x

bench:
	sh scripts/bench.sh $(BENCH_OUT) $(BENCH_TIME)
