# Tier-1 verification, CI checks and tracked benchmarks.

.PHONY: all build test check bench

all: build test

build:
	go build ./...

test:
	go test ./...

# check is the CI gate (run on every push/PR by
# .github/workflows/ci.yml): formatting (the whole module must be
# gofmt-clean, including the protocol registry package), static
# analysis, the full test suite under the race detector (the campaign
# runner and the sharded engine are the concurrency hot spots), the
# registry-driven protocol conformance suite, and short end-to-end
# campaign runs through the sweep CLI — the smoke spec, the spec that
# names every registered sweepable protocol, the dynamic-network
# recovery sweep, and the unreliable-channel robustness sweep (trials
# cut down for speed; every trial's output is still validated against
# its final graph, with Byzantine nodes excluded). The lossy spec
# carries the engine axis, so the gate exercises the sync engine, the
# α synchronizer and the loss-tolerant αβ hybrid on every channel; the
# hostile spec drives the same protocols through the voted αβv tier
# against corruption and Byzantine silence, where the αβ hybrid fails.
# The engine test line includes the bit-plane memory guard
# (TestPackedFootprint: packed run state stays under its bytes-per-node
# budget); the million-node benchmark itself is size-gated off
# single-core CI and runs via `make bench` on real hardware.
# The final block is the distributed-sweep gate: the smoke spec sharded
# over 3 worker processes (a fresh work directory, real re-exec'd
# `stonesim work` workers) must emit JSON and CSV byte-identical to the
# single-process run once -stripwall removes the machine-dependent
# wall-clock stats.
check: build
	@fmt_out="$$(gofmt -l .)"; if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	go vet ./...
	go test -race ./...
	go test ./internal/protocol -run TestConformance -count=1
	go test ./internal/engine -run 'TestAllocs|TestLadder|TestDelivPool|TestPackedFootprint' -count=1
	go run ./cmd/stonesim sweep -spec examples/specs/smoke.json -q -json /tmp/stonesim-smoke.json
	go run ./cmd/stonesim sweep -spec examples/specs/all-protocols.json -q
	go run ./cmd/stonesim sweep -spec examples/specs/churn-mis.json -q -trials 4
	go run ./cmd/stonesim sweep -spec examples/specs/lossy-mis.json -q -trials 4
	go run ./cmd/stonesim sweep -spec examples/specs/hostile-mis.json -q -trials 4
	rm -rf /tmp/stonesim-check-shard
	go run ./cmd/stonesim sweep -spec examples/specs/smoke.json -q -stripwall -json /tmp/stonesim-shard-1.json -csv /tmp/stonesim-shard-1.csv
	go run ./cmd/stonesim sweep -spec examples/specs/smoke.json -q -stripwall -procs 3 -workdir /tmp/stonesim-check-shard -json /tmp/stonesim-shard-3.json -csv /tmp/stonesim-shard-3.csv
	cmp /tmp/stonesim-shard-1.json /tmp/stonesim-shard-3.json
	cmp /tmp/stonesim-shard-1.csv /tmp/stonesim-shard-3.csv
	@echo "check: OK"

# bench regenerates BENCH_10.json from the tracked benchmark set
# (E1 MIS sync — including the streamed million-node bit-plane run
# where the host allows it — E2 MIS async, E3 synchronizer overhead, the αβ
# tolerant-synchronizer overhead, the voted αβv overhead (burst tax at
# TU-ratio 1.0 plus the adaptive-backoff re-pulse savings under skew),
# E5 tree coloring, E9 nFSM-simulates-LBA, the engine ref-vs-compiled
# and per-step ablations, the campaign sweep, the sharded-sweep
# dispatch overhead at 1/2/4 procs, and the registry-generated protocol
# matrix), with -benchmem, then diffs ns/op against the previous
# BENCH_N.json and warns on >15% regressions. Override the output file
# or iteration count with BENCH_OUT / BENCH_TIME, the comparison
# baseline with BENCH_PREV (BENCH_PREV=none skips it).
BENCH_OUT ?= BENCH_10.json
BENCH_TIME ?= 20x

bench:
	sh scripts/bench.sh $(BENCH_OUT) $(BENCH_TIME)
