# Tier-1 verification, CI checks and tracked benchmarks.

.PHONY: all build test check bench

all: build test

build:
	go build ./...

test:
	go test ./...

# check is the CI gate (run on every push/PR by
# .github/workflows/ci.yml): formatting (the whole module must be
# gofmt-clean, including the protocol registry package), static
# analysis, the full test suite under the race detector (the campaign
# runner and the sharded engine are the concurrency hot spots), the
# registry-driven protocol conformance suite, and short end-to-end
# campaign runs through the sweep CLI — the smoke spec, the spec that
# names every registered sweepable protocol, the dynamic-network
# recovery sweep, and the unreliable-channel robustness sweep (trials
# cut down for speed; every trial's output is still validated against
# its final graph, with Byzantine nodes excluded). The lossy spec
# carries the engine axis, so the gate exercises the sync engine, the
# α synchronizer and the loss-tolerant αβ hybrid on every channel.
# The engine test line includes the bit-plane memory guard
# (TestPackedFootprint: packed run state stays under its bytes-per-node
# budget); the million-node benchmark itself is size-gated off
# single-core CI and runs via `make bench` on real hardware.
check: build
	@fmt_out="$$(gofmt -l .)"; if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	go vet ./...
	go test -race ./...
	go test ./internal/protocol -run TestConformance -count=1
	go test ./internal/engine -run 'TestAllocs|TestLadder|TestDelivPool|TestPackedFootprint' -count=1
	go run ./cmd/stonesim sweep -spec examples/specs/smoke.json -q -json /tmp/stonesim-smoke.json
	go run ./cmd/stonesim sweep -spec examples/specs/all-protocols.json -q
	go run ./cmd/stonesim sweep -spec examples/specs/churn-mis.json -q -trials 4
	go run ./cmd/stonesim sweep -spec examples/specs/lossy-mis.json -q -trials 4
	@echo "check: OK"

# bench regenerates BENCH_8.json from the tracked benchmark set
# (E1 MIS sync — including the streamed million-node bit-plane run
# where the host allows it — E2 MIS async, E3 synchronizer overhead, the αβ
# tolerant-synchronizer overhead, E5 tree coloring, E9
# nFSM-simulates-LBA, the engine ref-vs-compiled and per-step
# ablations, the campaign sweep, and the registry-generated protocol
# matrix), with -benchmem, then diffs ns/op against the previous
# BENCH_N.json and warns on >15% regressions. Override the output file
# or iteration count with BENCH_OUT / BENCH_TIME, the comparison
# baseline with BENCH_PREV (BENCH_PREV=none skips it).
BENCH_OUT ?= BENCH_8.json
BENCH_TIME ?= 20x

bench:
	sh scripts/bench.sh $(BENCH_OUT) $(BENCH_TIME)
