package stoneage

// One benchmark per experiment in DESIGN.md's index (E1–E12), plus the
// ablation benches the design calls out (single-letter counting fast
// path, synchronizer phase cost, engine-vs-sweep). Each bench regenerates
// the core measurement of its experiment; `go test -bench=.` therefore
// reproduces the full evaluation in miniature, and the reported ns/op
// track the simulation cost of each subsystem.

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"stoneage/internal/campaign"
	"stoneage/internal/channel"
	"stoneage/internal/coloring"
	"stoneage/internal/degcolor"
	"stoneage/internal/dispatch"
	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/lba"
	"stoneage/internal/matching"
	"stoneage/internal/mis"
	"stoneage/internal/protocol"
	"stoneage/internal/synchro"
	"stoneage/internal/xrand"

	// Link the full protocol set so BenchmarkProtocolMatrix covers it.
	_ "stoneage/internal/protocol/std"
)

// BenchmarkMISSync is E1: synchronous MIS across network sizes. The
// million-node sub-benchmark is the bit-plane acceptance run: the graph
// is never materialized (streamed G(n,p) → CSR) and the run executes on
// the packed backend, with resident memory reported per node. It is
// gated off single-core hosts (the 1-core CI runner) because generating
// and sweeping 10⁶ nodes there starves the rest of the suite; set
// STONEAGE_BENCH_LARGE=1 to force it anywhere.
func BenchmarkMISSync(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		g := graph.GnpConnected(n, 4.0/float64(n), xrand.New(uint64(n)))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				run, err := mis.SolveSync(g, uint64(i), 0)
				if err != nil {
					b.Fatal(err)
				}
				rounds = run.Rounds
			}
			l := math.Log2(float64(n))
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(rounds)/(l*l), "rounds/log²n")
		})
	}
	b.Run("n=1_000_000", func(b *testing.B) {
		if runtime.GOMAXPROCS(0) < 2 && os.Getenv("STONEAGE_BENCH_LARGE") == "" {
			b.Skip("million-node run skipped on a single-core host (STONEAGE_BENCH_LARGE=1 forces it)")
		}
		const n = 1_000_000
		csr, err := graph.BuildCSR(graph.GnpConnectedStream(n, 4.0/n, uint64(n)))
		if err != nil {
			b.Fatal(err)
		}
		prog := engine.CompileMachine(mis.Protocol()).BindCSR(csr)
		scratch := engine.NewScratch()
		b.ResetTimer()
		rounds := 0
		for i := 0; i < b.N; i++ {
			res, err := prog.RunSyncReusing(engine.SyncConfig{Seed: uint64(i), Backend: engine.BackendPacked}, scratch)
			if err != nil {
				b.Fatal(err)
			}
			rounds = res.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
		l := math.Log2(float64(n))
		b.ReportMetric(float64(rounds)/(l*l), "rounds/log²n")
		if rss := vmRSSBytes(); rss > 0 {
			b.ReportMetric(float64(rss)/n, "RSS-B/node")
		}
	})
}

// vmRSSBytes reads the process's resident set size from
// /proc/self/status. Returns 0 where the file is absent (non-Linux) so
// callers just omit the metric.
func vmRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// BenchmarkMISAsync is E2: the compiled MIS protocol under adversaries,
// run the way the stack runs trials in anger — the protocol bound once
// (the synchronizer compilation is cached in the registry) and a
// per-worker scratch arena reused across runs, so steady-state
// execution through the ladder-queue event core is allocation-free.
func BenchmarkMISAsync(b *testing.B) {
	g := graph.GnpConnected(32, 0.125, xrand.New(3))
	d, err := protocol.Lookup("mis")
	if err != nil {
		b.Fatal(err)
	}
	bound, err := d.Bind(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"sync", "uniform", "overwriter"} {
		adv := engine.NamedAdversaries(9)[name]
		b.Run(name, func(b *testing.B) {
			scratch := protocol.NewScratch()
			tu := 0.0
			for i := 0; i < b.N; i++ {
				run, err := bound.RunAsyncReusing(protocol.AsyncConfig{Seed: uint64(i), Adversary: adv}, scratch)
				if err != nil {
					b.Fatal(err)
				}
				tu = run.TimeUnits
			}
			b.ReportMetric(tu, "time-units")
		})
	}
}

// BenchmarkChannelOverhead measures the unreliable-channel axis tax on
// the asynchronous hot loop. The reliable sub-benchmark runs with a nil
// model — the exact code path every channel-free caller takes, so its
// ns/op pins the axis's zero-overhead claim against BenchmarkMISAsync
// in the previous snapshot. The dup and stack sub-benchmarks price the
// per-transmission Expand call for a single policy and a composed one
// (both pathologies the compiled protocol tolerates, so every variant
// converges and the runs stay comparable).
func BenchmarkChannelOverhead(b *testing.B) {
	g := graph.GnpConnected(32, 0.125, xrand.New(3))
	d, err := protocol.Lookup("mis")
	if err != nil {
		b.Fatal(err)
	}
	bound, err := d.Bind(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	models := []struct {
		name  string
		model channel.Model
	}{
		{"reliable", nil},
		{"dup", channel.Duplicate{Rate: 0.3, MaxCopies: 3, Seed: 11}},
		{"stack", channel.Stack{
			channel.Duplicate{Rate: 0.3, MaxCopies: 3, Seed: 11},
			channel.Reorder{Window: 0.5, Seed: 12},
		}},
	}
	adv := engine.NamedAdversaries(9)["uniform"]
	for _, m := range models {
		b.Run(m.name, func(b *testing.B) {
			scratch := protocol.NewScratch()
			dups := int64(0)
			for i := 0; i < b.N; i++ {
				run, err := bound.RunAsyncReusing(protocol.AsyncConfig{
					Seed: uint64(i), Adversary: adv, Channel: m.model,
				}, scratch)
				if err != nil {
					b.Fatal(err)
				}
				dups = run.Duplicated
			}
			b.ReportMetric(float64(dups), "duplicated")
		})
	}
}

// BenchmarkSynchronizerOverhead is E3: async time-units per sync round.
func BenchmarkSynchronizerOverhead(b *testing.B) {
	g := graph.GnpConnected(48, 4.0/48, xrand.New(4))
	sres, err := engine.RunSync(mis.Protocol(), g, engine.SyncConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("compiled", func(b *testing.B) {
		ratio := 0.0
		for i := 0; i < b.N; i++ {
			compiled, err := synchro.CompileRound(mis.Protocol())
			if err != nil {
				b.Fatal(err)
			}
			ares, err := engine.RunAsync(compiled, g, engine.AsyncConfig{Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
			ratio = ares.TimeUnits / float64(sres.Rounds)
		}
		b.ReportMetric(ratio, "TU/round")
	})
}

// BenchmarkTolerantSynchroOverhead measures the αβ-hybrid tax: the
// loss-tolerant compilation vs the plain α synchronizer on a reliable
// channel, run the way trials run in anger — the protocol bound once
// (each compilation cached in its own registry slot) and a scratch
// arena reused across runs. The tolerant machine never fires a
// re-pulse here (no loss), but its stall states tick timers instead of
// self-looping in place, so it pays real time units; the reported
// ratio is that overhead, and the ns/op comparison against the alpha
// sub-benchmark rides the bench-compare gate.
func BenchmarkTolerantSynchroOverhead(b *testing.B) {
	g := graph.GnpConnected(48, 4.0/48, xrand.New(4))
	d, err := protocol.Lookup("mis")
	if err != nil {
		b.Fatal(err)
	}
	bound, err := d.Bind(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	adv := engine.NamedAdversaries(9)["uniform"]
	alphaTU := 0.0
	for _, variant := range []struct {
		name    string
		synchro string
	}{
		{"alpha", ""},
		{"tolerant", protocol.SynchroTolerant},
	} {
		b.Run(variant.name, func(b *testing.B) {
			scratch := protocol.NewScratch()
			tu := 0.0
			for i := 0; i < b.N; i++ {
				run, err := bound.RunAsyncReusing(protocol.AsyncConfig{
					Seed: uint64(i), Adversary: adv, Synchro: variant.synchro,
				}, scratch)
				if err != nil {
					b.Fatal(err)
				}
				tu = run.TimeUnits
			}
			b.ReportMetric(tu, "TU")
			if variant.name == "alpha" {
				alphaTU = tu
			} else if alphaTU > 0 {
				b.ReportMetric(tu/alphaTU, "TU-ratio-vs-alpha")
			}
		})
	}
}

// BenchmarkVotedSynchroOverhead measures the αβv tax on top of the αβ
// hybrid: on a reliable channel the voted tier's K-copy bursts triple
// the per-emission channel work and the ring vote runs on every
// receipt, but the K-th copy commits at the same absolute time a
// single αβ copy would — so the TU ratio must hold at 1.0 while ns/op
// pays for the burst, and nothing may evict. The skew pair then
// measures the adaptive gate's yield where it earns its keep: under 2×
// step skew the slow nodes' re-pulse timers fire constantly, and
// backoff (cap 8) must transmit strictly fewer re-pulses than the
// ungated cap-1 run on otherwise identical trials.
func BenchmarkVotedSynchroOverhead(b *testing.B) {
	g := graph.GnpConnected(48, 4.0/48, xrand.New(4))
	d, err := protocol.Lookup("mis")
	if err != nil {
		b.Fatal(err)
	}
	bound, err := d.Bind(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	adv := engine.NamedAdversaries(9)["uniform"]
	tolerantTU := 0.0
	for _, variant := range []struct {
		name    string
		synchro string
	}{
		{"tolerant", protocol.SynchroTolerant},
		{"voted", protocol.SynchroVoted},
	} {
		b.Run(variant.name, func(b *testing.B) {
			scratch := protocol.NewScratch()
			tu := 0.0
			for i := 0; i < b.N; i++ {
				run, err := bound.RunAsyncReusing(protocol.AsyncConfig{
					Seed: uint64(i), Adversary: adv, Synchro: variant.synchro,
				}, scratch)
				if err != nil {
					b.Fatal(err)
				}
				if len(run.EvictedEdges) != 0 {
					b.Fatalf("%d edges evicted on reliable links", len(run.EvictedEdges))
				}
				tu = run.TimeUnits
			}
			b.ReportMetric(tu, "TU")
			if variant.name == "tolerant" {
				tolerantTU = tu
			} else if tolerantTU > 0 {
				b.ReportMetric(tu/tolerantTU, "TU-ratio-vs-tolerant")
			}
		})
	}
	skew := engine.Skew{Seed: 9, Ratio: 0.5}
	ungated := 0.0
	for _, variant := range []struct {
		name string
		cap  int
	}{
		{"skew-nobackoff", 1},
		{"skew-backoff", 0}, // 0 selects the engine default cap (8)
	} {
		b.Run(variant.name, func(b *testing.B) {
			scratch := protocol.NewScratch()
			sends := 0.0
			for i := 0; i < b.N; i++ {
				run, err := bound.RunAsyncReusing(protocol.AsyncConfig{
					Seed: uint64(i), Adversary: skew,
					Synchro: protocol.SynchroVoted, RePulseCap: variant.cap,
				}, scratch)
				if err != nil {
					b.Fatal(err)
				}
				if len(run.EvictedEdges) != 0 {
					b.Fatalf("%d edges evicted under pure skew", len(run.EvictedEdges))
				}
				sends = float64(run.RePulseSends)
			}
			b.ReportMetric(sends, "re-pulse-sends")
			if variant.cap == 1 {
				ungated = sends
			} else if ungated > 0 && sends >= ungated {
				b.Fatalf("backoff sent %g re-pulses, ungated sent %g — the gate saves nothing", sends, ungated)
			}
		})
	}
}

// BenchmarkMultiLetterExpansion is E4: the Theorem 3.4 subround factor.
func BenchmarkMultiLetterExpansion(b *testing.B) {
	g := graph.GnpConnected(64, 4.0/64, xrand.New(5))
	exp, err := synchro.Expand(mis.Protocol())
	if err != nil {
		b.Fatal(err)
	}
	factor := 0.0
	for i := 0; i < b.N; i++ {
		direct, err := engine.RunSync(mis.Protocol(), g, engine.SyncConfig{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		eres, err := engine.RunSync(exp, g, engine.SyncConfig{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		factor = float64(eres.Rounds) / float64(direct.Rounds)
	}
	b.ReportMetric(factor, "expansion")
}

// BenchmarkColoringSync is E5: tree 3-coloring across sizes.
func BenchmarkColoringSync(b *testing.B) {
	for _, n := range []int{64, 1024, 8192} {
		g := graph.RandomTree(n, xrand.New(uint64(n)))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				run, err := coloring.SolveSync(g, uint64(i), 0)
				if err != nil {
					b.Fatal(err)
				}
				rounds = run.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(rounds)/math.Log2(float64(n)), "rounds/logn")
		})
	}
}

// BenchmarkEdgeDecay is E6: the instrumented tournament census.
func BenchmarkEdgeDecay(b *testing.B) {
	g := graph.Gnp(256, 8.0/256, xrand.New(6))
	decay := 0.0
	for i := 0; i < b.N; i++ {
		_, ts, err := mis.SolveSyncInstrumented(g, uint64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		ratios := ts.DecayRatios()
		sum := 0.0
		for _, r := range ratios {
			sum += r
		}
		if len(ratios) > 0 {
			decay = sum / float64(len(ratios))
		}
	}
	b.ReportMetric(decay, "mean-edge-decay")
}

// BenchmarkLBASimulatesNFSM is E8: the Lemma 6.1 two-sweep simulator.
func BenchmarkLBASimulatesNFSM(b *testing.B) {
	g := graph.Gnp(64, 0.1, xrand.New(7))
	for i := 0; i < b.N; i++ {
		if _, err := lba.SimulateNFSM(mis.Protocol(), g, lba.SweepConfig{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNFSMSimulatesLBA is E9: the Lemma 6.2 path simulation.
func BenchmarkNFSMSimulatesLBA(b *testing.B) {
	tm := lba.ABC()
	input := make([]lba.Symbol, 0, 24)
	for _, s := range []lba.Symbol{lba.SymA, lba.SymB, lba.SymC} {
		for i := 0; i < 8; i++ {
			input = append(input, s)
		}
	}
	rounds := 0
	for i := 0; i < b.N; i++ {
		run, err := lba.RunOnPath(tm, input, uint64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		if !run.Accepted {
			b.Fatal("a⁸b⁸c⁸ rejected")
		}
		rounds = run.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkProtocolMatrix is E10 generalized: instead of a hand-kept
// algorithm map, the benchmark matrix is generated from the protocol
// registry — every registered protocol (the paper's nFSM machines, the
// extended-model matching, and the classical baselines it is compared
// against) runs once per iteration on a capability-compatible 256-node
// instance through the shared registry runner. A protocol registered
// anywhere in the binary joins the matrix with no bench edits.
func BenchmarkProtocolMatrix(b *testing.B) {
	gnp := graph.GnpConnected(256, 4.0/256, xrand.New(8))
	tree := graph.RandomTree(256, xrand.New(8))
	path := graph.Path(256)
	for _, d := range protocol.All() {
		g := gnp
		switch {
		case d.Caps.Has(protocol.CapNeedsPath):
			g = path
		case d.Caps.Has(protocol.CapNeedsTree):
			g = tree
		}
		bound, err := d.Bind(g, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(d.Name, func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				run, err := bound.RunSync(protocol.SyncConfig{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				rounds = run.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkMatching is E11: the extended-model maximal matching.
func BenchmarkMatching(b *testing.B) {
	for _, n := range []int{64, 512} {
		g := graph.GnpConnected(n, 4.0/float64(n), xrand.New(uint64(n)))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				res, err := matching.Solve(g, uint64(i), 0)
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkDegColor is E12: the bounded-degree (Δ+1)-coloring extension.
func BenchmarkDegColor(b *testing.B) {
	g := graph.Torus(24, 24)
	rounds := 0
	for i := 0; i < b.N; i++ {
		run, err := degcolor.SolveSync(g, 4, uint64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		rounds = run.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkCounterAblation isolates the engine's single-letter counting
// fast path (used for literal single-query protocols such as compiled
// ones) against the full-vector count a RoundProtocol needs. The gap is
// the price of multi-letter queries per node step.
func BenchmarkCounterAblation(b *testing.B) {
	g := graph.Clique(64)
	b.Run("full-vector/mis-round-protocol", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.RunSync(mis.Protocol(), g, engine.SyncConfig{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single-letter/expanded", func(b *testing.B) {
		exp, err := synchro.Expand(mis.Protocol())
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := engine.RunSync(exp, g, engine.SyncConfig{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompilePhaseCost measures one simulated round of the compiled
// MIS protocol per node (the Theorem 3.1 constant, in wall-clock form).
func BenchmarkCompilePhaseCost(b *testing.B) {
	g := graph.Cycle(16)
	compiled, err := synchro.CompileRound(mis.Protocol())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := engine.RunAsync(compiled, g, engine.AsyncConfig{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCompiledVsRef is the acceptance ablation for the
// compiled execution core: the reference engine (the seed
// implementation, kept as RunSyncRef) against the compiled executor on
// E1's n=1024 instance, plus the pre-bound program that amortizes the
// δ-tabulation the way the protocol packages do. The differential tests
// guarantee all three produce bit-identical runs.
func BenchmarkEngineCompiledVsRef(b *testing.B) {
	g := graph.GnpConnected(1024, 4.0/1024, xrand.New(1024))
	b.Run("ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.RunSyncRef(mis.Protocol(), g, engine.SyncConfig{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.RunSync(mis.Protocol(), g, engine.SyncConfig{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prebound", func(b *testing.B) {
		code := engine.CompileMachine(mis.Protocol())
		for i := 0; i < b.N; i++ {
			if _, err := code.Bind(g).RunSync(engine.SyncConfig{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineStep measures the raw per-step cost of the two engines
// (an ablation for the event-queue overhead of the asynchronous engine).
func BenchmarkEngineStep(b *testing.B) {
	g := graph.GnpConnected(128, 4.0/128, xrand.New(9))
	b.Run("sync", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.RunSync(mis.Protocol(), g, engine.SyncConfig{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lba.SimulateNFSM(mis.Protocol(), g, lba.SweepConfig{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCampaignMISSweep measures the campaign layer: a full
// multi-family MIS sweep (4 families × 2 sizes × 8 trials) through the
// parallel trial pool, per worker count. The parallel/serial ratio
// tracks how well trial fan-out scales on the host.
func BenchmarkCampaignMISSweep(b *testing.B) {
	spec := campaign.Spec{
		Protocols: []string{"mis"},
		Families: []campaign.Family{
			{Kind: "gnp"}, {Kind: "geometric"}, {Kind: "powerlaw"}, {Kind: "smallworld"},
		},
		Sizes:  []int{256, 1024},
		Trials: 8,
		Seed:   1,
	}
	for _, workers := range []int{1, 0} {
		name := "workers=max"
		if workers == 1 {
			name = "workers=1"
		}
		b.Run(name, func(b *testing.B) {
			sp := spec
			sp.Workers = workers
			for i := 0; i < b.N; i++ {
				sp.Seed = uint64(i + 1)
				if _, err := campaign.Run(sp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedSweep measures the dispatch layer: the same MIS
// sweep coordinated over worker processes' protocol — in-process
// workers here, so the number is coordination overhead (socket
// round-trips, spill fsyncs, merge) plus cell-level parallelism, not
// exec cost. Shard scaling is the point of the benchmark: on
// single-core CI the 2- and 4-proc runs measure pure overhead, and
// only on multi-core hosts do they show the speedup.
func BenchmarkShardedSweep(b *testing.B) {
	spec := campaign.Spec{
		Protocols: []string{"mis"},
		Families: []campaign.Family{
			{Kind: "gnp"}, {Kind: "geometric"}, {Kind: "powerlaw"}, {Kind: "smallworld"},
		},
		Sizes:  []int{256, 1024},
		Trials: 8,
		Seed:   1,
	}
	spawn := func(ctx context.Context, o dispatch.Options) (func() error, error) {
		errc := make(chan error, 1)
		go func() {
			_, err := dispatch.Work(ctx, o)
			errc <- err
		}()
		return func() error { return <-errc }, nil
	}
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			sp := spec
			for i := 0; i < b.N; i++ {
				sp.Seed = uint64(i + 1)
				dir, err := os.MkdirTemp(b.TempDir(), "shard")
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := dispatch.Run(context.Background(), dispatch.Config{
					Spec: sp, WorkDir: dir, Procs: procs, SpawnWorker: spawn,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
