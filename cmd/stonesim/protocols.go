package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"

	"stoneage/internal/harness"
	"stoneage/internal/protocol"
)

// runProtocols is the `stonesim protocols` subcommand: list every
// registered protocol with its capabilities, parameter domains and
// summary, straight from the registry — a protocol registered anywhere
// in the binary appears here with no CLI edits.
func runProtocols(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("stonesim protocols", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the protocol list as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("protocols: unexpected argument %q", fs.Arg(0))
	}
	if *jsonOut {
		return writeProtocolsJSON(w)
	}
	t := &harness.Table{
		Title:  "registered protocols",
		Header: []string{"protocol", "capabilities", "tolerates", "parameters", "summary"},
	}
	for _, d := range protocol.All() {
		t.AddRow(d.Name, d.Caps.String(), d.TolString(), paramDomains(d), d.Summary)
	}
	return t.Render(w)
}

// paramDomains renders a descriptor's parameter domains compactly,
// e.g. "maxdeg∈[0,16] (default 0)".
func paramDomains(d *protocol.Descriptor) string {
	if len(d.Params) == 0 {
		return "-"
	}
	parts := make([]string, len(d.Params))
	for i, p := range d.Params {
		parts[i] = fmt.Sprintf("%s∈[%g,%g] (default %g)", p.Name, p.Min, p.Max, p.Default)
	}
	return strings.Join(parts, ", ")
}

// protocolInfo is the JSON schema of one registry entry.
type protocolInfo struct {
	Name         string              `json:"name"`
	Summary      string              `json:"summary"`
	Capabilities []string            `json:"capabilities"`
	Tolerates    []string            `json:"tolerates"`
	Params       []protocol.ParamDef `json:"params,omitempty"`
}

func writeProtocolsJSON(w io.Writer) error {
	var infos []protocolInfo
	for _, d := range protocol.All() {
		caps := d.Caps.List()
		if caps == nil {
			caps = []string{}
		}
		tols := d.Tolerances()
		if tols == nil {
			tols = []string{}
		}
		infos = append(infos, protocolInfo{
			Name:         d.Name,
			Summary:      d.Summary,
			Capabilities: caps,
			Tolerates:    tols,
			Params:       d.Params,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(infos)
}
