package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"stoneage/internal/campaign"
	"stoneage/internal/dispatch"
)

// runSweep is the `stonesim sweep` subcommand: load a campaign spec,
// run it — in-process by default, or sharded over -procs worker
// processes through the internal/dispatch coordinator — print the
// per-protocol tables, and optionally emit the full aggregates as JSON
// and/or CSV. SIGINT/SIGTERM cancels in-flight work at the next trial
// boundary; a sharded sweep keeps its finished cells durable in the
// work directory and resumes from them on the next run.
func runSweep(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("stonesim sweep", flag.ContinueOnError)
	spec := fs.String("spec", "", "campaign spec file (JSON; see examples/specs)")
	workers := fs.Int("workers", -1, "override the spec's trial worker pool size (0 = GOMAXPROCS, -1 = keep the spec's); aggregates are identical for every value")
	trials := fs.Int("trials", 0, "override the spec's trial count")
	seed := fs.Uint64("seed", 0, "override the spec's seed (0 keeps the spec's)")
	procs := fs.Int("procs", 0, "shard the sweep over this many worker processes (0 = in-process); merged output is byte-identical at every count")
	workdir := fs.String("workdir", "", "work directory for -procs mode (spills, claims, checkpoint); default derives from the spec fingerprint under the system temp dir; reuse it to resume an interrupted sweep")
	stripWall := fs.Bool("stripwall", false, "zero the machine-dependent wall-clock aggregates before emitting (byte-identical outputs across machines and shard counts)")
	jsonOut := fs.String("json", "", "write the aggregate results as JSON to this file")
	csvOut := fs.String("csv", "", "write the aggregate results as CSV to this file")
	quiet := fs.Bool("q", false, "suppress the tables (emitters only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spec == "" {
		return fmt.Errorf("sweep: -spec is required (see examples/specs)")
	}
	sp, err := campaign.LoadSpec(*spec)
	if err != nil {
		return err
	}
	if *workers >= 0 {
		sp.Workers = *workers
	}
	if *trials != 0 {
		sp.Trials = *trials
	}
	if *seed != 0 {
		sp.Seed = *seed
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		res *campaign.Result
		rep dispatch.Report
	)
	start := time.Now()
	if *procs > 0 {
		dir := *workdir
		if dir == "" {
			dir = filepath.Join(os.TempDir(), "stonesim-sweep-"+sp.Fingerprint())
		}
		var dlog io.Writer
		if !*quiet {
			dlog = os.Stderr
		}
		res, rep, err = dispatch.Run(ctx, dispatch.Config{
			Spec: sp, WorkDir: dir, Procs: *procs, Log: dlog,
		})
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "sweep interrupted: finished cells are kept in %s; re-run with the same -spec and -workdir %s to resume\n", dir, dir)
			}
			return err
		}
	} else {
		res, err = campaign.RunContext(ctx, sp)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "sweep interrupted: in-flight work canceled, no partial results (use -procs for a resumable sweep)")
			}
			return err
		}
	}
	elapsed := time.Since(start)

	if *stripWall {
		res.StripWall()
	}
	if !*quiet {
		for _, t := range res.Tables() {
			if err := t.Render(w); err != nil {
				return err
			}
		}
		if *procs > 0 {
			fmt.Fprintf(w, "%d cells × %d trials in %v (procs=%d, executed=%d, resumed=%d, requeued=%d)\n",
				len(res.Cells), sp.Trials, elapsed.Round(time.Millisecond),
				rep.Procs, rep.Executed, rep.Resumed, rep.Requeued)
		} else {
			eff := sp.Workers
			if eff <= 0 {
				eff = runtime.GOMAXPROCS(0)
			}
			fmt.Fprintf(w, "%d cells × %d trials in %v (workers=%d)\n",
				len(res.Cells), sp.Trials, elapsed.Round(time.Millisecond), eff)
		}
	}
	if *jsonOut != "" {
		if err := writeTo(*jsonOut, res.WriteJSON); err != nil {
			return err
		}
	}
	if *csvOut != "" {
		if err := writeTo(*csvOut, res.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

func writeTo(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
