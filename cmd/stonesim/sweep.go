package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"stoneage/internal/campaign"
)

// runSweep is the `stonesim sweep` subcommand: load a campaign spec,
// run it in parallel, print the per-protocol tables, and optionally
// emit the full aggregates as JSON and/or CSV.
func runSweep(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("stonesim sweep", flag.ContinueOnError)
	spec := fs.String("spec", "", "campaign spec file (JSON; see examples/specs)")
	workers := fs.Int("workers", -1, "override the spec's trial worker pool size (0 = GOMAXPROCS, -1 = keep the spec's); aggregates are identical for every value")
	trials := fs.Int("trials", 0, "override the spec's trial count")
	seed := fs.Uint64("seed", 0, "override the spec's seed (0 keeps the spec's)")
	jsonOut := fs.String("json", "", "write the aggregate results as JSON to this file")
	csvOut := fs.String("csv", "", "write the aggregate results as CSV to this file")
	quiet := fs.Bool("q", false, "suppress the tables (emitters only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spec == "" {
		return fmt.Errorf("sweep: -spec is required (see examples/specs)")
	}
	sp, err := campaign.LoadSpec(*spec)
	if err != nil {
		return err
	}
	if *workers >= 0 {
		sp.Workers = *workers
	}
	if *trials != 0 {
		sp.Trials = *trials
	}
	if *seed != 0 {
		sp.Seed = *seed
	}

	start := time.Now()
	res, err := campaign.Run(sp)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if !*quiet {
		for _, t := range res.Tables() {
			if err := t.Render(w); err != nil {
				return err
			}
		}
		eff := sp.Workers
		if eff <= 0 {
			eff = runtime.GOMAXPROCS(0)
		}
		fmt.Fprintf(w, "%d cells × %d trials in %v (workers=%d)\n",
			len(res.Cells), sp.Trials, elapsed.Round(time.Millisecond), eff)
	}
	if *jsonOut != "" {
		if err := writeTo(*jsonOut, res.WriteJSON); err != nil {
			return err
		}
	}
	if *csvOut != "" {
		if err := writeTo(*csvOut, res.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

func writeTo(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
