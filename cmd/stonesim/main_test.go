package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("stonesim %v: %v", args, err)
	}
	return sb.String()
}

func TestMISSync(t *testing.T) {
	out := runCLI(t, "-protocol", "mis", "-graph", "gnp", "-n", "32", "-engine", "sync")
	if !strings.Contains(out, "valid MIS") {
		t.Fatalf("output = %q", out)
	}
}

func TestMISAsyncOverwriter(t *testing.T) {
	out := runCLI(t, "-protocol", "mis", "-graph", "cycle", "-n", "16",
		"-engine", "async", "-adversary", "overwriter")
	if !strings.Contains(out, "valid MIS") || !strings.Contains(out, "time units") {
		t.Fatalf("output = %q", out)
	}
}

func TestColorSync(t *testing.T) {
	out := runCLI(t, "-protocol", "color3", "-graph", "tree", "-n", "40")
	if !strings.Contains(out, "valid 3-coloring") {
		t.Fatalf("output = %q", out)
	}
}

func TestMatching(t *testing.T) {
	out := runCLI(t, "-protocol", "matching", "-graph", "grid", "-n", "25")
	if !strings.Contains(out, "valid maximal matching") {
		t.Fatalf("output = %q", out)
	}
}

func TestLBAProtocols(t *testing.T) {
	out := runCLI(t, "-protocol", "lba-abc", "-word", "aabbcc")
	if !strings.Contains(out, "ACCEPT") {
		t.Fatalf("output = %q", out)
	}
	out = runCLI(t, "-protocol", "lba-abc", "-word", "aabc")
	if !strings.Contains(out, "REJECT") {
		t.Fatalf("output = %q", out)
	}
	out = runCLI(t, "-protocol", "lba-palindrome", "-word", "abba")
	if !strings.Contains(out, "ACCEPT") {
		t.Fatalf("output = %q", out)
	}
}

func TestGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("n 3\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "-protocol", "mis", "-in", path)
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "valid MIS") {
		t.Fatalf("output = %q", out)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{"-protocol", "nope"},
		{"-graph", "nope"},
		{"-protocol", "mis", "-engine", "nope"},
		{"-protocol", "mis", "-engine", "async", "-adversary", "nope"},
		{"-protocol", "lba-abc", "-word", "xyz"},
		{"-protocol", "color3", "-graph", "cycle", "-n", "9"}, // not a tree
		{"-in", "/nonexistent/file"},
	}
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}

func TestAllGraphFamilies(t *testing.T) {
	for _, fam := range []string{"path", "cycle", "star", "clique", "grid", "torus",
		"tree", "binary", "caterpillar", "broom", "gnp", "lattice"} {
		out := runCLI(t, "-protocol", "mis", "-graph", fam, "-n", "16")
		if !strings.Contains(out, "valid MIS") {
			t.Errorf("family %s: output = %q", fam, out)
		}
	}
}

func TestTraceCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	out := runCLI(t, "-protocol", "mis", "-graph", "cycle", "-n", "12", "-trace", path)
	if !strings.Contains(out, "valid MIS") {
		t.Fatalf("output = %q", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "round,DOWN1,DOWN2,UP0") {
		t.Fatalf("trace header = %q", string(data)[:40])
	}
}
