package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"stoneage/internal/campaign"
	"stoneage/internal/graph"
	"stoneage/internal/protocol"
	"stoneage/internal/xrand"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("stonesim %v: %v", args, err)
	}
	return sb.String()
}

// runCLIErr runs a CLI invocation that must fail and returns the error
// text.
func runCLIErr(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	if err == nil {
		t.Fatalf("stonesim %v succeeded, want error (output %q)", args, sb.String())
	}
	return err.Error()
}

func TestMISSync(t *testing.T) {
	out := runCLI(t, "-protocol", "mis", "-graph", "gnp", "-n", "32", "-engine", "sync")
	if !strings.Contains(out, "valid MIS") {
		t.Fatalf("output = %q", out)
	}
}

func TestMISAsyncOverwriter(t *testing.T) {
	out := runCLI(t, "-protocol", "mis", "-graph", "cycle", "-n", "16",
		"-engine", "async", "-adversary", "overwriter")
	if !strings.Contains(out, "valid MIS") || !strings.Contains(out, "time units") {
		t.Fatalf("output = %q", out)
	}
}

func TestColorSync(t *testing.T) {
	out := runCLI(t, "-protocol", "color3", "-graph", "tree", "-n", "40")
	if !strings.Contains(out, "valid 3-coloring") {
		t.Fatalf("output = %q", out)
	}
}

func TestMatching(t *testing.T) {
	out := runCLI(t, "-protocol", "matching", "-graph", "grid", "-n", "25")
	if !strings.Contains(out, "valid maximal matching") {
		t.Fatalf("output = %q", out)
	}
}

func TestLBAProtocols(t *testing.T) {
	out := runCLI(t, "-protocol", "lba-abc", "-word", "aabbcc")
	if !strings.Contains(out, "ACCEPT") {
		t.Fatalf("output = %q", out)
	}
	out = runCLI(t, "-protocol", "lba-abc", "-word", "aabc")
	if !strings.Contains(out, "REJECT") {
		t.Fatalf("output = %q", out)
	}
	out = runCLI(t, "-protocol", "lba-palindrome", "-word", "abba")
	if !strings.Contains(out, "ACCEPT") {
		t.Fatalf("output = %q", out)
	}
}

func TestGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("n 3\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "-protocol", "mis", "-in", path)
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "valid MIS") {
		t.Fatalf("output = %q", out)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{"-protocol", "nope"},
		{"-graph", "nope"},
		{"-protocol", "mis", "-engine", "nope"},
		{"-protocol", "mis", "-engine", "async", "-adversary", "nope"},
		{"-protocol", "lba-abc", "-word", "xyz"},
		{"-protocol", "color3", "-graph", "cycle", "-n", "9"},            // not a tree
		{"-protocol", "colevishkin", "-graph", "tree", "-n", "9"},        // not a path
		{"-protocol", "matching", "-graph", "cycle", "-engine", "async"}, // sync-only
		{"-protocol", "luby", "-graph", "cycle", "-trace", "/tmp/x"},     // bespoke engine: no trace
		{"-in", "/nonexistent/file"},
	}
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}

// TestRegistryProtocolsRunThroughCLI drives every registered protocol
// through the generic CLI pipeline on a capability-compatible graph —
// no per-protocol CLI code exists to diverge.
func TestRegistryProtocolsRunThroughCLI(t *testing.T) {
	for _, d := range protocol.All() {
		fam := "gnp"
		switch {
		case d.Caps.Has(protocol.CapNeedsPath):
			fam = "path"
		case d.Caps.Has(protocol.CapNeedsTree):
			fam = "tree"
		}
		out := runCLI(t, "-protocol", d.Name, "-graph", fam, "-n", "24")
		if !strings.Contains(out, "valid ") {
			t.Errorf("%s: output = %q", d.Name, out)
		}
	}
}

// TestParamFlag drives the registry's parameter surface from the CLI:
// -param reaches ParamDef/ResolveArgs, and out-of-domain or unknown
// values surface the registry's errors.
func TestParamFlag(t *testing.T) {
	out := runCLI(t, "-protocol", "degcolor", "-param", "maxdeg=6", "-graph", "torus", "-n", "25")
	if !strings.Contains(out, "valid ") || !strings.Contains(out, "-coloring") {
		t.Fatalf("output = %q", out)
	}
	var sb strings.Builder
	for _, args := range [][]string{
		{"-protocol", "degcolor", "-param", "maxdeg=99", "-graph", "torus", "-n", "25"}, // outside domain
		{"-protocol", "degcolor", "-param", "turbo=1", "-graph", "torus", "-n", "25"},   // unknown name
		{"-protocol", "degcolor", "-param", "maxdeg", "-graph", "torus", "-n", "25"},    // malformed
		{"-protocol", "degcolor", "-param", "maxdeg=2", "-graph", "torus", "-n", "25"},  // Δ=4 > 2
	} {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}

func TestProtocolsSubcommand(t *testing.T) {
	out := runCLI(t, "protocols")
	for _, want := range []string{"mis", "color3", "tree-only", "matching", "sync-only",
		"colevishkin", "path-only", "maxdeg∈[0,16]", "tolerates", "loss,dup,reorder"} {
		if !strings.Contains(out, want) {
			t.Fatalf("protocols output missing %q:\n%s", want, out)
		}
	}
	var infos []struct {
		Name         string   `json:"name"`
		Summary      string   `json:"summary"`
		Capabilities []string `json:"capabilities"`
		Tolerates    []string `json:"tolerates"`
	}
	if err := json.Unmarshal([]byte(runCLI(t, "protocols", "-json")), &infos); err != nil {
		t.Fatalf("protocols -json: %v", err)
	}
	if len(infos) < 10 {
		t.Fatalf("protocols -json lists only %d protocols", len(infos))
	}
	found := false
	for _, info := range infos {
		if info.Name == "color3" {
			found = true
			if len(info.Capabilities) != 1 || info.Capabilities[0] != "tree-only" {
				t.Fatalf("color3 capabilities = %v", info.Capabilities)
			}
		}
	}
	if !found {
		t.Fatal("color3 missing from protocols -json")
	}
}

// censusOutput is the toy protocol's own output type: protocols whose
// output is not one of the registry's shared vocabulary types bring
// their own (with Summary and a matching Mutate).
type censusOutput []bool

func (c censusOutput) Summary() string {
	return fmt.Sprintf("census of %d nodes", len(c))
}

// registerCLIToy registers a trivial bespoke protocol once: the
// acceptance check that one Register call is all it takes for a new
// protocol to appear in `stonesim protocols` and run through the CLI.
var registerCLIToy = sync.OnceValue(func() string {
	name := "toy-census"
	protocol.Register(&protocol.Descriptor{
		Name:    name,
		Summary: "test-only: one-round full-membership census",
		Caps:    protocol.CapSyncOnly,
		Solve: func(_ protocol.Args, g *graph.Graph, _ uint64, _ int) (*protocol.Run, error) {
			out := make(censusOutput, g.N())
			for v := range out {
				out[v] = true
			}
			return &protocol.Run{Output: out, Rounds: 1}, nil
		},
		Check: func(_ protocol.Args, g *graph.Graph, out protocol.Output) error {
			for v, in := range out.(censusOutput) {
				if !in {
					return fmt.Errorf("toy-census: node %d missing", v)
				}
			}
			return nil
		},
		Mutate: func(_ protocol.Args, _ *graph.Graph, out protocol.Output, src *xrand.Source) protocol.Output {
			c := out.(censusOutput)
			mut := make(censusOutput, len(c))
			copy(mut, c)
			mut[src.Intn(len(mut))] = false
			return mut
		},
	})
	return name
})

// TestToyProtocolAppearsEverywhere registers a toy protocol with a
// single Register call and checks it shows up in `stonesim protocols`
// and runs through the generic pipeline with zero CLI edits.
func TestToyProtocolAppearsEverywhere(t *testing.T) {
	name := registerCLIToy()
	if !strings.Contains(runCLI(t, "protocols"), name) {
		t.Fatalf("%s missing from stonesim protocols", name)
	}
	out := runCLI(t, "-protocol", name, "-graph", "cycle", "-n", "8")
	if !strings.Contains(out, "valid census of 8 nodes") {
		t.Fatalf("toy run output = %q", out)
	}
}

func TestAllGraphFamilies(t *testing.T) {
	for _, fam := range []string{"path", "cycle", "star", "clique", "grid", "torus",
		"tree", "binary", "caterpillar", "broom", "gnp", "lattice",
		"geometric", "powerlaw", "smallworld"} {
		out := runCLI(t, "-protocol", "mis", "-graph", fam, "-n", "16")
		if !strings.Contains(out, "valid MIS") {
			t.Errorf("family %s: output = %q", fam, out)
		}
	}
}

// writeSweepSpec drops a small campaign spec file for the sweep tests.
func writeSweepSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := `{
		"name": "cli-test",
		"protocols": ["mis"],
		"families": [{"kind": "gnp"}, {"kind": "powerlaw"}],
		"sizes": [16, 32],
		"trials": 4,
		"seed": 2
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSweepSubcommand(t *testing.T) {
	spec := writeSweepSpec(t)
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "out.json")
	csvPath := filepath.Join(dir, "out.csv")
	out := runCLI(t, "sweep", "-spec", spec, "-json", jsonPath, "-csv", csvPath)
	for _, want := range []string{"cli-test", "mis: mean rounds", "powerlaw", "n=32", "4 cells × 4 trials"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, out)
		}
	}
	jsonData, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jsonData), `"roundsUnit": "rounds"`) {
		t.Fatalf("sweep JSON missing units: %.200s", jsonData)
	}
	csvData, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csvData), "protocol,engine,scenario,channel,family,size,") {
		t.Fatalf("sweep CSV header = %.80q", csvData)
	}
	if got := strings.Count(strings.TrimSpace(string(csvData)), "\n"); got != 4 {
		t.Fatalf("sweep CSV has %d data rows, want 4", got)
	}
}

// TestScenarioFlag runs a dynamic single run end to end: the -scenario
// JSON generates a churn schedule, the run reports perturbations and
// recovery, the output validates against the final graph, and the
// -trace histogram carries the perturbed marker column.
func TestScenarioFlag(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "hist.csv")
	out := runCLI(t, "-protocol", "ssmis", "-graph", "gnp", "-n", "48", "-seed", "5",
		"-scenario", `{"kind":"churn","rate":2,"count":2,"every":16}`,
		"-trace", tracePath)
	for _, want := range []string{"dynamic: 2 perturbations", "recovered in", "valid MIS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scenario run output missing %q:\n%s", want, out)
		}
	}
	hist, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(hist)), "\n")
	if !strings.HasSuffix(lines[0], ",perturbed") {
		t.Fatalf("trace header = %q", lines[0])
	}
	marks := 0
	for _, l := range lines[1:] {
		if strings.HasSuffix(l, ",1") {
			marks++
		}
	}
	if marks != 2 {
		t.Fatalf("trace carries %d perturbation markers, want 2", marks)
	}

	if out := runCLIErr(t, "-protocol", "matching", "-graph", "gnp", "-n", "16",
		"-scenario", `{"kind":"crash"}`); !strings.Contains(out, "bespoke engine") {
		t.Fatalf("bespoke scenario error = %q", out)
	}
	if out := runCLIErr(t, "-protocol", "mis", "-graph", "gnp", "-n", "16",
		"-scenario", `{"kind":"quake"}`); !strings.Contains(out, "unknown kind") {
		t.Fatalf("bad scenario error = %q", out)
	}
}

// TestChannelFlag runs lossy and Byzantine single runs end to end: the
// -channel JSON builds the model (and, for byz entries, the node set),
// the run reports the intervention counters, and the output still
// validates — ssmis declares tolerance for exactly these pathologies.
func TestChannelFlag(t *testing.T) {
	out := runCLI(t, "-protocol", "ssmis", "-graph", "gnp", "-n", "48", "-seed", "5",
		"-channel", `{"drop":0.2,"dup":0.2}`)
	for _, want := range []string{"channel:", "dropped", "duplicated", "valid MIS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("channel run output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, " 0 dropped") {
		t.Fatalf("20%% drop run dropped nothing:\n%s", out)
	}

	out = runCLI(t, "-protocol", "ssmis", "-graph", "cycle", "-n", "24", "-seed", "3",
		"-channel", `{"byz":[{"behavior":"silent","frac":0.1}]}`)
	if !strings.Contains(out, "3 byzantine nodes") || !strings.Contains(out, "valid MIS") {
		t.Fatalf("byzantine run output:\n%s", out)
	}

	if out := runCLIErr(t, "-protocol", "matching", "-graph", "gnp", "-n", "16",
		"-channel", `{"drop":0.1}`); !strings.Contains(out, "unreliable channels unsupported") {
		t.Fatalf("bespoke channel error = %q", out)
	}
	if out := runCLIErr(t, "-protocol", "mis", "-graph", "gnp", "-n", "16",
		"-channel", `{"drop":2}`); !strings.Contains(out, "drop") {
		t.Fatalf("bad channel error = %q", out)
	}
	if out := runCLIErr(t, "-protocol", "mis", "-graph", "gnp", "-n", "16",
		"-channel", `{"dorp":0.1}`); !strings.Contains(out, "unknown field") {
		t.Fatalf("unknown-field channel error = %q", out)
	}
}

// TestByzChannelWithScenario pins the flag combination the channel and
// scenario layers share: a byz-only -channel must merge its Byzantine
// nodes into the user's -scenario rather than clobbering it (or being
// clobbered), so the run is simultaneously dynamic and Byzantine.
func TestByzChannelWithScenario(t *testing.T) {
	out := runCLI(t, "-protocol", "ssmis", "-graph", "gnp", "-n", "48", "-seed", "5",
		"-scenario", `{"kind":"churn","rate":2,"count":2,"every":16}`,
		"-channel", `{"byz":[{"behavior":"silent","frac":0.1}]}`)
	for _, want := range []string{"dynamic: 2 perturbations", "5 byzantine nodes", "valid MIS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("byz+scenario run output missing %q:\n%s", want, out)
		}
	}
}

// TestTolerantSynchroFlag runs the loss-tolerant αβ hybrid from the
// command line: mis under 10% loss converges with -synchro tolerant
// (the plain α compilation deadlocks there — TestTolerantSurvivesLoss
// pins that at the synchro layer), and an unknown synchronizer name is
// rejected.
func TestTolerantSynchroFlag(t *testing.T) {
	out := runCLI(t, "-protocol", "mis", "-graph", "cycle", "-n", "16", "-seed", "41",
		"-engine", "async", "-synchro", "tolerant", "-channel", `{"drop":0.1}`)
	for _, want := range []string{"synchro tolerant", "valid MIS", "dropped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tolerant run output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, " 0 dropped") {
		t.Fatalf("10%% drop run dropped nothing:\n%s", out)
	}
	if out := runCLIErr(t, "-protocol", "mis", "-graph", "cycle", "-n", "8",
		"-engine", "async", "-synchro", "bogus"); !strings.Contains(out, "unknown synchronizer") {
		t.Fatalf("bad synchro error = %q", out)
	}
}

// TestVotedSynchroFlag runs the voted αβv tier from the command line:
// mis under 5% corruption converges with -synchro voted (the hybrid
// believes the flipped letters and mis-decodes there), and the voted
// diagnostics line reports the vote's work. The tuning flags must
// reach the engine: an aggressive -evict-after under Byzantine silence
// shows evicted edges.
func TestVotedSynchroFlag(t *testing.T) {
	out := runCLI(t, "-protocol", "mis", "-graph", "cycle", "-n", "16", "-seed", "41",
		"-engine", "async", "-synchro", "voted", "-channel", `{"corrupt":0.05}`)
	for _, want := range []string{"synchro voted", "valid MIS", "voted:", "corrupted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("voted run output missing %q:\n%s", want, out)
		}
	}
	out = runCLI(t, "-protocol", "mis", "-graph", "gnp", "-n", "24", "-seed", "13",
		"-engine", "async", "-synchro", "voted", "-vote-k", "2",
		"-channel", `{"byz":[{"behavior":"silent","frac":0.1}]}`)
	if !strings.Contains(out, "valid MIS") || strings.Contains(out, " 0 evicted") {
		t.Fatalf("byz-silent voted run did not evict and converge:\n%s", out)
	}
}

// TestChurnMISSpec pins the shipped dynamic-network spec: the sweep
// must run clean (every trial's output checked against its final
// graph) and report recovery tables for both mis and ssmis. Trials are
// cut down to keep the test fast; the aggregates still exercise the
// full protocol × scenario × family × size grid.
func TestChurnMISSpec(t *testing.T) {
	out := runCLI(t, "sweep", "-spec", "../../examples/specs/churn-mis.json", "-trials", "2")
	for _, want := range []string{
		"mis: mean recovery rounds", "ssmis: mean recovery rounds",
		"@churn", "@crash", "@wake", "@none",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("churn-mis sweep missing %q:\n%s", want, out)
		}
	}
}

// TestLossyMISSpec pins the shipped robustness spec: the sweep must
// run clean (pathology trials are rate samples, never fatal) and
// render one survival table per protocol next to the usual rounds
// tables.
func TestLossyMISSpec(t *testing.T) {
	out := runCLI(t, "sweep", "-spec", "../../examples/specs/lossy-mis.json", "-trials", "1")
	for _, want := range []string{
		"mis: converged/valid rate", "ssmis: converged/valid rate",
		"ch=none", "ch=drop-10", "ch=byz-babble",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("lossy-mis sweep missing %q:\n%s", want, out)
		}
	}
}

// TestSweepWorkerInvariance is the CLI-level acceptance check: the same
// spec at -workers 1 and -workers 4 emits identical JSON aggregates
// once the machine-dependent wall-clock stats and the workers echo are
// stripped.
func TestSweepWorkerInvariance(t *testing.T) {
	spec := writeSweepSpec(t)
	dir := t.TempDir()
	emit := func(workers string) string {
		path := filepath.Join(dir, "w"+workers+".json")
		runCLI(t, "sweep", "-spec", spec, "-q", "-workers", workers, "-json", path)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var res campaign.Result
		if err := json.Unmarshal(data, &res); err != nil {
			t.Fatalf("sweep JSON: %v", err)
		}
		res.StripWall()
		res.Spec.Workers = 0
		var buf strings.Builder
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := emit("1"), emit("4"); a != b {
		t.Fatalf("sweep aggregates differ between -workers 1 and -workers 4:\n%s\n---\n%s", a, b)
	}
}

func TestSweepErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"sweep"}, &sb); err == nil {
		t.Error("sweep without -spec succeeded")
	}
	if err := run([]string{"sweep", "-spec", "/nonexistent/spec.json"}, &sb); err == nil {
		t.Error("sweep with missing spec file succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"protocols": ["color3"], "families": [{"kind": "gnp"}], "sizes": [8], "trials": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"sweep", "-spec", bad}, &sb); err == nil ||
		!strings.Contains(err.Error(), "tree families") {
		t.Errorf("invalid spec error = %v", err)
	}
}

func TestTraceCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	out := runCLI(t, "-protocol", "mis", "-graph", "cycle", "-n", "12", "-trace", path)
	if !strings.Contains(out, "valid MIS") {
		t.Fatalf("output = %q", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "round,DOWN1,DOWN2,UP0") {
		t.Fatalf("trace header = %q", string(data)[:40])
	}
}

// TestWorkAndShardedSweep wires the dispatch layer through the CLI: a
// coordinator-less `work` run executes every cell into the work
// directory's spill files, and a subsequent `sweep -procs` over the
// same directory resumes all of them (zero re-runs, zero workers
// spawned) and merges output byte-identical to the plain in-process
// sweep once -stripwall removes the wall-clock stats.
func TestWorkAndShardedSweep(t *testing.T) {
	spec := writeSweepSpec(t)
	dir := t.TempDir()
	wd := filepath.Join(dir, "wd")

	refJSON := filepath.Join(dir, "ref.json")
	refCSV := filepath.Join(dir, "ref.csv")
	runCLI(t, "sweep", "-spec", spec, "-q", "-stripwall", "-json", refJSON, "-csv", refCSV)

	out := runCLI(t, "work", "-workdir", wd, "-spec", spec)
	if !strings.Contains(out, "worker done: 4 cells") {
		t.Fatalf("work output = %q, want 4 cells done", out)
	}

	gotJSON := filepath.Join(dir, "merged.json")
	gotCSV := filepath.Join(dir, "merged.csv")
	mout := runCLI(t, "sweep", "-spec", spec, "-procs", "3", "-workdir", wd,
		"-stripwall", "-json", gotJSON, "-csv", gotCSV)
	if !strings.Contains(mout, "resumed=4") || !strings.Contains(mout, "executed=0") {
		t.Fatalf("sharded sweep did not resume from spills:\n%s", mout)
	}
	for _, pair := range [][2]string{{refJSON, gotJSON}, {refCSV, gotCSV}} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s and %s differ: sharded merge is not byte-identical", pair[0], pair[1])
		}
	}
}

// TestWorkErrors pins the work subcommand's argument contract.
func TestWorkErrors(t *testing.T) {
	if msg := runCLIErr(t, "work"); !strings.Contains(msg, "-workdir is required") {
		t.Fatalf("work without -workdir: %q", msg)
	}
	// A fresh directory with no spec.json and no -spec cannot know what
	// sweep to run.
	if msg := runCLIErr(t, "work", "-workdir", t.TempDir()); !strings.Contains(msg, "loading sweep spec") {
		t.Fatalf("work without a spec: %q", msg)
	}
}
