// Command stonesim runs a stone-age protocol on a generated or loaded
// graph and prints the output and run metrics.
//
// Usage:
//
//	stonesim -protocol mis   -graph gnp -n 128 -p 0.05 -engine async -adversary uniform
//	stonesim -protocol color3 -graph tree -n 200 -engine sync
//	stonesim -protocol matching -graph cycle -n 64
//	stonesim -protocol lba-abc -word aabbcc
//	stonesim -protocol mis -in graph.txt
//	stonesim sweep -spec examples/specs/mis-families.json -workers 8
//
// Graphs: path, cycle, star, clique, grid, torus, tree, binary,
// caterpillar, broom, gnp, geometric, powerlaw, smallworld, lattice —
// or -in <file> (edge-list format).
// Engines: sync (locally synchronous) or async (compiled through the
// Theorem 3.1/3.4 synchronizer, with -adversary
// sync|uniform|skew|overwriter|drift).
//
// The sweep subcommand runs a declarative multi-trial campaign
// (internal/campaign) in parallel and emits aggregate tables, JSON and
// CSV; see examples/specs for spec files.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"stoneage/internal/campaign"
	"stoneage/internal/coloring"
	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/lba"
	"stoneage/internal/matching"
	"stoneage/internal/mis"
	"stoneage/internal/nfsm"
	"stoneage/internal/trace"
	"stoneage/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stonesim:", err)
		os.Exit(1)
	}
}

type options struct {
	protocol  string
	graphKind string
	inFile    string
	n         int
	p         float64
	seed      uint64
	eng       string
	adversary string
	word      string
	traceCSV  string
	workers   int
}

func run(args []string, w io.Writer) error {
	if len(args) > 0 && args[0] == "sweep" {
		return runSweep(args[1:], w)
	}
	fs := flag.NewFlagSet("stonesim", flag.ContinueOnError)
	var opt options
	fs.StringVar(&opt.protocol, "protocol", "mis", "mis | color3 | matching | lba-abc | lba-palindrome")
	fs.StringVar(&opt.graphKind, "graph", "gnp", "graph family")
	fs.StringVar(&opt.inFile, "in", "", "read the graph from an edge-list file instead of generating")
	fs.IntVar(&opt.n, "n", 64, "number of nodes")
	fs.Float64Var(&opt.p, "p", 0, "G(n,p) edge probability (default 4/n)")
	fs.Uint64Var(&opt.seed, "seed", 1, "random seed")
	fs.StringVar(&opt.eng, "engine", "sync", "sync | async")
	fs.StringVar(&opt.adversary, "adversary", "uniform", "async adversary policy")
	fs.StringVar(&opt.word, "word", "abc", "input word for the lba protocols")
	fs.StringVar(&opt.traceCSV, "trace", "", "write a per-round state histogram CSV to this file (sync engine only)")
	fs.IntVar(&opt.workers, "workers", 0, "sync round-loop workers (0 = GOMAXPROCS); results are identical for every value")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if strings.HasPrefix(opt.protocol, "lba-") {
		return runLBA(opt, w)
	}

	g, err := buildGraph(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph: %s  n=%d m=%d Δ=%d\n", describeGraph(opt), g.N(), g.M(), g.MaxDegree())

	switch opt.protocol {
	case "mis":
		return runMIS(opt, g, w)
	case "color3":
		return runColor(opt, g, w)
	case "matching":
		return runMatching(opt, g, w)
	default:
		return fmt.Errorf("unknown protocol %q", opt.protocol)
	}
}

func describeGraph(opt options) string {
	if opt.inFile != "" {
		return opt.inFile
	}
	return opt.graphKind
}

func buildGraph(opt options) (*graph.Graph, error) {
	if opt.inFile != "" {
		f, err := os.Open(opt.inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.Decode(f)
	}
	src := xrand.New(opt.seed)
	n := opt.n
	p := opt.p
	if p <= 0 {
		p = 4.0 / float64(n)
	}
	side := int(math.Round(math.Sqrt(float64(n))))
	switch opt.graphKind {
	case "path":
		return graph.Path(n), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "star":
		return graph.Star(n), nil
	case "clique":
		return graph.Clique(n), nil
	case "grid":
		return graph.Grid(side, side), nil
	case "torus":
		return graph.Torus(side, side), nil
	case "tree":
		return graph.RandomTree(n, src), nil
	case "binary":
		return graph.BinaryTree(n), nil
	case "caterpillar":
		return graph.Caterpillar(n), nil
	case "broom":
		return graph.Broom(n), nil
	case "gnp":
		return graph.GnpConnected(n, p, src), nil
	case "geometric", "powerlaw", "smallworld":
		// The campaign registry is the single source of truth for the
		// sweep families' default parameters, so single runs generate
		// exactly the family the sweeps measure.
		return campaign.BuildGraph(campaign.Family{Kind: opt.graphKind}, n, opt.seed)
	case "lattice":
		return graph.ProneuralLattice(side, side), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", opt.graphKind)
	}
}

func pickAdversary(opt options) (engine.Adversary, error) {
	adv, ok := engine.NamedAdversaries(opt.seed + 1)[opt.adversary]
	if !ok {
		return nil, fmt.Errorf("unknown adversary %q", opt.adversary)
	}
	return adv, nil
}

// traced wraps a synchronous run of a round protocol with the optional
// state-histogram CSV recorder.
func traced(opt options, p *nfsm.RoundProtocol, g *graph.Graph) (*engine.SyncResult, error) {
	cfg := engine.SyncConfig{Seed: opt.seed, Workers: opt.workers}
	var hist *trace.Histogram
	if opt.traceCSV != "" {
		hist = trace.NewHistogram(p.StateNames)
		cfg.Observer = hist.Observer()
	}
	res, err := engine.RunSync(p, g, cfg)
	if err != nil {
		return nil, err
	}
	if hist != nil {
		f, err := os.Create(opt.traceCSV)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := hist.WriteCSV(f); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func runMIS(opt options, g *graph.Graph, w io.Writer) error {
	var inSet []bool
	switch opt.eng {
	case "sync":
		res, err := traced(opt, mis.Protocol(), g)
		if err != nil {
			return err
		}
		inSet, err = mis.Extract(res.States)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "mis: %d rounds, %d transmissions\n", res.Rounds, res.Transmissions)
	case "async":
		adv, err := pickAdversary(opt)
		if err != nil {
			return err
		}
		res, err := mis.SolveAsync(g, opt.seed, adv, 0)
		if err != nil {
			return err
		}
		inSet = res.InSet
		fmt.Fprintf(w, "mis: %.1f time units, %d steps, %d lost messages (adversary %s)\n",
			res.TimeUnits, res.Steps, res.Lost, opt.adversary)
	default:
		return fmt.Errorf("unknown engine %q", opt.eng)
	}
	if err := g.IsMaximalIndependentSet(inSet); err != nil {
		return fmt.Errorf("output validation: %w", err)
	}
	size := 0
	for _, in := range inSet {
		if in {
			size++
		}
	}
	fmt.Fprintf(w, "valid MIS of size %d: %s\n", size, maskString(inSet))
	return nil
}

func runColor(opt options, g *graph.Graph, w io.Writer) error {
	var colors []int
	switch opt.eng {
	case "sync":
		if !g.IsTree() {
			return coloring.ErrNotATree
		}
		res, err := traced(opt, coloring.Protocol(), g)
		if err != nil {
			return err
		}
		colors, err = coloring.Extract(res.States)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "color3: %d rounds (%d phases)\n", res.Rounds, (res.Rounds+3)/4)
	case "async":
		adv, err := pickAdversary(opt)
		if err != nil {
			return err
		}
		res, err := coloring.SolveAsync(g, opt.seed, adv, 0)
		if err != nil {
			return err
		}
		colors = res.Colors
		fmt.Fprintf(w, "color3: %.1f time units, %d steps (adversary %s)\n",
			res.TimeUnits, res.Steps, opt.adversary)
	default:
		return fmt.Errorf("unknown engine %q", opt.eng)
	}
	if err := g.IsProperColoring(colors, 3); err != nil {
		return fmt.Errorf("output validation: %w", err)
	}
	fmt.Fprintf(w, "valid 3-coloring: %v\n", head(colors, 32))
	return nil
}

func runMatching(opt options, g *graph.Graph, w io.Writer) error {
	res, err := matching.Solve(g, opt.seed, 0)
	if err != nil {
		return err
	}
	if err := g.IsMaximalMatching(res.Mate); err != nil {
		return fmt.Errorf("output validation: %w", err)
	}
	matched := 0
	for _, m := range res.Mate {
		if m != -1 {
			matched++
		}
	}
	fmt.Fprintf(w, "matching: %d rounds (%d phases), %d edges matched — valid maximal matching\n",
		res.Rounds, res.Phases, matched/2)
	return nil
}

func runLBA(opt options, w io.Writer) error {
	var (
		tm    *lba.TM
		input []lba.Symbol
	)
	switch opt.protocol {
	case "lba-abc":
		tm = lba.ABC()
		input = make([]lba.Symbol, len(opt.word))
		for i, c := range opt.word {
			switch c {
			case 'a':
				input[i] = lba.SymA
			case 'b':
				input[i] = lba.SymB
			case 'c':
				input[i] = lba.SymC
			default:
				return fmt.Errorf("lba-abc input must be over {a,b,c}, got %q", opt.word)
			}
		}
	case "lba-palindrome":
		tm = lba.Palindrome()
		input = make([]lba.Symbol, len(opt.word))
		for i, c := range opt.word {
			switch c {
			case 'a':
				input[i] = lba.PalA
			case 'b':
				input[i] = lba.PalB
			default:
				return fmt.Errorf("lba-palindrome input must be over {a,b}, got %q", opt.word)
			}
		}
	default:
		return fmt.Errorf("unknown protocol %q", opt.protocol)
	}
	direct, err := tm.Run(input, opt.seed, 0)
	if err != nil {
		return err
	}
	path, err := lba.RunOnPath(tm, input, opt.seed, 0)
	if err != nil {
		return err
	}
	if path.Accepted != direct.Accepted {
		return fmt.Errorf("path verdict %v disagrees with direct run %v", path.Accepted, direct.Accepted)
	}
	verdict := "REJECT"
	if path.Accepted {
		verdict = "ACCEPT"
	}
	fmt.Fprintf(w, "%s(%q) = %s  (direct: %d TM steps; path network of %d FSMs: %d rounds)\n",
		tm.Name, opt.word, verdict, direct.Steps, len(input), path.Rounds)
	return nil
}

func maskString(mask []bool) string {
	var b strings.Builder
	for i, in := range mask {
		if i == 64 {
			b.WriteString("…")
			break
		}
		if in {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func head(xs []int, k int) []int {
	if len(xs) <= k {
		return xs
	}
	return xs[:k]
}
