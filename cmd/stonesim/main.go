// Command stonesim runs a stone-age protocol on a generated or loaded
// graph and prints the output and run metrics. The graph protocols are
// resolved through the unified registry (internal/protocol): any
// registered protocol — the paper's nFSM machines, the extended-model
// matching, the classical baselines — runs through the same pipeline,
// and `stonesim protocols` lists them with capabilities and parameter
// domains.
//
// Usage:
//
//	stonesim -protocol mis   -graph gnp -n 128 -p 0.05 -engine async -adversary uniform
//	stonesim -protocol color3 -graph tree -n 200 -engine sync
//	stonesim -protocol ssmis -graph gnp -n 256 -scenario '{"kind":"churn","rate":3}'
//	stonesim -protocol ssmis -graph gnp -n 256 -channel '{"drop":0.2,"dup":0.1}'
//	stonesim -protocol mis -graph torus -n 64 -channel '{"byz":[{"behavior":"babble","frac":0.05}]}'
//	stonesim -protocol mis -graph torus -n 64 -scenario '{"kind":"crash","frac":0.3}' -trace hist.csv
//	stonesim -protocol matching -graph cycle -n 64
//	stonesim -protocol luby -graph torus -n 64
//	stonesim -protocol degcolor -param maxdeg=6 -graph torus -n 64
//	stonesim -protocol lba-abc -word aabbcc
//	stonesim -protocol mis -in graph.txt
//	stonesim protocols -json
//	stonesim sweep -spec examples/specs/mis-families.json -workers 8
//
// Graphs: path, cycle, star, clique, grid, torus, tree, binary,
// caterpillar, broom, gnp, geometric, powerlaw, smallworld, lattice —
// or -in <file> (edge-list format).
// Engines: sync (locally synchronous) or async (compiled through the
// Theorem 3.1/3.4 synchronizer, with -adversary
// sync|uniform|skew|overwriter|drift); sync-only protocols (bespoke
// engines) reject -engine async. Under -engine async, -synchro selects
// the compilation: alpha (the paper's α-synchronizer, default),
// tolerant (the loss-tolerant αβ hybrid, which re-pulses the current
// generation on a bounded stall timeout and survives lossy channels —
// e.g. `-engine async -synchro tolerant -channel '{"drop":0.1}'`), or
// voted (the corruption- and silence-tolerant αβv tier: each port
// commits a neighbor's letter only after k of the last 2k−1 receipts
// agree, edges that stall through repeated timeouts are permanently
// evicted, and re-pulses back off multiplicatively per edge — e.g.
// `-engine async -synchro voted -channel '{"corrupt":0.05}'`; tune
// with -vote-k, -evict-after and -repulse-cap).
//
// The -scenario flag makes a single run dynamic: a scenario.Def as
// JSON (one-shot region crash, Poisson edge churn, staggered wake-up)
// is generated against the run's graph and seed, the engines apply the
// mutation batches mid-run, recovery is reported, outputs validate
// against the final graph, and -trace histograms carry perturbation
// markers.
//
// The -channel flag makes the links unreliable: a channel.Def as JSON
// (loss, duplication, reordering, corruption rates, plus an optional
// Byzantine node set) is instantiated against the run's seed, every
// transmission is filtered through it in both engines, and the run
// reports the per-pathology event counts. Byzantine nodes babble on
// their own; their outputs are excluded from validation.
//
// The sweep subcommand runs a declarative multi-trial campaign
// (internal/campaign) in parallel and emits aggregate tables, JSON and
// CSV; see examples/specs for spec files (the `scenarios` field sweeps
// dynamic-network scenarios as a campaign axis, e.g.
// examples/specs/churn-mis.json). With -procs N the sweep shards over
// N worker processes through the internal/dispatch coordinator —
// finished cells checkpoint to per-worker spill files in -workdir, a
// killed worker's cells are re-claimed, an interrupted sweep resumes
// from the same -workdir, and the merged output is byte-identical to
// the in-process run at every proc count (strip the machine-dependent
// wall-clock stats with -stripwall to compare). The work subcommand is
// one such worker: spawned by the coordinator, or run by hand against
// a shared work directory for coordinator-less sharding, e.g.
//
//	stonesim sweep -spec examples/specs/smoke.json -procs 3 -workdir /tmp/sweep
//	stonesim work -workdir /mnt/shared/sweep -spec examples/specs/smoke.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"stoneage/internal/campaign"
	"stoneage/internal/channel"
	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/lba"
	"stoneage/internal/protocol"
	"stoneage/internal/scenario"
	"stoneage/internal/trace"
	"stoneage/internal/xrand"

	// Link the full built-in protocol set into the registry.
	_ "stoneage/internal/protocol/std"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stonesim:", err)
		os.Exit(1)
	}
}

type options struct {
	protocol   string
	params     string
	graphKind  string
	inFile     string
	n          int
	p          float64
	seed       uint64
	eng        string
	adversary  string
	synchro    string
	voteK      int
	evictAfter int
	repulseCap int
	word       string
	traceCSV   string
	workers    int
	trials     int
	scenario   string
	channel    string
	backend    string
}

// parseParams turns the -param flag ("name=value[,name=value]") into
// protocol arguments; domain validation happens in the registry.
func parseParams(s string) (protocol.Args, error) {
	if s == "" {
		return nil, nil
	}
	args := protocol.Args{}
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("-param entry %q is not name=value", kv)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("-param %s: %v", name, err)
		}
		args[strings.TrimSpace(name)] = v
	}
	return args, nil
}

func run(args []string, w io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "sweep":
			return runSweep(args[1:], w)
		case "work":
			return runWork(args[1:], w)
		case "protocols":
			return runProtocols(args[1:], w)
		}
	}
	fs := flag.NewFlagSet("stonesim", flag.ContinueOnError)
	var opt options
	fs.StringVar(&opt.protocol, "protocol", "mis",
		strings.Join(protocol.Names(), " | ")+" | lba-abc | lba-palindrome")
	fs.StringVar(&opt.params, "param", "", "protocol parameters, name=value[,name=value] (domains: stonesim protocols)")
	fs.StringVar(&opt.graphKind, "graph", "gnp", "graph family")
	fs.StringVar(&opt.inFile, "in", "", "read the graph from an edge-list file instead of generating")
	fs.IntVar(&opt.n, "n", 64, "number of nodes")
	fs.Float64Var(&opt.p, "p", 0, "G(n,p) edge probability (default 4/n)")
	fs.Uint64Var(&opt.seed, "seed", 1, "random seed")
	fs.StringVar(&opt.eng, "engine", "sync", "sync | async")
	fs.StringVar(&opt.adversary, "adversary", "uniform", "async adversary policy")
	fs.StringVar(&opt.synchro, "synchro", "alpha",
		"async synchronizer: alpha (Theorem 3.1/3.4) | tolerant (loss-tolerant αβ hybrid) | voted (k-of-(2k−1) voting, dead-edge eviction, adaptive backoff)")
	fs.IntVar(&opt.voteK, "vote-k", 0, "voted synchronizer: votes needed to commit a receipt, over a window of 2k−1 (0 = default 2; 1 degenerates to tolerant)")
	fs.IntVar(&opt.evictAfter, "evict-after", 0, "voted synchronizer: consecutive receipt-less timeout firings before an edge is evicted (0 = default 3)")
	fs.IntVar(&opt.repulseCap, "repulse-cap", 0, "voted synchronizer: per-edge re-pulse backoff cap, in timeout firings (0 = default 8; 1 disables backoff)")
	fs.StringVar(&opt.word, "word", "abc", "input word for the lba protocols")
	fs.StringVar(&opt.traceCSV, "trace", "", "write a per-round state histogram CSV to this file (sync engine, engine-hosted protocols only)")
	fs.IntVar(&opt.workers, "workers", 0, "sync round-loop workers (0 = GOMAXPROCS); results are identical for every value")
	fs.StringVar(&opt.backend, "backend", "",
		"sync executor: flat | packed (bit-plane, static reliable runs only); empty auto-selects by size — all bit-identical")
	fs.IntVar(&opt.trials, "trials", 1, "repeat the run over derived seeds, reusing one scratch arena, and report per-trial metrics")
	fs.StringVar(&opt.scenario, "scenario", "",
		`dynamic-network scenario as JSON, e.g. '{"kind":"churn","rate":2}' (kinds: none, crash, churn, wake; engine-hosted protocols only)`)
	fs.StringVar(&opt.channel, "channel", "",
		`unreliable-channel model as JSON, e.g. '{"drop":0.2,"byz":[{"behavior":"babble","frac":0.05}]}' (engine-hosted protocols only)`)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if strings.HasPrefix(opt.protocol, "lba-") {
		return runLBA(opt, w)
	}

	d, err := protocol.Lookup(opt.protocol)
	if err != nil {
		return err
	}
	g, err := buildGraph(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph: %s  n=%d m=%d Δ=%d\n", describeGraph(opt), g.N(), g.M(), g.MaxDegree())
	return runProtocol(opt, d, g, w)
}

// runProtocol is the single registry-driven execution pipeline: bind
// (with any -param arguments), run on the selected engine, validate the
// output with the descriptor's checker, and print the metrics and the
// output summary.
func runProtocol(opt options, d *protocol.Descriptor, g *graph.Graph, w io.Writer) error {
	args, err := parseParams(opt.params)
	if err != nil {
		return err
	}
	bound, err := d.Bind(g, args)
	if err != nil {
		return err
	}
	sc, err := parseScenario(opt, g)
	if err != nil {
		return err
	}
	model, byz, err := parseChannel(opt, g)
	if err != nil {
		return err
	}
	if len(byz) > 0 {
		// Byzantine nodes ride on the scenario layer; synthesize an empty
		// scenario when -scenario was not given so the engines see them.
		if sc == nil {
			sc = &scenario.Scenario{Reset: scenario.ResetAuto}
		}
		sc.Byzantine = byz
	}
	// Repeated trials share one scratch arena — the same zero-alloc
	// reuse discipline the campaign workers run with — so a CLI
	// micro-sweep over seeds costs barely more than its first trial.
	trials := opt.trials
	if trials < 1 {
		trials = 1
	}
	scratch := protocol.NewScratch()
	var run *protocol.Run
	for trial := 0; trial < trials; trial++ {
		seed := opt.seed + uint64(trial)
		label := ""
		if trials > 1 {
			label = fmt.Sprintf("trial %d (seed %d): ", trial, seed)
		}
		switch opt.eng {
		case "sync":
			cfg := protocol.SyncConfig{Seed: seed, Workers: opt.workers, Scenario: sc, Channel: model, Backend: opt.backend}
			var hist *trace.Histogram
			if opt.traceCSV != "" && trial == 0 {
				names := bound.StateNames()
				if names == nil {
					return fmt.Errorf("protocol %q does not support -trace (bespoke engine)", d.Name)
				}
				hist = trace.NewHistogram(names)
				cfg.Observer = hist.Observer()
			}
			if run, err = bound.RunSyncReusing(cfg, scratch); err != nil {
				return err
			}
			if hist != nil {
				for _, at := range run.PerturbedAt {
					hist.Marks = append(hist.Marks, int(at))
				}
				if err := writeTraceCSV(opt.traceCSV, hist); err != nil {
					return err
				}
			}
			fmt.Fprintf(w, "%s%s: %d rounds, %d transmissions\n", label, d.Name, run.Rounds, run.Transmissions)
		case "async":
			adv, err := pickAdversary(opt)
			if err != nil {
				return err
			}
			if run, err = bound.RunAsyncReusing(protocol.AsyncConfig{
				Seed: seed, Adversary: adv, Scenario: sc, Channel: model,
				Synchro: opt.synchro,
				VoteK:   opt.voteK, EvictAfter: opt.evictAfter, RePulseCap: opt.repulseCap,
			}, scratch); err != nil {
				return err
			}
			fmt.Fprintf(w, "%s%s: %.1f time units, %d steps, %d lost messages (adversary %s, synchro %s)\n",
				label, d.Name, run.TimeUnits, run.Steps, run.Lost, opt.adversary, opt.synchro)
			if opt.synchro == protocol.SynchroVoted {
				fmt.Fprintf(w, "%svoted: %d re-pulses (%d sent), %d rejected receipts, %d evicted edges\n",
					label, run.RePulses, run.RePulseSends, run.VotedRejections, len(run.EvictedEdges))
			}
		default:
			return fmt.Errorf("unknown engine %q", opt.eng)
		}
	}
	if model != nil || len(byz) > 0 {
		fmt.Fprintf(w, "channel: %d dropped, %d duplicated, %d delayed, %d reordered, %d corrupted, %d severed; %d byzantine nodes\n",
			run.Dropped, run.Duplicated, run.Delayed, run.Reordered, run.Corrupted, run.Severed, len(run.Byzantine))
	}
	if run.Perturbations() > 0 {
		unit := "rounds"
		if opt.eng == "async" {
			unit = "time units"
		}
		fmt.Fprintf(w, "dynamic: %d perturbations, recovered in %s %s (final graph: n=%d m=%d)\n",
			run.Perturbations(), formatRecovery(run.Recovery), unit,
			run.FinalGraph.N(), run.FinalGraph.M())
	}
	if err := bound.CheckRun(run); err != nil {
		return fmt.Errorf("output validation: %w", err)
	}
	fmt.Fprintf(w, "valid %s\n", run.Output.Summary())
	return nil
}

// parseScenario decodes the -scenario flag (a scenario.Def as JSON) and
// generates the concrete schedule against the run's graph and seed.
func parseScenario(opt options, g *graph.Graph) (*scenario.Scenario, error) {
	if opt.scenario == "" {
		return nil, nil
	}
	var def scenario.Def
	dec := json.NewDecoder(strings.NewReader(opt.scenario))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&def); err != nil {
		return nil, fmt.Errorf("-scenario: %v", err)
	}
	sc, err := def.Generate(g, opt.seed^0x73636e) // distinct from the protocol's coins
	if err != nil {
		return nil, fmt.Errorf("-scenario: %w", err)
	}
	return sc, nil
}

// parseChannel decodes the -channel flag (a channel.Def as JSON) and
// instantiates the link model and the Byzantine node set against the
// run's graph and seed.
func parseChannel(opt options, g *graph.Graph) (channel.Model, []channel.ByzNode, error) {
	if opt.channel == "" {
		return nil, nil, nil
	}
	var def channel.Def
	dec := json.NewDecoder(strings.NewReader(opt.channel))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&def); err != nil {
		return nil, nil, fmt.Errorf("-channel: %v", err)
	}
	if err := def.Validate(); err != nil {
		return nil, nil, fmt.Errorf("-channel: %w", err)
	}
	seed := opt.seed ^ 0x6368616e // distinct from the protocol's and the scenario's coins
	return def.Model(seed), def.Byzantine(g.N(), seed), nil
}

func formatRecovery(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func writeTraceCSV(path string, hist *trace.Histogram) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return hist.WriteCSV(f)
}

func describeGraph(opt options) string {
	if opt.inFile != "" {
		return opt.inFile
	}
	return opt.graphKind
}

func buildGraph(opt options) (*graph.Graph, error) {
	if opt.inFile != "" {
		f, err := os.Open(opt.inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.Decode(f)
	}
	src := xrand.New(opt.seed)
	n := opt.n
	p := opt.p
	if p <= 0 {
		p = 4.0 / float64(n)
	}
	side := int(math.Round(math.Sqrt(float64(n))))
	switch opt.graphKind {
	case "path":
		return graph.Path(n), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "star":
		return graph.Star(n), nil
	case "clique":
		return graph.Clique(n), nil
	case "grid":
		return graph.Grid(side, side), nil
	case "torus":
		return graph.Torus(side, side), nil
	case "tree":
		return graph.RandomTree(n, src), nil
	case "binary":
		return graph.BinaryTree(n), nil
	case "caterpillar":
		return graph.Caterpillar(n), nil
	case "broom":
		return graph.Broom(n), nil
	case "gnp":
		return graph.GnpConnected(n, p, src), nil
	case "geometric", "powerlaw", "smallworld":
		// The campaign registry is the single source of truth for the
		// sweep families' default parameters, so single runs generate
		// exactly the family the sweeps measure.
		return campaign.BuildGraph(campaign.Family{Kind: opt.graphKind}, n, opt.seed)
	case "lattice":
		return graph.ProneuralLattice(side, side), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", opt.graphKind)
	}
}

func pickAdversary(opt options) (engine.Adversary, error) {
	adv, ok := engine.NamedAdversaries(opt.seed + 1)[opt.adversary]
	if !ok {
		return nil, fmt.Errorf("unknown adversary %q", opt.adversary)
	}
	return adv, nil
}

func runLBA(opt options, w io.Writer) error {
	var (
		tm    *lba.TM
		input []lba.Symbol
	)
	switch opt.protocol {
	case "lba-abc":
		tm = lba.ABC()
		input = make([]lba.Symbol, len(opt.word))
		for i, c := range opt.word {
			switch c {
			case 'a':
				input[i] = lba.SymA
			case 'b':
				input[i] = lba.SymB
			case 'c':
				input[i] = lba.SymC
			default:
				return fmt.Errorf("lba-abc input must be over {a,b,c}, got %q", opt.word)
			}
		}
	case "lba-palindrome":
		tm = lba.Palindrome()
		input = make([]lba.Symbol, len(opt.word))
		for i, c := range opt.word {
			switch c {
			case 'a':
				input[i] = lba.PalA
			case 'b':
				input[i] = lba.PalB
			default:
				return fmt.Errorf("lba-palindrome input must be over {a,b}, got %q", opt.word)
			}
		}
	default:
		return fmt.Errorf("unknown protocol %q", opt.protocol)
	}
	direct, err := tm.Run(input, opt.seed, 0)
	if err != nil {
		return err
	}
	path, err := lba.RunOnPath(tm, input, opt.seed, 0)
	if err != nil {
		return err
	}
	if path.Accepted != direct.Accepted {
		return fmt.Errorf("path verdict %v disagrees with direct run %v", path.Accepted, direct.Accepted)
	}
	verdict := "REJECT"
	if path.Accepted {
		verdict = "ACCEPT"
	}
	fmt.Fprintf(w, "%s(%q) = %s  (direct: %d TM steps; path network of %d FSMs: %d rounds)\n",
		tm.Name, opt.word, verdict, direct.Steps, len(input), path.Rounds)
	return nil
}
