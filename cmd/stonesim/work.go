package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stoneage/internal/campaign"
	"stoneage/internal/dispatch"
)

// runWork is the `stonesim work` subcommand: one sweep worker. The
// coordinator (`stonesim sweep -procs N`) re-execs it against its
// socket; run by hand with no -connect it works coordinator-less
// against the shared work directory, claiming cells via O_EXCL claim
// files — several machines sharing a filesystem can each run one and a
// final `stonesim sweep -procs 1 -workdir D` merges the spills.
// SIGINT/SIGTERM stops at the next trial boundary; every finished cell
// is already fsync'd in this worker's spill file.
func runWork(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("stonesim work", flag.ContinueOnError)
	workdir := fs.String("workdir", "", "sweep work directory (required)")
	connect := fs.String("connect", "", "coordinator socket to serve under (empty = coordinator-less claim-directory mode)")
	id := fs.String("id", "", "worker id (default derives from the pid); keys the spill file and claims")
	spec := fs.String("spec", "", "campaign spec file; default reads <workdir>/spec.json (a fresh directory requires one, and is then stamped for later workers)")
	lease := fs.Duration("lease", 0, "lease TTL before a silent worker's claims are stolen (default 15s)")
	heartbeat := fs.Duration("heartbeat", 0, "lease renewal period (default lease/3)")
	quiet := fs.Bool("q", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workdir == "" {
		return fmt.Errorf("work: -workdir is required")
	}
	opts := dispatch.Options{
		ID:        *id,
		WorkDir:   *workdir,
		Connect:   *connect,
		LeaseTTL:  *lease,
		Heartbeat: *heartbeat,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	if *spec != "" {
		sp, err := campaign.LoadSpec(*spec)
		if err != nil {
			return err
		}
		opts.Spec = &sp
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	ran, err := dispatch.Work(ctx, opts)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "worker interrupted: %d finished cells are durable in %s; the in-flight cell will be re-claimed\n", ran, *workdir)
		}
		return err
	}
	if !*quiet {
		fmt.Fprintf(w, "worker done: %d cells in %v\n", ran, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
