package main

import (
	"bytes"
	"strings"
	"testing"

	"stoneage/internal/graph"
)

func TestGenerateAndDecode(t *testing.T) {
	for _, fam := range []string{"path", "cycle", "star", "clique", "grid", "torus",
		"tree", "binary", "caterpillar", "broom", "gnp", "bipartite", "lattice"} {
		var buf bytes.Buffer
		if err := run([]string{"-family", fam, "-n", "20", "-seed", "3"}, &buf); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		g, err := graph.Decode(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("%s: decode: %v", fam, err)
		}
		if g.N() == 0 {
			t.Fatalf("%s: empty graph", fam)
		}
	}
}

func TestTreeFamilyIsTree(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-family", "tree", "-n", "50"}, &buf); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Decode(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTree() {
		t.Fatal("tree family generated a non-tree")
	}
}

func TestUnknownFamily(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-family", "nope"}, &buf); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-family", "gnp", "-n", "30", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-family", "gnp", "-n", "30", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different graphs")
	}
}
