// Command graphgen generates workload graphs in the repository's
// edge-list format (see internal/graph.Decode).
//
// Usage:
//
//	graphgen -family gnp -n 256 -p 0.05 -seed 7 > g.txt
//	graphgen -family tree -n 1000 -out tree.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	family := fs.String("family", "gnp", "path|cycle|star|clique|grid|torus|tree|binary|caterpillar|broom|gnp|bipartite|lattice")
	n := fs.Int("n", 64, "number of nodes")
	p := fs.Float64("p", 0, "G(n,p) edge probability (default 4/n)")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := xrand.New(*seed)
	prob := *p
	if prob <= 0 {
		prob = 4.0 / float64(*n)
	}
	side := int(math.Round(math.Sqrt(float64(*n))))
	var g *graph.Graph
	switch *family {
	case "path":
		g = graph.Path(*n)
	case "cycle":
		g = graph.Cycle(*n)
	case "star":
		g = graph.Star(*n)
	case "clique":
		g = graph.Clique(*n)
	case "grid":
		g = graph.Grid(side, side)
	case "torus":
		g = graph.Torus(side, side)
	case "tree":
		g = graph.RandomTree(*n, src)
	case "binary":
		g = graph.BinaryTree(*n)
	case "caterpillar":
		g = graph.Caterpillar(*n)
	case "broom":
		g = graph.Broom(*n)
	case "gnp":
		g = graph.GnpConnected(*n, prob, src)
	case "bipartite":
		g = graph.CompleteBipartite(*n/2, *n-*n/2)
	case "lattice":
		g = graph.ProneuralLattice(side, side)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return g.Encode(w)
}
