package main

import (
	"fmt"
	"math"

	"stoneage/internal/baseline"
	"stoneage/internal/coloring"
	"stoneage/internal/degcolor"
	"stoneage/internal/graph"
	"stoneage/internal/harness"
	"stoneage/internal/mis"
	"stoneage/internal/xrand"
)

// expE12 measures the bounded-degree (Δ+1)-coloring extension.
func expE12(cfg config) ([]*harness.Table, error) {
	sizes := harness.GeoSizes(16, 4096, 4)
	trials := 3
	if cfg.quick {
		sizes = harness.GeoSizes(16, 256, 4)
		trials = 2
	}
	t := &harness.Table{
		Title:  "(Δ+1)-coloring rounds under the pure nFSM model (bounded degree)",
		Header: append([]string{"family (Δ)"}, sizeHeaders(sizes, "best fit")...),
	}
	fams := []struct {
		name   string
		maxDeg int
		gen    func(n int, src *xrand.Source) *graph.Graph
	}{
		{"cycle (2)", 2, func(n int, src *xrand.Source) *graph.Graph { return graph.Cycle(n) }},
		{"torus (4)", 4, func(n int, src *xrand.Source) *graph.Graph {
			side := int(math.Round(math.Sqrt(float64(n))))
			return graph.Torus(side, side)
		}},
		{"near-regular (5)", 5, func(n int, src *xrand.Source) *graph.Graph {
			return graph.NearRegular(n, 5, src)
		}},
	}
	for _, fam := range fams {
		src := xrand.New(cfg.seed + 41)
		row := []any{fam.name}
		var ys []float64
		for _, n := range sizes {
			total := 0.0
			for s := 0; s < trials; s++ {
				g := fam.gen(n, src)
				run, err := degcolor.SolveSync(g, fam.maxDeg, cfg.seed+uint64(s), 0)
				if err != nil {
					return nil, err
				}
				if err := g.IsProperColoring(run.Colors, fam.maxDeg+1); err != nil {
					return nil, fmt.Errorf("%s n=%d: %w", fam.name, n, err)
				}
				total += float64(run.Rounds)
			}
			mean := total / float64(trials)
			ys = append(ys, mean)
			row = append(row, mean)
		}
		row = append(row, harness.BestLaw(sizes, ys))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"Extension beyond Section 5: with Δ a universal constant, requirement (M4) admits a",
		"(Δ+1)-palette race in the pure model; rounds are O(log n) w.h.p. All outputs validated.")
	return []*harness.Table{t}, nil
}

// expE13 contrasts 2-coloring (Θ(diameter), even with unbounded
// messages) against the paper's O(log n) 3-coloring on trees.
func expE13(cfg config) ([]*harness.Table, error) {
	sizes := harness.GeoSizes(32, 2048, 4)
	if cfg.quick {
		sizes = harness.GeoSizes(32, 512, 4)
	}
	t := &harness.Table{
		Title:  "2 colors vs 3 colors on paths (rounds)",
		Header: []string{"n", "diameter", "2-color (LOCAL BFS)", "3-color (nFSM)", "2-color/diam", "3-color/log n"},
	}
	for _, n := range sizes {
		g := graph.Path(n)
		diam, err := g.Diameter()
		if err != nil {
			return nil, err
		}
		colors2, rounds2, err := baseline.TwoColorTree(g, 0)
		if err != nil {
			return nil, err
		}
		if err := g.IsProperColoring(colors2, 2); err != nil {
			return nil, err
		}
		run3, err := coloring.SolveSync(g, cfg.seed, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, diam, rounds2, run3.Rounds,
			float64(rounds2)/float64(diam),
			float64(run3.Rounds)/math.Log2(float64(n)))
	}
	t.Notes = append(t.Notes,
		"Section 5's opening remark: 2-coloring takes Θ(diameter) rounds even in the message-passing",
		"model (the wave must traverse the tree), while three colors admit O(log n) — the crossover",
		"in favour of the stone-age protocol appears as soon as diameter ≫ log n.")
	return []*harness.Table{t}, nil
}

// expE14 demonstrates the Section 6 separation in its simplest concrete
// form: the exact-degree problem. A message-passing node reads its exact
// degree locally in one round; an nFSM node can only ever learn
// f_b(degree) — the one-two-many clamp (M4) — so for any fixed b the
// fraction of nodes whose exact degree is information-theoretically
// unrecoverable tends to 1 as the degree distribution outgrows b.
func expE14(cfg config) ([]*harness.Table, error) {
	t := &harness.Table{
		Title:  "One-two-many information loss on the exact-degree problem",
		Header: []string{"graph", "n", "Δ", "b=1 identifiable", "b=3 identifiable", "b=7 identifiable"},
	}
	src := xrand.New(cfg.seed + 61)
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", graph.Cycle(256)},
		{"grid", graph.Grid(16, 16)},
		{"gnp d̄=8", graph.GnpConnected(256, 8.0/256, src)},
		{"star", graph.Star(256)},
		{"clique", graph.Clique(64)},
	}
	for _, w := range workloads {
		row := []any{w.name, w.g.N(), w.g.MaxDegree()}
		for _, b := range []int{1, 3, 7} {
			identifiable := 0
			for v := 0; v < w.g.N(); v++ {
				// A degree is identifiable iff it is below the clamp:
				// f_b maps it to a singleton class.
				if w.g.Degree(v) < b {
					identifiable++
				}
			}
			row = append(row, float64(identifiable)/float64(w.g.N()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"The message-passing model solves exact-degree in one round for every node. Under the nFSM",
		"model the answer set must be constant (requirement (M4)): any protocol observes at most",
		"f_b(d), so degrees ≥ b collapse into one class — the wall that makes the model strictly",
		"weaker than message passing (Section 6), independent of running time.")
	return []*harness.Table{t}, nil
}

// expF1 regenerates Figure 1: the MIS protocol's transition diagram,
// derived mechanically from the implemented δ (and golden-tested against
// the paper's arrow set in internal/mis).
func expF1(cfg config) ([]*harness.Table, error) {
	t := &harness.Table{
		Title:  "Figure 1 — the MIS transition diagram, derived from δ",
		Header: []string{"from", "to", "transmits"},
	}
	names := mis.Protocol().StateNames
	for _, e := range mis.TransitionDiagram() {
		emit := "ε (silent)"
		if e.Emit >= 0 {
			emit = names[e.Emit]
		}
		kind := ""
		if e.From == e.To {
			kind = " (delay/sink loop)"
		}
		t.AddRow(names[e.From], names[e.To]+kind, emit)
	}
	t.Notes = append(t.Notes,
		"Derived by enumerating δ over all 2⁷ clamped count vectors per state; the test suite",
		"asserts this arrow set equals Figure 1 of the paper exactly.")
	return []*harness.Table{t}, nil
}
