package main

import (
	"fmt"
	"math"

	"stoneage/internal/baseline"
	"stoneage/internal/campaign"
	"stoneage/internal/coloring"
	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/harness"
	"stoneage/internal/lba"
	"stoneage/internal/matching"
	"stoneage/internal/mis"
	"stoneage/internal/nfsm"
	"stoneage/internal/synchro"
	"stoneage/internal/xrand"
)

// graphFamily is a sized workload generator. The measurement
// experiments (E1, E5) now run as internal/campaign sweeps; this local
// shape survives for the census experiments (E7) that walk graphs
// without executing a protocol.
type graphFamily struct {
	name string
	gen  func(n int, src *xrand.Source) *graph.Graph
}

func treeFamilies() []graphFamily {
	return []graphFamily{
		{"random", func(n int, src *xrand.Source) *graph.Graph { return graph.RandomTree(n, src) }},
		{"path", func(n int, src *xrand.Source) *graph.Graph { return graph.Path(n) }},
		{"star", func(n int, src *xrand.Source) *graph.Graph { return graph.Star(n) }},
		{"binary", func(n int, src *xrand.Source) *graph.Graph { return graph.BinaryTree(n) }},
		{"caterpillar", func(n int, src *xrand.Source) *graph.Graph { return graph.Caterpillar(n) }},
		{"broom", func(n int, src *xrand.Source) *graph.Graph { return graph.Broom(n) }},
	}
}

// expE1 measures the synchronous MIS round count across graph families
// and sizes, fitting the scaling law. Theorem 4.5 predicts O(log² n).
// It is a thin caller of a campaign spec: the cross product runs on the
// parallel trial pool with per-trial deterministic seeds, and every
// output is validated by the runner.
func expE1(cfg config) ([]*harness.Table, error) {
	sizes := harness.GeoSizes(16, 2048, 2)
	trials := 5
	if cfg.quick {
		sizes = harness.GeoSizes(16, 256, 2)
		trials = 3
	}
	sp := campaign.Spec{
		Name:      "E1",
		Protocols: []string{"mis"},
		// A fresh graph instance per trial: the table's means average
		// over the family's randomness as well as the protocol's coins,
		// matching the pre-campaign measurement semantics.
		GraphPerTrial: true,
		Families: []campaign.Family{
			{Kind: "gnp", Param: campaign.Param(4), Label: "gnp(d̄=4)"},
			{Kind: "tree"},
			{Kind: "grid"},
			{Kind: "cycle"},
			{Kind: "geometric"},
			{Kind: "powerlaw"},
			{Kind: "smallworld"},
		},
		Sizes:  sizes,
		Trials: trials,
		Seed:   cfg.seed,
	}
	res, err := campaign.Run(sp)
	if err != nil {
		return nil, err
	}
	t := &harness.Table{
		Title:  "Mean MIS rounds (synchronous engine)",
		Header: append([]string{"family"}, sizeHeaders(sizes, "rounds/log²n @max", "best fit")...),
	}
	chart := map[string][]float64{}
	for _, fam := range sp.Families {
		row := []any{fam.Name()}
		var ys []float64
		for _, n := range sizes {
			mean := res.Lookup(sp.Protocols[0], fam.Name(), n).Rounds.Mean
			ys = append(ys, mean)
			row = append(row, mean)
		}
		l := math.Log2(float64(sizes[len(sizes)-1]))
		row = append(row, ys[len(ys)-1]/(l*l), harness.BestLaw(sizes, ys))
		chart[fam.Name()] = ys
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		harness.ASCIIChart("MIS rounds vs n", sizes, chart, 64, 14),
		"Every run's output was validated as a maximal independent set (campaign runner).",
		"Theorem 4.5 claims O(log² n) — an upper bound. The measured growth on these families is even",
		"milder (≈ c·log n, the rounds/log²n ratio is decreasing), consistent with the bound: the",
		"log² comes from O(log n) tournaments × O(log n) whp turn-length, and typical turn counts are O(1).")
	return []*harness.Table{t}, nil
}

func sizeHeaders(sizes []int, extra ...string) []string {
	out := make([]string, 0, len(sizes)+len(extra))
	for _, n := range sizes {
		out = append(out, fmt.Sprintf("n=%d", n))
	}
	return append(out, extra...)
}

// expE2 runs the compiled MIS protocol asynchronously under every
// adversary policy and reports normalized run-times.
func expE2(cfg config) ([]*harness.Table, error) {
	sizes := []int{16, 32, 64}
	trials := 3
	if cfg.quick {
		sizes = []int{16, 32}
		trials = 2
	}
	t := &harness.Table{
		Title:  "MIS asynchronous run-time (time units, compiled via CompileRound)",
		Header: append([]string{"adversary"}, sizeHeaders(sizes, "TU/log²n @max")...),
	}
	for _, advName := range []string{"sync", "uniform", "skew", "overwriter", "drift"} {
		adv := engine.NamedAdversaries(cfg.seed + 77)[advName]
		row := []any{advName}
		var last float64
		for _, n := range sizes {
			src := xrand.New(cfg.seed + uint64(n))
			total := 0.0
			for s := 0; s < trials; s++ {
				g := graph.GnpConnected(n, 4.0/float64(n), src)
				// Fast-stepping adversaries burn many machine steps
				// re-polling inside the pausing feature; give them room.
				run, err := mis.SolveAsync(g, cfg.seed+uint64(s), adv, 1<<30)
				if err != nil {
					return nil, err
				}
				if err := g.IsMaximalIndependentSet(run.InSet); err != nil {
					return nil, fmt.Errorf("adversary %s n=%d: %w", advName, n, err)
				}
				total += run.TimeUnits
			}
			last = total / float64(trials)
			row = append(row, last)
		}
		l := math.Log2(float64(sizes[len(sizes)-1]))
		row = append(row, last/(l*l))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"Time units follow the paper's measure: elapsed time over the largest adversary parameter used.",
		"Every output was validated as an MIS under every adversary, including the message-destroying overwriter.")
	return []*harness.Table{t}, nil
}

// expE3 measures the synchronizer's constant-factor overhead: the
// asynchronous time units per simulated synchronous round.
func expE3(cfg config) ([]*harness.Table, error) {
	sizes := []int{16, 32, 64, 128}
	if cfg.quick {
		sizes = []int{16, 32, 64}
	}
	t := &harness.Table{
		Title:  "Synchronizer overhead: async time-units per synchronous round",
		Header: append([]string{"protocol"}, sizeHeaders(sizes, "phase steps (analytic)")...),
	}
	protos := []struct {
		name  string
		proto *nfsm.RoundProtocol
		gen   func(n int, src *xrand.Source) *graph.Graph
	}{
		{"mis", mis.Protocol(), func(n int, src *xrand.Source) *graph.Graph {
			return graph.GnpConnected(n, 4.0/float64(n), src)
		}},
		{"color3", coloring.Protocol(), func(n int, src *xrand.Source) *graph.Graph {
			return graph.RandomTree(n, src)
		}},
	}
	for _, pr := range protos {
		row := []any{pr.name}
		var compiledSteps int
		for _, n := range sizes {
			src := xrand.New(cfg.seed + uint64(n) + 5)
			g := pr.gen(n, src)
			sres, err := engine.RunSync(pr.proto, g, engine.SyncConfig{Seed: cfg.seed})
			if err != nil {
				return nil, err
			}
			compiled, err := synchro.CompileRound(pr.proto)
			if err != nil {
				return nil, err
			}
			ares, err := engine.RunAsync(compiled, g, engine.AsyncConfig{Seed: cfg.seed})
			if err != nil {
				return nil, err
			}
			compiledSteps = compiled.PhaseSteps()
			row = append(row, ares.TimeUnits/float64(sres.Rounds))
		}
		row = append(row, compiledSteps)
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"Theorem 3.1: the ratio is flat in n — the synchronizer costs a constant factor,",
		"close to the analytic per-phase step count (pausing grid + 3 scan passes per letter).")
	return []*harness.Table{t}, nil
}

// expE4 measures the Theorem 3.4 subround expansion factor.
func expE4(cfg config) ([]*harness.Table, error) {
	sizes := []int{32, 128}
	if cfg.quick {
		sizes = []int{32}
	}
	t := &harness.Table{
		Title:  "Multi-letter → single-letter expansion (synchronous engine)",
		Header: []string{"protocol", "|Σ|", "n", "direct rounds", "expanded rounds", "measured factor"},
	}
	protos := []struct {
		name  string
		proto *nfsm.RoundProtocol
		gen   func(n int, src *xrand.Source) *graph.Graph
		check func(g *graph.Graph, states []nfsm.State) error
	}{
		{"mis", mis.Protocol(), func(n int, src *xrand.Source) *graph.Graph {
			return graph.GnpConnected(n, 4.0/float64(n), src)
		}, func(g *graph.Graph, states []nfsm.State) error {
			inSet, err := mis.Extract(states)
			if err != nil {
				return err
			}
			return g.IsMaximalIndependentSet(inSet)
		}},
		{"color3", coloring.Protocol(), func(n int, src *xrand.Source) *graph.Graph {
			return graph.RandomTree(n, src)
		}, func(g *graph.Graph, states []nfsm.State) error {
			colors, err := coloring.Extract(states)
			if err != nil {
				return err
			}
			return g.IsProperColoring(colors, 3)
		}},
	}
	const trials = 8
	for _, pr := range protos {
		for _, n := range sizes {
			src := xrand.New(cfg.seed + uint64(n) + 9)
			g := pr.gen(n, src)
			var directMean, expandedMean float64
			for s := uint64(0); s < trials; s++ {
				direct, err := engine.RunSync(pr.proto, g, engine.SyncConfig{Seed: cfg.seed + s})
				if err != nil {
					return nil, err
				}
				exp, err := synchro.Expand(pr.proto)
				if err != nil {
					return nil, err
				}
				eres, err := engine.RunSync(exp, g, engine.SyncConfig{Seed: cfg.seed + 100 + s})
				if err != nil {
					return nil, err
				}
				if err := pr.check(g, exp.DecodeStates(eres.States)); err != nil {
					return nil, fmt.Errorf("%s n=%d expanded: %w", pr.name, n, err)
				}
				directMean += float64(direct.Rounds) / trials
				expandedMean += float64(eres.Rounds) / trials
			}
			t.AddRow(pr.name, pr.proto.NumLetters(), n, directMean, expandedMean,
				expandedMean/directMean)
		}
	}
	t.Notes = append(t.Notes,
		"Theorem 3.4: each round becomes exactly |Σ| subrounds; the measured factor matches |Σ|",
		"up to the run-to-run variance of the randomized round counts.")
	return []*harness.Table{t}, nil
}

// expE5 measures the tree 3-coloring round count across tree families,
// as a campaign sweep (see expE1).
func expE5(cfg config) ([]*harness.Table, error) {
	sizes := harness.GeoSizes(16, 8192, 2)
	trials := 5
	if cfg.quick {
		sizes = harness.GeoSizes(16, 512, 2)
		trials = 3
	}
	sp := campaign.Spec{
		Name:          "E5",
		Protocols:     []string{"color3"},
		GraphPerTrial: true, // see expE1
		Families: []campaign.Family{
			{Kind: "tree", Label: "random"},
			{Kind: "path"},
			{Kind: "star"},
			{Kind: "binary"},
			{Kind: "caterpillar"},
			{Kind: "broom"},
		},
		Sizes:  sizes,
		Trials: trials,
		Seed:   cfg.seed + 3,
	}
	res, err := campaign.Run(sp)
	if err != nil {
		return nil, err
	}
	t := &harness.Table{
		Title:  "Mean 3-coloring rounds on trees (synchronous engine)",
		Header: append([]string{"family"}, sizeHeaders(sizes, "rounds/log n @max", "best fit")...),
	}
	chart := map[string][]float64{}
	for _, fam := range sp.Families {
		row := []any{fam.Name()}
		var ys []float64
		for _, n := range sizes {
			mean := res.Lookup(sp.Protocols[0], fam.Name(), n).Rounds.Mean
			ys = append(ys, mean)
			row = append(row, mean)
		}
		row = append(row, ys[len(ys)-1]/math.Log2(float64(sizes[len(sizes)-1])),
			harness.BestLaw(sizes, ys))
		chart[fam.Name()] = ys
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		harness.ASCIIChart("3-coloring rounds vs n (trees)", sizes, chart, 64, 14),
		"Every run's output was validated as a proper 3-coloring (campaign runner).",
		"Theorem 5.4 claims O(log n); stars finish in O(1) phases (the waiting hierarchy has depth 1).")
	return []*harness.Table{t}, nil
}

// expE6 reports the per-tournament |E^i| series of the instrumented MIS
// run (Lemma 4.3 predicts geometric decay).
func expE6(cfg config) ([]*harness.Table, error) {
	sizes := []int{128, 512}
	if cfg.quick {
		sizes = []int{128}
	}
	t := &harness.Table{
		Title:  "Virtual-graph edge decay across tournaments",
		Header: []string{"n", "|E¹| |E²| |E³| …", "mean ratio", "max ratio"},
	}
	for _, n := range sizes {
		src := xrand.New(cfg.seed + uint64(n))
		g := graph.Gnp(n, 8.0/float64(n), src)
		_, ts, err := mis.SolveSyncInstrumented(g, cfg.seed, 0)
		if err != nil {
			return nil, err
		}
		series := ""
		for i, e := range ts.Edges {
			if i > 0 {
				series += " "
			}
			series += fmt.Sprintf("%d", e)
		}
		ratios := ts.DecayRatios()
		st := harness.Summarize(ratios)
		t.AddRow(n, series, st.Mean, st.Max)
	}
	t.Notes = append(t.Notes,
		"Lemma 4.3: |E^{i+1}| ≤ c·|E^i| with constant probability — the mean per-tournament decay",
		"ratio stays bounded below 1, giving the O(log n) tournament count used by Theorem 4.5.")
	return []*harness.Table{t}, nil
}

// expE7 verifies Observation 5.2: at least a fifth of any tree's nodes
// are good.
func expE7(cfg config) ([]*harness.Table, error) {
	sizes := []int{16, 64, 256, 1024, 4096}
	if cfg.quick {
		sizes = []int{16, 64, 256}
	}
	t := &harness.Table{
		Title:  "Good-node fraction per tree family (bound: ≥ 0.2)",
		Header: append([]string{"family"}, sizeHeaders(sizes, "min")...),
	}
	for _, fam := range treeFamilies() {
		src := xrand.New(cfg.seed + 11)
		row := []any{fam.name}
		minFrac := 1.0
		for _, n := range sizes {
			g := fam.gen(n, src)
			_, count := g.GoodTreeNodes()
			frac := float64(count) / float64(n)
			if frac < minFrac {
				minFrac = frac
			}
			row = append(row, frac)
		}
		if minFrac < 0.2 {
			return nil, fmt.Errorf("family %s violates Observation 5.2: min fraction %.3f", fam.name, minFrac)
		}
		row = append(row, minFrac)
		t.AddRow(row...)
	}
	return []*harness.Table{t}, nil
}

// expE8 cross-checks the Lemma 6.1 two-sweep rLBA simulator against the
// synchronous engine, step for step.
func expE8(cfg config) ([]*harness.Table, error) {
	t := &harness.Table{
		Title:  "rLBA sweep simulation of the MIS protocol (exact equality vs engine)",
		Header: []string{"graph", "n", "m", "rounds", "tape cells", "head moves", "states equal"},
	}
	src := xrand.New(cfg.seed + 13)
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(64)},
		{"cycle", graph.Cycle(65)},
		{"star", graph.Star(40)},
		{"grid", graph.Grid(8, 8)},
		{"gnp", graph.Gnp(80, 0.08, src)},
	}
	for _, w := range workloads {
		eng, err := engine.RunSync(mis.Protocol(), w.g, engine.SyncConfig{Seed: cfg.seed})
		if err != nil {
			return nil, err
		}
		sim, err := lba.SimulateNFSM(mis.Protocol(), w.g, lba.SweepConfig{Seed: cfg.seed})
		if err != nil {
			return nil, err
		}
		equal := sim.Rounds == eng.Rounds
		for v := range eng.States {
			if sim.States[v] != eng.States[v] {
				equal = false
			}
		}
		if !equal {
			return nil, fmt.Errorf("%s: sweep simulation diverged from the engine", w.name)
		}
		t.AddRow(w.name, w.g.N(), w.g.M(), sim.Rounds, sim.TapeCells, sim.HeadMoves, "yes")
	}
	t.Notes = append(t.Notes,
		"Lemma 6.1: the adjacency-list tape uses O(1) cells per node and edge (linear space),",
		"and the two-sweep execution reproduces the engine's randomized run exactly.")
	return []*harness.Table{t}, nil
}

// expE9 runs the Lemma 6.2 path simulation of the ABC and Palindrome
// machines and compares against direct execution.
func expE9(cfg config) ([]*harness.Table, error) {
	t := &harness.Table{
		Title:  "Path-network simulation of rLBAs (aⁿbⁿcⁿ and palindromes)",
		Header: []string{"machine", "input", "verdict", "TM steps", "path rounds", "rounds/step"},
	}
	type word struct {
		tm    *lba.TM
		label string
		input []lba.Symbol
	}
	var words []word
	abc := lba.ABC()
	for _, n := range []int{1, 2, 4, 8} {
		s := ""
		for _, c := range []byte{'a', 'b', 'c'} {
			for i := 0; i < n; i++ {
				s += string(c)
			}
		}
		words = append(words, word{abc, s, abcSymbols(s)})
	}
	words = append(words,
		word{abc, "aabc", abcSymbols("aabc")},
		word{abc, "abcc", abcSymbols("abcc")},
	)
	pal := lba.Palindrome()
	for _, s := range []string{"abba", "abab", "aabaa", "abbabba"} {
		words = append(words, word{pal, s, palSymbols(s)})
	}
	for _, w := range words {
		direct, err := w.tm.Run(w.input, cfg.seed, 0)
		if err != nil {
			return nil, err
		}
		path, err := lba.RunOnPath(w.tm, w.input, cfg.seed+1, 0)
		if err != nil {
			return nil, err
		}
		if path.Accepted != direct.Accepted {
			return nil, fmt.Errorf("%s %q: verdict mismatch", w.tm.Name, w.label)
		}
		verdict := "reject"
		if path.Accepted {
			verdict = "accept"
		}
		t.AddRow(w.tm.Name, w.label, verdict, direct.Steps, path.Rounds,
			float64(path.Rounds)/float64(direct.Steps))
	}
	t.Notes = append(t.Notes,
		"Lemma 6.2: the path of finite state machines decides the context-sensitive language aⁿbⁿcⁿ,",
		"with a constant number of rounds per machine step (plus the O(n) halt wave).")
	return []*harness.Table{t}, nil
}

func abcSymbols(s string) []lba.Symbol {
	out := make([]lba.Symbol, len(s))
	for i, c := range s {
		switch c {
		case 'a':
			out[i] = lba.SymA
		case 'b':
			out[i] = lba.SymB
		default:
			out[i] = lba.SymC
		}
	}
	return out
}

func palSymbols(s string) []lba.Symbol {
	out := make([]lba.Symbol, len(s))
	for i, c := range s {
		if c == 'a' {
			out[i] = lba.PalA
		} else {
			out[i] = lba.PalB
		}
	}
	return out
}

// expE10 compares the classical baselines against the nFSM MIS and
// coloring protocols.
func expE10(cfg config) ([]*harness.Table, error) {
	sizes := []int{64, 256, 1024}
	trials := 3
	if cfg.quick {
		sizes = []int{64, 256}
		trials = 2
	}
	t := &harness.Table{
		Title:  "MIS rounds: classical models vs nFSM (G(n, d̄=8))",
		Header: append([]string{"algorithm"}, sizeHeaders(sizes, "model")...),
	}
	type algo struct {
		name  string
		model string
		run   func(g *graph.Graph, seed uint64) (float64, error)
	}
	algos := []algo{
		{"Luby", "LOCAL", func(g *graph.Graph, seed uint64) (float64, error) {
			inSet, rounds, err := baseline.LubyMIS(g, seed, 0)
			if err != nil {
				return 0, err
			}
			return float64(rounds), g.IsMaximalIndependentSet(inSet)
		}},
		{"Alon-Babai-Itai", "LOCAL", func(g *graph.Graph, seed uint64) (float64, error) {
			inSet, rounds, err := baseline.ABIMIS(g, seed, 0)
			if err != nil {
				return 0, err
			}
			return float64(rounds), g.IsMaximalIndependentSet(inSet)
		}},
		{"bit-stream (Métivier)", "O(1)-bit msgs", func(g *graph.Graph, seed uint64) (float64, error) {
			inSet, rounds, err := baseline.BitStreamMIS(g, seed, 1<<20)
			if err != nil {
				return 0, err
			}
			return float64(rounds), g.IsMaximalIndependentSet(inSet)
		}},
		{"beeping (Afek et al.)", "beeping", func(g *graph.Graph, seed uint64) (float64, error) {
			inSet, rounds, err := baseline.BeepMIS(g, seed, 1<<20)
			if err != nil {
				return 0, err
			}
			return float64(rounds), g.IsMaximalIndependentSet(inSet)
		}},
		{"nFSM (this paper)", "nFSM", func(g *graph.Graph, seed uint64) (float64, error) {
			run, err := mis.SolveSync(g, seed, 0)
			if err != nil {
				return 0, err
			}
			return float64(run.Rounds), g.IsMaximalIndependentSet(run.InSet)
		}},
	}
	perAlgo := map[string][]float64{}
	for _, a := range algos {
		row := []any{a.name}
		for _, n := range sizes {
			src := xrand.New(cfg.seed + uint64(n) + 21)
			total := 0.0
			for s := 0; s < trials; s++ {
				g := graph.GnpConnected(n, 8.0/float64(n), src)
				rounds, err := a.run(g, cfg.seed+uint64(s))
				if err != nil {
					return nil, fmt.Errorf("%s n=%d: %w", a.name, n, err)
				}
				total += rounds
			}
			mean := total / float64(trials)
			perAlgo[a.name] = append(perAlgo[a.name], mean)
			row = append(row, mean)
		}
		row = append(row, a.model)
		t.AddRow(row...)
	}
	ratio := perAlgo["nFSM (this paper)"][len(sizes)-1] / perAlgo["Luby"][len(sizes)-1]
	t.Notes = append(t.Notes,
		fmt.Sprintf("At n=%d the nFSM protocol pays a factor of %.1f over Luby — the expected Θ(log n) price",
			sizes[len(sizes)-1], ratio),
		"for constant-size states and messages (O(log² n) vs O(log n) rounds). All outputs validated.")

	// Coloring side: Cole–Vishkin on directed paths vs nFSM on paths.
	t2 := &harness.Table{
		Title:  "3-coloring rounds on paths: Cole–Vishkin (directed) vs nFSM (undirected)",
		Header: []string{"n", "Cole-Vishkin rounds", "nFSM rounds"},
	}
	for _, n := range sizes {
		g := graph.Path(n)
		colors, cvRounds, err := baseline.ColeVishkinPath(g, 0)
		if err != nil {
			return nil, err
		}
		if err := g.IsProperColoring(colors, 3); err != nil {
			return nil, err
		}
		run, err := coloring.SolveSync(g, cfg.seed, 0)
		if err != nil {
			return nil, err
		}
		t2.AddRow(n, cvRounds, run.Rounds)
	}
	t2.Notes = append(t2.Notes,
		"Cole–Vishkin needs identifiers and an orientation (O(log* n) rounds); the nFSM protocol needs",
		"neither and pays Θ(log n) — optimal for O(1)-bit messages by Kothapalli et al.")
	return []*harness.Table{t, t2}, nil
}

// expE11 exercises the extended-model maximal matching.
func expE11(cfg config) ([]*harness.Table, error) {
	sizes := harness.GeoSizes(16, 1024, 4)
	trials := 3
	if cfg.quick {
		sizes = harness.GeoSizes(16, 256, 4)
		trials = 2
	}
	t := &harness.Table{
		Title:  "Maximal matching rounds under the extended nFSM model",
		Header: append([]string{"family"}, sizeHeaders(sizes, "best fit")...),
	}
	fams := []graphFamily{
		{"gnp(d̄=4)", func(n int, src *xrand.Source) *graph.Graph {
			return graph.GnpConnected(n, 4.0/float64(n), src)
		}},
		{"tree", func(n int, src *xrand.Source) *graph.Graph { return graph.RandomTree(n, src) }},
		{"cycle", func(n int, src *xrand.Source) *graph.Graph { return graph.Cycle(n) }},
	}
	for _, fam := range fams {
		src := xrand.New(cfg.seed + 31)
		row := []any{fam.name}
		var ys []float64
		for _, n := range sizes {
			total := 0.0
			for s := 0; s < trials; s++ {
				g := fam.gen(n, src)
				res, err := matching.Solve(g, cfg.seed+uint64(s), 0)
				if err != nil {
					return nil, err
				}
				if err := g.IsMaximalMatching(res.Mate); err != nil {
					return nil, fmt.Errorf("%s n=%d: %w", fam.name, n, err)
				}
				total += float64(res.Rounds)
			}
			mean := total / float64(trials)
			ys = append(ys, mean)
			row = append(row, mean)
		}
		row = append(row, harness.BestLaw(sizes, ys))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"The paper notes maximal matching needs a small model extension (here: targeted replies +",
		"one remembered port). Outputs validated as maximal matchings; round counts are polylogarithmic.")
	return []*harness.Table{t}, nil
}
