package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGoldenReports pins the exact table output of the deterministic
// experiments: F1 (the machine-derived Figure 1 diagram) and E7 (the
// good-node census) are pure functions of the seed, so their reports
// must be byte-stable across refactors of the driver, the harness
// table renderer and the graph generators. Regenerate with
// `go test ./cmd/experiments -run Golden -update` after an intentional
// change.
func TestGoldenReports(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"F1", []string{"-exp", "F1", "-seed", "1"}},
		{"E7_quick", []string{"-exp", "E7", "-quick", "-seed", "1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tc.args, &sb); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(sb.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if sb.String() != string(want) {
				t.Fatalf("report drifted from %s (regenerate with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s",
					golden, sb.String(), want)
			}
		})
	}
}
