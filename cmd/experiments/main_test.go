package main

import (
	"strings"
	"testing"
)

func TestRegistryCoversAllExperiments(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range registry() {
		ids[e.id] = true
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"} {
		if !ids[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestRunSelectedQuickExperiments(t *testing.T) {
	// E7 (pure census) and E8 (exact cross-check) are fast and
	// deterministic — they smoke-test the whole driver path.
	var sb strings.Builder
	if err := run([]string{"-exp", "e7,E8", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E7", "Good-node", "E8", "states equal", "| yes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E99"}, &sb); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestRunWritesToFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/out.md"
	var sb strings.Builder
	if err := run([]string{"-exp", "E7", "-quick", "-out", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatal("stdout written despite -out")
	}
}
