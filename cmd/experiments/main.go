// Command experiments regenerates every experiment in DESIGN.md's
// per-experiment index (E1–E11) and prints the tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-exp E1,E5] [-quick] [-seed 1] [-out results.md]
//
// Without -exp all experiments run. -quick shrinks network sizes and
// trial counts for a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"stoneage/internal/harness"
)

// config carries the experiment-wide knobs.
type config struct {
	quick bool
	seed  uint64
}

// experiment is one row of the registry.
type experiment struct {
	id    string
	title string
	run   func(cfg config) ([]*harness.Table, error)
}

func registry() []experiment {
	return []experiment{
		{"F1", "Figure 1: the MIS transition diagram (machine-derived)", expF1},
		{"E1", "MIS run-time scaling, synchronous (Theorem 4.5, Figure 1)", expE1},
		{"E2", "MIS under asynchronous adversaries (Theorems 3.1+3.4+4.5)", expE2},
		{"E3", "Synchronizer overhead is constant (Theorem 3.1)", expE3},
		{"E4", "Multi-letter query expansion factor (Theorem 3.4)", expE4},
		{"E5", "Tree 3-coloring run-time scaling (Theorem 5.4)", expE5},
		{"E6", "Tournament edge decay (Lemma 4.3)", expE6},
		{"E7", "Good-node fraction in trees (Observation 5.2)", expE7},
		{"E8", "rLBA simulates nFSM, exact cross-check (Lemma 6.1)", expE8},
		{"E9", "nFSM on a path simulates rLBA (Lemma 6.2)", expE9},
		{"E10", "Message-passing and beeping baselines vs nFSM (related work)", expE10},
		{"E11", "Maximal matching under the extended model (Section 1 remark)", expE11},
		{"E12", "(Δ+1)-coloring of bounded-degree graphs (extension)", expE12},
		{"E13", "2-coloring needs Θ(diameter): why the paper uses 3 colors (Section 5)", expE13},
		{"E14", "One-two-many information loss: exact degree is unattainable (Section 6)", expE14},
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	expFlag := fs.String("exp", "all", "comma-separated experiment ids (E1..E11) or \"all\"")
	quick := fs.Bool("quick", false, "smaller sizes and fewer trials")
	seed := fs.Uint64("seed", 1, "master random seed")
	out := fs.String("out", "", "write the report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := map[string]bool{}
	if *expFlag != "all" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	cfg := config{quick: *quick, seed: *seed}
	ran := 0
	for _, exp := range registry() {
		if len(want) > 0 && !want[exp.id] {
			continue
		}
		ran++
		fmt.Fprintf(w, "# %s — %s\n\n", exp.id, exp.title)
		tables, err := exp.run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.id, err)
		}
		for _, t := range tables {
			if err := t.Render(w); err != nil {
				return err
			}
		}
	}
	if ran == 0 {
		ids := make([]string, 0, len(want))
		for id := range want {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		return fmt.Errorf("no experiment matched %v", ids)
	}
	return nil
}
