#!/bin/sh
# bench.sh — run the tracked benchmark set and write BENCH_<PR>.json.
#
# Runs the E1 (MIS sync), E5 (tree coloring) and E9 (nFSM-simulates-LBA)
# benchmarks plus the engine ref-vs-compiled ablation, the
# async-engine set (E2 MIS under adversaries, E3 synchronizer overhead,
# the per-step engine ablation), the campaign sweep benchmark, and the
# registry-generated protocol matrix (one sub-benchmark per protocol in
# internal/protocol's registry, graphs chosen by capability) with
# -benchmem, and converts the output into a JSON file so future PRs can
# diff the perf trajectory. CI-friendly: exits non-zero if the
# benchmarks fail.
#
# Usage: scripts/bench.sh [out.json] [benchtime]
#   out.json   defaults to BENCH_3.json
#   benchtime  defaults to 20x (per-benchmark iteration count)
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_3.json}"
BENCHTIME="${2:-20x}"
PATTERN='BenchmarkMISSync|BenchmarkColoringSync|BenchmarkNFSMSimulatesLBA|BenchmarkEngineCompiledVsRef|BenchmarkMISAsync|BenchmarkSynchronizerOverhead|BenchmarkEngineStep|BenchmarkCampaignMISSweep|BenchmarkProtocolMatrix'
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Write to the file first and check go test's own status: piping into
# tee would let a benchmark failure exit 0 (POSIX sh has no pipefail).
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -benchmem . > "$RAW" 2>&1 || {
	cat "$RAW"
	exit 1
}
cat "$RAW"

awk -v benchtime="$BENCHTIME" '
BEGIN { n = 0 }
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    iters = $2
    line = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i
        unit = $(i + 1)
        if (unit == "ns/op")          key = "ns_per_op"
        else if (unit == "B/op")      key = "bytes_per_op"
        else if (unit == "allocs/op") key = "allocs_per_op"
        else {
            gsub(/"/, "\\\"", unit)
            key = unit
        }
        line = line sprintf("\"%s\": %s, ", key, val)
    }
    sub(/, $/, "", line)
    recs[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, %s}", name, iters, line)
}
END {
    printf "{\n"
    printf "  \"suite\": \"stoneage tracked benchmarks (E1, E2, E3, E5, E9, engine ablations, campaign sweep)\",\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", recs[i], (i + 1 < n ? "," : "")
    printf "  ]\n"
    printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
