package baseline

import (
	"testing"

	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

func TestTwoColorTreeValid(t *testing.T) {
	src := xrand.New(4)
	trees := map[string]*graph.Graph{
		"single": graph.New(1),
		"pair":   graph.Path(2),
		"path":   graph.Path(50),
		"star":   graph.Star(20),
		"binary": graph.BinaryTree(31),
		"random": graph.RandomTree(80, src),
	}
	for name, g := range trees {
		t.Run(name, func(t *testing.T) {
			colors, rounds, err := TwoColorTree(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.IsProperColoring(colors, 2); err != nil {
				t.Fatal(err)
			}
			if rounds <= 0 {
				t.Fatalf("rounds = %d", rounds)
			}
		})
	}
}

func TestTwoColorTreeRoundsTrackEccentricity(t *testing.T) {
	// On a path rooted at an end, the wave needs one round per hop: the
	// round count is Θ(n) — the diameter behaviour the paper contrasts
	// with O(log n) 3-coloring.
	for _, n := range []int{10, 40, 160} {
		g := graph.Path(n)
		_, rounds, err := TwoColorTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rounds < n || rounds > n+2 {
			t.Fatalf("n=%d: rounds = %d, want ≈ n", n, rounds)
		}
	}
}

func TestTwoColorTreeRejectsNonTree(t *testing.T) {
	if _, _, err := TwoColorTree(graph.Cycle(6), 0); err == nil {
		t.Fatal("cycle accepted")
	}
}
