package baseline

import (
	"stoneage/internal/graph"
	"stoneage/internal/protocol"
)

// This file self-registers the classical baselines in the protocol
// registry so the campaign runner, the stonesim CLI and the benchmark
// matrix can sweep them next to the nFSM protocols without knowing
// their packages. Every baseline exploits capabilities the nFSM model
// forbids, which the capability bits record: node identifiers
// (CapNeedsIDs), and — all of them — global synchrony with no
// synchronizer route (CapSyncOnly).

// misSolver adapts the ([]bool, rounds, error) baseline signature.
func misSolver(run func(g *graph.Graph, seed uint64, maxRounds int) ([]bool, int, error)) func(protocol.Args, *graph.Graph, uint64, int) (*protocol.Run, error) {
	return func(_ protocol.Args, g *graph.Graph, seed uint64, maxRounds int) (*protocol.Run, error) {
		inSet, rounds, err := run(g, seed, maxRounds)
		if err != nil {
			return nil, err
		}
		return &protocol.Run{Output: protocol.Mask(inSet), Rounds: rounds}, nil
	}
}

func checkMIS(_ protocol.Args, g *graph.Graph, out protocol.Output) error {
	return g.IsMaximalIndependentSet(out.(protocol.Mask))
}

func checkColoring(k int) func(protocol.Args, *graph.Graph, protocol.Output) error {
	return func(_ protocol.Args, g *graph.Graph, out protocol.Output) error {
		return g.IsProperColoring(out.(protocol.Colors), k)
	}
}

var (
	_ = protocol.Register(&protocol.Descriptor{
		Name:    "luby",
		Summary: "Luby's MIS in the message-passing model (classical comparison point)",
		Caps:    protocol.CapSyncOnly | protocol.CapNeedsIDs,
		Solve:   misSolver(LubyMIS),
		Check:   checkMIS,
		Mutate:  protocol.FlipMask,
	})
	_ = protocol.Register(&protocol.Descriptor{
		Name:    "abi",
		Summary: "Alon–Babai–Itai MIS in the message-passing model",
		Caps:    protocol.CapSyncOnly | protocol.CapNeedsIDs,
		Solve:   misSolver(ABIMIS),
		Check:   checkMIS,
		Mutate:  protocol.FlipMask,
	})
	_ = protocol.Register(&protocol.Descriptor{
		Name:    "bitstream",
		Summary: "bit-streaming MIS tournament (Métivier et al.) — O(1) bits per round",
		Caps:    protocol.CapSyncOnly | protocol.CapNeedsIDs,
		Solve:   misSolver(BitStreamMIS),
		Check:   checkMIS,
		Mutate:  protocol.FlipMask,
	})
	_ = protocol.Register(&protocol.Descriptor{
		Name:    "beeping",
		Summary: "beeping-model MIS (Afek et al. spirit) with multiplicative backoff",
		Caps:    protocol.CapSyncOnly,
		Solve:   misSolver(BeepMIS),
		Check:   checkMIS,
		Mutate:  protocol.FlipMask,
	})
	_ = protocol.Register(&protocol.Descriptor{
		Name:    "colevishkin",
		Summary: "Cole–Vishkin deterministic 3-coloring of directed paths in O(log* n) rounds",
		Caps:    protocol.CapSyncOnly | protocol.CapNeedsIDs | protocol.CapNeedsPath,
		Solve: func(_ protocol.Args, g *graph.Graph, _ uint64, maxRounds int) (*protocol.Run, error) {
			colors, rounds, err := ColeVishkinPath(g, maxRounds)
			if err != nil {
				return nil, err
			}
			return &protocol.Run{Output: protocol.Colors(colors), Rounds: rounds}, nil
		},
		Check:  checkColoring(3),
		Mutate: protocol.ClashColor,
	})
	_ = protocol.Register(&protocol.Descriptor{
		Name:    "twocolor",
		Summary: "Θ(diameter) BFS 2-coloring of trees in the message-passing model",
		Caps:    protocol.CapSyncOnly | protocol.CapNeedsIDs | protocol.CapNeedsTree,
		Solve: func(_ protocol.Args, g *graph.Graph, _ uint64, maxRounds int) (*protocol.Run, error) {
			colors, rounds, err := TwoColorTree(g, maxRounds)
			if err != nil {
				return nil, err
			}
			return &protocol.Run{Output: protocol.Colors(colors), Rounds: rounds}, nil
		},
		Check:  checkColoring(2),
		Mutate: protocol.ClashColor,
	})
)
