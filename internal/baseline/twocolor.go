package baseline

import (
	"fmt"

	"stoneage/internal/graph"
	"stoneage/internal/mp"
	"stoneage/internal/xrand"
)

// This file implements the 2-coloring comparison point for Section 5's
// opening remark: trees are 2-chromatic, but 2-coloring them takes time
// proportional to the diameter *even in the message-passing model*
// (the color of a node is forced by the parity of its distance to any
// already-colored node, and information travels one hop per round).
// The experiment pairs this Θ(diameter) baseline against the paper's
// O(log n) 3-coloring — the reason the paper "must and will" use three
// colors.

// twoColorMsg carries the sender's adopted color.
type twoColorMsg struct {
	color int
}

// twoColorNode floods colors outward from node 0: an uncolored node that
// hears a colored neighbor adopts the opposite color and announces it.
type twoColorNode struct {
	id    int
	deg   int
	color int
}

// Color returns the node's final color (1 or 2).
func (tn *twoColorNode) Color() int { return tn.color }

// Init implements mp.Node.
func (tn *twoColorNode) Init(id, degree int, src *xrand.Source) {
	tn.id, tn.deg = id, degree
}

// Round implements mp.Node.
func (tn *twoColorNode) Round(round int, inbox []any) ([]any, bool) {
	if tn.color != 0 {
		return nil, true // announced last round; done
	}
	if round == 1 {
		if tn.id == 0 {
			tn.color = 1
			return mp.Broadcast(tn.deg, twoColorMsg{color: 1}), tn.deg == 0
		}
		return nil, false
	}
	for _, m := range inbox {
		if msg, ok := m.(twoColorMsg); ok {
			tn.color = 3 - msg.color
			return mp.Broadcast(tn.deg, twoColorMsg{color: tn.color}), false
		}
	}
	return nil, false
}

// TwoColorTree 2-colors a tree by BFS flooding in the message-passing
// model and returns the colors and round count. The round count is
// Θ(eccentricity of node 0) = Θ(diameter) up to a factor of two — the
// lower-bound behaviour the paper contrasts with its O(log n)
// 3-coloring.
func TwoColorTree(g *graph.Graph, maxRounds int) ([]int, int, error) {
	if !g.IsTree() {
		return nil, 0, fmt.Errorf("baseline: TwoColorTree requires a tree")
	}
	rounds, nodes, err := mp.Run(g, func() mp.Node { return &twoColorNode{} }, 0, maxRounds)
	if err != nil {
		return nil, 0, err
	}
	colors := make([]int, g.N())
	for v, node := range nodes {
		tn, ok := node.(*twoColorNode)
		if !ok {
			return nil, 0, fmt.Errorf("baseline: unexpected node type %T", node)
		}
		colors[v] = tn.color
	}
	return colors, rounds, nil
}
