package baseline

import (
	"math"
	"testing"

	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

func workloads(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	src := xrand.New(2)
	return map[string]*graph.Graph{
		"single":    graph.New(1),
		"isolated":  graph.New(12),
		"path":      graph.Path(50),
		"cycle":     graph.Cycle(51),
		"star":      graph.Star(30),
		"clique":    graph.Clique(20),
		"grid":      graph.Grid(7, 8),
		"gnp":       graph.Gnp(80, 0.08, src),
		"dense":     graph.Gnp(60, 0.4, src),
		"tree":      graph.RandomTree(90, src),
		"bipartite": graph.CompleteBipartite(8, 12),
	}
}

func TestLubyMISValid(t *testing.T) {
	for name, g := range workloads(t) {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(0); seed < 5; seed++ {
				inSet, rounds, err := LubyMIS(g, seed, 0)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := g.IsMaximalIndependentSet(inSet); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if rounds <= 0 {
					t.Fatalf("seed %d: rounds = %d", seed, rounds)
				}
			}
		})
	}
}

func TestABIMISValid(t *testing.T) {
	for name, g := range workloads(t) {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(0); seed < 5; seed++ {
				inSet, _, err := ABIMIS(g, seed, 0)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := g.IsMaximalIndependentSet(inSet); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestBitStreamMISValid(t *testing.T) {
	for name, g := range workloads(t) {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(0); seed < 5; seed++ {
				inSet, _, err := BitStreamMIS(g, seed, 1<<18)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := g.IsMaximalIndependentSet(inSet); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestBeepMISValid(t *testing.T) {
	for name, g := range workloads(t) {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(0); seed < 5; seed++ {
				inSet, _, err := BeepMIS(g, seed, 1<<18)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := g.IsMaximalIndependentSet(inSet); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestGreedyMISValid(t *testing.T) {
	for name, g := range workloads(t) {
		if err := g.IsMaximalIndependentSet(GreedyMIS(g)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLubyLogarithmicRounds(t *testing.T) {
	// Luby's O(log n): the rounds/log n ratio must stay bounded.
	ratioAt := func(n int) float64 {
		src := xrand.New(uint64(n))
		g := graph.GnpConnected(n, 4.0/float64(n), src)
		total := 0.0
		for seed := uint64(0); seed < 3; seed++ {
			_, rounds, err := LubyMIS(g, seed, 0)
			if err != nil {
				t.Fatal(err)
			}
			total += float64(rounds)
		}
		return total / 3 / math.Log2(float64(n))
	}
	small, large := ratioAt(64), ratioAt(1024)
	if large > 4*small {
		t.Fatalf("Luby rounds/log n grew from %.2f to %.2f", small, large)
	}
}

func TestColeVishkinPathColors(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10, 100, 1000, 5000} {
		g := graph.Path(n)
		colors, rounds, err := ColeVishkinPath(g, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := g.IsProperColoring(colors, 3); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// O(log* n) + O(1): tiny round counts even for large n.
		if rounds > 20 {
			t.Fatalf("n=%d: %d rounds, expected O(log* n)", n, rounds)
		}
	}
}

func TestColeVishkinRejectsNonPath(t *testing.T) {
	if _, _, err := ColeVishkinPath(graph.Star(5), 0); err == nil {
		t.Fatal("star accepted")
	}
	if _, _, err := ColeVishkinPath(graph.Cycle(6), 0); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, _, err := ColeVishkinPath(graph.New(0), 0); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestReductionRoundsSmall(t *testing.T) {
	// log* growth: even astronomically large n needs very few rounds.
	if r := reductionRounds(1 << 20); r > 6 {
		t.Fatalf("reductionRounds(2^20) = %d", r)
	}
	if r := reductionRounds(4); r < 1 {
		t.Fatalf("reductionRounds(4) = %d", r)
	}
}

func TestMISSetSizesComparable(t *testing.T) {
	// All MIS algorithms must produce sets within the usual range:
	// at least n/(Δ+1) nodes.
	src := xrand.New(3)
	g := graph.Gnp(100, 0.1, src)
	floor := g.N() / (g.MaxDegree() + 1)
	algs := map[string]func() ([]bool, error){
		"luby": func() ([]bool, error) { s, _, err := LubyMIS(g, 1, 0); return s, err },
		"abi":  func() ([]bool, error) { s, _, err := ABIMIS(g, 1, 0); return s, err },
		"bit":  func() ([]bool, error) { s, _, err := BitStreamMIS(g, 1, 1<<18); return s, err },
		"beep": func() ([]bool, error) { s, _, err := BeepMIS(g, 1, 1<<18); return s, err },
		"greedy": func() ([]bool, error) {
			return GreedyMIS(g), nil
		},
	}
	for name, run := range algs {
		inSet, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		size := 0
		for _, in := range inSet {
			if in {
				size++
			}
		}
		if size < floor {
			t.Errorf("%s: MIS size %d below floor %d", name, size, floor)
		}
	}
}
