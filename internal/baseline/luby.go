// Package baseline implements the classical algorithms the paper
// positions the nFSM model against: Luby's MIS and the Alon–Babai–Itai
// MIS in the message-passing model, a bit-streaming MIS tournament in the
// spirit of Métivier et al., Cole–Vishkin 3-coloring of directed paths,
// a beeping-model MIS in the spirit of Afek et al., and a centralized
// greedy MIS used as a sanity reference. All of them exploit capabilities
// the nFSM model forbids — unbounded local state, per-neighbor messages,
// node identifiers, or global synchrony — which is exactly the comparison
// the experiments quantify.
package baseline

import (
	"fmt"

	"stoneage/internal/graph"
	"stoneage/internal/mp"
	"stoneage/internal/xrand"
)

// misStatus is the tri-state every distributed MIS node walks through.
type misStatus int

const (
	misActive misStatus = iota
	misIn
	misOut
)

// lubyMsg is the message vocabulary of lubyNode.
type lubyMsg struct {
	kind byte // 'v' value, 'w' win
	val  uint64
	id   int
}

// lubyNode implements Luby's algorithm: in every 3-round phase, active
// nodes draw a random value, the strict local minimum (ties broken by
// identifier) joins the MIS, and its neighbors drop out.
type lubyNode struct {
	id     int
	deg    int
	src    *xrand.Source
	status misStatus
	val    uint64
}

// Status returns the node's final membership.
func (ln *lubyNode) Status() bool { return ln.status == misIn }

// Init implements mp.Node.
func (ln *lubyNode) Init(id, degree int, src *xrand.Source) {
	ln.id, ln.deg, ln.src = id, degree, src
}

// Round implements mp.Node.
func (ln *lubyNode) Round(round int, inbox []any) ([]any, bool) {
	switch (round - 1) % 3 {
	case 0: // draw and exchange values
		ln.val = ln.src.Uint64()
		return mp.Broadcast(ln.deg, lubyMsg{kind: 'v', val: ln.val, id: ln.id}), false
	case 1: // the strict local minimum wins
		for _, m := range inbox {
			msg, ok := m.(lubyMsg)
			if !ok || msg.kind != 'v' {
				continue
			}
			if msg.val < ln.val || (msg.val == ln.val && msg.id < ln.id) {
				return nil, false
			}
		}
		ln.status = misIn
		return mp.Broadcast(ln.deg, lubyMsg{kind: 'w', id: ln.id}), false
	default: // winners leave; their neighbors drop out
		if ln.status == misIn {
			return nil, true
		}
		for _, m := range inbox {
			if msg, ok := m.(lubyMsg); ok && msg.kind == 'w' {
				ln.status = misOut
				return nil, true
			}
		}
		return nil, false
	}
}

// LubyMIS runs Luby's algorithm and returns the MIS mask and the round
// count.
func LubyMIS(g *graph.Graph, seed uint64, maxRounds int) ([]bool, int, error) {
	rounds, nodes, err := mp.Run(g, func() mp.Node { return &lubyNode{} }, seed, maxRounds)
	if err != nil {
		return nil, 0, err
	}
	inSet, err := misMask(nodes)
	return inSet, rounds, err
}

func misMask(nodes []mp.Node) ([]bool, error) {
	inSet := make([]bool, len(nodes))
	for v, node := range nodes {
		s, ok := node.(interface{ Status() bool })
		if !ok {
			return nil, fmt.Errorf("baseline: node %d does not expose Status", v)
		}
		inSet[v] = s.Status()
	}
	return inSet, nil
}

// abiMsg is the message vocabulary of abiNode.
type abiMsg struct {
	kind   byte // 'p' present, 'm' mark, 'w' win
	marked bool
	deg    int
	id     int
}

// abiNode implements the Alon–Babai–Itai algorithm: each active node
// marks itself with probability 1/(2d), adjacent marks are resolved in
// favor of the higher degree (ties by identifier), and surviving marks
// join the MIS. Phases take 4 rounds: presence, marks, resolution, exit.
type abiNode struct {
	id        int
	deg       int
	src       *xrand.Source
	status    misStatus
	activeDeg int
	marked    bool
}

// Status returns the node's final membership.
func (an *abiNode) Status() bool { return an.status == misIn }

// Init implements mp.Node.
func (an *abiNode) Init(id, degree int, src *xrand.Source) {
	an.id, an.deg, an.src = id, degree, src
	an.activeDeg = degree
}

// Round implements mp.Node.
func (an *abiNode) Round(round int, inbox []any) ([]any, bool) {
	switch (round - 1) % 4 {
	case 0: // announce presence
		return mp.Broadcast(an.deg, abiMsg{kind: 'p', id: an.id}), false
	case 1: // count active neighbors, draw the mark
		an.activeDeg = 0
		for _, m := range inbox {
			if msg, ok := m.(abiMsg); ok && msg.kind == 'p' {
				an.activeDeg++
			}
		}
		an.marked = false
		if an.activeDeg == 0 {
			an.marked = true // isolated in the residual graph: join
		} else if an.src.Intn(2*an.activeDeg) == 0 {
			an.marked = true
		}
		return mp.Broadcast(an.deg, abiMsg{kind: 'm', marked: an.marked, deg: an.activeDeg, id: an.id}), false
	case 2: // resolve adjacent marks toward the higher degree
		if an.marked {
			for _, m := range inbox {
				msg, ok := m.(abiMsg)
				if !ok || msg.kind != 'm' || !msg.marked {
					continue
				}
				if msg.deg > an.activeDeg || (msg.deg == an.activeDeg && msg.id > an.id) {
					an.marked = false
					break
				}
			}
		}
		if an.marked {
			an.status = misIn
			return mp.Broadcast(an.deg, abiMsg{kind: 'w', id: an.id}), false
		}
		return nil, false
	default: // winners leave; their neighbors drop out
		if an.status == misIn {
			return nil, true
		}
		for _, m := range inbox {
			if msg, ok := m.(abiMsg); ok && msg.kind == 'w' {
				an.status = misOut
				return nil, true
			}
		}
		return nil, false
	}
}

// ABIMIS runs the Alon–Babai–Itai algorithm.
func ABIMIS(g *graph.Graph, seed uint64, maxRounds int) ([]bool, int, error) {
	rounds, nodes, err := mp.Run(g, func() mp.Node { return &abiNode{} }, seed, maxRounds)
	if err != nil {
		return nil, 0, err
	}
	inSet, err := misMask(nodes)
	return inSet, rounds, err
}

// GreedyMIS computes the lexicographic greedy MIS centrally. It is the
// sanity reference for validity checks and set-size comparisons.
func GreedyMIS(g *graph.Graph) []bool {
	inSet := make([]bool, g.N())
	blocked := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if blocked[v] {
			continue
		}
		inSet[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return inSet
}
