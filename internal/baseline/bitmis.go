package baseline

import (
	"stoneage/internal/graph"
	"stoneage/internal/mp"
	"stoneage/internal/xrand"
)

// This file implements a bit-streaming MIS tournament in the spirit of
// Métivier, Robson, Saheb-Djahromi and Zemmari ("An optimal bit
// complexity randomised distributed MIS algorithm"): instead of
// exchanging whole O(log n)-bit random values in one round, contenders
// reveal one fresh random bit per round and a pairwise comparison
// resolves at the first divergence (0 beats 1). A node whose every
// competitor has either diverged above it or withdrawn wins and joins
// the MIS; a beaten node withdraws for the phase and re-enters once the
// nodes that beat it have resolved. The message size is O(1) bits per
// round, which is the regime the paper's Section 4 discussion points to
// (cf. "Algorithm B in [29]").

// bitMsg is the one-letter vocabulary of bitNode.
type bitMsg struct {
	kind byte // 'b' bit, 'l' lost this phase, 'w' win, 'o' out
	bit  byte
}

// portState tracks what a bitNode knows about each neighbor.
type portState int

const (
	portCompeting portState = iota // still tied with us this phase
	portAbove                      // diverged above us or withdrew: no threat
	portBeatsUs                    // diverged below us: we are beaten
	portGone                       // permanently decided (in or out)
)

type bitNode struct {
	deg     int
	src     *xrand.Source
	status  misStatus
	beaten  bool
	lastBit byte
	sent    bool // whether lastBit was already transmitted
	ports   []portState
}

// Status returns the node's final membership.
func (bn *bitNode) Status() bool { return bn.status == misIn }

// Init implements mp.Node.
func (bn *bitNode) Init(id, degree int, src *xrand.Source) {
	bn.deg, bn.src = degree, src
	bn.ports = make([]portState, degree)
}

// Round implements mp.Node.
func (bn *bitNode) Round(round int, inbox []any) ([]any, bool) {
	// Process incoming traffic first.
	for i, m := range inbox {
		msg, ok := m.(bitMsg)
		if !ok {
			continue
		}
		switch msg.kind {
		case 'w':
			// A neighbor joined the MIS: we are dominated.
			bn.status = misOut
			return mp.Broadcast(bn.deg, bitMsg{kind: 'o'}), true
		case 'o':
			bn.ports[i] = portGone
		case 'l':
			if bn.ports[i] != portGone {
				bn.ports[i] = portAbove // withdrew: no longer a threat
			}
		case 'b':
			// A bit on a portAbove port means the withdrawn neighbor
			// re-entered the tournament: re-engage the comparison, or the
			// two sides' views could desynchronize into a double win.
			if (bn.ports[i] == portCompeting || bn.ports[i] == portAbove) && bn.sent {
				switch {
				case msg.bit == bn.lastBit:
					bn.ports[i] = portCompeting // (still) tied
				case msg.bit < bn.lastBit:
					bn.ports[i] = portBeatsUs
				default:
					bn.ports[i] = portAbove
				}
			}
		}
	}

	if bn.beaten {
		// Waiting for our beaters to resolve. They resolve by winning
		// (we go out above), withdrawing ('l' flips them to portAbove),
		// or going out ('o').
		for _, ps := range bn.ports {
			if ps == portBeatsUs {
				return nil, false
			}
		}
		// Every beater resolved without winning: re-enter the arena.
		bn.beaten = false
		bn.sent = false
		for i, ps := range bn.ports {
			if ps != portGone {
				bn.ports[i] = portCompeting
			}
		}
	}

	// Did the last divergence beat us?
	for _, ps := range bn.ports {
		if ps == portBeatsUs {
			bn.beaten = true
			bn.sent = false
			return mp.Broadcast(bn.deg, bitMsg{kind: 'l'}), false
		}
	}
	// Have we outlasted every competitor?
	contested := false
	for _, ps := range bn.ports {
		if ps == portCompeting {
			contested = true
			break
		}
	}
	if bn.sent && !contested {
		bn.status = misIn
		return mp.Broadcast(bn.deg, bitMsg{kind: 'w'}), true
	}
	// Reveal the next bit.
	bn.lastBit = byte(bn.src.Uint64() & 1)
	bn.sent = true
	return mp.Broadcast(bn.deg, bitMsg{kind: 'b', bit: bn.lastBit}), false
}

// BitStreamMIS runs the bit-streaming tournament MIS.
func BitStreamMIS(g *graph.Graph, seed uint64, maxRounds int) ([]bool, int, error) {
	rounds, nodes, err := mp.Run(g, func() mp.Node { return &bitNode{} }, seed, maxRounds)
	if err != nil {
		return nil, 0, err
	}
	inSet, err := misMask(nodes)
	return inSet, rounds, err
}
