package baseline

import (
	"fmt"

	"stoneage/internal/beeping"
	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

// This file implements an MIS algorithm in the beeping model, in the
// spirit of Afek et al. ("Beeping a maximal independent set"): nodes
// compete in two-round exchanges — a contention beep followed by a
// victory beep — with multiplicative backoff on the contention
// probability replacing the knowledge of n that the published algorithms
// assume. The paper's related-work section observes the beeping rule is
// one-two-many counting with b = 1, but the model remains stronger than
// nFSM: global synchrony and unbounded local state (the probability p
// below needs ω(1) bits).

type beepNode struct {
	src     *xrand.Source
	p       float64
	status  misStatus
	beepedA bool
}

// Status returns the node's final membership.
func (bn *beepNode) Status() bool { return bn.status == misIn }

// Init implements beeping.Node.
func (bn *beepNode) Init(id, degree int, src *xrand.Source) {
	bn.src = src
	bn.p = 0.5
}

// Round implements beeping.Node. Odd rounds are contention rounds; even
// rounds are victory rounds.
func (bn *beepNode) Round(round int, heard bool) (bool, bool) {
	if round%2 == 1 {
		// The feedback from the previous victory round: any beep there
		// came from an adjacent new MIS member.
		if round > 1 && heard {
			bn.status = misOut
			return false, true
		}
		bn.beepedA = bn.src.Float64() < bn.p
		return bn.beepedA, false
	}
	// Victory round. heard reports the contention round's feedback.
	if bn.beepedA && !heard {
		// Sole beeper in the neighborhood: join the MIS and announce.
		bn.status = misIn
		return true, true
	}
	// Multiplicative backoff keeps the sole-beeper probability healthy
	// without knowing the degree.
	if bn.beepedA && heard {
		bn.p /= 2
		if bn.p < 1.0/(1<<20) {
			bn.p = 1.0 / (1 << 20)
		}
	} else if !bn.beepedA && !heard {
		bn.p *= 2
		if bn.p > 0.5 {
			bn.p = 0.5
		}
	}
	return false, false
}

// BeepMIS runs the beeping-model MIS and returns the MIS mask and round
// count.
func BeepMIS(g *graph.Graph, seed uint64, maxRounds int) ([]bool, int, error) {
	rounds, nodes, err := beeping.Run(g, func() beeping.Node { return &beepNode{} }, seed, maxRounds)
	if err != nil {
		return nil, 0, err
	}
	inSet := make([]bool, len(nodes))
	for v, node := range nodes {
		bn, ok := node.(*beepNode)
		if !ok {
			return nil, 0, fmt.Errorf("baseline: unexpected node type %T", node)
		}
		inSet[v] = bn.Status()
	}
	return inSet, rounds, nil
}
