package engine

// White-box tests for the voted decoder's per-slot state machine: the
// vote-threshold edges, the strike/eviction sequence, and the reboot
// reset. The executor-level behavior (bit-identity, TU preservation,
// Byzantine eviction) lives in voted_test.go; here the contract of
// receive/fireEdge itself is pinned receipt by receipt.

import (
	"testing"

	"stoneage/internal/nfsm"
)

func TestVotedReceiveThreshold(t *testing.T) {
	vs := newVotedState(&VotedConfig{K: 2}, 1)
	if vs.win != 3 {
		t.Fatalf("window = %d, want 3", vs.win)
	}
	const a, b = nfsm.Letter(0), nfsm.Letter(1)
	cur := nfsm.NoLetter

	// A lone receipt holds 1 of 3: no winner.
	if out, _ := vs.receive(0, a, cur); out != voteNoWinner {
		t.Fatalf("first receipt: outcome %d, want voteNoWinner", out)
	}
	// A tie — one a, one b — must never commit either letter.
	if out, _ := vs.receive(0, b, cur); out != voteNoWinner {
		t.Fatalf("tied window: outcome %d, want voteNoWinner", out)
	}
	if vs.rejections != 2 {
		t.Fatalf("rejections = %d, want 2", vs.rejections)
	}
	// The tie-breaking receipt commits its letter.
	out, w := vs.receive(0, b, cur)
	if out != voteCommit || w != b {
		t.Fatalf("third receipt: (outcome, winner) = (%d, %v), want (voteCommit, %v)", out, w, b)
	}
	cur = b
	// A corrupted singleton inside a committed window is outvoted: the
	// winner stays b, and the outcome counts as refused for letter a.
	out, w = vs.receive(0, a, cur)
	if out != voteConfirm || w != b {
		t.Fatalf("outvoted receipt: (outcome, winner) = (%d, %v), want (voteConfirm, %v)", out, w, b)
	}
	if !vs.outvoted(out, w, a) {
		t.Error("corrupted singleton not counted as outvoted")
	}
	if vs.outvoted(out, w, b) {
		t.Error("agreeing receipt counted as outvoted")
	}
}

// TestVotedK1EveryReceiptCommits pins the degeneracy edge: with K=1
// the window is 1 and every receipt — including a same-letter
// overwrite — returns voteCommit, reproducing the αβ port contract
// exactly (the caller's Lost bookkeeping counts overwrites).
func TestVotedK1EveryReceiptCommits(t *testing.T) {
	vs := newVotedState(&VotedConfig{K: 1}, 1)
	const a = nfsm.Letter(0)
	for i := 0; i < 3; i++ {
		out, w := vs.receive(0, a, a)
		if out != voteCommit || w != a {
			t.Fatalf("receipt %d: (outcome, winner) = (%d, %v), want (voteCommit, %v)", i, out, w, a)
		}
	}
	if vs.rejections != 0 {
		t.Fatalf("rejections = %d, want 0", vs.rejections)
	}
}

// TestVotedFireEdgeEviction walks a silent edge through the full
// backoff-then-strike sequence at cap 4, E 2: sends while the window
// grows (firings 1 and 3), then at the decayed cadence a transmitted
// first strike (firing 7) and an evicting second strike (firing 11).
// Any receipt restores the full runway.
func TestVotedFireEdgeEviction(t *testing.T) {
	vs := newVotedState(&VotedConfig{K: 2, EvictAfter: 2, BackoffCap: 4}, 1)
	wantSend := map[int]bool{1: true, 3: true, 7: true}
	for firing := 1; firing <= 10; firing++ {
		send, evict := vs.fireEdge(0)
		if send != wantSend[firing] {
			t.Fatalf("firing %d: send = %v, want %v", firing, send, wantSend[firing])
		}
		if evict {
			t.Fatalf("firing %d: evicted early", firing)
		}
	}
	// Firing 11 is the second strike at decayed cadence: evict.
	send, evict := vs.fireEdge(0)
	if send || !evict {
		t.Fatalf("firing 11: (send, evict) = (%v, %v), want (false, true)", send, evict)
	}
	if !vs.dead[0] {
		t.Fatal("slot not marked dead after eviction")
	}
	// Dead slots discard receipts and never fire again.
	if out, _ := vs.receive(0, 0, nfsm.NoLetter); out != voteIgnored {
		t.Fatalf("dead slot receipt: outcome %d, want voteIgnored", out)
	}
	if send, evict := vs.fireEdge(0); send || evict {
		t.Fatal("dead slot fired again")
	}
	// A reboot clears the eviction and the decoder listens again.
	vs.resetSlots(0, 1)
	if vs.dead[0] {
		t.Fatal("resetSlots left the slot dead")
	}
	if send, _ := vs.fireEdge(0); !send {
		t.Fatal("rebooted slot did not send on first firing")
	}
}

// TestVotedReceiptRestoresRunway pins the liveness half of eviction:
// one receipt between strikes resets both the stall counter and the
// backoff window, so an edge that keeps answering — however rarely in
// its own clock — never evicts.
func TestVotedReceiptRestoresRunway(t *testing.T) {
	vs := newVotedState(&VotedConfig{K: 1, EvictAfter: 2, BackoffCap: 2}, 1)
	for round := 0; round < 50; round++ {
		// Walk to the brink: window decays to cap, first strike lands.
		for firing := 0; firing < 4; firing++ {
			if _, evict := vs.fireEdge(0); evict {
				t.Fatalf("round %d firing %d: evicted with receipts flowing", round, firing)
			}
		}
		if vs.stall[0] == 0 {
			t.Fatalf("round %d: no strike recorded at decayed cadence", round)
		}
		vs.receive(0, 0, nfsm.NoLetter)
		if vs.stall[0] != 0 || vs.rpWin[0] != 1 {
			t.Fatalf("round %d: receipt left (stall, win) = (%d, %d)", round, vs.stall[0], vs.rpWin[0])
		}
	}
}
