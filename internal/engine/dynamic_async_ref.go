package engine

import (
	"container/heap"
	"fmt"

	"stoneage/internal/channel"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/scenario"
)

// This file is the dynamic reference engine for the asynchronous
// environment: the same scenario semantics as runAsyncScenario,
// implemented independently in the seed engine's style — nested-slice
// ports and timing state in adjacency order, interface dispatch,
// per-step count recomputation, container/heap event queue, and a
// from-scratch rebuild of every nested structure at each mutation
// batch (with per-edge state carried by looking ports up through the
// previous graph). The differential suites compare it bit for bit with
// the fast executor.

// refDynHeap is the container/heap-boxed queue of dynamic events.
type refDynHeap []dynEvent

func (h refDynHeap) Len() int { return len(h) }
func (h refDynHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h refDynHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refDynHeap) Push(x interface{}) { *h = append(*h, x.(dynEvent)) }
func (h *refDynHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// runAsyncRefScenario executes machine m on g under cfg.Scenario with
// the reference representation.
func runAsyncRefScenario(m nfsm.Machine, g0 *graph.Graph, cfg AsyncConfig) (*AsyncResult, error) {
	sc := cfg.Scenario
	if err := prepScenario(sc, g0); err != nil {
		return nil, err
	}
	g := g0.Clone()
	n := g.N()
	states, err := initialStates(m, n, cfg.Init)
	if err != nil {
		return nil, err
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = Synchronous{}
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1 << 24
	}

	cnt := newCounter(m)
	live := scenario.NewLiveness(n, sc.Asleep)
	nl := m.NumLetters()
	byz, err := byzIndex(sc.Byzantine, n, nl)
	if err != nil {
		return nil, err
	}
	isByz := func(v int) bool { return byz != nil && byz[v] >= 0 }

	model := cfg.Channel
	reorders := model != nil && model.Reorders()
	var chStats channel.Stats
	var chBuf []channel.Fate

	// Voted tier: same slot addressing as the static reference engine
	// (prefix-degree offsets over the sorted adjacency), same up-front
	// rejection of topological mutations as the fast executor.
	var vs *votedState
	var portBase []int32
	if cfg.Voted != nil {
		for _, b := range sc.Batches {
			for _, mu := range b.Muts {
				if mu.Topological() {
					return nil, fmt.Errorf("engine: voted synchronizer does not support topological mutations (batch at %g)", b.At)
				}
			}
		}
		portBase = make([]int32, n+1)
		for v := 0; v < n; v++ {
			portBase[v+1] = portBase[v] + int32(g.Degree(v))
		}
		vs = newVotedState(cfg.Voted, int(portBase[n]))
	}

	// All per-port state in adjacency order: ports[v][i] pairs with
	// g.Neighbors(v)[i]; lastDelivery[v][i] is the FIFO horizon of the
	// directed edge v → Neighbors(v)[i].
	ports := make([][]nfsm.Letter, n)
	portWriteAt := make([][]float64, n)
	lastDelivery := make([][]float64, n)
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		ports[v] = make([]nfsm.Letter, deg)
		portWriteAt[v] = make([]float64, deg)
		lastDelivery[v] = make([]float64, deg)
		for i := range ports[v] {
			ports[v][i] = m.InitialLetter()
			portWriteAt[v][i] = -1
		}
	}

	epoch := make([]uint32, n)
	stepIndex := make([]int, n)
	lastStepAt := make([]float64, n)

	// Post-perturbation settling window; see runAsyncScenario.
	stepsSince := make([]int, n)
	lagging := 0

	res := &AsyncResult{States: states, FinalGraph: g}
	outputs, awakeByz := 0, 0
	countLive := func() {
		outputs, awakeByz = 0, 0
		for v := 0; v < n; v++ {
			if !live.Awake(v) {
				continue
			}
			if isByz(v) {
				awakeByz++
			} else if m.IsOutput(states[v]) {
				outputs++
			}
		}
	}
	countLive()
	target := func() int { return live.NumAwake() - awakeByz }

	var (
		h        refDynHeap
		seq      uint64
		maxParam float64
	)
	useParam := func(d float64, kind string, v, t int) (float64, error) {
		if d <= 0 {
			return 0, fmt.Errorf("engine: adversary returned non-positive %s %g for node %d step %d", kind, d, v, t)
		}
		if d > maxParam {
			maxParam = d
		}
		return d, nil
	}
	push := func(e dynEvent) {
		e.seq = seq
		seq++
		heap.Push(&h, e)
	}
	scheduleStep := func(v int, after float64) error {
		t := stepIndex[v] + 1
		l, err := useParam(adv.StepLength(v, t), "step length", v, t)
		if err != nil {
			return err
		}
		push(dynEvent{time: after + l, node: v, epoch: epoch[v], step: true})
		return nil
	}
	timeUnits := func(t float64) float64 {
		if maxParam == 0 {
			return 0
		}
		return t / maxParam
	}

	resetNode := func(v int) {
		states[v] = resetStateOf(m, cfg.Init, v)
		for i := range ports[v] {
			ports[v][i] = m.InitialLetter()
			portWriteAt[v][i] = -1
		}
		if vs != nil {
			vs.resetSlots(portBase[v], portBase[v+1])
		}
	}

	applyBatch := func(b scenario.Batch) error {
		prev := g.Clone()
		topoChanged := false
		var started []int
		for _, mu := range b.Muts {
			st, err := live.Apply(mu)
			if err != nil {
				return err
			}
			started = append(started, st...)
			if mu.Kind == graph.MutCrashNode {
				epoch[mu.U]++
			}
			if err := mu.Apply(g); err != nil {
				return err
			}
			topoChanged = topoChanged || mu.Topological()
		}
		if topoChanged {
			nextPorts := make([][]nfsm.Letter, n)
			nextWrite := make([][]float64, n)
			nextFIFO := make([][]float64, n)
			for v := 0; v < n; v++ {
				nb := g.Neighbors(v)
				nextPorts[v] = make([]nfsm.Letter, len(nb))
				nextWrite[v] = make([]float64, len(nb))
				nextFIFO[v] = make([]float64, len(nb))
				for i, u := range nb {
					if o := prev.PortOf(v, u); o >= 0 {
						nextPorts[v][i] = ports[v][o]
						nextWrite[v][i] = portWriteAt[v][o]
						nextFIFO[v][i] = lastDelivery[v][o]
					} else {
						nextPorts[v][i] = m.InitialLetter()
						nextWrite[v][i] = -1
					}
				}
			}
			ports, portWriteAt, lastDelivery = nextPorts, nextWrite, nextFIFO
		}
		for _, v := range b.ResetSet(sc.Reset, g) {
			if live.Awake(v) {
				resetNode(v)
			}
		}
		for _, v := range started {
			resetNode(v)
		}
		countLive()
		for v := range stepsSince {
			stepsSince[v] = 0
		}
		lagging = live.NumAwake()
		for _, v := range started {
			if err := scheduleStep(v, b.At); err != nil {
				return err
			}
		}
		return nil
	}

	for v := 0; v < n; v++ {
		if !live.Awake(v) {
			continue
		}
		if err := scheduleStep(v, 0); err != nil {
			return nil, err
		}
	}

	nextBatch := 0
	lastPerturb := 0.0
	if nextBatch == len(sc.Batches) && outputs == target() {
		return res, nil
	}

	for {
		if nextBatch < len(sc.Batches) && (h.Len() == 0 || h[0].time >= sc.Batches[nextBatch].At) {
			b := sc.Batches[nextBatch]
			if err := applyBatch(b); err != nil {
				return nil, err
			}
			nextBatch++
			lastPerturb = b.At
			res.PerturbedAt = append(res.PerturbedAt, b.At)
			if nextBatch == len(sc.Batches) && outputs == target() && lagging == 0 {
				res.Time = b.At
				res.TimeUnits = timeUnits(b.At)
				res.Dropped, res.Duplicated, res.Delayed, res.Corrupted = chStats.Dropped, chStats.Duplicated, chStats.Delayed, chStats.Corrupted
				res.Outvoted = chStats.Outvoted
				if vs != nil {
					vs.fill(res)
				}
				return res, nil
			}
			continue
		}
		if h.Len() == 0 {
			break
		}
		e := heap.Pop(&h).(dynEvent)
		if !e.step {
			i := g.PortOf(e.node, e.from)
			if i < 0 {
				res.Severed++ // edge removed mid-flight: traffic lost with it
				continue
			}
			if vs != nil {
				slot := portBase[e.node] + int32(i)
				outcome, winner := vs.receive(slot, e.letter, ports[e.node][i])
				if outcome == voteCommit {
					if portWriteAt[e.node][i] > lastStepAt[e.node] {
						res.Lost++
					}
					ports[e.node][i] = winner
					portWriteAt[e.node][i] = e.time
				}
				if e.corrupt && vs.outvoted(outcome, winner, e.letter) {
					chStats.Outvoted++
				}
				continue
			}
			if portWriteAt[e.node][i] > lastStepAt[e.node] {
				res.Lost++
			}
			ports[e.node][i] = e.letter
			portWriteAt[e.node][i] = e.time
			continue
		}
		if e.epoch != epoch[e.node] {
			continue
		}

		v := e.node
		t := stepIndex[v] + 1
		q := states[v]
		emit := nfsm.NoLetter
		if isByz(v) {
			emit = sc.Byzantine[byz[v]].Emit(t, nl)
		} else {
			moves := m.Moves(q, cnt.counts(q, ports[v]))
			if len(moves) == 0 {
				return nil, fmt.Errorf("engine: δ empty at node %d state %d step %d", v, q, t)
			}
			mv := nfsm.PickMove(cfg.Seed, v, t, moves)
			if m.IsOutput(mv.Next) != m.IsOutput(q) {
				if m.IsOutput(mv.Next) {
					outputs++
				} else {
					outputs--
				}
			}
			states[v] = mv.Next
			emit = mv.Emit
		}
		stepIndex[v] = t
		lastStepAt[v] = e.time
		res.Steps++
		if stepsSince[v] < 2 {
			stepsSince[v]++
			if stepsSince[v] == 2 && lagging > 0 {
				lagging--
			}
		}
		if cfg.Observer != nil {
			cfg.Observer(e.time, v, t, states[v])
		}

		if emit != nfsm.NoLetter && vs != nil {
			// Voted tier: see runAsyncScenario — honest emissions burst K
			// copies per edge, re-pulses are gated per edge, Byzantine
			// traffic is one ungated copy.
			isRP := !isByz(v) && vs.isRePulse != nil && vs.isRePulse(q)
			if isRP {
				vs.rePulses++
			}
			K := 1
			if !isByz(v) {
				K = int(vs.k)
			}
			sent := false
			for i, u := range g.Neighbors(v) {
				slot := portBase[v] + int32(i)
				if isRP {
					send, evictNow := vs.fireEdge(slot)
					if evictNow {
						ports[v][i] = nfsm.NoLetter
						res.EvictedEdges = append(res.EvictedEdges, [2]int{v, u})
					}
					if !send {
						continue
					}
				}
				d, err := useParam(adv.Delay(v, t, u), "delay", v, t)
				if err != nil {
					return nil, err
				}
				sent = true
				for c := 0; c < K; c++ {
					if model == nil {
						at := e.time + d
						if at < lastDelivery[v][i] {
							at = lastDelivery[v][i]
						}
						lastDelivery[v][i] = at
						push(dynEvent{time: at, node: u, from: v, letter: emit})
						continue
					}
					chBuf = channel.ExpandAt(model, v, t, u, c, emit, nl, chBuf, &chStats)
					for _, f := range chBuf {
						at := e.time + d + f.Extra
						if reorders {
							if at < lastDelivery[v][i] {
								res.Reordered++
							} else {
								lastDelivery[v][i] = at
							}
						} else {
							if at < lastDelivery[v][i] {
								at = lastDelivery[v][i]
							}
							lastDelivery[v][i] = at
						}
						push(dynEvent{time: at, node: u, from: v, letter: f.Letter, corrupt: f.Corrupt})
					}
				}
			}
			if sent {
				res.Transmissions++
			}
		} else if emit != nfsm.NoLetter {
			res.Transmissions++
			for i, u := range g.Neighbors(v) {
				d, err := useParam(adv.Delay(v, t, u), "delay", v, t)
				if err != nil {
					return nil, err
				}
				if model == nil {
					at := e.time + d
					if at < lastDelivery[v][i] {
						at = lastDelivery[v][i]
					}
					lastDelivery[v][i] = at
					push(dynEvent{time: at, node: u, from: v, letter: emit})
					continue
				}
				chBuf = channel.Expand(model, v, t, u, emit, nl, chBuf, &chStats)
				for _, f := range chBuf {
					at := e.time + d + f.Extra
					if reorders {
						if at < lastDelivery[v][i] {
							res.Reordered++
						} else {
							lastDelivery[v][i] = at
						}
					} else {
						if at < lastDelivery[v][i] {
							at = lastDelivery[v][i]
						}
						lastDelivery[v][i] = at
					}
					push(dynEvent{time: at, node: u, from: v, letter: f.Letter})
				}
			}
		}

		if nextBatch == len(sc.Batches) && outputs == target() &&
			(lagging == 0 || len(res.PerturbedAt) == 0) {
			res.Time = e.time
			res.TimeUnits = timeUnits(e.time)
			if len(res.PerturbedAt) > 0 {
				res.RecoveryTime = e.time - lastPerturb
				res.RecoveryTimeUnits = timeUnits(res.RecoveryTime)
			}
			res.Dropped, res.Duplicated, res.Delayed, res.Corrupted = chStats.Dropped, chStats.Duplicated, chStats.Delayed, chStats.Corrupted
			res.Outvoted = chStats.Outvoted
			if vs != nil {
				vs.fill(res)
			}
			return res, nil
		}
		if res.Steps >= maxSteps {
			return nil, fmt.Errorf("%w: %s after %d steps", ErrNoConvergence, machineName(m), res.Steps)
		}
		if err := scheduleStep(v, e.time); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w: event queue drained", ErrNoConvergence)
}
