package engine

import (
	"container/heap"
	"fmt"

	"stoneage/internal/channel"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
)

// refEventHeap is the container/heap-based queue of the seed engine,
// kept verbatim for the reference oracle.
type refEventHeap []event

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h refEventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refEventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *refEventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// RunAsyncRef is the reference asynchronous engine: the seed
// implementation with interface dispatch, per-step port rescans,
// nested-slice adjacency and the boxing event heap. Like RunSyncRef it
// exists as the oracle the compiled executor is differentially tested
// against (TestDifferentialAsyncEngines); use RunAsync everywhere else.
func RunAsyncRef(m nfsm.Machine, g *graph.Graph, cfg AsyncConfig) (*AsyncResult, error) {
	if !cfg.Scenario.Empty() {
		return runAsyncRefScenario(m, g, cfg)
	}
	n := g.N()
	states, err := initialStates(m, n, cfg.Init)
	if err != nil {
		return nil, err
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = Synchronous{}
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1 << 24
	}

	topo := newPortTopology(g)
	cnt := newCounter(m)

	// Channel model state: fates expand through the exact helper the
	// compiled executor uses, so both engines see identical channel
	// decisions. A reordering model voids the per-edge FIFO clamp; the
	// clamp-free horizon is tracked only to count overtakes.
	model := cfg.Channel
	reorders := model != nil && model.Reorders()
	var chStats channel.Stats
	var chBuf []channel.Fate
	nl := m.NumLetters()

	// Voted tier: the decoder is shared with the compiled executor and
	// indexed by directed-edge slot; the reference engine addresses the
	// same slot space through prefix-degree offsets (portBase[v]+i for
	// neighbor index i), which coincides with the CSR slot numbering on
	// the sorted adjacency.
	var vs *votedState
	var portBase []int32
	if cfg.Voted != nil {
		portBase = make([]int32, n+1)
		for v := 0; v < n; v++ {
			portBase[v+1] = portBase[v] + int32(g.Degree(v))
		}
		vs = newVotedState(cfg.Voted, int(portBase[n]))
	}

	ports := make([][]nfsm.Letter, n)
	portWriteAt := make([][]float64, n) // time of last write, -inf initially
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		ports[v] = make([]nfsm.Letter, deg)
		portWriteAt[v] = make([]float64, deg)
		for i := range ports[v] {
			ports[v][i] = m.InitialLetter()
			portWriteAt[v][i] = -1
		}
	}

	stepIndex := make([]int, n)      // steps completed so far per node
	lastStepAt := make([]float64, n) // time of last completed step
	// lastDelivery[v][i] enforces FIFO per directed edge v → neighbor i.
	lastDelivery := make([][]float64, n)
	for v := 0; v < n; v++ {
		lastDelivery[v] = make([]float64, g.Degree(v))
	}

	res := &AsyncResult{States: states}
	outputs := countOutputs(m, states)
	if outputs == n {
		return res, nil
	}

	var (
		h        refEventHeap
		seq      uint64
		maxParam float64
	)
	useParam := func(d float64, kind string, v, t int) (float64, error) {
		if d <= 0 {
			return 0, fmt.Errorf("engine: adversary returned non-positive %s %g for node %d step %d", kind, d, v, t)
		}
		if d > maxParam {
			maxParam = d
		}
		return d, nil
	}
	push := func(e event) {
		e.seq = seq
		seq++
		heap.Push(&h, e)
	}

	for v := 0; v < n; v++ {
		l, err := useParam(adv.StepLength(v, 1), "step length", v, 1)
		if err != nil {
			return nil, err
		}
		push(event{time: l, node: v, step: true})
	}

	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		if !e.step {
			// Delivery: overwrite the destination port. If the previous
			// value was written after the destination's last step, it was
			// never observable — a lost message.
			if vs != nil {
				slot := portBase[e.node] + int32(e.port)
				outcome, winner := vs.receive(slot, e.letter, ports[e.node][e.port])
				if outcome == voteCommit {
					if portWriteAt[e.node][e.port] > lastStepAt[e.node] {
						res.Lost++
					}
					ports[e.node][e.port] = winner
					portWriteAt[e.node][e.port] = e.time
				}
				if e.corrupt && vs.outvoted(outcome, winner, e.letter) {
					chStats.Outvoted++
				}
				continue
			}
			if portWriteAt[e.node][e.port] > lastStepAt[e.node] {
				res.Lost++
			}
			ports[e.node][e.port] = e.letter
			portWriteAt[e.node][e.port] = e.time
			continue
		}

		v := e.node
		t := stepIndex[v] + 1
		q := states[v]
		moves := m.Moves(q, cnt.counts(q, ports[v]))
		if len(moves) == 0 {
			return nil, fmt.Errorf("engine: δ empty at node %d state %d step %d", v, q, t)
		}
		mv := nfsm.PickMove(cfg.Seed, v, t, moves)
		if m.IsOutput(mv.Next) != m.IsOutput(q) {
			if m.IsOutput(mv.Next) {
				outputs++
			} else {
				outputs--
			}
		}
		states[v] = mv.Next
		stepIndex[v] = t
		lastStepAt[v] = e.time
		res.Steps++
		if cfg.Observer != nil {
			cfg.Observer(e.time, v, t, mv.Next)
		}

		if mv.Emit != nfsm.NoLetter && vs != nil {
			// Voted tier: burst K copies per edge; re-pulses (emissions
			// from pausing states) advance stall counters and are gated
			// by the per-edge backoff, round messages are never gated.
			isRP := vs.isRePulse != nil && vs.isRePulse(q)
			if isRP {
				vs.rePulses++
			}
			sent := false
			K := int(vs.k)
			for i, u := range g.Neighbors(v) {
				slot := portBase[v] + int32(i)
				if isRP {
					send, evictNow := vs.fireEdge(slot)
					if evictNow {
						ports[v][i] = nfsm.NoLetter
						res.EvictedEdges = append(res.EvictedEdges, [2]int{v, u})
					}
					if !send {
						continue
					}
				}
				d, err := useParam(adv.Delay(v, t, u), "delay", v, t)
				if err != nil {
					return nil, err
				}
				sent = true
				for c := 0; c < K; c++ {
					if model == nil {
						at := e.time + d
						if at < lastDelivery[v][i] {
							at = lastDelivery[v][i] // FIFO per directed edge
						}
						lastDelivery[v][i] = at
						push(event{time: at, node: u, port: topo.rev[v][i], letter: mv.Emit})
						continue
					}
					chBuf = channel.ExpandAt(model, v, t, u, c, mv.Emit, nl, chBuf, &chStats)
					for _, f := range chBuf {
						at := e.time + d + f.Extra
						if reorders {
							if at < lastDelivery[v][i] {
								res.Reordered++
							} else {
								lastDelivery[v][i] = at
							}
						} else {
							if at < lastDelivery[v][i] {
								at = lastDelivery[v][i] // FIFO per directed edge
							}
							lastDelivery[v][i] = at
						}
						push(event{time: at, node: u, port: topo.rev[v][i], letter: f.Letter, corrupt: f.Corrupt})
					}
				}
			}
			if sent {
				res.Transmissions++
			}
		} else if mv.Emit != nfsm.NoLetter {
			res.Transmissions++
			for i, u := range g.Neighbors(v) {
				d, err := useParam(adv.Delay(v, t, u), "delay", v, t)
				if err != nil {
					return nil, err
				}
				if model == nil {
					at := e.time + d
					if at < lastDelivery[v][i] {
						at = lastDelivery[v][i] // FIFO per directed edge
					}
					lastDelivery[v][i] = at
					push(event{time: at, node: u, port: topo.rev[v][i], letter: mv.Emit})
					continue
				}
				chBuf = channel.Expand(model, v, t, u, mv.Emit, nl, chBuf, &chStats)
				for _, f := range chBuf {
					at := e.time + d + f.Extra
					if reorders {
						if at < lastDelivery[v][i] {
							res.Reordered++
						} else {
							lastDelivery[v][i] = at
						}
					} else {
						if at < lastDelivery[v][i] {
							at = lastDelivery[v][i] // FIFO per directed edge
						}
						lastDelivery[v][i] = at
					}
					push(event{time: at, node: u, port: topo.rev[v][i], letter: f.Letter})
				}
			}
		}

		if outputs == n {
			res.Time = e.time
			res.TimeUnits = e.time / maxParam
			res.Dropped, res.Duplicated, res.Delayed, res.Corrupted = chStats.Dropped, chStats.Duplicated, chStats.Delayed, chStats.Corrupted
			res.Outvoted = chStats.Outvoted
			if vs != nil {
				vs.fill(res)
			}
			return res, nil
		}
		if res.Steps >= maxSteps {
			return nil, fmt.Errorf("%w: %s after %d steps", ErrNoConvergence, machineName(m), res.Steps)
		}
		l, err := useParam(adv.StepLength(v, t+1), "step length", v, t+1)
		if err != nil {
			return nil, err
		}
		push(event{time: e.time + l, node: v, step: true})
	}
	return nil, fmt.Errorf("%w: event queue drained", ErrNoConvergence)
}
