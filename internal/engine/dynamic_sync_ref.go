package engine

import (
	"fmt"

	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/scenario"
)

// This file is the dynamic reference engine for the locally synchronous
// environment: a direct, slow, obviously-correct transcription of the
// dynamic-network semantics in the seed engine's representation —
// nested-slice ports in adjacency order, interface dispatch into
// m.Moves, full count recomputation per node per round, and a
// from-scratch rebuild of every derived structure at each mutation
// batch. It shares no executor code with runSyncScenario (only the
// scenario policy definitions), so the differential and fuzz suites
// comparing the two really do pin the fast path's re-binding,
// port-carrying and liveness handling against an independent
// implementation.

// runSyncRefScenario executes machine m on g under cfg.Scenario with
// the reference representation.
func runSyncRefScenario(m nfsm.Machine, g0 *graph.Graph, cfg SyncConfig) (*SyncResult, error) {
	sc := cfg.Scenario
	if err := prepScenario(sc, g0); err != nil {
		return nil, err
	}
	g := g0.Clone()
	n := g.N()
	states, err := initialStates(m, n, cfg.Init)
	if err != nil {
		return nil, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1 << 20
	}

	topo := newPortTopology(g)
	cnt := newCounter(m)
	live := scenario.NewLiveness(n, sc.Asleep)

	// ports[v][i] holds the last letter delivered from g.Neighbors(v)[i].
	ports := make([][]nfsm.Letter, n)
	for v := 0; v < n; v++ {
		ports[v] = make([]nfsm.Letter, g.Degree(v))
		for i := range ports[v] {
			ports[v][i] = m.InitialLetter()
		}
	}

	res := &SyncResult{States: states, FinalGraph: g}
	outputs := 0
	for v := 0; v < n; v++ {
		if live.Awake(v) && m.IsOutput(states[v]) {
			outputs++
		}
	}
	nextBatch := 0
	lastPerturb := 0
	// Two consecutive stable rounds are required after a perturbation;
	// see the confirmation-window comment in runSyncScenario.
	stable := 0
	if nextBatch == len(sc.Batches) && outputs == live.NumAwake() {
		return res, nil
	}

	resetNode := func(v int) {
		states[v] = resetStateOf(m, cfg.Init, v)
		for i := range ports[v] {
			ports[v][i] = m.InitialLetter()
		}
	}

	applyBatch := func(b scenario.Batch) error {
		prev := g.Clone()
		topoChanged := false
		var started []int
		for _, mu := range b.Muts {
			st, err := live.Apply(mu)
			if err != nil {
				return err
			}
			started = append(started, st...)
			if err := mu.Apply(g); err != nil {
				return err
			}
			topoChanged = topoChanged || mu.Topological()
		}
		if topoChanged {
			// Rebuild the port arrays by directed-edge identity: a
			// surviving port keeps its letter, found through the
			// previous graph's port numbering; new ports start at the
			// initial letter.
			next := make([][]nfsm.Letter, n)
			for v := 0; v < n; v++ {
				nb := g.Neighbors(v)
				next[v] = make([]nfsm.Letter, len(nb))
				for i, u := range nb {
					if o := prev.PortOf(v, u); o >= 0 {
						next[v][i] = ports[v][o]
					} else {
						next[v][i] = m.InitialLetter()
					}
				}
			}
			ports = next
			topo = newPortTopology(g)
		}
		for _, v := range b.ResetSet(sc.Reset, g) {
			if live.Awake(v) {
				resetNode(v)
			}
		}
		for _, v := range started {
			resetNode(v)
		}
		outputs = 0
		for v := 0; v < n; v++ {
			if live.Awake(v) && m.IsOutput(states[v]) {
				outputs++
			}
		}
		return nil
	}

	emits := make([]nfsm.Letter, n)
	for round := 1; round <= maxRounds; round++ {
		for nextBatch < len(sc.Batches) && int(sc.Batches[nextBatch].At) < round {
			if err := applyBatch(sc.Batches[nextBatch]); err != nil {
				return nil, err
			}
			nextBatch++
			lastPerturb = round - 1
			res.PerturbedAt = append(res.PerturbedAt, round-1)
		}

		for v := 0; v < n; v++ {
			emits[v] = nfsm.NoLetter
			if !live.Awake(v) {
				continue
			}
			q := states[v]
			moves := m.Moves(q, cnt.counts(q, ports[v]))
			if len(moves) == 0 {
				return nil, fmt.Errorf("engine: δ empty at node %d state %d round %d", v, q, round)
			}
			mv := nfsm.PickMove(cfg.Seed, v, round, moves)
			if m.IsOutput(mv.Next) != m.IsOutput(q) {
				if m.IsOutput(mv.Next) {
					outputs++
				} else {
					outputs--
				}
			}
			states[v] = mv.Next
			emits[v] = mv.Emit
		}
		for v := 0; v < n; v++ {
			l := emits[v]
			if l == nfsm.NoLetter {
				continue
			}
			res.Transmissions++
			for i, u := range g.Neighbors(v) {
				ports[u][topo.rev[v][i]] = l
			}
		}

		if cfg.Observer != nil {
			cfg.Observer(round, states)
		}
		if nextBatch == len(sc.Batches) && outputs == live.NumAwake() {
			stable++
		} else {
			stable = 0
		}
		if stable >= 2 || (stable >= 1 && len(res.PerturbedAt) == 0) {
			res.Rounds = round
			if len(res.PerturbedAt) > 0 {
				res.RecoveryRounds = round - lastPerturb
			}
			return res, nil
		}
	}
	return nil, fmt.Errorf("%w: %s after %d rounds", ErrNoConvergence, machineName(m), maxRounds)
}
