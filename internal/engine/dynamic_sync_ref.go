package engine

import (
	"fmt"
	"math"

	"stoneage/internal/channel"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/scenario"
)

// This file is the dynamic reference engine for the locally synchronous
// environment: a direct, slow, obviously-correct transcription of the
// dynamic-network semantics in the seed engine's representation —
// nested-slice ports in adjacency order, interface dispatch into
// m.Moves, full count recomputation per node per round, and a
// from-scratch rebuild of every derived structure at each mutation
// batch. It shares no executor code with runSyncScenario (only the
// scenario policy definitions), so the differential and fuzz suites
// comparing the two really do pin the fast path's re-binding,
// port-carrying and liveness handling against an independent
// implementation.

// runSyncRefScenario executes machine m on g under cfg.Scenario with
// the reference representation.
func runSyncRefScenario(m nfsm.Machine, g0 *graph.Graph, cfg SyncConfig) (*SyncResult, error) {
	sc := cfg.Scenario
	if sc == nil {
		// A channel model alone routes here; run the empty scenario.
		sc = &scenario.Scenario{Reset: scenario.ResetNone}
	}
	if err := prepScenario(sc, g0); err != nil {
		return nil, err
	}
	g := g0.Clone()
	n := g.N()
	states, err := initialStates(m, n, cfg.Init)
	if err != nil {
		return nil, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1 << 20
	}

	topo := newPortTopology(g)
	cnt := newCounter(m)
	live := scenario.NewLiveness(n, sc.Asleep)
	nl := m.NumLetters()
	byz, err := byzIndex(sc.Byzantine, n, nl)
	if err != nil {
		return nil, err
	}
	isByz := func(v int) bool { return byz != nil && byz[v] >= 0 }

	// Channel model state; see runSyncScenario — fates expand through
	// the exact helper the compiled executor uses.
	model := cfg.Channel
	reorders := model != nil && model.Reorders()
	var chStats channel.Stats
	var chBuf []channel.Fate
	var pend []syncPend
	var horizon map[uint64]int
	if reorders {
		horizon = make(map[uint64]int)
	}

	// ports[v][i] holds the last letter delivered from g.Neighbors(v)[i].
	ports := make([][]nfsm.Letter, n)
	for v := 0; v < n; v++ {
		ports[v] = make([]nfsm.Letter, g.Degree(v))
		for i := range ports[v] {
			ports[v][i] = m.InitialLetter()
		}
	}

	res := &SyncResult{States: states, FinalGraph: g}
	// Byzantine nodes never reach an output state: termination is every
	// awake honest node in an output state.
	outputs, awakeByz := 0, 0
	countLive := func() {
		outputs, awakeByz = 0, 0
		for v := 0; v < n; v++ {
			if !live.Awake(v) {
				continue
			}
			if isByz(v) {
				awakeByz++
			} else if m.IsOutput(states[v]) {
				outputs++
			}
		}
	}
	countLive()
	target := func() int { return live.NumAwake() - awakeByz }
	nextBatch := 0
	lastPerturb := 0
	// Two consecutive stable rounds are required after a perturbation;
	// see the confirmation-window comment in runSyncScenario.
	stable := 0
	if nextBatch == len(sc.Batches) && outputs == target() {
		return res, nil
	}

	resetNode := func(v int) {
		states[v] = resetStateOf(m, cfg.Init, v)
		for i := range ports[v] {
			ports[v][i] = m.InitialLetter()
		}
	}

	applyBatch := func(b scenario.Batch) error {
		prev := g.Clone()
		topoChanged := false
		var started []int
		for _, mu := range b.Muts {
			st, err := live.Apply(mu)
			if err != nil {
				return err
			}
			started = append(started, st...)
			if err := mu.Apply(g); err != nil {
				return err
			}
			topoChanged = topoChanged || mu.Topological()
		}
		if topoChanged {
			// Rebuild the port arrays by directed-edge identity: a
			// surviving port keeps its letter, found through the
			// previous graph's port numbering; new ports start at the
			// initial letter.
			next := make([][]nfsm.Letter, n)
			for v := 0; v < n; v++ {
				nb := g.Neighbors(v)
				next[v] = make([]nfsm.Letter, len(nb))
				for i, u := range nb {
					if o := prev.PortOf(v, u); o >= 0 {
						next[v][i] = ports[v][o]
					} else {
						next[v][i] = m.InitialLetter()
					}
				}
			}
			ports = next
			topo = newPortTopology(g)
		}
		for _, v := range b.ResetSet(sc.Reset, g) {
			if live.Awake(v) {
				resetNode(v)
			}
		}
		for _, v := range started {
			resetNode(v)
		}
		countLive()
		return nil
	}

	emits := make([]nfsm.Letter, n)
	for round := 1; round <= maxRounds; round++ {
		for nextBatch < len(sc.Batches) && int(sc.Batches[nextBatch].At) < round {
			if err := applyBatch(sc.Batches[nextBatch]); err != nil {
				return nil, err
			}
			nextBatch++
			lastPerturb = round - 1
			res.PerturbedAt = append(res.PerturbedAt, round-1)
		}

		for v := 0; v < n; v++ {
			emits[v] = nfsm.NoLetter
			if !live.Awake(v) {
				continue
			}
			if isByz(v) {
				// Byzantine node: never runs δ, emits per its behavior.
				emits[v] = sc.Byzantine[byz[v]].Emit(round, nl)
				continue
			}
			q := states[v]
			moves := m.Moves(q, cnt.counts(q, ports[v]))
			if len(moves) == 0 {
				return nil, fmt.Errorf("engine: δ empty at node %d state %d round %d", v, q, round)
			}
			mv := nfsm.PickMove(cfg.Seed, v, round, moves)
			if m.IsOutput(mv.Next) != m.IsOutput(q) {
				if m.IsOutput(mv.Next) {
					outputs++
				} else {
					outputs--
				}
			}
			states[v] = mv.Next
			emits[v] = mv.Emit
		}
		// Channel-deferred deliveries land before the round's own
		// traffic; see runSyncScenario.
		if model != nil && len(pend) > 0 {
			keep := pend[:0]
			for _, pd := range pend {
				if pd.due != round {
					keep = append(keep, pd)
					continue
				}
				if i := g.PortOf(int(pd.to), int(pd.from)); i >= 0 {
					ports[pd.to][i] = pd.letter
				} else {
					res.Severed++ // edge removed before the due round
				}
			}
			pend = keep
		}
		for v := 0; v < n; v++ {
			l := emits[v]
			if l == nfsm.NoLetter {
				continue
			}
			res.Transmissions++
			if model == nil {
				for i, u := range g.Neighbors(v) {
					ports[u][topo.rev[v][i]] = l
				}
				continue
			}
			for i, u := range g.Neighbors(v) {
				chBuf = channel.Expand(model, v, round, u, l, nl, chBuf, &chStats)
				for _, f := range chBuf {
					delay := int(math.Ceil(f.Extra))
					if reorders {
						key := uint64(uint32(v))<<32 | uint64(uint32(u))
						if due := round + delay; due < horizon[key] {
							res.Reordered++
						} else {
							horizon[key] = due
						}
					}
					if delay == 0 {
						ports[u][topo.rev[v][i]] = f.Letter
					} else {
						pend = append(pend, syncPend{due: round + delay, from: int32(v), to: int32(u), letter: f.Letter})
					}
				}
			}
		}

		if cfg.Observer != nil {
			cfg.Observer(round, states)
		}
		if nextBatch == len(sc.Batches) && outputs == target() {
			stable++
		} else {
			stable = 0
		}
		if stable >= 2 || (stable >= 1 && len(res.PerturbedAt) == 0) {
			res.Rounds = round
			if len(res.PerturbedAt) > 0 {
				res.RecoveryRounds = round - lastPerturb
			}
			res.Dropped, res.Duplicated, res.Delayed, res.Corrupted = chStats.Dropped, chStats.Duplicated, chStats.Delayed, chStats.Corrupted
			return res, nil
		}
	}
	return nil, fmt.Errorf("%w: %s after %d rounds", ErrNoConvergence, machineName(m), maxRounds)
}
