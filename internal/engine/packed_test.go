package engine

// Internal packed-backend tests: the bytes-per-node memory-regression
// guard (make check runs TestPackedFootprint) and unit checks of the
// plane arithmetic that the differential wall exercises only
// end-to-end.

import (
	"testing"

	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
)

// packedTestProto is a small packed-eligible literal protocol (the
// mis/ssmis machines live above the engine and would import-cycle): a
// ping flood with a branching row, progFlatSingle with b = 2.
func packedTestProto() *nfsm.Protocol {
	stay := func(q nfsm.State) []nfsm.Move { return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}} }
	return &nfsm.Protocol{
		Name:        "packed-flood",
		StateNames:  []string{"idle", "hot", "done"},
		LetterNames: []string{"ping", "quiet"},
		Input:       []nfsm.State{1},
		Output:      []bool{false, false, true},
		Initial:     1,
		B:           2,
		Query:       []nfsm.Letter{0, 0, 0},
		Delta: [][][]nfsm.Move{
			{stay(0), {{Next: 2, Emit: 0}, {Next: 0, Emit: nfsm.NoLetter}}, {{Next: 2, Emit: 0}}},
			{{{Next: 2, Emit: 0}}, {{Next: 2, Emit: 0}}, {{Next: 2, Emit: 0}}},
			{stay(2), stay(2), stay(2)},
		},
	}
}

// packedFootprintBudget is the regression ceiling for the packed run
// state, in bytes per node. The planes themselves cost ~2 B/node for
// MIS on a sparse graph (2 state + 1 emission + |Σ|·⌈log₂Δ⌉ count + 1
// stability planes, each 1/8 B per node); the sequential emitter
// buffer adds up to 8 B/node in the worst all-changed round. 16 B/node
// leaves headroom without letting the layout quietly regress toward
// the flat engine's ~100 B/node.
const packedFootprintBudget = 16

func TestPackedFootprint(t *testing.T) {
	const n = 1 << 16
	csr, err := graph.BuildCSR(graph.GnpConnectedStream(n, 4.0/n, 1))
	if err != nil {
		t.Fatal(err)
	}
	prog := CompileMachine(packedTestProto()).BindCSR(csr)
	// Half the nodes start idle so the ping wave takes several rounds to
	// sweep the graph instead of converging instantly.
	init := make([]nfsm.State, n)
	for v := range init {
		init[v] = nfsm.State(v & 1)
	}
	scr := NewScratch()
	res, err := prog.RunSyncReusing(SyncConfig{Seed: 1, Workers: 1, Init: init, Backend: BackendPacked}, scr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Fatal("converged in zero rounds: the run exercised nothing")
	}
	got := scr.pk.footprintBytes()
	if perNode := float64(got) / n; perNode > packedFootprintBudget {
		t.Errorf("packed run state = %d bytes (%.2f B/node), budget %d B/node", got, perNode, packedFootprintBudget)
	}
}

// TestPackedCountPlanes drives the ripple-carry inc/dec across the full
// count range of a letter and checks the threshold-clamp reads used by
// the compute phase.
func TestPackedCountPlanes(t *testing.T) {
	ps := &packedScratch{nw: 2, nl: 1, wQ: 1, wE: 1, wC: 5}
	ps.planeBuf = make([]uint64, 5*2)
	ps.cnt = [][]uint64{
		ps.planeBuf[0:2], ps.planeBuf[2:4], ps.planeBuf[4:6],
		ps.planeBuf[6:8], ps.planeBuf[8:10],
	}
	read := func(u int32) int {
		w, i := int(u>>6), uint(u)&63
		c := 0
		for j := 0; j < ps.wC; j++ {
			c |= int(ps.cnt[j][w]>>i&1) << j
		}
		return c
	}
	for _, u := range []int32{0, 63, 64, 100} {
		for k := 1; k <= 31; k++ {
			ps.countInc(0, u)
			if got := read(u); got != k {
				t.Fatalf("node %d after %d incs: count %d", u, k, got)
			}
		}
		for k := 30; k >= 0; k-- {
			ps.countDec(0, u)
			if got := read(u); got != k {
				t.Fatalf("node %d dec to %d: count %d", u, k, got)
			}
		}
	}
	// Independent lanes: counts of other nodes stayed zero.
	for _, u := range []int32{1, 62, 65, 127} {
		if got := read(u); got != 0 {
			t.Fatalf("untouched node %d has count %d", u, got)
		}
	}
}

// TestPackedEligibility pins which compiled kinds reach the bit-plane
// backend.
func TestPackedEligibility(t *testing.T) {
	c := CompileMachine(packedTestProto())
	if !c.PackedEligible() {
		t.Error("literal flat-single protocol should be packed-eligible")
	}
	if c.packedCode() != c.packedCode() {
		t.Error("packedCode not cached on the MachineCode")
	}
}
