// Package engine executes nFSM machines on graphs. It provides the two
// environments of the paper:
//
//   - RunSync executes a machine in a locally synchronous environment
//     (properties (S1) and (S2) of Section 3.1, realized as lockstep
//     rounds). This is the environment the Section 4 and 5 protocols are
//     written for.
//
//   - RunAsync executes a machine in the fully asynchronous environment of
//     Section 2: an oblivious adversary chooses every step length L_{v,t}
//     and every delivery delay D_{v,t,u}; deliveries are FIFO per directed
//     edge but ports are overwrite-only (messages can be lost, footnote 4
//     of the paper). The reported run-time follows the paper's measure:
//     elapsed time divided by the largest adversary parameter used before
//     the output configuration was reached.
//
// Both engines draw each node's uniform choice among δ's moves from the
// deterministic coin nfsm.PickMove(seed, node, step, ...), so a protocol,
// graph and seed fully determine the execution.
package engine

import (
	"errors"
	"fmt"

	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
)

// ErrNoConvergence is returned when a run exhausts its round, step or time
// budget before reaching an output configuration.
var ErrNoConvergence = errors.New("engine: no output configuration within budget")

// initialStates resolves the per-node initial state vector: a copy of init
// when provided, otherwise the machine's default input state everywhere.
func initialStates(m nfsm.Machine, n int, init []nfsm.State) ([]nfsm.State, error) {
	states := make([]nfsm.State, n)
	if init == nil {
		q := m.InputState()
		for v := range states {
			states[v] = q
		}
		return states, nil
	}
	if len(init) != n {
		return nil, fmt.Errorf("engine: init vector length %d != n %d", len(init), n)
	}
	for v, q := range init {
		if q < 0 || int(q) >= m.NumStates() {
			return nil, fmt.Errorf("engine: init state %d of node %d out of range", q, v)
		}
		states[v] = q
	}
	return states, nil
}

// portTopology precomputes, for every node v and every neighbor index i of
// v, the port index of v at that neighbor — i.e. where v's transmissions
// land. Ports are identified by position in the sorted adjacency list.
type portTopology struct {
	g   *graph.Graph
	rev [][]int // rev[v][i] = port index of v at g.Neighbors(v)[i]
}

func newPortTopology(g *graph.Graph) *portTopology {
	rev := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		rev[v] = make([]int, len(nb))
		for i, u := range nb {
			rev[v][i] = g.PortOf(u, v)
		}
	}
	return &portTopology{g: g, rev: rev}
}

// counter computes clamped count vectors from a node's ports, counting
// only the machine's query letter when it is a single-query machine.
type counter struct {
	m      nfsm.Machine
	single nfsm.SingleQuery // nil when the machine queries all letters
	buf    []nfsm.Count
	// touched lists the letters the previous multi-letter call wrote, so
	// the next call clears only those instead of zeroing the full
	// alphabet buffer (a node's ports can hold at most deg(v) distinct
	// letters, typically far fewer than |Σ| for compiled machines).
	// It is per-call scratch, not cross-round state: every call still
	// recomputes the vector from the ports, so the reference engines
	// built on this counter remain a direct transcription of the model.
	touched []nfsm.Letter
}

func newCounter(m nfsm.Machine) *counter {
	c := &counter{m: m, buf: make([]nfsm.Count, m.NumLetters())}
	if sq, ok := m.(nfsm.SingleQuery); ok {
		c.single = sq
	}
	return c
}

// counts fills the count vector observed by a node in state q whose ports
// hold the given letters, clamped by f_b. The returned slice is reused
// across calls.
func (c *counter) counts(q nfsm.State, ports []nfsm.Letter) []nfsm.Count {
	b := c.m.Bound()
	if c.single != nil {
		ql := c.single.QueryLetter(q)
		n := 0
		for _, l := range ports {
			if l == ql {
				n++
			}
		}
		c.buf[ql] = nfsm.ClampCount(n, b)
		return c.buf
	}
	for _, l := range c.touched {
		c.buf[l] = 0
	}
	c.touched = c.touched[:0]
	for _, l := range ports {
		if l < 0 {
			continue
		}
		if c.buf[l] == 0 {
			c.touched = append(c.touched, l)
		}
		if int(c.buf[l]) < b {
			c.buf[l]++
		}
	}
	return c.buf
}

// countOutputs returns how many nodes currently reside in output states.
func countOutputs(m nfsm.Machine, states []nfsm.State) int {
	n := 0
	for _, q := range states {
		if m.IsOutput(q) {
			n++
		}
	}
	return n
}
