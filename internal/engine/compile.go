package engine

import (
	"sync"

	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
)

// progKind selects the δ-lookup strategy a compiled Program uses in the
// round loop.
type progKind uint8

const (
	// progDynamic calls m.Moves per node step: the generic fallback for
	// machines whose δ cannot be tabulated ahead of time (multi-letter
	// round protocols with a large count domain, and the lazily
	// self-interning machines built by package synchro).
	progDynamic progKind = iota
	// progFlatSingle serves single-letter-query machines from the flat
	// table delta[q*(b+1)+c], where c is the clamped count of the query
	// letter λ(q).
	progFlatSingle
	// progFlatMulti serves multi-letter round protocols from the flat
	// table delta[q*(b+1)^|Σ| + idx], where idx encodes the full clamped
	// count vector in base b+1. The executors maintain idx incrementally.
	progFlatMulti
)

// maxTabulate bounds |Q|·(b+1)^|Σ| for multi-letter tabulation. Beyond
// it Compile falls back to progDynamic (requirement (M4) makes the bound
// generous: the paper's protocols fit except the coloring protocol's
// 269·4¹² domain, which stays dynamic).
const maxTabulate = 1 << 17

// MachineCode is the graph-independent half of a compiled program: δ
// packed into flat move tables, the output set as a bitset, query
// letters as a dense array. A MachineCode is immutable after
// CompileMachine; Bind attaches it to a graph's CSR snapshot cheaply, so
// callers that execute one machine on many graphs (or many runs on one
// graph) tabulate δ exactly once.
//
// Lowering is an observational-equivalence refactor, not a semantic one:
// every table entry is exactly the slice (or a pure recomputation) that
// m.Moves would return for the same observation, and both executors draw
// randomness from the same nfsm.PickMove coin, so a compiled program's
// runs are bit-identical to the reference engine's (the differential
// tests pin this down).
type MachineCode struct {
	m nfsm.Machine

	kind     progKind
	nq       int // |Q| at compile time (dynamic machines may grow it)
	nl       int // |Σ|
	b        int // one-two-many bound
	initial  nfsm.Letter
	outMask  []uint64      // flat kinds: Q_O membership bitset
	query    []nfsm.Letter // progFlatSingle: λ as a dense array
	delta    [][]nfsm.Move // flat δ rows (see progKind for the indexing)
	pow      []int32       // progFlatMulti: pow[l] = (b+1)^l
	pdim     int           // progFlatMulti: (b+1)^|Σ|
	single   nfsm.SingleQuery
	parallel bool // compute phase may be sharded across workers

	// dynPack marks a multi-letter dynamic-fallback machine whose
	// (state, clamped-count-vector) observations pack into a uint64, so
	// the executors can memoize δ rows in a flat-keyed map instead of
	// calling Transition per node step (the coloring protocol's
	// 269·4¹² domain is far too large to tabulate but visits only a
	// few thousand distinct observations per run). Restricted to
	// RoundProtocols: their state set is fixed and their Transition is
	// pure by contract.
	dynPack     bool
	dynPackBits uint

	// pack is the lazily built bit-plane lowering (see packed.go). The
	// sync.Once makes the lazy build safe under the registry's shared
	// compiled-machine cache; the MachineCode stays logically immutable.
	packOnce sync.Once
	pack     *packedCode
}

// Program is a MachineCode bound to a specific graph: the flat δ tables
// plus the CSR adjacency and reverse-port layout the executors walk. A
// Program is immutable after Compile/Bind and safe for concurrent
// RunSync/RunAsync calls.
type Program struct {
	*MachineCode
	g   *graph.Graph
	csr *graph.CSR
}

// CompileMachine lowers machine m into flat tables. It never fails:
// machines it cannot tabulate run through the generic fallback, which
// still benefits from the CSR layout and incremental count maintenance.
func CompileMachine(m nfsm.Machine) *MachineCode {
	c := &MachineCode{
		m:       m,
		kind:    progDynamic,
		nq:      m.NumStates(),
		nl:      m.NumLetters(),
		b:       m.Bound(),
		initial: m.InitialLetter(),
	}
	if sq, ok := m.(nfsm.SingleQuery); ok {
		c.single = sq
	}
	switch mm := m.(type) {
	case *nfsm.Protocol:
		c.lowerProtocol(mm)
		// A malformed protocol stays dynamic, where the single-query
		// path uses the lock-free queryOf memo — shard only when the
		// lowering actually succeeded.
		c.parallel = c.kind != progDynamic
	case *nfsm.RoundProtocol:
		c.lowerRound(mm)
		// A RoundProtocol's Transition is a pure function by contract,
		// so even the dynamic fallback may be sharded across workers.
		c.parallel = true
		if c.kind == progDynamic && c.single == nil {
			c.packable()
		}
	}
	return c
}

// packable decides whether the dynamic fallback's observations fit a
// packed uint64 memo key: the state in the high bits, then one
// fixed-width field per letter holding the clamped count.
func (c *MachineCode) packable() {
	bits := uint(1)
	for 1<<bits <= c.b {
		bits++
	}
	qbits := uint(1)
	for 1<<qbits < c.nq {
		qbits++
	}
	if uint(c.nl)*bits+qbits <= 64 {
		c.dynPack = true
		c.dynPackBits = bits
	}
}

// Bind attaches the machine code to a graph, building the CSR snapshot.
// The cost is O(n + m), with no retabulation of δ.
func (c *MachineCode) Bind(g *graph.Graph) *Program {
	return &Program{MachineCode: c, g: g, csr: g.CSR()}
}

// BindCSR attaches the machine code directly to a CSR snapshot with no
// adjacency-list Graph behind it — the binding for streamed graphs
// (graph.BuildCSR) whose materialized form would not fit in memory.
// The resulting program runs the static synchronous paths (flat and
// packed); the scenario, channel and asynchronous paths need the
// mutable Graph and report an error.
func (c *MachineCode) BindCSR(csr *graph.CSR) *Program {
	return &Program{MachineCode: c, csr: csr}
}

// Compile lowers machine m against graph g: CompileMachine followed by
// Bind.
func Compile(m nfsm.Machine, g *graph.Graph) *Program {
	return CompileMachine(m).Bind(g)
}

// Machine returns the machine the program was compiled from.
func (c *MachineCode) Machine() nfsm.Machine { return c.m }

// Graph returns the graph the program was compiled against, or nil for
// a CSR-only binding (BindCSR).
func (p *Program) Graph() *graph.Graph { return p.g }

// lowerProtocol packs a literal single-query protocol: its δ is already
// a dense table, so the rows are shared, not copied.
func (c *MachineCode) lowerProtocol(m *nfsm.Protocol) {
	nq, w := c.nq, c.b+1
	if len(m.Delta) != nq || len(m.Query) != nq || len(m.Output) != nq {
		return // malformed: stay dynamic, errors surface at runtime
	}
	for _, l := range m.Query {
		if l < 0 || int(l) >= c.nl {
			return // the flat path would read out of the node's count block
		}
	}
	rows := make([][]nfsm.Move, nq*w)
	for q := 0; q < nq; q++ {
		if len(m.Delta[q]) != w {
			return
		}
		copy(rows[q*w:], m.Delta[q])
	}
	c.delta = rows
	c.query = m.Query
	c.outMask = outputBitset(nq, m.IsOutput)
	c.kind = progFlatSingle
}

// lowerRound tabulates a multi-letter round protocol over its full count
// domain |Q|·(b+1)^|Σ|, exactly the enumeration RoundProtocol.Audit
// performs. Domains beyond maxTabulate stay dynamic.
func (c *MachineCode) lowerRound(m *nfsm.RoundProtocol) {
	if m.Transition == nil {
		return
	}
	nq, nl, w := c.nq, c.nl, c.b+1
	pdim := 1
	for l := 0; l < nl; l++ {
		pdim *= w
		if nq*pdim > maxTabulate {
			return
		}
	}
	defer func() {
		// A transition that panics on an unreachable count vector cannot
		// be tabulated; the dynamic path only ever shows it reachable
		// observations.
		if recover() != nil {
			c.kind = progDynamic
			c.delta = nil
			c.pow = nil
		}
	}()
	pow := make([]int32, nl)
	for l := range pow {
		pow[l] = int32(intPow(w, l))
	}
	rows := make([][]nfsm.Move, nq*pdim)
	counts := make([]nfsm.Count, nl)
	for idx := 0; idx < pdim; idx++ {
		rest := idx
		for l := 0; l < nl; l++ {
			counts[l] = nfsm.Count(rest % w)
			rest /= w
		}
		for q := 0; q < nq; q++ {
			rows[q*pdim+idx] = m.Transition(nfsm.State(q), counts)
		}
	}
	c.delta = rows
	c.pow = pow
	c.pdim = pdim
	c.outMask = outputBitset(nq, m.IsOutput)
	c.kind = progFlatMulti
}

func intPow(base, exp int) int {
	r := 1
	for i := 0; i < exp; i++ {
		r *= base
	}
	return r
}

func outputBitset(nq int, isOutput func(nfsm.State) bool) []uint64 {
	mask := make([]uint64, (nq+63)/64)
	for q := 0; q < nq; q++ {
		if isOutput(nfsm.State(q)) {
			mask[q>>6] |= 1 << (uint(q) & 63)
		}
	}
	return mask
}

// isOutput answers Q_O membership from the bitset for flat programs and
// from the machine otherwise.
func (c *MachineCode) isOutput(q nfsm.State) bool {
	if c.kind != progDynamic {
		return c.outMask[q>>6]>>(uint(q)&63)&1 == 1
	}
	return c.m.IsOutput(q)
}

// runCounts is the per-run mutable execution state shared by the
// synchronous and asynchronous executors: the flat port array aligned
// with the CSR edge order, the per-node raw (unclamped) letter counts,
// and — for progFlatMulti — the per-node base-(b+1) encoding of the
// clamped count vector, all maintained incrementally as ports change.
type runCounts struct {
	p *Program
	// portDat[k] is the letter held by the port at CSR edge slot k: for
	// k in [NbrOff[v], NbrOff[v+1]) it is the last letter delivered to v
	// from NbrDat[k].
	portDat []nfsm.Letter
	// raw[v*|Σ|+l] counts the ports of v currently holding letter l.
	raw []int32
	// idx[v] = Σ_l f_b(raw[v][l])·pow[l] (progFlatMulti only).
	idx []int32
	// dynQuery memoizes λ(q) for dynamic single-query machines whose
	// QueryLetter takes a lock (the synchro compilers); -2 marks unknown.
	dynQuery []nfsm.Letter
	// idxBuf backs idx across resets (idx itself is nil for non-flat
	// kinds, so the capacity is kept separately).
	idxBuf []int32
}

func newRunCountsCSR(p *Program, csr *graph.CSR) *runCounts {
	rc := &runCounts{}
	rc.reset(p, csr)
	return rc
}

// reset (re)initializes the run state against a CSR snapshot, reusing
// any backing storage a previous run left behind — the heart of the
// Scratch zero-allocation reuse path. The dynamic execution path starts
// from the bound snapshot but rebinds to fresh snapshots as the
// scenario mutates the topology. The dynQuery memo survives resets; it
// is machine- not run-keyed (Scratch.bind clears it when the machine
// changes).
func (rc *runCounts) reset(p *Program, csr *graph.CSR) {
	rc.p = p
	n := csr.N()
	ne := len(csr.NbrDat)
	if cap(rc.portDat) < ne {
		rc.portDat = make([]nfsm.Letter, ne)
	}
	rc.portDat = rc.portDat[:ne]
	if cap(rc.raw) < n*p.nl {
		rc.raw = make([]int32, n*p.nl)
	}
	rc.raw = rc.raw[:n*p.nl]
	for i := range rc.raw {
		rc.raw[i] = 0
	}
	rc.idx = nil
	if p.kind == progFlatMulti {
		if cap(rc.idxBuf) < n {
			rc.idxBuf = make([]int32, n)
		}
		rc.idx = rc.idxBuf[:n]
	}
	for k := range rc.portDat {
		rc.portDat[k] = p.initial
	}
	for v := 0; v < n; v++ {
		deg := int32(csr.Degree(v))
		if deg == 0 {
			if rc.idx != nil {
				rc.idx[v] = 0
			}
			continue
		}
		rc.raw[v*p.nl+int(p.initial)] = deg
		if rc.idx != nil {
			c := deg
			if c > int32(p.b) {
				c = int32(p.b)
			}
			rc.idx[v] = c * p.pow[p.initial]
		}
	}
}

// rebind re-aligns the run state with a new CSR snapshot after a
// topology mutation, carrying the letter of every surviving directed
// edge across the slot renumbering (remap comes from graph.RemapPorts)
// and rebuilding the count aggregates from the remapped ports. New
// edges start at the initial letter, exactly like a port at round 0.
func (rc *runCounts) rebind(csr *graph.CSR, remap []int32) {
	p := rc.p
	old := rc.portDat
	rc.portDat = make([]nfsm.Letter, len(csr.NbrDat))
	for k := range rc.portDat {
		if o := remap[k]; o >= 0 {
			rc.portDat[k] = old[o]
		} else {
			rc.portDat[k] = p.initial
		}
	}
	for i := range rc.raw {
		rc.raw[i] = 0
	}
	n := csr.N()
	for v := 0; v < n; v++ {
		base := v * p.nl
		for k := csr.NbrOff[v]; k < csr.NbrOff[v+1]; k++ {
			rc.raw[base+int(rc.portDat[k])]++
		}
		if rc.idx != nil {
			rc.idx[v] = rc.encodeIdx(base)
		}
	}
}

// resetNode clears node v's local memory: every port back to the
// initial letter with the count aggregates rebuilt. This is the engine
// half of a node reboot (restart, wake, or a scenario reset policy);
// the caller resets the state vector.
func (rc *runCounts) resetNode(v int, csr *graph.CSR) {
	p := rc.p
	base := v * p.nl
	for l := 0; l < p.nl; l++ {
		rc.raw[base+l] = 0
	}
	deg := int32(csr.Degree(v))
	for k := csr.NbrOff[v]; k < csr.NbrOff[v+1]; k++ {
		rc.portDat[k] = p.initial
	}
	rc.raw[base+int(p.initial)] = deg
	if rc.idx != nil {
		rc.idx[v] = rc.encodeIdx(base)
	}
}

// encodeIdx recomputes the base-(b+1) clamped-count encoding of one
// node's raw count block (progFlatMulti only).
func (rc *runCounts) encodeIdx(base int) int32 {
	p := rc.p
	var idx int32
	for l := 0; l < p.nl; l++ {
		c := rc.raw[base+l]
		if c > int32(p.b) {
			c = int32(p.b)
		}
		idx += c * p.pow[l]
	}
	return idx
}

// setPort overwrites the port at CSR edge slot k of node v with letter l
// and maintains the incremental counts. It must only be called with a
// valid letter (deliveries are never ε).
func (rc *runCounts) setPort(v int, k int32, l nfsm.Letter) {
	old := rc.portDat[k]
	if old == l {
		return
	}
	rc.portDat[k] = l
	base := v * rc.p.nl
	io, in := base+int(old), base+int(l)
	rc.raw[io]--
	rc.raw[in]++
	if rc.idx != nil {
		b := int32(rc.p.b)
		// f_b moves only while the raw count is within the clamp window.
		if rc.raw[io] < b {
			rc.idx[v] -= rc.p.pow[old]
		}
		if rc.raw[in] <= b {
			rc.idx[v] += rc.p.pow[l]
		}
	}
}

// evictPort permanently clears the port at CSR edge slot k of node v:
// the −1 sentinel letter counts toward nothing, so the evicted edge
// reads as ε in every count the node observes from then on. The voted
// engines call it when a dead edge is evicted; they never deliver to
// an evicted slot again, so setPort (which cannot see the sentinel)
// stays off this path.
func (rc *runCounts) evictPort(v int, k int32) {
	old := rc.portDat[k]
	if old < 0 {
		return
	}
	rc.portDat[k] = -1
	base := v * rc.p.nl
	io := base + int(old)
	rc.raw[io]--
	if rc.idx != nil && rc.raw[io] < int32(rc.p.b) {
		rc.idx[v] -= rc.p.pow[old]
	}
}

// dynScratch is the per-worker dynamic-fallback scratch: the count
// vector handed to Machine.Moves, plus δ-row and Q_O-membership memos
// that keep the steady state out of the machine's own code (the synchro
// compilers guard their lazily interned state sets with a mutex that
// would otherwise be taken several times per node step). The memos are
// machine-keyed, not run-keyed: Machine.Moves is a pure function of
// (state, counts) by interface contract and interned state identities
// are stable, so rows survive across runs of the same MachineCode
// (Scratch.bind invalidates on machine change). Each worker owns its
// own dynScratch — the memos are written without synchronization.
type dynScratch struct {
	cbuf []nfsm.Count
	// srows memoizes single-query dynamic δ rows at q*(b+1)+c; srkind
	// classifies the same rows for the chain walker (see rowKind).
	srows  [][]nfsm.Move
	srkind []int8
	// mrows memoizes multi-letter dynamic δ rows by packed observation
	// key (dynPack machines only). An open-addressing table beats a Go
	// map here: the lookup is two array reads on the hot path and the
	// storage is reusable. mcalls counts multi-letter resolutions: the
	// memo only engages past dynMemoThreshold, so short runs on fresh
	// arenas (a few thousand node-rounds) never pay the table build —
	// it exists for the long ones, where a Transition call per node
	// step is an allocation storm.
	mrows  rowTab
	mcalls int
	// out memoizes IsOutput for dynamic machines: -1 unknown, else 0/1.
	out []int8
}

// rowTab is a linear-probing hash table from packed observation keys to
// δ rows. No deletions; presence is a non-nil row.
type rowTab struct {
	keys []uint64
	vals [][]nfsm.Move
	n    int
}

func (t *rowTab) lookup(key uint64) ([]nfsm.Move, bool) {
	if len(t.keys) == 0 {
		return nil, false
	}
	mask := uint64(len(t.keys) - 1)
	h := key * 0x9e3779b97f4a7c15
	i := (h ^ h>>29) & mask
	for {
		if t.vals[i] == nil {
			return nil, false
		}
		if t.keys[i] == key {
			return t.vals[i], true
		}
		i = (i + 1) & mask
	}
}

func (t *rowTab) insert(key uint64, row []nfsm.Move) {
	if 4*(t.n+1) > 3*len(t.keys) {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	h := key * 0x9e3779b97f4a7c15
	i := (h ^ h>>29) & mask
	for t.vals[i] != nil {
		if t.keys[i] == key {
			t.vals[i] = row
			return
		}
		i = (i + 1) & mask
	}
	t.keys[i] = key
	t.vals[i] = row
	t.n++
}

func (t *rowTab) grow() {
	size := 256
	if len(t.keys) > 0 {
		size = 2 * len(t.keys)
	}
	oldK, oldV := t.keys, t.vals
	t.keys = make([]uint64, size)
	t.vals = make([][]nfsm.Move, size)
	t.n = 0
	for i, v := range oldV {
		if v != nil {
			t.insert(oldK[i], v)
		}
	}
}

func (t *rowTab) clear() {
	for i := range t.vals {
		t.vals[i] = nil
	}
	t.n = 0
}

func (ds *dynScratch) init(c *MachineCode) {
	if cap(ds.cbuf) < c.nl {
		ds.cbuf = make([]nfsm.Count, c.nl)
	}
	ds.cbuf = ds.cbuf[:c.nl]
}

// invalidate drops the machine-keyed memos (the scratch moved to a
// different machine).
func (ds *dynScratch) invalidate() {
	ds.srows = ds.srows[:0]
	ds.srkind = ds.srkind[:0]
	ds.mrows.clear()
	ds.mcalls = 0
	ds.out = ds.out[:0]
}

// dynMemoThreshold is the number of multi-letter δ resolutions a scratch
// arena sees before the packed-key memo engages.
const dynMemoThreshold = 8192

// Row classifications for the asynchronous chain walker. Zero is
// reserved for "not yet classified" so the memo's zero value is inert.
const (
	rowUnknown    int8 = iota
	rowBranches        // several moves, a transmission, or an output flip
	rowSilentHop       // lone silent same-output-class move to another state
	rowSilentSelf      // lone silent self-loop
)

// classifyRow classifies a δ row for state q (see the row constants).
func (c *MachineCode) classifyRow(row []nfsm.Move, q nfsm.State, ds *dynScratch) int8 {
	if len(row) != 1 || row[0].Emit != nfsm.NoLetter ||
		c.isOutputDS(row[0].Next, ds) != c.isOutputDS(q, ds) {
		return rowBranches
	}
	if row[0].Next == q {
		return rowSilentSelf
	}
	return rowSilentHop
}

// silentNext resolves δ for node v in state q and classifies the row in
// one step, memoizing the classification for single-query dynamic
// machines (the synchronizer compilations the asynchronous engine
// executes) so a chain-walk hop costs a few array loads.
func (rc *runCounts) silentNext(v int, q nfsm.State, ds *dynScratch) (nfsm.State, int8) {
	p := rc.p
	if p.kind == progDynamic && p.single != nil {
		ql := rc.queryOf(q)
		cc := rc.raw[v*p.nl+int(ql)]
		if cc > int32(p.b) {
			cc = int32(p.b)
		}
		mi := int(q)*(p.b+1) + int(cc)
		if mi < len(ds.srkind) {
			if k := ds.srkind[mi]; k != rowUnknown {
				if k == rowBranches {
					return 0, k
				}
				return ds.srows[mi][0].Next, k
			}
		}
		row := rc.movesFor(v, q, ds) // fills ds.srows[mi]
		k := p.classifyRow(row, q, ds)
		for len(ds.srkind) < len(ds.srows) {
			ds.srkind = append(ds.srkind, 0)
		}
		ds.srkind[mi] = k
		if k == rowBranches {
			return 0, k
		}
		return row[0].Next, k
	}
	row := rc.movesFor(v, q, ds)
	if len(row) == 0 {
		return 0, rowBranches
	}
	k := p.classifyRow(row, q, ds)
	if k == rowBranches {
		return 0, k
	}
	return row[0].Next, k
}

// isOutputDS answers Q_O membership like isOutput, but memoizes dynamic
// machines' answers in the caller's scratch so the hot loops do not
// take the machine's lock per step.
func (c *MachineCode) isOutputDS(q nfsm.State, ds *dynScratch) bool {
	if c.kind != progDynamic {
		return c.outMask[q>>6]>>(uint(q)&63)&1 == 1
	}
	if i := int(q); i < len(ds.out) {
		if o := ds.out[i]; o >= 0 {
			return o == 1
		}
	}
	o := c.m.IsOutput(q)
	for len(ds.out) <= int(q) {
		ds.out = append(ds.out, -1)
	}
	if o {
		ds.out[q] = 1
	} else {
		ds.out[q] = 0
	}
	return o
}

// movesFor resolves δ for node v in state q. ds is the caller's dynamic
// scratch (per-worker when sharded); the flat paths never touch it.
func (rc *runCounts) movesFor(v int, q nfsm.State, ds *dynScratch) []nfsm.Move {
	p := rc.p
	switch p.kind {
	case progFlatSingle:
		c := rc.raw[v*p.nl+int(p.query[q])]
		if c > int32(p.b) {
			c = int32(p.b)
		}
		return p.delta[int(q)*(p.b+1)+int(c)]
	case progFlatMulti:
		return p.delta[int(q)*p.pdim+int(rc.idx[v])]
	}
	base := v * p.nl
	if p.single != nil {
		ql := rc.queryOf(q)
		c := rc.raw[base+int(ql)]
		if c > int32(p.b) {
			c = int32(p.b)
		}
		mi := int(q)*(p.b+1) + int(c)
		if mi < len(ds.srows) {
			if row := ds.srows[mi]; row != nil {
				return row
			}
		}
		ds.cbuf[ql] = nfsm.Count(c)
		row := p.m.Moves(q, ds.cbuf)
		for len(ds.srows) <= mi {
			ds.srows = append(ds.srows, nil)
		}
		ds.srows[mi] = row
		return row
	}
	if p.dynPack {
		ds.mcalls++
		if ds.mcalls > dynMemoThreshold {
			key := uint64(q)
			for l := 0; l < p.nl; l++ {
				c := rc.raw[base+l]
				if c > int32(p.b) {
					c = int32(p.b)
				}
				key = key<<p.dynPackBits | uint64(c)
				ds.cbuf[l] = nfsm.Count(c)
			}
			if row, ok := ds.mrows.lookup(key); ok {
				return row
			}
			row := p.m.Moves(q, ds.cbuf)
			ds.mrows.insert(key, row)
			return row
		}
	}
	for l := 0; l < p.nl; l++ {
		ds.cbuf[l] = nfsm.ClampCount(int(rc.raw[base+l]), p.b)
	}
	return p.m.Moves(q, ds.cbuf)
}

// queryOf memoizes QueryLetter for dynamic single-query machines (their
// state sets grow during execution, so the cache grows on demand). Only
// the sequential executor path reaches it — dynamic single-query
// machines are never sharded — so the memo needs no lock.
func (rc *runCounts) queryOf(q nfsm.State) nfsm.Letter {
	if int(q) < len(rc.dynQuery) {
		if l := rc.dynQuery[q]; l != -2 {
			return l
		}
	}
	l := rc.p.single.QueryLetter(q)
	for len(rc.dynQuery) <= int(q) {
		rc.dynQuery = append(rc.dynQuery, -2)
	}
	rc.dynQuery[q] = l
	return l
}
