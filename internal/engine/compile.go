package engine

import (
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
)

// progKind selects the δ-lookup strategy a compiled Program uses in the
// round loop.
type progKind uint8

const (
	// progDynamic calls m.Moves per node step: the generic fallback for
	// machines whose δ cannot be tabulated ahead of time (multi-letter
	// round protocols with a large count domain, and the lazily
	// self-interning machines built by package synchro).
	progDynamic progKind = iota
	// progFlatSingle serves single-letter-query machines from the flat
	// table delta[q*(b+1)+c], where c is the clamped count of the query
	// letter λ(q).
	progFlatSingle
	// progFlatMulti serves multi-letter round protocols from the flat
	// table delta[q*(b+1)^|Σ| + idx], where idx encodes the full clamped
	// count vector in base b+1. The executors maintain idx incrementally.
	progFlatMulti
)

// maxTabulate bounds |Q|·(b+1)^|Σ| for multi-letter tabulation. Beyond
// it Compile falls back to progDynamic (requirement (M4) makes the bound
// generous: the paper's protocols fit except the coloring protocol's
// 269·4¹² domain, which stays dynamic).
const maxTabulate = 1 << 17

// MachineCode is the graph-independent half of a compiled program: δ
// packed into flat move tables, the output set as a bitset, query
// letters as a dense array. A MachineCode is immutable after
// CompileMachine; Bind attaches it to a graph's CSR snapshot cheaply, so
// callers that execute one machine on many graphs (or many runs on one
// graph) tabulate δ exactly once.
//
// Lowering is an observational-equivalence refactor, not a semantic one:
// every table entry is exactly the slice (or a pure recomputation) that
// m.Moves would return for the same observation, and both executors draw
// randomness from the same nfsm.PickMove coin, so a compiled program's
// runs are bit-identical to the reference engine's (the differential
// tests pin this down).
type MachineCode struct {
	m nfsm.Machine

	kind     progKind
	nq       int // |Q| at compile time (dynamic machines may grow it)
	nl       int // |Σ|
	b        int // one-two-many bound
	initial  nfsm.Letter
	outMask  []uint64      // flat kinds: Q_O membership bitset
	query    []nfsm.Letter // progFlatSingle: λ as a dense array
	delta    [][]nfsm.Move // flat δ rows (see progKind for the indexing)
	pow      []int32       // progFlatMulti: pow[l] = (b+1)^l
	pdim     int           // progFlatMulti: (b+1)^|Σ|
	single   nfsm.SingleQuery
	parallel bool // compute phase may be sharded across workers
}

// Program is a MachineCode bound to a specific graph: the flat δ tables
// plus the CSR adjacency and reverse-port layout the executors walk. A
// Program is immutable after Compile/Bind and safe for concurrent
// RunSync/RunAsync calls.
type Program struct {
	*MachineCode
	g   *graph.Graph
	csr *graph.CSR
}

// CompileMachine lowers machine m into flat tables. It never fails:
// machines it cannot tabulate run through the generic fallback, which
// still benefits from the CSR layout and incremental count maintenance.
func CompileMachine(m nfsm.Machine) *MachineCode {
	c := &MachineCode{
		m:       m,
		kind:    progDynamic,
		nq:      m.NumStates(),
		nl:      m.NumLetters(),
		b:       m.Bound(),
		initial: m.InitialLetter(),
	}
	if sq, ok := m.(nfsm.SingleQuery); ok {
		c.single = sq
	}
	switch mm := m.(type) {
	case *nfsm.Protocol:
		c.lowerProtocol(mm)
		// A malformed protocol stays dynamic, where the single-query
		// path uses the lock-free queryOf memo — shard only when the
		// lowering actually succeeded.
		c.parallel = c.kind != progDynamic
	case *nfsm.RoundProtocol:
		c.lowerRound(mm)
		// A RoundProtocol's Transition is a pure function by contract,
		// so even the dynamic fallback may be sharded across workers.
		c.parallel = true
	}
	return c
}

// Bind attaches the machine code to a graph, building the CSR snapshot.
// The cost is O(n + m), with no retabulation of δ.
func (c *MachineCode) Bind(g *graph.Graph) *Program {
	return &Program{MachineCode: c, g: g, csr: g.CSR()}
}

// Compile lowers machine m against graph g: CompileMachine followed by
// Bind.
func Compile(m nfsm.Machine, g *graph.Graph) *Program {
	return CompileMachine(m).Bind(g)
}

// Machine returns the machine the program was compiled from.
func (c *MachineCode) Machine() nfsm.Machine { return c.m }

// Graph returns the graph the program was compiled against.
func (p *Program) Graph() *graph.Graph { return p.g }

// lowerProtocol packs a literal single-query protocol: its δ is already
// a dense table, so the rows are shared, not copied.
func (c *MachineCode) lowerProtocol(m *nfsm.Protocol) {
	nq, w := c.nq, c.b+1
	if len(m.Delta) != nq || len(m.Query) != nq || len(m.Output) != nq {
		return // malformed: stay dynamic, errors surface at runtime
	}
	for _, l := range m.Query {
		if l < 0 || int(l) >= c.nl {
			return // the flat path would read out of the node's count block
		}
	}
	rows := make([][]nfsm.Move, nq*w)
	for q := 0; q < nq; q++ {
		if len(m.Delta[q]) != w {
			return
		}
		copy(rows[q*w:], m.Delta[q])
	}
	c.delta = rows
	c.query = m.Query
	c.outMask = outputBitset(nq, m.IsOutput)
	c.kind = progFlatSingle
}

// lowerRound tabulates a multi-letter round protocol over its full count
// domain |Q|·(b+1)^|Σ|, exactly the enumeration RoundProtocol.Audit
// performs. Domains beyond maxTabulate stay dynamic.
func (c *MachineCode) lowerRound(m *nfsm.RoundProtocol) {
	if m.Transition == nil {
		return
	}
	nq, nl, w := c.nq, c.nl, c.b+1
	pdim := 1
	for l := 0; l < nl; l++ {
		pdim *= w
		if nq*pdim > maxTabulate {
			return
		}
	}
	defer func() {
		// A transition that panics on an unreachable count vector cannot
		// be tabulated; the dynamic path only ever shows it reachable
		// observations.
		if recover() != nil {
			c.kind = progDynamic
			c.delta = nil
			c.pow = nil
		}
	}()
	pow := make([]int32, nl)
	for l := range pow {
		pow[l] = int32(intPow(w, l))
	}
	rows := make([][]nfsm.Move, nq*pdim)
	counts := make([]nfsm.Count, nl)
	for idx := 0; idx < pdim; idx++ {
		rest := idx
		for l := 0; l < nl; l++ {
			counts[l] = nfsm.Count(rest % w)
			rest /= w
		}
		for q := 0; q < nq; q++ {
			rows[q*pdim+idx] = m.Transition(nfsm.State(q), counts)
		}
	}
	c.delta = rows
	c.pow = pow
	c.pdim = pdim
	c.outMask = outputBitset(nq, m.IsOutput)
	c.kind = progFlatMulti
}

func intPow(base, exp int) int {
	r := 1
	for i := 0; i < exp; i++ {
		r *= base
	}
	return r
}

func outputBitset(nq int, isOutput func(nfsm.State) bool) []uint64 {
	mask := make([]uint64, (nq+63)/64)
	for q := 0; q < nq; q++ {
		if isOutput(nfsm.State(q)) {
			mask[q>>6] |= 1 << (uint(q) & 63)
		}
	}
	return mask
}

// isOutput answers Q_O membership from the bitset for flat programs and
// from the machine otherwise.
func (c *MachineCode) isOutput(q nfsm.State) bool {
	if c.kind != progDynamic {
		return c.outMask[q>>6]>>(uint(q)&63)&1 == 1
	}
	return c.m.IsOutput(q)
}

// runCounts is the per-run mutable execution state shared by the
// synchronous and asynchronous executors: the flat port array aligned
// with the CSR edge order, the per-node raw (unclamped) letter counts,
// and — for progFlatMulti — the per-node base-(b+1) encoding of the
// clamped count vector, all maintained incrementally as ports change.
type runCounts struct {
	p *Program
	// portDat[k] is the letter held by the port at CSR edge slot k: for
	// k in [NbrOff[v], NbrOff[v+1]) it is the last letter delivered to v
	// from NbrDat[k].
	portDat []nfsm.Letter
	// raw[v*|Σ|+l] counts the ports of v currently holding letter l.
	raw []int32
	// idx[v] = Σ_l f_b(raw[v][l])·pow[l] (progFlatMulti only).
	idx []int32
	// dynQuery memoizes λ(q) for dynamic single-query machines whose
	// QueryLetter takes a lock (the synchro compilers); -2 marks unknown.
	dynQuery []nfsm.Letter
}

func newRunCounts(p *Program) *runCounts {
	return newRunCountsCSR(p, p.csr)
}

// newRunCountsCSR builds the run state against an explicit CSR snapshot:
// the dynamic execution path starts from the bound snapshot but rebinds
// to fresh snapshots as the scenario mutates the topology.
func newRunCountsCSR(p *Program, csr *graph.CSR) *runCounts {
	n := csr.N()
	rc := &runCounts{
		p:       p,
		portDat: make([]nfsm.Letter, len(csr.NbrDat)),
		raw:     make([]int32, n*p.nl),
	}
	for k := range rc.portDat {
		rc.portDat[k] = p.initial
	}
	if p.kind == progFlatMulti {
		rc.idx = make([]int32, n)
	}
	for v := 0; v < n; v++ {
		deg := int32(csr.Degree(v))
		if deg == 0 {
			continue
		}
		rc.raw[v*p.nl+int(p.initial)] = deg
		if rc.idx != nil {
			c := deg
			if c > int32(p.b) {
				c = int32(p.b)
			}
			rc.idx[v] = c * p.pow[p.initial]
		}
	}
	return rc
}

// rebind re-aligns the run state with a new CSR snapshot after a
// topology mutation, carrying the letter of every surviving directed
// edge across the slot renumbering (remap comes from graph.RemapPorts)
// and rebuilding the count aggregates from the remapped ports. New
// edges start at the initial letter, exactly like a port at round 0.
func (rc *runCounts) rebind(csr *graph.CSR, remap []int32) {
	p := rc.p
	old := rc.portDat
	rc.portDat = make([]nfsm.Letter, len(csr.NbrDat))
	for k := range rc.portDat {
		if o := remap[k]; o >= 0 {
			rc.portDat[k] = old[o]
		} else {
			rc.portDat[k] = p.initial
		}
	}
	for i := range rc.raw {
		rc.raw[i] = 0
	}
	n := csr.N()
	for v := 0; v < n; v++ {
		base := v * p.nl
		for k := csr.NbrOff[v]; k < csr.NbrOff[v+1]; k++ {
			rc.raw[base+int(rc.portDat[k])]++
		}
		if rc.idx != nil {
			rc.idx[v] = rc.encodeIdx(base)
		}
	}
}

// resetNode clears node v's local memory: every port back to the
// initial letter with the count aggregates rebuilt. This is the engine
// half of a node reboot (restart, wake, or a scenario reset policy);
// the caller resets the state vector.
func (rc *runCounts) resetNode(v int, csr *graph.CSR) {
	p := rc.p
	base := v * p.nl
	for l := 0; l < p.nl; l++ {
		rc.raw[base+l] = 0
	}
	deg := int32(csr.Degree(v))
	for k := csr.NbrOff[v]; k < csr.NbrOff[v+1]; k++ {
		rc.portDat[k] = p.initial
	}
	rc.raw[base+int(p.initial)] = deg
	if rc.idx != nil {
		rc.idx[v] = rc.encodeIdx(base)
	}
}

// encodeIdx recomputes the base-(b+1) clamped-count encoding of one
// node's raw count block (progFlatMulti only).
func (rc *runCounts) encodeIdx(base int) int32 {
	p := rc.p
	var idx int32
	for l := 0; l < p.nl; l++ {
		c := rc.raw[base+l]
		if c > int32(p.b) {
			c = int32(p.b)
		}
		idx += c * p.pow[l]
	}
	return idx
}

// setPort overwrites the port at CSR edge slot k of node v with letter l
// and maintains the incremental counts. It must only be called with a
// valid letter (deliveries are never ε).
func (rc *runCounts) setPort(v int, k int32, l nfsm.Letter) {
	old := rc.portDat[k]
	if old == l {
		return
	}
	rc.portDat[k] = l
	base := v * rc.p.nl
	io, in := base+int(old), base+int(l)
	rc.raw[io]--
	rc.raw[in]++
	if rc.idx != nil {
		b := int32(rc.p.b)
		// f_b moves only while the raw count is within the clamp window.
		if rc.raw[io] < b {
			rc.idx[v] -= rc.p.pow[old]
		}
		if rc.raw[in] <= b {
			rc.idx[v] += rc.p.pow[l]
		}
	}
}

// movesFor resolves δ for node v in state q. cbuf is the caller's scratch
// count vector (used only on the dynamic path; per-worker when sharded).
func (rc *runCounts) movesFor(v int, q nfsm.State, cbuf []nfsm.Count) []nfsm.Move {
	p := rc.p
	switch p.kind {
	case progFlatSingle:
		c := rc.raw[v*p.nl+int(p.query[q])]
		if c > int32(p.b) {
			c = int32(p.b)
		}
		return p.delta[int(q)*(p.b+1)+int(c)]
	case progFlatMulti:
		return p.delta[int(q)*p.pdim+int(rc.idx[v])]
	}
	base := v * p.nl
	if p.single != nil {
		ql := rc.queryOf(q)
		cbuf[ql] = nfsm.ClampCount(int(rc.raw[base+int(ql)]), p.b)
		return p.m.Moves(q, cbuf)
	}
	for l := 0; l < p.nl; l++ {
		cbuf[l] = nfsm.ClampCount(int(rc.raw[base+l]), p.b)
	}
	return p.m.Moves(q, cbuf)
}

// queryOf memoizes QueryLetter for dynamic single-query machines (their
// state sets grow during execution, so the cache grows on demand). Only
// the sequential executor path reaches it — dynamic single-query
// machines are never sharded — so the memo needs no lock.
func (rc *runCounts) queryOf(q nfsm.State) nfsm.Letter {
	if int(q) < len(rc.dynQuery) {
		if l := rc.dynQuery[q]; l != -2 {
			return l
		}
	}
	l := rc.p.single.QueryLetter(q)
	for len(rc.dynQuery) <= int(q) {
		rc.dynQuery = append(rc.dynQuery, -2)
	}
	rc.dynQuery[q] = l
	return l
}
