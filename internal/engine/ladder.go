package engine

// This file implements the asynchronous engines' event core: a two-tier
// ladder (calendar) queue ordered by (time, seq), and the pooled
// per-directed-edge delivery FIFOs that keep steady-state execution free
// of heap allocations.
//
// The queue replaces the binary min-heap of the earlier engines. A heap
// pays O(log n) comparisons on every push and pop; the ladder exploits
// the structure of a discrete-event simulation — almost every push is
// either in the immediate future (deliveries, fast re-queued steps) or
// far ahead (slow nodes' next steps) — to make both operations O(1)
// amortized: near-future events live in a small sorted "bottom" batch
// served by a cursor, mid-range events in a rung of unsorted buckets
// that are sorted only when their turn comes, and far-future events in
// an unsorted "top" slab that is periodically split into a fresh rung.
//
// Exact order is load-bearing: the (time, seq) key is a total order
// (seq is unique), and every structure here serves events in exactly
// that order, so the executors built on the ladder pop the same
// sequence a heap would — the differential tests against the reference
// engines pin this down. All backing slices are retained across resets,
// so a Scratch-reusing run performs no queue allocations at all once
// the slices have grown to the run's high-water mark.

// qevent is a queue entry shared by the static and dynamic asynchronous
// executors: either a node step or a port delivery.
type qevent struct {
	time float64
	seq  uint64 // FIFO-stable tiebreak for equal times
	node int32  // stepping node, or the delivery's destination
	// aux is the CSR edge slot of a static delivery, or the transmitting
	// node of a dynamic delivery (slots renumber across re-binds, so
	// dynamic deliveries are addressed by directed edge).
	aux    int32
	letter int32  // delivery only
	epoch  uint32 // dynamic step only: liveness epoch at scheduling time
	step   bool
	// corrupt marks a delivery whose letter a channel Corrupt policy
	// rewrote (voted runs count refused corrupted receipts with it).
	corrupt bool
}

// before is the total order the ladder serves.
func (e *qevent) before(f *qevent) bool {
	if e.time != f.time {
		return e.time < f.time
	}
	return e.seq < f.seq
}

// stepLenBatch is the per-node step-length cache width of the
// asynchronous executor (see Scratch.stepLens).
const stepLenBatch = 32

// ladderBuckets is the rung width. Per-bucket population is the queue
// size over this; buckets are sorted lazily as they drain, so the
// constant trades sort batch size against bucket-scan overhead.
const ladderBuckets = 64

// ladder is the two-tier event queue. Events are routed by a single
// canonical computation (bucketOf), so the bottom/rung/top split can
// never disagree with itself about which tier a time belongs to.
type ladder struct {
	// bot is the currently served batch, sorted ascending by (time, seq)
	// and consumed from cur. Pushes that land below the draining bucket
	// boundary insert into the unserved suffix.
	bot []qevent
	cur int

	// The rung: buck[i] holds, unsorted, the events with bucketOf == i.
	// Buckets below rcur have been drained into bot. inv is
	// ladderBuckets / (rhi - rlo).
	buck [ladderBuckets][]qevent
	rlo  float64
	rhi  float64
	inv  float64
	rcur int
	rung bool

	// top is the unsorted far-future slab (time > rhi when a rung is
	// active; everything when none is). tmin/tmax frame the next rung.
	top        []qevent
	tmin, tmax float64

	// botTime is the single shared time of a rungless bottom batch (the
	// degenerate "all remaining events are simultaneous" case).
	botTime float64

	n int
}

// reset empties the queue, retaining all backing storage.
func (l *ladder) reset() {
	l.bot = l.bot[:0]
	l.cur = 0
	for i := range l.buck {
		l.buck[i] = l.buck[i][:0]
	}
	l.rung = false
	l.top = l.top[:0]
	l.n = 0
}

func (l *ladder) len() int { return l.n }

// bucketOf maps a time to its rung bucket index. Values beyond the rung
// (> rhi) report ladderBuckets. The comparison and the index derive
// from the same float computation everywhere, so routing is consistent
// under rounding: two times map to ordered indices whenever the floor
// of their scaled offsets differ, which is exactly the property the
// drain order relies on.
func (l *ladder) bucketOf(t float64) int {
	if t > l.rhi {
		return ladderBuckets
	}
	i := int((t - l.rlo) * l.inv)
	if i >= ladderBuckets {
		i = ladderBuckets - 1
	}
	return i
}

// push inserts an event. Events may not precede the most recently
// popped (time, seq) — the executors only ever schedule into the
// present or future, which the FIFO horizons and positive adversary
// parameters guarantee.
func (l *ladder) push(e qevent) {
	l.n++
	if l.rung {
		switch i := l.bucketOf(e.time); {
		case i < l.rcur:
			l.insertBot(e)
		case i < ladderBuckets:
			l.buck[i] = append(l.buck[i], e)
		default:
			l.pushTop(e)
		}
		return
	}
	if l.cur < len(l.bot) && e.time <= l.botTime {
		l.insertBot(e)
		return
	}
	l.pushTop(e)
}

func (l *ladder) pushTop(e qevent) {
	if len(l.top) == 0 || e.time < l.tmin {
		l.tmin = e.time
	}
	if len(l.top) == 0 || e.time > l.tmax {
		l.tmax = e.time
	}
	l.top = append(l.top, e)
}

// insertBot places e into the unserved suffix of the bottom batch,
// keeping it sorted. The batch is one bucket's worth of events, so the
// shift is short; a binary search finds the slot.
func (l *ladder) insertBot(e qevent) {
	lo, hi := l.cur, len(l.bot)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.bot[mid].before(&e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	l.bot = append(l.bot, qevent{})
	copy(l.bot[lo+1:], l.bot[lo:])
	l.bot[lo] = e
}

// ensure refills the bottom batch if it is exhausted. It reports
// whether any event remains.
func (l *ladder) ensure() bool {
	if l.cur < len(l.bot) {
		return true
	}
	l.bot = l.bot[:0]
	l.cur = 0
	for {
		if l.rung {
			for i := l.rcur; i < ladderBuckets; i++ {
				if len(l.buck[i]) == 0 {
					continue
				}
				// Copy the bucket into the bottom buffer and sort it.
				// Copying (rather than swapping slices) keeps every
				// tier's backing storage in place, so capacities
				// converge to their high-water marks and the steady
				// state stops allocating.
				l.bot = append(l.bot[:0], l.buck[i]...)
				l.buck[i] = l.buck[i][:0]
				l.rcur = i + 1
				sortEvents(l.bot)
				return true
			}
			l.rung = false
		}
		if len(l.top) == 0 {
			return false
		}
		if l.tmax > l.tmin {
			// Split the far-future slab into a fresh rung.
			l.rlo, l.rhi = l.tmin, l.tmax
			l.inv = float64(ladderBuckets) / (l.rhi - l.rlo)
			l.rcur = 0
			l.rung = true
			for _, e := range l.top {
				i := l.bucketOf(e.time)
				l.buck[i] = append(l.buck[i], e)
			}
			l.top = l.top[:0]
			continue
		}
		// Degenerate slab: every remaining event is simultaneous. Serve
		// it directly as a rungless bottom batch (ordered by seq).
		l.bot = append(l.bot[:0], l.top...)
		l.top = l.top[:0]
		l.botTime = l.tmin
		sortEvents(l.bot)
		return true
	}
}

// peekTime reports the (time) of the next event without consuming it.
func (l *ladder) peekTime() (float64, bool) {
	if !l.ensure() {
		return 0, false
	}
	return l.bot[l.cur].time, true
}

// pop removes and returns the next event in (time, seq) order.
func (l *ladder) pop() (qevent, bool) {
	if !l.ensure() {
		return qevent{}, false
	}
	e := l.bot[l.cur]
	l.cur++
	l.n--
	return e, true
}

// sortEvents sorts events ascending by (time, seq) without closures or
// interface boxing (sort.Slice would allocate on this hot path):
// insertion sort for short runs, median-of-three quicksort above.
func sortEvents(ev []qevent) {
	for len(ev) > 12 {
		// Median-of-three pivot, Hoare partition. (time, seq) is a
		// strict total order — seq is unique — so the scan loops always
		// stop at the pivot value.
		m := len(ev) / 2
		hi := len(ev) - 1
		if ev[m].before(&ev[0]) {
			ev[0], ev[m] = ev[m], ev[0]
		}
		if ev[hi].before(&ev[0]) {
			ev[0], ev[hi] = ev[hi], ev[0]
		}
		if ev[hi].before(&ev[m]) {
			ev[m], ev[hi] = ev[hi], ev[m]
		}
		p := ev[m]
		i, j := 0, hi
		for {
			for ev[i].before(&p) {
				i++
			}
			for p.before(&ev[j]) {
				j--
			}
			if i >= j {
				break
			}
			ev[i], ev[j] = ev[j], ev[i]
			i++
			j--
		}
		// Recurse into the smaller side, loop on the larger.
		if j+1 < len(ev)-(j+1) {
			sortEvents(ev[:j+1])
			ev = ev[j+1:]
		} else {
			sortEvents(ev[j+1:])
			ev = ev[:j+1]
		}
	}
	for i := 1; i < len(ev); i++ {
		e := ev[i]
		j := i - 1
		for j >= 0 && e.before(&ev[j]) {
			ev[j+1] = ev[j]
			j--
		}
		ev[j+1] = e
	}
}

// pend is one pooled in-flight delivery waiting behind the head of its
// directed edge's FIFO. Entries form intrusive per-edge lists through
// next; freed entries chain on the pool's free list, so the steady
// state recycles storage without allocating.
type pend struct {
	time   float64
	seq    uint64
	letter int32
	next   int32
}

// delivPool is the pooled per-directed-edge delivery FIFO set used by
// the static asynchronous executor. Deliveries on a directed edge are
// FIFO (the adversary's horizons are clamped monotone), so only the
// earliest outstanding delivery of each edge needs to live in the
// ladder; the rest wait here and are promoted one at a time. This
// bounds the ladder's population by the number of directed edges plus
// nodes regardless of how many deliveries the adversary keeps in
// flight, and every entry is pool-recycled.
type delivPool struct {
	pool []pend
	free int32
	// head/tail index the per-edge-slot lists (-1 when empty); live
	// marks edges whose earliest outstanding delivery is in the ladder.
	head []int32
	tail []int32
	live []bool
}

// reset prepares the pool for ne directed edge slots, retaining
// storage.
func (d *delivPool) reset(ne int) {
	d.pool = d.pool[:0]
	d.free = -1
	if cap(d.head) < ne {
		d.head = make([]int32, ne)
		d.tail = make([]int32, ne)
		d.live = make([]bool, ne)
	}
	d.head = d.head[:ne]
	d.tail = d.tail[:ne]
	d.live = d.live[:ne]
	for i := range d.head {
		d.head[i] = -1
		d.tail[i] = -1
		d.live[i] = false
	}
}

// enqueue records a delivery on edge slot k. It reports whether the
// delivery is the edge's new FIFO head and must enter the ladder now
// (otherwise it waits pooled behind the in-ladder head).
func (d *delivPool) enqueue(k int32, time float64, seq uint64, letter int32) bool {
	if !d.live[k] {
		d.live[k] = true
		return true
	}
	var i int32
	if d.free >= 0 {
		i = d.free
		d.free = d.pool[i].next
	} else {
		d.pool = append(d.pool, pend{})
		i = int32(len(d.pool) - 1)
	}
	d.pool[i] = pend{time: time, seq: seq, letter: letter, next: -1}
	if d.tail[k] >= 0 {
		d.pool[d.tail[k]].next = i
	} else {
		d.head[k] = i
	}
	d.tail[k] = i
	return false
}

// delivered consumes the in-ladder head of edge slot k and promotes the
// next pooled delivery, if any, returning it for insertion into the
// ladder.
func (d *delivPool) delivered(k int32) (pend, bool) {
	i := d.head[k]
	if i < 0 {
		d.live[k] = false
		return pend{}, false
	}
	p := d.pool[i]
	d.head[k] = p.next
	if p.next < 0 {
		d.tail[k] = -1
	}
	d.pool[i].next = d.free
	d.free = i
	return p, true
}
