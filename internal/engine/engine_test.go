package engine

import (
	"errors"
	"testing"

	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
)

// waveProtocol is a single-letter broadcast wave: sources transmit PING
// and finish; idle nodes finish (and retransmit) upon observing PING.
// States: 0 IDLE, 1 SOURCE, 2 DONE.
func waveProtocol() *nfsm.Protocol {
	stay := func(q nfsm.State) []nfsm.Move { return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}} }
	return &nfsm.Protocol{
		Name:        "wave",
		StateNames:  []string{"idle", "source", "done"},
		LetterNames: []string{"ping", "quiet"},
		Input:       []nfsm.State{0, 1},
		Output:      []bool{false, false, true},
		Initial:     1, // quiet
		B:           1,
		Query:       []nfsm.Letter{0, 0, 0},
		Delta: [][][]nfsm.Move{
			{stay(0), {{Next: 2, Emit: 0}}},              // idle: ping seen → done
			{{{Next: 2, Emit: 0}}, {{Next: 2, Emit: 0}}}, // source: always fire
			{stay(2), stay(2)},
		},
	}
}

func waveInit(n, source int) []nfsm.State {
	init := make([]nfsm.State, n)
	init[source] = 1
	return init
}

func TestWaveValidates(t *testing.T) {
	if err := waveProtocol().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncWaveOnPath(t *testing.T) {
	// Source at node 0 of P_n: node k finishes in round k+1, so the run
	// takes exactly n rounds.
	for _, n := range []int{1, 2, 5, 32} {
		g := graph.Path(n)
		res, err := RunSync(waveProtocol(), g, SyncConfig{Seed: 1, Init: waveInit(n, 0)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Rounds != n {
			t.Errorf("n=%d: rounds = %d, want %d", n, res.Rounds, n)
		}
		for v, q := range res.States {
			if q != 2 {
				t.Errorf("n=%d: node %d ended in state %d", n, v, q)
			}
		}
		// One transmission per node.
		if res.Transmissions != int64(n) {
			t.Errorf("n=%d: transmissions = %d, want %d", n, res.Transmissions, n)
		}
	}
}

func TestSyncWaveFromCenterOfStar(t *testing.T) {
	g := graph.Star(10)
	res, err := RunSync(waveProtocol(), g, SyncConfig{Seed: 1, Init: waveInit(10, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", res.Rounds)
	}
}

func TestSyncObserverSeesEveryRound(t *testing.T) {
	g := graph.Path(6)
	var rounds []int
	_, err := RunSync(waveProtocol(), g, SyncConfig{
		Seed: 1,
		Init: waveInit(6, 0),
		Observer: func(round int, states []nfsm.State) {
			rounds = append(rounds, round)
			if len(states) != 6 {
				t.Errorf("observer got %d states", len(states))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 6 {
		t.Fatalf("observer called %d times, want 6", len(rounds))
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Fatalf("rounds sequence %v", rounds)
		}
	}
}

func TestSyncNoConvergence(t *testing.T) {
	// All idle, no source: the wave never starts.
	g := graph.Path(4)
	_, err := RunSync(waveProtocol(), g, SyncConfig{Seed: 1, MaxRounds: 50})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

func TestSyncInitValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := RunSync(waveProtocol(), g, SyncConfig{Init: make([]nfsm.State, 2)}); err == nil {
		t.Fatal("short init accepted")
	}
	bad := []nfsm.State{0, 9, 0}
	if _, err := RunSync(waveProtocol(), g, SyncConfig{Init: bad}); err == nil {
		t.Fatal("out-of-range init accepted")
	}
}

func TestSyncImmediateOutputConfiguration(t *testing.T) {
	g := graph.Path(3)
	init := []nfsm.State{2, 2, 2}
	res, err := RunSync(waveProtocol(), g, SyncConfig{Init: init})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Fatalf("rounds = %d, want 0", res.Rounds)
	}
}

// thresholdProtocol tests the one-two-many counter: the collector (state
// 0) finishes only upon observing ≥2 PINGs; emitters (state 1) fire once.
func thresholdProtocol() *nfsm.Protocol {
	stay := func(q nfsm.State) []nfsm.Move { return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}} }
	return &nfsm.Protocol{
		Name:        "threshold",
		StateNames:  []string{"collect", "emit", "done"},
		LetterNames: []string{"ping", "quiet"},
		Input:       []nfsm.State{0, 1},
		Output:      []bool{false, false, true},
		Initial:     1,
		B:           2,
		Query:       []nfsm.Letter{0, 0, 0},
		Delta: [][][]nfsm.Move{
			{stay(0), stay(0), {{Next: 2, Emit: nfsm.NoLetter}}}, // collect: needs ≥2
			{{{Next: 2, Emit: 0}}, {{Next: 2, Emit: 0}}, {{Next: 2, Emit: 0}}},
			{stay(2), stay(2), stay(2)},
		},
	}
}

func TestSyncOneTwoManyCounting(t *testing.T) {
	p := thresholdProtocol()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Star center 0 with 3 leaves, all emitters: center sees 3 pings,
	// clamped to ≥2 → finishes.
	g := graph.Star(4)
	init := []nfsm.State{0, 1, 1, 1}
	res, err := RunSync(p, g, SyncConfig{Seed: 1, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", res.Rounds)
	}
	// With a single leaf the count stays below the threshold forever.
	g1 := graph.Star(2)
	_, err = RunSync(p, g1, SyncConfig{Seed: 1, Init: []nfsm.State{0, 1}, MaxRounds: 100})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

// coinProtocol flips a fair coin: from state 0 move to output state 1 or 2.
func coinProtocol() *nfsm.Protocol {
	stay := func(q nfsm.State) []nfsm.Move { return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}} }
	return &nfsm.Protocol{
		Name:        "coin",
		StateNames:  []string{"flip", "heads", "tails"},
		LetterNames: []string{"x"},
		Input:       []nfsm.State{0},
		Output:      []bool{false, true, true},
		Initial:     0,
		B:           1,
		Query:       []nfsm.Letter{0, 0, 0},
		Delta: [][][]nfsm.Move{
			{{{Next: 1, Emit: nfsm.NoLetter}, {Next: 2, Emit: nfsm.NoLetter}},
				{{Next: 1, Emit: nfsm.NoLetter}, {Next: 2, Emit: nfsm.NoLetter}}},
			{stay(1), stay(1)},
			{stay(2), stay(2)},
		},
	}
}

func TestSyncDeterministicAcrossRuns(t *testing.T) {
	g := graph.Clique(8)
	a, err := RunSync(coinProtocol(), g, SyncConfig{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSync(coinProtocol(), g, SyncConfig{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.States {
		if a.States[v] != b.States[v] {
			t.Fatalf("same seed diverged at node %d", v)
		}
	}
	c, err := RunSync(coinProtocol(), g, SyncConfig{Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.States {
		if a.States[v] != c.States[v] {
			same = false
		}
	}
	if same {
		t.Log("different seeds produced identical outcome (possible but unlikely for 8 coins)")
	}
}

func TestCoinRoughlyFairAcrossNodes(t *testing.T) {
	g := graph.New(2000) // isolated nodes, one coin each
	res, err := RunSync(coinProtocol(), g, SyncConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	heads := 0
	for _, q := range res.States {
		if q == 1 {
			heads++
		}
	}
	if heads < 900 || heads > 1100 {
		t.Fatalf("heads = %d of 2000, coin is biased", heads)
	}
}

func TestAsyncWaveUnderAllAdversaries(t *testing.T) {
	g := graph.Path(16)
	for name, adv := range NamedAdversaries(7) {
		t.Run(name, func(t *testing.T) {
			res, err := RunAsync(waveProtocol(), g, AsyncConfig{
				Seed: 3, Adversary: adv, Init: waveInit(16, 0),
			})
			if err != nil {
				t.Fatal(err)
			}
			for v, q := range res.States {
				if q != 2 {
					t.Errorf("node %d ended in state %d", v, q)
				}
			}
			if res.TimeUnits <= 0 {
				t.Errorf("TimeUnits = %v, want > 0", res.TimeUnits)
			}
		})
	}
}

func TestAsyncSynchronousAdversaryMatchesRounds(t *testing.T) {
	// Under the Synchronous policy every step and delay is one unit, so
	// the wave front advances one hop per two time units (step, then
	// delivery); the run-time is Θ(n) time units and every parameter is
	// 1, so TimeUnits == Time.
	g := graph.Path(10)
	res, err := RunAsync(waveProtocol(), g, AsyncConfig{Seed: 3, Init: waveInit(10, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != res.TimeUnits {
		t.Fatalf("Time %v != TimeUnits %v under unit parameters", res.Time, res.TimeUnits)
	}
	if res.TimeUnits < 10 || res.TimeUnits > 21 {
		t.Fatalf("TimeUnits = %v, want within [10, 21] for a 10-node wave", res.TimeUnits)
	}
}

func TestAsyncTimeUnitNormalization(t *testing.T) {
	// With all parameters equal to 0.5 the absolute time halves but the
	// normalized run-time must match the unit-parameter run.
	g := graph.Path(8)
	unit, err := RunAsync(waveProtocol(), g, AsyncConfig{Seed: 3, Init: waveInit(8, 0)})
	if err != nil {
		t.Fatal(err)
	}
	half, err := RunAsync(waveProtocol(), g, AsyncConfig{
		Seed: 3, Adversary: constantAdversary{0.5}, Init: waveInit(8, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if half.Time >= unit.Time {
		t.Fatalf("half-speed time %v not below unit time %v", half.Time, unit.Time)
	}
	if diff := half.TimeUnits - unit.TimeUnits; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("normalized run-times differ: %v vs %v", half.TimeUnits, unit.TimeUnits)
	}
}

type constantAdversary struct{ d float64 }

func (c constantAdversary) StepLength(int, int) float64 { return c.d }
func (c constantAdversary) Delay(int, int, int) float64 { return c.d }

type badAdversary struct{}

func (badAdversary) StepLength(int, int) float64 { return 0 }
func (badAdversary) Delay(int, int, int) float64 { return 1 }

func TestAsyncRejectsNonPositiveParameters(t *testing.T) {
	g := graph.Path(3)
	_, err := RunAsync(waveProtocol(), g, AsyncConfig{Adversary: badAdversary{}, Init: waveInit(3, 0)})
	if err == nil {
		t.Fatal("non-positive step length accepted")
	}
}

func TestAsyncStepBudget(t *testing.T) {
	g := graph.Path(4) // no source: never converges
	_, err := RunAsync(waveProtocol(), g, AsyncConfig{Seed: 1, MaxSteps: 100})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

// chatterProtocol has one talkative node that emits on every step through
// a chain of states before finishing, and listeners that finish on the
// first observed CHAT. Under the Overwriter policy most transmissions are
// overwritten in the port before the slow listener observes them.
func chatterProtocol() *nfsm.Protocol {
	const chain = 8
	states := make([]string, 0, chain+2)
	for i := 0; i < chain; i++ {
		states = append(states, "talk")
	}
	states = append(states, "listen", "done")
	listen := nfsm.State(chain)
	done := nfsm.State(chain + 1)
	delta := make([][][]nfsm.Move, chain+2)
	for i := 0; i < chain; i++ {
		next := nfsm.State(i + 1)
		if i == chain-1 {
			next = done
		}
		mv := []nfsm.Move{{Next: next, Emit: 0}}
		delta[i] = [][]nfsm.Move{mv, mv}
	}
	delta[listen] = [][]nfsm.Move{
		{{Next: listen, Emit: nfsm.NoLetter}},
		{{Next: done, Emit: nfsm.NoLetter}},
	}
	delta[done] = [][]nfsm.Move{
		{{Next: done, Emit: nfsm.NoLetter}},
		{{Next: done, Emit: nfsm.NoLetter}},
	}
	queries := make([]nfsm.Letter, chain+2)
	output := make([]bool, chain+2)
	output[done] = true
	return &nfsm.Protocol{
		Name:        "chatter",
		StateNames:  states,
		LetterNames: []string{"chat", "quiet"},
		Input:       []nfsm.State{0, listen},
		Output:      output,
		Initial:     1,
		B:           1,
		Query:       queries,
		Delta:       delta,
	}
}

func TestAsyncOverwriterLosesMessages(t *testing.T) {
	p := chatterProtocol()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g := graph.Path(2)
	listen := nfsm.State(8)
	res, err := RunAsync(p, g, AsyncConfig{
		Seed:      2,
		Adversary: Overwriter{Seed: 11},
		Init:      []nfsm.State{0, listen},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost == 0 {
		t.Fatal("Overwriter adversary lost no messages; port overwrite semantics untested")
	}
}

func TestAsyncFIFOPerEdge(t *testing.T) {
	// The chatter emits CHAT eight times; FIFO plus overwrite means the
	// listener's port must end holding the *last* transmission no matter
	// the adversary. We verify the listener always terminates (it would
	// hang only if ports could present no letter at all).
	p := chatterProtocol()
	g := graph.Path(2)
	listen := nfsm.State(8)
	for name, adv := range NamedAdversaries(5) {
		res, err := RunAsync(p, g, AsyncConfig{
			Seed: 4, Adversary: adv, Init: []nfsm.State{0, listen},
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.States[1] != nfsm.State(9) {
			t.Fatalf("%s: listener ended in state %d", name, res.States[1])
		}
	}
}

func TestAsyncDeterministic(t *testing.T) {
	g := graph.Clique(6)
	run := func() *AsyncResult {
		res, err := RunAsync(coinProtocol(), g, AsyncConfig{
			Seed: 12, Adversary: UniformRandom{Seed: 13},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Time != b.Time || a.Steps != b.Steps {
		t.Fatal("async run is not deterministic")
	}
	for v := range a.States {
		if a.States[v] != b.States[v] {
			t.Fatal("async states diverged across identical runs")
		}
	}
}

func TestNamedAdversariesComplete(t *testing.T) {
	advs := NamedAdversaries(1)
	for _, name := range []string{"sync", "uniform", "skew", "overwriter", "drift"} {
		if advs[name] == nil {
			t.Errorf("missing adversary %q", name)
		}
	}
}

func TestAdversaryParameterRanges(t *testing.T) {
	for name, adv := range NamedAdversaries(3) {
		for node := 0; node < 10; node++ {
			for step := 1; step <= 50; step++ {
				l := adv.StepLength(node, step)
				if l <= 0 || l > 1 {
					t.Fatalf("%s: StepLength(%d,%d) = %v outside (0,1]", name, node, step, l)
				}
				d := adv.Delay(node, step, (node+1)%10)
				if d <= 0 || d > 1 {
					t.Fatalf("%s: Delay(%d,%d) = %v outside (0,1]", name, node, step, d)
				}
			}
		}
	}
}
