package engine

import (
	"testing"
	"testing/quick"

	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

// TestPropertyAsyncAgreesWithSyncOnDeterministicProtocol: for a
// deterministic protocol (the broadcast wave), the asynchronous engine
// must reach the same final configuration as the synchronous engine on
// any graph under any of the standard adversaries — asynchrony may
// reorder work but cannot change a deterministic protocol's fixpoint.
func TestPropertyAsyncAgreesWithSyncOnDeterministicProtocol(t *testing.T) {
	p := waveProtocol()
	f := func(seed uint64, nRaw, pRaw, advRaw uint8) bool {
		n := int(nRaw%30) + 2
		prob := float64(pRaw%80)/100 + 0.05
		g := graph.GnpConnected(n, prob, xrand.New(seed))
		init := waveInit(n, int(seed%uint64(n)))

		sres, err := RunSync(p, g, SyncConfig{Seed: seed, Init: init})
		if err != nil {
			return false
		}
		advs := []Adversary{
			Synchronous{},
			UniformRandom{Seed: seed + 1},
			Skew{Seed: seed + 2},
			Drift{Seed: seed + 3},
		}
		ares, err := RunAsync(p, g, AsyncConfig{
			Seed:      seed,
			Adversary: advs[int(advRaw)%len(advs)],
			Init:      init,
		})
		if err != nil {
			return false
		}
		for v := range sres.States {
			if sres.States[v] != ares.States[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// extremeAdversary mixes parameter magnitudes across five orders of
// magnitude; the run-time normalization must absorb the scale.
type extremeAdversary struct{ seed uint64 }

func (a extremeAdversary) StepLength(node, step int) float64 {
	mag := xrand.Mix(a.seed, uint64(node), uint64(step)) % 5
	return float64(uint64(1)<<(4*mag)) / 65536 * 65536 * 1e-4 * float64(mag+1)
}

func (a extremeAdversary) Delay(from, step, to int) float64 {
	mag := xrand.Mix(a.seed, 0xd, uint64(from), uint64(step), uint64(to)) % 4
	return 1e-3 * float64(uint64(1)<<(3*mag))
}

func TestExtremeParameterMagnitudes(t *testing.T) {
	g := graph.Path(10)
	res, err := RunAsync(waveProtocol(), g, AsyncConfig{
		Seed:      2,
		Adversary: extremeAdversary{seed: 5},
		Init:      waveInit(10, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeUnits <= 0 {
		t.Fatalf("TimeUnits = %v", res.TimeUnits)
	}
	// The normalized run-time of a wave over a 10-path is at least the
	// number of sequential hops and bounded by a small multiple of it —
	// regardless of the raw magnitudes the adversary used.
	if res.TimeUnits > 1000 {
		t.Fatalf("normalization failed to absorb parameter magnitudes: %v", res.TimeUnits)
	}
}

// TestZeroNodeGraph: both engines treat the empty network as an
// immediate output configuration.
func TestZeroNodeGraph(t *testing.T) {
	g := graph.New(0)
	sres, err := RunSync(waveProtocol(), g, SyncConfig{})
	if err != nil || sres.Rounds != 0 {
		t.Fatalf("sync empty: %v %v", sres, err)
	}
	ares, err := RunAsync(waveProtocol(), g, AsyncConfig{})
	if err != nil || ares.Time != 0 {
		t.Fatalf("async empty: %v %v", ares, err)
	}
}

// TestLargeDenseAsync exercises heap behaviour under heavy event load.
func TestLargeDenseAsync(t *testing.T) {
	g := graph.Clique(40)
	init := waveInit(40, 0)
	res, err := RunAsync(waveProtocol(), g, AsyncConfig{
		Seed:      1,
		Adversary: UniformRandom{Seed: 2},
		Init:      init,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, q := range res.States {
		if q != 2 {
			t.Fatalf("node %d not done", v)
		}
	}
}
