package engine

import (
	"fmt"

	"stoneage/internal/channel"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/scenario"
)

// byzIndex maps each node to its position in the scenario's Byzantine
// list (-1 for honest nodes), validating every behavior against the
// node count and alphabet size. Both executors of each engine pair call
// it, so an ill-formed Byzantine set fails identically everywhere.
func byzIndex(byz []channel.ByzNode, n, nl int) ([]int32, error) {
	if len(byz) == 0 {
		return nil, nil
	}
	idx := make([]int32, n)
	for v := range idx {
		idx[v] = -1
	}
	for i, b := range byz {
		if err := b.Validate(n, nl); err != nil {
			return nil, err
		}
		if idx[b.Node] >= 0 {
			return nil, fmt.Errorf("engine: duplicate byzantine node %d", b.Node)
		}
		idx[b.Node] = int32(i)
	}
	return idx, nil
}

// This file is the fast dynamic asynchronous executor. The static
// engine's event loop is extended with the scenario hook: mutation
// batches apply at absolute times (before any event scheduled at or
// after them), crashed nodes stop stepping (their pending step events
// are invalidated by a per-node epoch), restarted and woken nodes
// resume from a reboot on a fresh step schedule, and per-edge state —
// port letters, last-write times, FIFO horizons — is carried across
// topology re-binds by directed-edge identity. Deliveries are addressed
// by (from, to) rather than by port slot, because slots renumber at
// every re-bind; a delivery whose edge was removed mid-flight is
// dropped, the way a dying link loses its traffic. The independent
// reference implementation lives in dynamic_async_ref.go.

// dynEvent is the seed dynamic engine's queue entry, kept for the
// reference oracle in dynamic_async_ref.go (the rewritten executor uses
// the ladder queue's qevent, carrying the sender in aux).
type dynEvent struct {
	time    float64
	seq     uint64
	node    int         // stepping node, or the delivery's destination
	from    int         // delivery only: the transmitting node
	letter  nfsm.Letter // delivery only
	epoch   uint32      // step only: liveness epoch at scheduling time
	step    bool
	corrupt bool // delivery only: letter rewritten by the channel
}

// portSlot returns the CSR slot of node to's port from node from, or -1
// when {from, to} is not an edge of the snapshot (binary search over
// to's sorted run).
func portSlot(csr *graph.CSR, to, from int) int32 {
	lo, hi := csr.NbrOff[to], csr.NbrOff[to+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if csr.NbrDat[mid] < int32(from) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < csr.NbrOff[to+1] && csr.NbrDat[lo] == int32(from) {
		return lo
	}
	return -1
}

// runAsyncScenario executes the compiled program asynchronously under a
// dynamic-network scenario. It shares the static executor's ladder
// queue (deliveries are pushed directly — the per-edge FIFO pools would
// need remapping across re-binds for no benefit on this colder path)
// and its scratch-arena reuse for the queue, counts and dynamic-machine
// memos; the per-slot arrays are still rebuilt at every topology
// re-bind, exactly as the remap semantics require.
func (p *Program) runAsyncScenario(cfg AsyncConfig, scr *Scratch) (*AsyncResult, error) {
	sc := cfg.Scenario
	if p.g == nil {
		return nil, fmt.Errorf("engine: scenario runs need a graph-bound program (Bind, not BindCSR)")
	}
	if err := prepScenario(sc, p.g); err != nil {
		return nil, err
	}
	if scr == nil {
		scr = NewScratch()
	}
	g := p.g.Clone()
	n := g.N()
	states, err := initialStates(p.m, n, cfg.Init)
	if err != nil {
		return nil, err
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = Synchronous{}
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1 << 24
	}

	cur := p.csr
	scr.bind(p.MachineCode)
	rc := &scr.rc
	rc.reset(p, cur)
	ds := &scr.ds
	ds.init(p.MachineCode)
	live := scenario.NewLiveness(n, sc.Asleep)
	byz, err := byzIndex(sc.Byzantine, n, p.nl)
	if err != nil {
		return nil, err
	}
	isByz := func(v int) bool { return byz != nil && byz[v] >= 0 }

	// Channel model (nil = reliable links). Dynamic runs push deliveries
	// straight into the queue, so only the FIFO clamp depends on whether
	// the model reorders.
	model := cfg.Channel
	reorders := model != nil && model.Reorders()
	var chStats channel.Stats
	var chBuf []channel.Fate

	// Voted tier: the decoder's per-slot state (vote rings, stall
	// counters, evicted flags) is keyed by directed-edge slot, and the
	// eviction sentinel (port letter -1) would be mis-rebuilt by a
	// topology re-bind's raw-count reconstruction. Liveness mutations
	// (crash, restart, wake) and node resets are supported — a reboot
	// clears the node's decoder slots — but topological mutations are
	// rejected up front.
	var vs *votedState
	if cfg.Voted != nil {
		for _, b := range sc.Batches {
			for _, m := range b.Muts {
				if m.Topological() {
					return nil, fmt.Errorf("engine: voted synchronizer does not support topological mutations (batch at %g)", b.At)
				}
			}
		}
		vs = newVotedState(cfg.Voted, len(cur.NbrDat))
	}

	// Per directed-edge-slot state, remapped at every re-bind:
	// portWriteAt[k] is the last write time of the receiver-side port at
	// slot k (-1 = never); lastDelivery[k] is the FIFO horizon of the
	// sender-side directed edge at slot k.
	portWriteAt := make([]float64, len(cur.NbrDat))
	for k := range portWriteAt {
		portWriteAt[k] = -1
	}
	lastDelivery := make([]float64, len(cur.NbrDat))

	epoch := make([]uint32, n)
	stepIndex := make([]int, n)
	lastStepAt := make([]float64, n)

	// Post-perturbation settling window (the asynchronous analogue of
	// the synchronous engines' two-stable-rounds rule): after a batch,
	// termination additionally requires every awake node to have taken
	// at least two steps, so a configuration that merely has not yet
	// observed the perturbation is not mistaken for terminal. Unlike the
	// synchronous window this is a heuristic — adversarial delays can
	// outlast any fixed step budget — but it closes the common race.
	stepsSince := make([]int, n)
	lagging := 0

	res := &AsyncResult{States: states, FinalGraph: g}
	// Byzantine nodes never reach an output state: termination is every
	// awake *honest* node in an output state. target() is that count.
	outputs, awakeByz := 0, 0
	countLive := func() {
		outputs, awakeByz = 0, 0
		for v := 0; v < n; v++ {
			if !live.Awake(v) {
				continue
			}
			if isByz(v) {
				awakeByz++
			} else if p.isOutput(states[v]) {
				outputs++
			}
		}
	}
	countLive()
	target := func() int { return live.NumAwake() - awakeByz }

	h := &scr.async().lq
	h.reset()
	var (
		seq      uint64
		maxParam float64
	)
	useParam := func(d float64, kind string, v, t int) (float64, error) {
		if d <= 0 {
			return 0, fmt.Errorf("engine: adversary returned non-positive %s %g for node %d step %d", kind, d, v, t)
		}
		if d > maxParam {
			maxParam = d
		}
		return d, nil
	}
	push := func(e qevent) {
		e.seq = seq
		seq++
		h.push(e)
	}
	scheduleStep := func(v int, after float64) error {
		t := stepIndex[v] + 1
		l, err := useParam(adv.StepLength(v, t), "step length", v, t)
		if err != nil {
			return err
		}
		push(qevent{time: after + l, node: int32(v), epoch: epoch[v], step: true})
		return nil
	}
	timeUnits := func(t float64) float64 {
		if maxParam == 0 {
			return 0
		}
		return t / maxParam
	}

	resetNode := func(v int) {
		states[v] = resetStateOf(p.m, cfg.Init, v)
		rc.resetNode(v, cur)
		for k := cur.NbrOff[v]; k < cur.NbrOff[v+1]; k++ {
			portWriteAt[k] = -1
		}
		if vs != nil {
			vs.resetSlots(cur.NbrOff[v], cur.NbrOff[v+1])
		}
	}

	applyBatch := func(b scenario.Batch) error {
		topo := false
		var started []int
		for _, m := range b.Muts {
			st, err := live.Apply(m)
			if err != nil {
				return err
			}
			started = append(started, st...)
			if m.Kind == graph.MutCrashNode {
				epoch[m.U]++ // invalidate the pending step event
			}
			if err := m.Apply(g); err != nil {
				return err
			}
			topo = topo || m.Topological()
		}
		if topo {
			next := g.CSR()
			remap := graph.RemapPorts(cur, next)
			rc.rebind(next, remap)
			pw := make([]float64, len(next.NbrDat))
			ld := make([]float64, len(next.NbrDat))
			for k := range pw {
				if o := remap[k]; o >= 0 {
					pw[k] = portWriteAt[o]
					ld[k] = lastDelivery[o]
				} else {
					pw[k] = -1
				}
			}
			portWriteAt, lastDelivery = pw, ld
			cur = next
		}
		for _, v := range b.ResetSet(sc.Reset, g) {
			if live.Awake(v) {
				resetNode(v)
			}
		}
		for _, v := range started {
			resetNode(v)
		}
		countLive()
		for v := range stepsSince {
			stepsSince[v] = 0
		}
		lagging = live.NumAwake()
		// Rebooted nodes resume stepping from the batch time.
		for _, v := range started {
			if err := scheduleStep(v, b.At); err != nil {
				return err
			}
		}
		return nil
	}

	for v := 0; v < n; v++ {
		if !live.Awake(v) {
			continue
		}
		if err := scheduleStep(v, 0); err != nil {
			return nil, err
		}
	}

	nextBatch := 0
	lastPerturb := 0.0
	if nextBatch == len(sc.Batches) && outputs == target() {
		return res, nil
	}

	for {
		// A due batch precedes every event scheduled at or after it.
		nextAt, nonEmpty := h.peekTime()
		if nextBatch < len(sc.Batches) && (!nonEmpty || nextAt >= sc.Batches[nextBatch].At) {
			b := sc.Batches[nextBatch]
			if err := applyBatch(b); err != nil {
				return nil, err
			}
			nextBatch++
			lastPerturb = b.At
			res.PerturbedAt = append(res.PerturbedAt, b.At)
			if nextBatch == len(sc.Batches) && outputs == target() && lagging == 0 {
				// Only reachable with no awake nodes left (a batch sets
				// lagging to the awake count): vacuous convergence.
				res.Time = b.At
				res.TimeUnits = timeUnits(b.At)
				res.Dropped, res.Duplicated, res.Delayed, res.Corrupted = chStats.Dropped, chStats.Duplicated, chStats.Delayed, chStats.Corrupted
				res.Outvoted = chStats.Outvoted
				if vs != nil {
					vs.fill(res)
				}
				return res, nil
			}
			continue
		}
		e, ok := h.pop()
		if !ok {
			break
		}
		if !e.step {
			// Delivery: resolve the port from the current snapshot; a
			// removed edge drops its in-flight traffic (counted as
			// Severed, distinct from paper-semantics Lost overwrites and
			// from channel Dropped).
			v := int(e.node)
			k := portSlot(cur, v, int(e.aux))
			if k < 0 {
				res.Severed++
				continue
			}
			if vs != nil {
				// Voted decoding: the receipt enters the port's vote
				// window; only a winning letter touches the port.
				letter := nfsm.Letter(e.letter)
				outcome, winner := vs.receive(k, letter, rc.portDat[k])
				if outcome == voteCommit {
					if portWriteAt[k] > lastStepAt[v] {
						res.Lost++
					}
					rc.setPort(v, k, winner)
					portWriteAt[k] = e.time
				}
				if e.corrupt && vs.outvoted(outcome, winner, letter) {
					chStats.Outvoted++
				}
				continue
			}
			if portWriteAt[k] > lastStepAt[v] {
				res.Lost++
			}
			rc.setPort(v, k, nfsm.Letter(e.letter))
			portWriteAt[k] = e.time
			continue
		}
		if e.epoch != epoch[e.node] {
			continue // scheduled before a crash: the node never took it
		}

		v := int(e.node)
		t := stepIndex[v] + 1
		q := states[v]
		emit := nfsm.NoLetter
		if isByz(v) {
			// Byzantine node: never runs δ (its state stays put), emits
			// whatever its behavior dictates; the step is still counted
			// and its traffic rides the channel like any other.
			emit = sc.Byzantine[byz[v]].Emit(t, p.nl)
		} else {
			moves := rc.movesFor(v, q, ds)
			if len(moves) == 0 {
				return nil, fmt.Errorf("engine: δ empty at node %d state %d step %d", v, q, t)
			}
			mv := nfsm.PickMove(cfg.Seed, v, t, moves)
			if p.isOutput(mv.Next) != p.isOutput(q) {
				if p.isOutput(mv.Next) {
					outputs++
				} else {
					outputs--
				}
			}
			states[v] = mv.Next
			emit = mv.Emit
		}
		stepIndex[v] = t
		lastStepAt[v] = e.time
		res.Steps++
		if stepsSince[v] < 2 {
			stepsSince[v]++
			if stepsSince[v] == 2 && lagging > 0 {
				lagging--
			}
		}
		if cfg.Observer != nil {
			cfg.Observer(e.time, v, t, states[v])
		}

		if emit != nfsm.NoLetter && vs != nil {
			// Voted tier: honest emissions burst K copies per edge and
			// re-pulses are gated by the per-edge backoff; a Byzantine
			// node's traffic is its own problem — one copy, never gated,
			// never classified as a re-pulse (its receivers' votes and
			// stall counters do the tolerating).
			isRP := !isByz(v) && vs.isRePulse != nil && vs.isRePulse(q)
			if isRP {
				vs.rePulses++
			}
			K := 1
			if !isByz(v) {
				K = int(vs.k)
			}
			sent := false
			for k := cur.NbrOff[v]; k < cur.NbrOff[v+1]; k++ {
				u := int(cur.NbrDat[k])
				if isRP {
					send, evictNow := vs.fireEdge(k)
					if evictNow {
						rc.evictPort(v, k)
						res.EvictedEdges = append(res.EvictedEdges, [2]int{v, u})
					}
					if !send {
						continue
					}
				}
				d, err := useParam(adv.Delay(v, t, u), "delay", v, t)
				if err != nil {
					return nil, err
				}
				sent = true
				for c := 0; c < K; c++ {
					if model == nil {
						at := e.time + d
						if at < lastDelivery[k] {
							at = lastDelivery[k] // FIFO per directed edge
						}
						lastDelivery[k] = at
						push(qevent{time: at, node: int32(u), aux: int32(v), letter: int32(emit)})
						continue
					}
					chBuf = channel.ExpandAt(model, v, t, u, c, emit, p.nl, chBuf, &chStats)
					for _, f := range chBuf {
						at := e.time + d + f.Extra
						if reorders {
							if at < lastDelivery[k] {
								res.Reordered++ // an overtake on this edge
							} else {
								lastDelivery[k] = at
							}
						} else {
							if at < lastDelivery[k] {
								at = lastDelivery[k] // FIFO per directed edge
							}
							lastDelivery[k] = at
						}
						push(qevent{time: at, node: int32(u), aux: int32(v), letter: int32(f.Letter), corrupt: f.Corrupt})
					}
				}
			}
			if sent {
				res.Transmissions++
			}
		} else if emit != nfsm.NoLetter {
			res.Transmissions++
			for k := cur.NbrOff[v]; k < cur.NbrOff[v+1]; k++ {
				u := int(cur.NbrDat[k])
				d, err := useParam(adv.Delay(v, t, u), "delay", v, t)
				if err != nil {
					return nil, err
				}
				if model == nil {
					at := e.time + d
					if at < lastDelivery[k] {
						at = lastDelivery[k] // FIFO per directed edge
					}
					lastDelivery[k] = at
					push(qevent{time: at, node: int32(u), aux: int32(v), letter: int32(emit)})
					continue
				}
				chBuf = channel.Expand(model, v, t, u, emit, p.nl, chBuf, &chStats)
				for _, f := range chBuf {
					at := e.time + d + f.Extra
					if reorders {
						if at < lastDelivery[k] {
							res.Reordered++ // an overtake on this edge
						} else {
							lastDelivery[k] = at
						}
					} else {
						if at < lastDelivery[k] {
							at = lastDelivery[k] // FIFO per directed edge
						}
						lastDelivery[k] = at
					}
					push(qevent{time: at, node: int32(u), aux: int32(v), letter: int32(f.Letter)})
				}
			}
		}

		if nextBatch == len(sc.Batches) && outputs == target() &&
			(lagging == 0 || len(res.PerturbedAt) == 0) {
			res.Time = e.time
			res.TimeUnits = timeUnits(e.time)
			if len(res.PerturbedAt) > 0 {
				res.RecoveryTime = e.time - lastPerturb
				res.RecoveryTimeUnits = timeUnits(res.RecoveryTime)
			}
			res.Dropped, res.Duplicated, res.Delayed, res.Corrupted = chStats.Dropped, chStats.Duplicated, chStats.Delayed, chStats.Corrupted
			res.Outvoted = chStats.Outvoted
			if vs != nil {
				vs.fill(res)
			}
			return res, nil
		}
		if res.Steps >= maxSteps {
			return nil, fmt.Errorf("%w: %s after %d steps", ErrNoConvergence, machineName(p.m), res.Steps)
		}
		if err := scheduleStep(v, e.time); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w: event queue drained", ErrNoConvergence)
}
