package engine_test

// Executor-level tests for the voted synchronizer tier (αβv): the
// ladder/reference differential wall over every channel model, the
// k=1 degeneracy to the αβ hybrid, time-unit preservation on reliable
// links, Byzantine-silence eviction, the adaptive-backoff saving, and
// the topological-mutation rejection. The decoder's receipt-level
// contract is pinned in voted_internal_test.go.

import (
	"fmt"
	"strings"
	"testing"

	"stoneage/internal/channel"
	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/mis"
	"stoneage/internal/nfsm"
	"stoneage/internal/scenario"
	"stoneage/internal/ssmis"
	"stoneage/internal/synchro"
	"stoneage/internal/xrand"
)

// TestDifferentialAsyncVoted extends the channel differential wall to
// the voted tier: the ladder and the reference must stay bit-identical
// on every model, adversary, vote threshold, and under Byzantine
// nodes — including the voted counters and the evicted-edge list.
func TestDifferentialAsyncVoted(t *testing.T) {
	votedMIS, err := synchro.CompileRoundVoted(mis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	votedSS, err := synchro.CompileRoundVoted(ssmis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		m    *synchro.Compiled
		g    *graph.Graph
	}{
		{"voted-ssmis/gnp", votedSS, graph.GnpConnected(24, 0.2, xrand.New(34))},
		{"voted-mis/cycle", votedMIS, graph.Cycle(12)},
	}
	const maxSteps = 1 << 17
	for _, tc := range cases {
		for mi, model := range channelModels() {
			for _, advName := range []string{"uniform", "skew"} {
				for _, k := range []int{1, 2, 3} {
					name := fmt.Sprintf("%s/model=%s/%s/k=%d", tc.name, model, advName, k)
					t.Run(name, func(t *testing.T) {
						compareAsyncVoted(t, tc.m, tc.g, func() engine.AsyncConfig {
							return engine.AsyncConfig{
								Seed:      uint64(60 + mi),
								Adversary: engine.NamedAdversaries(uint64(70 + mi))[advName],
								MaxSteps:  maxSteps,
								Channel:   model,
								Voted:     &engine.VotedConfig{K: k, RePulseSource: tc.m.RePulseSource},
							}
						})
					})
				}
			}
		}
		t.Run(tc.name+"/byzantine", func(t *testing.T) {
			compareAsyncVoted(t, tc.m, tc.g, func() engine.AsyncConfig {
				return engine.AsyncConfig{
					Seed:      80,
					Adversary: engine.NamedAdversaries(81)["uniform"],
					MaxSteps:  maxSteps,
					Scenario:  byzScenario(),
					Channel:   channel.Corrupt{Rate: 0.1, Seed: 82},
					Voted:     &engine.VotedConfig{K: 2, RePulseSource: tc.m.RePulseSource},
				}
			})
		})
		t.Run(tc.name+"/crash-restart", func(t *testing.T) {
			// Liveness-only mutations (crash, restart) are supported
			// under the voted tier; the reboot path resets the decoder
			// slots identically in both executors.
			sc := &scenario.Scenario{
				Name:  "crash",
				Reset: scenario.ResetNone,
				Batches: []scenario.Batch{
					{At: 4, Muts: []graph.Mutation{{Kind: graph.MutCrashNode, U: 3}}},
					{At: 9, Muts: []graph.Mutation{{Kind: graph.MutRestartNode, U: 3}}},
				},
			}
			compareAsyncVoted(t, tc.m, tc.g, func() engine.AsyncConfig {
				return engine.AsyncConfig{
					Seed:      83,
					Adversary: engine.NamedAdversaries(84)["uniform"],
					MaxSteps:  maxSteps,
					Scenario:  sc,
					Channel:   channel.Drop{Rate: 0.2, Seed: 85},
					Voted:     &engine.VotedConfig{K: 2, RePulseSource: tc.m.RePulseSource},
				}
			})
		})
	}
}

// compareAsyncVoted is compareAsync plus the voted-tier surface: the
// vote/re-pulse counters and the evicted-edge list must match between
// ladder and reference too.
func compareAsyncVoted(t *testing.T, m nfsm.Machine, g *graph.Graph, cfg func() engine.AsyncConfig) {
	t.Helper()
	compareAsync(t, m, g, cfg)
	ref, refErr := engine.RunAsyncRef(m, g, cfg())
	got, gotErr := engine.RunAsync(m, g, cfg())
	if refErr != nil || gotErr != nil {
		return // compareAsync already checked error equality
	}
	if got.Outvoted != ref.Outvoted || got.VotedRejections != ref.VotedRejections ||
		got.RePulses != ref.RePulses || got.RePulseSends != ref.RePulseSends {
		t.Errorf("voted counters (%d,%d,%d,%d), reference (%d,%d,%d,%d)",
			got.Outvoted, got.VotedRejections, got.RePulses, got.RePulseSends,
			ref.Outvoted, ref.VotedRejections, ref.RePulses, ref.RePulseSends)
	}
	if len(got.EvictedEdges) != len(ref.EvictedEdges) {
		t.Fatalf("%d evicted edges, reference %d", len(got.EvictedEdges), len(ref.EvictedEdges))
	}
	for i := range got.EvictedEdges {
		if got.EvictedEdges[i] != ref.EvictedEdges[i] {
			t.Fatalf("evicted edge %d = %v, reference %v", i, got.EvictedEdges[i], ref.EvictedEdges[i])
		}
	}
}

// TestVotedK1DegeneratesToTolerant pins the degeneracy claim end to
// end: with k=1 (single-copy bursts, window-1 votes), backoff disabled
// and eviction out of reach, a voted run is bit-identical to the αβ
// hybrid on the same seed — Time, Steps, Transmissions, Lost, channel
// counters and final states — under reliable and pathological links.
func TestVotedK1DegeneratesToTolerant(t *testing.T) {
	tolerant, err := synchro.CompileRoundTolerant(ssmis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	voted, err := synchro.CompileRoundVoted(ssmis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GnpConnected(24, 0.2, xrand.New(34))
	models := append([]channel.Model{nil}, channelModels()...)
	for mi, model := range models {
		name := "model=none"
		if model != nil {
			name = fmt.Sprintf("model=%s", model)
		}
		t.Run(name, func(t *testing.T) {
			mk := func() engine.AsyncConfig {
				return engine.AsyncConfig{
					Seed:      uint64(90 + mi),
					Adversary: engine.NamedAdversaries(uint64(95 + mi))["uniform"],
					MaxSteps:  1 << 17,
					Channel:   model,
				}
			}
			want, wantErr := engine.RunAsync(tolerant, g, mk())
			cfg := mk()
			cfg.Voted = &engine.VotedConfig{
				K: 1, BackoffCap: 1, EvictAfter: 1 << 30,
				RePulseSource: voted.RePulseSource,
			}
			got, gotErr := engine.RunAsync(voted, g, cfg)
			if wantErr != nil || gotErr != nil {
				if wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
					t.Fatalf("error mismatch:\ntolerant: %v\nvoted:    %v", wantErr, gotErr)
				}
				return
			}
			if got.Time != want.Time || got.Steps != want.Steps ||
				got.Transmissions != want.Transmissions || got.Lost != want.Lost {
				t.Fatalf("(Time, Steps, Tx, Lost) = (%v, %d, %d, %d), tolerant (%v, %d, %d, %d)",
					got.Time, got.Steps, got.Transmissions, got.Lost,
					want.Time, want.Steps, want.Transmissions, want.Lost)
			}
			if got.Dropped != want.Dropped || got.Duplicated != want.Duplicated ||
				got.Delayed != want.Delayed || got.Reordered != want.Reordered ||
				got.Corrupted != want.Corrupted {
				t.Fatalf("channel counters diverge from tolerant")
			}
			// Compare decoded protocol states, not raw compiled ids:
			// the two Compiled instances intern states lazily in
			// encounter order, so their numberings are private.
			wantDec := tolerant.DecodeStates(want.States)
			gotDec := voted.DecodeStates(got.States)
			for v := range wantDec {
				if gotDec[v] != wantDec[v] {
					t.Fatalf("decoded state of node %d = %d, tolerant %d", v, gotDec[v], wantDec[v])
				}
			}
			if len(got.EvictedEdges) != 0 {
				t.Fatalf("k=1 run evicted %d edges", len(got.EvictedEdges))
			}
		})
	}
}

// TestVotedTimeUnitsMatchTolerantReliable pins the burst-send design
// point: on reliable links the voted tier's K-copy bursts land
// together, so the K-th vote commits at the instant the αβ hybrid's
// single copy would — the run's time-unit measure is identical, at the
// default k=2 and above.
func TestVotedTimeUnitsMatchTolerantReliable(t *testing.T) {
	for _, proto := range []string{"mis", "ssmis"} {
		var tolerant, voted *synchro.Compiled
		var err error
		switch proto {
		case "mis":
			tolerant, err = synchro.CompileRoundTolerant(mis.Protocol())
		case "ssmis":
			tolerant, err = synchro.CompileRoundTolerant(ssmis.Protocol())
		}
		if err != nil {
			t.Fatal(err)
		}
		switch proto {
		case "mis":
			voted, err = synchro.CompileRoundVoted(mis.Protocol())
		case "ssmis":
			voted, err = synchro.CompileRoundVoted(ssmis.Protocol())
		}
		if err != nil {
			t.Fatal(err)
		}
		g := graph.GnpConnected(32, 4.0/32, xrand.New(44))
		for _, advName := range []string{"uniform", "skew", "drift"} {
			for _, k := range []int{2, 3} {
				t.Run(fmt.Sprintf("%s/%s/k=%d", proto, advName, k), func(t *testing.T) {
					mk := func() engine.AsyncConfig {
						return engine.AsyncConfig{
							Seed:      7,
							Adversary: engine.NamedAdversaries(8)[advName],
							MaxSteps:  1 << 22,
						}
					}
					want, err := engine.RunAsync(tolerant, g, mk())
					if err != nil {
						t.Fatal(err)
					}
					cfg := mk()
					cfg.Voted = &engine.VotedConfig{K: k, RePulseSource: voted.RePulseSource}
					got, err := engine.RunAsync(voted, g, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if got.TimeUnits != want.TimeUnits {
						t.Errorf("TimeUnits = %v, tolerant %v", got.TimeUnits, want.TimeUnits)
					}
					if len(got.EvictedEdges) != 0 {
						t.Errorf("evicted %d edges on reliable links", len(got.EvictedEdges))
					}
					// Compiled ids are interned lazily per machine; the
					// comparable surface is the decoded protocol state.
					wantDec := tolerant.DecodeStates(want.States)
					gotDec := voted.DecodeStates(got.States)
					for v := range wantDec {
						if gotDec[v] != wantDec[v] {
							t.Fatalf("decoded state of node %d = %d, tolerant %d", v, gotDec[v], wantDec[v])
						}
					}
				})
			}
		}
	}
}

// TestVotedByzSilentEvictsAndConverges is the headline tolerance: a
// Byzantine-silent node deadlocks the αβ hybrid's pausing feature
// forever, while the voted tier evicts exactly the edges into the
// silent node and the honest subgraph converges.
func TestVotedByzSilentEvictsAndConverges(t *testing.T) {
	voted, err := synchro.CompileRoundVoted(mis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	tolerant, err := synchro.CompileRoundTolerant(mis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GnpConnected(24, 0.25, xrand.New(50))
	sc := func() *scenario.Scenario {
		return &scenario.Scenario{
			Reset:     scenario.ResetNone,
			Byzantine: []channel.ByzNode{channel.Silent(0)},
		}
	}
	mk := func() engine.AsyncConfig {
		return engine.AsyncConfig{
			Seed:      21,
			Adversary: engine.NamedAdversaries(22)["uniform"],
			MaxSteps:  1 << 21,
			Scenario:  sc(),
		}
	}
	if _, err := engine.RunAsync(tolerant, g, mk()); err == nil {
		t.Fatal("tolerant run converged against a silent node; the voted tier's claim is vacuous")
	}
	cfg := mk()
	cfg.Voted = &engine.VotedConfig{K: 2, RePulseSource: voted.RePulseSource}
	res, err := engine.RunAsync(voted, g, cfg)
	if err != nil {
		t.Fatalf("voted run did not converge: %v", err)
	}
	if len(res.EvictedEdges) == 0 {
		t.Fatal("no edges evicted around a silent node")
	}
	deg := g.Degree(0)
	if len(res.EvictedEdges) != deg {
		t.Errorf("evicted %d edges, want the silent node's degree %d", len(res.EvictedEdges), deg)
	}
	for _, e := range res.EvictedEdges {
		if e[1] != 0 {
			t.Errorf("evicted edge %v does not point into the silent node", e)
		}
	}
}

// TestVotedAdaptiveBackoffReducesSends pins the adaptive timeout's
// saving: under a 2× step skew the same run transmits fewer re-pulses
// with backoff enabled (cap 8) than with it disabled (cap 1), while
// both decode the identical final states.
func TestVotedAdaptiveBackoffReducesSends(t *testing.T) {
	voted, err := synchro.CompileRoundVoted(mis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GnpConnected(32, 4.0/32, xrand.New(60))
	run := func(cap int) *engine.AsyncResult {
		res, err := engine.RunAsync(voted, g, engine.AsyncConfig{
			Seed:      31,
			Adversary: engine.Skew{Seed: 32, Ratio: 0.5},
			MaxSteps:  1 << 22,
			Voted:     &engine.VotedConfig{K: 2, BackoffCap: cap, RePulseSource: voted.RePulseSource},
		})
		if err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		return res
	}
	with := run(0)    // default cap 8
	without := run(1) // every firing transmits
	if with.RePulses == 0 || without.RePulses == 0 {
		t.Fatalf("no re-pulses fired (with=%d, without=%d); the skew case is vacuous",
			with.RePulses, without.RePulses)
	}
	if with.RePulseSends >= without.RePulseSends {
		t.Errorf("backoff did not reduce re-pulse sends: %d with, %d without",
			with.RePulseSends, without.RePulseSends)
	}
	if len(with.EvictedEdges) != 0 || len(without.EvictedEdges) != 0 {
		t.Errorf("2× skew evicted edges (with=%d, without=%d)",
			len(with.EvictedEdges), len(without.EvictedEdges))
	}
}

// TestVotedRejectsTopologicalMutations pins the declared limitation:
// the eviction sentinel permanently clears a port slot, which a
// topology rebind would silently resurrect, so both executors must
// refuse edge/node mutations up front with the same error.
func TestVotedRejectsTopologicalMutations(t *testing.T) {
	voted, err := synchro.CompileRoundVoted(ssmis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Cycle(8)
	sc := &scenario.Scenario{
		Name:  "churn",
		Reset: scenario.ResetNone,
		Batches: []scenario.Batch{
			{At: 2, Muts: []graph.Mutation{{Kind: graph.MutRemoveEdge, U: 0, V: 1}}},
		},
	}
	mk := func() engine.AsyncConfig {
		return engine.AsyncConfig{
			Seed:      41,
			Adversary: engine.NamedAdversaries(42)["uniform"],
			MaxSteps:  1 << 16,
			Scenario:  sc,
			Voted:     &engine.VotedConfig{K: 2, RePulseSource: voted.RePulseSource},
		}
	}
	_, ladderErr := engine.RunAsync(voted, g, mk())
	_, refErr := engine.RunAsyncRef(voted, g, mk())
	if ladderErr == nil || refErr == nil {
		t.Fatalf("topological mutation accepted: ladder=%v ref=%v", ladderErr, refErr)
	}
	if ladderErr.Error() != refErr.Error() {
		t.Fatalf("error mismatch:\nladder: %v\nref:    %v", ladderErr, refErr)
	}
	if !strings.Contains(ladderErr.Error(), "topological mutations") {
		t.Fatalf("unexpected error: %v", ladderErr)
	}
}
