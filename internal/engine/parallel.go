package engine

import (
	"fmt"
	"runtime"
	"sync"

	"stoneage/internal/nfsm"
)

// minShard is the smallest per-worker node range the default worker
// count will create: below it the barrier overhead of a round outweighs
// the sharded compute. An explicit SyncConfig.Workers bypasses the
// heuristic.
const minShard = 256

// shardResult carries one worker's per-phase aggregates back to the
// coordinator.
type shardResult struct {
	tx       int64
	outDelta int
	err      error
}

// RunSync executes the compiled program in the locally synchronous
// environment. Rounds are two-phase: a compute phase applies δ to every
// node against the port contents frozen at the end of the previous round,
// and a deliver phase makes all transmissions visible for the next round.
// Both phases shard the node range across workers with a barrier in
// between; because every per-node computation reads only that node's own
// state and ports and the deliver phase gathers from the frozen emit
// buffer, the result is bit-identical for every worker count (see
// DESIGN.md for the argument, and TestDifferentialSyncEngines for the
// enforcement).
func (p *Program) RunSync(cfg SyncConfig) (*SyncResult, error) {
	return p.RunSyncReusing(cfg, nil)
}

// RunSyncReusing executes the compiled program synchronously, reusing
// the scratch arena's counters, buffers and dynamic-machine memos
// across runs (scr may be nil for a private arena). The worker pool is
// still per-run; tight trial loops run with Workers == 1 per worker
// goroutine and parallelize across trials instead, which is what the
// campaign runner does.
func (p *Program) RunSyncReusing(cfg SyncConfig, scr *Scratch) (*SyncResult, error) {
	if !cfg.Scenario.Empty() || cfg.Channel != nil {
		if cfg.Backend == BackendPacked {
			return nil, fmt.Errorf("engine: the packed backend supports neither scenarios nor channel models")
		}
		if cfg.Backend != "" && cfg.Backend != BackendFlat {
			return nil, fmt.Errorf("engine: unknown sync backend %q (want %q or %q)", cfg.Backend, BackendFlat, BackendPacked)
		}
		return p.runSyncScenario(cfg, scr)
	}
	switch cfg.Backend {
	case BackendPacked:
		return p.runSyncPacked(cfg, scr)
	case BackendFlat:
		// forced flat
	case "":
		if p.csr.N() >= packedAutoThreshold && p.PackedEligible() {
			return p.runSyncPacked(cfg, scr)
		}
	default:
		return nil, fmt.Errorf("engine: unknown sync backend %q (want %q or %q)", cfg.Backend, BackendFlat, BackendPacked)
	}
	if scr == nil {
		scr = NewScratch()
	}
	n := p.csr.N()
	states, err := initialStates(p.m, n, cfg.Init)
	if err != nil {
		return nil, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1 << 20
	}

	scr.bind(p.MachineCode)
	rc := &scr.rc
	rc.reset(p, p.csr)
	scr.ds.init(p.MachineCode)
	if cap(scr.emits) < n {
		scr.emits = make([]nfsm.Letter, n)
	}
	emits := scr.emits[:n]

	res := &SyncResult{States: states}
	outputs := countOutputs(p.m, states)
	if outputs == n {
		return res, nil
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if max := n / minShard; workers > max {
			workers = max
		}
	}
	if !p.parallel || workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	exec := &syncExec{p: p, rc: rc, states: states, emits: emits, seed: cfg.Seed}
	if workers > 1 {
		stop := exec.startWorkers(workers)
		defer stop()
	} else {
		exec.dss = []*dynScratch{&scr.ds}
		exec.emitters = [][]int32{scr.emitters[:0]}
		defer func() { scr.emitters = exec.emitters[0][:0] }()
	}

	for round := 1; round <= maxRounds; round++ {
		tx, outDelta, err := exec.computePhase(round)
		if err != nil {
			return nil, err
		}
		res.Transmissions += tx
		outputs += outDelta
		exec.deliverPhase()
		if cfg.Observer != nil {
			cfg.Observer(round, states)
		}
		if outputs == n {
			res.Rounds = round
			return res, nil
		}
	}
	return nil, fmt.Errorf("%w: %s after %d rounds", ErrNoConvergence, machineName(p.m), maxRounds)
}

// syncExec owns the per-run buffers and the optional worker pool of a
// synchronous execution.
type syncExec struct {
	p      *Program
	rc     *runCounts
	states []nfsm.State
	emits  []nfsm.Letter
	seed   uint64
	dss    []*dynScratch // per-worker dynamic-path scratch (counts + δ-row memos)
	// emitters[w] lists the nodes of worker w's shard that transmitted
	// this round; the deliver phase walks only their edges instead of
	// rescanning every port of the graph (most rounds of a converging
	// protocol are mostly silent).
	emitters [][]int32

	// Worker pool state (nil/empty when sequential).
	cmds    []chan int // per-worker: round r > 0 computes, -1 delivers
	wg      sync.WaitGroup
	lo, hi  []int
	results []shardResult
	// buckets[w][s] collects the port writes worker w's emitters address
	// to shard s (filled at the end of w's compute phase, applied by
	// worker s's deliver phase). Bucketing keeps the deliver phase at
	// O(emitted edges) total instead of every worker filtering the full
	// emitter edge set. shardOf[u] is the shard owning node u.
	buckets [][][]portWrite
	shardOf []int32
}

// portWrite is one routed transmission: set the port at CSR slot `slot`
// of node `u` to letter `l`.
type portWrite struct {
	u, slot int32
	l       int32
}

// startWorkers launches w persistent goroutines, each owning the node
// range [lo[i], hi[i]). The pool amortizes goroutine startup across all
// rounds of the run; stop() tears it down.
func (e *syncExec) startWorkers(w int) (stop func()) {
	n := len(e.states)
	e.cmds = make([]chan int, w)
	e.lo = make([]int, w)
	e.hi = make([]int, w)
	e.results = make([]shardResult, w)
	e.dss = make([]*dynScratch, w)
	e.emitters = make([][]int32, w)
	e.buckets = make([][][]portWrite, w)
	e.shardOf = make([]int32, n)
	for i := 0; i < w; i++ {
		e.lo[i] = i * n / w
		e.hi[i] = (i + 1) * n / w
		for v := e.lo[i]; v < e.hi[i]; v++ {
			e.shardOf[v] = int32(i)
		}
		e.dss[i] = &dynScratch{}
		e.dss[i].init(e.p.MachineCode)
		e.buckets[i] = make([][]portWrite, w)
		e.cmds[i] = make(chan int, 1)
		go func(i int) {
			for c := range e.cmds[i] {
				if c > 0 {
					tx, d, err := e.compute(e.lo[i], e.hi[i], c, i)
					e.results[i] = shardResult{tx: tx, outDelta: d, err: err}
				} else {
					e.deliverBuckets(i)
				}
				e.wg.Done()
			}
		}(i)
	}
	return func() {
		for _, c := range e.cmds {
			close(c)
		}
	}
}

func (e *syncExec) broadcast(code int) {
	e.wg.Add(len(e.cmds))
	for _, c := range e.cmds {
		c <- code
	}
	e.wg.Wait()
}

func (e *syncExec) computePhase(round int) (int64, int, error) {
	if e.cmds == nil {
		return e.compute(0, len(e.states), round, 0)
	}
	e.broadcast(round)
	var tx int64
	var outDelta int
	for i := range e.results {
		if err := e.results[i].err; err != nil {
			return 0, 0, err
		}
		tx += e.results[i].tx
		outDelta += e.results[i].outDelta
	}
	return tx, outDelta, nil
}

func (e *syncExec) deliverPhase() {
	if e.cmds == nil {
		e.deliver()
		return
	}
	e.broadcast(-1)
}

// compute applies δ to every node of [lo, hi): each node observes its
// clamped counts (frozen since the last deliver phase), draws its move
// from the node-indexed coin, and buffers its transmission. Writes touch
// only states[v], emits[v] and the worker's own emitter list, so shards
// never conflict. The δ lookup is specialized per program kind so the
// flat paths run without a function call per node.
func (e *syncExec) compute(lo, hi, round, worker int) (tx int64, outDelta int, err error) {
	p := e.p
	states, emits, seed := e.states, e.emits, e.seed
	mask := p.outMask
	emitters := e.emitters[worker][:0]
	defer func() { e.emitters[worker] = emitters }()

	switch p.kind {
	case progFlatMulti:
		delta, pdim, idx := p.delta, p.pdim, e.rc.idx
		for v := lo; v < hi; v++ {
			q := states[v]
			moves := delta[int(q)*pdim+int(idx[v])]
			if len(moves) == 0 {
				return tx, outDelta, deltaEmptyErr(v, q, round)
			}
			mv := nfsm.PickMove(seed, v, round, moves)
			if mv.Next != q {
				outDelta += int(mask[mv.Next>>6]>>(uint(mv.Next)&63)&1) - int(mask[q>>6]>>(uint(q)&63)&1)
				states[v] = mv.Next
			}
			if mv.Emit != nfsm.NoLetter {
				emits[v] = mv.Emit
				emitters = append(emitters, int32(v))
				tx++
			}
		}
	case progFlatSingle:
		delta, query, raw := p.delta, p.query, e.rc.raw
		nl, b := p.nl, int32(p.b)
		w := p.b + 1
		for v := lo; v < hi; v++ {
			q := states[v]
			c := raw[v*nl+int(query[q])]
			if c > b {
				c = b
			}
			moves := delta[int(q)*w+int(c)]
			if len(moves) == 0 {
				return tx, outDelta, deltaEmptyErr(v, q, round)
			}
			mv := nfsm.PickMove(seed, v, round, moves)
			if mv.Next != q {
				outDelta += int(mask[mv.Next>>6]>>(uint(mv.Next)&63)&1) - int(mask[q>>6]>>(uint(q)&63)&1)
				states[v] = mv.Next
			}
			if mv.Emit != nfsm.NoLetter {
				emits[v] = mv.Emit
				emitters = append(emitters, int32(v))
				tx++
			}
		}
	default:
		ds := e.dss[worker]
		for v := lo; v < hi; v++ {
			q := states[v]
			moves := e.rc.movesFor(v, q, ds)
			if len(moves) == 0 {
				return tx, outDelta, deltaEmptyErr(v, q, round)
			}
			mv := nfsm.PickMove(seed, v, round, moves)
			if p.isOutputDS(mv.Next, ds) != p.isOutputDS(q, ds) {
				if p.isOutputDS(mv.Next, ds) {
					outDelta++
				} else {
					outDelta--
				}
			}
			states[v] = mv.Next
			if mv.Emit != nfsm.NoLetter {
				e.emits[v] = mv.Emit
				emitters = append(emitters, int32(v))
				tx++
			}
		}
	}
	if e.cmds != nil {
		e.route(worker, emitters)
	}
	return tx, outDelta, nil
}

// route buckets the worker's emitted edges by destination shard, still
// inside the compute phase: worker w walks only its own emitters' edges,
// and the subsequent deliver phase applies only per-shard buckets, so
// the total deliver work stays O(emitted edges) at every worker count.
func (e *syncExec) route(worker int, emitters []int32) {
	csr := e.p.csr
	off, nbr, rev := csr.NbrOff, csr.NbrDat, csr.RevPort
	bk := e.buckets[worker]
	for s := range bk {
		bk[s] = bk[s][:0]
	}
	for _, v := range emitters {
		l := int32(e.emits[v])
		for k := off[v]; k < off[v+1]; k++ {
			u := nbr[k]
			s := e.shardOf[u]
			bk[s] = append(bk[s], portWrite{u: u, slot: off[u] + rev[k], l: l})
		}
	}
}

func deltaEmptyErr(v int, q nfsm.State, round int) error {
	return fmt.Errorf("engine: δ empty at node %d state %d round %d", v, q, round)
}

// deliver is the sequential deliver phase: it walks every emitter's
// edges through the flattened reverse-port table and applies the
// writes. The body is runCounts.setPort unrolled with its indirections
// hoisted — this is the hottest loop of the engine.
func (e *syncExec) deliver() {
	csr := e.p.csr
	rc := e.rc
	off, nbr, rev := csr.NbrOff, csr.NbrDat, csr.RevPort
	portDat, raw, idx, pow := rc.portDat, rc.raw, rc.idx, e.p.pow
	nl, b := e.p.nl, int32(e.p.b)
	for _, lst := range e.emitters {
		for _, v := range lst {
			l := e.emits[v]
			for k := off[v]; k < off[v+1]; k++ {
				u := nbr[k]
				dst := off[u] + rev[k]
				old := portDat[dst]
				if old == l {
					continue
				}
				portDat[dst] = l
				base := int(u) * nl
				io, in := base+int(old), base+int(l)
				raw[io]--
				raw[in]++
				if idx != nil {
					if raw[io] < b {
						idx[u] -= pow[old]
					}
					if raw[in] <= b {
						idx[u] += pow[l]
					}
				}
			}
		}
	}
}

// deliverBuckets is the sharded deliver phase: worker `shard` applies
// exactly the port writes routed to it during the compute phase. Each
// destination port is written by exactly one worker (ports are owned by
// their destination node), every port is written at most once per round,
// and the count updates commute, so the post-round state is identical
// for every worker count.
func (e *syncExec) deliverBuckets(shard int) {
	rc := e.rc
	portDat, raw, idx, pow := rc.portDat, rc.raw, rc.idx, e.p.pow
	nl, b := e.p.nl, int32(e.p.b)
	for w := range e.buckets {
		for _, d := range e.buckets[w][shard] {
			l := nfsm.Letter(d.l)
			old := portDat[d.slot]
			if old == l {
				continue
			}
			portDat[d.slot] = l
			base := int(d.u) * nl
			io, in := base+int(old), base+int(l)
			raw[io]--
			raw[in]++
			if idx != nil {
				if raw[io] < b {
					idx[d.u] -= pow[old]
				}
				if raw[in] <= b {
					idx[d.u] += pow[l]
				}
			}
		}
	}
}
