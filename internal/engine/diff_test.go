package engine_test

// The differential determinism suite: the compiled executor (Compile →
// Program.RunSync, at every worker count) must be bit-identical to the
// reference engine RunSyncRef on every protocol kind the compiler
// distinguishes — flat single-query tables, fully tabulated multi-letter
// tables, and both dynamic fallbacks (pure RoundProtocol and the
// lazily-interning synchro machines). This is the observational
// equivalence that licenses the representation swap.

import (
	"fmt"
	"testing"

	"stoneage/internal/coloring"
	"stoneage/internal/degcolor"
	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/mis"
	"stoneage/internal/nfsm"
	"stoneage/internal/synchro"
	"stoneage/internal/xrand"
)

// diffCase is one (protocol, graph) cell of the matrix.
type diffCase struct {
	name string
	m    nfsm.Machine
	g    *graph.Graph
}

// flood is a literal single-query Protocol (progFlatSingle): sources
// flood a PING wave with a random two-way branch so several moves per
// row are exercised.
func flood() *nfsm.Protocol {
	stay := func(q nfsm.State) []nfsm.Move { return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}} }
	return &nfsm.Protocol{
		Name:        "flood",
		StateNames:  []string{"idle", "hot", "done"},
		LetterNames: []string{"ping", "quiet"},
		Input:       []nfsm.State{1},
		Output:      []bool{false, false, true},
		Initial:     1,
		B:           2,
		Query:       []nfsm.Letter{0, 0, 0},
		Delta: [][][]nfsm.Move{
			{stay(0), {{Next: 2, Emit: 0}, {Next: 0, Emit: nfsm.NoLetter}}, {{Next: 2, Emit: 0}}},
			{{{Next: 2, Emit: 0}}, {{Next: 2, Emit: 0}}, {{Next: 2, Emit: 0}}},
			{stay(2), stay(2), stay(2)},
		},
	}
}

func diffCases(t *testing.T) []diffCase {
	t.Helper()
	expanded, err := synchro.Expand(mis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	degProto, err := degcolor.Protocol(4)
	if err != nil {
		t.Fatal(err)
	}
	return []diffCase{
		{"mis/gnp", mis.Protocol(), graph.GnpConnected(600, 4.0/600, xrand.New(1))},
		{"mis/clique", mis.Protocol(), graph.Clique(24)},
		{"mis/cycle", mis.Protocol(), graph.Cycle(97)},
		{"coloring/tree", coloring.Protocol(), graph.RandomTree(300, xrand.New(2))},
		{"coloring/caterpillar", coloring.Protocol(), graph.Path(64)},
		{"degcolor/torus", degProto, graph.Torus(8, 8)},
		{"expanded-mis/gnp", expanded, graph.GnpConnected(48, 0.12, xrand.New(3))},
		{"flood/gnp", flood(), graph.GnpConnected(256, 6.0/256, xrand.New(4))},
		{"flood/star", flood(), graph.Star(33)},
	}
}

// TestDifferentialSyncEngines checks byte-identical States, Rounds and
// Transmissions between the reference engine and the compiled executor
// across the (protocol, graph, seed, workers) matrix.
func TestDifferentialSyncEngines(t *testing.T) {
	for _, tc := range diffCases(t) {
		for _, seed := range []uint64{1, 42} {
			ref, err := engine.RunSyncRef(tc.m, tc.g, engine.SyncConfig{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d: reference engine: %v", tc.name, seed, err)
			}
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("%s/seed=%d/workers=%d", tc.name, seed, workers)
				t.Run(name, func(t *testing.T) {
					got, err := engine.Compile(tc.m, tc.g).RunSync(engine.SyncConfig{Seed: seed, Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					if got.Rounds != ref.Rounds {
						t.Errorf("Rounds = %d, reference %d", got.Rounds, ref.Rounds)
					}
					if got.Transmissions != ref.Transmissions {
						t.Errorf("Transmissions = %d, reference %d", got.Transmissions, ref.Transmissions)
					}
					for v := range ref.States {
						if got.States[v] != ref.States[v] {
							t.Fatalf("state of node %d = %d, reference %d", v, got.States[v], ref.States[v])
						}
					}
				})
			}
		}
	}
}

// TestWorkerCountInvariance runs the compiled executor at several worker
// counts (including counts that do not divide n) and demands identical
// results: the sharded two-phase barrier must not leak evaluation order
// into the execution.
func TestWorkerCountInvariance(t *testing.T) {
	g := graph.GnpConnected(1000, 5.0/1000, xrand.New(9))
	prog := engine.Compile(mis.Protocol(), g)
	base, err := prog.RunSync(engine.SyncConfig{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 16} {
		res, err := prog.RunSync(engine.SyncConfig{Seed: 7, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Rounds != base.Rounds || res.Transmissions != base.Transmissions {
			t.Fatalf("workers=%d: (rounds, tx) = (%d, %d), want (%d, %d)",
				workers, res.Rounds, res.Transmissions, base.Rounds, base.Transmissions)
		}
		for v := range base.States {
			if res.States[v] != base.States[v] {
				t.Fatalf("workers=%d: state of node %d diverged", workers, v)
			}
		}
	}
}

// TestDifferentialAsyncEngines checks byte-identical results between
// the reference asynchronous engine (the seed implementation, kept as
// RunAsyncRef) and the compiled executor across protocols, adversaries
// and seeds: Time, TimeUnits, Steps, Transmissions, Lost and States
// must all agree exactly.
func TestDifferentialAsyncEngines(t *testing.T) {
	expanded, err := synchro.Expand(mis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	compiledMIS, err := synchro.CompileRound(mis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	cases := []diffCase{
		{"flood/gnp", flood(), graph.GnpConnected(128, 5.0/128, xrand.New(21))},
		{"expanded-mis/gnp", expanded, graph.GnpConnected(32, 0.15, xrand.New(22))},
		{"compiled-mis/cycle", compiledMIS, graph.Cycle(16)},
	}
	for _, tc := range cases {
		for _, advName := range []string{"sync", "uniform", "skew", "drift"} {
			for _, seed := range []uint64{3, 19} {
				name := fmt.Sprintf("%s/%s/seed=%d", tc.name, advName, seed)
				t.Run(name, func(t *testing.T) {
					mkAdv := func() engine.Adversary { return engine.NamedAdversaries(seed + 100)[advName] }
					// Bound the budget so the slow (expanded × adversary)
					// cells stay fast; a budget miss must then be
					// reproduced verbatim by the compiled engine.
					const maxSteps = 1 << 20
					ref, refErr := engine.RunAsyncRef(tc.m, tc.g, engine.AsyncConfig{Seed: seed, Adversary: mkAdv(), MaxSteps: maxSteps})
					got, gotErr := engine.RunAsync(tc.m, tc.g, engine.AsyncConfig{Seed: seed, Adversary: mkAdv(), MaxSteps: maxSteps})
					if refErr != nil || gotErr != nil {
						if refErr == nil || gotErr == nil || refErr.Error() != gotErr.Error() {
							t.Fatalf("error mismatch:\nreference: %v\ncompiled:  %v", refErr, gotErr)
						}
						return
					}
					if got.Time != ref.Time || got.TimeUnits != ref.TimeUnits {
						t.Errorf("(Time, TimeUnits) = (%v, %v), reference (%v, %v)",
							got.Time, got.TimeUnits, ref.Time, ref.TimeUnits)
					}
					if got.Steps != ref.Steps || got.Transmissions != ref.Transmissions || got.Lost != ref.Lost {
						t.Errorf("(Steps, Tx, Lost) = (%d, %d, %d), reference (%d, %d, %d)",
							got.Steps, got.Transmissions, got.Lost, ref.Steps, ref.Transmissions, ref.Lost)
					}
					for v := range ref.States {
						if got.States[v] != ref.States[v] {
							t.Fatalf("state of node %d = %d, reference %d", v, got.States[v], ref.States[v])
						}
					}
				})
			}
		}
	}
}

// TestDifferentialObserverStream checks that the compiled executor calls
// the observer on exactly the same round boundaries with the same state
// vectors as the reference engine.
func TestDifferentialObserverStream(t *testing.T) {
	g := graph.GnpConnected(128, 5.0/128, xrand.New(11))
	record := func(run func(cfg engine.SyncConfig) error) []nfsm.State {
		var stream []nfsm.State
		err := run(engine.SyncConfig{Seed: 3, Observer: func(round int, states []nfsm.State) {
			stream = append(stream, states...)
		}})
		if err != nil {
			t.Fatal(err)
		}
		return stream
	}
	ref := record(func(cfg engine.SyncConfig) error {
		_, err := engine.RunSyncRef(mis.Protocol(), g, cfg)
		return err
	})
	for _, workers := range []int{1, 4} {
		workers := workers
		got := record(func(cfg engine.SyncConfig) error {
			cfg.Workers = workers
			_, err := engine.RunSync(mis.Protocol(), g, cfg)
			return err
		})
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: observer saw %d states, reference %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: observer stream diverged at offset %d", workers, i)
			}
		}
	}
}
