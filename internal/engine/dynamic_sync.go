package engine

import (
	"errors"
	"fmt"

	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/scenario"
)

// This file is the fast dynamic synchronous executor: the compiled
// engine's round loop extended with the scenario hook. Between rounds
// it applies mutation batches — carrying surviving node state and the
// letter of every surviving port across CSR re-binds (graph.RemapPorts
// keys per-edge state by the directed edge, not its slot), resetting
// perturbed nodes per the scenario's reset policy, and tracking node
// liveness — and on the way out it reports the recovery-time metric.
// The naive counterpart in dynamic_sync_ref.go implements the same
// semantics from scratch on the seed engine's representation; the
// differential and fuzz suites (dynamic_test.go, fuzz_test.go) pin the
// two to each other, which is what licenses trusting this one.

// errResetAuto rejects unresolved reset policies: the engines do not
// know protocol capabilities, so scenario.ResetAuto must be resolved by
// the protocol layer (or the caller) before a run starts.
var errResetAuto = errors.New("engine: scenario reset policy auto must be resolved before execution")

// prepScenario validates the scenario against the bound graph and
// rejects unresolved reset policies. Both engines of each environment
// run it first, so invalid scenarios fail identically everywhere.
func prepScenario(sc *scenario.Scenario, g *graph.Graph) error {
	if sc.Reset == scenario.ResetAuto {
		return errResetAuto
	}
	return sc.Validate(g)
}

// resetStateOf returns the state a rebooted node v resumes from: its
// per-node input when the run was configured with one, the machine's
// default input state otherwise.
func resetStateOf(m nfsm.Machine, init []nfsm.State, v int) nfsm.State {
	if init != nil {
		return init[v]
	}
	return m.InputState()
}

// runSyncScenario executes the compiled program with a dynamic-network
// scenario. The loop is sequential: trial-level parallelism (the
// campaign runner) is where dynamic sweeps get their concurrency; each
// worker's scratch arena is reused here exactly as on the static path
// (scr may be nil for a private one).
func (p *Program) runSyncScenario(cfg SyncConfig, scr *Scratch) (*SyncResult, error) {
	sc := cfg.Scenario
	if err := prepScenario(sc, p.g); err != nil {
		return nil, err
	}
	if scr == nil {
		scr = NewScratch()
	}
	g := p.g.Clone()
	n := g.N()
	states, err := initialStates(p.m, n, cfg.Init)
	if err != nil {
		return nil, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1 << 20
	}

	cur := p.csr
	scr.bind(p.MachineCode)
	rc := &scr.rc
	rc.reset(p, cur)
	ds := &scr.ds
	ds.init(p.MachineCode)
	live := scenario.NewLiveness(n, sc.Asleep)
	if cap(scr.emits) < n {
		scr.emits = make([]nfsm.Letter, n)
	}
	emits := scr.emits[:n]
	emitters := scr.emitters[:0]
	defer func() { scr.emitters = emitters[:0] }()

	res := &SyncResult{States: states, FinalGraph: g}
	outputs := 0
	for v := 0; v < n; v++ {
		if live.Awake(v) && p.isOutput(states[v]) {
			outputs++
		}
	}
	nextBatch := 0
	lastPerturb := 0
	// stable counts consecutive rounds ending in an awake output
	// configuration. After a perturbation, termination requires TWO such
	// rounds: a batch leaves fresh ports holding the initial letter for
	// one round, so a configuration can look terminal before the
	// perturbation's effects have propagated — one confirmation round
	// closes exactly that window (every awake node re-transmits and
	// every port is delivered real letters in between).
	stable := 0
	if nextBatch == len(sc.Batches) && outputs == live.NumAwake() {
		return res, nil
	}

	// applyBatch mutates graph and liveness, re-binds the layout on
	// topology change, and resets the policy's node set plus every
	// restarted/woken node.
	applyBatch := func(b scenario.Batch) error {
		topo := false
		var started []int
		for _, m := range b.Muts {
			st, err := live.Apply(m)
			if err != nil {
				return err
			}
			started = append(started, st...)
			if err := m.Apply(g); err != nil {
				return err
			}
			topo = topo || m.Topological()
		}
		if topo {
			next := g.CSR()
			rc.rebind(next, graph.RemapPorts(cur, next))
			cur = next
		}
		for _, v := range b.ResetSet(sc.Reset, g) {
			if live.Awake(v) {
				states[v] = resetStateOf(p.m, cfg.Init, v)
				rc.resetNode(v, cur)
			}
		}
		for _, v := range started {
			states[v] = resetStateOf(p.m, cfg.Init, v)
			rc.resetNode(v, cur)
		}
		outputs = 0
		for v := 0; v < n; v++ {
			if live.Awake(v) && p.isOutput(states[v]) {
				outputs++
			}
		}
		return nil
	}

	for round := 1; round <= maxRounds; round++ {
		for nextBatch < len(sc.Batches) && int(sc.Batches[nextBatch].At) < round {
			if err := applyBatch(sc.Batches[nextBatch]); err != nil {
				return nil, err
			}
			nextBatch++
			lastPerturb = round - 1
			res.PerturbedAt = append(res.PerturbedAt, round-1)
		}

		// Compute phase over the awake nodes against the frozen ports.
		emitters = emitters[:0]
		for v := 0; v < n; v++ {
			if !live.Awake(v) {
				continue
			}
			q := states[v]
			moves := rc.movesFor(v, q, ds)
			if len(moves) == 0 {
				return nil, deltaEmptyErr(v, q, round)
			}
			mv := nfsm.PickMove(cfg.Seed, v, round, moves)
			if p.isOutput(mv.Next) != p.isOutput(q) {
				if p.isOutput(mv.Next) {
					outputs++
				} else {
					outputs--
				}
			}
			states[v] = mv.Next
			if mv.Emit != nfsm.NoLetter {
				emits[v] = mv.Emit
				emitters = append(emitters, int32(v))
			}
		}

		// Deliver phase: ports of every neighbor are link-endpoint
		// memory and receive the letter regardless of the neighbor's
		// liveness (a reboot clears them anyway).
		for _, v := range emitters {
			l := emits[v]
			res.Transmissions++
			for k := cur.NbrOff[v]; k < cur.NbrOff[v+1]; k++ {
				rc.setPort(int(cur.NbrDat[k]), cur.NbrOff[cur.NbrDat[k]]+cur.RevPort[k], l)
			}
		}

		if cfg.Observer != nil {
			cfg.Observer(round, states)
		}
		if nextBatch == len(sc.Batches) && outputs == live.NumAwake() {
			stable++
		} else {
			stable = 0
		}
		if stable >= 2 || (stable >= 1 && len(res.PerturbedAt) == 0) {
			res.Rounds = round
			if len(res.PerturbedAt) > 0 {
				res.RecoveryRounds = round - lastPerturb
			}
			return res, nil
		}
	}
	return nil, fmt.Errorf("%w: %s after %d rounds", ErrNoConvergence, machineName(p.m), maxRounds)
}
