package engine

import (
	"errors"
	"fmt"
	"math"

	"stoneage/internal/channel"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/scenario"
)

// syncPend is a channel-delayed synchronous delivery: a reordering
// model's extra delay rounds up to whole rounds, and the letter lands
// in the deliver phase of round due (resolving the destination port
// against the topology of that round — a removed edge severs it).
type syncPend struct {
	due      int
	from, to int32
	letter   nfsm.Letter
}

// This file is the fast dynamic synchronous executor: the compiled
// engine's round loop extended with the scenario hook. Between rounds
// it applies mutation batches — carrying surviving node state and the
// letter of every surviving port across CSR re-binds (graph.RemapPorts
// keys per-edge state by the directed edge, not its slot), resetting
// perturbed nodes per the scenario's reset policy, and tracking node
// liveness — and on the way out it reports the recovery-time metric.
// The naive counterpart in dynamic_sync_ref.go implements the same
// semantics from scratch on the seed engine's representation; the
// differential and fuzz suites (dynamic_test.go, fuzz_test.go) pin the
// two to each other, which is what licenses trusting this one.

// errResetAuto rejects unresolved reset policies: the engines do not
// know protocol capabilities, so scenario.ResetAuto must be resolved by
// the protocol layer (or the caller) before a run starts.
var errResetAuto = errors.New("engine: scenario reset policy auto must be resolved before execution")

// prepScenario validates the scenario against the bound graph and
// rejects unresolved reset policies. Both engines of each environment
// run it first, so invalid scenarios fail identically everywhere.
func prepScenario(sc *scenario.Scenario, g *graph.Graph) error {
	if sc.Reset == scenario.ResetAuto {
		return errResetAuto
	}
	return sc.Validate(g)
}

// resetStateOf returns the state a rebooted node v resumes from: its
// per-node input when the run was configured with one, the machine's
// default input state otherwise.
func resetStateOf(m nfsm.Machine, init []nfsm.State, v int) nfsm.State {
	if init != nil {
		return init[v]
	}
	return m.InputState()
}

// runSyncScenario executes the compiled program with a dynamic-network
// scenario. The loop is sequential: trial-level parallelism (the
// campaign runner) is where dynamic sweeps get their concurrency; each
// worker's scratch arena is reused here exactly as on the static path
// (scr may be nil for a private one).
func (p *Program) runSyncScenario(cfg SyncConfig, scr *Scratch) (*SyncResult, error) {
	sc := cfg.Scenario
	if sc == nil {
		// A channel model alone routes here; run the empty scenario.
		sc = &scenario.Scenario{Reset: scenario.ResetNone}
	}
	if p.g == nil {
		return nil, fmt.Errorf("engine: scenario and channel runs need a graph-bound program (Bind, not BindCSR)")
	}
	if err := prepScenario(sc, p.g); err != nil {
		return nil, err
	}
	if scr == nil {
		scr = NewScratch()
	}
	g := p.g.Clone()
	n := g.N()
	states, err := initialStates(p.m, n, cfg.Init)
	if err != nil {
		return nil, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1 << 20
	}

	cur := p.csr
	scr.bind(p.MachineCode)
	rc := &scr.rc
	rc.reset(p, cur)
	ds := &scr.ds
	ds.init(p.MachineCode)
	live := scenario.NewLiveness(n, sc.Asleep)
	byz, err := byzIndex(sc.Byzantine, n, p.nl)
	if err != nil {
		return nil, err
	}
	isByz := func(v int) bool { return byz != nil && byz[v] >= 0 }
	if cap(scr.emits) < n {
		scr.emits = make([]nfsm.Letter, n)
	}
	emits := scr.emits[:n]
	emitters := scr.emitters[:0]
	defer func() { scr.emitters = emitters[:0] }()

	// Channel model (nil = reliable links). Only a reordering model can
	// defer a delivery past its send round, so the pending list and the
	// per-edge horizon map stay empty otherwise.
	model := cfg.Channel
	reorders := model != nil && model.Reorders()
	var chStats channel.Stats
	var chBuf []channel.Fate
	var pend []syncPend
	var horizon map[uint64]int
	if reorders {
		horizon = make(map[uint64]int)
	}

	res := &SyncResult{States: states, FinalGraph: g}
	// Byzantine nodes never reach an output state: termination is every
	// awake honest node in an output state. target() is that count.
	outputs, awakeByz := 0, 0
	countLive := func() {
		outputs, awakeByz = 0, 0
		for v := 0; v < n; v++ {
			if !live.Awake(v) {
				continue
			}
			if isByz(v) {
				awakeByz++
			} else if p.isOutput(states[v]) {
				outputs++
			}
		}
	}
	countLive()
	target := func() int { return live.NumAwake() - awakeByz }
	nextBatch := 0
	lastPerturb := 0
	// stable counts consecutive rounds ending in an awake output
	// configuration. After a perturbation, termination requires TWO such
	// rounds: a batch leaves fresh ports holding the initial letter for
	// one round, so a configuration can look terminal before the
	// perturbation's effects have propagated — one confirmation round
	// closes exactly that window (every awake node re-transmits and
	// every port is delivered real letters in between).
	stable := 0
	if nextBatch == len(sc.Batches) && outputs == target() {
		return res, nil
	}

	// applyBatch mutates graph and liveness, re-binds the layout on
	// topology change, and resets the policy's node set plus every
	// restarted/woken node.
	applyBatch := func(b scenario.Batch) error {
		topo := false
		var started []int
		for _, m := range b.Muts {
			st, err := live.Apply(m)
			if err != nil {
				return err
			}
			started = append(started, st...)
			if err := m.Apply(g); err != nil {
				return err
			}
			topo = topo || m.Topological()
		}
		if topo {
			next := g.CSR()
			rc.rebind(next, graph.RemapPorts(cur, next))
			cur = next
		}
		for _, v := range b.ResetSet(sc.Reset, g) {
			if live.Awake(v) {
				states[v] = resetStateOf(p.m, cfg.Init, v)
				rc.resetNode(v, cur)
			}
		}
		for _, v := range started {
			states[v] = resetStateOf(p.m, cfg.Init, v)
			rc.resetNode(v, cur)
		}
		countLive()
		return nil
	}

	for round := 1; round <= maxRounds; round++ {
		for nextBatch < len(sc.Batches) && int(sc.Batches[nextBatch].At) < round {
			if err := applyBatch(sc.Batches[nextBatch]); err != nil {
				return nil, err
			}
			nextBatch++
			lastPerturb = round - 1
			res.PerturbedAt = append(res.PerturbedAt, round-1)
		}

		// Compute phase over the awake nodes against the frozen ports.
		emitters = emitters[:0]
		for v := 0; v < n; v++ {
			if !live.Awake(v) {
				continue
			}
			if isByz(v) {
				// Byzantine node: never runs δ (its state stays put),
				// emits whatever its behavior dictates; its traffic
				// rides the channel like any other.
				if l := sc.Byzantine[byz[v]].Emit(round, p.nl); l != nfsm.NoLetter {
					emits[v] = l
					emitters = append(emitters, int32(v))
				}
				continue
			}
			q := states[v]
			moves := rc.movesFor(v, q, ds)
			if len(moves) == 0 {
				return nil, deltaEmptyErr(v, q, round)
			}
			mv := nfsm.PickMove(cfg.Seed, v, round, moves)
			if p.isOutput(mv.Next) != p.isOutput(q) {
				if p.isOutput(mv.Next) {
					outputs++
				} else {
					outputs--
				}
			}
			states[v] = mv.Next
			if mv.Emit != nfsm.NoLetter {
				emits[v] = mv.Emit
				emitters = append(emitters, int32(v))
			}
		}

		// Deliver phase: ports of every neighbor are link-endpoint
		// memory and receive the letter regardless of the neighbor's
		// liveness (a reboot clears them anyway). Deliveries deferred by
		// a reordering channel land first, so the round's own traffic
		// overwrites stale letters, never the other way around.
		if model != nil && len(pend) > 0 {
			keep := pend[:0]
			for _, pd := range pend {
				if pd.due != round {
					keep = append(keep, pd)
					continue
				}
				if k := portSlot(cur, int(pd.to), int(pd.from)); k >= 0 {
					rc.setPort(int(pd.to), k, pd.letter)
				} else {
					res.Severed++ // edge removed before the due round
				}
			}
			pend = keep
		}
		for _, v := range emitters {
			l := emits[v]
			res.Transmissions++
			if model == nil {
				for k := cur.NbrOff[v]; k < cur.NbrOff[v+1]; k++ {
					rc.setPort(int(cur.NbrDat[k]), cur.NbrOff[cur.NbrDat[k]]+cur.RevPort[k], l)
				}
				continue
			}
			for k := cur.NbrOff[v]; k < cur.NbrOff[v+1]; k++ {
				u := int(cur.NbrDat[k])
				chBuf = channel.Expand(model, int(v), round, u, l, p.nl, chBuf, &chStats)
				for _, f := range chBuf {
					delay := int(math.Ceil(f.Extra))
					if reorders {
						key := uint64(uint32(v))<<32 | uint64(uint32(u))
						if due := round + delay; due < horizon[key] {
							res.Reordered++ // an overtake on this edge
						} else {
							horizon[key] = due
						}
					}
					if delay == 0 {
						rc.setPort(u, cur.NbrOff[u]+cur.RevPort[k], f.Letter)
					} else {
						pend = append(pend, syncPend{due: round + delay, from: v, to: int32(u), letter: f.Letter})
					}
				}
			}
		}

		if cfg.Observer != nil {
			cfg.Observer(round, states)
		}
		if nextBatch == len(sc.Batches) && outputs == target() {
			stable++
		} else {
			stable = 0
		}
		if stable >= 2 || (stable >= 1 && len(res.PerturbedAt) == 0) {
			res.Rounds = round
			if len(res.PerturbedAt) > 0 {
				res.RecoveryRounds = round - lastPerturb
			}
			res.Dropped, res.Duplicated, res.Delayed, res.Corrupted = chStats.Dropped, chStats.Duplicated, chStats.Delayed, chStats.Corrupted
			return res, nil
		}
	}
	return nil, fmt.Errorf("%w: %s after %d rounds", ErrNoConvergence, machineName(p.m), maxRounds)
}
