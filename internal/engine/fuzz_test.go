package engine_test

// The standing fuzz wall: go-native fuzz targets that extend the
// differential suite of diff_test.go from a fixed case matrix to
// arbitrary machines, graphs and seeds. Each target decodes a small
// single-query protocol and a random graph from the fuzz input —
// correct by construction, so every input exercises the engines — and
// demands that the compiled executors (RunSync at several worker
// counts, RunAsync) stay byte-identical to the reference engines
// (RunSyncRef / RunAsyncRef), including on budget-exhaustion errors.
//
// Run continuously with
//
//	go test -fuzz FuzzDifferentialSync ./internal/engine
//	go test -fuzz FuzzDifferentialAsync ./internal/engine
//
// Under plain `go test` the seed corpus below runs as regular cases.

import (
	"testing"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/xrand"
)

// fuzzReader doles out bytes from the fuzz input, wrapping around when
// it is exhausted (and yielding zeros when it is empty) so every
// decode succeeds on every input.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if len(r.data) == 0 {
		return 0
	}
	b := r.data[r.pos%len(r.data)]
	r.pos++
	return b
}

// intn returns a value in [1, n] driven by the input.
func (r *fuzzReader) intn(n int) int {
	return int(r.byte())%n + 1
}

// fuzzProtocol decodes a random but well-formed single-query
// nfsm.Protocol: every δ row is non-empty, every move's target state
// and emitted letter are in range, and at least one state is an output
// sink (so some runs converge; many still exhaust MaxRounds, which the
// engines must report identically).
func fuzzProtocol(r *fuzzReader) *nfsm.Protocol {
	nq := r.intn(5) + 1 // 2..6 states
	nl := r.intn(4)     // 1..4 letters
	b := r.intn(3)      // 1..3
	names := make([]string, nq)
	letters := make([]string, nl)
	for q := range names {
		names[q] = "q" + string(rune('0'+q))
	}
	for l := range letters {
		letters[l] = "l" + string(rune('0'+l))
	}
	output := make([]bool, nq)
	output[nq-1] = true // one guaranteed sink
	for q := 0; q < nq-1; q++ {
		output[q] = r.byte()%4 == 0
	}
	query := make([]nfsm.Letter, nq)
	for q := range query {
		query[q] = nfsm.Letter(int(r.byte()) % nl)
	}
	delta := make([][][]nfsm.Move, nq)
	for q := 0; q < nq; q++ {
		delta[q] = make([][]nfsm.Move, b+1)
		for c := 0; c <= b; c++ {
			if output[q] {
				// Output states keep their output status (requirement
				// (M4)-ish sink behaviour keeps convergence detectable).
				delta[q][c] = []nfsm.Move{{Next: nfsm.State(q), Emit: nfsm.NoLetter}}
				continue
			}
			moves := make([]nfsm.Move, r.intn(3))
			for i := range moves {
				next := nfsm.State(int(r.byte()) % nq)
				emit := nfsm.Letter(int(r.byte())%(nl+1)) - 1 // NoLetter..nl-1
				moves[i] = nfsm.Move{Next: next, Emit: emit}
			}
			delta[q][c] = moves
		}
	}
	return &nfsm.Protocol{
		Name:        "fuzz",
		StateNames:  names,
		LetterNames: letters,
		Input:       []nfsm.State{0},
		Output:      output,
		Initial:     nfsm.Letter(int(r.byte()) % nl),
		B:           b,
		Query:       query,
		Delta:       delta,
	}
}

// fuzzGraph decodes a random graph: G(n, p) over a derived stream, with
// a path fallback so tiny inputs still yield edges.
func fuzzGraph(r *fuzzReader, gseed uint64) *graph.Graph {
	n := r.intn(48) + 1 // 2..49
	switch r.byte() % 4 {
	case 0:
		return graph.Path(n)
	case 1:
		return graph.Star(n)
	case 2:
		return graph.GnpConnected(n, float64(r.intn(8))/float64(n), xrand.New(gseed))
	default:
		return graph.Gnp(n, float64(r.intn(8))/float64(n), xrand.New(gseed)) // may be disconnected
	}
}

func fuzzSeeds(f *testing.F) {
	f.Add(uint64(1), uint64(2), []byte{})
	f.Add(uint64(3), uint64(4), []byte{7, 1, 2, 200, 13, 5, 0, 99, 3})
	f.Add(uint64(42), uint64(9), []byte{255, 254, 253, 1, 0, 128, 64, 32, 16, 8, 4, 2})
	f.Add(uint64(11), uint64(12), []byte("stone age distributed computing"))
}

// FuzzDifferentialSync fuzzes RunSync (compiled, workers ∈ {1, 3})
// against RunSyncRef.
func FuzzDifferentialSync(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, seed, gseed uint64, data []byte) {
		r := &fuzzReader{data: data}
		m := fuzzProtocol(r)
		if err := m.Validate(); err != nil {
			t.Fatalf("fuzzProtocol built an invalid machine: %v", err)
		}
		g := fuzzGraph(r, gseed)
		const maxRounds = 64

		ref, refErr := engine.RunSyncRef(m, g, engine.SyncConfig{Seed: seed, MaxRounds: maxRounds})
		for _, workers := range []int{1, 3} {
			got, gotErr := engine.Compile(m, g).RunSync(engine.SyncConfig{Seed: seed, MaxRounds: maxRounds, Workers: workers})
			if refErr != nil || gotErr != nil {
				if refErr == nil || gotErr == nil || refErr.Error() != gotErr.Error() {
					t.Fatalf("workers=%d error mismatch:\nreference: %v\ncompiled:  %v", workers, refErr, gotErr)
				}
				continue
			}
			if got.Rounds != ref.Rounds || got.Transmissions != ref.Transmissions {
				t.Fatalf("workers=%d: (rounds, tx) = (%d, %d), reference (%d, %d)",
					workers, got.Rounds, got.Transmissions, ref.Rounds, ref.Transmissions)
			}
			for v := range ref.States {
				if got.States[v] != ref.States[v] {
					t.Fatalf("workers=%d: state of node %d = %d, reference %d",
						workers, v, got.States[v], ref.States[v])
				}
			}
		}
	})
}

// FuzzDifferentialAsync fuzzes RunAsync against RunAsyncRef across the
// adversary policies.
func FuzzDifferentialAsync(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, seed, gseed uint64, data []byte) {
		r := &fuzzReader{data: data}
		m := fuzzProtocol(r)
		if err := m.Validate(); err != nil {
			t.Fatalf("fuzzProtocol built an invalid machine: %v", err)
		}
		g := fuzzGraph(r, gseed)
		advName := []string{"sync", "uniform", "skew", "drift"}[r.byte()%4]
		const maxSteps = 1 << 12

		mkAdv := func() engine.Adversary { return engine.NamedAdversaries(seed + 5)[advName] }
		ref, refErr := engine.RunAsyncRef(m, g, engine.AsyncConfig{Seed: seed, Adversary: mkAdv(), MaxSteps: maxSteps})
		got, gotErr := engine.RunAsync(m, g, engine.AsyncConfig{Seed: seed, Adversary: mkAdv(), MaxSteps: maxSteps})
		if refErr != nil || gotErr != nil {
			if refErr == nil || gotErr == nil || refErr.Error() != gotErr.Error() {
				t.Fatalf("error mismatch:\nreference: %v\ncompiled:  %v", refErr, gotErr)
			}
			return
		}
		if got.Time != ref.Time || got.TimeUnits != ref.TimeUnits {
			t.Fatalf("(Time, TimeUnits) = (%v, %v), reference (%v, %v)",
				got.Time, got.TimeUnits, ref.Time, ref.TimeUnits)
		}
		if got.Steps != ref.Steps || got.Transmissions != ref.Transmissions || got.Lost != ref.Lost {
			t.Fatalf("(Steps, Tx, Lost) = (%d, %d, %d), reference (%d, %d, %d)",
				got.Steps, got.Transmissions, got.Lost, ref.Steps, ref.Transmissions, ref.Lost)
		}
		for v := range ref.States {
			if got.States[v] != ref.States[v] {
				t.Fatalf("state of node %d = %d, reference %d", v, got.States[v], ref.States[v])
			}
		}
	})
}
