package engine_test

// The standing fuzz wall: go-native fuzz targets that extend the
// differential suites of diff_test.go and dynamic_test.go from fixed
// case matrices to arbitrary machines, graphs, scenarios and seeds.
// Each target decodes a small single-query protocol, a random graph,
// a random dynamic-network scenario (edge churn, crashes and
// restarts, staggered wake-up, every reset policy) and a random
// unreliable-channel configuration (quantized loss/duplication/
// reordering/corruption rates plus Byzantine node sets) from the fuzz
// input — correct by construction, so every input exercises the
// engines — and demands that the compiled executors (RunSync at
// several worker counts, RunAsync) stay byte-identical to the
// reference engines (RunSyncRef / RunAsyncRef), including recovery
// metrics, channel counters, perturbation logs and budget-exhaustion
// errors.
//
// Run continuously with
//
//	go test -fuzz FuzzDifferentialSync ./internal/engine
//	go test -fuzz FuzzDifferentialAsync ./internal/engine
//
// Under plain `go test` the seed corpus below runs as regular cases.

import (
	"testing"

	"stoneage/internal/channel"
	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/scenario"
	"stoneage/internal/synchro"
	"stoneage/internal/xrand"
)

// fuzzReader doles out bytes from the fuzz input, wrapping around when
// it is exhausted (and yielding zeros when it is empty) so every
// decode succeeds on every input.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if len(r.data) == 0 {
		return 0
	}
	b := r.data[r.pos%len(r.data)]
	r.pos++
	return b
}

// intn returns a value in [1, n] driven by the input.
func (r *fuzzReader) intn(n int) int {
	return int(r.byte())%n + 1
}

// fuzzProtocol decodes a random but well-formed single-query
// nfsm.Protocol: every δ row is non-empty, every move's target state
// and emitted letter are in range, and at least one state is an output
// sink (so some runs converge; many still exhaust MaxRounds, which the
// engines must report identically).
func fuzzProtocol(r *fuzzReader) *nfsm.Protocol {
	nq := r.intn(5) + 1 // 2..6 states
	nl := r.intn(4)     // 1..4 letters
	b := r.intn(3)      // 1..3
	names := make([]string, nq)
	letters := make([]string, nl)
	for q := range names {
		names[q] = "q" + string(rune('0'+q))
	}
	for l := range letters {
		letters[l] = "l" + string(rune('0'+l))
	}
	output := make([]bool, nq)
	output[nq-1] = true // one guaranteed sink
	for q := 0; q < nq-1; q++ {
		output[q] = r.byte()%4 == 0
	}
	query := make([]nfsm.Letter, nq)
	for q := range query {
		query[q] = nfsm.Letter(int(r.byte()) % nl)
	}
	delta := make([][][]nfsm.Move, nq)
	for q := 0; q < nq; q++ {
		delta[q] = make([][]nfsm.Move, b+1)
		for c := 0; c <= b; c++ {
			if output[q] {
				// Output states keep their output status (requirement
				// (M4)-ish sink behaviour keeps convergence detectable).
				delta[q][c] = []nfsm.Move{{Next: nfsm.State(q), Emit: nfsm.NoLetter}}
				continue
			}
			moves := make([]nfsm.Move, r.intn(3))
			for i := range moves {
				next := nfsm.State(int(r.byte()) % nq)
				emit := nfsm.Letter(int(r.byte())%(nl+1)) - 1 // NoLetter..nl-1
				moves[i] = nfsm.Move{Next: next, Emit: emit}
			}
			delta[q][c] = moves
		}
	}
	return &nfsm.Protocol{
		Name:        "fuzz",
		StateNames:  names,
		LetterNames: letters,
		Input:       []nfsm.State{0},
		Output:      output,
		Initial:     nfsm.Letter(int(r.byte()) % nl),
		B:           b,
		Query:       query,
		Delta:       delta,
	}
}

// fuzzGraph decodes a random graph: G(n, p) over a derived stream, with
// a path fallback so tiny inputs still yield edges.
func fuzzGraph(r *fuzzReader, gseed uint64) *graph.Graph {
	n := r.intn(48) + 1 // 2..49
	switch r.byte() % 4 {
	case 0:
		return graph.Path(n)
	case 1:
		return graph.Star(n)
	case 2:
		return graph.GnpConnected(n, float64(r.intn(8))/float64(n), xrand.New(gseed))
	default:
		return graph.Gnp(n, float64(r.intn(8))/float64(n), xrand.New(gseed)) // may be disconnected
	}
}

// fuzzScenario decodes a random but valid dynamic-network scenario:
// liveness preconditions hold (only awake nodes crash, only crashed
// ones restart, only asleep ones wake) and edge flips track the
// evolving edge set, so every decoded scenario passes validation and
// the run exercises the dynamic engines rather than the error path.
// Roughly half of all inputs decode an empty scenario (no batches, no
// asleep nodes), keeping the static path under fuzz too.
func fuzzScenario(r *fuzzReader, g *graph.Graph) *scenario.Scenario {
	n := g.N()
	// 1..4 maps onto the concrete policies (ResetAuto is rejected by
	// the engines and resolved upstream, so it is not fuzzed here).
	sc := &scenario.Scenario{Name: "fuzz", Reset: scenario.ResetPolicy(r.intn(4))}
	const (
		awake byte = iota
		asleep
		crashed
	)
	status := make([]byte, n)
	if r.byte()%2 == 0 {
		for v := 0; v < n; v++ {
			if r.byte()%8 == 0 {
				sc.Asleep = append(sc.Asleep, v)
				status[v] = asleep
			}
		}
	}
	// pick scans for a node with the wanted status, starting at a
	// fuzz-chosen offset so every node is reachable.
	pick := func(want byte) int {
		off := int(r.byte()) % n
		for i := 0; i < n; i++ {
			if v := (off + i) % n; status[v] == want {
				return v
			}
		}
		return -1
	}
	sim := g.Clone()
	at := 0
	for i := int(r.byte()) % 4; i > 0; i-- {
		at += r.intn(6) - 1 // 0..5 rounds after the previous batch
		var muts []graph.Mutation
		for j := r.intn(3); j > 0; j-- {
			switch r.byte() % 4 {
			case 0, 1: // flip a node pair
				if n < 2 {
					continue
				}
				u, v := int(r.byte())%n, int(r.byte())%n
				if u == v {
					continue
				}
				if u > v {
					u, v = v, u
				}
				m := graph.Mutation{Kind: graph.MutAddEdge, U: u, V: v}
				if sim.HasEdge(u, v) {
					m.Kind = graph.MutRemoveEdge
				}
				if err := m.Apply(sim); err != nil {
					panic("fuzzScenario: " + err.Error())
				}
				muts = append(muts, m)
			case 2: // crash an awake node
				if v := pick(awake); v >= 0 {
					status[v] = crashed
					muts = append(muts, graph.Mutation{Kind: graph.MutCrashNode, U: v})
				}
			case 3: // revive: restart a crashed node or wake an asleep one
				if r.byte()%2 == 0 {
					if v := pick(crashed); v >= 0 {
						status[v] = awake
						muts = append(muts, graph.Mutation{Kind: graph.MutRestartNode, U: v})
					}
				} else if v := pick(asleep); v >= 0 {
					status[v] = awake
					muts = append(muts, graph.Mutation{Kind: graph.MutWakeNode, U: v})
				}
			}
		}
		if len(muts) > 0 {
			sc.Batches = append(sc.Batches, scenario.Batch{At: float64(at), Muts: muts})
		}
	}
	return sc
}

// fuzzChannel decodes a random but valid unreliable-channel
// configuration: a quantized channel.Def (rates off a small grid, so
// the interesting regimes — reliable, moderately lossy, total loss —
// all appear) plus a Byzantine node set over the machine's alphabet.
// Roughly half of all inputs decode no channel at all, keeping the
// reliable fast path under fuzz too.
func fuzzChannel(r *fuzzReader, g *graph.Graph, nl int, seed uint64) (channel.Model, []channel.ByzNode) {
	if r.byte()%2 == 0 {
		return nil, nil
	}
	def := channel.Def{
		Drop:    []float64{0, 0.25, 0.5, 1}[r.byte()%4],
		Dup:     []float64{0, 0.5}[r.byte()%2],
		Reorder: []float64{0, 0.5, 2}[r.byte()%3],
		Corrupt: []float64{0, 0.25}[r.byte()%2],
	}
	if def.Dup > 0 {
		def.DupMax = 2 + int(r.byte())%3 // 2..4
	}
	if err := def.Validate(); err != nil {
		panic("fuzzChannel built an invalid def: " + err.Error())
	}
	var byz []channel.ByzNode
	if r.byte()%2 == 0 {
		for v := 0; v < g.N(); v++ {
			if r.byte()%16 != 0 {
				continue
			}
			switch r.byte() % 3 {
			case 0:
				byz = append(byz, channel.Silent(v))
			case 1:
				byz = append(byz, channel.StuckAt(v, nfsm.Letter(int(r.byte())%nl)))
			default:
				byz = append(byz, channel.RandomBabbler(v, seed+uint64(v)))
			}
		}
	}
	return def.Model(seed), byz
}

func fuzzSeeds(f *testing.F) {
	f.Add(uint64(1), uint64(2), []byte{})
	f.Add(uint64(3), uint64(4), []byte{7, 1, 2, 200, 13, 5, 0, 99, 3})
	f.Add(uint64(42), uint64(9), []byte{255, 254, 253, 1, 0, 128, 64, 32, 16, 8, 4, 2})
	f.Add(uint64(11), uint64(12), []byte("stone age distributed computing"))
	// Overwriter-style re-queue-heavy schedules: byte streams biased
	// toward 4 mod 5 (the async target's adversary selector) with
	// protocols whose silent self-loops and multi-state chains park and
	// replay millions of skipped steps against the budget.
	f.Add(uint64(7), uint64(70), []byte{4, 9, 14, 19, 24, 4, 9, 14, 19, 24, 4, 9, 14})
	f.Add(uint64(8), uint64(80), []byte{4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4})
	f.Add(uint64(9), uint64(90), []byte{104, 4, 54, 204, 4, 154, 4, 14, 4, 64, 4, 114, 4})
	f.Add(uint64(10), uint64(100), []byte{49, 99, 149, 199, 249, 44, 94, 144, 194, 244, 39, 89, 139})
	// Channel-heavy inputs: odd first-draw parity at the fuzzChannel
	// decision point plus varied rate bytes, so the seed corpus already
	// exercises loss, duplication, reordering, corruption and Byzantine
	// sets against both engines.
	f.Add(uint64(13), uint64(130), []byte{1, 3, 5, 7, 9, 11, 13, 15, 0, 16, 32, 48, 64, 80, 96})
	f.Add(uint64(14), uint64(140), []byte{2, 1, 3, 1, 2, 1, 0, 0, 16, 0, 16, 0, 16, 0, 16, 0})
	f.Add(uint64(15), uint64(150), []byte{255, 1, 127, 63, 31, 15, 7, 3, 1, 0, 0, 0, 16, 16, 16})
}

// FuzzDifferentialSync fuzzes RunSync (compiled, workers ∈ {1, 3})
// against RunSyncRef.
func FuzzDifferentialSync(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, seed, gseed uint64, data []byte) {
		r := &fuzzReader{data: data}
		m := fuzzProtocol(r)
		if err := m.Validate(); err != nil {
			t.Fatalf("fuzzProtocol built an invalid machine: %v", err)
		}
		g := fuzzGraph(r, gseed)
		sc := fuzzScenario(r, g)
		model, byz := fuzzChannel(r, g, m.NumLetters(), seed+17)
		sc.Byzantine = byz
		const maxRounds = 64

		ref, refErr := engine.RunSyncRef(m, g, engine.SyncConfig{Seed: seed, MaxRounds: maxRounds, Scenario: sc, Channel: model})

		// Packed arm: on static reliable runs of packed-eligible
		// machines, the bit-plane backend must match the reference too
		// (it refuses scenarios and channels by design, so those inputs
		// only exercise the flat arm below).
		code := engine.CompileMachine(m)
		if code.PackedEligible() && sc.Empty() && model == nil && len(sc.Byzantine) == 0 {
			for _, workers := range []int{1, 3} {
				got, gotErr := code.Bind(g).RunSync(engine.SyncConfig{Seed: seed, MaxRounds: maxRounds, Workers: workers, Backend: engine.BackendPacked})
				if refErr != nil || gotErr != nil {
					if refErr == nil || gotErr == nil || refErr.Error() != gotErr.Error() {
						t.Fatalf("packed workers=%d error mismatch:\nreference: %v\npacked:    %v", workers, refErr, gotErr)
					}
					continue
				}
				if got.Rounds != ref.Rounds || got.Transmissions != ref.Transmissions {
					t.Fatalf("packed workers=%d: (rounds, tx) = (%d, %d), reference (%d, %d)",
						workers, got.Rounds, got.Transmissions, ref.Rounds, ref.Transmissions)
				}
				for v := range ref.States {
					if got.States[v] != ref.States[v] {
						t.Fatalf("packed workers=%d: state of node %d = %d, reference %d",
							workers, v, got.States[v], ref.States[v])
					}
				}
			}
		}

		for _, workers := range []int{1, 3} {
			got, gotErr := engine.Compile(m, g).RunSync(engine.SyncConfig{Seed: seed, MaxRounds: maxRounds, Workers: workers, Scenario: sc, Channel: model})
			if refErr != nil || gotErr != nil {
				if refErr == nil || gotErr == nil || refErr.Error() != gotErr.Error() {
					t.Fatalf("workers=%d error mismatch:\nreference: %v\ncompiled:  %v", workers, refErr, gotErr)
				}
				continue
			}
			if got.Rounds != ref.Rounds || got.Transmissions != ref.Transmissions || got.RecoveryRounds != ref.RecoveryRounds {
				t.Fatalf("workers=%d: (rounds, tx, recovery) = (%d, %d, %d), reference (%d, %d, %d)",
					workers, got.Rounds, got.Transmissions, got.RecoveryRounds,
					ref.Rounds, ref.Transmissions, ref.RecoveryRounds)
			}
			if got.Dropped != ref.Dropped || got.Duplicated != ref.Duplicated ||
				got.Delayed != ref.Delayed ||
				got.Reordered != ref.Reordered || got.Corrupted != ref.Corrupted ||
				got.Severed != ref.Severed {
				t.Fatalf("workers=%d: channel counters (%d,%d,%d,%d,%d,%d), reference (%d,%d,%d,%d,%d,%d)",
					workers, got.Dropped, got.Duplicated, got.Delayed, got.Reordered, got.Corrupted, got.Severed,
					ref.Dropped, ref.Duplicated, ref.Delayed, ref.Reordered, ref.Corrupted, ref.Severed)
			}
			if len(got.PerturbedAt) != len(ref.PerturbedAt) {
				t.Fatalf("workers=%d: %d perturbations, reference %d",
					workers, len(got.PerturbedAt), len(ref.PerturbedAt))
			}
			for i := range got.PerturbedAt {
				if got.PerturbedAt[i] != ref.PerturbedAt[i] {
					t.Fatalf("workers=%d: perturbation %d at round %d, reference %d",
						workers, i, got.PerturbedAt[i], ref.PerturbedAt[i])
				}
			}
			for v := range ref.States {
				if got.States[v] != ref.States[v] {
					t.Fatalf("workers=%d: state of node %d = %d, reference %d",
						workers, v, got.States[v], ref.States[v])
				}
			}
			if (got.FinalGraph == nil) != (ref.FinalGraph == nil) {
				t.Fatalf("workers=%d: FinalGraph presence diverges", workers)
			}
			if got.FinalGraph != nil {
				if err := got.FinalGraph.Validate(); err != nil {
					t.Fatalf("workers=%d: final graph invalid: %v", workers, err)
				}
				if got.FinalGraph.N() != ref.FinalGraph.N() || got.FinalGraph.M() != ref.FinalGraph.M() {
					t.Fatalf("workers=%d: final graph shape diverges", workers)
				}
			}
		}
	})
}

// FuzzDifferentialAsync fuzzes RunAsync against RunAsyncRef across the
// adversary policies.
func FuzzDifferentialAsync(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, seed, gseed uint64, data []byte) {
		r := &fuzzReader{data: data}
		m := fuzzProtocol(r)
		if err := m.Validate(); err != nil {
			t.Fatalf("fuzzProtocol built an invalid machine: %v", err)
		}
		g := fuzzGraph(r, gseed)
		sc := fuzzScenario(r, g)
		// One input in four runs the fuzzed protocol through the
		// αβ-hybrid synchronizer instead of raw, and one in four through
		// the voted αβv tier with fuzzed vote/eviction/backoff knobs:
		// the tolerant machines' stall-timer hop chains, re-pulse
		// transmissions, vote rings and eviction decisions must stay
		// bit-identical between ladder and reference under every channel
		// and scenario, exactly like any other machine. Topological
		// scenarios under the voted tier are rejected — the differential
		// wall then checks both executors refuse with the same error.
		var mach nfsm.Machine = m
		var vcfg *engine.VotedConfig
		switch r.byte() % 4 {
		case 0:
			c, cerr := synchro.CompileTolerant(m)
			if cerr != nil {
				t.Fatalf("CompileTolerant rejected a valid fuzz protocol: %v", cerr)
			}
			mach = c
		case 1:
			c, cerr := synchro.CompileVoted(m)
			if cerr != nil {
				t.Fatalf("CompileVoted rejected a valid fuzz protocol: %v", cerr)
			}
			mach = c
			vcfg = &engine.VotedConfig{
				K:             int(r.byte()%3) + 1,
				EvictAfter:    int(r.byte() % 4),
				BackoffCap:    int(r.byte() % 9),
				RePulseSource: c.RePulseSource,
			}
		}
		model, byz := fuzzChannel(r, g, mach.NumLetters(), seed+17)
		sc.Byzantine = byz
		// overwriter joins the pool deliberately: its two-orders-of-
		// magnitude speed skew creates exactly the re-queue storms the
		// ladder queue's parking fast path absorbs, so the differential
		// wall exercises chain virtualization, checkpoint windows and
		// replay under a tight step budget.
		advName := []string{"sync", "uniform", "skew", "drift", "overwriter"}[r.byte()%5]
		const maxSteps = 1 << 12

		mkAdv := func() engine.Adversary { return engine.NamedAdversaries(seed + 5)[advName] }
		ref, refErr := engine.RunAsyncRef(mach, g, engine.AsyncConfig{Seed: seed, Adversary: mkAdv(), MaxSteps: maxSteps, Scenario: sc, Channel: model, Voted: vcfg})
		got, gotErr := engine.RunAsync(mach, g, engine.AsyncConfig{Seed: seed, Adversary: mkAdv(), MaxSteps: maxSteps, Scenario: sc, Channel: model, Voted: vcfg})
		if refErr != nil || gotErr != nil {
			if refErr == nil || gotErr == nil || refErr.Error() != gotErr.Error() {
				t.Fatalf("error mismatch:\nreference: %v\ncompiled:  %v", refErr, gotErr)
			}
			return
		}
		if got.Time != ref.Time || got.TimeUnits != ref.TimeUnits ||
			got.RecoveryTime != ref.RecoveryTime || got.RecoveryTimeUnits != ref.RecoveryTimeUnits {
			t.Fatalf("(Time, TimeUnits, Recovery, RecoveryUnits) = (%v, %v, %v, %v), reference (%v, %v, %v, %v)",
				got.Time, got.TimeUnits, got.RecoveryTime, got.RecoveryTimeUnits,
				ref.Time, ref.TimeUnits, ref.RecoveryTime, ref.RecoveryTimeUnits)
		}
		if len(got.PerturbedAt) != len(ref.PerturbedAt) {
			t.Fatalf("%d perturbations, reference %d", len(got.PerturbedAt), len(ref.PerturbedAt))
		}
		for i := range got.PerturbedAt {
			if got.PerturbedAt[i] != ref.PerturbedAt[i] {
				t.Fatalf("perturbation %d at %v, reference %v", i, got.PerturbedAt[i], ref.PerturbedAt[i])
			}
		}
		if got.Steps != ref.Steps || got.Transmissions != ref.Transmissions || got.Lost != ref.Lost {
			t.Fatalf("(Steps, Tx, Lost) = (%d, %d, %d), reference (%d, %d, %d)",
				got.Steps, got.Transmissions, got.Lost, ref.Steps, ref.Transmissions, ref.Lost)
		}
		if got.Dropped != ref.Dropped || got.Duplicated != ref.Duplicated ||
			got.Delayed != ref.Delayed ||
			got.Reordered != ref.Reordered || got.Corrupted != ref.Corrupted ||
			got.Severed != ref.Severed {
			t.Fatalf("channel counters (%d,%d,%d,%d,%d,%d), reference (%d,%d,%d,%d,%d,%d)",
				got.Dropped, got.Duplicated, got.Delayed, got.Reordered, got.Corrupted, got.Severed,
				ref.Dropped, ref.Duplicated, ref.Delayed, ref.Reordered, ref.Corrupted, ref.Severed)
		}
		if got.Outvoted != ref.Outvoted || got.VotedRejections != ref.VotedRejections ||
			got.RePulses != ref.RePulses || got.RePulseSends != ref.RePulseSends {
			t.Fatalf("voted counters (%d,%d,%d,%d), reference (%d,%d,%d,%d)",
				got.Outvoted, got.VotedRejections, got.RePulses, got.RePulseSends,
				ref.Outvoted, ref.VotedRejections, ref.RePulses, ref.RePulseSends)
		}
		if len(got.EvictedEdges) != len(ref.EvictedEdges) {
			t.Fatalf("%d evicted edges, reference %d", len(got.EvictedEdges), len(ref.EvictedEdges))
		}
		for i := range got.EvictedEdges {
			if got.EvictedEdges[i] != ref.EvictedEdges[i] {
				t.Fatalf("evicted edge %d = %v, reference %v", i, got.EvictedEdges[i], ref.EvictedEdges[i])
			}
		}
		for v := range ref.States {
			if got.States[v] != ref.States[v] {
				t.Fatalf("state of node %d = %d, reference %d", v, got.States[v], ref.States[v])
			}
		}
	})
}
