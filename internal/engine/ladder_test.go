package engine

// Unit tests for the ladder event queue and the pooled per-edge
// delivery FIFOs: exact (time, seq) service order against a reference
// model under random interleavings, seq tie-breaking on simultaneous
// events, bucket overflow/rebuild paths (everything clustered in one
// bucket; far-future spreads; repeated rung rebuilds), and storage
// reuse across resets. The executors' epoch invalidation — stale
// precomputed events skipped after a mid-chain delivery or a crash — is
// pinned at the engine level by TestAsyncEpochInvalidation and the
// dynamic differential suite.

import (
	"math"
	"sort"
	"testing"

	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/synchro"
	"stoneage/internal/xrand"
)

// drainAll pops every event, asserting (time, seq) order.
func drainAll(t *testing.T, l *ladder) []qevent {
	t.Helper()
	var out []qevent
	for {
		e, ok := l.pop()
		if !ok {
			break
		}
		if len(out) > 0 {
			prev := out[len(out)-1]
			if e.time < prev.time || (e.time == prev.time && e.seq < prev.seq) {
				t.Fatalf("order violation: (%g, %d) after (%g, %d)", e.time, e.seq, prev.time, prev.seq)
			}
		}
		out = append(out, e)
	}
	return out
}

func TestLadderOrdering(t *testing.T) {
	src := xrand.New(1)
	var l ladder
	l.reset()
	const n = 5000
	times := make([]float64, n)
	for i := 0; i < n; i++ {
		// A mix of scales so bottom inserts, bucket appends, top pushes
		// and several rung rebuilds all occur.
		times[i] = float64(src.Uint64()%1000)/64 + float64(src.Uint64()%7)*100
		l.push(qevent{time: times[i], seq: uint64(i)})
	}
	if l.len() != n {
		t.Fatalf("len = %d, want %d", l.len(), n)
	}
	got := drainAll(t, &l)
	if len(got) != n {
		t.Fatalf("drained %d events, want %d", len(got), n)
	}
	sort.Float64s(times)
	for i, e := range got {
		if e.time != times[i] {
			t.Fatalf("pop %d: time %g, want %g", i, e.time, times[i])
		}
	}
}

// TestLadderModel drives random interleaved pushes and pops against a
// sorted-slice reference model, with event times at and after the
// current service point (the executors never schedule into the past).
func TestLadderModel(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		src := xrand.New(uint64(100 + trial))
		var l ladder
		l.reset()
		var model []qevent
		now := 0.0
		var seq uint64
		for op := 0; op < 4000; op++ {
			if src.Intn(3) > 0 || len(model) == 0 {
				// Push at or after the current time; occasionally far
				// ahead, occasionally exactly at `now` (FIFO clamping
				// produces same-time pushes in the executors).
				var dt float64
				switch src.Intn(4) {
				case 0:
					dt = 0
				case 1:
					dt = float64(src.Intn(1000)) / 999 // near future
				case 2:
					dt = float64(src.Intn(100)) // far future
				default:
					dt = float64(src.Intn(7)) / 3
				}
				e := qevent{time: now + dt, seq: seq}
				seq++
				l.push(e)
				model = append(model, e)
				continue
			}
			e, ok := l.pop()
			if !ok {
				t.Fatalf("trial %d op %d: empty ladder, model has %d", trial, op, len(model))
			}
			// Reference: minimum by (time, seq).
			best := 0
			for i := 1; i < len(model); i++ {
				if model[i].time < model[best].time ||
					(model[i].time == model[best].time && model[i].seq < model[best].seq) {
					best = i
				}
			}
			want := model[best]
			model = append(model[:best], model[best+1:]...)
			if e.time != want.time || e.seq != want.seq {
				t.Fatalf("trial %d op %d: popped (%g, %d), want (%g, %d)",
					trial, op, e.time, e.seq, want.time, want.seq)
			}
			now = e.time
		}
	}
}

// TestLadderSeqTieBreak pins FIFO service of simultaneous events.
func TestLadderSeqTieBreak(t *testing.T) {
	var l ladder
	l.reset()
	// All events share one time: the degenerate rungless-bottom path.
	order := []uint64{5, 1, 9, 0, 7, 3, 8, 2, 6, 4}
	for _, s := range order {
		l.push(qevent{time: 2.5, seq: s})
	}
	got := drainAll(t, &l)
	for i, e := range got {
		if e.seq != uint64(i) {
			t.Fatalf("pop %d: seq %d, want %d", i, e.seq, i)
		}
	}
	// Ties interleaved with other times, plus pushes landing in the
	// partially served bottom batch.
	l.reset()
	l.push(qevent{time: 1, seq: 0})
	l.push(qevent{time: 3, seq: 1})
	l.push(qevent{time: 3, seq: 2})
	if e, _ := l.pop(); e.seq != 0 {
		t.Fatalf("first pop seq %d, want 0", e.seq)
	}
	// Same-time, lower-seq than a pending event: must slot before it.
	l.push(qevent{time: 3, seq: 3})
	got = drainAll(t, &l)
	want := []uint64{1, 2, 3}
	for i, e := range got {
		if e.seq != want[i] {
			t.Fatalf("pop %d: seq %d, want %d", i, e.seq, want[i])
		}
	}
}

// TestLadderBucketOverflow clusters thousands of events into a sliver
// of the rung's span (all in one bucket) with a lone far outlier, so
// one bucket vastly overflows the average and the drain must sort it
// wholesale; then everything repeats after a reset to check storage
// reuse doesn't leak state.
func TestLadderBucketOverflow(t *testing.T) {
	var l ladder
	l.reset()
	for round := 0; round < 2; round++ {
		src := xrand.New(uint64(7 + round))
		const n = 3000
		for i := 0; i < n; i++ {
			l.push(qevent{time: 1 + float64(src.Uint64()%997)/1e6, seq: uint64(i)})
		}
		l.push(qevent{time: 1e6, seq: n}) // stretches the rung span
		got := drainAll(t, &l)
		if len(got) != n+1 {
			t.Fatalf("round %d: drained %d, want %d", round, len(got), n+1)
		}
		if got[n].time != 1e6 {
			t.Fatalf("round %d: outlier served at position %g", round, got[n].time)
		}
		l.reset()
		if _, ok := l.pop(); ok {
			t.Fatalf("round %d: pop after reset succeeded", round)
		}
	}
}

// TestLadderPeek checks peekTime agrees with the subsequent pop and
// does not consume.
func TestLadderPeek(t *testing.T) {
	var l ladder
	l.reset()
	if _, ok := l.peekTime(); ok {
		t.Fatal("peek on empty ladder reported an event")
	}
	l.push(qevent{time: 4, seq: 0})
	l.push(qevent{time: 2, seq: 1})
	for i := 0; i < 2; i++ {
		pt, ok := l.peekTime()
		if !ok {
			t.Fatal("peek reported empty")
		}
		e, _ := l.pop()
		if e.time != pt {
			t.Fatalf("peek %g, pop %g", pt, e.time)
		}
	}
}

// TestDelivPoolFIFO checks the pooled per-edge FIFOs: only the head of
// each edge enters the ladder, successors promote in creation order,
// and freed entries are recycled.
func TestDelivPoolFIFO(t *testing.T) {
	var d delivPool
	d.reset(3)
	if !d.enqueue(1, 1.0, 10, 7) {
		t.Fatal("first delivery of an edge must enter the ladder")
	}
	for i := 0; i < 4; i++ {
		if d.enqueue(1, 1.5+float64(i), uint64(11+i), int32(20+i)) {
			t.Fatalf("queued delivery %d must wait pooled", i)
		}
	}
	if d.enqueue(2, 0.5, 99, 1) != true {
		t.Fatal("independent edge must enter the ladder")
	}
	for i := 0; i < 4; i++ {
		nx, ok := d.delivered(1)
		if !ok {
			t.Fatalf("promotion %d missing", i)
		}
		if nx.seq != uint64(11+i) || nx.letter != int32(20+i) || nx.time != 1.5+float64(i) {
			t.Fatalf("promotion %d = %+v out of FIFO order", i, nx)
		}
	}
	if _, ok := d.delivered(1); ok {
		t.Fatal("empty edge promoted a phantom delivery")
	}
	if !d.enqueue(1, 9, 50, 3) {
		t.Fatal("edge drained: next delivery must re-enter the ladder")
	}
	// Recycling: the pool must not have grown beyond the high-water mark.
	if len(d.pool) > 4 {
		t.Fatalf("pool grew to %d entries, want ≤ 4 (free-list reuse)", len(d.pool))
	}
}

// TestAsyncEpochInvalidation pins the parking fast path's epoch
// machinery end to end: under an adversary with extreme speed skew
// (Overwriter), precomputed chain-end events are repeatedly invalidated
// by mid-chain deliveries and rescheduled, and the run must still be
// bit-identical to the reference engine — including Steps, the exact
// termination time and the final state vector.
func TestAsyncEpochInvalidation(t *testing.T) {
	g := graph.GnpConnected(24, 0.2, xrand.New(5))
	compiled, err := synchro.CompileRound(miniRound())
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 2, 3} {
		adv := Overwriter{Seed: seed}
		ref, refErr := RunAsyncRef(compiled, g, AsyncConfig{Seed: seed, Adversary: adv})
		got, gotErr := RunAsync(compiled, g, AsyncConfig{Seed: seed, Adversary: adv})
		if refErr != nil || gotErr != nil {
			t.Fatalf("seed %d: errors ref=%v got=%v", seed, refErr, gotErr)
		}
		if got.Time != ref.Time || got.Steps != ref.Steps || got.Lost != ref.Lost ||
			got.Transmissions != ref.Transmissions ||
			math.Abs(got.TimeUnits-ref.TimeUnits) != 0 {
			t.Fatalf("seed %d: (Time, Steps, Lost, Tx, TU) = (%v, %d, %d, %d, %v), reference (%v, %d, %d, %d, %v)",
				seed, got.Time, got.Steps, got.Lost, got.Transmissions, got.TimeUnits,
				ref.Time, ref.Steps, ref.Lost, ref.Transmissions, ref.TimeUnits)
		}
		for v := range ref.States {
			if got.States[v] != ref.States[v] {
				t.Fatalf("seed %d: state of node %d diverged", seed, v)
			}
		}
	}
}

// TestAsyncScratchReuse checks that one scratch arena reused across
// runs (different seeds, then a different machine) yields exactly the
// same results as fresh arenas.
func TestAsyncScratchReuse(t *testing.T) {
	g := graph.GnpConnected(20, 0.25, xrand.New(6))
	compiled, err := synchro.CompileRound(miniRound())
	if err != nil {
		t.Fatal(err)
	}
	prog := Compile(compiled, g)
	scr := NewScratch()
	for seed := uint64(0); seed < 6; seed++ {
		adv := UniformRandom{Seed: seed}
		fresh, err1 := prog.RunAsync(AsyncConfig{Seed: seed, Adversary: adv})
		reused, err2 := prog.RunAsyncReusing(AsyncConfig{Seed: seed, Adversary: adv}, scr)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: errors %v / %v", seed, err1, err2)
		}
		if fresh.Time != reused.Time || fresh.Steps != reused.Steps || fresh.Lost != reused.Lost {
			t.Fatalf("seed %d: scratch reuse diverged: (%v,%d,%d) vs (%v,%d,%d)",
				seed, reused.Time, reused.Steps, reused.Lost, fresh.Time, fresh.Steps, fresh.Lost)
		}
		for v := range fresh.States {
			if fresh.States[v] != reused.States[v] {
				t.Fatalf("seed %d: node %d state diverged under scratch reuse", seed, v)
			}
		}
	}
	// Same scratch, different machine: the machine-keyed memos must
	// invalidate, not leak rows across machines.
	g2 := graph.Cycle(12)
	prog2 := Compile(flood2(), g2)
	fresh, err1 := prog2.RunAsync(AsyncConfig{Seed: 1, Adversary: UniformRandom{Seed: 2}})
	reused, err2 := prog2.RunAsyncReusing(AsyncConfig{Seed: 1, Adversary: UniformRandom{Seed: 2}}, scr)
	if err1 != nil || err2 != nil {
		t.Fatalf("machine switch: errors %v / %v", err1, err2)
	}
	for v := range fresh.States {
		if fresh.States[v] != reused.States[v] {
			t.Fatalf("machine switch: node %d state diverged", v)
		}
	}
}

// miniRound is a small convergent round protocol whose synchronizer
// compilation spends most of its steps waiting (pause spins) and
// flipping on delivered letters — the access pattern the parking fast
// path and its epoch invalidation live on.
func miniRound() *nfsm.RoundProtocol {
	const (
		stA nfsm.State = iota
		stB
		stDone
	)
	return &nfsm.RoundProtocol{
		Name:        "mini",
		StateNames:  []string{"A", "B", "DONE"},
		LetterNames: []string{"x", "y"},
		Input:       []nfsm.State{stA},
		Output:      []bool{false, false, true},
		Initial:     0,
		B:           2,
		Transition: func(q nfsm.State, counts []nfsm.Count) []nfsm.Move {
			switch q {
			case stA:
				// Announce, with a random dawdle so multi-move rows occur.
				return []nfsm.Move{{Next: stB, Emit: 1}, {Next: stA, Emit: 1}}
			case stB:
				if counts[1] >= 1 {
					return []nfsm.Move{{Next: stDone, Emit: 1}}
				}
				return []nfsm.Move{{Next: stB, Emit: nfsm.NoLetter}}
			default:
				return []nfsm.Move{{Next: stDone, Emit: nfsm.NoLetter}}
			}
		},
	}
}

// flood2 is a small literal protocol for the machine-switch check.
func flood2() *nfsm.Protocol {
	stay := func(q nfsm.State) []nfsm.Move { return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}} }
	return &nfsm.Protocol{
		Name:        "flood2",
		StateNames:  []string{"idle", "done"},
		LetterNames: []string{"ping", "quiet"},
		Input:       []nfsm.State{0},
		Output:      []bool{false, true},
		Initial:     1,
		B:           1,
		Query:       []nfsm.Letter{0, 0},
		Delta: [][][]nfsm.Move{
			{{{Next: 0, Emit: 0}, {Next: 1, Emit: 0}}, {{Next: 1, Emit: 0}}},
			{stay(1), stay(1)},
		},
	}
}
