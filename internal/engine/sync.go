package engine

import (
	"fmt"

	"stoneage/internal/channel"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/scenario"
)

// SyncConfig parameterizes a locally synchronous run.
type SyncConfig struct {
	// Seed keys every random choice of the run.
	Seed uint64
	// MaxRounds aborts the run with ErrNoConvergence when exceeded.
	// Zero selects a generous default of 1<<20 rounds.
	MaxRounds int
	// Init optionally assigns per-node initial states (length n). Nil
	// starts every node in the machine's default input state. This is
	// how per-node input (Section 2, "Input and Output") is delivered,
	// e.g. the tape contents of the Lemma 6.2 rLBA simulation.
	Init []nfsm.State
	// Observer, when non-nil, is invoked after every round with the
	// round index and the current state vector (not a copy; observers
	// must not retain or modify it). Used by the analysis
	// instrumentation of Sections 4 and 5.
	Observer func(round int, states []nfsm.State)
	// Workers shards the per-round compute and deliver phases across
	// goroutines. Zero selects GOMAXPROCS, scaled down so every worker
	// keeps at least minShard nodes; an explicit positive value is used
	// as given. The result is bit-identical for every worker count —
	// every node's move is drawn from the node-indexed deterministic
	// coin, independent of evaluation order. Machines whose transition
	// is not known to be pure (e.g. the lazily-interning synchro
	// compilers) always run on one worker. Dynamic runs (Scenario set)
	// are sequential; Workers is ignored there.
	Workers int
	// Scenario, when non-nil and non-empty, makes the run dynamic: the
	// engine applies each mutation batch after round int(Batch.At)
	// completes, carries surviving node and port state across topology
	// re-binds, resets perturbed nodes per the scenario's reset policy
	// (which must be concrete — the protocol layer resolves ResetAuto),
	// and reports recovery metrics. Nil or empty scenarios take the
	// unchanged static path.
	Scenario *scenario.Scenario
	// Channel, when non-nil, subjects every transmission to an
	// unreliable-link model, realized as a per-round port filter: each
	// per-neighbor copy is expanded through the model into zero or more
	// delivered fates (dropped, duplicated, corrupted, or — for a
	// reordering model — delayed by whole rounds; see package channel).
	// Channel runs are sequential like dynamic runs; a nil Channel is
	// the unchanged path.
	Channel channel.Model
	// Backend selects the synchronous executor. Empty means automatic:
	// the bit-plane packed backend (see packed.go) when the machine is
	// packed-eligible, the run is static (no Scenario, no Channel) and
	// the graph is large enough to profit; the flat executor otherwise.
	// BackendFlat forces the flat executor; BackendPacked forces the
	// packed one and errors when the machine or run shape does not
	// support it. All backends are bit-identical on the runs they
	// share, so the choice is purely a performance knob.
	Backend string
}

// SyncResult reports a completed synchronous run.
type SyncResult struct {
	// Rounds is the number of rounds until the first output
	// configuration (for a dynamic run: the first output configuration
	// of the awake nodes after the last mutation batch).
	Rounds int
	// Transmissions counts non-ε letter transmissions.
	Transmissions int64
	// States is the final state of every node.
	States []nfsm.State

	// PerturbedAt lists, for a dynamic run, the round each mutation
	// batch was applied after (batch i applied between rounds
	// PerturbedAt[i] and PerturbedAt[i]+1). Nil for static runs.
	PerturbedAt []int
	// RecoveryRounds is the recovery-time metric of a dynamic run: the
	// rounds from the last perturbation to the final valid output
	// configuration (0 when nothing was perturbed).
	RecoveryRounds int
	// FinalGraph is the post-mutation topology of a dynamic run — the
	// graph any output validator must be checked against. Nil for
	// static runs (the input graph is the final graph).
	FinalGraph *graph.Graph

	// Channel-model bookkeeping (all zero when no model is configured).
	// Dropped, Duplicated and Corrupted count the model's per-copy
	// decisions; Delayed counts copies assigned a non-zero extra delay
	// (attempted reorders); Reordered counts deliveries scheduled for an
	// earlier round than an already-scheduled one on the same directed
	// edge (the attempts that materialized); Severed counts delayed
	// deliveries whose edge was removed before their due round.
	Dropped    int64
	Duplicated int64
	Delayed    int64
	Reordered  int64
	Corrupted  int64
	Severed    int64
}

// RunSync executes machine m on graph g in a locally synchronous
// environment: in every round each node observes the clamped counts over
// its ports, applies δ, and all transmissions become visible in the
// neighbors' ports at the start of the next round. This realizes
// synchronization properties (S1) and (S2) exactly.
//
// RunSync executes through the compiled fast path: it lowers m against g
// with Compile and runs the flat program. Callers that execute the same
// machine on the same graph repeatedly should Compile once and invoke
// Program.RunSync directly to amortize the lowering. The original
// interpreting engine survives as RunSyncRef; the two are bit-identical
// (TestDifferentialSyncEngines).
func RunSync(m nfsm.Machine, g *graph.Graph, cfg SyncConfig) (*SyncResult, error) {
	return Compile(m, g).RunSync(cfg)
}

// RunSyncRef is the reference synchronous engine: a direct transcription
// of the model — interface dispatch into m.Moves, full count-vector
// recomputation per node per round, nested-slice adjacency. It is kept
// as the oracle the compiled executor is differentially tested against;
// use RunSync everywhere else.
func RunSyncRef(m nfsm.Machine, g *graph.Graph, cfg SyncConfig) (*SyncResult, error) {
	if !cfg.Scenario.Empty() || cfg.Channel != nil {
		return runSyncRefScenario(m, g, cfg)
	}
	n := g.N()
	states, err := initialStates(m, n, cfg.Init)
	if err != nil {
		return nil, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1 << 20
	}

	topo := newPortTopology(g)
	cnt := newCounter(m)

	// ports[v][i] holds the last letter delivered from g.Neighbors(v)[i].
	ports := make([][]nfsm.Letter, n)
	for v := 0; v < n; v++ {
		ports[v] = make([]nfsm.Letter, g.Degree(v))
		for i := range ports[v] {
			ports[v][i] = m.InitialLetter()
		}
	}

	res := &SyncResult{States: states}
	outputs := countOutputs(m, states)
	if outputs == n {
		return res, nil
	}

	// emits[v] buffers node v's transmission for end-of-round delivery.
	emits := make([]nfsm.Letter, n)

	for round := 1; round <= maxRounds; round++ {
		for v := 0; v < n; v++ {
			q := states[v]
			moves := m.Moves(q, cnt.counts(q, ports[v]))
			if len(moves) == 0 {
				return nil, fmt.Errorf("engine: δ empty at node %d state %d round %d", v, q, round)
			}
			mv := nfsm.PickMove(cfg.Seed, v, round, moves)
			if m.IsOutput(mv.Next) != m.IsOutput(q) {
				if m.IsOutput(mv.Next) {
					outputs++
				} else {
					outputs--
				}
			}
			states[v] = mv.Next
			emits[v] = mv.Emit
		}
		// Deliver all transmissions: visible from the next round on.
		for v := 0; v < n; v++ {
			l := emits[v]
			if l == nfsm.NoLetter {
				continue
			}
			res.Transmissions++
			for i, u := range g.Neighbors(v) {
				ports[u][topo.rev[v][i]] = l
			}
		}
		if cfg.Observer != nil {
			cfg.Observer(round, states)
		}
		if outputs == n {
			res.Rounds = round
			return res, nil
		}
	}
	return nil, fmt.Errorf("%w: %s after %d rounds", ErrNoConvergence, machineName(m), maxRounds)
}

func machineName(m nfsm.Machine) string {
	switch p := m.(type) {
	case *nfsm.Protocol:
		return p.Name
	case *nfsm.RoundProtocol:
		return p.Name
	default:
		return fmt.Sprintf("%T", m)
	}
}
