package engine

import "stoneage/internal/xrand"

// Adversary is an oblivious adversarial policy (Section 2): it fixes every
// step length L_{v,t} and every delivery delay D_{v,t,u} as a function of
// the coordinates alone, independent of the protocol's coin tosses.
// Implementations must return strictly positive finite values; they should
// keep values in (0, 1] so that the paper's time-unit normalization (divide
// by the maximum parameter) is directly comparable across policies.
type Adversary interface {
	// StepLength returns L_{v,t}, the length of step t of node v.
	StepLength(node, step int) float64
	// Delay returns D_{v,t,u}, the delivery delay of the message
	// transmitted by node v at step t toward neighbor u.
	Delay(from, step, to int) float64
}

// TieFree is an optional Adversary capability gating the asynchronous
// executor's parking fast path (silent-chain virtualization and spin
// replay). An adversary may declare TieFreeTimes when
//
//   - every delivery delay carries independent random mantissa entropy
//     (values of the form k/2⁵³ with k drawn from the full 53-bit
//     range), so a delivery almost surely never shares its exact
//     float64 time with any step; and
//   - every node's step length is either fresh-entropy per step (its
//     step times then almost surely never tie anything) or constant
//     for that node, with distinct constants distinguishable in the
//     top 44 bits of their float64 representation.
//
// Under this contract the only event pairs that can share an exact
// time are steps of constant-step-length nodes, and the reference
// engine's push-order tie-break for those is derivable without
// materializing every push: larger current step length first (its push
// happened strictly earlier), node index on equal lengths (equal-length
// chains recurse to the initial pushes, which are in node order). The
// executor encodes exactly that into the step events' tie keys (see
// stepKey), so parking — which elides and reorders pushes — still pops
// the reference engine's sequence event for event. Policies whose step
// lengths vary per step over commensurable values (Synchronous, Drift)
// must not declare it. Networks must stay below 2²⁰ nodes (the tie
// key's index field); the differential and fuzz walls would surface
// any violation as a mismatch against the reference engine.
type TieFree interface {
	TieFreeTimes() bool
}

// StepBatcher is an optional Adversary fast path: StepLengths fills
// buf[i] with StepLength(node, from+i) for consecutive step indices.
// Implementations must be bit-identical to per-call StepLength — the
// executor mixes the two freely (batching the parked-node replay loop,
// calling StepLength elsewhere) and the differential tests compare the
// resulting runs against the reference engine's per-call sequence.
// Hoisting the per-node part of the hash derivation out of the loop is
// what makes replaying millions of skipped steps cheap.
type StepBatcher interface {
	StepLengths(node, from int, buf []float64)
}

// Synchronous is the degenerate policy in which every step lasts exactly
// one time unit and every delivery takes exactly one time unit. It is the
// natural baseline for overhead measurements.
type Synchronous struct{}

var _ Adversary = Synchronous{}

// StepLength implements Adversary.
func (Synchronous) StepLength(int, int) float64 { return 1 }

// Delay implements Adversary.
func (Synchronous) Delay(int, int, int) float64 { return 1 }

// unitFloat derives a deterministic value in (0, 1] from coordinates.
func unitFloat(coords ...uint64) float64 {
	return float64(xrand.Mix(coords...)>>11+1) / (1 << 53)
}

// UniformRandom draws every parameter independently and uniformly from
// (lo, hi] ⊆ (0, 1], deterministically from its seed.
type UniformRandom struct {
	// Seed keys the policy.
	Seed uint64
	// MinStep and MaxStep bound step lengths; zero values select (0, 1].
	MinStep, MaxStep float64
	// MinDelay and MaxDelay bound delays; zero values select (0, 1].
	MinDelay, MaxDelay float64
}

var (
	_ Adversary   = UniformRandom{}
	_ TieFree     = UniformRandom{}
	_ StepBatcher = UniformRandom{}
)

// TieFreeTimes implements TieFree: every parameter is a fresh 53-bit
// uniform draw.
func (UniformRandom) TieFreeTimes() bool { return true }

// StepLengths implements StepBatcher, bit-identical to StepLength with
// the (seed, salt, node) prefix of the hash chain hoisted out of the
// loop.
func (a UniformRandom) StepLengths(node, from int, buf []float64) {
	pre := xrand.Mix(a.Seed, 0x5745, uint64(node))
	for i := range buf {
		u := float64(xrand.MixWord(pre, uint64(from+i))>>11+1) / (1 << 53)
		buf[i] = scaled(u, a.MinStep, a.MaxStep)
	}
}

func scaled(u, lo, hi float64) float64 {
	if hi <= 0 {
		hi = 1
	}
	if lo < 0 || lo > hi {
		lo = 0
	}
	return lo + u*(hi-lo)
}

// StepLength implements Adversary.
func (a UniformRandom) StepLength(node, step int) float64 {
	return scaled(unitFloat(a.Seed, 0x5745, uint64(node), uint64(step)), a.MinStep, a.MaxStep)
}

// Delay implements Adversary.
func (a UniformRandom) Delay(from, step, to int) float64 {
	return scaled(unitFloat(a.Seed, 0xde1a, uint64(from), uint64(step), uint64(to)), a.MinDelay, a.MaxDelay)
}

// Skew partitions the nodes into a fast half and a slow half: fast nodes
// take steps of length Ratio (default 1/16) while slow nodes take unit
// steps, with uniformly random delays. It stresses the synchronizer's
// pausing feature: fast nodes must stall for slow neighbors.
type Skew struct {
	// Seed keys the delay randomness.
	Seed uint64
	// Ratio is the fast-node step length in (0, 1]; zero selects 1/16.
	Ratio float64
}

var (
	_ Adversary = Skew{}
	_ TieFree   = Skew{}
)

// TieFreeTimes implements TieFree: step lengths are per-node constants
// (Ratio for the fast half, 1 for the slow half) and delays carry
// fresh 53-bit entropy.
func (Skew) TieFreeTimes() bool { return true }

// StepLength implements Adversary.
func (a Skew) StepLength(node, step int) float64 {
	r := a.Ratio
	if r <= 0 || r > 1 {
		r = 1.0 / 16
	}
	if node%2 == 0 {
		return r
	}
	return 1
}

// Delay implements Adversary.
func (a Skew) Delay(from, step, to int) float64 {
	return unitFloat(a.Seed, 0x534b, uint64(from), uint64(step), uint64(to))
}

// Overwriter makes even-indexed nodes step two orders of magnitude faster
// than odd-indexed nodes while deliveries are nearly instantaneous, so a
// fast sender writes many letters into a slow receiver's port between two
// of the receiver's steps — earlier letters are overwritten unobserved. It
// exercises the "messages can be lost" clause of the model (footnote 4).
type Overwriter struct {
	// Seed keys the jitter that breaks event ties.
	Seed uint64
}

var (
	_ Adversary   = Overwriter{}
	_ TieFree     = Overwriter{}
	_ StepBatcher = Overwriter{}
)

// TieFreeTimes implements TieFree: delays always carry a fresh 53-bit
// jitter term, and step lengths are per-node either fresh-entropy
// (even nodes) or the constant 1 (odd nodes) — the constant-length
// clause of the contract. Odd nodes therefore tie at integer times
// constantly, which is exactly what the step tie keys reproduce.
func (Overwriter) TieFreeTimes() bool { return true }

// StepLengths implements StepBatcher (bit-identical to StepLength).
func (a Overwriter) StepLengths(node, from int, buf []float64) {
	if node%2 != 0 {
		for i := range buf {
			buf[i] = 1
		}
		return
	}
	pre := xrand.Mix(a.Seed, 0x6f77, uint64(node))
	for i := range buf {
		u := float64(xrand.MixWord(pre, uint64(from+i))>>11+1) / (1 << 53)
		buf[i] = 0.01 + 0.005*u
	}
}

// StepLength implements Adversary.
func (a Overwriter) StepLength(node, step int) float64 {
	if node%2 == 0 {
		return 0.01 + 0.005*unitFloat(a.Seed, 0x6f77, uint64(node), uint64(step))
	}
	return 1
}

// Delay implements Adversary.
func (a Overwriter) Delay(from, step, to int) float64 {
	return 0.005 + 0.005*unitFloat(a.Seed, 0x6f64, uint64(from), uint64(step), uint64(to))
}

// Drift gives every node a smoothly varying step length with a
// node-dependent phase, so the relative speeds of neighbors keep changing
// over the execution — no static fast/slow partition a protocol could
// accidentally exploit.
type Drift struct {
	// Seed keys the per-node phases.
	Seed uint64
	// Period is the number of steps per speed cycle; zero selects 64.
	Period int
}

var _ Adversary = Drift{}

// StepLength implements Adversary.
func (a Drift) StepLength(node, step int) float64 {
	period := a.Period
	if period <= 0 {
		period = 64
	}
	phase := int(xrand.Mix(a.Seed, 0xd1f7, uint64(node)) % uint64(period))
	// Triangle wave over [0.1, 1].
	pos := (step + phase) % period
	half := period / 2
	var frac float64
	if pos < half {
		frac = float64(pos) / float64(half)
	} else {
		frac = float64(period-pos) / float64(period-half)
	}
	return 0.1 + 0.9*frac
}

// Delay implements Adversary.
func (a Drift) Delay(from, step, to int) float64 {
	return unitFloat(a.Seed, 0xd1fd, uint64(from), uint64(step), uint64(to))
}

// NamedAdversaries returns the standard policy suite used by the
// experiment harness, keyed by name, all seeded from the given seed.
func NamedAdversaries(seed uint64) map[string]Adversary {
	return map[string]Adversary{
		"sync":       Synchronous{},
		"uniform":    UniformRandom{Seed: seed},
		"skew":       Skew{Seed: seed},
		"overwriter": Overwriter{Seed: seed},
		"drift":      Drift{Seed: seed},
	}
}
