package engine_test

// The dynamic-network differential suite: the fast dynamic executors
// (runSyncScenario / runAsyncScenario behind the Scenario config hooks)
// must be bit-identical to the independent dynamic reference engines on
// every (machine, graph, scenario, seed) cell — rounds/times, counts,
// states, perturbation log, recovery metrics and the final graph. The
// fuzz targets in fuzz_test.go extend the same comparison to arbitrary
// machines and scenarios.

import (
	"errors"
	"fmt"
	"testing"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/mis"
	"stoneage/internal/nfsm"
	"stoneage/internal/scenario"
	"stoneage/internal/xrand"
)

// dynDefs spans every scenario kind and reset policy the generators
// produce (reset must be concrete at engine level).
func dynDefs() []scenario.Def {
	return []scenario.Def{
		{Kind: "none"},
		{Kind: "crash", Frac: 0.3, At: scenario.Round(3), Every: 6, Reset: "none"},
		{Kind: "crash", Frac: 0.5, At: scenario.Round(2), Every: 4, Reset: "all"},
		{Kind: "churn", Rate: 2, Count: 3, At: scenario.Round(2), Every: 5, Reset: "touched"},
		{Kind: "churn", Rate: 3, Count: 2, At: scenario.Round(1), Every: 7, Reset: "neighborhood"},
		{Kind: "churn", Rate: 1, Count: 4, At: scenario.Round(4), Every: 4, Reset: "all"},
		{Kind: "wake", Frac: 0.25, Count: 3, At: scenario.Round(2), Every: 3, Reset: "none"},
		{Kind: "wake", Frac: 0.5, Count: 2, At: scenario.Round(1), Every: 6, Reset: "touched"},
	}
}

func dynGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.Path(9),
		graph.Cycle(12),
		graph.Star(8),
		graph.Gnp(24, 0.15, xrand.New(5)),
		graph.GnpConnected(32, 4.0/32, xrand.New(9)),
	}
}

func sameStates(a, b []nfsm.State) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameGraph(a, b *graph.Graph) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

// TestDifferentialDynamicSync compares the compiled dynamic executor
// with the dynamic reference engine across machines, graphs, scenarios
// and seeds.
func TestDifferentialDynamicSync(t *testing.T) {
	machines := []nfsm.Machine{mis.Protocol(), flood()}
	for _, m := range machines {
		for gi, g0 := range dynGraphs() {
			for di, def := range dynDefs() {
				for seed := uint64(1); seed <= 3; seed++ {
					sc, err := def.Generate(g0, seed*31+uint64(di))
					if err != nil {
						t.Fatal(err)
					}
					name := fmt.Sprintf("%T/g%d/%s-%s/seed%d", m, gi, def.Name(), def.Reset, seed)
					cfg := engine.SyncConfig{Seed: seed, MaxRounds: 512, Scenario: sc}
					ref, refErr := engine.RunSyncRef(m, g0, cfg)
					got, gotErr := engine.RunSync(m, g0, cfg)
					if refErr != nil || gotErr != nil {
						if refErr == nil || gotErr == nil || refErr.Error() != gotErr.Error() {
							t.Fatalf("%s: error mismatch:\nreference: %v\ncompiled:  %v", name, refErr, gotErr)
						}
						continue
					}
					if got.Rounds != ref.Rounds || got.Transmissions != ref.Transmissions ||
						got.RecoveryRounds != ref.RecoveryRounds {
						t.Fatalf("%s: (rounds, tx, recovery) = (%d, %d, %d), reference (%d, %d, %d)",
							name, got.Rounds, got.Transmissions, got.RecoveryRounds,
							ref.Rounds, ref.Transmissions, ref.RecoveryRounds)
					}
					if len(got.PerturbedAt) != len(ref.PerturbedAt) {
						t.Fatalf("%s: %d perturbations, reference %d", name, len(got.PerturbedAt), len(ref.PerturbedAt))
					}
					for i := range got.PerturbedAt {
						if got.PerturbedAt[i] != ref.PerturbedAt[i] {
							t.Fatalf("%s: perturbation %d at round %d, reference %d",
								name, i, got.PerturbedAt[i], ref.PerturbedAt[i])
						}
					}
					if !sameStates(got.States, ref.States) {
						t.Fatalf("%s: final states diverge", name)
					}
					if !sameGraph(got.FinalGraph, ref.FinalGraph) {
						t.Fatalf("%s: final graphs diverge", name)
					}
					if !sc.Empty() {
						if err := got.FinalGraph.Validate(); err != nil {
							t.Fatalf("%s: final graph invalid: %v", name, err)
						}
					}
				}
			}
		}
	}
}

// TestDifferentialDynamicAsync does the same for the asynchronous
// executors, across the adversary suite.
func TestDifferentialDynamicAsync(t *testing.T) {
	machines := []nfsm.Machine{mis.Protocol(), flood()}
	advNames := []string{"sync", "uniform", "skew", "drift"}
	for _, m := range machines {
		for gi, g0 := range dynGraphs()[:3] {
			for di, def := range dynDefs() {
				seed := uint64(7 + di)
				sc, err := def.Generate(g0, seed)
				if err != nil {
					t.Fatal(err)
				}
				advName := advNames[(gi+di)%len(advNames)]
				name := fmt.Sprintf("%T/g%d/%s-%s/%s", m, gi, def.Name(), def.Reset, advName)
				mkCfg := func() engine.AsyncConfig {
					return engine.AsyncConfig{
						Seed:      seed,
						Adversary: engine.NamedAdversaries(seed + 3)[advName],
						MaxSteps:  1 << 16,
						Scenario:  sc,
					}
				}
				ref, refErr := engine.RunAsyncRef(m, g0, mkCfg())
				got, gotErr := engine.RunAsync(m, g0, mkCfg())
				if refErr != nil || gotErr != nil {
					if refErr == nil || gotErr == nil || refErr.Error() != gotErr.Error() {
						t.Fatalf("%s: error mismatch:\nreference: %v\ncompiled:  %v", name, refErr, gotErr)
					}
					continue
				}
				if got.Time != ref.Time || got.TimeUnits != ref.TimeUnits ||
					got.RecoveryTime != ref.RecoveryTime || got.RecoveryTimeUnits != ref.RecoveryTimeUnits {
					t.Fatalf("%s: (time, units, rec, recUnits) = (%v, %v, %v, %v), reference (%v, %v, %v, %v)",
						name, got.Time, got.TimeUnits, got.RecoveryTime, got.RecoveryTimeUnits,
						ref.Time, ref.TimeUnits, ref.RecoveryTime, ref.RecoveryTimeUnits)
				}
				if got.Steps != ref.Steps || got.Transmissions != ref.Transmissions || got.Lost != ref.Lost {
					t.Fatalf("%s: (steps, tx, lost) = (%d, %d, %d), reference (%d, %d, %d)",
						name, got.Steps, got.Transmissions, got.Lost, ref.Steps, ref.Transmissions, ref.Lost)
				}
				if len(got.PerturbedAt) != len(ref.PerturbedAt) {
					t.Fatalf("%s: %d perturbations, reference %d", name, len(got.PerturbedAt), len(ref.PerturbedAt))
				}
				for i := range got.PerturbedAt {
					if got.PerturbedAt[i] != ref.PerturbedAt[i] {
						t.Fatalf("%s: perturbation %d at %v, reference %v",
							name, i, got.PerturbedAt[i], ref.PerturbedAt[i])
					}
				}
				if !sameStates(got.States, ref.States) {
					t.Fatalf("%s: final states diverge", name)
				}
				if !sameGraph(got.FinalGraph, ref.FinalGraph) {
					t.Fatalf("%s: final graphs diverge", name)
				}
			}
		}
	}
}

// TestDynamicStaticParity pins the dispatch: a nil scenario and an
// empty scenario take the static path and agree with a plain static
// run bit for bit, with no dynamic extras reported.
func TestDynamicStaticParity(t *testing.T) {
	m := mis.Protocol()
	g := graph.GnpConnected(48, 4.0/48, xrand.New(2))
	base, err := engine.RunSync(m, g, engine.SyncConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []*scenario.Scenario{nil, {}, {Name: "noop"}} {
		got, err := engine.RunSync(m, g, engine.SyncConfig{Seed: 9, Scenario: sc})
		if err != nil {
			t.Fatal(err)
		}
		if got.Rounds != base.Rounds || got.Transmissions != base.Transmissions || !sameStates(got.States, base.States) {
			t.Fatalf("scenario %v perturbed a static run", sc)
		}
		if got.PerturbedAt != nil || got.FinalGraph != nil || got.RecoveryRounds != 0 {
			t.Fatalf("scenario %v: static run reports dynamic extras", sc)
		}
	}
}

// TestScenarioRejection pins the failure modes both engines must share:
// unresolved auto reset policy and invalid mutation schedules.
func TestScenarioRejection(t *testing.T) {
	m := mis.Protocol()
	g := graph.Path(6)
	bad := []*scenario.Scenario{
		{Reset: scenario.ResetAuto, Batches: []scenario.Batch{{At: 1, Muts: []graph.Mutation{{Kind: graph.MutCrashNode, U: 0}}}}},
		{Reset: scenario.ResetNone, Batches: []scenario.Batch{{At: 1, Muts: []graph.Mutation{{Kind: graph.MutRemoveEdge, U: 0, V: 5}}}}},
		{Reset: scenario.ResetNone, Asleep: []int{99}},
	}
	for i, sc := range bad {
		_, fastErr := engine.RunSync(m, g, engine.SyncConfig{Seed: 1, Scenario: sc})
		_, refErr := engine.RunSyncRef(m, g, engine.SyncConfig{Seed: 1, Scenario: sc})
		if fastErr == nil || refErr == nil {
			t.Fatalf("bad scenario %d accepted (fast=%v ref=%v)", i, fastErr, refErr)
		}
		if fastErr.Error() != refErr.Error() {
			t.Fatalf("bad scenario %d: engines disagree:\nfast: %v\nref:  %v", i, fastErr, refErr)
		}
		_, aFastErr := engine.RunAsync(m, g, engine.AsyncConfig{Seed: 1, Scenario: sc})
		_, aRefErr := engine.RunAsyncRef(m, g, engine.AsyncConfig{Seed: 1, Scenario: sc})
		if aFastErr == nil || aRefErr == nil || aFastErr.Error() != aRefErr.Error() {
			t.Fatalf("bad scenario %d (async): fast=%v ref=%v", i, aFastErr, aRefErr)
		}
	}
}

// TestMISChurnRecovery is the end-to-end acceptance check: MIS under
// Poisson edge churn with the global-reset discipline recovers to a
// valid maximal independent set after every perturbation. The test
// reconstructs the graph timeline from the scenario and asserts, for
// each perturbation, that the next all-output configuration is a valid
// MIS of the graph as it stood at that point.
func TestMISChurnRecovery(t *testing.T) {
	m := mis.Protocol()
	g0 := graph.GnpConnected(40, 4.0/40, xrand.New(21))
	def := scenario.Def{Kind: "churn", Rate: 3, Count: 4, At: scenario.Round(6), Every: 40, Reset: "all"}
	sc, err := def.Generate(g0, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Batches) == 0 {
		t.Fatal("churn generated no batches")
	}

	// Record the full state timeline.
	var timeline [][]nfsm.State
	res, err := engine.RunSync(m, g0, engine.SyncConfig{
		Seed: 5, MaxRounds: 4096, Scenario: sc,
		Observer: func(round int, states []nfsm.State) {
			timeline = append(timeline, append([]nfsm.State(nil), states...))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerturbedAt) != len(sc.Batches) {
		t.Fatalf("%d perturbations recorded, want %d", len(res.PerturbedAt), len(sc.Batches))
	}

	// Replay the mutations to know the graph after each batch, and for
	// every perturbation find the next all-output round and validate it
	// as an MIS of the then-current graph.
	gcur := g0.Clone()
	for bi, b := range sc.Batches {
		for _, mu := range b.Muts {
			if err := mu.Apply(gcur); err != nil {
				t.Fatal(err)
			}
		}
		nextPerturb := len(timeline)
		if bi+1 < len(res.PerturbedAt) {
			nextPerturb = res.PerturbedAt[bi+1]
		}
		recovered := false
		for r := res.PerturbedAt[bi]; r < nextPerturb; r++ {
			states := timeline[r] // timeline[r] = states after round r+1
			inSet, err := mis.Extract(states)
			if err != nil {
				continue // not yet an output configuration
			}
			if err := gcur.IsMaximalIndependentSet(inSet); err != nil {
				t.Fatalf("perturbation %d: output configuration at round %d is not an MIS: %v", bi, r+1, err)
			}
			recovered = true
			break
		}
		if !recovered {
			t.Fatalf("perturbation %d (round %d): no valid output configuration before the next perturbation",
				bi, res.PerturbedAt[bi])
		}
	}

	// The final configuration must be an MIS of the final graph.
	finalSet, err := mis.Extract(res.States)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FinalGraph.IsMaximalIndependentSet(finalSet); err != nil {
		t.Fatalf("final configuration is not an MIS of the final graph: %v", err)
	}
	if !sameGraph(res.FinalGraph, gcur) {
		t.Fatal("FinalGraph does not match the replayed mutation sequence")
	}
	if res.RecoveryRounds <= 0 || res.Rounds-res.RecoveryRounds != res.PerturbedAt[len(res.PerturbedAt)-1] {
		t.Fatalf("recovery metric inconsistent: rounds=%d recovery=%d perturbedAt=%v",
			res.Rounds, res.RecoveryRounds, res.PerturbedAt)
	}
}

// TestAsyncMaxStepsAbort pins AsyncConfig.MaxSteps under adversarial
// delays: a machine with an unreachable output state must abort with
// ErrNoConvergence at the budget, identically in both engines, under
// every adversary policy.
func TestAsyncMaxStepsAbort(t *testing.T) {
	stay := func(q nfsm.State) []nfsm.Move { return []nfsm.Move{{Next: q, Emit: 0}} }
	spin := &nfsm.Protocol{
		Name:        "spin",
		StateNames:  []string{"a", "b", "done"},
		LetterNames: []string{"tick"},
		Input:       []nfsm.State{0},
		Output:      []bool{false, false, true},
		Initial:     0,
		B:           1,
		Query:       []nfsm.Letter{0, 0, 0},
		Delta: [][][]nfsm.Move{
			{{{Next: 1, Emit: 0}}, {{Next: 1, Emit: 0}}},
			{{{Next: 0, Emit: 0}}, {{Next: 0, Emit: 0}}},
			{stay(2), stay(2)},
		},
	}
	if err := spin.Validate(); err != nil {
		t.Fatal(err)
	}
	g := graph.Cycle(8)
	for name := range engine.NamedAdversaries(0) {
		for _, maxSteps := range []int64{1, 64, 1000} {
			mk := func() engine.AsyncConfig {
				return engine.AsyncConfig{
					Seed: 3, Adversary: engine.NamedAdversaries(11)[name], MaxSteps: maxSteps,
				}
			}
			_, gotErr := engine.RunAsync(spin, g, mk())
			_, refErr := engine.RunAsyncRef(spin, g, mk())
			if !errors.Is(gotErr, engine.ErrNoConvergence) {
				t.Fatalf("%s maxSteps=%d: compiled engine returned %v, want ErrNoConvergence", name, maxSteps, gotErr)
			}
			if refErr == nil || gotErr.Error() != refErr.Error() {
				t.Fatalf("%s maxSteps=%d: abort mismatch:\nreference: %v\ncompiled:  %v", name, maxSteps, refErr, gotErr)
			}
		}
	}
}
