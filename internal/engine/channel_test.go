package engine_test

// The unreliable-channel differential suite: under every channel model
// and Byzantine behavior, the fast executors (compiled sync, ladder
// async) must stay bit-identical to the reference engines — States,
// metrics, channel counters, and even the error text when a pathology
// prevents convergence. Both engines route transmissions through
// channel.Expand, so any divergence is an executor bug, not a model
// roll; these tests are the wall that keeps it that way.

import (
	"errors"
	"fmt"
	"testing"

	"stoneage/internal/channel"
	"stoneage/internal/coloring"
	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/mis"
	"stoneage/internal/nfsm"
	"stoneage/internal/scenario"
	"stoneage/internal/ssmis"
	"stoneage/internal/synchro"
	"stoneage/internal/xrand"
)

// channelModels is the model matrix: every single policy plus a stack
// that composes all four (duplicate first, so copies are independently
// dropped, delayed and corrupted downstream).
func channelModels() []channel.Model {
	return []channel.Model{
		channel.Drop{Rate: 0.3, Seed: 11},
		channel.Duplicate{Rate: 0.5, MaxCopies: 3, Seed: 12},
		channel.Reorder{Window: 2, Seed: 13},
		channel.Corrupt{Rate: 0.3, Seed: 14},
		channel.Stack{
			channel.Duplicate{Rate: 0.3, MaxCopies: 4, Seed: 15},
			channel.Drop{Rate: 0.2, Seed: 16},
			channel.Reorder{Window: 1.5, Seed: 17},
			channel.Corrupt{Rate: 0.1, Seed: 18},
		},
	}
}

// byzScenario attaches one node of each Byzantine behavior to the
// graph's first three nodes (ResetNone: the engines reject ResetAuto).
func byzScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Reset: scenario.ResetNone,
		Byzantine: []channel.ByzNode{
			channel.Silent(0),
			channel.StuckAt(1, 0),
			channel.RandomBabbler(2, 99),
		},
	}
}

// compareSync demands bit-identical results (or bit-identical errors)
// between the compiled executor and the reference sync engine.
func compareSync(t *testing.T, m nfsm.Machine, g *graph.Graph, cfg engine.SyncConfig) {
	t.Helper()
	ref, refErr := engine.RunSyncRef(m, g, cfg)
	got, gotErr := engine.Compile(m, g).RunSync(cfg)
	if refErr != nil || gotErr != nil {
		if refErr == nil || gotErr == nil || refErr.Error() != gotErr.Error() {
			t.Fatalf("error mismatch:\nreference: %v\ncompiled:  %v", refErr, gotErr)
		}
		return
	}
	if got.Rounds != ref.Rounds || got.Transmissions != ref.Transmissions {
		t.Errorf("(Rounds, Tx) = (%d, %d), reference (%d, %d)",
			got.Rounds, got.Transmissions, ref.Rounds, ref.Transmissions)
	}
	if got.Dropped != ref.Dropped || got.Duplicated != ref.Duplicated ||
		got.Delayed != ref.Delayed ||
		got.Reordered != ref.Reordered || got.Corrupted != ref.Corrupted ||
		got.Severed != ref.Severed {
		t.Errorf("channel counters (%d,%d,%d,%d,%d,%d), reference (%d,%d,%d,%d,%d,%d)",
			got.Dropped, got.Duplicated, got.Delayed, got.Reordered, got.Corrupted, got.Severed,
			ref.Dropped, ref.Duplicated, ref.Delayed, ref.Reordered, ref.Corrupted, ref.Severed)
	}
	for v := range ref.States {
		if got.States[v] != ref.States[v] {
			t.Fatalf("state of node %d = %d, reference %d", v, got.States[v], ref.States[v])
		}
	}
}

// compareAsync is compareSync's asynchronous counterpart: ladder vs
// reference across every metric the executors report.
func compareAsync(t *testing.T, m nfsm.Machine, g *graph.Graph, cfg func() engine.AsyncConfig) {
	t.Helper()
	ref, refErr := engine.RunAsyncRef(m, g, cfg())
	got, gotErr := engine.RunAsync(m, g, cfg())
	if refErr != nil || gotErr != nil {
		if refErr == nil || gotErr == nil || refErr.Error() != gotErr.Error() {
			t.Fatalf("error mismatch:\nreference: %v\nladder:    %v", refErr, gotErr)
		}
		return
	}
	if got.Time != ref.Time || got.Steps != ref.Steps ||
		got.Transmissions != ref.Transmissions || got.Lost != ref.Lost {
		t.Errorf("(Time, Steps, Tx, Lost) = (%v, %d, %d, %d), reference (%v, %d, %d, %d)",
			got.Time, got.Steps, got.Transmissions, got.Lost,
			ref.Time, ref.Steps, ref.Transmissions, ref.Lost)
	}
	if got.Dropped != ref.Dropped || got.Duplicated != ref.Duplicated ||
		got.Delayed != ref.Delayed ||
		got.Reordered != ref.Reordered || got.Corrupted != ref.Corrupted ||
		got.Severed != ref.Severed {
		t.Errorf("channel counters (%d,%d,%d,%d,%d,%d), reference (%d,%d,%d,%d,%d,%d)",
			got.Dropped, got.Duplicated, got.Delayed, got.Reordered, got.Corrupted, got.Severed,
			ref.Dropped, ref.Duplicated, ref.Delayed, ref.Reordered, ref.Corrupted, ref.Severed)
	}
	for v := range ref.States {
		if got.States[v] != ref.States[v] {
			t.Fatalf("state of node %d = %d, reference %d", v, got.States[v], ref.States[v])
		}
	}
}

// TestDifferentialSyncChannel pins the compiled sync executor to the
// reference under every channel model, with and without Byzantine
// nodes, at several worker counts (channel runs are sequential, but the
// flag must not change results).
func TestDifferentialSyncChannel(t *testing.T) {
	cases := []diffCase{
		{"ssmis/gnp", ssmis.Protocol(), graph.GnpConnected(96, 5.0/96, xrand.New(31))},
		{"mis/torus", mis.Protocol(), graph.Torus(6, 6)},
		{"coloring/tree", coloring.Protocol(), graph.RandomTree(80, xrand.New(32))},
	}
	for _, tc := range cases {
		for mi, model := range channelModels() {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("%s/model=%s/workers=%d", tc.name, model, workers)
				t.Run(name, func(t *testing.T) {
					compareSync(t, tc.m, tc.g, engine.SyncConfig{
						Seed: uint64(40 + mi), Workers: workers,
						MaxRounds: 1 << 12, Channel: model,
					})
				})
			}
		}
		t.Run(tc.name+"/byzantine", func(t *testing.T) {
			compareSync(t, tc.m, tc.g, engine.SyncConfig{
				Seed: 50, MaxRounds: 1 << 12,
				Scenario: byzScenario(),
				Channel:  channel.Drop{Rate: 0.1, Seed: 51},
			})
		})
	}
}

// TestDifferentialAsyncChannel pins the ladder executor to the
// reference under every channel model × adversary, with and without
// Byzantine nodes.
func TestDifferentialAsyncChannel(t *testing.T) {
	compiledMIS, err := synchro.CompileRound(mis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	compiledSS, err := synchro.CompileRound(ssmis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	tolerantMIS, err := synchro.CompileRoundTolerant(mis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	tolerantSS, err := synchro.CompileRoundTolerant(ssmis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	cases := []diffCase{
		{"flood/gnp", flood(), graph.GnpConnected(96, 5.0/96, xrand.New(33))},
		{"compiled-ssmis/gnp", compiledSS, graph.GnpConnected(24, 0.2, xrand.New(34))},
		{"compiled-mis/cycle", compiledMIS, graph.Cycle(12)},
		// The αβ-hybrid machines: their re-pulse transmissions and
		// stall-timer hop chains must stay bit-identical between the
		// ladder (pooled FIFOs, silent-chain parking) and the reference
		// under every model.
		{"tolerant-ssmis/gnp", tolerantSS, graph.GnpConnected(24, 0.2, xrand.New(34))},
		{"tolerant-mis/cycle", tolerantMIS, graph.Cycle(12)},
	}
	const maxSteps = 1 << 17
	for _, tc := range cases {
		for mi, model := range channelModels() {
			for _, advName := range []string{"uniform", "skew"} {
				name := fmt.Sprintf("%s/model=%s/%s", tc.name, model, advName)
				t.Run(name, func(t *testing.T) {
					compareAsync(t, tc.m, tc.g, func() engine.AsyncConfig {
						return engine.AsyncConfig{
							Seed:      uint64(60 + mi),
							Adversary: engine.NamedAdversaries(uint64(70 + mi))[advName],
							MaxSteps:  maxSteps,
							Channel:   model,
						}
					})
				})
			}
		}
		t.Run(tc.name+"/byzantine", func(t *testing.T) {
			compareAsync(t, tc.m, tc.g, func() engine.AsyncConfig {
				return engine.AsyncConfig{
					Seed:      80,
					Adversary: engine.NamedAdversaries(81)["uniform"],
					MaxSteps:  maxSteps,
					Scenario:  byzScenario(),
					Channel:   channel.Reorder{Window: 1, Seed: 82},
				}
			})
		})
	}
}

// TestAsyncReorderWindowWidens pins *when* the async overtake counter
// fires, which the robustness matrix previously only noted in prose.
// Under the self-pacing α-synchronizer a bounded window (2 time units)
// never materializes an overtake — the per-edge send gap grows faster
// than the extra delay — so Reordered stays 0 while the new Delayed
// counter proves the model kept attempting: a live model and a dead one
// are no longer indistinguishable. Widen the window past the send gap
// and the same run starts recording real overtakes.
func TestAsyncReorderWindowWidens(t *testing.T) {
	compiled, err := synchro.CompileRound(ssmis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GnpConnected(24, 0.2, xrand.New(35))
	run := func(window float64) *engine.AsyncResult {
		t.Helper()
		res, err := engine.RunAsync(compiled, g, engine.AsyncConfig{
			Seed: 9, MaxSteps: 1 << 20,
			Adversary: engine.NamedAdversaries(10)["uniform"],
			Channel:   channel.Reorder{Window: window, Seed: 37},
		})
		if err != nil {
			t.Fatalf("window %g: %v", window, err)
		}
		return res
	}
	bounded := run(2)
	if bounded.Delayed == 0 {
		t.Fatal("window 2: Delayed = 0, the model never ran")
	}
	if bounded.Reordered != 0 {
		t.Fatalf("window 2: Reordered = %d, want 0 (self-pacing absorbs bounded windows)", bounded.Reordered)
	}
	widened := run(512)
	if widened.Delayed == 0 {
		t.Fatal("window 512: Delayed = 0, the model never ran")
	}
	if widened.Reordered == 0 {
		t.Fatal("window 512: Reordered = 0, want overtakes once the window outgrows the send gap")
	}
}

// TestChannelDropAllTerminates pins the livelock edge case: a channel
// that loses every transmission must end in ErrNoConvergence when the
// budget runs out — identically on both engines, never by hanging.
func TestChannelDropAllTerminates(t *testing.T) {
	g := graph.Cycle(8)
	black := channel.Drop{Rate: 1, Seed: 5}
	t.Run("sync", func(t *testing.T) {
		_, err := engine.RunSync(mis.Protocol(), g, engine.SyncConfig{
			Seed: 1, MaxRounds: 256, Channel: black,
		})
		if !errors.Is(err, engine.ErrNoConvergence) {
			t.Fatalf("err = %v, want ErrNoConvergence", err)
		}
		compareSync(t, mis.Protocol(), g, engine.SyncConfig{Seed: 1, MaxRounds: 256, Channel: black})
	})
	t.Run("async", func(t *testing.T) {
		compiled, err := synchro.CompileRound(mis.Protocol())
		if err != nil {
			t.Fatal(err)
		}
		cfg := func() engine.AsyncConfig {
			return engine.AsyncConfig{
				Seed: 1, MaxSteps: 1 << 12, Channel: black,
				Adversary: engine.NamedAdversaries(2)["uniform"],
			}
		}
		if _, err := engine.RunAsync(compiled, g, cfg()); !errors.Is(err, engine.ErrNoConvergence) {
			t.Fatalf("err = %v, want ErrNoConvergence", err)
		}
		compareAsync(t, compiled, g, cfg)
	})
}

// TestAsyncChannelDupInvisible pins the pooled-FIFO edge case: a
// Duplicate-only model keeps the ladder's per-edge delivery pool in
// play, and because duplicate copies share their fate they land
// back-to-back on an overwrite-only port — so the run's States must be
// exactly the reliable baseline's, with only the loss accounting
// (overwritten copies) and the Duplicated counter changed.
func TestAsyncChannelDupInvisible(t *testing.T) {
	compiled, err := synchro.CompileRound(ssmis.Protocol())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GnpConnected(24, 0.2, xrand.New(35))
	cfg := func(m channel.Model) engine.AsyncConfig {
		return engine.AsyncConfig{
			Seed: 9, MaxSteps: 1 << 20, Channel: m,
			Adversary: engine.NamedAdversaries(10)["uniform"],
		}
	}
	base, err := engine.RunAsync(compiled, g, cfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	dup := channel.Duplicate{Rate: 0.5, MaxCopies: 4, Seed: 36}
	got, err := engine.RunAsync(compiled, g, cfg(dup))
	if err != nil {
		t.Fatal(err)
	}
	if got.Duplicated == 0 {
		t.Fatal("Duplicate model created no copies; the test exercises nothing")
	}
	if got.Steps != base.Steps || got.Time != base.Time {
		t.Errorf("(Steps, Time) = (%d, %v), baseline (%d, %v): duplication changed the execution",
			got.Steps, got.Time, base.Steps, base.Time)
	}
	for v := range base.States {
		if got.States[v] != base.States[v] {
			t.Fatalf("state of node %d diverged under duplication: FIFO dup copies must be invisible", v)
		}
	}
	compareAsync(t, compiled, g, func() engine.AsyncConfig { return cfg(dup) })
}

// TestChannelByzantineAccounting pins the metric contract: Byzantine
// nodes step and transmit (they are part of the load) but are excluded
// from the output-configuration target, so a run with a Byzantine node
// converges on the honest nodes alone.
func TestChannelByzantineAccounting(t *testing.T) {
	g := graph.Cycle(8)
	sc := &scenario.Scenario{
		Reset:     scenario.ResetNone,
		Byzantine: []channel.ByzNode{channel.RandomBabbler(3, 7)},
	}
	res, err := engine.RunSync(ssmis.Protocol(), g, engine.SyncConfig{
		Seed: 2, MaxRounds: 1 << 12, Scenario: sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transmissions == 0 {
		t.Fatal("no transmissions recorded")
	}
	m := ssmis.Protocol()
	if m.IsOutput(res.States[3]) {
		t.Errorf("byzantine node 3 reached output state %d; it must never run the machine", res.States[3])
	}
	for v := range res.States {
		if v == 3 {
			continue
		}
		if !m.IsOutput(res.States[v]) {
			t.Errorf("honest node %d not in an output state at termination", v)
		}
	}
}
