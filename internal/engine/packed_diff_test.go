package engine_test

// The packed-vs-flat differential wall: the bit-plane backend must be
// bit-identical to the flat executor — same Rounds, Transmissions,
// decoded States, observer streams, and error strings — across
// protocols × graph families × worker counts, on both Graph-bound and
// CSR-only (streamed) bindings. This is the acceptance criterion of
// the bit-plane PR, the packed analogue of TestDifferentialSyncEngines.

import (
	"fmt"
	"testing"

	"stoneage/internal/coloring"
	"stoneage/internal/degcolor"
	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/mis"
	"stoneage/internal/nfsm"
	"stoneage/internal/ssmis"
	"stoneage/internal/xrand"
)

// packedDiffCases is the protocols × families matrix, all at n ≤ 512.
// Every machine here is packed-eligible (asserted by the test).
func packedDiffCases(t *testing.T) []diffCase {
	t.Helper()
	degProto, err := degcolor.Protocol(4)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := graph.ToGraph(graph.RandomGeometricStream(200, graph.GeometricRadius(200, 1.5), 11))
	if err != nil {
		t.Fatal(err)
	}
	return []diffCase{
		{"mis/gnp", mis.Protocol(), graph.GnpConnected(512, 4.0/512, xrand.New(1))},
		{"mis/cycle", mis.Protocol(), graph.Cycle(97)},
		{"mis/clique", mis.Protocol(), graph.Clique(24)},
		{"mis/star", mis.Protocol(), graph.Star(65)},
		{"mis/geo", mis.Protocol(), geo},
		{"mis/tiny", mis.Protocol(), graph.Path(3)},
		{"mis/singleton", mis.Protocol(), graph.New(1)},
		{"ssmis/gnp", ssmis.Protocol(), graph.GnpConnected(300, 5.0/300, xrand.New(2))},
		{"ssmis/torus", ssmis.Protocol(), graph.Torus(8, 8)},
		{"degcolor/torus", degProto, graph.Torus(8, 8)},
		{"degcolor/tree", degProto, graph.RandomTree(257, xrand.New(3))},
		{"flood/gnp", flood(), graph.GnpConnected(256, 6.0/256, xrand.New(4))},
		{"flood/star", flood(), graph.Star(33)},
	}
}

// TestDifferentialPackedSync compares the packed backend against the
// flat executor across the matrix, at worker counts that split the
// word space unevenly, on both binding paths.
func TestDifferentialPackedSync(t *testing.T) {
	for _, tc := range packedDiffCases(t) {
		code := engine.CompileMachine(tc.m)
		if !code.PackedEligible() {
			t.Fatalf("%s: machine unexpectedly not packed-eligible", tc.name)
		}
		for _, seed := range []uint64{1, 42} {
			flat, flatErr := code.Bind(tc.g).RunSync(engine.SyncConfig{Seed: seed, Backend: engine.BackendFlat})
			for _, workers := range []int{1, 2, 3, 7} {
				name := fmt.Sprintf("%s/seed=%d/workers=%d", tc.name, seed, workers)
				t.Run(name, func(t *testing.T) {
					got, err := code.Bind(tc.g).RunSync(engine.SyncConfig{Seed: seed, Workers: workers, Backend: engine.BackendPacked})
					comparePackedRun(t, flat, flatErr, got, err)
					// The CSR-only binding must behave identically.
					got2, err2 := code.BindCSR(tc.g.CSR()).RunSync(engine.SyncConfig{Seed: seed, Workers: workers, Backend: engine.BackendPacked})
					comparePackedRun(t, flat, flatErr, got2, err2)
				})
			}
		}
	}
}

func comparePackedRun(t *testing.T, want *engine.SyncResult, wantErr error, got *engine.SyncResult, gotErr error) {
	t.Helper()
	if (wantErr != nil) != (gotErr != nil) {
		t.Fatalf("error mismatch: flat %v, packed %v", wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("error string mismatch: flat %q, packed %q", wantErr, gotErr)
		}
		return
	}
	if got.Rounds != want.Rounds {
		t.Errorf("Rounds = %d, flat %d", got.Rounds, want.Rounds)
	}
	if got.Transmissions != want.Transmissions {
		t.Errorf("Transmissions = %d, flat %d", got.Transmissions, want.Transmissions)
	}
	for v := range want.States {
		if got.States[v] != want.States[v] {
			t.Fatalf("state of node %d = %d, flat %d", v, got.States[v], want.States[v])
		}
	}
}

// TestPackedObserverStream compares the per-round observer state
// streams of the two backends: the packed backend must present the
// same decoded state vector after every round, not only at the end.
func TestPackedObserverStream(t *testing.T) {
	g := graph.GnpConnected(300, 4.0/300, xrand.New(5))
	code := engine.CompileMachine(mis.Protocol())
	record := func(backend string, workers int) [][]nfsm.State {
		var rounds [][]nfsm.State
		_, err := code.Bind(g).RunSync(engine.SyncConfig{
			Seed: 9, Workers: workers, Backend: backend,
			Observer: func(round int, states []nfsm.State) {
				cp := make([]nfsm.State, len(states))
				copy(cp, states)
				rounds = append(rounds, cp)
			},
		})
		if err != nil {
			t.Fatalf("backend %s: %v", backend, err)
		}
		return rounds
	}
	want := record(engine.BackendFlat, 1)
	for _, workers := range []int{1, 3} {
		got := record(engine.BackendPacked, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: observed %d rounds, flat %d", workers, len(got), len(want))
		}
		for r := range want {
			for v := range want[r] {
				if got[r][v] != want[r][v] {
					t.Fatalf("workers=%d round %d node %d: state %d, flat %d", workers, r+1, v, got[r][v], want[r][v])
				}
			}
		}
	}
}

// TestPackedNoConvergence checks the error path: a run that cannot
// converge must fail with the same error string as the flat executor,
// even though the packed backend detects the frozen configuration
// early instead of spinning out the round budget.
func TestPackedNoConvergence(t *testing.T) {
	// A 4-cycle under MIS with a tiny round budget converges too slowly
	// at some seeds; force the issue with MaxRounds 1 on a graph MIS
	// cannot finish in one round.
	g := graph.Cycle(64)
	code := engine.CompileMachine(mis.Protocol())
	_, flatErr := code.Bind(g).RunSync(engine.SyncConfig{Seed: 1, MaxRounds: 1, Backend: engine.BackendFlat})
	_, packedErr := code.Bind(g).RunSync(engine.SyncConfig{Seed: 1, MaxRounds: 1, Backend: engine.BackendPacked})
	if flatErr == nil || packedErr == nil {
		t.Fatalf("expected both to fail: flat %v, packed %v", flatErr, packedErr)
	}
	if flatErr.Error() != packedErr.Error() {
		t.Fatalf("error mismatch: flat %q, packed %q", flatErr, packedErr)
	}
}

// TestPackedBackendErrors pins the explicit-backend error paths: an
// ineligible machine, an unknown backend name, and a scenario run must
// all fail loudly rather than silently fall back.
func TestPackedBackendErrors(t *testing.T) {
	g := graph.Path(8)
	// coloring stays dynamic (269·4¹² domain): not packed-eligible.
	code := engine.CompileMachine(coloring.Protocol())
	if code.PackedEligible() {
		t.Fatal("coloring protocol unexpectedly packed-eligible")
	}
	if _, err := code.Bind(g).RunSync(engine.SyncConfig{Backend: engine.BackendPacked}); err == nil {
		t.Error("packed backend accepted an ineligible machine")
	}
	misCode := engine.CompileMachine(mis.Protocol())
	if _, err := misCode.Bind(g).RunSync(engine.SyncConfig{Backend: "simd"}); err == nil {
		t.Error("unknown backend name accepted")
	}
}
