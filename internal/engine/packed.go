package engine

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"stoneage/internal/nfsm"
)

// This file is the bit-plane synchronous backend. The flat executor
// spends a word per node state and a word per directed-edge port; at
// n = 10⁶ that layout is bandwidth-bound long before it is
// compute-bound. The paper's protocols are constant-space nFSMs — MIS
// has 3 states, counters clamp at b ≤ 3 — so the packed backend stores
// the whole mutable run state as structure-of-arrays bit-planes, 64
// nodes per machine word:
//
//   - ⌈log₂|Q|⌉ state planes,
//   - ⌈log₂|Σ|⌉ last-emission planes (every out-port of node v holds
//     v's last non-ε emission, so the 2m per-edge port array of the
//     flat layout collapses to a per-node letter),
//   - per letter, ⌈log₂(Δ+1)⌉ exact-count planes (Δ = max degree),
//     maintained by ripple-carry single-lane increments, with the
//     clamped value derived word-parallel by threshold masks,
//   - one stability plane scheduling the sparse tail of convergence:
//     a node whose next evaluation is provably a lone silent self-loop
//     is skipped until a delivery changes its counts, and an
//     all-stable word costs one load per round.
//
// The backend is bit-identical to the flat executor at every worker
// count: nfsm.PickMove is a stateless hash of (seed, node, round), the
// round structure (compute → deliver → observe → converge-check) is
// mirrored exactly, and skipping a stable node elides a provable
// no-op. TestDifferentialPackedSync and the packed arm of
// FuzzDifferentialSync enforce this.

// Backend names accepted by SyncConfig.Backend.
const (
	// BackendFlat forces the word-per-node flat executor.
	BackendFlat = "flat"
	// BackendPacked forces the bit-plane executor; it errors on
	// machines that are not packed-eligible and on scenario or channel
	// runs (those stay flat — see DESIGN.md).
	BackendPacked = "packed"
)

// packedAutoThreshold is the node count at which an empty
// SyncConfig.Backend auto-selects the packed backend for an eligible
// machine. Below it the flat executor's per-node simplicity wins;
// above it the plane layout's footprint (a few bytes per node) does.
const packedAutoThreshold = 1 << 16

// maxPackedB is the largest one-two-many bound the word-parallel
// threshold clamp covers (count ∈ {0, 1, 2, ≥3} in two bit-planes).
const maxPackedB = 3

// packedCode is the packed lowering of a MachineCode: plane widths and
// the settled-row bitset the stability scheduler tests against. Built
// lazily once per MachineCode, so the protocol registry's compiled-
// machine cache shares one packedCode process-wide.
type packedCode struct {
	ok bool
	wQ int // state plane count, ⌈log₂ nq⌉
	wE int // last-emission plane count, ⌈log₂ nl⌉
	// settled is a bitset over δ-table entries: entry e is set when its
	// row is a lone silent self-loop, i.e. evaluating it changes
	// nothing. A node whose upcoming (state, clamped counts) maps to a
	// settled entry is skipped until a delivery disturbs its counts.
	settled []uint64
}

// packedCode returns the lazily built packed lowering.
func (c *MachineCode) packedCode() *packedCode {
	c.packOnce.Do(func() { c.pack = buildPackedCode(c) })
	return c.pack
}

// PackedEligible reports whether the machine can run on the bit-plane
// backend: a flat-tabulated parallel machine with b ≤ 3 and state and
// letter spaces that fit the plane encodings. All of the paper's
// flat-compiled protocols qualify; dynamic-fallback machines (the
// synchro compilers, the coloring protocol's untabulatable domain) do
// not and stay on the flat executor.
func (c *MachineCode) PackedEligible() bool { return c.packedCode().ok }

func buildPackedCode(c *MachineCode) *packedCode {
	pc := &packedCode{}
	if (c.kind != progFlatSingle && c.kind != progFlatMulti) || !c.parallel {
		return pc
	}
	if c.b < 1 || c.b > maxPackedB || c.nq < 1 || c.nq > 1<<15 || c.nl < 1 || c.nl > 1<<15 {
		return pc
	}
	pc.wQ = planeWidth(c.nq)
	pc.wE = planeWidth(c.nl)
	span := c.b + 1
	if c.kind == progFlatMulti {
		span = c.pdim
	}
	pc.settled = make([]uint64, (len(c.delta)+63)/64)
	for e, row := range c.delta {
		q := nfsm.State(e / span)
		if len(row) == 1 && row[0].Emit == nfsm.NoLetter && row[0].Next == q {
			pc.settled[e>>6] |= 1 << (uint(e) & 63)
		}
	}
	pc.ok = true
	return pc
}

// planeWidth returns the number of bit-planes needed for values in
// [0, k).
func planeWidth(k int) int {
	if k <= 1 {
		return 1
	}
	return bits.Len(uint(k - 1))
}

// packedEmit records one changed emission for count routing: node v's
// last-emission letter moved old → nw, so every neighbor's count pair
// must be adjusted.
type packedEmit struct {
	v       int32
	old, nw int16
}

// countWrite is a packedEmit routed to the destination node's word
// shard (the packed analogue of portWrite).
type countWrite struct {
	u       int32
	old, nw int16
}

// packedScratch is the reusable bit-plane run state. All planes live in
// one backing slice so the footprint is a single allocation and easy to
// account (footprintBytes, guarded by TestPackedFootprint).
type packedScratch struct {
	nw int // words per plane, ⌈n/64⌉
	nl int
	wQ int
	wE int
	wC int // count planes per letter, ⌈log₂(Δ+1)⌉ for the bound CSR

	planeBuf []uint64
	stP      [][]uint64 // state planes
	leP      [][]uint64 // last-emission planes
	cnt      [][]uint64 // count planes; letter l plane j at l*wC+j
	stable   []uint64
	tail     uint64 // valid-lane mask of the last word

	emits    []packedEmit // sequential emitter buffer
	cw0, cw1 []uint64     // sequential clamped-count word buffers (per letter)
}

// footprintBytes reports the bytes the packed run state retains — the
// bytes-per-node regression guard reads it.
func (ps *packedScratch) footprintBytes() int {
	return 8 * (cap(ps.planeBuf) + cap(ps.cw0) + cap(ps.cw1) + cap(ps.emits))
}

// reset (re)initializes the planes for a run of p on its bound CSR with
// the given initial states, reusing the backing storage.
func (ps *packedScratch) reset(p *Program, pc *packedCode, states []nfsm.State) {
	csr := p.csr
	n := csr.N()
	nw := (n + 63) / 64
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := int(csr.NbrOff[v+1] - csr.NbrOff[v]); d > maxDeg {
			maxDeg = d
		}
	}
	wC := bits.Len(uint(maxDeg))
	if wC < 1 {
		wC = 1
	}
	ps.nw, ps.nl, ps.wQ, ps.wE, ps.wC = nw, p.nl, pc.wQ, pc.wE, wC

	planes := pc.wQ + pc.wE + p.nl*wC + 1
	need := planes * nw
	if cap(ps.planeBuf) < need {
		ps.planeBuf = make([]uint64, need)
	}
	buf := ps.planeBuf[:need]
	for i := range buf {
		buf[i] = 0
	}
	slice := func(k int) [][]uint64 {
		out := make([][]uint64, k)
		for i := range out {
			out[i] = buf[:nw:nw]
			buf = buf[nw:]
		}
		return out
	}
	ps.stP = slice(pc.wQ)
	ps.leP = slice(pc.wE)
	ps.cnt = slice(p.nl * wC)
	ps.stable = buf[:nw:nw]

	ps.tail = ^uint64(0)
	if r := n & 63; r != 0 {
		ps.tail = 1<<uint(r) - 1
	}
	if nw == 0 {
		ps.tail = 0
	}

	for v, q := range states {
		w, bit := v>>6, uint64(1)<<(uint(v)&63)
		for j := 0; j < pc.wQ; j++ {
			if int(q)>>j&1 == 1 {
				ps.stP[j][w] |= bit
			}
		}
	}
	// Every port starts holding the initial letter: last-emission planes
	// broadcast it, and each node's count block is deg(v) at that letter.
	init := int(p.initial)
	for j := 0; j < pc.wE; j++ {
		if init>>j&1 == 1 {
			pl := ps.leP[j]
			for w := range pl {
				pl[w] = ^uint64(0)
			}
		}
	}
	for v := 0; v < n; v++ {
		deg := int(csr.NbrOff[v+1] - csr.NbrOff[v])
		if deg == 0 {
			continue
		}
		w, bit := v>>6, uint64(1)<<(uint(v)&63)
		for j := 0; j < wC; j++ {
			if deg>>j&1 == 1 {
				ps.cnt[init*wC+j][w] |= bit
			}
		}
	}

	if cap(ps.cw0) < p.nl {
		ps.cw0 = make([]uint64, p.nl)
		ps.cw1 = make([]uint64, p.nl)
	}
	ps.cw0, ps.cw1 = ps.cw0[:p.nl], ps.cw1[:p.nl]
}

// countInc adds one to node u's count of letter l (single-lane
// ripple-carry across the letter's planes).
func (ps *packedScratch) countInc(l int, u int32) {
	w, carry := int(u>>6), uint64(1)<<(uint(u)&63)
	base := l * ps.wC
	for j := 0; j < ps.wC && carry != 0; j++ {
		pl := ps.cnt[base+j]
		old := pl[w]
		pl[w] = old ^ carry
		carry &= old
	}
}

// countDec subtracts one from node u's count of letter l.
func (ps *packedScratch) countDec(l int, u int32) {
	w, borrow := int(u>>6), uint64(1)<<(uint(u)&63)
	base := l * ps.wC
	for j := 0; j < ps.wC && borrow != 0; j++ {
		pl := ps.cnt[base+j]
		old := pl[w]
		pl[w] = old ^ borrow
		borrow &^= old
	}
}

// decodeStates gathers the state planes back into a state vector.
func (ps *packedScratch) decodeStates(states []nfsm.State) {
	for v := range states {
		w, i := v>>6, uint(v)&63
		q := 0
		for j := 0; j < ps.wQ; j++ {
			q |= int(ps.stP[j][w]>>i&1) << j
		}
		states[v] = nfsm.State(q)
	}
}

// packedShardResult carries one worker's per-round aggregates.
type packedShardResult struct {
	tx       int64
	outDelta int
	live     bool
	err      error
}

// packedExec owns a packed execution's buffers and optional worker
// pool. The sharding is word-aligned: a worker owns whole plane words,
// so two workers never read-modify-write the same word in the compute
// phase, and the deliver phase routes count updates to the shard owning
// the destination word — the same ownership discipline as syncExec,
// lifted from nodes to 64-node words.
type packedExec struct {
	p    *Program
	pc   *packedCode
	ps   *packedScratch
	seed uint64

	emitters [][]packedEmit // per-worker changed-emission lists
	cw0, cw1 [][]uint64     // per-worker per-letter clamped-count words

	// Worker pool state (nil/empty when sequential).
	cmds     []chan int
	wg       sync.WaitGroup
	loW, hiW []int
	results  []packedShardResult
	buckets  [][][]countWrite
	shardOfW []int32
}

func (e *packedExec) startWorkers(workers int) (stop func()) {
	nw := e.ps.nw
	nl := e.ps.nl
	e.cmds = make([]chan int, workers)
	e.loW = make([]int, workers)
	e.hiW = make([]int, workers)
	e.results = make([]packedShardResult, workers)
	e.emitters = make([][]packedEmit, workers)
	e.cw0 = make([][]uint64, workers)
	e.cw1 = make([][]uint64, workers)
	e.buckets = make([][][]countWrite, workers)
	e.shardOfW = make([]int32, nw)
	for i := 0; i < workers; i++ {
		e.loW[i] = i * nw / workers
		e.hiW[i] = (i + 1) * nw / workers
		for w := e.loW[i]; w < e.hiW[i]; w++ {
			e.shardOfW[w] = int32(i)
		}
		e.cw0[i] = make([]uint64, nl)
		e.cw1[i] = make([]uint64, nl)
		e.buckets[i] = make([][]countWrite, workers)
		e.cmds[i] = make(chan int, 1)
		go func(i int) {
			for c := range e.cmds[i] {
				if c > 0 {
					tx, d, live, err := e.compute(e.loW[i], e.hiW[i], c, i)
					e.results[i] = packedShardResult{tx: tx, outDelta: d, live: live, err: err}
				} else {
					e.deliverBuckets(i)
				}
				e.wg.Done()
			}
		}(i)
	}
	return func() {
		for _, c := range e.cmds {
			close(c)
		}
	}
}

func (e *packedExec) broadcast(code int) {
	e.wg.Add(len(e.cmds))
	for _, c := range e.cmds {
		c <- code
	}
	e.wg.Wait()
}

func (e *packedExec) computePhase(round int) (int64, int, bool, error) {
	if e.cmds == nil {
		return e.compute(0, e.ps.nw, round, 0)
	}
	e.broadcast(round)
	var tx int64
	var outDelta int
	var live bool
	for i := range e.results {
		if err := e.results[i].err; err != nil {
			return 0, 0, false, err
		}
		tx += e.results[i].tx
		outDelta += e.results[i].outDelta
		live = live || e.results[i].live
	}
	return tx, outDelta, live, nil
}

func (e *packedExec) deliverPhase() {
	if e.cmds == nil {
		e.deliver()
		return
	}
	e.broadcast(-1)
}

// compute evaluates every live node of the word range [loW, hiW). Per
// live word it first derives, word-parallel, the clamped count of every
// letter for all 64 lanes via threshold masks over the count planes
// (ge1 = any plane set; ge2 = any plane ≥ 1 set; ge3 = any plane ≥ 2
// set, or planes 1 and 0 both set), then walks the live lanes: gather
// state bits, look up the δ row — the same p.delta rows and the same
// nfsm.PickMove coin as the flat executor, so the drawn move is
// bit-identical — apply the state change to the planes, and record a
// changed emission for the deliver phase. Finally the node's upcoming
// observation is tested against the settled bitset (counts are frozen
// during compute, so the count half of the observation is current):
// settled nodes set their stability bit and are skipped until a
// delivery disturbs their counts.
func (e *packedExec) compute(loW, hiW, round, worker int) (tx int64, outDelta int, live bool, err error) {
	p, pc, ps := e.p, e.pc, e.ps
	seed := e.seed
	mask := p.outMask
	emitters := e.emitters[worker][:0]
	defer func() { e.emitters[worker] = emitters }()
	c0, c1 := e.cw0[worker], e.cw1[worker]
	nl, b := ps.nl, p.b
	wC, wQ, wE := ps.wC, ps.wQ, ps.wE
	single := p.kind == progFlatSingle
	span := b + 1

	for w := loW; w < hiW; w++ {
		act := ^ps.stable[w]
		if w == ps.nw-1 {
			act &= ps.tail
		}
		if act == 0 {
			continue
		}
		live = true
		// Word-parallel clamped counts for every letter.
		for l := 0; l < nl; l++ {
			base := l * wC
			ge1 := ps.cnt[base][w]
			var ge2 uint64
			for j := 1; j < wC; j++ {
				pl := ps.cnt[base+j][w]
				ge1 |= pl
				ge2 |= pl
			}
			switch b {
			case 1:
				c0[l] = ge1
			case 2:
				c0[l] = ge1 ^ ge2
				c1[l] = ge2
			default: // b == 3
				var hi uint64
				for j := 2; j < wC; j++ {
					hi |= ps.cnt[base+j][w]
				}
				ge3 := hi
				if wC >= 2 {
					ge3 |= ps.cnt[base+1][w] & ps.cnt[base][w]
				}
				c0[l] = (ge1 ^ ge2) | ge3
				c1[l] = ge2
			}
		}
		for a := act; a != 0; a &= a - 1 {
			i := uint(bits.TrailingZeros64(a))
			v := w<<6 | int(i)
			bit := uint64(1) << i
			q := 0
			for j := 0; j < wQ; j++ {
				q |= int(ps.stP[j][w]>>i&1) << j
			}
			var eIdx int
			if single {
				l := int(p.query[q])
				cc := int(c0[l] >> i & 1)
				if b >= 2 {
					cc |= int(c1[l]>>i&1) << 1
				}
				eIdx = q*span + cc
			} else {
				idx := int32(0)
				for l := 0; l < nl; l++ {
					cc := int32(c0[l] >> i & 1)
					if b >= 2 {
						cc |= int32(c1[l]>>i&1) << 1
					}
					idx += cc * p.pow[l]
				}
				eIdx = q*p.pdim + int(idx)
			}
			row := p.delta[eIdx]
			if len(row) == 0 {
				return tx, outDelta, live, deltaEmptyErr(v, nfsm.State(q), round)
			}
			mv := nfsm.PickMove(seed, v, round, row)
			nq2 := int(mv.Next)
			if nq2 != q {
				outDelta += int(mask[nq2>>6]>>(uint(nq2)&63)&1) - int(mask[q>>6]>>(uint(q)&63)&1)
				for j := 0; j < wQ; j++ {
					if nq2>>j&1 == 1 {
						ps.stP[j][w] |= bit
					} else {
						ps.stP[j][w] &^= bit
					}
				}
			}
			if mv.Emit != nfsm.NoLetter {
				tx++
				le := 0
				for j := 0; j < wE; j++ {
					le |= int(ps.leP[j][w]>>i&1) << j
				}
				if int(mv.Emit) != le {
					for j := 0; j < wE; j++ {
						if int(mv.Emit)>>j&1 == 1 {
							ps.leP[j][w] |= bit
						} else {
							ps.leP[j][w] &^= bit
						}
					}
					emitters = append(emitters, packedEmit{v: int32(v), old: int16(le), nw: int16(mv.Emit)})
				}
			}
			e2 := eIdx
			if nq2 != q {
				if single {
					l := int(p.query[nq2])
					cc := int(c0[l] >> i & 1)
					if b >= 2 {
						cc |= int(c1[l]>>i&1) << 1
					}
					e2 = nq2*span + cc
				} else {
					e2 += (nq2 - q) * p.pdim
				}
			}
			if pc.settled[e2>>6]>>(uint(e2)&63)&1 == 1 {
				ps.stable[w] |= bit
			}
		}
	}
	if e.cmds != nil {
		e.route(worker, emitters)
	}
	return tx, outDelta, live, nil
}

// route buckets the worker's changed emissions by the destination
// node's word shard, still inside the compute phase.
func (e *packedExec) route(worker int, emitters []packedEmit) {
	csr := e.p.csr
	off, nbr := csr.NbrOff, csr.NbrDat
	bk := e.buckets[worker]
	for s := range bk {
		bk[s] = bk[s][:0]
	}
	for _, em := range emitters {
		for k := off[em.v]; k < off[em.v+1]; k++ {
			u := nbr[k]
			s := e.shardOfW[u>>6]
			bk[s] = append(bk[s], countWrite{u: u, old: em.old, nw: em.nw})
		}
	}
}

// deliver is the sequential deliver phase: every changed emission moves
// one unit of every neighbor's count from the old letter to the new one
// and wakes the neighbor. The ±1 plane updates are exact, so any
// application order yields the same planes — which is what makes the
// sharded variant bit-identical.
func (e *packedExec) deliver() {
	csr := e.p.csr
	off, nbr := csr.NbrOff, csr.NbrDat
	ps := e.ps
	for _, lst := range e.emitters {
		for _, em := range lst {
			for k := off[em.v]; k < off[em.v+1]; k++ {
				u := nbr[k]
				ps.countDec(int(em.old), u)
				ps.countInc(int(em.nw), u)
				ps.stable[u>>6] &^= 1 << (uint(u) & 63)
			}
		}
	}
}

// deliverBuckets applies exactly the count updates routed to this
// worker's words. Increments and decrements commute and the stability
// clear is idempotent, so the post-round planes are identical at every
// worker count.
func (e *packedExec) deliverBuckets(shard int) {
	ps := e.ps
	for w := range e.buckets {
		for _, d := range e.buckets[w][shard] {
			ps.countDec(int(d.old), d.u)
			ps.countInc(int(d.nw), d.u)
			ps.stable[d.u>>6] &^= 1 << (uint(d.u) & 63)
		}
	}
}

// runSyncPacked executes the program on the bit-plane backend. The
// round loop mirrors RunSyncReusing's flat loop statement for
// statement (compute → deliver → observe → converge-check), with one
// addition: when a round evaluates no node at all, the configuration is
// frozen forever (stable nodes never change their counts or states), so
// a run that cannot converge fails fast instead of spinning out the
// round budget — unless an Observer is attached, which contractually
// sees every round.
func (p *Program) runSyncPacked(cfg SyncConfig, scr *Scratch) (*SyncResult, error) {
	pc := p.packedCode()
	if !pc.ok {
		return nil, fmt.Errorf("engine: machine %s is not packed-eligible (flat-tabulated, b ≤ %d required)", machineName(p.m), maxPackedB)
	}
	if !cfg.Scenario.Empty() || cfg.Channel != nil {
		return nil, fmt.Errorf("engine: the packed backend supports neither scenarios nor channel models")
	}
	if scr == nil {
		scr = NewScratch()
	}
	n := p.csr.N()
	states, err := initialStates(p.m, n, cfg.Init)
	if err != nil {
		return nil, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1 << 20
	}

	scr.bind(p.MachineCode)
	ps := scr.packed()
	ps.reset(p, pc, states)

	res := &SyncResult{States: states}
	outputs := countOutputs(p.m, states)
	if outputs == n {
		return res, nil
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if max := n / minShard; workers > max {
			workers = max
		}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > ps.nw {
		workers = ps.nw
	}

	exec := &packedExec{p: p, pc: pc, ps: ps, seed: cfg.Seed}
	if workers > 1 {
		stop := exec.startWorkers(workers)
		defer stop()
	} else {
		exec.emitters = [][]packedEmit{ps.emits[:0]}
		exec.cw0 = [][]uint64{ps.cw0}
		exec.cw1 = [][]uint64{ps.cw1}
		defer func() { ps.emits = exec.emitters[0][:0] }()
	}

	for round := 1; round <= maxRounds; round++ {
		tx, outDelta, liveRound, err := exec.computePhase(round)
		if err != nil {
			return nil, err
		}
		res.Transmissions += tx
		outputs += outDelta
		exec.deliverPhase()
		if cfg.Observer != nil {
			ps.decodeStates(states)
			cfg.Observer(round, states)
		}
		if outputs == n {
			res.Rounds = round
			ps.decodeStates(states)
			return res, nil
		}
		if !liveRound && cfg.Observer == nil {
			break
		}
	}
	return nil, fmt.Errorf("%w: %s after %d rounds", ErrNoConvergence, machineName(p.m), maxRounds)
}
