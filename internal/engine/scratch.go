package engine

import (
	"stoneage/internal/channel"
	"stoneage/internal/nfsm"
)

// Scratch is a reusable per-execution arena. A run needs per-node and
// per-directed-edge working state — port letters, count aggregates,
// event queue storage, delivery pools, adversary bookkeeping — that is
// identical in shape from run to run; allocating it fresh every time
// dominated the allocation profile of tight run loops (campaign trials,
// benchmarks, parameter sweeps). Passing a Scratch to
// Program.RunSyncReusing / Program.RunAsyncReusing reuses all of it:
// after the first run on a given program shape, steady-state execution
// performs no queue or counter allocations at all.
//
// A Scratch is not safe for concurrent use: give each worker goroutine
// its own (the campaign runner holds one per worker and reuses it
// across every trial the worker executes).
//
// Machine-keyed memos (δ-row and output-set caches for dynamic-fallback
// machines) also live here and survive across runs; they are
// invalidated automatically when the scratch is used with a different
// machine.
type Scratch struct {
	rc runCounts
	ds dynScratch

	// as holds the asynchronous executors' working state — the ladder
	// queue, delivery pools, parking arrays — allocated on first async
	// use so purely synchronous callers pay for none of it (the inline
	// bucket table alone is over a kilobyte).
	as *asyncScratch

	// pk holds the bit-plane backend's plane storage, allocated on
	// first packed use for the same reason.
	pk *packedScratch

	emits    []nfsm.Letter // sync executor's per-round emission buffer
	emitters []int32       // sync executor's sequential emitter list

	lastCode *MachineCode
}

// asyncScratch is the asynchronous executors' reusable working state.
type asyncScratch struct {
	lq ladder
	dp delivPool

	portWriteAt  []float64
	lastDelivery []float64
	stepIndex    []int
	lastStepAt   []float64

	// Parking state (static async executor): parked nodes' pending
	// virtual step, the per-node event epoch that invalidates
	// precomputed chain-end events, and whether one is in the queue.
	parked      []bool
	virtTime    []float64
	virtIndex   []int
	virtLen     []float64
	epochs      []uint32
	pendingReal []bool
	stepBuf     [256]float64

	// Per-node step-length batch cache (StepBatcher adversaries): node
	// v's lengths for steps stepFrom[v]..stepFrom[v]+stepLenBatch-1.
	stepLens []float64
	stepFrom []int

	// chBuf is the channel-model fate expansion buffer (channel runs
	// only; the zero-model fast path never touches it).
	chBuf []channel.Fate

	// walkCap is the per-node adaptive chain-walk window: opened fully
	// once a checkpoint is reached undisturbed, reset to the minimum
	// when a delivery invalidates the node's precomputed chain —
	// re-walks stay cheap on delivery-heavy nodes while undisturbed
	// chains virtualize in large windows.
	walkCap []int32
}

// async returns the lazily allocated asynchronous working state.
func (s *Scratch) async() *asyncScratch {
	if s.as == nil {
		s.as = &asyncScratch{}
	}
	return s.as
}

// packed returns the lazily allocated bit-plane working state.
func (s *Scratch) packed() *packedScratch {
	if s.pk == nil {
		s.pk = &packedScratch{}
	}
	return s.pk
}

// NewScratch returns an empty scratch arena. All storage is grown on
// first use and retained afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// bind points the scratch at a machine, invalidating machine-keyed
// memos if it changes.
func (s *Scratch) bind(c *MachineCode) {
	if s.lastCode == c {
		return
	}
	s.lastCode = c
	s.ds.invalidate()
	s.rc.dynQuery = s.rc.dynQuery[:0]
}

// grow returns a length-n slice reusing buf's storage, every element
// set to fill.
func grow[T any](buf []T, n int, fill T) []T {
	if cap(buf) < n {
		buf = make([]T, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = fill
	}
	return buf
}
