package engine

// Allocation-regression guards: the compiled synchronous executor and
// the ladder-queue asynchronous core promise (near-)zero steady-state
// allocation when reusing a scratch arena. These tests pin that with
// testing.AllocsPerRun so a regression — a buffer that stopped being
// reused, an event that started escaping, a δ row rebuilt per step —
// fails `make check` instead of silently eroding the perf work. The
// bounds are small integers, not zeros: a run legitimately allocates
// its result struct, the returned state vector, and (async, dynamic
// machines) the occasional lazily interned δ row when a fresh seed
// steers execution into an unvisited corner of the compiled state
// space.

import (
	"testing"

	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/synchro"
	"stoneage/internal/xrand"
)

// allocProtocol is a small multi-letter round protocol that tabulates
// to progFlatMulti (the compiled sync fast path).
func allocProtocol() *nfsm.RoundProtocol {
	return miniRound()
}

func TestAllocsSyncCompiled(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	g := graph.GnpConnected(256, 4.0/256, xrand.New(17))
	prog := Compile(allocProtocol(), g)
	scr := NewScratch()
	seed := uint64(0)
	run := func() {
		seed++
		if _, err := prog.RunSyncReusing(SyncConfig{Seed: seed, Workers: 1}, scr); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the arena
	allocs := testing.AllocsPerRun(20, run)
	// Steady state: the result struct, the returned States vector, and
	// slack for the testing harness itself.
	const maxAllocs = 8
	if allocs > maxAllocs {
		t.Fatalf("compiled sync run allocates %.1f objects/op, want ≤ %d", allocs, maxAllocs)
	}
}

func TestAllocsAsyncLadder(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	g := graph.GnpConnected(24, 0.2, xrand.New(18))
	compiled, err := synchro.CompileRound(allocProtocol())
	if err != nil {
		t.Fatal(err)
	}
	prog := Compile(compiled, g)
	scr := NewScratch()
	seed := uint64(0)
	run := func() {
		seed++
		if _, err := prog.RunAsyncReusing(AsyncConfig{Seed: seed, Adversary: UniformRandom{Seed: seed}}, scr); err != nil {
			t.Fatal(err)
		}
	}
	// Warm both the scratch arena and the shared machine's interned
	// state space across several seeds.
	for i := 0; i < 8; i++ {
		run()
	}
	allocs := testing.AllocsPerRun(20, run)
	// Steady state: result + States + a handful of lazily interned δ
	// rows for execution corners fresh seeds keep discovering.
	const maxAllocs = 64
	if allocs > maxAllocs {
		t.Fatalf("async ladder run allocates %.1f objects/op, want ≤ %d", allocs, maxAllocs)
	}
}

// TestAllocsAsyncVoted pins the voted tier's steady state: the decoder
// allocates its per-edge state (rings, stall counters, backoff
// windows) once per run up front, and after that the vote, the strike
// bookkeeping and the K-copy bursts run allocation-free per receipt —
// a regression here (a ring rebuilt per receipt, a burst buffer
// escaping) scales with message volume, not run count, which is
// exactly what this guard converts into a fixed per-run bound.
func TestAllocsAsyncVoted(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	g := graph.GnpConnected(24, 0.2, xrand.New(18))
	compiled, err := synchro.CompileRoundVoted(allocProtocol())
	if err != nil {
		t.Fatal(err)
	}
	prog := Compile(compiled, g)
	scr := NewScratch()
	vcfg := &VotedConfig{RePulseSource: compiled.RePulseSource}
	seed := uint64(0)
	run := func() {
		seed++
		cfg := AsyncConfig{Seed: seed, Adversary: UniformRandom{Seed: seed}, Voted: vcfg}
		if _, err := prog.RunAsyncReusing(cfg, scr); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		run()
	}
	allocs := testing.AllocsPerRun(20, run)
	// The ladder bound plus the decoder's per-run slice set and the
	// eviction record.
	const maxAllocs = 80
	if allocs > maxAllocs {
		t.Fatalf("async voted run allocates %.1f objects/op, want ≤ %d", allocs, maxAllocs)
	}
}

// TestAllocsLadderOps pins the queue itself: pushes and pops on a
// warmed ladder must not allocate at all, and neither may the pooled
// delivery FIFOs.
func TestAllocsLadderOps(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	var l ladder
	var d delivPool
	// Pre-draw the offsets so every cycle replays the same sequence and
	// the closure body itself allocates nothing.
	src := xrand.New(19)
	offs := make([]float64, 512)
	for i := range offs {
		offs[i] = float64(src.Uint64()%1024) / 64
	}
	cycle := func() {
		l.reset()
		d.reset(16)
		now := 0.0
		for i := 0; i < 512; i++ {
			l.push(qevent{time: now + offs[i], seq: uint64(i)})
			if i%3 == 0 {
				if e, ok := l.pop(); ok {
					now = e.time
				}
			}
			k := int32(i % 16)
			if d.enqueue(k, now+1, uint64(i), 1) {
				_ = k
			} else if i%5 == 0 {
				d.delivered(k)
			}
		}
		for {
			if _, ok := l.pop(); !ok {
				break
			}
		}
	}
	cycle() // grow all backing storage to the high-water mark
	if allocs := testing.AllocsPerRun(10, cycle); allocs > 0 {
		t.Fatalf("warmed ladder/pool cycle allocates %.1f objects/op, want 0", allocs)
	}
}
