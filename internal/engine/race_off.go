//go:build !race

package engine

// raceEnabled reports whether the race detector instruments this build
// (allocation-count pinning is meaningless under -race).
const raceEnabled = false
