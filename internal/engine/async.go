package engine

import (
	"fmt"
	"math"

	"stoneage/internal/channel"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/scenario"
)

// stepKey is the tie key of a step event under a TieFree adversary,
// replacing the push-order seq counter the reference engine breaks
// ties with. Parking elides and reorders pushes, so push order is no
// longer available — but under the TieFree contract the only events
// that can share an exact time are steps of constant-step-length
// nodes, and for those the reference's push order is derivable: the
// node with the larger current step length pushed earlier (its
// previous step was earlier), and equal lengths recurse down identical
// chains to the initial pushes, which are in node order. Packing the
// inverted float bits of the length (descending) over the node index
// (ascending) therefore reproduces the reference's tie order exactly.
// The low 20 bits hold the node, so lengths must be distinguishable in
// their top 44 bits and n must stay below 2^20 — both documented in
// TieFree.
// The chain-walk window bounds the lookahead of a single park decision:
// a longer silent chain is virtualized in checkpoint windows (the cap
// branch schedules a real step mid-chain, which is always sound). The
// window adapts per node between these bounds — see
// asyncScratch.walkCap.
const (
	walkCapMin = 16
	walkCapMax = 256
)

func stepKey(l float64, node int32) uint64 {
	return ^math.Float64bits(l)&^uint64(0xFFFFF) | uint64(uint32(node))&0xFFFFF
}

// AsyncConfig parameterizes an asynchronous run.
type AsyncConfig struct {
	// Seed keys the protocol's random choices (the adversary carries its
	// own seed; Section 2 requires the adversary be oblivious to the
	// protocol's coins, which separate seeds guarantee).
	Seed uint64
	// Adversary supplies every step length and delivery delay. Nil
	// selects the Synchronous policy.
	Adversary Adversary
	// MaxSteps aborts the run when the total number of node steps
	// exceeds it; zero selects 1<<24.
	MaxSteps int64
	// Init optionally assigns per-node initial states, as in SyncConfig.
	Init []nfsm.State
	// Observer, when non-nil, is invoked after every node step with the
	// event time, the node, its step index and its new state. Used by
	// analysis instrumentation (e.g. the synchronization-property
	// tests). Setting an observer disables the self-loop parking fast
	// path: every step is then materialized so the observer sees the
	// full stream.
	Observer func(time float64, node, step int, state nfsm.State)
	// Scenario, when non-nil and non-empty, makes the run dynamic: each
	// mutation batch is applied at absolute time Batch.At, before any
	// event scheduled at or after that time. Surviving node and port
	// state (letters, FIFO horizons, write times) is carried across
	// topology re-binds; deliveries in flight on a removed edge are
	// dropped; crashed nodes stop stepping and restarted ones resume
	// from a reboot. The reset policy must be concrete (the protocol
	// layer resolves ResetAuto). Nil or empty scenarios take the
	// unchanged static path.
	Scenario *scenario.Scenario
	// Channel, when non-nil, subjects every transmission to an
	// unreliable-link model: each per-neighbor copy is expanded through
	// the model into zero or more delivered fates (dropped, duplicated,
	// extra-delayed, corrupted — see package channel). A reordering
	// model voids the per-edge FIFO guarantee (and the pooled-FIFO and
	// parking fast paths); a nil Channel is the unchanged zero-overhead
	// reliable path.
	Channel channel.Model
	// Voted, when non-nil, selects the voted synchronizer tier's
	// engine contract (see voted.go): burst transmissions decoded by a
	// K-of-(2K−1) receipt vote, dead-edge eviction, and per-edge
	// re-pulse backoff. The machine should be a synchro.CompileVoted
	// compilation (the αβ state machine with the voted contract);
	// voted runs disable the parking and pooled-FIFO fast paths and
	// reject scenarios with topological mutations. Nil runs the plain
	// or αβ contract unchanged.
	Voted *VotedConfig
}

// AsyncResult reports a completed asynchronous run.
type AsyncResult struct {
	// Time is the absolute time at which the output configuration was
	// reached, in the adversary's raw scale.
	Time float64
	// TimeUnits is the paper's run-time measure: Time divided by the
	// largest step-length or delay parameter used before completion.
	TimeUnits float64
	// Steps is the total number of node steps executed.
	Steps int64
	// Transmissions counts non-ε transmissions.
	Transmissions int64
	// Lost counts deliveries that overwrote a port value which the
	// destination node had not yet observed in any step — messages the
	// adversary destroyed, as permitted by the model (no buffering).
	// This is pure paper semantics: channel drops and removed-edge
	// drops are counted separately below.
	Lost int64
	// Dropped, Duplicated and Corrupted count the channel model's
	// interventions (zero without one): copies eliminated, extra copies
	// created, letters flipped. Delayed counts copies the model assigned
	// a non-zero extra delay (attempted reorders); Reordered counts
	// deliveries scheduled before an already-scheduled delivery on the
	// same directed edge — the overtakes those attempts actually caused.
	// Under a self-pacing synchronizer Delayed can be large while
	// Reordered stays 0: the per-edge send gap outgrows the extra delay.
	Dropped    int64
	Duplicated int64
	Delayed    int64
	Reordered  int64
	Corrupted  int64
	// Severed counts in-flight deliveries dropped because a scenario
	// mutation removed their edge before arrival (previously conflated
	// with nothing — they vanished uncounted).
	Severed int64
	// Voted-decoder reporting, populated only under AsyncConfig.Voted:
	// Outvoted counts corrupted receipts the vote refused to commit;
	// VotedRejections counts receipts that produced no winner;
	// RePulses counts re-pulse firings (node emissions classified by
	// the machine's re-pulse source states); RePulseSends counts the
	// per-edge re-pulse transmissions actually sent after backoff
	// gating; EvictedEdges lists the evicted edges as (listener,
	// silenced neighbor) pairs in eviction order.
	Outvoted        int64
	VotedRejections int64
	RePulses        int64
	RePulseSends    int64
	EvictedEdges    [][2]int
	// States is the final state of every node.
	States []nfsm.State

	// PerturbedAt lists the absolute times of a dynamic run's mutation
	// batches. Nil for static runs.
	PerturbedAt []float64
	// RecoveryTime is the absolute time from the last perturbation to
	// the final output configuration (0 when nothing was perturbed);
	// RecoveryTimeUnits is the same span in the paper's normalized
	// measure.
	RecoveryTime      float64
	RecoveryTimeUnits float64
	// FinalGraph is the post-mutation topology of a dynamic run — the
	// graph any output validator must be checked against. Nil for
	// static runs.
	FinalGraph *graph.Graph
}

// event is the seed engine's queue entry, kept for the reference oracle
// in async_ref.go (the rewritten executor uses the ladder queue's
// qevent).
type event struct {
	time    float64
	seq     uint64 // FIFO-stable tiebreak for equal times
	node    int
	port    int         // delivery only
	letter  nfsm.Letter // delivery only
	step    bool        // true: node step; false: delivery
	corrupt bool        // delivery only: letter rewritten by the channel
}

// RunAsync executes machine m on graph g in the asynchronous environment
// of Section 2 under the given adversarial policy. Like RunSync it goes
// through the compiled fast path; Compile once and call Program.RunAsync
// to amortize the lowering across runs.
func RunAsync(m nfsm.Machine, g *graph.Graph, cfg AsyncConfig) (*AsyncResult, error) {
	return Compile(m, g).RunAsync(cfg)
}

// RunAsync executes the compiled program asynchronously with a private
// scratch arena. Callers that execute many runs should allocate one
// Scratch per worker and call RunAsyncReusing.
func (p *Program) RunAsync(cfg AsyncConfig) (*AsyncResult, error) {
	return p.RunAsyncReusing(cfg, nil)
}

// RunAsyncReusing executes the compiled program asynchronously. The
// event loop is sequential (the adversary's timing makes steps causally
// dependent), but it shares the synchronous executor's representation:
// flat δ lookups, the CSR edge order for ports and the flattened
// reverse-port table for deliveries, and incremental count maintenance
// in place of per-step port rescans.
//
// Events are ordered by the (time, seq) total order in a two-tier
// ladder queue; in-flight deliveries beyond each directed edge's
// earliest outstanding one wait in a pooled per-edge FIFO rather than
// in the queue. Under a TieFree adversary, a node whose current δ row
// is a lone ε self-loop is "parked": its spin steps leave the queue
// entirely and are replayed arithmetically when a delivery next touches
// the node (or when the run ends), consuming exactly the adversary
// parameters and step counts the materialized steps would have — the
// differential and fuzz walls check the executor is bit-identical to
// the reference engine either way.
//
// scr may be nil (a private arena is allocated); reusing one across
// runs makes steady-state execution allocation-free.
func (p *Program) RunAsyncReusing(cfg AsyncConfig, scr *Scratch) (*AsyncResult, error) {
	if !cfg.Scenario.Empty() {
		return p.runAsyncScenario(cfg, scr)
	}
	if scr == nil {
		scr = NewScratch()
	}
	n := p.csr.N()
	states, err := initialStates(p.m, n, cfg.Init)
	if err != nil {
		return nil, err
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = Synchronous{}
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1 << 24
	}

	csr := p.csr
	ne := len(csr.NbrDat)
	scr.bind(p.MachineCode)
	rc := &scr.rc
	rc.reset(p, csr)
	ds := &scr.ds
	ds.init(p.MachineCode)
	as := scr.async()

	// portWriteAt[k] is the time of the last write to the port at CSR
	// edge slot k (-1 initially); lastDelivery[k] enforces FIFO on the
	// directed edge at slot k (v → NbrDat[k]).
	as.portWriteAt = grow(as.portWriteAt, ne, -1)
	as.lastDelivery = grow(as.lastDelivery, ne, 0)
	portWriteAt, lastDelivery := as.portWriteAt, as.lastDelivery

	as.stepIndex = grow(as.stepIndex, n, 0)
	as.lastStepAt = grow(as.lastStepAt, n, 0)
	stepIndex, lastStepAt := as.stepIndex, as.lastStepAt

	lq := &as.lq
	lq.reset()
	dp := &as.dp
	dp.reset(ne)

	// model/chStats/usePool: the unreliable-channel axis. The pooled
	// per-edge FIFO stays exact under non-reordering models (every fate
	// has Extra == 0, so the FIFO clamp keeps per-edge enqueue times
	// nondecreasing — duplicates land back-to-back in send order); a
	// reordering model bypasses the pool and pushes every copy straight
	// into the queue.
	model := cfg.Channel
	reorders := model != nil && model.Reorders()
	var chStats channel.Stats

	// Voted tier: the decoder state is per directed-edge slot. Voting
	// decouples deliveries from port writes (a receipt may commit
	// nothing, or commit a letter other than its own), which the
	// pooled-FIFO promotion and the parking replay both assume away,
	// so voted runs materialize every delivery and every step.
	var vs *votedState
	if cfg.Voted != nil {
		vs = newVotedState(cfg.Voted, ne)
	}
	usePool := !reorders && vs == nil

	// Parking is sound only when no skipped step can tie exactly with a
	// delivery (see TieFree); observers must see every step
	// materialized, and the step tie key reserves 20 bits for the node
	// index, so larger networks run fully materialized. Channel models
	// multiply and drop deliveries, which the silent-chain walk cannot
	// anticipate, so channel runs also materialize every step.
	canPark := cfg.Observer == nil && model == nil && n < 1<<20 && vs == nil
	if tf, ok := adv.(TieFree); !ok || !tf.TieFreeTimes() {
		canPark = false
	}
	var parked []bool
	var epochs []uint32
	var pendingReal []bool
	if canPark {
		as.parked = grow(as.parked, n, false)
		as.virtTime = grow(as.virtTime, n, 0)
		as.virtIndex = grow(as.virtIndex, n, 0)
		as.virtLen = grow(as.virtLen, n, 0)
		as.epochs = grow(as.epochs, n, 0)
		as.pendingReal = grow(as.pendingReal, n, false)
		if cap(as.walkCap) < n {
			as.walkCap = make([]int32, n)
		}
		as.walkCap = as.walkCap[:n]
		for v := range as.walkCap {
			as.walkCap[v] = walkCapMin
		}
		parked, epochs, pendingReal = as.parked, as.epochs, as.pendingReal
	}
	parkedCount := 0
	batcher, _ := adv.(StepBatcher)
	// stepLen returns StepLength(v, t), batched per node when the
	// adversary supports it: one hash-prefix derivation serves
	// stepLenBatch consecutive steps of a node, and each value is read
	// bit-identically to the per-call sequence the reference engine
	// draws (the function is pure, so reads are free to repeat).
	stepLen := func(v, t int) float64 {
		if batcher == nil {
			return adv.StepLength(v, t)
		}
		idx := t - as.stepFrom[v]
		base := v * stepLenBatch
		if idx < 0 || idx >= stepLenBatch {
			batcher.StepLengths(v, t, as.stepLens[base:base+stepLenBatch])
			as.stepFrom[v] = t
			idx = 0
		}
		return as.stepLens[base+idx]
	}
	if batcher != nil {
		if cap(as.stepLens) < n*stepLenBatch {
			as.stepLens = make([]float64, n*stepLenBatch)
		}
		as.stepLens = as.stepLens[:n*stepLenBatch]
		as.stepFrom = grow(as.stepFrom, n, 0)
		for v := range as.stepFrom {
			as.stepFrom[v] = -2 * stepLenBatch // nothing cached yet
		}
	}

	res := &AsyncResult{States: states}
	outputs := countOutputs(p.m, states)
	if outputs == n {
		return res, nil
	}

	var (
		seq      uint64
		maxParam float64
	)

	// replay advances parked node v through every skipped step strictly
	// before `until`, exactly as the reference engine would have
	// processed them. The node's ports are untouched since it parked
	// (any delivery unparks first), so its evolution is deterministic:
	// singleton silent rows chain until they reach a self-loop, which
	// then spins arithmetically. Each skipped step advances the state,
	// step index and last-step time, counts toward Steps and the
	// budget, and consumes its successor's step length (updating
	// maxParam) — bit-identical to materialized execution.
	// tieKey 0 replays strictly before `until`; a terminating step's
	// own key additionally includes a virtual step landing exactly on
	// `until` whose reference-order position precedes it.
	replay := func(v int, until float64, tieKey uint64) error {
		vt, vi := as.virtTime[v], as.virtIndex[v]
		lastL := as.virtLen[v] // length of the pending step at vt
		if vt > until || (vt == until && stepKey(lastL, int32(v)) >= tieKey) {
			return nil
		}
		steps := res.Steps
		mp := maxParam
		last := lastStepAt[v]
		cs := states[v]
		for vt < until {
			nx, kind := rc.silentNext(v, cs, ds)
			if kind == rowSilentSelf {
				// Self-loop: spin to the horizon in one tight loop.
				buf := as.stepBuf[:]
				bi, bn := 0, 0
				for vt < until {
					last = vt
					steps++
					if steps >= maxSteps {
						res.Steps = steps
						return fmt.Errorf("%w: %s after %d steps", ErrNoConvergence, machineName(p.m), steps)
					}
					var l float64
					if batcher != nil {
						if bi == bn {
							batcher.StepLengths(v, vi+1, buf)
							bi, bn = 0, len(buf)
						}
						l = buf[bi]
						bi++
					} else {
						l = adv.StepLength(v, vi+1)
					}
					if l <= 0 {
						return fmt.Errorf("engine: adversary returned non-positive step length %g for node %d step %d", l, v, vi+1)
					}
					if l > mp {
						mp = l
					}
					vt += l
					vi++
					lastL = l
				}
				break
			}
			// Chain hop: one deterministic silent step.
			last = vt
			steps++
			if steps >= maxSteps {
				res.Steps = steps
				return fmt.Errorf("%w: %s after %d steps", ErrNoConvergence, machineName(p.m), steps)
			}
			var l float64
			if batcher != nil {
				if idx := vi + 1 - as.stepFrom[v]; uint(idx) < stepLenBatch {
					l = as.stepLens[v*stepLenBatch+idx]
				} else {
					l = stepLen(v, vi+1)
				}
			} else {
				l = adv.StepLength(v, vi+1)
			}
			if l <= 0 {
				return fmt.Errorf("engine: adversary returned non-positive step length %g for node %d step %d", l, v, vi+1)
			}
			if l > mp {
				mp = l
			}
			vt += l
			vi++
			lastL = l
			cs = nx
		}
		if vt == until && stepKey(lastL, int32(v)) < tieKey {
			// A virtual step lands exactly on the terminating event's
			// time and precedes it in the reference's tie order:
			// process that one step too (its successor is strictly
			// later, so exactly one).
			nx, kind := rc.silentNext(v, cs, ds)
			last = vt
			steps++
			if steps >= maxSteps {
				res.Steps = steps
				return fmt.Errorf("%w: %s after %d steps", ErrNoConvergence, machineName(p.m), steps)
			}
			l := stepLen(v, vi+1)
			if l <= 0 {
				return fmt.Errorf("engine: adversary returned non-positive step length %g for node %d step %d", l, v, vi+1)
			}
			if l > mp {
				mp = l
			}
			vt += l
			vi++
			lastL = l
			if kind == rowSilentHop {
				cs = nx
			}
		}
		as.virtTime[v], as.virtIndex[v] = vt, vi
		as.virtLen[v] = lastL
		states[v] = cs
		res.Steps = steps
		maxParam = mp
		lastStepAt[v] = last
		stepIndex[v] = vi - 1
		return nil
	}

	// schedule decides how node v proceeds from state q with pending
	// step ti at absolute time tt. It walks the deterministic silent
	// chain ahead of the node (ports frozen until the next delivery, so
	// the walk is exact): a self-loop parks the node with no event at
	// all; a branching, transmitting or output-flipping row gets a real
	// event at its precomputed time, with the chain before it left
	// virtual for replay. The walk reads future step lengths but
	// commits nothing — lengths enter maxParam only when replay (or
	// materialized processing) consumes them, exactly when the
	// reference engine would.
	// l0 is the length of the pending step at (ti, tt) — the step tie
	// key the reference engine's push order implies (see stepKey).
	schedule := func(v int, q nfsm.State, ti int, tt float64, l0 float64) {
		if !canPark {
			lq.push(qevent{time: tt, seq: seq, node: int32(v), step: true})
			seq++
			return
		}
		as.virtTime[v], as.virtIndex[v] = tt, ti
		as.virtLen[v] = l0
		cs := q
		chainCap := int(as.walkCap[v])
		for hop := 0; ; hop++ {
			nx, kind := rc.silentNext(v, cs, ds)
			if kind == rowSilentSelf {
				// Spins until a delivery changes what it observes.
				parked[v] = true
				parkedCount++
				return
			}
			if kind != rowSilentHop || hop >= chainCap {
				// Real event (branching/transmitting row, or checkpoint
				// on a long chain); replay reconstructs the virtual
				// steps before it.
				lq.push(qevent{time: tt, seq: stepKey(l0, int32(v)), node: int32(v), epoch: epochs[v], step: true})
				pendingReal[v] = true
				if ti > as.virtIndex[v] {
					// Steps were virtualized ahead of the event. The
					// state alone cannot tell (a silent cycle returns
					// to its start state), so compare the step index.
					parked[v] = true
					parkedCount++
				}
				return
			}
			var l float64
			if batcher != nil {
				if idx := ti + 1 - as.stepFrom[v]; uint(idx) < stepLenBatch {
					l = as.stepLens[v*stepLenBatch+idx]
				} else {
					l = stepLen(v, ti+1)
				}
			} else {
				l = adv.StepLength(v, ti+1)
			}
			if l <= 0 {
				// The reference engine errors when this step consumes
				// the length; materialize it and let replay get there.
				lq.push(qevent{time: tt, seq: stepKey(l0, int32(v)), node: int32(v), epoch: epochs[v], step: true})
				pendingReal[v] = true
				if ti > as.virtIndex[v] {
					parked[v] = true
					parkedCount++
				}
				return
			}
			cs = nx
			tt += l
			ti++
			l0 = l
		}
	}

	for v := 0; v < n; v++ {
		l := adv.StepLength(v, 1)
		if l <= 0 {
			return nil, fmt.Errorf("engine: adversary returned non-positive step length %g for node %d step %d", l, v, 1)
		}
		if l > maxParam {
			maxParam = l
		}
		schedule(v, states[v], 1, l, l)
	}

	for {
		e, ok := lq.pop()
		if !ok {
			if parkedCount > 0 {
				// Every remaining event is a parked node's silent
				// self-loop spin: the reference engine keeps spinning
				// them (self-loops cannot produce an output
				// configuration) until the step budget aborts the run.
				return nil, fmt.Errorf("%w: %s after %d steps", ErrNoConvergence, machineName(p.m), maxSteps)
			}
			return nil, fmt.Errorf("%w: event queue drained", ErrNoConvergence)
		}
		v := int(e.node)
		if !e.step {
			// Delivery: overwrite the destination port. If the previous
			// value was written after the destination's last step, it was
			// never observable — a lost message.
			k := e.aux
			if parkedCount > 0 && parked[v] {
				if err := replay(v, e.time, 0); err != nil {
					return nil, err
				}
			}
			if vs != nil {
				// Voted decoding: the receipt enters the port's vote
				// window; only a winning letter touches the port, and a
				// confirming winner touches nothing at all.
				letter := nfsm.Letter(e.letter)
				outcome, winner := vs.receive(k, letter, rc.portDat[k])
				if outcome == voteCommit {
					if portWriteAt[k] > lastStepAt[v] {
						res.Lost++
					}
					rc.setPort(v, k, winner)
					portWriteAt[k] = e.time
				}
				if e.corrupt && vs.outvoted(outcome, winner, letter) {
					chStats.Outvoted++
				}
				continue
			}
			if portWriteAt[k] > lastStepAt[v] {
				res.Lost++
			}
			rc.setPort(v, k, nfsm.Letter(e.letter))
			portWriteAt[k] = e.time
			if nx, pending := dp.delivered(k); pending {
				lq.push(qevent{time: nx.time, seq: nx.seq, node: e.node, aux: k, letter: nx.letter})
			}
			if canPark && parked[v] {
				// The write may have changed what the node observes:
				// invalidate the precomputed chain and re-decide from
				// the landed state.
				parked[v] = false
				parkedCount--
				if pendingReal[v] {
					epochs[v]++
					pendingReal[v] = false
				}
				as.walkCap[v] = walkCapMin
				schedule(v, states[v], as.virtIndex[v], as.virtTime[v], as.virtLen[v])
			}
			continue
		}
		if canPark {
			if e.epoch != epochs[v] {
				continue // invalidated by a mid-chain delivery
			}
			if parked[v] {
				if err := replay(v, e.time, e.seq); err != nil {
					return nil, err
				}
				parked[v] = false
				parkedCount--
			}
			pendingReal[v] = false
		}

		t := stepIndex[v] + 1
		q := states[v]
		moves := rc.movesFor(v, q, ds)
		if len(moves) == 0 {
			return nil, fmt.Errorf("engine: δ empty at node %d state %d step %d", v, q, t)
		}
		var mv nfsm.Move
		if len(moves) == 1 {
			mv = moves[0]
		} else {
			mv = nfsm.PickMove(cfg.Seed, v, t, moves)
		}
		if mv.Next != q {
			if p.isOutputDS(mv.Next, ds) != p.isOutputDS(q, ds) {
				if p.isOutputDS(mv.Next, ds) {
					outputs++
				} else {
					outputs--
				}
			}
			states[v] = mv.Next
		}
		stepIndex[v] = t
		lastStepAt[v] = e.time
		res.Steps++
		if cfg.Observer != nil {
			cfg.Observer(e.time, v, t, mv.Next)
		}

		if mv.Emit != nfsm.NoLetter && vs != nil {
			// Voted tier: burst K copies per edge; re-pulses (emissions
			// from pausing states) advance stall counters and are gated
			// by the per-edge backoff, round messages are never gated.
			isRP := vs.isRePulse != nil && vs.isRePulse(q)
			if isRP {
				vs.rePulses++
			}
			sent := false
			K := int(vs.k)
			for k := csr.NbrOff[v]; k < csr.NbrOff[v+1]; k++ {
				u := csr.NbrDat[k]
				if isRP {
					send, evictNow := vs.fireEdge(k)
					if evictNow {
						rc.evictPort(v, k)
						res.EvictedEdges = append(res.EvictedEdges, [2]int{v, int(u)})
					}
					if !send {
						continue
					}
				}
				d := adv.Delay(v, t, int(u))
				if d <= 0 {
					return nil, fmt.Errorf("engine: adversary returned non-positive delay %g for node %d step %d", d, v, t)
				}
				if d > maxParam {
					maxParam = d
				}
				sent = true
				dst := csr.NbrOff[u] + csr.RevPort[k]
				for c := 0; c < K; c++ {
					if model == nil {
						at := e.time + d
						if at < lastDelivery[k] {
							at = lastDelivery[k] // FIFO per directed edge
						}
						lastDelivery[k] = at
						lq.push(qevent{time: at, seq: seq, node: u, aux: dst, letter: int32(mv.Emit)})
						seq++
						continue
					}
					fates := channel.ExpandAt(model, v, t, int(u), c, mv.Emit, p.nl, as.chBuf, &chStats)
					as.chBuf = fates
					for _, f := range fates {
						at := e.time + d + f.Extra
						if reorders {
							// No FIFO clamp: count the overtakes instead.
							if at < lastDelivery[k] {
								res.Reordered++
							} else {
								lastDelivery[k] = at
							}
						} else {
							if at < lastDelivery[k] {
								at = lastDelivery[k] // FIFO per directed edge
							}
							lastDelivery[k] = at
						}
						lq.push(qevent{time: at, seq: seq, node: u, aux: dst, letter: int32(f.Letter), corrupt: f.Corrupt})
						seq++
					}
				}
			}
			if sent {
				res.Transmissions++
			}
		} else if mv.Emit != nfsm.NoLetter {
			res.Transmissions++
			emit := int32(mv.Emit)
			for k := csr.NbrOff[v]; k < csr.NbrOff[v+1]; k++ {
				u := csr.NbrDat[k]
				d := adv.Delay(v, t, int(u))
				if d <= 0 {
					return nil, fmt.Errorf("engine: adversary returned non-positive delay %g for node %d step %d", d, v, t)
				}
				if d > maxParam {
					maxParam = d
				}
				if model == nil {
					at := e.time + d
					if at < lastDelivery[k] {
						at = lastDelivery[k] // FIFO per directed edge
					}
					lastDelivery[k] = at
					dst := csr.NbrOff[u] + csr.RevPort[k]
					sq := seq
					seq++
					if dp.enqueue(dst, at, sq, emit) {
						lq.push(qevent{time: at, seq: sq, node: u, aux: dst, letter: emit})
					}
					continue
				}
				fates := channel.Expand(model, v, t, int(u), mv.Emit, p.nl, as.chBuf, &chStats)
				as.chBuf = fates
				dst := csr.NbrOff[u] + csr.RevPort[k]
				for _, f := range fates {
					at := e.time + d + f.Extra
					if reorders {
						// No FIFO clamp: count the overtakes instead.
						if at < lastDelivery[k] {
							res.Reordered++
						} else {
							lastDelivery[k] = at
						}
					} else {
						if at < lastDelivery[k] {
							at = lastDelivery[k] // FIFO per directed edge
						}
						lastDelivery[k] = at
					}
					sq := seq
					seq++
					if usePool {
						if dp.enqueue(dst, at, sq, int32(f.Letter)) {
							lq.push(qevent{time: at, seq: sq, node: u, aux: dst, letter: int32(f.Letter)})
						}
					} else {
						lq.push(qevent{time: at, seq: sq, node: u, aux: dst, letter: int32(f.Letter)})
					}
				}
			}
		}

		if outputs == n {
			if parkedCount > 0 {
				// Flush the parked nodes' skipped steps (all strictly
				// before the terminating event under a TieFree
				// adversary) so States, Steps, maxParam and the budget
				// reflect exactly what the reference engine processed.
				// The terminating step itself is uncounted during the
				// flush: the reference checks termination before the
				// budget, so a run ending exactly on the budget's last
				// step succeeds.
				res.Steps--
				for w := 0; w < n; w++ {
					if parked[w] {
						if err := replay(w, e.time, e.seq); err != nil {
							return nil, err
						}
					}
				}
				res.Steps++
			}
			res.Time = e.time
			res.TimeUnits = e.time / maxParam
			res.Dropped, res.Duplicated, res.Delayed, res.Corrupted = chStats.Dropped, chStats.Duplicated, chStats.Delayed, chStats.Corrupted
			res.Outvoted = chStats.Outvoted
			if vs != nil {
				vs.fill(res)
			}
			return res, nil
		}
		if res.Steps >= maxSteps {
			return nil, fmt.Errorf("%w: %s after %d steps", ErrNoConvergence, machineName(p.m), res.Steps)
		}
		if canPark && len(moves) == 1 && mv.Emit == nfsm.NoLetter {
			// A materialized silent step is a checkpoint reached
			// undisturbed: open the node's walk window fully (it closes
			// again on the next delivery invalidation, keeping re-walks
			// cheap where deliveries are frequent).
			as.walkCap[v] = walkCapMax
		}
		l := stepLen(v, t+1)
		if l <= 0 {
			return nil, fmt.Errorf("engine: adversary returned non-positive step length %g for node %d step %d", l, v, t+1)
		}
		if l > maxParam {
			maxParam = l
		}
		schedule(v, mv.Next, t+1, e.time+l, l)
	}
}
