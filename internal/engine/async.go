package engine

import (
	"fmt"

	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/scenario"
)

// AsyncConfig parameterizes an asynchronous run.
type AsyncConfig struct {
	// Seed keys the protocol's random choices (the adversary carries its
	// own seed; Section 2 requires the adversary be oblivious to the
	// protocol's coins, which separate seeds guarantee).
	Seed uint64
	// Adversary supplies every step length and delivery delay. Nil
	// selects the Synchronous policy.
	Adversary Adversary
	// MaxSteps aborts the run when the total number of node steps
	// exceeds it; zero selects 1<<24.
	MaxSteps int64
	// Init optionally assigns per-node initial states, as in SyncConfig.
	Init []nfsm.State
	// Observer, when non-nil, is invoked after every node step with the
	// event time, the node, its step index and its new state. Used by
	// analysis instrumentation (e.g. the synchronization-property tests).
	Observer func(time float64, node, step int, state nfsm.State)
	// Scenario, when non-nil and non-empty, makes the run dynamic: each
	// mutation batch is applied at absolute time Batch.At, before any
	// event scheduled at or after that time. Surviving node and port
	// state (letters, FIFO horizons, write times) is carried across
	// topology re-binds; deliveries in flight on a removed edge are
	// dropped; crashed nodes stop stepping and restarted ones resume
	// from a reboot. The reset policy must be concrete (the protocol
	// layer resolves ResetAuto). Nil or empty scenarios take the
	// unchanged static path.
	Scenario *scenario.Scenario
}

// AsyncResult reports a completed asynchronous run.
type AsyncResult struct {
	// Time is the absolute time at which the output configuration was
	// reached, in the adversary's raw scale.
	Time float64
	// TimeUnits is the paper's run-time measure: Time divided by the
	// largest step-length or delay parameter used before completion.
	TimeUnits float64
	// Steps is the total number of node steps executed.
	Steps int64
	// Transmissions counts non-ε transmissions.
	Transmissions int64
	// Lost counts deliveries that overwrote a port value which the
	// destination node had not yet observed in any step — messages the
	// adversary destroyed, as permitted by the model (no buffering).
	Lost int64
	// States is the final state of every node.
	States []nfsm.State

	// PerturbedAt lists the absolute times of a dynamic run's mutation
	// batches. Nil for static runs.
	PerturbedAt []float64
	// RecoveryTime is the absolute time from the last perturbation to
	// the final output configuration (0 when nothing was perturbed);
	// RecoveryTimeUnits is the same span in the paper's normalized
	// measure.
	RecoveryTime      float64
	RecoveryTimeUnits float64
	// FinalGraph is the post-mutation topology of a dynamic run — the
	// graph any output validator must be checked against. Nil for
	// static runs.
	FinalGraph *graph.Graph
}

// event is a queue entry: either a node step or a port delivery.
type event struct {
	time   float64
	seq    uint64 // FIFO-stable tiebreak for equal times
	node   int
	port   int         // delivery only
	letter nfsm.Letter // delivery only
	step   bool        // true: node step; false: delivery
}

// eventQueue is a hand-rolled binary min-heap of events ordered by
// (time, seq). It replaces container/heap to keep events out of
// interface{} boxes: Push/Pop allocated one escape per event, which
// dominated RunAsync's allocation profile. The (time, seq) key is a
// total order (seq is unique), so the pop sequence — and therefore the
// whole execution — is independent of the heap's internal layout.
type eventQueue struct {
	ev []event
}

func (h *eventQueue) len() int { return len(h.ev) }

func (h *eventQueue) less(i, j int) bool {
	if h.ev[i].time != h.ev[j].time {
		return h.ev[i].time < h.ev[j].time
	}
	return h.ev[i].seq < h.ev[j].seq
}

func (h *eventQueue) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *eventQueue) pop() event {
	root := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev = h.ev[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return root
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
}

// RunAsync executes machine m on graph g in the asynchronous environment
// of Section 2 under the given adversarial policy. Like RunSync it goes
// through the compiled fast path; Compile once and call Program.RunAsync
// to amortize the lowering across runs.
func RunAsync(m nfsm.Machine, g *graph.Graph, cfg AsyncConfig) (*AsyncResult, error) {
	return Compile(m, g).RunAsync(cfg)
}

// RunAsync executes the compiled program asynchronously. The event loop
// is sequential (the adversary's timing makes steps causally dependent),
// but it shares the synchronous executor's representation: flat δ
// lookups, the CSR edge order for ports and the flattened reverse-port
// table for deliveries, and incremental count maintenance in place of
// per-step port rescans.
func (p *Program) RunAsync(cfg AsyncConfig) (*AsyncResult, error) {
	if !cfg.Scenario.Empty() {
		return p.runAsyncScenario(cfg)
	}
	n := p.g.N()
	states, err := initialStates(p.m, n, cfg.Init)
	if err != nil {
		return nil, err
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = Synchronous{}
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1 << 24
	}

	csr := p.csr
	rc := newRunCounts(p)
	cbuf := make([]nfsm.Count, p.nl)

	// portWriteAt[k] is the time of the last write to the port at CSR
	// edge slot k (-1 initially); lastDelivery[k] enforces FIFO on the
	// directed edge at slot k (v → NbrDat[k]).
	portWriteAt := make([]float64, len(csr.NbrDat))
	for k := range portWriteAt {
		portWriteAt[k] = -1
	}
	lastDelivery := make([]float64, len(csr.NbrDat))

	stepIndex := make([]int, n)      // steps completed so far per node
	lastStepAt := make([]float64, n) // time of last completed step

	res := &AsyncResult{States: states}
	outputs := countOutputs(p.m, states)
	if outputs == n {
		return res, nil
	}

	var (
		h        eventQueue
		seq      uint64
		maxParam float64
	)
	useParam := func(d float64, kind string, v, t int) (float64, error) {
		if d <= 0 {
			return 0, fmt.Errorf("engine: adversary returned non-positive %s %g for node %d step %d", kind, d, v, t)
		}
		if d > maxParam {
			maxParam = d
		}
		return d, nil
	}
	push := func(e event) {
		e.seq = seq
		seq++
		h.push(e)
	}

	for v := 0; v < n; v++ {
		l, err := useParam(adv.StepLength(v, 1), "step length", v, 1)
		if err != nil {
			return nil, err
		}
		push(event{time: l, node: v, step: true})
	}

	for h.len() > 0 {
		e := h.pop()
		if !e.step {
			// Delivery: overwrite the destination port. If the previous
			// value was written after the destination's last step, it was
			// never observable — a lost message.
			k := csr.NbrOff[e.node] + int32(e.port)
			if portWriteAt[k] > lastStepAt[e.node] {
				res.Lost++
			}
			rc.setPort(e.node, k, e.letter)
			portWriteAt[k] = e.time
			continue
		}

		v := e.node
		t := stepIndex[v] + 1
		q := states[v]
		moves := rc.movesFor(v, q, cbuf)
		if len(moves) == 0 {
			return nil, fmt.Errorf("engine: δ empty at node %d state %d step %d", v, q, t)
		}
		mv := nfsm.PickMove(cfg.Seed, v, t, moves)
		if p.isOutput(mv.Next) != p.isOutput(q) {
			if p.isOutput(mv.Next) {
				outputs++
			} else {
				outputs--
			}
		}
		states[v] = mv.Next
		stepIndex[v] = t
		lastStepAt[v] = e.time
		res.Steps++
		if cfg.Observer != nil {
			cfg.Observer(e.time, v, t, mv.Next)
		}

		if mv.Emit != nfsm.NoLetter {
			res.Transmissions++
			for k := csr.NbrOff[v]; k < csr.NbrOff[v+1]; k++ {
				u := int(csr.NbrDat[k])
				d, err := useParam(adv.Delay(v, t, u), "delay", v, t)
				if err != nil {
					return nil, err
				}
				at := e.time + d
				if at < lastDelivery[k] {
					at = lastDelivery[k] // FIFO per directed edge
				}
				lastDelivery[k] = at
				push(event{time: at, node: u, port: int(csr.RevPort[k]), letter: mv.Emit})
			}
		}

		if outputs == n {
			res.Time = e.time
			res.TimeUnits = e.time / maxParam
			return res, nil
		}
		if res.Steps >= maxSteps {
			return nil, fmt.Errorf("%w: %s after %d steps", ErrNoConvergence, machineName(p.m), res.Steps)
		}
		l, err := useParam(adv.StepLength(v, t+1), "step length", v, t+1)
		if err != nil {
			return nil, err
		}
		push(event{time: e.time + l, node: v, step: true})
	}
	return nil, fmt.Errorf("%w: event queue drained", ErrNoConvergence)
}
