package engine

import (
	"stoneage/internal/nfsm"
)

// This file implements the engine half of the voted synchronizer tier
// (αβv, synchro.CompileVoted). The compiled machine is the αβ hybrid
// unchanged; what the voted contract adds lives entirely in the
// executor, because all three mechanisms are per-directed-edge state
// that a constant-size per-node machine cannot carry:
//
//   - Voted pulse decoding: a receipt commits to the receiving port
//     only when its letter holds K of the last 2K−1 receipts on that
//     port (the window admits at most one such winner). Every non-ε
//     transmission is sent as a burst of K copies per edge, so on a
//     reliable link the K-th copy lands at the same absolute time a
//     single αβ copy would and the commit times — hence the run's
//     time-unit measure — are unchanged, while a corrupted copy needs
//     K−1 equally corrupted companions inside the window to be
//     believed.
//
//   - Dead-edge eviction: each transmitted re-pulse advances a stall
//     counter on its edge; any receipt resets it — eviction targets
//     silence, corruption is the vote's job, so a live edge whose
//     receipts keep losing the vote never evicts. An edge whose
//     EvictAfter-th consecutive re-pulse would go unanswered is
//     evicted instead of re-pulsed — the port permanently reads as ε
//     (it stops counting toward any letter), which unsticks the
//     pausing feature a Byzantine-silent neighbor would otherwise
//     deadlock forever. Strikes only count once the backoff cadence
//     has fully decayed to its cap — the edge is condemned after E
//     unanswered re-pulses at maximal slack, not after E raw timeout
//     firings. The eviction clock runs in the evictor's own firings,
//     so a raw clock misreads any live neighbor whose steps are
//     merely slower: a transient firing-rate imbalance on a lossy
//     link, or a 16× step-skewed neighbor still making progress,
//     empirically evicts half the graph under a raw 3-firing clock.
//     Riding the decayed cadence stretches the runway to
//     (BackoffCap−1) + E·BackoffCap firings (31 at the defaults)
//     while keeping the three-strike contract; with backoff disabled
//     (cap 1) it degenerates to exactly E consecutive firings. The
//     run records every evicted edge: an evicted honest edge is a
//     measured correctness cost, not a silent one.
//
//   - Adaptive re-pulse backoff: re-pulse transmissions are gated per
//     outgoing edge by a multiplicative window (doubling up to
//     BackoffCap firings, reset to 1 by any receipt from that
//     neighbor), so a live edge re-pulses at full αβ cadence while a
//     dead or drastically skewed one decays to 1-in-BackoffCap. The
//     receipt reset has to accept non-winning receipts for the same
//     reason the stall reset does: both run on the firing clock the
//     eviction threshold counts, so a gate that only a decoded winner
//     could reset would starve a live-but-noisy neighbor's stall
//     counter into a spurious eviction.
//
// All four asynchronous executors (static and dynamic, ladder and
// reference) drive the same votedState methods in the same per-slot
// order, the way they share channel.Expand — the decoding logic exists
// once, so the executor pairs cannot diverge on it.

// VotedConfig parameterizes the voted synchronizer tier. The zero
// value of each knob selects its default.
type VotedConfig struct {
	// K is the vote threshold: a receipt letter commits when it holds
	// K of the last 2K−1 receipts on the port, and every transmission
	// bursts K copies per edge. K=1 degenerates the decoder to the αβ
	// contract (every receipt commits); the default is 2.
	K int
	// EvictAfter is the number of consecutive unanswered re-pulses at
	// fully decayed backoff cadence before the edge is evicted (the
	// EvictAfter-th strike evicts instead of transmitting). The
	// default is 3.
	EvictAfter int
	// BackoffCap caps the per-edge re-pulse gating window, in firings.
	// The default is 8; 1 disables backoff (every firing transmits).
	BackoffCap int
	// RePulseSource classifies emissions: an emission made from state
	// s is a re-pulse (gated per edge, advancing stall counters)
	// rather than a fresh round message (never gated). The protocol
	// layer wires synchro.(*Compiled).RePulseSource here. Nil treats
	// every emission as a round message: voting still applies, but no
	// edge ever stalls or backs off.
	RePulseSource func(nfsm.State) bool
}

func (c *VotedConfig) k() int32 {
	if c.K <= 0 {
		return 2
	}
	return int32(c.K)
}

func (c *VotedConfig) evictAfter() int32 {
	if c.EvictAfter <= 0 {
		return 3
	}
	return int32(c.EvictAfter)
}

func (c *VotedConfig) backoffCap() int32 {
	if c.BackoffCap <= 0 {
		return 8
	}
	return int32(c.BackoffCap)
}

// Vote outcomes of votedState.receive.
const (
	voteIgnored  int8 = iota // evicted slot: the receipt is discarded
	voteNoWinner             // no letter holds K of the window
	voteConfirm              // the winner is already the committed value
	voteCommit               // commit the winner (caller writes the port)
)

// votedState is the per-run voted-decoder state, indexed by directed
// edge slot. Slot numbering is the CSR edge-slot space: slot k of node
// v's block serves both directions of the edge {v, u=NbrDat[k]} — the
// receiving role (v's port from u: vote ring, stall counter, evicted
// flag) and the sending role (v's re-pulse gate toward u). Reference
// executors index the same space through a prefix-degree offset, which
// coincides with CSR slots on the sorted adjacency.
type votedState struct {
	k          int32 // vote threshold
	win        int32 // ring size, 2k−1
	evictAfter int32
	capW       int32
	isRePulse  func(nfsm.State) bool

	ring    []int32 // ring[slot*win+i]: last receipts, −1 = empty
	ringPos []int32
	stall   []int32
	dead    []bool
	rpGap   []int32
	rpWin   []int32

	rejections   int64 // receipts that produced no winner
	rePulses     int64 // re-pulse firings (node emissions)
	rePulseSends int64 // re-pulse transmissions actually sent, per edge
}

func newVotedState(cfg *VotedConfig, ne int) *votedState {
	vs := &votedState{
		k:          cfg.k(),
		evictAfter: cfg.evictAfter(),
		capW:       cfg.backoffCap(),
		isRePulse:  cfg.RePulseSource,
	}
	vs.win = 2*vs.k - 1
	vs.ring = make([]int32, ne*int(vs.win))
	for i := range vs.ring {
		vs.ring[i] = -1
	}
	vs.ringPos = make([]int32, ne)
	vs.stall = make([]int32, ne)
	vs.dead = make([]bool, ne)
	vs.rpGap = make([]int32, ne)
	vs.rpWin = make([]int32, ne)
	for i := range vs.rpWin {
		vs.rpWin[i] = 1
	}
	return vs
}

// receive records one receipt on a receiving slot and resolves the
// vote. cur is the port's committed value. Any receipt resets the
// slot's stall counter and re-pulse backoff (the edge proved live —
// only silence evicts or decays the cadence). With window
// 1 the decoder degenerates to the αβ contract
// exactly: every receipt returns voteCommit, including same-letter
// overwrites, so the caller's write-time and lost-message bookkeeping
// reproduces the αβ engine bit for bit.
func (vs *votedState) receive(slot int32, letter, cur nfsm.Letter) (int8, nfsm.Letter) {
	if vs.dead[slot] {
		return voteIgnored, nfsm.NoLetter
	}
	vs.stall[slot] = 0
	vs.rpGap[slot], vs.rpWin[slot] = 0, 1
	base := slot * vs.win
	pos := vs.ringPos[slot]
	vs.ring[base+pos] = int32(letter)
	if pos++; pos == vs.win {
		pos = 0
	}
	vs.ringPos[slot] = pos
	// At most one letter can hold k of the 2k−1 window entries.
	winner := int32(-1)
	for i := int32(0); i < vs.win && winner < 0; i++ {
		c := vs.ring[base+i]
		if c < 0 {
			continue
		}
		n := int32(0)
		for j := int32(0); j < vs.win; j++ {
			if vs.ring[base+j] == c {
				n++
			}
		}
		if n >= vs.k {
			winner = c
		}
	}
	if winner < 0 {
		vs.rejections++
		return voteNoWinner, nfsm.NoLetter
	}
	if vs.win > 1 && nfsm.Letter(winner) == cur {
		return voteConfirm, nfsm.Letter(winner)
	}
	return voteCommit, nfsm.Letter(winner)
}

// fireEdge advances the per-edge state for one re-pulse firing of the
// edge at slot k. Firings inside the backoff window neither transmit
// nor count; a send opportunity while the window is still growing
// transmits and doubles the window; once the window sits at the cap,
// each opportunity is a strike, and the EvictAfter-th consecutive
// strike evicts instead of transmitting (the caller clears the port
// and records the edge). send reports whether the re-pulse is
// transmitted on this edge.
func (vs *votedState) fireEdge(k int32) (send, evict bool) {
	if vs.dead[k] {
		return false, false
	}
	vs.rpGap[k]++
	if vs.rpGap[k] < vs.rpWin[k] {
		return false, false
	}
	vs.rpGap[k] = 0
	if vs.rpWin[k] < vs.capW {
		if w := 2 * vs.rpWin[k]; w <= vs.capW {
			vs.rpWin[k] = w
		} else {
			vs.rpWin[k] = vs.capW
		}
	} else {
		vs.stall[k]++
		if vs.stall[k] >= vs.evictAfter {
			vs.dead[k] = true
			return false, true
		}
	}
	vs.rePulseSends++
	return true, false
}

// outvoted reports whether a corrupted receipt was refused: it entered
// the vote and its letter was not the committed winner.
func (vs *votedState) outvoted(outcome int8, winner, letter nfsm.Letter) bool {
	switch outcome {
	case voteNoWinner:
		return true
	case voteConfirm, voteCommit:
		return winner != letter
	}
	return false // voteIgnored: discarded by eviction, not outvoted
}

// resetSlots clears the voted state of one node's slot range — the
// engine half of a node reboot (restart, wake, or reset policy), which
// also restores every port to the initial letter. Previously recorded
// evictions stay recorded; the rebooted node just starts listening
// again.
func (vs *votedState) resetSlots(lo, hi int32) {
	for k := lo; k < hi; k++ {
		vs.dead[k] = false
		vs.stall[k] = 0
		vs.rpGap[k], vs.rpWin[k] = 0, 1
		vs.ringPos[k] = 0
		base := k * vs.win
		for i := int32(0); i < vs.win; i++ {
			vs.ring[base+i] = -1
		}
	}
}

// fill copies the decoder's counters into a completed result.
func (vs *votedState) fill(res *AsyncResult) {
	res.VotedRejections = vs.rejections
	res.RePulses = vs.rePulses
	res.RePulseSends = vs.rePulseSends
}
