package nfsm

import "fmt"

// Builder constructs literal single-letter-query Protocols incrementally,
// with named states and letters and per-count transitions, so protocol
// tables read as specifications instead of nested slice literals.
//
//	b := nfsm.NewBuilder("wave", 1)
//	ping := b.Letter("ping")
//	quiet := b.Letter("quiet")
//	idle, source, done := b.State("idle"), b.State("source"), b.State("done")
//	b.SetInput(idle, source)
//	b.SetOutput(done)
//	b.SetInitial(quiet)
//	b.Query(idle, ping)
//	b.Stay(idle, 0)
//	b.Move(idle, 1, done, ping)
//	b.Query(source, ping)
//	b.MoveAll(source, done, ping)
//	b.Query(done, ping)
//	b.StayAll(done)
//	p, err := b.Build()
//
// Calling Move several times for the same (state, count) accumulates
// alternatives the executing node chooses among uniformly at random.
type Builder struct {
	name     string
	bound    int
	states   []string
	letters  []string
	input    []State
	output   map[State]bool
	initial  Letter
	hasInit  bool
	query    map[State]Letter
	delta    map[State][][]Move
	buildErr error
}

// NewBuilder starts a protocol named name with bounding parameter bound.
func NewBuilder(name string, bound int) *Builder {
	return &Builder{
		name:   name,
		bound:  bound,
		output: make(map[State]bool),
		query:  make(map[State]Letter),
		delta:  make(map[State][][]Move),
	}
}

func (b *Builder) fail(format string, args ...any) {
	if b.buildErr == nil {
		b.buildErr = fmt.Errorf("nfsm builder(%s): %s", b.name, fmt.Sprintf(format, args...))
	}
}

// State registers a new named state and returns its identifier.
func (b *Builder) State(name string) State {
	b.states = append(b.states, name)
	return State(len(b.states) - 1)
}

// Letter registers a new named letter and returns its identifier.
func (b *Builder) Letter(name string) Letter {
	b.letters = append(b.letters, name)
	return Letter(len(b.letters) - 1)
}

// SetInput declares Q_I; the first state is the default initial state.
func (b *Builder) SetInput(states ...State) { b.input = states }

// SetOutput declares the given states as members of Q_O.
func (b *Builder) SetOutput(states ...State) {
	for _, q := range states {
		b.output[q] = true
	}
}

// SetInitial declares σ₀.
func (b *Builder) SetInitial(l Letter) {
	b.initial = l
	b.hasInit = true
}

// Query assigns λ(q) = l.
func (b *Builder) Query(q State, l Letter) {
	if _, dup := b.query[q]; dup {
		b.fail("state %d has two query letters", q)
		return
	}
	b.query[q] = l
}

// Move adds the option (next, emit) to δ(q, count); count ranges over
// 0..bound, with bound meaning "≥bound". Use NoLetter for ε.
func (b *Builder) Move(q State, count int, next State, emit Letter) {
	if count < 0 || count > b.bound {
		b.fail("count %d outside [0,%d] at state %d", count, b.bound, q)
		return
	}
	rows := b.delta[q]
	if rows == nil {
		rows = make([][]Move, b.bound+1)
		b.delta[q] = rows
	}
	rows[count] = append(rows[count], Move{Next: next, Emit: emit})
}

// MoveAll adds the option (next, emit) to δ(q, c) for every count c.
func (b *Builder) MoveAll(q State, next State, emit Letter) {
	for c := 0; c <= b.bound; c++ {
		b.Move(q, c, next, emit)
	}
}

// Stay makes the node remain in q silently for the given counts.
func (b *Builder) Stay(q State, counts ...int) {
	for _, c := range counts {
		b.Move(q, c, q, NoLetter)
	}
}

// StayAll makes q a silent fixpoint for every count (sinks, delays).
func (b *Builder) StayAll(q State) { b.MoveAll(q, q, NoLetter) }

// Build assembles and validates the protocol.
func (b *Builder) Build() (*Protocol, error) {
	if b.buildErr != nil {
		return nil, b.buildErr
	}
	if !b.hasInit {
		return nil, fmt.Errorf("nfsm builder(%s): initial letter not set", b.name)
	}
	p := &Protocol{
		Name:        b.name,
		StateNames:  b.states,
		LetterNames: b.letters,
		Input:       b.input,
		Output:      make([]bool, len(b.states)),
		Initial:     b.initial,
		B:           b.bound,
		Query:       make([]Letter, len(b.states)),
		Delta:       make([][][]Move, len(b.states)),
	}
	for q := range b.states {
		if b.output[State(q)] {
			p.Output[q] = true
		}
		ql, ok := b.query[State(q)]
		if !ok {
			return nil, fmt.Errorf("nfsm builder(%s): state %q has no query letter", b.name, b.states[q])
		}
		p.Query[q] = ql
		rows := b.delta[State(q)]
		if rows == nil {
			return nil, fmt.Errorf("nfsm builder(%s): state %q has no transitions", b.name, b.states[q])
		}
		for c, moves := range rows {
			if len(moves) == 0 {
				return nil, fmt.Errorf("nfsm builder(%s): state %q has no move for count %d",
					b.name, b.states[q], c)
			}
			_ = c
		}
		p.Delta[q] = rows
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
