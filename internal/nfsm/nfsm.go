// Package nfsm defines the paper's computational model: the networked
// finite state machine (nFSM) protocol of Section 2, and the multi-letter
// "round protocol" authoring layer that Theorems 3.1 and 3.4 justify.
//
// A Protocol is the literal 8-tuple Π = ⟨Q, Q_I, Q_O, Σ, σ₀, b, λ, δ⟩:
// finite states, input and output state subsets, a finite communication
// alphabet, an initial letter, the one-two-many bounding parameter b, a
// query-letter assignment λ and a randomized transition function δ. Every
// component is of constant size independent of the network — the package
// validates this is at least structurally respected (no component may
// depend on a node's degree because the types cannot express it).
//
// A RoundProtocol is the convenient layer the paper's Sections 4 and 5 are
// written in: it assumes a locally synchronous environment and
// multiple-letter queries (the transition observes the full vector
// ⟨f_b(#σ)⟩ over σ ∈ Σ). Package synchro compiles a RoundProtocol down to
// an asynchronous single-letter Protocol exactly as Theorems 3.1/3.4
// prescribe.
package nfsm

import (
	"fmt"

	"stoneage/internal/xrand"
)

// State indexes the protocol's state set Q.
type State int

// Letter indexes the protocol's communication alphabet Σ.
type Letter int

// NoLetter is the empty transmission ε: the node sends nothing and the
// neighbors' ports are unaffected.
const NoLetter Letter = -1

// Count is a port-count observation already clamped by f_b: values
// 0..b-1 are exact, the value b encodes the symbol "≥b".
type Count int

// ClampCount applies the paper's one-two-many function f_b.
func ClampCount(x, b int) Count {
	if x >= b {
		return Count(b)
	}
	return Count(x)
}

// Move is one entry of the set returned by the transition function δ: the
// next state and the letter transmitted (NoLetter for ε). When δ returns
// several moves, the engine picks one uniformly at random.
type Move struct {
	Next State
	Emit Letter
}

// Machine is the common execution interface implemented by Protocol and
// RoundProtocol. The engines drive any Machine.
//
// Moves must be a pure function of its arguments and must return at least
// one move for every reachable (state, counts) pair; the slice ordering
// must be deterministic because the engines derive the uniform choice from
// a deterministic coin (this is what makes cross-engine comparison of
// Lemma 6.1 possible).
type Machine interface {
	// NumStates returns |Q|.
	NumStates() int
	// NumLetters returns |Σ|.
	NumLetters() int
	// InitialLetter returns σ₀, the letter pre-loaded in every port.
	InitialLetter() Letter
	// Bound returns the one-two-many parameter b ≥ 1.
	Bound() int
	// IsOutput reports whether q ∈ Q_O.
	IsOutput(q State) bool
	// InputState returns the default initial state (the single input
	// state for problems without per-node input).
	InputState() State
	// Moves returns δ applied to state q and the clamped count vector
	// (indexed by Letter). Implementations restricted to single-letter
	// queries read only one entry.
	Moves(q State, counts []Count) []Move
}

// SingleQuery is implemented by machines that query exactly one letter per
// state (the literal model of Section 2). Engines use it to avoid counting
// letters the machine cannot observe.
type SingleQuery interface {
	// QueryLetter returns λ(q).
	QueryLetter(q State) Letter
}

// Protocol is the literal nFSM 8-tuple with single-letter queries. Delta
// is indexed as Delta[q][c] where c ∈ {0..b} is the clamped count of the
// query letter Query[q]; each entry is the non-empty set of moves.
type Protocol struct {
	// Name identifies the protocol in traces and error messages.
	Name string
	// StateNames gives |Q| human-readable state names.
	StateNames []string
	// LetterNames gives |Σ| human-readable letter names.
	LetterNames []string
	// Input is Q_I. Input[0] is the default initial state.
	Input []State
	// Output is Q_O as a membership mask of length |Q|.
	Output []bool
	// Initial is σ₀.
	Initial Letter
	// B is the bounding parameter b ≥ 1.
	B int
	// Query is λ: the letter queried in each state.
	Query []Letter
	// Delta is δ: Delta[q][c] lists the moves available when residing in
	// state q and observing clamped count c of letter Query[q].
	Delta [][][]Move
}

var _ Machine = (*Protocol)(nil)
var _ SingleQuery = (*Protocol)(nil)

// NumStates implements Machine.
func (p *Protocol) NumStates() int { return len(p.StateNames) }

// NumLetters implements Machine.
func (p *Protocol) NumLetters() int { return len(p.LetterNames) }

// InitialLetter implements Machine.
func (p *Protocol) InitialLetter() Letter { return p.Initial }

// Bound implements Machine.
func (p *Protocol) Bound() int { return p.B }

// IsOutput implements Machine.
func (p *Protocol) IsOutput(q State) bool { return p.Output[q] }

// InputState implements Machine.
func (p *Protocol) InputState() State { return p.Input[0] }

// QueryLetter implements SingleQuery.
func (p *Protocol) QueryLetter(q State) Letter { return p.Query[q] }

// Moves implements Machine.
func (p *Protocol) Moves(q State, counts []Count) []Move {
	return p.Delta[q][counts[p.Query[q]]]
}

// Validate checks the protocol's structural well-formedness: every index
// in range, δ total over Q × {0..b}, non-empty input set, at least one
// output state reachable structurally. It enumerates the full finite
// domain, which is possible precisely because requirement (M4) bounds all
// components by constants.
func (p *Protocol) Validate() error {
	nq, nl := p.NumStates(), p.NumLetters()
	if nq == 0 {
		return fmt.Errorf("nfsm(%s): empty state set", p.Name)
	}
	if nl == 0 {
		return fmt.Errorf("nfsm(%s): empty alphabet", p.Name)
	}
	if p.B < 1 {
		return fmt.Errorf("nfsm(%s): bounding parameter b = %d < 1", p.Name, p.B)
	}
	if p.Initial < 0 || int(p.Initial) >= nl {
		return fmt.Errorf("nfsm(%s): initial letter %d out of range", p.Name, p.Initial)
	}
	if len(p.Input) == 0 {
		return fmt.Errorf("nfsm(%s): empty input state set", p.Name)
	}
	for _, q := range p.Input {
		if q < 0 || int(q) >= nq {
			return fmt.Errorf("nfsm(%s): input state %d out of range", p.Name, q)
		}
	}
	if len(p.Output) != nq {
		return fmt.Errorf("nfsm(%s): output mask length %d != |Q| %d", p.Name, len(p.Output), nq)
	}
	if len(p.Query) != nq {
		return fmt.Errorf("nfsm(%s): query assignment length %d != |Q| %d", p.Name, len(p.Query), nq)
	}
	for q, l := range p.Query {
		if l < 0 || int(l) >= nl {
			return fmt.Errorf("nfsm(%s): query letter of state %d out of range", p.Name, q)
		}
	}
	if len(p.Delta) != nq {
		return fmt.Errorf("nfsm(%s): delta has %d state rows, want %d", p.Name, len(p.Delta), nq)
	}
	for q := range p.Delta {
		if len(p.Delta[q]) != p.B+1 {
			return fmt.Errorf("nfsm(%s): delta[%d] has %d count rows, want b+1 = %d",
				p.Name, q, len(p.Delta[q]), p.B+1)
		}
		for c, moves := range p.Delta[q] {
			if len(moves) == 0 {
				return fmt.Errorf("nfsm(%s): delta[%d][%d] is empty (δ must be total)", p.Name, q, c)
			}
			for _, mv := range moves {
				if err := checkMove(mv, nq, nl); err != nil {
					return fmt.Errorf("nfsm(%s): delta[%d][%d]: %w", p.Name, q, c, err)
				}
			}
		}
	}
	return nil
}

func checkMove(mv Move, nq, nl int) error {
	if mv.Next < 0 || int(mv.Next) >= nq {
		return fmt.Errorf("move target state %d out of range", mv.Next)
	}
	if mv.Emit != NoLetter && (mv.Emit < 0 || int(mv.Emit) >= nl) {
		return fmt.Errorf("move emission %d out of range", mv.Emit)
	}
	return nil
}

// RoundProtocol is the multi-letter-query, locally-synchronous authoring
// layer of Sections 4 and 5. Its transition observes the full clamped
// count vector. The state set, alphabet and bound remain constant-size;
// the compilers in package synchro turn it into a literal Protocol.
type RoundProtocol struct {
	// Name identifies the protocol.
	Name string
	// StateNames gives |Q| state names.
	StateNames []string
	// LetterNames gives |Σ| letter names.
	LetterNames []string
	// Input is Q_I; Input[0] is the default initial state.
	Input []State
	// Output is Q_O as a membership mask of length |Q|.
	Output []bool
	// Initial is σ₀.
	Initial Letter
	// B is the bounding parameter.
	B int
	// Transition is the multi-letter δ: it receives the full clamped
	// count vector indexed by Letter and returns the non-empty move set.
	Transition func(q State, counts []Count) []Move
}

var _ Machine = (*RoundProtocol)(nil)

// NumStates implements Machine.
func (p *RoundProtocol) NumStates() int { return len(p.StateNames) }

// NumLetters implements Machine.
func (p *RoundProtocol) NumLetters() int { return len(p.LetterNames) }

// InitialLetter implements Machine.
func (p *RoundProtocol) InitialLetter() Letter { return p.Initial }

// Bound implements Machine.
func (p *RoundProtocol) Bound() int { return p.B }

// IsOutput implements Machine.
func (p *RoundProtocol) IsOutput(q State) bool { return p.Output[q] }

// InputState implements Machine.
func (p *RoundProtocol) InputState() State { return p.Input[0] }

// Moves implements Machine.
func (p *RoundProtocol) Moves(q State, counts []Count) []Move {
	return p.Transition(q, counts)
}

// Validate checks the statically checkable parts of the round protocol
// (the transition function itself is exercised by Audit).
func (p *RoundProtocol) Validate() error {
	nq, nl := p.NumStates(), p.NumLetters()
	if nq == 0 || nl == 0 {
		return fmt.Errorf("nfsm(%s): empty state set or alphabet", p.Name)
	}
	if p.B < 1 {
		return fmt.Errorf("nfsm(%s): bounding parameter b = %d < 1", p.Name, p.B)
	}
	if p.Initial < 0 || int(p.Initial) >= nl {
		return fmt.Errorf("nfsm(%s): initial letter %d out of range", p.Name, p.Initial)
	}
	if len(p.Input) == 0 {
		return fmt.Errorf("nfsm(%s): empty input state set", p.Name)
	}
	for _, q := range p.Input {
		if q < 0 || int(q) >= nq {
			return fmt.Errorf("nfsm(%s): input state %d out of range", p.Name, q)
		}
	}
	if len(p.Output) != nq {
		return fmt.Errorf("nfsm(%s): output mask length %d != |Q|", p.Name, len(p.Output))
	}
	if p.Transition == nil {
		return fmt.Errorf("nfsm(%s): nil transition", p.Name)
	}
	return nil
}

// Audit exhaustively enumerates all (state, count-vector) pairs and checks
// that the transition is total and returns only in-range moves. The domain
// has |Q|·(b+1)^|Σ| entries, constant per requirement (M4); Audit refuses
// alphabets for which the enumeration would exceed limit entries (pass 0
// for the default of ~2 million).
func (p *RoundProtocol) Audit(limit int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if limit <= 0 {
		limit = 2_000_000
	}
	nq, nl := p.NumStates(), p.NumLetters()
	domain := nq
	for i := 0; i < nl; i++ {
		domain *= p.B + 1
		if domain > limit {
			return fmt.Errorf("nfsm(%s): audit domain exceeds %d entries; use targeted tests", p.Name, limit)
		}
	}
	counts := make([]Count, nl)
	var rec func(i int) error
	rec = func(i int) error {
		if i == nl {
			for q := 0; q < nq; q++ {
				moves := p.Transition(State(q), counts)
				if len(moves) == 0 {
					return fmt.Errorf("nfsm(%s): transition empty at state %d counts %v", p.Name, q, counts)
				}
				for _, mv := range moves {
					if err := checkMove(mv, nq, nl); err != nil {
						return fmt.Errorf("nfsm(%s): state %d counts %v: %w", p.Name, q, counts, err)
					}
				}
			}
			return nil
		}
		for c := 0; c <= p.B; c++ {
			counts[i] = Count(c)
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// PickMove selects one move uniformly at random from moves using the
// deterministic coin keyed by (seed, node, step). Every engine in this
// repository routes its randomness through PickMove so that executions of
// the same protocol on the same graph with the same seed make identical
// choices regardless of which engine runs them (the Lemma 6.1 cross-check
// depends on this).
func PickMove(seed uint64, node, step int, moves []Move) Move {
	if len(moves) == 1 {
		return moves[0]
	}
	c := xrand.Coin(seed, node, step, 0)
	return moves[c%uint64(len(moves))]
}
