package nfsm

import (
	"strings"
	"testing"
	"testing/quick"
)

// toyProtocol returns a minimal valid two-state single-letter protocol:
// state 0 moves to state 1 (output) emitting letter 0 whenever it sees at
// least one occurrence of letter 0.
func toyProtocol() *Protocol {
	return &Protocol{
		Name:        "toy",
		StateNames:  []string{"start", "done"},
		LetterNames: []string{"ping"},
		Input:       []State{0},
		Output:      []bool{false, true},
		Initial:     0,
		B:           1,
		Query:       []Letter{0, 0},
		Delta: [][][]Move{
			{ // state 0
				{{Next: 0, Emit: NoLetter}}, // count 0: wait
				{{Next: 1, Emit: 0}},        // count ≥1: finish
			},
			{ // state 1 (sink)
				{{Next: 1, Emit: NoLetter}},
				{{Next: 1, Emit: NoLetter}},
			},
		},
	}
}

func TestProtocolValidateOK(t *testing.T) {
	if err := toyProtocol().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(p *Protocol)
	}{
		{"empty states", func(p *Protocol) { p.StateNames = nil }},
		{"empty alphabet", func(p *Protocol) { p.LetterNames = nil }},
		{"bad bound", func(p *Protocol) { p.B = 0 }},
		{"bad initial", func(p *Protocol) { p.Initial = 5 }},
		{"no input", func(p *Protocol) { p.Input = nil }},
		{"input out of range", func(p *Protocol) { p.Input = []State{9} }},
		{"output mask length", func(p *Protocol) { p.Output = []bool{true} }},
		{"query length", func(p *Protocol) { p.Query = []Letter{0} }},
		{"query out of range", func(p *Protocol) { p.Query = []Letter{3, 0} }},
		{"delta rows", func(p *Protocol) { p.Delta = p.Delta[:1] }},
		{"delta count rows", func(p *Protocol) { p.Delta[0] = p.Delta[0][:1] }},
		{"delta empty cell", func(p *Protocol) { p.Delta[1][0] = nil }},
		{"move state range", func(p *Protocol) { p.Delta[0][0] = []Move{{Next: 7}} }},
		{"move letter range", func(p *Protocol) { p.Delta[0][0] = []Move{{Next: 0, Emit: 9}} }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			p := toyProtocol()
			m.mut(p)
			if err := p.Validate(); err == nil {
				t.Fatalf("mutation %q passed validation", m.name)
			}
		})
	}
}

func TestClampCount(t *testing.T) {
	cases := []struct {
		x, b int
		want Count
	}{
		{0, 1, 0}, {1, 1, 1}, {5, 1, 1},
		{0, 3, 0}, {1, 3, 1}, {2, 3, 2}, {3, 3, 3}, {100, 3, 3},
	}
	for _, c := range cases {
		if got := ClampCount(c.x, c.b); got != c.want {
			t.Errorf("ClampCount(%d,%d) = %d, want %d", c.x, c.b, got, c.want)
		}
	}
}

func TestProtocolMovesUsesQueryLetter(t *testing.T) {
	p := toyProtocol()
	moves := p.Moves(0, []Count{1})
	if len(moves) != 1 || moves[0].Next != 1 {
		t.Fatalf("moves = %v", moves)
	}
	moves = p.Moves(0, []Count{0})
	if len(moves) != 1 || moves[0].Next != 0 {
		t.Fatalf("moves = %v", moves)
	}
}

func toyRound() *RoundProtocol {
	return &RoundProtocol{
		Name:        "toyround",
		StateNames:  []string{"a", "b"},
		LetterNames: []string{"x", "y"},
		Input:       []State{0},
		Output:      []bool{false, true},
		Initial:     0,
		B:           2,
		Transition: func(q State, counts []Count) []Move {
			if q == 1 {
				return []Move{{Next: 1, Emit: NoLetter}}
			}
			if counts[0] >= 1 && counts[1] >= 1 {
				return []Move{{Next: 1, Emit: 1}}
			}
			return []Move{{Next: 0, Emit: 0}}
		},
	}
}

func TestRoundProtocolValidateAndAudit(t *testing.T) {
	p := toyRound()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Audit(0); err != nil {
		t.Fatal(err)
	}
}

func TestRoundProtocolAuditCatchesPartialTransition(t *testing.T) {
	p := toyRound()
	p.Transition = func(q State, counts []Count) []Move {
		if counts[0] == 2 {
			return nil // not total
		}
		return []Move{{Next: 0, Emit: NoLetter}}
	}
	err := p.Audit(0)
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("audit error = %v, want totality failure", err)
	}
}

func TestRoundProtocolAuditCatchesBadMove(t *testing.T) {
	p := toyRound()
	p.Transition = func(q State, counts []Count) []Move {
		return []Move{{Next: 99, Emit: NoLetter}}
	}
	if err := p.Audit(0); err == nil {
		t.Fatal("audit accepted out-of-range move")
	}
}

func TestRoundProtocolAuditDomainLimit(t *testing.T) {
	p := toyRound()
	p.LetterNames = make([]string, 30) // (b+1)^30 blows past any limit
	if err := p.Audit(1000); err == nil || !strings.Contains(err.Error(), "domain") {
		t.Fatalf("audit error = %v, want domain-limit refusal", err)
	}
}

func TestRoundProtocolValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(p *RoundProtocol)
	}{
		{"empty states", func(p *RoundProtocol) { p.StateNames = nil }},
		{"bad bound", func(p *RoundProtocol) { p.B = -1 }},
		{"bad initial", func(p *RoundProtocol) { p.Initial = 99 }},
		{"no input", func(p *RoundProtocol) { p.Input = nil }},
		{"input range", func(p *RoundProtocol) { p.Input = []State{5} }},
		{"output mask", func(p *RoundProtocol) { p.Output = nil }},
		{"nil transition", func(p *RoundProtocol) { p.Transition = nil }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			p := toyRound()
			m.mut(p)
			if err := p.Validate(); err == nil {
				t.Fatalf("mutation %q passed validation", m.name)
			}
		})
	}
}

func TestPickMoveDeterministic(t *testing.T) {
	moves := []Move{{Next: 0}, {Next: 1}, {Next: 2}}
	a := PickMove(7, 3, 11, moves)
	b := PickMove(7, 3, 11, moves)
	if a != b {
		t.Fatal("PickMove is not deterministic")
	}
}

func TestPickMoveSingleFastPath(t *testing.T) {
	moves := []Move{{Next: 5, Emit: 2}}
	if got := PickMove(0, 0, 0, moves); got != moves[0] {
		t.Fatalf("PickMove single = %v", got)
	}
}

func TestPickMoveRoughlyUniform(t *testing.T) {
	moves := []Move{{Next: 0}, {Next: 1}}
	counts := [2]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		counts[PickMove(42, i, 0, moves).Next]++
	}
	if counts[0] < trials*45/100 || counts[0] > trials*55/100 {
		t.Fatalf("coin counts %v far from fair", counts)
	}
}

func TestPickMovePropertyInRange(t *testing.T) {
	f := func(seed uint64, node, step uint16, k uint8) bool {
		n := int(k%5) + 1
		moves := make([]Move, n)
		for i := range moves {
			moves[i] = Move{Next: State(i)}
		}
		mv := PickMove(seed, int(node), int(step), moves)
		return int(mv.Next) >= 0 && int(mv.Next) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
