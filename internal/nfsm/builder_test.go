package nfsm

import "testing"

// buildWave assembles the broadcast-wave protocol through the builder.
func buildWave(t *testing.T) *Protocol {
	t.Helper()
	b := NewBuilder("wave", 1)
	ping := b.Letter("ping")
	quiet := b.Letter("quiet")
	idle, source, done := b.State("idle"), b.State("source"), b.State("done")
	b.SetInput(idle, source)
	b.SetOutput(done)
	b.SetInitial(quiet)
	b.Query(idle, ping)
	b.Stay(idle, 0)
	b.Move(idle, 1, done, ping)
	b.Query(source, ping)
	b.MoveAll(source, done, ping)
	b.Query(done, ping)
	b.StayAll(done)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderBuildsValidProtocol(t *testing.T) {
	p := buildWave(t)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 3 || p.NumLetters() != 2 || p.B != 1 {
		t.Fatalf("shape: |Q|=%d |Σ|=%d b=%d", p.NumStates(), p.NumLetters(), p.B)
	}
	// Structural equivalence with the handwritten table: idle at count 1
	// moves to done emitting ping.
	moves := p.Moves(0, []Count{1, 0})
	if len(moves) != 1 || moves[0].Next != 2 || moves[0].Emit != 0 {
		t.Fatalf("idle moves = %v", moves)
	}
	moves = p.Moves(0, []Count{0, 0})
	if len(moves) != 1 || moves[0].Next != 0 || moves[0].Emit != NoLetter {
		t.Fatalf("idle stay moves = %v", moves)
	}
}

func TestBuilderRandomizedAlternatives(t *testing.T) {
	b := NewBuilder("coin", 1)
	x := b.Letter("x")
	flip, heads, tails := b.State("flip"), b.State("heads"), b.State("tails")
	b.SetInput(flip)
	b.SetOutput(heads, tails)
	b.SetInitial(x)
	b.Query(flip, x)
	b.MoveAll(flip, heads, NoLetter)
	b.MoveAll(flip, tails, NoLetter)
	b.Query(heads, x)
	b.StayAll(heads)
	b.Query(tails, x)
	b.StayAll(tails)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Moves(flip, []Count{0})); got != 2 {
		t.Fatalf("flip has %d alternatives, want 2", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("missing initial", func(t *testing.T) {
		b := NewBuilder("x", 1)
		l := b.Letter("l")
		q := b.State("q")
		b.SetInput(q)
		b.Query(q, l)
		b.StayAll(q)
		if _, err := b.Build(); err == nil {
			t.Fatal("missing initial accepted")
		}
	})
	t.Run("missing query", func(t *testing.T) {
		b := NewBuilder("x", 1)
		l := b.Letter("l")
		q := b.State("q")
		b.SetInput(q)
		b.SetInitial(l)
		b.StayAll(q)
		if _, err := b.Build(); err == nil {
			t.Fatal("missing query accepted")
		}
	})
	t.Run("missing transitions", func(t *testing.T) {
		b := NewBuilder("x", 1)
		l := b.Letter("l")
		q := b.State("q")
		b.SetInput(q)
		b.SetInitial(l)
		b.Query(q, l)
		if _, err := b.Build(); err == nil {
			t.Fatal("missing transitions accepted")
		}
	})
	t.Run("partial counts", func(t *testing.T) {
		b := NewBuilder("x", 2)
		l := b.Letter("l")
		q := b.State("q")
		b.SetInput(q)
		b.SetInitial(l)
		b.Query(q, l)
		b.Stay(q, 0) // counts 1 and 2 missing
		if _, err := b.Build(); err == nil {
			t.Fatal("partial δ accepted")
		}
	})
	t.Run("count out of range", func(t *testing.T) {
		b := NewBuilder("x", 1)
		l := b.Letter("l")
		q := b.State("q")
		b.Move(q, 5, q, l)
		if _, err := b.Build(); err == nil {
			t.Fatal("out-of-range count accepted")
		}
	})
	t.Run("duplicate query", func(t *testing.T) {
		b := NewBuilder("x", 1)
		l := b.Letter("l")
		q := b.State("q")
		b.Query(q, l)
		b.Query(q, l)
		if _, err := b.Build(); err == nil {
			t.Fatal("duplicate query accepted")
		}
	})
	t.Run("no input", func(t *testing.T) {
		b := NewBuilder("x", 1)
		l := b.Letter("l")
		q := b.State("q")
		b.SetInitial(l)
		b.Query(q, l)
		b.StayAll(q)
		if _, err := b.Build(); err == nil {
			t.Fatal("missing input set accepted")
		}
	})
}
