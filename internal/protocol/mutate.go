package protocol

import (
	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

// This file holds the shared Mutate oracles: each returns a minimally
// corrupted copy of a valid output that the protocol's Check must
// reject. The conformance suite runs them against every registered
// protocol, so they are written to break *any* valid output of their
// type, not just a lucky instance.

// FlipMask flips one random bit of a membership mask. Any single flip
// breaks an MIS: removing a member leaves it (or a neighbor) dominated
// by nobody; adding one violates independence (the added node was
// dominated by maximality).
func FlipMask(_ Args, _ *graph.Graph, out Output, src *xrand.Source) Output {
	m := out.(Mask)
	if len(m) == 0 {
		return nil
	}
	mut := make(Mask, len(m))
	copy(mut, m)
	v := src.Intn(len(mut))
	mut[v] = !mut[v]
	return mut
}

// ClashColor recolors one random node to a neighbor's color (an
// adjacent clash), or — for isolated nodes — to 0, outside every
// palette.
func ClashColor(_ Args, g *graph.Graph, out Output, src *xrand.Source) Output {
	c := out.(Colors)
	if len(c) == 0 {
		return nil
	}
	mut := make(Colors, len(c))
	copy(mut, c)
	v := src.Intn(len(mut))
	nb := g.Neighbors(v)
	if len(nb) == 0 {
		mut[v] = 0
	} else {
		mut[v] = mut[nb[src.Intn(len(nb))]]
	}
	return mut
}

// BreakMate corrupts a matching: it severs one matched pair
// asymmetrically (mate[v] kept, mate[partner] cleared), or — in a
// matching with no matched pair — self-matches node 0 (never an edge).
func BreakMate(_ Args, _ *graph.Graph, out Output, src *xrand.Source) Output {
	m := out.(Mate)
	if len(m) == 0 {
		return nil
	}
	mut := make(Mate, len(m))
	copy(mut, m)
	var matched []int
	for v, u := range mut {
		if u != -1 {
			matched = append(matched, v)
		}
	}
	if len(matched) == 0 {
		mut[0] = 0
		return mut
	}
	v := matched[src.Intn(len(matched))]
	mut[mut[v]] = -1
	return mut
}
