// Package std links the full built-in protocol set into the registry.
// Protocol implementations self-register from package-level variable
// initializers, so importing them for side effects is all a client
// needs; clients that already import a concrete protocol package (the
// experiment tables, the examples) get its registration for free, while
// registry-only clients — the stonesim CLI, the campaign tests, the
// benchmark matrix — import this package once:
//
//	import _ "stoneage/internal/protocol/std"
package std

import (
	_ "stoneage/internal/baseline" // luby, abi, bitstream, beeping, colevishkin, twocolor
	_ "stoneage/internal/coloring" // color3
	_ "stoneage/internal/degcolor" // degcolor
	_ "stoneage/internal/matching" // matching
	_ "stoneage/internal/mis"      // mis
	_ "stoneage/internal/ssmis"    // ssmis
)
