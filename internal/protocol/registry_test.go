package protocol_test

import (
	"sort"
	"strings"
	"testing"

	"stoneage/internal/graph"
	"stoneage/internal/protocol"
	"stoneage/internal/xrand"
)

func TestLookupUnknownListsRegistered(t *testing.T) {
	_, err := protocol.Lookup("routing")
	if err == nil || !strings.Contains(err.Error(), "unknown protocol") ||
		!strings.Contains(err.Error(), "mis") {
		t.Fatalf("error = %v", err)
	}
}

func TestAllSortedAndConsistentWithNames(t *testing.T) {
	all := protocol.All()
	names := protocol.Names()
	if len(all) != len(names) {
		t.Fatalf("All() has %d entries, Names() %d", len(all), len(names))
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for i, d := range all {
		if d.Name != names[i] {
			t.Fatalf("All()[%d] = %s, Names()[%d] = %s", i, d.Name, i, names[i])
		}
	}
}

func TestRegisterRejectsInvalidDescriptors(t *testing.T) {
	expectPanic := func(name string, d *protocol.Descriptor) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		protocol.Register(d)
	}
	valid := func() *protocol.Descriptor {
		return &protocol.Descriptor{
			Name: "reg-test",
			Solve: func(protocol.Args, *graph.Graph, uint64, int) (*protocol.Run, error) {
				return &protocol.Run{Output: protocol.Mask{true}}, nil
			},
			Caps:   protocol.CapSyncOnly,
			Check:  func(protocol.Args, *graph.Graph, protocol.Output) error { return nil },
			Mutate: protocol.FlipMask,
		}
	}

	d := valid()
	d.Name = ""
	expectPanic("empty name", d)

	d = valid()
	d.Name = "mis" // already taken by the std set
	expectPanic("duplicate name", d)

	d = valid()
	d.Solve = nil // neither Machine nor Solve
	expectPanic("no engine", d)

	d = valid()
	d.Caps = 0 // bespoke engine must be sync-only
	expectPanic("bespoke not sync-only", d)

	d = valid()
	d.Check = nil
	expectPanic("no check", d)

	d = valid()
	d.Mutate = nil
	expectPanic("no mutate", d)

	d = valid()
	d.Params = []protocol.ParamDef{{Name: "p", Default: 5, Min: 0, Max: 1}}
	expectPanic("default outside domain", d)

	// The Byzantine claim is cap⇔bound, like reorder: declaring the
	// cap without the measured eviction bound — or the bound without
	// the cap — is an overclaim rejected at registration.
	d = valid()
	d.Caps |= protocol.CapToleratesByzantine
	expectPanic("byzantine cap without eviction bound", d)

	d = valid()
	d.EvictionBound = 3
	expectPanic("eviction bound without byzantine cap", d)
}

func TestResolveArgsDomains(t *testing.T) {
	d, err := protocol.Lookup("degcolor")
	if err != nil {
		t.Fatal(err)
	}
	args, err := d.ResolveArgs(nil)
	if err != nil || args["maxdeg"] != 0 {
		t.Fatalf("defaults: args=%v err=%v", args, err)
	}
	if _, err := d.ResolveArgs(protocol.Args{"maxdeg": 99}); err == nil ||
		!strings.Contains(err.Error(), "outside") {
		t.Fatalf("out-of-domain accepted: %v", err)
	}
	if _, err := d.ResolveArgs(protocol.Args{"maxdeg": 2.5}); err == nil ||
		!strings.Contains(err.Error(), "integer") {
		t.Fatalf("fractional integer param accepted: %v", err)
	}
	if _, err := d.ResolveArgs(protocol.Args{"turbo": 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown parameter") {
		t.Fatalf("unknown param accepted: %v", err)
	}
}

func TestCapsString(t *testing.T) {
	if got := protocol.Caps(0).String(); got != "-" {
		t.Fatalf("empty caps = %q", got)
	}
	c := protocol.CapNeedsTree | protocol.CapSyncOnly
	if got := c.String(); got != "tree-only,sync-only" {
		t.Fatalf("caps = %q", got)
	}
	if !c.Has(protocol.CapNeedsTree) || c.Has(protocol.CapNeedsPath) {
		t.Fatal("Has misbehaves")
	}
}

// TestMachineCodeCacheIsShared pins the collapse of the per-package
// compile caches: two binds of the same protocol at the same argument
// vector share one compiled program's machine code (same underlying
// tables — observable as identical behavior and no error), and the
// degcolor cache is keyed per degree bound.
func TestMachineCodeCacheIsShared(t *testing.T) {
	d, err := protocol.Lookup("mis")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GnpConnected(16, 0.2, xrand.New(1))
	r1, err := d.SolveSync(g, nil, protocol.SyncConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.SolveSync(g, nil, protocol.SyncConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rounds != r2.Rounds || r1.Transmissions != r2.Transmissions {
		t.Fatalf("repeat run diverged: %+v vs %+v", r1, r2)
	}
}

// TestPathShapeEnforced pins the path-only capability check: a tree
// that is not a path must be rejected at bind time.
func TestPathShapeEnforced(t *testing.T) {
	d, err := protocol.Lookup("colevishkin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Bind(graph.Star(5), nil); err == nil {
		t.Fatal("star accepted by a path-only protocol")
	}
	if _, err := d.Bind(graph.Path(5), nil); err != nil {
		t.Fatalf("path rejected: %v", err)
	}
}
