// Package protocol is the unified protocol registry: the single place
// where the repository's stone-age protocols — the paper's nFSM
// machines, the extended-model matching protocol, and the classical
// message-passing/beeping baselines — describe themselves to every
// client. A Descriptor carries a protocol's behavioral interface
// (capabilities, machine constructor, output decoder, output validator,
// parameter domains); Register/Lookup/All make the set discoverable.
//
// The paper's whole point is that one model expresses MIS, coloring,
// matching and tree protocols uniformly, and clients should depend on
// that uniform interface, never on a concrete package: the campaign
// runner, the stonesim CLI and the benchmark matrix all enumerate this
// registry, so adding a protocol is one Register call — no edits to
// campaign, CLI, or benches.
//
// Protocol packages self-register from a package-level variable
// initializer; clients that speak only registry names link the full
// built-in set by importing stoneage/internal/protocol/std for side
// effects.
package protocol

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/xrand"
)

// Caps is a protocol's capability/requirement bitmask. Clients derive
// static compatibility checks from it (campaign spec validation, CLI
// engine selection) instead of hardcoding per-protocol knowledge.
type Caps uint32

const (
	// CapNeedsTree marks protocols correct only on trees (the Section 5
	// palette argument fails on general graphs).
	CapNeedsTree Caps = 1 << iota
	// CapNeedsPath marks protocols correct only on graph.Path-ordered
	// paths (implies tree); e.g. Cole–Vishkin's directed-path coloring.
	CapNeedsPath
	// CapSyncOnly marks protocols with no asynchronous route: bespoke
	// engines the Theorem 3.1/3.4 synchronizer cannot host.
	CapSyncOnly
	// CapNeedsIDs marks protocols that read node identifiers — local
	// state the nFSM requirement (M4) forbids (the baselines).
	CapNeedsIDs
	// CapExtended marks protocols in the extended nFSM model (targeted
	// transmission and port memory, as the matching protocol needs).
	CapExtended
	// CapSelfStabilizing marks protocols that re-converge to a valid
	// output from arbitrary perturbed configurations (stale ports,
	// reset neighbors, changed topology) with no coordinated restart.
	// The dynamic execution layer keys its default reset discipline on
	// it: self-stabilizing protocols run scenarios under
	// scenario.ResetNone, everything else under scenario.ResetAll.
	CapSelfStabilizing

	// The CapTolerates* bits below are declarative robustness metadata:
	// each declares that the protocol's output invariant survives the
	// named channel pathology (at the rates the robustness matrix pins —
	// see docs/robustness-matrix.md, where every declared cell is backed
	// by a named deterministic test). They gate nothing at run time: the
	// campaign layer records convergence/validity rates under every
	// channel model regardless, so an undeclared protocol can still be
	// measured degrading.

	// CapToleratesLoss: converges to a valid output despite independent
	// message loss (the overwrite-port semantics make a dropped letter
	// indistinguishable from one overwritten before being read).
	CapToleratesLoss
	// CapToleratesDup: valid output despite duplicated deliveries.
	CapToleratesDup
	// CapToleratesReorder: valid output despite per-edge reordering.
	CapToleratesReorder
	// CapToleratesCorrupt: valid output despite letters flipped in
	// transit to other valid alphabet letters.
	CapToleratesCorrupt
	// CapToleratesByzantine: honest nodes still reach a valid output
	// (validated on the honest-induced subgraph) despite Byzantine
	// neighbors emitting arbitrary letters.
	CapToleratesByzantine
)

// TolerantSynchroCaps is the tolerance set the αβ-hybrid synchronizer
// (AsyncConfig.Synchro = SynchroTolerant) confers on any engine-hosted
// protocol it compiles: independent message loss (the bounded re-pulse
// replaces a dropped generation letter) and duplication (overwrite
// ports absorb replays, stale generations die on the trit tag). It is
// what the lossy-mis sweep measures — not a free upgrade to every
// pathology: reordering and corruption remain whatever the underlying
// protocol declares.
const TolerantSynchroCaps = CapToleratesLoss | CapToleratesDup

// VotedSynchroCaps is the tolerance set the voted synchronizer tier
// (AsyncConfig.Synchro = SynchroVoted) confers on any engine-hosted
// protocol it compiles: everything the αβ hybrid tolerates, plus
// corruption (a flipped copy needs K−1 equally flipped companions in
// the vote window to be believed) and Byzantine silence (a stalled
// edge is evicted after the declared eviction bound and the honest
// remainder validates on the honest-induced subgraph). It is what the
// hostile-mis sweep measures. Reordering remains whatever the
// underlying protocol declares.
const VotedSynchroCaps = CapToleratesLoss | CapToleratesDup | CapToleratesCorrupt | CapToleratesByzantine

// capNames orders the capability labels for display.
var capNames = []struct {
	cap  Caps
	name string
}{
	{CapNeedsTree, "tree-only"},
	{CapNeedsPath, "path-only"},
	{CapSyncOnly, "sync-only"},
	{CapNeedsIDs, "needs-ids"},
	{CapExtended, "extended-model"},
	{CapSelfStabilizing, "self-stabilizing"},
}

// tolNames orders the tolerance labels for display, separately from
// capNames so existing capability listings stay stable.
var tolNames = []struct {
	cap  Caps
	name string
}{
	{CapToleratesLoss, "loss"},
	{CapToleratesDup, "dup"},
	{CapToleratesReorder, "reorder"},
	{CapToleratesCorrupt, "corrupt"},
	{CapToleratesByzantine, "byzantine"},
}

// Has reports whether every capability of f is set.
func (c Caps) Has(f Caps) bool { return c&f == f }

// Tolerances returns the declared channel-pathology tolerance labels in
// display order (nil when none are declared).
func (c Caps) Tolerances() []string {
	var out []string
	for _, tn := range tolNames {
		if c.Has(tn.cap) {
			out = append(out, tn.name)
		}
	}
	return out
}

// TolString renders the tolerance set compactly ("-" when empty).
func (c Caps) TolString() string {
	l := c.Tolerances()
	if len(l) == 0 {
		return "-"
	}
	return strings.Join(l, ",")
}

// Tolerances returns the descriptor's declared tolerance labels with
// the reorder claim qualified by its measured window bound
// ("reorder≤2" rather than a bare "reorder"). Listings should render
// this, not Caps.Tolerances, so bounded claims read as bounded.
func (d *Descriptor) Tolerances() []string {
	out := d.Caps.Tolerances()
	for i, s := range out {
		switch {
		case s == "reorder" && d.Caps.Has(CapToleratesReorder) && d.ReorderWindow > 0:
			out[i] = fmt.Sprintf("reorder≤%g", d.ReorderWindow)
		case s == "byzantine" && d.Caps.Has(CapToleratesByzantine) && d.EvictionBound > 0:
			out[i] = fmt.Sprintf("byzantine(evict≤%g)", d.EvictionBound)
		}
	}
	return out
}

// TolString renders the descriptor's window-qualified tolerance set
// compactly ("-" when empty).
func (d *Descriptor) TolString() string {
	l := d.Tolerances()
	if len(l) == 0 {
		return "-"
	}
	return strings.Join(l, ",")
}

// List returns the set capability labels in display order.
func (c Caps) List() []string {
	var out []string
	for _, cn := range capNames {
		if c.Has(cn.cap) {
			out = append(out, cn.name)
		}
	}
	return out
}

// String renders the capability set compactly ("-" when empty).
func (c Caps) String() string {
	l := c.List()
	if len(l) == 0 {
		return "-"
	}
	return strings.Join(l, ",")
}

// ParamDef declares one named protocol parameter and its valid domain.
// The registry validates supplied arguments against it; `stonesim
// protocols` prints it.
type ParamDef struct {
	Name    string  `json:"name"`
	Desc    string  `json:"desc"`
	Default float64 `json:"default"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	// Integer requires whole-number values.
	Integer bool `json:"integer,omitempty"`
}

// Args maps parameter name → value. Nil selects every default.
// ResolveArgs always returns a fresh map, so Prepare hooks may mutate
// their argument in place.
type Args map[string]float64

// Output is a protocol's decoded final output. The concrete types below
// cover the repository's output vocabulary; a protocol may also define
// its own.
type Output interface {
	// Summary renders a short human-readable description, e.g.
	// "MIS of size 12: 0101…".
	Summary() string
}

// Mask is a maximal-independent-set membership output — its Summary
// labels it as an MIS, which every registered user of the type (mis and
// the MIS baselines) is. A protocol whose mask means something else
// should define its own Output type rather than inherit the label.
type Mask []bool

// Summary implements Output.
func (m Mask) Summary() string {
	size := 0
	var b strings.Builder
	for i, in := range m {
		if in {
			size++
		}
		if i < 64 {
			if in {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		} else if i == 64 {
			b.WriteString("…")
		}
	}
	return fmt.Sprintf("MIS of size %d: %s", size, b.String())
}

// Colors is a node-coloring output with colors in {1..k}.
type Colors []int

// Summary implements Output.
func (c Colors) Summary() string {
	k := 0
	for _, col := range c {
		if col > k {
			k = col
		}
	}
	head := []int(c)
	if len(head) > 32 {
		head = head[:32]
	}
	return fmt.Sprintf("%d-coloring: %v", k, head)
}

// Mate is a matching output: Mate[v] is v's partner, or -1.
type Mate []int

// Summary implements Output.
func (m Mate) Summary() string {
	matched := 0
	for _, u := range m {
		if u != -1 {
			matched++
		}
	}
	return fmt.Sprintf("maximal matching (%d edges)", matched/2)
}

// Run reports one protocol execution in the engine's own measure:
// Rounds/Transmissions for the synchronous engines, TimeUnits/Steps
// (plus adversarially Lost messages) for the asynchronous one. Bespoke
// engines that do not count transmissions leave the field zero —
// unmeasured, not free.
type Run struct {
	Output        Output
	Rounds        int
	Transmissions int64
	TimeUnits     float64
	Steps         int64
	Lost          int64

	// Dynamic-run extras (zero/nil for static runs). PerturbedAt lists
	// when each mutation batch was applied — rounds (sync) or absolute
	// times (async); Recovery is the recovery-time metric — rounds or
	// time units from the last perturbation to the valid output
	// configuration; FinalGraph is the post-mutation topology the
	// output must be validated against.
	PerturbedAt []float64
	Recovery    float64
	FinalGraph  *graph.Graph

	// Channel-model bookkeeping (all zero for reliable runs); see the
	// engine result types for exact semantics.
	Dropped    int64
	Duplicated int64
	Delayed    int64
	Reordered  int64
	Corrupted  int64
	Severed    int64
	// Voted-synchronizer bookkeeping (all zero unless the run used
	// AsyncConfig.Synchro = SynchroVoted); see engine.AsyncResult.
	Outvoted        int64
	VotedRejections int64
	RePulses        int64
	RePulseSends    int64
	// EvictedEdges lists every (node, neighbor) pair whose incoming
	// edge the voted decoder evicted for persistent silence, in
	// eviction order. An evicted honest edge is a measured correctness
	// cost — validation still runs on the full honest subgraph.
	EvictedEdges [][2]int
	// Byzantine lists the run's Byzantine node ids (nil when none).
	// CheckRun validates the output on the honest-induced subgraph —
	// Byzantine nodes answer to no invariant.
	Byzantine []int
}

// Perturbations is the number of mutation batches the run applied.
func (r *Run) Perturbations() int { return len(r.PerturbedAt) }

// Descriptor is one registered protocol: its identity, capabilities,
// parameter domains, and behavior. Exactly one of Machine (engine-hosted
// nFSM protocols; the shared runners compile, cache, bind and decode) or
// Solve (bespoke synchronous engines) must be set.
type Descriptor struct {
	// Name is the registry key ("mis", "color3", …).
	Name string
	// Summary is a one-line description for listings.
	Summary string
	// Caps declares requirements and model extensions.
	Caps Caps
	// Params declares the parameter domains (may be nil).
	Params []ParamDef
	// ReorderWindow bounds the CapToleratesReorder declaration: the
	// largest mean per-copy delay window (channel.Reorder.Window) the
	// tolerance is measured at. Required (>0) exactly when
	// CapToleratesReorder is set — an unbounded reorder claim is an
	// overclaim (ssmis holds valid ≈ 0.6, not 1, at mean-2 windows).
	// Campaign spec validation enforces declared windows against swept
	// ones.
	ReorderWindow float64
	// EvictionBound bounds the CapToleratesByzantine declaration: the
	// dead-edge eviction threshold (voted synchronizer EvictAfter — see
	// engine.VotedConfig) the tolerance is measured at. Required (>0)
	// exactly when CapToleratesByzantine is set: a Byzantine-tolerance
	// claim with no declared eviction bound is the silence-stall
	// overclaim the robustness matrix exists to prevent. Campaign spec
	// validation re-checks it before any Byzantine cell runs.
	EvictionBound float64

	// Machine constructs the protocol's round machine from resolved
	// arguments. The registry compiles it to engine.MachineCode lazily,
	// once per distinct argument vector, shared by all runs.
	Machine func(args Args) (*nfsm.RoundProtocol, error)
	// Decode extracts the protocol's output from a final state vector
	// (required with Machine).
	Decode func(args Args, states []nfsm.State) (Output, error)

	// Solve runs a bespoke synchronous engine (required without
	// Machine; such protocols are implicitly CapSyncOnly).
	Solve func(args Args, g *graph.Graph, seed uint64, maxRounds int) (*Run, error)

	// Prepare optionally resolves graph-dependent arguments at bind
	// time (e.g. deriving a degree bound from the graph) and performs
	// protocol-specific input validation. It may mutate and return args.
	Prepare func(args Args, g *graph.Graph) (Args, error)

	// Check validates an output against the graph it was computed on.
	Check func(args Args, g *graph.Graph, out Output) error
	// Mutate returns a corrupted copy of a valid output that Check must
	// reject — the conformance suite's bit-flip oracle.
	Mutate func(args Args, g *graph.Graph, out Output, src *xrand.Source) Output

	// codes caches compiled machine code per resolved argument vector:
	// the per-protocol lazy once-compiled cache that replaced the
	// package-local caches mis, coloring and degcolor used to keep.
	codes sync.Map // argsKey string → *codeEntry
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Descriptor{}
)

// Register adds d to the registry and returns it (so protocol packages
// can keep a handle from a package-level variable initializer). It
// panics on a duplicate name or a structurally invalid descriptor:
// registration happens at init time, where a panic is a build-breaking
// programming error, not a runtime condition.
func Register(d *Descriptor) *Descriptor {
	if err := d.validate(); err != nil {
		panic(fmt.Sprintf("protocol.Register: %v", err))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[d.Name]; dup {
		panic(fmt.Sprintf("protocol.Register: duplicate protocol %q", d.Name))
	}
	registry[d.Name] = d
	return d
}

func (d *Descriptor) validate() error {
	if d == nil {
		return fmt.Errorf("nil descriptor")
	}
	if d.Name == "" {
		return fmt.Errorf("descriptor has no name")
	}
	if (d.Machine == nil) == (d.Solve == nil) {
		return fmt.Errorf("protocol %q must set exactly one of Machine and Solve", d.Name)
	}
	if d.Machine != nil && d.Decode == nil {
		return fmt.Errorf("protocol %q sets Machine without Decode", d.Name)
	}
	if d.Solve != nil && !d.Caps.Has(CapSyncOnly) {
		return fmt.Errorf("protocol %q has a bespoke engine but is not sync-only", d.Name)
	}
	if d.Check == nil {
		return fmt.Errorf("protocol %q has no output Check", d.Name)
	}
	if d.Mutate == nil {
		return fmt.Errorf("protocol %q has no Mutate (conformance oracle)", d.Name)
	}
	if d.Caps.Has(CapToleratesReorder) && d.ReorderWindow <= 0 {
		return fmt.Errorf("protocol %q declares reorder tolerance without a ReorderWindow bound", d.Name)
	}
	if !d.Caps.Has(CapToleratesReorder) && d.ReorderWindow != 0 {
		return fmt.Errorf("protocol %q sets ReorderWindow without declaring reorder tolerance", d.Name)
	}
	if d.Caps.Has(CapToleratesByzantine) && d.EvictionBound <= 0 {
		return fmt.Errorf("protocol %q declares byzantine tolerance without an EvictionBound", d.Name)
	}
	if !d.Caps.Has(CapToleratesByzantine) && d.EvictionBound != 0 {
		return fmt.Errorf("protocol %q sets EvictionBound without declaring byzantine tolerance", d.Name)
	}
	seen := map[string]bool{}
	for _, p := range d.Params {
		if p.Name == "" || seen[p.Name] {
			return fmt.Errorf("protocol %q has an unnamed or duplicate parameter", d.Name)
		}
		seen[p.Name] = true
		if p.Min > p.Max {
			return fmt.Errorf("protocol %q parameter %q has empty domain [%g,%g]", d.Name, p.Name, p.Min, p.Max)
		}
		if p.Default < p.Min || p.Default > p.Max {
			return fmt.Errorf("protocol %q parameter %q default %g outside [%g,%g]",
				d.Name, p.Name, p.Default, p.Min, p.Max)
		}
	}
	return nil
}

// Lookup returns the descriptor registered under name.
func Lookup(name string) (*Descriptor, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown protocol %q (registered: %s)",
			name, strings.Join(namesLocked(), ", "))
	}
	return d, nil
}

// All returns every registered descriptor, sorted by name.
func All() []*Descriptor {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Descriptor, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns every registered protocol name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
