package protocol

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"stoneage/internal/channel"
	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/scenario"
	"stoneage/internal/synchro"
	"stoneage/internal/xrand"
)

// This file is the shared generic runner every protocol's
// SolveSync/SolveAsync entry point routes through: argument resolution
// against the declared domains, capability checks against the bound
// graph, the once-per-argument-vector MachineCode cache (one entry each
// for the synchronous machine and its Theorem 3.1/3.4 synchronizer
// compilation), and the sync/async executors.
//
// The synchronizer-compiled machine is cached and shared across runs
// and goroutines. Synchro machines intern their state sets lazily
// during execution, so the *numbering* of compiled states depends on
// which run interned them first — but nothing observable does: moves
// are chosen by index from rows whose length and order are
// interning-invariant, emitted letters and output membership are
// properties of the state descriptor, and every consumer decodes final
// states back to source states through the same machine instance. The
// differential wall (compiled vs reference engine) runs on shared
// machines and stays bit-identical. Sharing is what lets a campaign
// worker's trials — and repeated SolveAsync calls — skip the state
// re-interning that used to dominate the async allocation profile.

// SyncConfig parameterizes a synchronous protocol run.
type SyncConfig struct {
	// Seed keys every random choice.
	Seed uint64
	// MaxRounds bounds the run (0 = engine default).
	MaxRounds int
	// Workers shards the engine's round loop (0 = GOMAXPROCS); results
	// are bit-identical for every value. Bespoke engines ignore it.
	Workers int
	// Observer, when non-nil, sees every round's state vector.
	// Engine-hosted protocols only.
	Observer func(round int, states []nfsm.State)
	// Scenario, when non-nil and non-empty, makes the run dynamic
	// (engine-hosted protocols only). A scenario.ResetAuto policy is
	// resolved here against the protocol's capabilities:
	// self-stabilizing protocols run under ResetNone, the rest under
	// ResetAll.
	Scenario *scenario.Scenario
	// Channel, when non-nil, subjects every transmission to an
	// unreliable-link model (engine-hosted protocols only; see package
	// channel).
	Channel channel.Model
	// Backend selects the synchronous executor (engine-hosted protocols
	// only): empty auto-selects, engine.BackendFlat / engine.BackendPacked
	// force one. All backends are bit-identical where they overlap; see
	// engine.SyncConfig.Backend. Bespoke engines ignore it.
	Backend string
}

// AsyncConfig parameterizes an asynchronous protocol run.
type AsyncConfig struct {
	// Seed keys the protocol's random choices.
	Seed uint64
	// Adversary schedules steps and message delays (nil = synchronous).
	Adversary engine.Adversary
	// MaxSteps bounds the run (0 = engine default).
	MaxSteps int64
	// Scenario, when non-nil and non-empty, makes the run dynamic;
	// batch times are absolute asynchronous times. ResetAuto resolves
	// as in SyncConfig.
	Scenario *scenario.Scenario
	// Channel, when non-nil, subjects every transmission to an
	// unreliable-link model (see package channel).
	Channel channel.Model
	// Synchro selects the synchronizer compilation: "" or "alpha" is
	// the paper's Theorem 3.1/3.4 α-synchronizer; "tolerant" is the
	// αβ hybrid (bounded re-pulse on stall timeout) that survives
	// lossy channels at a time-unit overhead; "voted" is the αβ
	// machine under the voted engine contract (k-of-(2k−1) pulse
	// decoding, dead-edge eviction, adaptive re-pulse backoff) that
	// additionally survives corruption and Byzantine silence. The
	// compilations never share cache slots.
	Synchro string
	// VoteK, EvictAfter and RePulseCap tune the voted synchronizer
	// (Synchro = SynchroVoted; ignored otherwise). Zero selects the
	// defaults — see engine.VotedConfig.
	VoteK      int
	EvictAfter int
	RePulseCap int
}

// Synchronizer names accepted by AsyncConfig.Synchro.
const (
	SynchroAlpha    = "alpha"
	SynchroTolerant = "tolerant"
	SynchroVoted    = "voted"
)

// ResolveArgs fills defaults for missing parameters and validates every
// supplied value against its declared domain. It always returns a fresh
// map (callers and Prepare hooks may mutate the result freely).
func (d *Descriptor) ResolveArgs(args Args) (Args, error) {
	out := make(Args, len(d.Params))
	for _, p := range d.Params {
		out[p.Name] = p.Default
	}
	for name, v := range args {
		p := d.paramDef(name)
		if p == nil {
			return nil, fmt.Errorf("protocol %s: unknown parameter %q (known: %s)",
				d.Name, name, strings.Join(d.paramNames(), ", "))
		}
		if v < p.Min || v > p.Max {
			return nil, fmt.Errorf("protocol %s: parameter %s = %g outside [%g,%g]",
				d.Name, name, v, p.Min, p.Max)
		}
		if p.Integer && v != float64(int64(v)) {
			return nil, fmt.Errorf("protocol %s: parameter %s = %g must be an integer",
				d.Name, name, v)
		}
		out[name] = v
	}
	return out, nil
}

func (d *Descriptor) paramDef(name string) *ParamDef {
	for i := range d.Params {
		if d.Params[i].Name == name {
			return &d.Params[i]
		}
	}
	return nil
}

func (d *Descriptor) paramNames() []string {
	out := make([]string, len(d.Params))
	for i, p := range d.Params {
		out[i] = p.Name
	}
	return out
}

// argsKey canonicalizes a resolved argument vector into the cache key.
func argsKey(args Args) string {
	if len(args) == 0 {
		return ""
	}
	names := make([]string, 0, len(args))
	for name := range args {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s=%g;", name, args[name])
	}
	return b.String()
}

// codeEntry is one lazily compiled machine-code cache slot: the
// synchronous machine's code, and — separately, because async-only and
// sync-only callers should not pay for both — the synchronizer-compiled
// asynchronous machine with its code.
type codeEntry struct {
	once sync.Once
	code *engine.MachineCode
	err  error

	asyncOnce sync.Once
	asyncM    *synchro.Compiled
	asyncCode *engine.MachineCode
	asyncErr  error

	tolOnce sync.Once
	tolM    *synchro.Compiled
	tolCode *engine.MachineCode
	tolErr  error

	votedOnce sync.Once
	votedM    *synchro.Compiled
	votedCode *engine.MachineCode
	votedErr  error
}

// codeEntryFor returns the (possibly empty) cache slot for the resolved
// argument vector.
func (d *Descriptor) codeEntryFor(args Args) *codeEntry {
	v, _ := d.codes.LoadOrStore(argsKey(args), &codeEntry{})
	return v.(*codeEntry)
}

// machineCode returns the compiled code for the resolved argument
// vector, compiling at most once per distinct vector across the whole
// process (concurrent first callers block on the same sync.Once).
func (d *Descriptor) machineCode(args Args) (*engine.MachineCode, error) {
	e := d.codeEntryFor(args)
	e.once.Do(func() {
		m, err := d.Machine(args)
		if err != nil {
			e.err = err
			return
		}
		e.code = engine.CompileMachine(m)
	})
	return e.code, e.err
}

// asyncMachineCode returns the Theorem 3.1/3.4 synchronizer compilation
// of the protocol plus its machine code, compiled at most once per
// distinct argument vector. The returned machine is shared by every
// run (see the file comment for why that is observationally sound).
func (d *Descriptor) asyncMachineCode(args Args) (*synchro.Compiled, *engine.MachineCode, error) {
	e := d.codeEntryFor(args)
	e.asyncOnce.Do(func() {
		m, err := d.Machine(args)
		if err != nil {
			e.asyncErr = err
			return
		}
		compiled, err := synchro.CompileRound(m)
		if err != nil {
			e.asyncErr = err
			return
		}
		e.asyncM = compiled
		e.asyncCode = engine.CompileMachine(compiled)
	})
	return e.asyncM, e.asyncCode, e.asyncErr
}

// tolerantMachineCode is asyncMachineCode for the loss-tolerant αβ
// hybrid. It occupies its own cache slot: a protocol compiled tolerant
// and plain must never share machines — their state spaces differ (the
// tolerant descriptors carry re-pulse bookkeeping) and sharing would
// silently swap one semantics for the other.
func (d *Descriptor) tolerantMachineCode(args Args) (*synchro.Compiled, *engine.MachineCode, error) {
	e := d.codeEntryFor(args)
	e.tolOnce.Do(func() {
		m, err := d.Machine(args)
		if err != nil {
			e.tolErr = err
			return
		}
		compiled, err := synchro.CompileRoundTolerant(m)
		if err != nil {
			e.tolErr = err
			return
		}
		e.tolM = compiled
		e.tolCode = engine.CompileMachine(compiled)
	})
	return e.tolM, e.tolCode, e.tolErr
}

// votedMachineCode is asyncMachineCode for the voted tier. Its own
// cache slot for the same reason the tolerant tier has one — and
// although the voted machine is the tolerant state machine verbatim,
// sharing the tolerant slot would share interning order between runs
// that must stay independently reproducible.
func (d *Descriptor) votedMachineCode(args Args) (*synchro.Compiled, *engine.MachineCode, error) {
	e := d.codeEntryFor(args)
	e.votedOnce.Do(func() {
		m, err := d.Machine(args)
		if err != nil {
			e.votedErr = err
			return
		}
		compiled, err := synchro.CompileRoundVoted(m)
		if err != nil {
			e.votedErr = err
			return
		}
		e.votedM = compiled
		e.votedCode = engine.CompileMachine(compiled)
	})
	return e.votedM, e.votedCode, e.votedErr
}

// Bound is a protocol bound to one graph: arguments resolved (including
// graph-derived ones), capabilities checked, and — for engine-hosted
// protocols — the compiled machine code bound to the graph's CSR
// layout. The sync program is built lazily on the first RunSync (an
// async-only caller never pays the compile or the O(n+m) bind) and then
// shared: a Bound is safe for concurrent runs, so a campaign cell binds
// once and its trials share it.
type Bound struct {
	d    *Descriptor
	g    *graph.Graph
	args Args

	progOnce sync.Once
	prog     *engine.Program // nil for bespoke engines
	progErr  error

	asyncOnce sync.Once
	asyncProg *engine.Program
	asyncM    *synchro.Compiled
	asyncErr  error

	tolOnce sync.Once
	tolProg *engine.Program
	tolM    *synchro.Compiled
	tolErr  error

	votedOnce sync.Once
	votedProg *engine.Program
	votedM    *synchro.Compiled
	votedErr  error
}

// Scratch is a reusable per-worker execution arena threaded down to the
// engine: one per goroutine, reused across every run that goroutine
// executes (the campaign worker loop holds one per worker). Not safe
// for concurrent use.
type Scratch struct {
	Eng *engine.Scratch
}

// NewScratch returns a fresh arena.
func NewScratch() *Scratch { return &Scratch{Eng: engine.NewScratch()} }

func (s *Scratch) engine() *engine.Scratch {
	if s == nil {
		return nil
	}
	return s.Eng
}

// Bind resolves args against the parameter domains, enforces the
// graph-shape capabilities (tree-only, path-only), and runs the Prepare
// hook. The cached machine code is attached on first synchronous use.
func (d *Descriptor) Bind(g *graph.Graph, args Args) (*Bound, error) {
	resolved, err := d.ResolveArgs(args)
	if err != nil {
		return nil, err
	}
	switch {
	case d.Caps.Has(CapNeedsPath):
		if err := g.IsPathOrdered(); err != nil {
			return nil, fmt.Errorf("protocol %s: %w", d.Name, err)
		}
	case d.Caps.Has(CapNeedsTree):
		if !g.IsTree() {
			return nil, fmt.Errorf("protocol %s: input graph is not a tree", d.Name)
		}
	}
	if d.Prepare != nil {
		if resolved, err = d.Prepare(resolved, g); err != nil {
			return nil, err
		}
	}
	return &Bound{d: d, g: g, args: resolved}, nil
}

// program lazily binds the descriptor's cached machine code to the
// graph, once per Bound (concurrent first callers block on the Once).
func (b *Bound) program() (*engine.Program, error) {
	b.progOnce.Do(func() {
		code, err := b.d.machineCode(b.args)
		if err != nil {
			b.progErr = err
			return
		}
		b.prog = code.Bind(b.g)
	})
	return b.prog, b.progErr
}

// Descriptor returns the bound protocol's descriptor.
func (b *Bound) Descriptor() *Descriptor { return b.d }

// Graph returns the graph the protocol is bound to.
func (b *Bound) Graph() *graph.Graph { return b.g }

// Args returns the resolved argument vector (callers must not mutate).
func (b *Bound) Args() Args { return b.args }

// StateNames returns the bound machine's state names, or nil for
// bespoke engines (used by the CLI's trace histogram).
func (b *Bound) StateNames() []string {
	if b.d.Machine == nil {
		return nil
	}
	m, err := b.d.Machine(b.args)
	if err != nil {
		return nil
	}
	return m.StateNames
}

// resolveScenario normalizes a run's scenario: empty scenarios drop to
// nil (the static path), bespoke engines reject dynamic runs (no
// scenario hook), and a ResetAuto policy resolves against the
// protocol's capabilities — self-stabilizing protocols need no reset at
// all, while for terminating protocols a global restart is the one
// discipline that provably re-converges on the new graph.
func (b *Bound) resolveScenario(sc *scenario.Scenario) (*scenario.Scenario, error) {
	if sc.Empty() {
		return nil, nil
	}
	if b.d.Machine == nil {
		return nil, fmt.Errorf("protocol %s: dynamic scenarios unsupported (bespoke engine)", b.d.Name)
	}
	if sc.Reset == scenario.ResetAuto {
		if b.d.Caps.Has(CapSelfStabilizing) {
			sc = sc.WithReset(scenario.ResetNone)
		} else {
			sc = sc.WithReset(scenario.ResetAll)
		}
	}
	return sc, nil
}

// RunSync executes one synchronous run. Engine-hosted protocols run on
// the compiled engine through the lazily bound shared program; bespoke
// protocols run their own Solve.
func (b *Bound) RunSync(cfg SyncConfig) (*Run, error) {
	return b.RunSyncReusing(cfg, nil)
}

// RunSyncReusing executes one synchronous run reusing the given scratch
// arena (nil runs with a private one). Callers looping over runs — one
// scratch per worker goroutine — skip nearly all per-run allocation.
func (b *Bound) RunSyncReusing(cfg SyncConfig, s *Scratch) (*Run, error) {
	sc, err := b.resolveScenario(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	if b.d.Machine == nil {
		if cfg.Observer != nil {
			return nil, fmt.Errorf("protocol %s: observer unsupported (bespoke engine)", b.d.Name)
		}
		if cfg.Channel != nil {
			return nil, fmt.Errorf("protocol %s: unreliable channels unsupported (bespoke engine)", b.d.Name)
		}
		return b.d.Solve(b.args, b.g, cfg.Seed, cfg.MaxRounds)
	}
	prog, err := b.program()
	if err != nil {
		return nil, err
	}
	res, err := prog.RunSyncReusing(engine.SyncConfig{
		Seed: cfg.Seed, MaxRounds: cfg.MaxRounds,
		Workers: cfg.Workers, Observer: cfg.Observer,
		Scenario: sc, Channel: cfg.Channel,
		Backend: cfg.Backend,
	}, s.engine())
	if err != nil {
		return nil, err
	}
	states, err := b.maskByzStates(res.States, sc)
	if err != nil {
		return nil, err
	}
	out, err := b.d.Decode(b.args, states)
	if err != nil {
		return nil, err
	}
	var perturbed []float64
	for _, r := range res.PerturbedAt {
		perturbed = append(perturbed, float64(r))
	}
	return &Run{
		Output: out, Rounds: res.Rounds, Transmissions: res.Transmissions,
		PerturbedAt: perturbed, Recovery: float64(res.RecoveryRounds),
		FinalGraph: res.FinalGraph,
		Dropped:    res.Dropped, Duplicated: res.Duplicated, Delayed: res.Delayed,
		Reordered: res.Reordered, Corrupted: res.Corrupted, Severed: res.Severed,
		Byzantine: byzNodes(sc),
	}, nil
}

// maskByzStates substitutes the machine's first output state at every
// Byzantine node before decoding. A Byzantine node never runs the
// protocol, so its engine state is whatever it started in — often not
// an output state, which a strict Decode rightly rejects. The
// substituted value is arbitrary by construction; CheckRun restricts
// validation to the honest-induced subgraph, so it never participates
// in an invariant.
func (b *Bound) maskByzStates(states []nfsm.State, sc *scenario.Scenario) ([]nfsm.State, error) {
	if sc == nil || len(sc.Byzantine) == 0 {
		return states, nil
	}
	m, err := b.d.Machine(b.args)
	if err != nil {
		return nil, err
	}
	q0 := -1
	for q, out := range m.Output {
		if out {
			q0 = q
			break
		}
	}
	if q0 < 0 {
		return nil, fmt.Errorf("protocol %s: machine has no output state", b.d.Name)
	}
	masked := append([]nfsm.State(nil), states...)
	for _, z := range sc.Byzantine {
		if z.Node >= 0 && z.Node < len(masked) {
			masked[z.Node] = nfsm.State(q0)
		}
	}
	return masked, nil
}

// byzNodes extracts the Byzantine node ids of a resolved scenario.
func byzNodes(sc *scenario.Scenario) []int {
	if sc == nil || len(sc.Byzantine) == 0 {
		return nil
	}
	out := make([]int, len(sc.Byzantine))
	for i, b := range sc.Byzantine {
		out[i] = b.Node
	}
	return out
}

// asyncProgram lazily binds the descriptor's cached synchronizer
// compilation to the graph, once per Bound.
func (b *Bound) asyncProgram() (*engine.Program, *synchro.Compiled, error) {
	b.asyncOnce.Do(func() {
		m, code, err := b.d.asyncMachineCode(b.args)
		if err != nil {
			b.asyncErr = err
			return
		}
		b.asyncM = m
		b.asyncProg = code.Bind(b.g)
	})
	return b.asyncProg, b.asyncM, b.asyncErr
}

// tolerantProgram lazily binds the descriptor's cached αβ-hybrid
// compilation to the graph, once per Bound and independent of the plain
// synchronizer's slot.
func (b *Bound) tolerantProgram() (*engine.Program, *synchro.Compiled, error) {
	b.tolOnce.Do(func() {
		m, code, err := b.d.tolerantMachineCode(b.args)
		if err != nil {
			b.tolErr = err
			return
		}
		b.tolM = m
		b.tolProg = code.Bind(b.g)
	})
	return b.tolProg, b.tolM, b.tolErr
}

// votedProgram lazily binds the descriptor's cached voted-tier
// compilation to the graph, once per Bound and independent of the
// other synchronizers' slots.
func (b *Bound) votedProgram() (*engine.Program, *synchro.Compiled, error) {
	b.votedOnce.Do(func() {
		m, code, err := b.d.votedMachineCode(b.args)
		if err != nil {
			b.votedErr = err
			return
		}
		b.votedM = m
		b.votedProg = code.Bind(b.g)
	})
	return b.votedProg, b.votedM, b.votedErr
}

// RunAsync executes the protocol on the asynchronous engine under the
// configured adversary, through the descriptor's cached Theorem 3.1/3.4
// synchronizer compilation (shared across runs; see the file comment).
func (b *Bound) RunAsync(cfg AsyncConfig) (*Run, error) {
	return b.RunAsyncReusing(cfg, nil)
}

// RunAsyncReusing is RunAsync with a reusable scratch arena (nil runs
// with a private one).
func (b *Bound) RunAsyncReusing(cfg AsyncConfig, s *Scratch) (*Run, error) {
	if b.d.Caps.Has(CapSyncOnly) {
		return nil, fmt.Errorf("protocol %s runs on the sync engine only", b.d.Name)
	}
	sc, err := b.resolveScenario(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	var prog *engine.Program
	var compiled *synchro.Compiled
	switch cfg.Synchro {
	case "", SynchroAlpha:
		prog, compiled, err = b.asyncProgram()
	case SynchroTolerant:
		prog, compiled, err = b.tolerantProgram()
	case SynchroVoted:
		prog, compiled, err = b.votedProgram()
	default:
		return nil, fmt.Errorf("protocol %s: unknown synchronizer %q (want %q, %q or %q)",
			b.d.Name, cfg.Synchro, SynchroAlpha, SynchroTolerant, SynchroVoted)
	}
	if err != nil {
		return nil, err
	}
	var vcfg *engine.VotedConfig
	if cfg.Synchro == SynchroVoted {
		vcfg = &engine.VotedConfig{
			K: cfg.VoteK, EvictAfter: cfg.EvictAfter, BackoffCap: cfg.RePulseCap,
			RePulseSource: compiled.RePulseSource,
		}
	}
	res, err := prog.RunAsyncReusing(engine.AsyncConfig{
		Seed: cfg.Seed, Adversary: cfg.Adversary, MaxSteps: cfg.MaxSteps,
		Scenario: sc, Channel: cfg.Channel, Voted: vcfg,
	}, s.engine())
	if err != nil {
		return nil, err
	}
	states, err := b.maskByzStates(compiled.DecodeStates(res.States), sc)
	if err != nil {
		return nil, err
	}
	out, err := b.d.Decode(b.args, states)
	if err != nil {
		return nil, err
	}
	return &Run{
		Output: out, TimeUnits: res.TimeUnits, Steps: res.Steps, Lost: res.Lost,
		PerturbedAt: append([]float64(nil), res.PerturbedAt...), Recovery: res.RecoveryTimeUnits,
		FinalGraph: res.FinalGraph,
		Dropped:    res.Dropped, Duplicated: res.Duplicated, Delayed: res.Delayed,
		Reordered: res.Reordered, Corrupted: res.Corrupted, Severed: res.Severed,
		Byzantine: byzNodes(sc),
		Outvoted:  res.Outvoted, VotedRejections: res.VotedRejections,
		RePulses: res.RePulses, RePulseSends: res.RePulseSends,
		EvictedEdges: res.EvictedEdges,
	}, nil
}

// Check validates out against the bound graph.
func (b *Bound) Check(out Output) error { return b.d.Check(b.args, b.g, out) }

// CheckRun validates a run's output against the graph the run actually
// ended on: the post-mutation FinalGraph for dynamic runs, the bound
// graph for static ones. Every client of dynamic execution must
// validate through this (checking a churned run against the bind-time
// topology would be checking the wrong network). Byzantine nodes are
// excluded: the output is restricted to the honest nodes and checked on
// the honest-induced subgraph, since no invariant binds a node that
// never ran the protocol.
func (b *Bound) CheckRun(run *Run) error {
	g := b.g
	if run.FinalGraph != nil {
		g = run.FinalGraph
	}
	if len(run.Byzantine) == 0 {
		return b.d.Check(b.args, g, run.Output)
	}
	keep := make([]bool, g.N())
	for i := range keep {
		keep[i] = true
	}
	for _, v := range run.Byzantine {
		if v >= 0 && v < len(keep) {
			keep[v] = false
		}
	}
	sub, orig := g.InducedSubgraph(keep)
	out, err := restrictOutput(run.Output, orig)
	if err != nil {
		return fmt.Errorf("protocol %s: %w", b.d.Name, err)
	}
	return b.d.Check(b.args, sub, out)
}

// restrictOutput projects an output onto the honest node set (orig maps
// subgraph ids to original ids). Only per-node outputs with no
// cross-node references restrict soundly; a matching's Mate entries
// point at original ids, so Byzantine exclusion is not supported there.
func restrictOutput(out Output, orig []int) (Output, error) {
	switch o := out.(type) {
	case Mask:
		sub := make(Mask, len(orig))
		for i, v := range orig {
			sub[i] = o[v]
		}
		return sub, nil
	case Colors:
		sub := make(Colors, len(orig))
		for i, v := range orig {
			sub[i] = o[v]
		}
		return sub, nil
	default:
		return nil, fmt.Errorf("byzantine validation unsupported for output type %T", out)
	}
}

// Mutate returns a corrupted copy of out that Check must reject.
func (b *Bound) Mutate(out Output, src *xrand.Source) Output {
	return b.d.Mutate(b.args, b.g, out, src)
}

// SolveSync binds and runs in one step — the convenience route the
// protocol packages' own SolveSync entry points use.
func (d *Descriptor) SolveSync(g *graph.Graph, args Args, cfg SyncConfig) (*Run, error) {
	b, err := d.Bind(g, args)
	if err != nil {
		return nil, err
	}
	return b.RunSync(cfg)
}

// SolveAsync binds and runs asynchronously in one step.
func (d *Descriptor) SolveAsync(g *graph.Graph, args Args, cfg AsyncConfig) (*Run, error) {
	b, err := d.Bind(g, args)
	if err != nil {
		return nil, err
	}
	return b.RunAsync(cfg)
}
