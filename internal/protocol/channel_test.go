package protocol_test

// Protocol-layer contract of the unreliable-channel axis: channel
// models and Byzantine sets thread through SyncConfig/AsyncConfig into
// the engines, the Run surfaces the event counters and the Byzantine
// node list, CheckRun validates on the honest-induced subgraph, and
// bespoke engines reject channels statically.

import (
	"strings"
	"testing"

	"stoneage/internal/channel"
	"stoneage/internal/graph"
	"stoneage/internal/protocol"
	"stoneage/internal/scenario"
	"stoneage/internal/xrand"
)

// TestRunSyncChannelCounters checks that a lossy sync run reports its
// channel interventions on the Run and still validates (ssmis declares
// loss tolerance; the robustness matrix's sync/loss cell).
func TestRunSyncChannelCounters(t *testing.T) {
	d, err := protocol.Lookup("ssmis")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GnpConnected(48, 5.0/48, xrand.New(1))
	b, err := d.Bind(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	run, err := b.RunSync(protocol.SyncConfig{
		Seed:    3,
		Channel: channel.Drop{Rate: 0.25, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Dropped == 0 {
		t.Error("lossy run reported zero dropped copies")
	}
	if run.Duplicated != 0 || run.Corrupted != 0 || run.Reordered != 0 {
		t.Errorf("drop-only run reported (dup, corrupt, reorder) = (%d, %d, %d)",
			run.Duplicated, run.Corrupted, run.Reordered)
	}
	if len(run.Byzantine) != 0 {
		t.Errorf("no byzantine nodes configured, run lists %v", run.Byzantine)
	}
	if err := b.CheckRun(run); err != nil {
		t.Errorf("ssmis did not survive 25%% loss: %v", err)
	}
}

// TestCheckRunExcludesByzantine checks the validation contract: a
// Byzantine node is excluded from the output check (its decoded value
// is arbitrary), while the honest nodes validate on the honest-induced
// subgraph — and the Run reports exactly the configured node set.
func TestCheckRunExcludesByzantine(t *testing.T) {
	d, err := protocol.Lookup("ssmis")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Cycle(12)
	b, err := d.Bind(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc := &scenario.Scenario{
		Reset:     scenario.ResetAuto,
		Byzantine: []channel.ByzNode{channel.Silent(5)},
	}
	run, err := b.RunSync(protocol.SyncConfig{Seed: 2, Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Byzantine) != 1 || run.Byzantine[0] != 5 {
		t.Fatalf("run.Byzantine = %v, want [5]", run.Byzantine)
	}
	if err := b.CheckRun(run); err != nil {
		t.Errorf("honest nodes did not validate with byzantine node excluded: %v", err)
	}
	// The full-graph check must NOT be what ran: node 5 never executed
	// the protocol, so its decoded output is meaningless by contract.
	if err := b.Check(run.Output); err == nil {
		t.Log("full-graph check happened to pass; exclusion still verified via CheckRun")
	}
}

// TestBespokeRejectsChannel checks the static rejection: bespoke
// (Solve-hosted) protocols have no engine hook for a channel model, so
// the runner must fail fast rather than silently run reliably.
func TestBespokeRejectsChannel(t *testing.T) {
	d, err := protocol.Lookup("matching")
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Bind(graph.Cycle(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.RunSync(protocol.SyncConfig{
		Seed:    1,
		Channel: channel.Drop{Rate: 0.1, Seed: 2},
	})
	if err == nil || !strings.Contains(err.Error(), "unreliable channels unsupported") {
		t.Fatalf("bespoke engine accepted a channel model: %v", err)
	}
}

// TestToleranceCaps checks the declarative metadata: the tolerance
// capabilities render in Tolerances/TolString and stay disjoint from
// the execution capabilities in String.
func TestToleranceCaps(t *testing.T) {
	d, err := protocol.Lookup("ssmis")
	if err != nil {
		t.Fatal(err)
	}
	tols := d.Caps.Tolerances()
	want := []string{"loss", "dup", "reorder", "corrupt", "byzantine"}
	if len(tols) != len(want) {
		t.Fatalf("ssmis tolerances = %v, want %v", tols, want)
	}
	for i := range want {
		if tols[i] != want[i] {
			t.Fatalf("ssmis tolerances = %v, want %v", tols, want)
		}
	}
	if s := d.Caps.TolString(); s != "loss,dup,reorder,corrupt,byzantine" {
		t.Errorf("TolString = %q", s)
	}
	// The descriptor-level rendering qualifies the reorder claim with
	// its measured window bound — `stonesim protocols` must not print
	// an unbounded claim the matrix refutes at mean-2 windows — and the
	// byzantine claim with its measured eviction bound, the same
	// cap⇔bound pattern.
	if d.ReorderWindow != 1 {
		t.Errorf("ssmis ReorderWindow = %g, want 1", d.ReorderWindow)
	}
	if d.EvictionBound != 3 {
		t.Errorf("ssmis EvictionBound = %g, want 3", d.EvictionBound)
	}
	if s := d.TolString(); s != "loss,dup,reorder≤1,corrupt,byzantine(evict≤3)" {
		t.Errorf("descriptor TolString = %q, want window- and eviction-qualified claims", s)
	}
	if strings.Contains(d.Caps.String(), "loss") {
		t.Errorf("execution capability string %q leaked a tolerance", d.Caps.String())
	}
	mis, err := protocol.Lookup("mis")
	if err != nil {
		t.Fatal(err)
	}
	if s := mis.Caps.TolString(); s != "dup,corrupt,byzantine" {
		t.Errorf("mis TolString = %q", s)
	}
	if s := mis.TolString(); s != "dup,corrupt,byzantine(evict≤3)" {
		t.Errorf("mis descriptor TolString = %q", s)
	}
}
