package protocol_test

import (
	"fmt"
	"sync"
	"testing"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/protocol"
	"stoneage/internal/xrand"

	// Link the full built-in protocol set into the registry: the
	// conformance suite covers whatever is registered, so a protocol
	// added anywhere is tested here with zero suite edits.
	_ "stoneage/internal/protocol/std"
)

// ladderFor picks a small graph ladder compatible with the protocol's
// capability set: path-only protocols get paths, tree-only protocols a
// tree mix, everything else a general mix.
func ladderFor(d *protocol.Descriptor) []*graph.Graph {
	switch {
	case d.Caps.Has(protocol.CapNeedsPath):
		return []*graph.Graph{graph.Path(2), graph.Path(9), graph.Path(33)}
	case d.Caps.Has(protocol.CapNeedsTree):
		return []*graph.Graph{
			graph.Path(8), graph.Star(9), graph.BinaryTree(15),
			graph.RandomTree(24, xrand.New(7)),
		}
	default:
		return []*graph.Graph{
			graph.GnpConnected(20, 0.2, xrand.New(3)),
			graph.Cycle(11), graph.Torus(4, 4), graph.New(1),
		}
	}
}

// TestConformance is the registry-driven conformance suite: for every
// registered protocol it runs the synchronous engine (and the
// asynchronous one when the capability set allows it) over a small
// graph ladder, asserts the descriptor's validator accepts the real
// output, and asserts it rejects a mutated (bit-flipped) copy.
func TestConformance(t *testing.T) {
	registerConformanceToy()
	for _, d := range protocol.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			for gi, g := range ladderFor(d) {
				bound, err := d.Bind(g, nil)
				if err != nil {
					t.Fatalf("graph %d: bind: %v", gi, err)
				}
				for seed := uint64(0); seed < 3; seed++ {
					run, err := bound.RunSync(protocol.SyncConfig{Seed: seed})
					if err != nil {
						t.Fatalf("graph %d seed %d: %v", gi, seed, err)
					}
					if err := bound.Check(run.Output); err != nil {
						t.Fatalf("graph %d seed %d: real output rejected: %v", gi, seed, err)
					}
					mut := bound.Mutate(run.Output, xrand.NewStream(seed, uint64(gi)))
					if mut == nil {
						t.Fatalf("graph %d seed %d: Mutate returned nil", gi, seed)
					}
					if err := bound.Check(mut); err == nil {
						t.Fatalf("graph %d seed %d: mutated output %v accepted", gi, seed, mut)
					}
				}
				if !d.Caps.Has(protocol.CapSyncOnly) && g.N() <= 24 {
					adv := engine.NamedAdversaries(99)["uniform"]
					run, err := bound.RunAsync(protocol.AsyncConfig{Seed: 1, Adversary: adv})
					if err != nil {
						t.Fatalf("graph %d async: %v", gi, err)
					}
					if err := bound.Check(run.Output); err != nil {
						t.Fatalf("graph %d async: real output rejected: %v", gi, err)
					}
					// The αβ-hybrid compilation must conform wherever the
					// plain synchronizer does — same decoded-output
					// contract, separate cache slot.
					run, err = bound.RunAsync(protocol.AsyncConfig{
						Seed: 1, Adversary: adv, Synchro: protocol.SynchroTolerant,
					})
					if err != nil {
						t.Fatalf("graph %d async tolerant: %v", gi, err)
					}
					if err := bound.Check(run.Output); err != nil {
						t.Fatalf("graph %d async tolerant: real output rejected: %v", gi, err)
					}
					// And the voted αβv tier likewise: on reliable links
					// the vote commits at the same times, nothing evicts,
					// and the decoded output must still conform.
					run, err = bound.RunAsync(protocol.AsyncConfig{
						Seed: 1, Adversary: adv, Synchro: protocol.SynchroVoted,
					})
					if err != nil {
						t.Fatalf("graph %d async voted: %v", gi, err)
					}
					if err := bound.Check(run.Output); err != nil {
						t.Fatalf("graph %d async voted: real output rejected: %v", gi, err)
					}
					if len(run.EvictedEdges) != 0 {
						t.Fatalf("graph %d async voted: %d edges evicted on reliable links", gi, len(run.EvictedEdges))
					}
				}
			}
		})
	}
}

// registerConformanceToy adds a toy protocol with a single Register
// call — the acceptance criterion that a drop-in protocol needs no
// edits anywhere: the conformance loop above picks it up from All()
// exactly like the built-ins.
var registerConformanceToy = sync.OnceFunc(func() {
	protocol.Register(&protocol.Descriptor{
		Name:    "toy-flood",
		Summary: "test-only: one-round beacon flood, every node terminates",
		Machine: func(protocol.Args) (*nfsm.RoundProtocol, error) {
			return &nfsm.RoundProtocol{
				Name:        "toy-flood",
				StateNames:  []string{"start", "done"},
				LetterNames: []string{"beacon"},
				Input:       []nfsm.State{0},
				Output:      []bool{false, true},
				Initial:     0,
				B:           1,
				Transition: func(q nfsm.State, _ []nfsm.Count) []nfsm.Move {
					if q == 1 {
						return []nfsm.Move{{Next: 1, Emit: nfsm.NoLetter}}
					}
					return []nfsm.Move{{Next: 1, Emit: 0}}
				},
			}, nil
		},
		Decode: func(_ protocol.Args, states []nfsm.State) (protocol.Output, error) {
			mask := make(protocol.Mask, len(states))
			for v, q := range states {
				mask[v] = q == 1
			}
			return mask, nil
		},
		Check: func(_ protocol.Args, _ *graph.Graph, out protocol.Output) error {
			for v, done := range out.(protocol.Mask) {
				if !done {
					return fmt.Errorf("toy-flood: node %d never finished", v)
				}
			}
			return nil
		},
		Mutate: protocol.FlipMask,
	})
})

// TestToyProtocolIsDiscoverable pins the drop-in contract at the
// registry level: after the single Register call the toy resolves via
// Lookup and enumerates via All()/Names() — which is exactly what the
// campaign, the CLI and `stonesim protocols` consume.
func TestToyProtocolIsDiscoverable(t *testing.T) {
	registerConformanceToy()
	if _, err := protocol.Lookup("toy-flood"); err != nil {
		t.Fatal(err)
	}
	for _, name := range protocol.Names() {
		if name == "toy-flood" {
			return
		}
	}
	t.Fatal("toy-flood missing from Names()")
}
