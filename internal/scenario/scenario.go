// Package scenario makes topology change a first-class execution axis:
// a Scenario is a timed schedule of graph mutations (edge churn, node
// crashes and restarts, staggered wake-up) plus the reset discipline the
// engines apply to perturbed nodes. The paper motivates nFSMs with
// networks that are "highly dynamic and error-prone"; a Scenario is the
// executable form of that error-proneness.
//
// Scenarios are consumed by every engine entry point
// (engine.SyncConfig.Scenario / engine.AsyncConfig.Scenario), scheduled
// between rounds by the synchronous engines and at absolute times by the
// asynchronous ones, and swept as a campaign axis (campaign.Spec
// .Scenarios) through the generator Defs in this package.
package scenario

import (
	"fmt"
	"math"
	"sort"

	"stoneage/internal/channel"
	"stoneage/internal/graph"
)

// ResetPolicy selects which awake nodes are reset to the machine's input
// state (with their ports cleared to the initial letter) when a mutation
// batch is applied. Restarted and woken nodes are always reset — a
// reboot is intrinsically a reset — independent of the policy.
type ResetPolicy uint8

const (
	// ResetAuto defers the choice to the protocol layer: protocols with
	// the SelfStabilizing capability run under ResetNone (they recover
	// from arbitrary perturbed configurations by construction), every
	// other protocol under ResetAll (a global restart is the one reset
	// that provably re-converges a terminating protocol on the new
	// graph). The engines reject ResetAuto — it must be resolved first.
	ResetAuto ResetPolicy = iota
	// ResetNone resets nothing beyond the intrinsic restart/wake resets.
	ResetNone
	// ResetTouched resets the nodes the batch's mutations touch: the
	// endpoints of added/removed edges and the restarted/woken nodes.
	ResetTouched
	// ResetNeighborhood resets the touched nodes and all their
	// neighbors in the post-mutation graph.
	ResetNeighborhood
	// ResetAll resets every awake node: a global protocol restart on
	// the new topology.
	ResetAll
)

var resetNames = map[ResetPolicy]string{
	ResetAuto:         "auto",
	ResetNone:         "none",
	ResetTouched:      "touched",
	ResetNeighborhood: "neighborhood",
	ResetAll:          "all",
}

// String names the policy.
func (p ResetPolicy) String() string {
	if s, ok := resetNames[p]; ok {
		return s
	}
	return fmt.Sprintf("reset(%d)", uint8(p))
}

// ParseReset resolves a policy name; the empty string is ResetAuto.
func ParseReset(s string) (ResetPolicy, error) {
	if s == "" {
		return ResetAuto, nil
	}
	for p, name := range resetNames {
		if s == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown reset policy %q (want auto, none, touched, neighborhood or all)", s)
}

// Batch is one mutation event: every mutation in Muts is applied
// atomically. The synchronous engines apply a batch after round
// int(At) completes (At = 0: before round 1); the asynchronous engines
// apply it at absolute time At, before any event scheduled at or after
// that time.
type Batch struct {
	At   float64          `json:"at"`
	Muts []graph.Mutation `json:"muts"`
}

// ResetSet returns the nodes the batch resets under policy p, given the
// post-mutation graph. The engines intersect it with the awake set and
// union the intrinsically reset restarted/woken nodes.
func (b Batch) ResetSet(p ResetPolicy, g *graph.Graph) []int {
	switch p {
	case ResetNone:
		return nil
	case ResetAll:
		all := make([]int, g.N())
		for v := range all {
			all[v] = v
		}
		return all
	}
	mark := make(map[int]bool)
	for _, m := range b.Muts {
		for _, v := range m.Touches() {
			mark[v] = true
		}
	}
	if p == ResetNeighborhood {
		// Collect neighbors before extending the set, so the hull stays
		// one hop.
		var hull []int
		for v := range mark {
			hull = append(hull, g.Neighbors(v)...)
		}
		for _, u := range hull {
			mark[u] = true
		}
	}
	out := make([]int, 0, len(mark))
	for v := range mark {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Scenario is a full dynamic-network schedule for one run.
type Scenario struct {
	// Name labels the scenario in results and error messages.
	Name string `json:"name,omitempty"`
	// Asleep lists the nodes that have not started at round 0: they
	// hold the input state, take no steps and transmit nothing until a
	// MutWakeNode mutation wakes them. Output-configuration detection
	// ignores non-awake nodes.
	Asleep []int `json:"asleep,omitempty"`
	// Reset is the per-batch reset discipline. The engines require a
	// concrete policy; ResetAuto is resolved by the protocol layer
	// against the protocol's SelfStabilizing capability.
	Reset ResetPolicy `json:"reset,omitempty"`
	// Batches is the mutation schedule, sorted by non-decreasing At.
	Batches []Batch `json:"batches"`
	// Byzantine lists faulty nodes and their wire behaviors: such a node
	// never executes its machine, emits its behavior's letter at every
	// step, and is excluded from output detection and validation (see
	// channel.ByzNode). Only the dynamic executors host Byzantine nodes,
	// so a scenario with them is never Empty.
	Byzantine []channel.ByzNode `json:"byzantine,omitempty"`
}

// Empty reports whether the scenario perturbs nothing; engines route
// empty (or nil) scenarios through the unchanged static execution path.
func (s *Scenario) Empty() bool {
	return s == nil || (len(s.Batches) == 0 && len(s.Asleep) == 0 && len(s.Byzantine) == 0)
}

// LastAt returns the time of the final batch (0 when there is none).
func (s *Scenario) LastAt() float64 {
	if len(s.Batches) == 0 {
		return 0
	}
	return s.Batches[len(s.Batches)-1].At
}

// WithReset returns a shallow copy with the reset policy replaced; used
// by the protocol layer to resolve ResetAuto without mutating a shared
// scenario.
func (s *Scenario) WithReset(p ResetPolicy) *Scenario {
	c := *s
	c.Reset = p
	return &c
}

// Validate dry-runs the scenario against a copy of g: batch times
// finite, non-negative and non-decreasing, asleep nodes in range and
// duplicate-free, and every mutation applicable in sequence (edges
// exist when removed, nodes alive when crashed, asleep when woken, and
// so on). A scenario that validates here is exactly one the engines
// will execute without a mutation error.
func (s *Scenario) Validate(g *graph.Graph) error {
	if s == nil {
		return nil
	}
	n := g.N()
	status := make([]liveStatus, n)
	seen := make(map[int]bool, len(s.Asleep))
	for _, v := range s.Asleep {
		if v < 0 || v >= n {
			return fmt.Errorf("scenario %s: asleep node %d out of range [0,%d)", s.Name, v, n)
		}
		if seen[v] {
			return fmt.Errorf("scenario %s: duplicate asleep node %d", s.Name, v)
		}
		seen[v] = true
		status[v] = statusAsleep
	}
	byz := make(map[int]bool, len(s.Byzantine))
	for _, b := range s.Byzantine {
		if b.Node < 0 || b.Node >= n {
			return fmt.Errorf("scenario %s: byzantine node %d out of range [0,%d)", s.Name, b.Node, n)
		}
		if byz[b.Node] {
			return fmt.Errorf("scenario %s: duplicate byzantine node %d", s.Name, b.Node)
		}
		byz[b.Node] = true
		// Alphabet-dependent checks (stuck letters in range) happen in
		// the engines, which know the protocol's alphabet size.
		if b.Behavior != channel.BehaviorSilent && b.Behavior != channel.BehaviorStuck && b.Behavior != channel.BehaviorBabble {
			return fmt.Errorf("scenario %s: byzantine node %d has unknown behavior %q", s.Name, b.Node, b.Behavior)
		}
	}
	sim := g.Clone()
	prev := math.Inf(-1)
	for i, b := range s.Batches {
		if math.IsNaN(b.At) || math.IsInf(b.At, 0) || b.At < 0 {
			return fmt.Errorf("scenario %s: batch %d at non-finite or negative time %g", s.Name, i, b.At)
		}
		if b.At < prev {
			return fmt.Errorf("scenario %s: batch %d at %g precedes batch %d at %g", s.Name, i, b.At, i-1, prev)
		}
		prev = b.At
		for _, m := range b.Muts {
			if err := ApplyLiveness(m, status); err != nil {
				return fmt.Errorf("scenario %s: batch %d: %w", s.Name, i, err)
			}
			if err := m.Apply(sim); err != nil {
				return fmt.Errorf("scenario %s: batch %d: %w", s.Name, i, err)
			}
		}
	}
	return nil
}

// liveStatus is a node's liveness during a dynamic run.
type liveStatus uint8

const (
	statusAwake liveStatus = iota
	statusAsleep
	statusCrashed
)

// ApplyLiveness applies the liveness effect of a mutation to the status
// vector, enforcing the kind's precondition (crash an awake node,
// restart a crashed one, wake an asleep one). Edge mutations are
// liveness no-ops. The engines and Validate share this single
// definition of the liveness state machine.
func ApplyLiveness(m graph.Mutation, status []liveStatus) error {
	switch m.Kind {
	case graph.MutCrashNode:
		if m.U < 0 || m.U >= len(status) {
			return fmt.Errorf("scenario: %s out of range", m)
		}
		if status[m.U] != statusAwake {
			return fmt.Errorf("scenario: %s: node is not awake", m)
		}
		status[m.U] = statusCrashed
	case graph.MutRestartNode:
		if m.U < 0 || m.U >= len(status) {
			return fmt.Errorf("scenario: %s out of range", m)
		}
		if status[m.U] != statusCrashed {
			return fmt.Errorf("scenario: %s: node is not crashed", m)
		}
		status[m.U] = statusAwake
	case graph.MutWakeNode:
		if m.U < 0 || m.U >= len(status) {
			return fmt.Errorf("scenario: %s out of range", m)
		}
		if status[m.U] != statusAsleep {
			return fmt.Errorf("scenario: %s: node is not asleep", m)
		}
		status[m.U] = statusAwake
	}
	return nil
}

// Liveness is the engines' view of the per-node liveness state. It
// wraps the same state machine Validate dry-runs, so an engine can
// never disagree with validation about which mutations are legal.
type Liveness struct {
	status []liveStatus
	awake  int
}

// NewLiveness builds the round-0 liveness state: every node awake
// except the scenario's asleep set (already validated in range).
func NewLiveness(n int, asleep []int) *Liveness {
	l := &Liveness{status: make([]liveStatus, n), awake: n}
	for _, v := range asleep {
		if l.status[v] == statusAwake {
			l.status[v] = statusAsleep
			l.awake--
		}
	}
	return l
}

// Awake reports whether node v is currently executing.
func (l *Liveness) Awake(v int) bool { return l.status[v] == statusAwake }

// NumAwake returns the number of executing nodes.
func (l *Liveness) NumAwake() int { return l.awake }

// Apply applies the liveness effect of m and reports the nodes that
// just (re)started executing (restarted or woken): the engines reset
// those intrinsically.
func (l *Liveness) Apply(m graph.Mutation) (started []int, err error) {
	if err := ApplyLiveness(m, l.status); err != nil {
		return nil, err
	}
	switch m.Kind {
	case graph.MutCrashNode:
		l.awake--
	case graph.MutRestartNode, graph.MutWakeNode:
		l.awake++
		started = []int{m.U}
	}
	return started, nil
}
