package scenario

import (
	"fmt"
	"math"
	"sort"

	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

// Def is a declarative scenario generator: the JSON-friendly form the
// campaign Spec's `scenarios` axis and the stonesim CLI use. A Def
// plus a concrete graph plus a seed deterministically yields a
// Scenario — the campaign derives the seed from the trial's content
// coordinates, so aggregates are bit-identical at every worker count.
//
// Kinds:
//
//   - "none": the static baseline — no perturbation (lets one spec
//     sweep static and dynamic cells side by side).
//   - "crash": a one-shot region crash. A BFS region of ⌈Frac·n⌉ nodes
//     around a random root crashes after round At and restarts after
//     round At+Every.
//   - "churn": Poisson edge churn. Count batches, the first after
//     round At and then every Every rounds; each batch flips
//     max(1, Poisson(Rate)) node pairs — present edges are removed,
//     absent ones added.
//   - "wake": staggered wake-up. Only a random ⌈Frac·n⌉ seed group is
//     awake at round 0; the rest sleep and wake in Count waves, the
//     first after round At and then every Every rounds.
type Def struct {
	Kind string `json:"kind"`
	// Frac is the region fraction (crash) or the initially awake
	// fraction (wake); (0, 1], default 0.25.
	Frac float64 `json:"frac,omitempty"`
	// Rate is the mean number of edge flips per churn batch; > 0,
	// default 2.
	Rate float64 `json:"rate,omitempty"`
	// At is the round the first batch follows (>= 0; engines apply a
	// batch between rounds At and At+1). Nil (omitted in JSON) selects
	// the default of 4; an explicit 0 — perturb before round 1 — is
	// taken as given (pointer semantics, like campaign.Family.Param).
	At *int `json:"at,omitempty"`
	// Every is the round gap between successive batches (>= 1, default
	// 8); for "crash" it is the downtime before the restart batch.
	Every int `json:"every,omitempty"`
	// Count is the number of churn batches or wake waves (>= 1,
	// default 3). Ignored by "crash" (always crash + restart).
	Count int `json:"count,omitempty"`
	// Reset names the reset policy ("" = auto: none for
	// self-stabilizing protocols, all for the rest).
	Reset string `json:"reset,omitempty"`
	// Label overrides the display name.
	Label string `json:"label,omitempty"`
}

// None reports whether the def is the static baseline (empty kind is
// treated as "none" so a zero Def is valid).
func (d Def) None() bool { return d.Kind == "" || d.Kind == "none" }

func (d Def) frac() float64 {
	if d.Frac == 0 {
		return 0.25
	}
	return d.Frac
}

func (d Def) rate() float64 {
	if d.Rate == 0 {
		return 2
	}
	return d.Rate
}

// Round wraps a literal first-batch round for a Def composed in Go
// (JSON specs just write the number).
func Round(v int) *int { return &v }

func (d Def) at() int {
	if d.At == nil {
		return 4
	}
	return *d.At
}

func (d Def) every() int {
	if d.Every == 0 {
		return 8
	}
	return d.Every
}

func (d Def) count() int {
	if d.Count == 0 {
		return 3
	}
	return d.Count
}

// Name returns the def's display name. A non-default reset policy is
// part of the name: two defs differing only in reset are distinct axis
// entries (Key separates them), so their rows must be tellable apart
// in tables and CSV without a Label.
func (d Def) Name() string {
	if d.Label != "" {
		return d.Label
	}
	if d.None() {
		return "none"
	}
	if d.Reset != "" && d.Reset != "auto" {
		return fmt.Sprintf("%s/reset=%s", d.Kind, d.Reset)
	}
	return d.Kind
}

// Key canonicalizes the def's content for seed derivation and
// duplicate detection: exactly the fields that change the resolved
// scenario (generation or execution) participate — resolved to their
// effective values, so "" and "auto" resets collapse, defaults equal
// their explicit spellings, and fields the kind ignores (frac for
// churn, rate/count for crash, rate for wake) are excluded. The
// display label does not participate.
func (d Def) Key() string {
	if d.None() {
		return "none"
	}
	reset, err := ParseReset(d.Reset)
	if err != nil {
		reset = ResetAuto // unreachable after Validate; keep Key total
	}
	switch d.Kind {
	case "crash":
		return fmt.Sprintf("crash/f=%g/at=%d/ev=%d/rs=%s", d.frac(), d.at(), d.every(), reset)
	case "wake":
		return fmt.Sprintf("wake/f=%g/at=%d/ev=%d/ct=%d/rs=%s", d.frac(), d.at(), d.every(), d.count(), reset)
	}
	return fmt.Sprintf("churn/r=%g/at=%d/ev=%d/ct=%d/rs=%s", d.rate(), d.at(), d.every(), d.count(), reset)
}

// Validate checks the def's static well-formedness.
func (d Def) Validate() error {
	switch {
	case d.None():
		if d.Frac != 0 || d.Rate != 0 || d.At != nil || d.Every != 0 || d.Count != 0 || d.Reset != "" {
			return fmt.Errorf("scenario: kind %q takes no parameters", d.Name())
		}
		return nil
	case d.Kind != "crash" && d.Kind != "churn" && d.Kind != "wake":
		return fmt.Errorf("scenario: unknown kind %q (want none, crash, churn or wake)", d.Kind)
	}
	// Fields a kind ignores must be unset: a stray parameter would
	// silently do nothing while suggesting it shaped the scenario (same
	// rationale as the campaign families' stray-param rejection).
	switch d.Kind {
	case "churn":
		if d.Frac != 0 {
			return fmt.Errorf("scenario churn: frac is not a churn parameter (got %g)", d.Frac)
		}
	case "crash":
		if d.Rate != 0 || d.Count != 0 {
			return fmt.Errorf("scenario crash: rate/count are not crash parameters")
		}
	case "wake":
		if d.Rate != 0 {
			return fmt.Errorf("scenario wake: rate is not a wake parameter (got %g)", d.Rate)
		}
	}
	if f := d.frac(); f <= 0 || f > 1 {
		return fmt.Errorf("scenario %s: frac %g outside (0,1]", d.Kind, f)
	}
	if d.Kind == "churn" && d.rate() <= 0 {
		return fmt.Errorf("scenario churn: rate %g must be positive", d.rate())
	}
	if d.at() < 0 {
		return fmt.Errorf("scenario %s: at %d must be >= 0", d.Kind, d.at())
	}
	if d.every() < 1 {
		return fmt.Errorf("scenario %s: every %d must be >= 1", d.Kind, d.Every)
	}
	if d.count() < 1 {
		return fmt.Errorf("scenario %s: count %d must be >= 1", d.Kind, d.Count)
	}
	if _, err := ParseReset(d.Reset); err != nil {
		return err
	}
	return nil
}

// Generate builds the concrete scenario for one run on g. The result is
// a pure function of (d, g, seed); it always validates against g and —
// by construction of every kind — ends with all nodes awake, so final
// outputs are decodable and checkable against the final graph.
func (d Def) Generate(g *graph.Graph, seed uint64) (*Scenario, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	reset, err := ParseReset(d.Reset)
	if err != nil {
		return nil, err
	}
	if d.None() {
		return &Scenario{Name: "none"}, nil
	}
	src := xrand.NewStream(seed, xrand.FNV("scenario"), xrand.FNV(d.Kind))
	s := &Scenario{Name: d.Name(), Reset: reset}
	n := g.N()
	switch d.Kind {
	case "crash":
		if n == 0 {
			break
		}
		region := bfsRegion(g, src.Intn(n), regionSize(d.frac(), n), src)
		crash := make([]graph.Mutation, len(region))
		restart := make([]graph.Mutation, len(region))
		for i, v := range region {
			crash[i] = graph.Mutation{Kind: graph.MutCrashNode, U: v}
			restart[i] = graph.Mutation{Kind: graph.MutRestartNode, U: v}
		}
		s.Batches = []Batch{
			{At: float64(d.at()), Muts: crash},
			{At: float64(d.at() + d.every()), Muts: restart},
		}
	case "churn":
		sim := g.Clone()
		for i := 0; i < d.count(); i++ {
			k := poisson(d.rate(), src)
			if k < 1 {
				k = 1
			}
			muts := make([]graph.Mutation, 0, k)
			for j := 0; j < k; j++ {
				if m, ok := flipPair(sim, src); ok {
					muts = append(muts, m)
				}
			}
			if len(muts) == 0 {
				continue
			}
			s.Batches = append(s.Batches, Batch{At: float64(d.at() + i*d.every()), Muts: muts})
		}
	case "wake":
		if n < 2 {
			break // a single node is its own seed group; nothing to wake
		}
		perm := src.Perm(n)
		awake := regionSize(d.frac(), n)
		rest := perm[awake:]
		s.Asleep = append([]int(nil), rest...)
		sort.Ints(s.Asleep)
		waves := d.count()
		if waves > len(rest) {
			waves = len(rest)
		}
		for i := 0; i < waves; i++ {
			lo, hi := i*len(rest)/waves, (i+1)*len(rest)/waves
			muts := make([]graph.Mutation, 0, hi-lo)
			for _, v := range rest[lo:hi] {
				muts = append(muts, graph.Mutation{Kind: graph.MutWakeNode, U: v})
			}
			s.Batches = append(s.Batches, Batch{At: float64(d.at() + i*d.every()), Muts: muts})
		}
	}
	if err := s.Validate(g); err != nil {
		return nil, fmt.Errorf("scenario %s: generator bug: %w", d.Name(), err)
	}
	return s, nil
}

// regionSize is ⌈frac·n⌉ clamped to [1, n].
func regionSize(frac float64, n int) int {
	k := int(math.Ceil(frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// bfsRegion grows a breadth-first region of size k around root,
// breaking out through random restarts when the component is exhausted
// (so disconnected graphs still yield a k-node region).
func bfsRegion(g *graph.Graph, root, k int, src *xrand.Source) []int {
	n := g.N()
	seen := make([]bool, n)
	var region []int
	queue := []int{root}
	seen[root] = true
	for len(region) < k {
		if len(queue) == 0 {
			// Component exhausted: restart from a random unseen node.
			v := -1
			for _, u := range src.Perm(n) {
				if !seen[u] {
					v = u
					break
				}
			}
			if v < 0 {
				break
			}
			seen[v] = true
			queue = append(queue, v)
			continue
		}
		v := queue[0]
		queue = queue[1:]
		region = append(region, v)
		for _, u := range g.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	sort.Ints(region)
	return region
}

// flipPair picks a uniformly random node pair and returns the mutation
// that toggles it, applying it to sim so later flips see the updated
// edge set. It reports false when no legal pair exists (n < 2).
func flipPair(sim *graph.Graph, src *xrand.Source) (graph.Mutation, bool) {
	n := sim.N()
	if n < 2 {
		return graph.Mutation{}, false
	}
	u := src.Intn(n)
	v := src.Intn(n - 1)
	if v >= u {
		v++
	}
	if u > v {
		u, v = v, u
	}
	m := graph.Mutation{Kind: graph.MutAddEdge, U: u, V: v}
	if sim.HasEdge(u, v) {
		m.Kind = graph.MutRemoveEdge
	}
	if err := m.Apply(sim); err != nil {
		panic("scenario: flipPair generated an inapplicable mutation: " + err.Error())
	}
	return m, true
}

// poisson draws a Poisson(mean) sample via Knuth's product method
// (mean is small — a handful of flips per batch).
func poisson(mean float64, src *xrand.Source) int {
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= src.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1024 { // guard absurd means
			return k
		}
	}
}
