package scenario

import (
	"testing"

	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

func TestParseReset(t *testing.T) {
	for s, want := range map[string]ResetPolicy{
		"": ResetAuto, "auto": ResetAuto, "none": ResetNone,
		"touched": ResetTouched, "neighborhood": ResetNeighborhood, "all": ResetAll,
	} {
		got, err := ParseReset(s)
		if err != nil || got != want {
			t.Errorf("ParseReset(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseReset("everything"); err == nil {
		t.Fatal("ParseReset accepted an unknown policy")
	}
}

func TestScenarioValidate(t *testing.T) {
	g := graph.Path(6)
	bad := []Scenario{
		{Asleep: []int{9}},
		{Asleep: []int{1, 1}},
		{Batches: []Batch{{At: -1}}},
		{Batches: []Batch{{At: 5}, {At: 3}}}, // out of order
		{Batches: []Batch{{At: 1, Muts: []graph.Mutation{{Kind: graph.MutRemoveEdge, U: 0, V: 5}}}}},
		{Batches: []Batch{{At: 1, Muts: []graph.Mutation{{Kind: graph.MutRestartNode, U: 2}}}}}, // never crashed
		{Batches: []Batch{{At: 1, Muts: []graph.Mutation{{Kind: graph.MutWakeNode, U: 2}}}}},    // not asleep
		{Batches: []Batch{{At: 1, Muts: []graph.Mutation{
			{Kind: graph.MutCrashNode, U: 2}, {Kind: graph.MutCrashNode, U: 2}}}}}, // double crash
	}
	for i, s := range bad {
		if err := s.Validate(g); err == nil {
			t.Errorf("bad scenario %d validated", i)
		}
	}
	good := Scenario{
		Asleep: []int{4},
		Batches: []Batch{
			{At: 2, Muts: []graph.Mutation{{Kind: graph.MutCrashNode, U: 0}, {Kind: graph.MutAddEdge, U: 1, V: 3}}},
			{At: 5, Muts: []graph.Mutation{{Kind: graph.MutRestartNode, U: 0}, {Kind: graph.MutWakeNode, U: 4}}},
			{At: 5, Muts: []graph.Mutation{{Kind: graph.MutRemoveEdge, U: 1, V: 3}}},
		},
	}
	if err := good.Validate(g); err != nil {
		t.Fatalf("good scenario rejected: %v", err)
	}
	// Validation must not mutate the argument graph.
	if g.M() != 5 || g.HasEdge(1, 3) {
		t.Fatal("Validate mutated the input graph")
	}
}

func TestResetSet(t *testing.T) {
	g := graph.Path(6) // 0-1-2-3-4-5
	b := Batch{Muts: []graph.Mutation{
		{Kind: graph.MutAddEdge, U: 1, V: 3},
		{Kind: graph.MutRestartNode, U: 5},
		{Kind: graph.MutCrashNode, U: 0}, // crash touches nothing
	}}
	if got := b.ResetSet(ResetNone, g); got != nil {
		t.Fatalf("ResetNone = %v", got)
	}
	if got := b.ResetSet(ResetTouched, g); !equalInts(got, []int{1, 3, 5}) {
		t.Fatalf("ResetTouched = %v, want [1 3 5]", got)
	}
	// Neighborhood on the post-mutation graph: with chord {1,3} present,
	// N[{1,3,5}] = {0,1,2,3,4,5}.
	gg := g.Clone()
	if err := gg.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if got := b.ResetSet(ResetNeighborhood, gg); !equalInts(got, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("ResetNeighborhood = %v", got)
	}
	if got := b.ResetSet(ResetAll, g); len(got) != 6 {
		t.Fatalf("ResetAll = %v", got)
	}
}

func TestLiveness(t *testing.T) {
	l := NewLiveness(4, []int{2})
	if l.NumAwake() != 3 || l.Awake(2) {
		t.Fatalf("initial liveness wrong: awake=%d", l.NumAwake())
	}
	if _, err := l.Apply(graph.Mutation{Kind: graph.MutCrashNode, U: 2}); err == nil {
		t.Fatal("crashed an asleep node")
	}
	started, err := l.Apply(graph.Mutation{Kind: graph.MutWakeNode, U: 2})
	if err != nil || len(started) != 1 || started[0] != 2 || !l.Awake(2) || l.NumAwake() != 4 {
		t.Fatalf("wake: started=%v err=%v awake=%d", started, err, l.NumAwake())
	}
	if _, err := l.Apply(graph.Mutation{Kind: graph.MutCrashNode, U: 0}); err != nil || l.NumAwake() != 3 {
		t.Fatalf("crash failed: %v", err)
	}
	started, err = l.Apply(graph.Mutation{Kind: graph.MutRestartNode, U: 0})
	if err != nil || len(started) != 1 || started[0] != 0 {
		t.Fatalf("restart: started=%v err=%v", started, err)
	}
}

func TestDefValidate(t *testing.T) {
	bad := []Def{
		{Kind: "quake"},
		{Kind: "none", Frac: 0.5},
		{Kind: "crash", Frac: 1.5},
		{Kind: "churn", Rate: -1},
		{Kind: "wake", At: Round(-2)},
		{Kind: "crash", Every: -1},
		{Kind: "churn", Count: -3},
		{Kind: "crash", Reset: "sometimes"},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad def %d (%+v) validated", i, d)
		}
	}
	good := []Def{
		{}, {Kind: "none"},
		{Kind: "crash"}, {Kind: "crash", Frac: 0.5, At: Round(2), Every: 4, Reset: "all"},
		{Kind: "churn", Rate: 3, Count: 5},
		{Kind: "wake", Frac: 0.1, Every: 2},
	}
	for i, d := range good {
		if err := d.Validate(); err != nil {
			t.Errorf("good def %d: %v", i, err)
		}
	}
}

// TestGenerate checks every kind's structural guarantees on a spread of
// graphs: the scenario validates, is deterministic in the seed, and
// ends with all nodes awake.
func TestGenerate(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(1),
		graph.Path(12),
		graph.Gnp(40, 0.1, xrand.New(3)),
		graph.Star(9),
	}
	defs := []Def{
		{Kind: "none"},
		{Kind: "crash", Frac: 0.3},
		{Kind: "churn", Rate: 2, Count: 4, Every: 3},
		{Kind: "wake", Frac: 0.25, Count: 3, Every: 2},
	}
	for _, g := range graphs {
		for _, d := range defs {
			s1, err := d.Generate(g, 42)
			if err != nil {
				t.Fatalf("%s on n=%d: %v", d.Name(), g.N(), err)
			}
			s2, err := d.Generate(g, 42)
			if err != nil {
				t.Fatal(err)
			}
			if len(s1.Batches) != len(s2.Batches) || len(s1.Asleep) != len(s2.Asleep) {
				t.Fatalf("%s: generation not deterministic", d.Name())
			}
			for i := range s1.Batches {
				if len(s1.Batches[i].Muts) != len(s2.Batches[i].Muts) || s1.Batches[i].At != s2.Batches[i].At {
					t.Fatalf("%s: batch %d differs across identical generations", d.Name(), i)
				}
			}
			if d.None() != s1.Empty() && g.N() > 1 {
				t.Fatalf("%s on n=%d: empty=%v", d.Name(), g.N(), s1.Empty())
			}
			// All-awake-at-end guarantee: count liveness transitions.
			down := len(s1.Asleep)
			for _, b := range s1.Batches {
				for _, m := range b.Muts {
					switch m.Kind {
					case graph.MutCrashNode:
						down++
					case graph.MutRestartNode, graph.MutWakeNode:
						down--
					}
				}
			}
			if down != 0 {
				t.Fatalf("%s on n=%d: %d nodes left non-awake at the end", d.Name(), g.N(), down)
			}
		}
	}
}

func TestDefKeyAndName(t *testing.T) {
	a := Def{Kind: "churn", Rate: 2}
	b := Def{Kind: "churn", Rate: 3}
	if a.Key() == b.Key() {
		t.Fatal("different defs share a key")
	}
	if a.Key() != (Def{Kind: "churn", Rate: 2, Label: "x"}).Key() {
		t.Fatal("label must not perturb the key")
	}
	if (Def{}).Key() != "none" || (Def{Kind: "none"}).Name() != "none" {
		t.Fatal("zero def is not canonical none")
	}
	if (Def{Kind: "crash", Label: "blackout"}).Name() != "blackout" {
		t.Fatal("label does not override the name")
	}
	// Defs differing only in reset are distinct axis entries; both the
	// key AND the display name must separate them, or their campaign
	// rows would be indistinguishable.
	all := Def{Kind: "churn", Reset: "all"}
	none := Def{Kind: "churn", Reset: "none"}
	if all.Key() == none.Key() || all.Name() == none.Name() {
		t.Fatalf("reset-distinct defs collide: names %q / %q", all.Name(), none.Name())
	}
	if none.Name() != "churn/reset=none" {
		t.Fatalf("Name() = %q", none.Name())
	}
	if (Def{Kind: "churn", Reset: "auto"}).Name() != "churn" {
		t.Fatal("auto reset must not clutter the name")
	}
}

// TestExplicitZeroAt pins the pointer semantics of Def.At: an explicit
// 0 — perturb before round 1 — must not be coerced to the default.
func TestExplicitZeroAt(t *testing.T) {
	g := graph.Path(12)
	zero := Def{Kind: "crash", At: Round(0), Every: 4}
	sc, err := zero.Generate(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Batches[0].At != 0 {
		t.Fatalf("explicit at=0 generated first batch at %g", sc.Batches[0].At)
	}
	dflt, err := Def{Kind: "crash", Every: 4}.Generate(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dflt.Batches[0].At != 4 {
		t.Fatalf("default at generated first batch at %g, want 4", dflt.Batches[0].At)
	}
	if zero.Key() == (Def{Kind: "crash", Every: 4}).Key() {
		t.Fatal("at=0 def shares a key with the default")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
