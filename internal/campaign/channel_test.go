package campaign

// The channel-axis suite: unreliable channels as a campaign dimension.
// Reliable cells must stay bit-identical to a channel-free sweep, cells
// under pathology must aggregate survival (converged/valid rates)
// instead of hard-failing, and — the axis's acceptance property — the
// aggregates must be bit-identical at every worker count, because every
// trial's channel model derives from content coordinates, not from
// which worker ran it.

import (
	"reflect"
	"strings"
	"testing"

	"stoneage/internal/channel"
)

// channelSpec sweeps a terminating and a self-stabilizing protocol
// across the reliable baseline, wire pathologies and a Byzantine
// population.
func channelSpec(workers int) Spec {
	return Spec{
		Name:      "test-channel",
		Protocols: []string{"mis", "ssmis"},
		Families:  []Family{{Kind: "gnp"}},
		Sizes:     []int{24, 48},
		Channels: []channel.Def{
			{},
			{Drop: 0.2, Dup: 0.1, Label: "lossy"},
			{Byz: []channel.ByzDef{{Behavior: channel.BehaviorBabble, Frac: 0.1}}, Label: "byz"},
		},
		Trials:    6,
		Seed:      23,
		MaxRounds: 1 << 13,
		Workers:   workers,
	}
}

// TestChannelAxis runs the channel cross product end to end.
func TestChannelAxis(t *testing.T) {
	res, err := Run(channelSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(res.Cells))
	}
	reliable := channelSpec(0)
	reliable.Channels = nil
	base, err := Run(reliable)
	if err != nil {
		t.Fatal(err)
	}
	bi := 0
	for _, c := range res.Cells {
		if c.ConvergedRate < 0 || c.ConvergedRate > 1 || c.ValidRate > c.ConvergedRate {
			t.Fatalf("cell %s ch=%q: rates (%g, %g) out of order", c.Protocol, c.Channel, c.ConvergedRate, c.ValidRate)
		}
		if c.Channel == "" {
			// Reliable cells: bit-identical to the channel-free sweep and
			// at unit survival.
			b := base.Cells[bi]
			bi++
			if c.Rounds != b.Rounds || c.Transmissions != b.Transmissions {
				t.Fatalf("reliable cell %s/%s/n=%d diverges from the channel-free sweep", c.Protocol, c.Family, c.Size)
			}
			if c.ConvergedRate != 1 || c.ValidRate != 1 {
				t.Fatalf("reliable cell %s/n=%d rates (%g, %g), want (1, 1)", c.Protocol, c.Size, c.ConvergedRate, c.ValidRate)
			}
			if c.Dropped.N != 0 || c.Duplicated.N != 0 {
				t.Fatalf("reliable cell %s/n=%d reports channel events", c.Protocol, c.Size)
			}
			continue
		}
		if c.Channel == "lossy" && c.ConvergedRate > 0 && c.Dropped.Mean <= 0 {
			t.Fatalf("lossy cell %s/n=%d converged without dropping anything", c.Protocol, c.Size)
		}
	}
	if bi != len(base.Cells) {
		t.Fatalf("matched %d reliable cells, want %d", bi, len(base.Cells))
	}
	// The self-stabilizing protocol must actually survive the loss cell
	// it declares tolerance for (the robustness matrix's campaign row).
	for _, c := range res.Cells {
		if c.Protocol == "ssmis" && c.Channel == "lossy" && c.ValidRate == 0 {
			t.Fatalf("ssmis lossy cell n=%d: valid rate 0", c.Size)
		}
	}
}

// TestChannelWorkerInvariance is the axis's acceptance property:
// identical aggregates at every worker count.
func TestChannelWorkerInvariance(t *testing.T) {
	base, err := Run(channelSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	base.StripWall()
	for _, workers := range []int{3, 8} {
		got, err := Run(channelSpec(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got.StripWall()
		if !reflect.DeepEqual(got.Cells, base.Cells) {
			t.Fatalf("workers=%d: channel aggregates diverged from workers=1", workers)
		}
	}
}

// TestChannelSpecValidation covers the channel-axis rejection cases.
func TestChannelSpecValidation(t *testing.T) {
	base := func(p string, defs ...channel.Def) Spec {
		return Spec{
			Protocols: []string{p}, Families: []Family{{Kind: "gnp"}},
			Sizes: []int{8}, Trials: 1, Channels: defs,
		}
	}
	cases := []struct {
		name string
		sp   Spec
		want string
	}{
		{"bespoke engine", base("matching", channel.Def{Drop: 0.1}), "bespoke engine"},
		{"bad rate", base("mis", channel.Def{Drop: 1.5}), "drop"},
		{"fanout bomb", base("mis", channel.Def{Dup: 0.5, DupMax: 99}), "dupMax"},
		{"bad behavior", base("mis", channel.Def{Byz: []channel.ByzDef{{Behavior: "weird", Frac: 0.1}}}), "behavior"},
		{"duplicate channel", base("mis", channel.Def{Drop: 0.1}, channel.Def{Drop: 0.1, Label: "again"}), "duplicate channel"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sp.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want mention of %q", err, tc.want)
			}
		})
	}
	// A bespoke protocol with only the reliable baseline is fine.
	ok := base("matching", channel.Def{})
	if err := ok.Validate(); err != nil {
		t.Fatalf("reliable-only channel axis rejected for bespoke protocol: %v", err)
	}
}
