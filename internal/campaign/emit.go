package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"stoneage/internal/harness"
)

// WriteJSON emits the result as indented JSON. The field and cell order
// is deterministic (spec order), so two runs of the same spec produce
// byte-identical output once wall-clock stats are stripped.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// csvHeader is the flat per-cell schema of WriteCSV.
var csvHeader = []string{
	"protocol", "family", "size", "n", "m", "maxDeg", "trials",
	"rounds_mean", "rounds_std", "rounds_min", "rounds_median", "rounds_p90", "rounds_max",
	"tx_mean", "tx_std", "tx_min", "tx_median", "tx_p90", "tx_max",
	"wall_ms_mean", "wall_ms_std", "wall_ms_p90",
}

// WriteCSV emits one row per cell in spec order.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range r.Cells {
		row := []string{
			c.Protocol, c.Family,
			strconv.Itoa(c.Size), strconv.Itoa(c.N), strconv.Itoa(c.M),
			strconv.Itoa(c.MaxDeg), strconv.Itoa(c.Trials),
			f(c.Rounds.Mean), f(c.Rounds.Std), f(c.Rounds.Min), f(c.Rounds.Median), f(c.Rounds.P90), f(c.Rounds.Max),
			f(c.Transmissions.Mean), f(c.Transmissions.Std), f(c.Transmissions.Min), f(c.Transmissions.Median), f(c.Transmissions.P90), f(c.Transmissions.Max),
			f(c.WallMS.Mean), f(c.WallMS.Std), f(c.WallMS.P90),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// StripWall zeroes every wall-clock aggregate. Wall time depends on the
// machine and the worker count; stripping it leaves exactly the
// deterministic part of the result (used by the golden tests and the
// worker-invariance checks).
func (r *Result) StripWall() {
	for i := range r.Cells {
		r.Cells[i].WallMS = harness.Stats{}
	}
}

// Tables renders the campaign as one fixed-width table per protocol:
// families as rows, the size ladder as columns, each cell showing
// mean ± std of the round measure over the trials.
func (r *Result) Tables() []*harness.Table {
	var tables []*harness.Table
	byProto := map[string]*harness.Table{}
	for _, p := range r.Spec.Protocols {
		header := []string{"family"}
		for _, n := range r.Spec.Sizes {
			header = append(header, fmt.Sprintf("n=%d", n))
		}
		title := fmt.Sprintf("%s: mean %s over %d trials (%s engine)",
			p, r.RoundsUnit, r.Spec.Trials, r.Spec.engine())
		if r.Spec.Name != "" {
			title = fmt.Sprintf("%s — %s", r.Spec.Name, title)
		}
		t := &harness.Table{Title: title, Header: header}
		byProto[p] = t
		tables = append(tables, t)
	}
	// Cells arrive protocol-major, family-major, size-minor: walk each
	// protocol's block row by row.
	for i := 0; i < len(r.Cells); {
		c := r.Cells[i]
		row := []string{c.Family}
		for range r.Spec.Sizes {
			cc := r.Cells[i]
			row = append(row, fmt.Sprintf("%s ± %s",
				harness.FormatFloat(cc.Rounds.Mean), harness.FormatFloat(cc.Rounds.Std)))
			i++
		}
		t := byProto[c.Protocol]
		t.Rows = append(t.Rows, row)
	}
	return tables
}
