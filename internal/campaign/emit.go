package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"stoneage/internal/channel"
	"stoneage/internal/harness"
	"stoneage/internal/scenario"
)

// WriteJSON emits the result as indented JSON. The field and cell order
// is deterministic (canonical cell order), so two runs of the same spec
// — at any worker or shard count — produce byte-identical output once
// wall-clock stats are stripped.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// csvHeader is the flat per-cell schema of WriteCSV. The scenario,
// channel, recovery and robustness columns are part of the uniform
// schema: static cells carry an empty scenario name and zero recovery
// aggregates; reliable cells carry an empty channel name, unit
// converged/valid rates and zero channel-event aggregates.
var csvHeader = []string{
	"protocol", "engine", "scenario", "channel", "family", "size", "n", "m", "maxDeg", "trials",
	"rounds_mean", "rounds_std", "rounds_min", "rounds_median", "rounds_p90", "rounds_max",
	"tx_mean", "tx_std", "tx_min", "tx_median", "tx_p90", "tx_max",
	"recovery_mean", "recovery_std", "recovery_min", "recovery_median", "recovery_p90", "recovery_max",
	"perturbations_mean",
	"converged_rate", "valid_rate",
	"dropped_mean", "duplicated_mean", "delayed_mean", "reordered_mean", "corrupted_mean",
	"outvoted_mean", "evicted_mean",
	"wall_ms_mean", "wall_ms_std", "wall_ms_p90",
}

// WriteCSV emits one row per cell in canonical cell order.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range r.Cells {
		row := []string{
			c.Protocol, c.Engine, c.Scenario, c.Channel, c.Family,
			strconv.Itoa(c.Size), strconv.Itoa(c.N), strconv.Itoa(c.M),
			strconv.Itoa(c.MaxDeg), strconv.Itoa(c.Trials),
			f(c.Rounds.Mean), f(c.Rounds.Std), f(c.Rounds.Min), f(c.Rounds.Median), f(c.Rounds.P90), f(c.Rounds.Max),
			f(c.Transmissions.Mean), f(c.Transmissions.Std), f(c.Transmissions.Min), f(c.Transmissions.Median), f(c.Transmissions.P90), f(c.Transmissions.Max),
			f(c.Recovery.Mean), f(c.Recovery.Std), f(c.Recovery.Min), f(c.Recovery.Median), f(c.Recovery.P90), f(c.Recovery.Max),
			f(c.Perturbations.Mean),
			f(c.ConvergedRate), f(c.ValidRate),
			f(c.Dropped.Mean), f(c.Duplicated.Mean), f(c.Delayed.Mean), f(c.Reordered.Mean), f(c.Corrupted.Mean),
			f(c.Outvoted.Mean), f(c.Evicted.Mean),
			f(c.WallMS.Mean), f(c.WallMS.Std), f(c.WallMS.P90),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// StripWall zeroes every wall-clock aggregate. Wall time depends on the
// machine and the worker count; stripping it leaves exactly the
// deterministic part of the result (used by the golden tests and the
// worker-invariance checks).
func (r *Result) StripWall() {
	for i := range r.Cells {
		r.Cells[i].WallMS = harness.Stats{}
	}
}

// Tables renders the campaign as one fixed-width table per protocol:
// (scenario, channel, family) tuples as rows, the size ladder as
// columns, each cell showing mean ± std of the round measure over the
// trials. Sweeps with a dynamic axis get one extra recovery table per
// protocol — the same grid over the recovery-time metric, dynamic rows
// only — and sweeps with a channel axis get one survival table per
// protocol: converged-rate/valid-rate per cell.
func (r *Result) Tables() []*harness.Table {
	dynamic := false
	unreliable := false
	for _, c := range r.Cells {
		if c.Scenario != "" {
			dynamic = true
		}
		if c.Channel != "" {
			unreliable = true
		}
	}
	rowLabel := func(c CellResult) string {
		label := c.Family
		if c.Engine != "" {
			label = fmt.Sprintf("%s [%s]", label, c.Engine)
		}
		if c.Scenario != "" || dynamic {
			scn := c.Scenario
			if scn == "" {
				scn = "none"
			}
			label = fmt.Sprintf("%s @%s", label, scn)
		}
		if unreliable {
			ch := c.Channel
			if ch == "" {
				ch = "none"
			}
			label = fmt.Sprintf("%s ch=%s", label, ch)
		}
		return label
	}
	header := []string{"family"}
	for _, n := range r.Spec.Sizes {
		header = append(header, fmt.Sprintf("n=%d", n))
	}

	var tables []*harness.Table
	byProto := map[string]*harness.Table{}
	recovery := map[string]*harness.Table{}
	survival := map[string]*harness.Table{}
	engLabel := r.Spec.engine()
	if engs := r.Spec.engineAxis(); len(engs) > 1 {
		engLabel = strings.Join(engs, "+")
	}
	for _, p := range r.Spec.Protocols {
		title := fmt.Sprintf("%s: mean %s over %d trials (%s engine)",
			p, r.RoundsUnit, r.Spec.Trials, engLabel)
		if r.Spec.Name != "" {
			title = fmt.Sprintf("%s — %s", r.Spec.Name, title)
		}
		t := &harness.Table{Title: title, Header: header}
		byProto[p] = t
		tables = append(tables, t)
		if dynamic {
			unit := "recovery rounds"
			if r.RoundsUnit == "time-units" {
				unit = "recovery time-units"
			}
			rt := &harness.Table{
				Title:  fmt.Sprintf("%s: mean %s (last perturbation → valid output)", p, unit),
				Header: header,
			}
			recovery[p] = rt
			tables = append(tables, rt)
		}
		if unreliable {
			st := &harness.Table{
				Title:  fmt.Sprintf("%s: converged/valid rate under channel pathology", p),
				Header: header,
			}
			survival[p] = st
			tables = append(tables, st)
		}
	}
	// Result.Cells is in canonical cell order; the tables present rows
	// in spec order (the order the author wrote the axes in), so index
	// the cells by canonical identity and walk the spec's cross product.
	idx := make(map[string]CellResult, len(r.Cells))
	for i, id := range r.Spec.CellIDs() {
		if i >= len(r.Cells) {
			break
		}
		idx[id.Key()] = r.Cells[i]
	}
	at := func(p, eng string, scn scenario.Def, ch channel.Def, f Family, n int) CellResult {
		return idx[CellID{Protocol: p, Engine: eng, Scenario: scn, Channel: ch, Family: f, Size: n}.Key()]
	}
	for _, p := range r.Spec.Protocols {
		for _, eng := range r.Spec.engineAxis() {
			for _, scn := range r.Spec.scenarioAxis() {
				for _, ch := range r.Spec.channelAxis() {
					for _, fam := range r.Spec.Families {
						c := at(p, eng, scn, ch, fam, r.Spec.Sizes[0])
						row := []string{rowLabel(c)}
						var recRow, surRow []string
						if c.Scenario != "" {
							recRow = []string{rowLabel(c)}
						}
						if unreliable {
							surRow = []string{rowLabel(c)}
						}
						for _, n := range r.Spec.Sizes {
							cc := at(p, eng, scn, ch, fam, n)
							row = append(row, fmt.Sprintf("%s ± %s",
								harness.FormatFloat(cc.Rounds.Mean), harness.FormatFloat(cc.Rounds.Std)))
							if recRow != nil {
								recRow = append(recRow, fmt.Sprintf("%s ± %s",
									harness.FormatFloat(cc.Recovery.Mean), harness.FormatFloat(cc.Recovery.Std)))
							}
							if surRow != nil {
								// Voted cells carry the mean evicted-edge
								// count: an eviction is the survival
								// mechanism's measured cost, so it reads
								// next to the rates it buys.
								if cc.Engine == "async-voted" {
									surRow = append(surRow, fmt.Sprintf("%s/%s ev=%s",
										harness.FormatFloat(cc.ConvergedRate), harness.FormatFloat(cc.ValidRate),
										harness.FormatFloat(cc.Evicted.Mean)))
								} else {
									surRow = append(surRow, fmt.Sprintf("%s/%s",
										harness.FormatFloat(cc.ConvergedRate), harness.FormatFloat(cc.ValidRate)))
								}
							}
						}
						byProto[p].Rows = append(byProto[p].Rows, row)
						if recRow != nil {
							recovery[p].Rows = append(recovery[p].Rows, recRow)
						}
						if surRow != nil {
							survival[p].Rows = append(survival[p].Rows, surRow)
						}
					}
				}
			}
		}
	}
	return tables
}
