package campaign

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"stoneage/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenResult runs the fixed campaign the emitter goldens are pinned
// to. Wall-clock stats are stripped: they are the one machine-dependent
// part of a result.
func goldenResult(t *testing.T) *Result {
	t.Helper()
	res, err := Run(Spec{
		Name:      "golden",
		Protocols: []string{"mis", "matching"},
		Families:  []Family{{Kind: "gnp"}, {Kind: "smallworld", Param: Param(0.2)}, {Kind: "cycle"}},
		Sizes:     []int{16, 32},
		Trials:    5,
		Seed:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.StripWall()
	return res
}

// TestGoldenEmitters pins the byte-exact JSON and CSV encodings of a
// fixed campaign: stable cell ordering (spec order), stable field
// order, and deterministic aggregates. Regenerate with
// `go test ./internal/campaign -run Golden -update`.
func TestGoldenEmitters(t *testing.T) {
	res := goldenResult(t)
	emitters := []struct {
		name string
		emit func(*Result, *bytes.Buffer) error
	}{
		{"result.json", func(r *Result, b *bytes.Buffer) error { return r.WriteJSON(b) }},
		{"result.csv", func(r *Result, b *bytes.Buffer) error { return r.WriteCSV(b) }},
	}
	for _, em := range emitters {
		t.Run(em.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := em.emit(res, &buf); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", em.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s drifted (regenerate with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s",
					golden, buf.Bytes(), want)
			}
		})
	}
}

// TestTablesShape checks the terminal renderer: one table per protocol,
// families as rows, the size ladder as columns.
func TestTablesShape(t *testing.T) {
	res := goldenResult(t)
	tables := res.Tables()
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	for i, want := range []string{"mis", "matching"} {
		tab := tables[i]
		if len(tab.Rows) != 3 {
			t.Fatalf("table %d has %d rows, want 3", i, len(tab.Rows))
		}
		if len(tab.Header) != 3 { // family + two sizes
			t.Fatalf("table %d has %d header cells, want 3", i, len(tab.Header))
		}
		if tab.Rows[0][0] != "gnp" || tab.Rows[2][0] != "cycle" {
			t.Fatalf("table %d rows out of spec order: %v", i, tab.Rows)
		}
		if want != "" && !contains(tab.Title, want) {
			t.Fatalf("table %d title %q missing %q", i, tab.Title, want)
		}
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// dynamicGoldenResult is the scenario-axis counterpart of goldenResult:
// a fixed dynamic sweep whose emitter encodings are pinned byte-exactly
// (scenario column, recovery and perturbation aggregates included).
func dynamicGoldenResult(t *testing.T) *Result {
	t.Helper()
	res, err := Run(Spec{
		Name:      "golden-dynamic",
		Protocols: []string{"mis", "ssmis"},
		Families:  []Family{{Kind: "gnp"}},
		Sizes:     []int{24},
		Scenarios: []scenario.Def{
			{Kind: "none"},
			{Kind: "churn", Rate: 2, Count: 2, At: scenario.Round(4), Every: 16},
		},
		Trials:    4,
		Seed:      8,
		MaxRounds: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.StripWall()
	return res
}

// TestGoldenDynamicEmitters pins the emitter encodings of a dynamic
// sweep. Regenerate with `go test ./internal/campaign -run Golden
// -update`.
func TestGoldenDynamicEmitters(t *testing.T) {
	res := dynamicGoldenResult(t)
	emitters := []struct {
		name string
		emit func(*Result, *bytes.Buffer) error
	}{
		{"dynamic.json", func(r *Result, b *bytes.Buffer) error { return r.WriteJSON(b) }},
		{"dynamic.csv", func(r *Result, b *bytes.Buffer) error { return r.WriteCSV(b) }},
	}
	for _, em := range emitters {
		t.Run(em.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := em.emit(res, &buf); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", em.name+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s drifted (regenerate with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s",
					golden, buf.Bytes(), want)
			}
		})
	}
}

// TestDynamicTablesShape checks the renderer over a dynamic sweep: per
// protocol one rounds table plus one recovery table, rows labeled
// family @scenario, and the recovery table carrying only dynamic rows.
func TestDynamicTablesShape(t *testing.T) {
	res := dynamicGoldenResult(t)
	tables := res.Tables()
	if len(tables) != 4 { // (rounds + recovery) × two protocols
		t.Fatalf("got %d tables, want 4", len(tables))
	}
	rounds, recovery := tables[0], tables[1]
	if len(rounds.Rows) != 2 || rounds.Rows[0][0] != "gnp @none" || rounds.Rows[1][0] != "gnp @churn" {
		t.Fatalf("rounds rows: %v", rounds.Rows)
	}
	if len(recovery.Rows) != 1 || recovery.Rows[0][0] != "gnp @churn" {
		t.Fatalf("recovery rows: %v", recovery.Rows)
	}
	if !contains(recovery.Title, "recovery") {
		t.Fatalf("recovery table title %q", recovery.Title)
	}
}
