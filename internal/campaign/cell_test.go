package campaign

import (
	"context"
	"reflect"
	"sort"
	"strings"
	"testing"

	"stoneage/internal/protocol"
	"stoneage/internal/scenario"
)

// TestCanonicalCellOrder pins the ordering contract the distributed
// merge and the resume keys depend on: the cell order is derived from
// canonical cell identity (sorted coordinates), not from the order the
// spec's lists were written in — permuting a spec's lists changes
// neither the CellIDs sequence nor the order of Result.Cells.
func TestCanonicalCellOrder(t *testing.T) {
	sp := Spec{
		Protocols: []string{"mis", "color3"},
		Families:  []Family{{Kind: "tree"}, {Kind: "binary"}},
		Sizes:     []int{32, 16},
		Trials:    1,
		Seed:      2,
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	perm := sp
	perm.Protocols = []string{"color3", "mis"}
	perm.Families = []Family{{Kind: "binary"}, {Kind: "tree"}}
	perm.Sizes = []int{16, 32}

	keys := func(s Spec) []string {
		var out []string
		for _, id := range s.CellIDs() {
			out = append(out, id.Key())
		}
		return out
	}
	a, b := keys(sp), keys(perm)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cell order depends on spec-list order:\n%v\n%v", a, b)
	}
	if !sort.StringsAreSorted([]string{a[0][:strings.Index(a[0], "|")], a[len(a)-1][:strings.Index(a[len(a)-1], "|")]}) {
		t.Fatalf("protocols out of canonical order: %v", a)
	}
	// The explicit expected sequence: protocol-major (sorted), family
	// kind next (binary < tree), size innermost ascending.
	want := []struct {
		proto, kind string
		size        int
	}{
		{"color3", "binary", 16}, {"color3", "binary", 32},
		{"color3", "tree", 16}, {"color3", "tree", 32},
		{"mis", "binary", 16}, {"mis", "binary", 32},
		{"mis", "tree", 16}, {"mis", "tree", 32},
	}
	ids := sp.CellIDs()
	if len(ids) != len(want) {
		t.Fatalf("got %d cells, want %d", len(ids), len(want))
	}
	for i, w := range want {
		id := ids[i]
		if id.Protocol != w.proto || id.Family.Kind != w.kind || id.Size != w.size {
			t.Fatalf("cell %d = %s/%s/n=%d, want %s/%s/n=%d",
				i, id.Protocol, id.Family.Kind, id.Size, w.proto, w.kind, w.size)
		}
	}
	// Result.Cells must follow the same sequence.
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		c := res.Cells[i]
		if c.Protocol != w.proto || c.Size != w.size {
			t.Fatalf("result cell %d = %s/%s/n=%d, want %s/%s/n=%d",
				i, c.Protocol, c.Family, c.Size, w.proto, w.kind, w.size)
		}
	}
}

// TestRunCellMatchesRun is the sharding soundness property: running
// every cell individually through RunCell (the worker-process path)
// and merging by canonical key reproduces the in-process Run result
// bit-identically, wall-clock stats aside.
func TestRunCellMatchesRun(t *testing.T) {
	sp := Spec{
		Name:      "runcell",
		Protocols: []string{"mis", "ssmis"},
		Families:  []Family{{Kind: "gnp"}, {Kind: "cycle"}},
		Sizes:     []int{16, 32},
		Scenarios: []scenario.Def{{Kind: "none"}, {Kind: "churn", Rate: 2, Count: 2, At: scenario.Round(4), Every: 16}},
		Trials:    3,
		Seed:      21,
		MaxRounds: 1 << 14,
	}
	base, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	base.StripWall()

	cells := map[string]CellResult{}
	scratch := protocol.NewScratch()
	for _, id := range sp.CellIDs() {
		cr, err := RunCell(sp, id, scratch)
		if err != nil {
			t.Fatalf("cell %s: %v", id.Key(), err)
		}
		cells[id.Key()] = cr
	}
	got, err := Merge(sp, cells)
	if err != nil {
		t.Fatal(err)
	}
	got.StripWall()
	if !reflect.DeepEqual(got.Cells, base.Cells) {
		t.Fatalf("per-cell execution + merge diverged from Run:\n%+v\n%+v", got.Cells, base.Cells)
	}
}

// TestMergeMissingCell pins the merge completeness check.
func TestMergeMissingCell(t *testing.T) {
	sp := misSpec(1)
	_, err := Merge(sp, map[string]CellResult{})
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("merge of empty cell set: %v", err)
	}
}

// TestRunCellError surfaces per-trial failures with the same cell and
// trial coordinates Run reports.
func TestRunCellError(t *testing.T) {
	sp := Spec{
		Protocols: []string{"mis"},
		Families:  []Family{{Kind: "gnp"}},
		Sizes:     []int{64},
		Trials:    2,
		Seed:      1,
		MaxRounds: 1,
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	_, err := RunCell(sp, sp.CellIDs()[0], nil)
	if err == nil || !strings.Contains(err.Error(), "mis/gnp/n=64 trial") {
		t.Fatalf("error = %v", err)
	}
}

// TestFingerprint pins what invalidates a resume checkpoint: any
// result-determining knob (seed, trials, sizes, …) changes the
// fingerprint; the display name and the worker count do not.
func TestFingerprint(t *testing.T) {
	base := misSpec(0)
	fp := base.Fingerprint()

	same := base
	same.Name = "renamed"
	same.Workers = 7
	if same.Fingerprint() != fp {
		t.Fatal("display name / worker count perturbed the fingerprint")
	}

	for name, mut := range map[string]func(*Spec){
		"seed":   func(s *Spec) { s.Seed++ },
		"trials": func(s *Spec) { s.Trials++ },
		"sizes":  func(s *Spec) { s.Sizes = s.Sizes[:len(s.Sizes)-1] },
		"maxR":   func(s *Spec) { s.MaxRounds = 99 },
	} {
		sp := misSpec(0)
		mut(&sp)
		if sp.Fingerprint() == fp {
			t.Fatalf("%s change left the fingerprint unchanged", name)
		}
	}
}

// TestRunContextCanceled pins the graceful-shutdown contract: a
// canceled campaign returns an interrupted error, never a partial
// result.
func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, misSpec(2))
	if res != nil || err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("res=%v err=%v, want nil + interrupted", res, err)
	}
}
