package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"stoneage/internal/channel"
	"stoneage/internal/protocol"
	"stoneage/internal/scenario"
)

// CellID is the canonical identity of one campaign cell: the full
// coordinate tuple (protocol, effective engine, scenario, channel,
// family, size) that determines every seed derivation and therefore
// every deterministic aggregate of the cell. It is the unit the
// distributed dispatcher (internal/dispatch) claims, spills and merges
// by, so its Key must be stable across processes and spec rewrites
// that only permute lists.
type CellID struct {
	Protocol string
	// Engine is the effective engine of the cell (sync, sync-packed,
	// async, async-tolerant or async-voted) — always resolved, even when the spec
	// selects a single implicit engine and the CellResult label stays
	// empty.
	Engine   string
	Scenario scenario.Def
	Channel  channel.Def
	Family   Family
	Size     int
}

// Key renders the identity canonically: display labels do not
// participate (they change names, not data), scenario and channel defs
// collapse to their content keys, and the family parameter resolves to
// its effective value. Two cells of any two specs agree on Key exactly
// when they would produce identical deterministic aggregates under the
// same spec-level knobs (seed, trials, budgets, graphPerTrial).
func (c CellID) Key() string {
	return fmt.Sprintf("%s|%s|%s|%s|%s|%s|%d",
		c.Protocol, c.Engine, c.Scenario.Key(), c.Channel.Key(),
		c.Family.Kind, strconv.FormatFloat(c.Family.param(), 'g', -1, 64), c.Size)
}

// less orders two identities canonically: protocol, engine, scenario
// key, channel key, family kind, family parameter, size. The order is
// total over any valid spec's cell set (Validate rejects duplicate
// coordinates), so sorting by it is deterministic and independent of
// the spec's list order.
func (c CellID) less(o CellID) bool {
	if c.Protocol != o.Protocol {
		return c.Protocol < o.Protocol
	}
	if c.Engine != o.Engine {
		return c.Engine < o.Engine
	}
	if a, b := c.Scenario.Key(), o.Scenario.Key(); a != b {
		return a < b
	}
	if a, b := c.Channel.Key(), o.Channel.Key(); a != b {
		return a < b
	}
	if c.Family.Kind != o.Family.Kind {
		return c.Family.Kind < o.Family.Kind
	}
	if a, b := c.Family.param(), o.Family.param(); a != b {
		return a < b
	}
	return c.Size < o.Size
}

// CellIDs enumerates the spec's cell set in canonical order — sorted
// by CellID.less, independent of the order the spec's lists were
// written in. Result.Cells, the dispatch work queue, the resume
// checkpoint keys and the emitters all follow this order; permuting a
// spec's protocol/family/size lists therefore changes neither the
// merged bytes nor any resume key. The spec is assumed to have passed
// Validate.
func (sp *Spec) CellIDs() []CellID {
	engs := sp.engineAxis()
	scns := sp.scenarioAxis()
	chans := sp.channelAxis()
	ids := make([]CellID, 0, len(sp.Protocols)*len(engs)*len(scns)*len(chans)*len(sp.Families)*len(sp.Sizes))
	for _, p := range sp.Protocols {
		for _, eng := range engs {
			for _, s := range scns {
				for _, ch := range chans {
					for _, f := range sp.Families {
						for _, n := range sp.Sizes {
							ids = append(ids, CellID{Protocol: p, Engine: eng, Scenario: s, Channel: ch, Family: f, Size: n})
						}
					}
				}
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].less(ids[j]) })
	return ids
}

// Fingerprint canonicalizes the result-determining part of the spec:
// everything except the display name and the worker-pool size (both
// change no aggregate). The dispatcher stamps work directories with it
// so spill files from a different sweep can never be merged as this
// one's checkpoint.
func (sp Spec) Fingerprint() string {
	c := sp
	c.Name, c.Workers = "", 0
	b, err := json.Marshal(c)
	if err != nil {
		// Spec is plain data — this cannot fail for a validated spec.
		panic(fmt.Sprintf("campaign: fingerprinting spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// RunCell executes one cell of the spec — all Trials trials, in trial
// order on the calling goroutine — and aggregates it exactly as Run
// does, so a cell run in a worker process is bit-identical (wall-clock
// stats aside) to the same cell of an in-process sweep. scratch may be
// nil; passing one reuses it across cells the way the in-process
// worker pool does.
func RunCell(sp Spec, id CellID, scratch *protocol.Scratch) (CellResult, error) {
	return RunCellContext(context.Background(), sp, id, scratch)
}

// RunCellContext is RunCell with cancellation: the context is checked
// between trials, so a canceled worker stops at the next trial
// boundary with nothing half-aggregated.
func RunCellContext(ctx context.Context, sp Spec, id CellID, scratch *protocol.Scratch) (CellResult, error) {
	d, err := protocol.Lookup(id.Protocol)
	if err != nil {
		return CellResult{}, fmt.Errorf("campaign: %w", err)
	}
	c := &cell{desc: d, eng: id.Engine, scn: id.Scenario, ch: id.Channel, family: id.Family, size: id.Size}
	if scratch == nil {
		scratch = protocol.NewScratch()
	}
	samples := make([]sample, sp.Trials)
	for trial := 0; trial < sp.Trials; trial++ {
		if err := ctx.Err(); err != nil {
			return CellResult{}, fmt.Errorf("campaign: interrupted: %w", err)
		}
		s := runTrial(&sp, c, trial, scratch)
		if s.err != nil {
			return CellResult{}, fmt.Errorf("campaign: %s trial %d: %w", c.describe(&sp), trial, s.err)
		}
		samples[trial] = s
	}
	return sp.aggregateCell(c, samples), nil
}

// Merge assembles a Result from per-cell results keyed by canonical
// cell identity — the deterministic merge the distributed dispatcher
// performs over worker spill files. Every cell of the spec must be
// present; cells follow canonical order, so the merged emitter bytes
// are identical to a single-process Run of the same spec (wall-clock
// stats aside) at any shard count.
func Merge(sp Spec, cells map[string]CellResult) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	ids := sp.CellIDs()
	res := newResult(sp)
	for _, id := range ids {
		cr, ok := cells[id.Key()]
		if !ok {
			return nil, fmt.Errorf("campaign: merge: cell %q missing (have %d of %d)", id.Key(), len(cells), len(ids))
		}
		res.Cells = append(res.Cells, cr)
	}
	return res, nil
}

// Lookup returns the cell with the given protocol, family display name
// and size, or nil. It resolves the most common consumer pattern —
// single-axis sweeps addressed by their human coordinates — without
// depending on the canonical cell order.
func (r *Result) Lookup(protocol, family string, size int) *CellResult {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Protocol == protocol && c.Family == family && c.Size == size {
			return c
		}
	}
	return nil
}
