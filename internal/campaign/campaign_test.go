package campaign

import (
	"reflect"
	"strings"
	"testing"
)

func misSpec(workers int) Spec {
	return Spec{
		Name:      "test-mis",
		Protocols: []string{"mis"},
		Families: []Family{
			{Kind: "gnp"}, {Kind: "geometric"}, {Kind: "powerlaw"}, {Kind: "smallworld"},
		},
		Sizes:   []int{16, 32, 64},
		Trials:  8,
		Seed:    7,
		Workers: workers,
	}
}

// TestWorkerCountInvariance is the campaign acceptance property: the
// deterministic aggregates (everything but wall time) are identical at
// every worker count, because each trial's seed is a pure function of
// its coordinates and cells aggregate in spec order.
func TestWorkerCountInvariance(t *testing.T) {
	base, err := Run(misSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	base.StripWall()
	for _, workers := range []int{2, 3, 8} {
		sp := misSpec(workers)
		got, err := Run(sp)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got.StripWall()
		// Spec differs in the Workers field only; compare cells.
		if !reflect.DeepEqual(got.Cells, base.Cells) {
			t.Fatalf("workers=%d: aggregates diverged from workers=1", workers)
		}
	}
}

// TestTrialSeedIsolation pins the reproducibility contract: a trial's
// seed depends on its content coordinates, not on list positions, so
// reordering the spec's protocol/family/size lists moves cells around
// without changing any cell's aggregates.
func TestTrialSeedIsolation(t *testing.T) {
	sp := misSpec(0)
	a, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	rev := sp
	rev.Families = []Family{
		{Kind: "smallworld"}, {Kind: "powerlaw"}, {Kind: "geometric"}, {Kind: "gnp"},
	}
	rev.Sizes = []int{64, 32, 16}
	b, err := Run(rev)
	if err != nil {
		t.Fatal(err)
	}
	find := func(r *Result, family string, size int) CellResult {
		for _, c := range r.Cells {
			if c.Family == family && c.Size == size {
				c.WallMS = CellResult{}.WallMS
				return c
			}
		}
		t.Fatalf("cell %s/n=%d missing", family, size)
		return CellResult{}
	}
	for _, fam := range []string{"gnp", "geometric", "powerlaw", "smallworld"} {
		for _, n := range []int{16, 32, 64} {
			ca, cb := find(a, fam, n), find(b, fam, n)
			if !reflect.DeepEqual(ca, cb) {
				t.Fatalf("cell %s/n=%d changed under spec reordering:\n%+v\n%+v", fam, n, ca, cb)
			}
		}
	}
}

// TestTreeProtocolAndMatching covers the two non-MIS protocols end to
// end, including the per-trial validation hook.
func TestTreeProtocolAndMatching(t *testing.T) {
	res, err := Run(Spec{
		Protocols: []string{"color3"},
		Families:  []Family{{Kind: "tree"}, {Kind: "caterpillar"}, {Kind: "star"}},
		Sizes:     []int{16, 64},
		Trials:    4,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Rounds.Mean <= 0 || c.Rounds.N != 4 {
			t.Fatalf("cell %+v has empty aggregates", c)
		}
	}

	res, err = Run(Spec{
		Protocols: []string{"matching"},
		Families:  []Family{{Kind: "torus"}},
		Sizes:     []int{49},
		Trials:    3,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[0].Rounds.Mean <= 0 {
		t.Fatal("matching campaign produced no rounds")
	}
}

// TestAsyncCampaign runs a small asynchronous sweep and checks the
// units switch to the paper's normalized time measure.
func TestAsyncCampaign(t *testing.T) {
	res, err := Run(Spec{
		Protocols: []string{"mis"},
		Engine:    "async",
		Adversary: "uniform",
		Families:  []Family{{Kind: "gnp"}},
		Sizes:     []int{16},
		Trials:    3,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsUnit != "time-units" || res.TxUnit != "steps" {
		t.Fatalf("async units = (%s, %s)", res.RoundsUnit, res.TxUnit)
	}
	if res.Cells[0].Rounds.Mean <= 0 {
		t.Fatal("async campaign produced no time units")
	}
}

// TestGraphPerTrial draws a fresh instance per trial and checks the
// mode changes the aggregates of a random family but not a
// deterministic one.
func TestGraphPerTrial(t *testing.T) {
	sp := Spec{
		Protocols: []string{"mis"},
		Families:  []Family{{Kind: "gnp"}, {Kind: "cycle"}},
		Sizes:     []int{32},
		Trials:    6,
		Seed:      9,
	}
	shared, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	sp.GraphPerTrial = true
	fresh, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Graph instance 0 is the same in both modes, so trial 0 agrees;
	// later trials see different graphs, so the gnp aggregates should
	// differ (if they ever collide, the seed below needs changing —
	// astronomically unlikely).
	if shared.Cells[0].Rounds == fresh.Cells[0].Rounds &&
		shared.Cells[0].Transmissions == fresh.Cells[0].Transmissions {
		t.Fatal("graphPerTrial left gnp aggregates unchanged")
	}
	if shared.Cells[1].Rounds != fresh.Cells[1].Rounds {
		t.Fatal("graphPerTrial changed the deterministic cycle family")
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		sp   Spec
		want string
	}{
		{"no protocols", Spec{Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}, Trials: 1}, "no protocols"},
		{"unknown protocol", Spec{Protocols: []string{"routing"}, Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}, Trials: 1}, "unknown protocol"},
		{"unknown family", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "hypercube"}}, Sizes: []int{8}, Trials: 1}, "unknown graph family"},
		{"color3 on non-tree", Spec{Protocols: []string{"color3"}, Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}, Trials: 1}, "needs tree families"},
		{"matching async", Spec{Protocols: []string{"matching"}, Engine: "async", Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}, Trials: 1}, "sync engine only"},
		{"bad engine", Spec{Protocols: []string{"mis"}, Engine: "quantum", Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}, Trials: 1}, "unknown engine"},
		{"bad adversary", Spec{Protocols: []string{"mis"}, Engine: "async", Adversary: "oracle", Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}, Trials: 1}, "unknown adversary"},
		{"duplicate protocol", Spec{Protocols: []string{"mis", "mis"}, Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}, Trials: 1}, "duplicate protocol"},
		{"duplicate family", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "gnp"}, {Kind: "gnp", Param: Param(4)}}, Sizes: []int{8}, Trials: 1}, "duplicate family"},
		{"relabeled duplicate family", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "gnp"}, {Kind: "gnp", Label: "gnp-2"}}, Sizes: []int{8}, Trials: 1}, "duplicate family"},
		{"duplicate size", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "gnp"}}, Sizes: []int{8, 8}, Trials: 1}, "duplicate size"},
		{"fractional powerlaw m", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "powerlaw", Param: Param(2.5)}}, Sizes: []int{8}, Trials: 1}, "positive integer"},
		{"smallworld beta > 1", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "smallworld", Param: Param(1.5)}}, Sizes: []int{8}, Trials: 1}, "[0,1]"},
		{"negative gnp degree", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "gnp", Param: Param(-1)}}, Sizes: []int{8}, Trials: 1}, "positive"},
		{"param on parameterless kind", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "cycle", Param: Param(7)}}, Sizes: []int{8}, Trials: 1}, "takes no parameter"},
		{"no sizes", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "gnp"}}, Trials: 1}, "no sizes"},
		{"no trials", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}}, "trials"},
	}
	for _, tc := range cases {
		err := tc.sp.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestFailFast runs a sweep whose every trial exhausts its round
// budget: the campaign must surface a real engine error (with cell and
// trial coordinates), never the internal cancellation marker.
func TestFailFast(t *testing.T) {
	_, err := Run(Spec{
		Protocols: []string{"mis"},
		Families:  []Family{{Kind: "gnp"}},
		Sizes:     []int{64},
		Trials:    16,
		Seed:      1,
		MaxRounds: 1,
	})
	if err == nil {
		t.Fatal("MaxRounds=1 sweep succeeded")
	}
	if !strings.Contains(err.Error(), "mis/gnp/n=64 trial") ||
		!strings.Contains(err.Error(), "no output configuration") {
		t.Fatalf("error = %v", err)
	}
}

// TestExplicitZeroParam pins the pointer semantics of Family.Param: an
// explicit 0 (the β=0 pure small-world lattice) must not be replaced
// by the kind's default, in the build, the display name, or the seeds.
func TestExplicitZeroParam(t *testing.T) {
	zero := Family{Kind: "smallworld", Param: Param(0)}
	dflt := Family{Kind: "smallworld"}
	g, err := BuildGraph(zero, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	// β=0 is the deterministic ring lattice: every node has degree 4.
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("β=0 lattice node %d has degree %d, want 4", v, g.Degree(v))
		}
	}
	if zero.Name() != "smallworld(0)" {
		t.Fatalf("explicit-zero name = %q", zero.Name())
	}
	sp := Spec{Seed: 1}
	if sp.TrialSeed("mis", zero, 64, 0) == sp.TrialSeed("mis", dflt, 64, 0) {
		t.Fatal("β=0 trial seed collides with the default-param cell")
	}
}

func TestReadSpecRejectsUnknownFields(t *testing.T) {
	_, err := ReadSpec(strings.NewReader(`{"protocols":["mis"],"families":[{"kind":"gnp"}],"sizes":[8],"trials":1,"turbo":true}`))
	if err == nil || !strings.Contains(err.Error(), "turbo") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}
