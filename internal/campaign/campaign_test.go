package campaign

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/protocol"
	"stoneage/internal/scenario"

	// The campaign speaks only registry names; link the built-in set.
	_ "stoneage/internal/protocol/std"
)

func misSpec(workers int) Spec {
	return Spec{
		Name:      "test-mis",
		Protocols: []string{"mis"},
		Families: []Family{
			{Kind: "gnp"}, {Kind: "geometric"}, {Kind: "powerlaw"}, {Kind: "smallworld"},
		},
		Sizes:   []int{16, 32, 64},
		Trials:  8,
		Seed:    7,
		Workers: workers,
	}
}

// TestWorkerCountInvariance is the campaign acceptance property: the
// deterministic aggregates (everything but wall time) are identical at
// every worker count, because each trial's seed is a pure function of
// its coordinates and cells aggregate in spec order.
func TestWorkerCountInvariance(t *testing.T) {
	base, err := Run(misSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	base.StripWall()
	for _, workers := range []int{2, 3, 8} {
		sp := misSpec(workers)
		got, err := Run(sp)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got.StripWall()
		// Spec differs in the Workers field only; compare cells.
		if !reflect.DeepEqual(got.Cells, base.Cells) {
			t.Fatalf("workers=%d: aggregates diverged from workers=1", workers)
		}
	}
}

// TestTrialSeedIsolation pins the reproducibility contract: a trial's
// seed depends on its content coordinates, not on list positions, so
// reordering the spec's protocol/family/size lists moves cells around
// without changing any cell's aggregates.
func TestTrialSeedIsolation(t *testing.T) {
	sp := misSpec(0)
	a, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	rev := sp
	rev.Families = []Family{
		{Kind: "smallworld"}, {Kind: "powerlaw"}, {Kind: "geometric"}, {Kind: "gnp"},
	}
	rev.Sizes = []int{64, 32, 16}
	b, err := Run(rev)
	if err != nil {
		t.Fatal(err)
	}
	find := func(r *Result, family string, size int) CellResult {
		for _, c := range r.Cells {
			if c.Family == family && c.Size == size {
				c.WallMS = CellResult{}.WallMS
				return c
			}
		}
		t.Fatalf("cell %s/n=%d missing", family, size)
		return CellResult{}
	}
	for _, fam := range []string{"gnp", "geometric", "powerlaw", "smallworld"} {
		for _, n := range []int{16, 32, 64} {
			ca, cb := find(a, fam, n), find(b, fam, n)
			if !reflect.DeepEqual(ca, cb) {
				t.Fatalf("cell %s/n=%d changed under spec reordering:\n%+v\n%+v", fam, n, ca, cb)
			}
		}
	}
}

// TestTreeProtocolAndMatching covers the two non-MIS protocols end to
// end, including the per-trial validation hook.
func TestTreeProtocolAndMatching(t *testing.T) {
	res, err := Run(Spec{
		Protocols: []string{"color3"},
		Families:  []Family{{Kind: "tree"}, {Kind: "caterpillar"}, {Kind: "star"}},
		Sizes:     []int{16, 64},
		Trials:    4,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Rounds.Mean <= 0 || c.Rounds.N != 4 {
			t.Fatalf("cell %+v has empty aggregates", c)
		}
	}

	res, err = Run(Spec{
		Protocols: []string{"matching"},
		Families:  []Family{{Kind: "torus"}},
		Sizes:     []int{49},
		Trials:    3,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[0].Rounds.Mean <= 0 {
		t.Fatal("matching campaign produced no rounds")
	}
}

// TestAsyncCampaign runs a small asynchronous sweep and checks the
// units switch to the paper's normalized time measure.
func TestAsyncCampaign(t *testing.T) {
	res, err := Run(Spec{
		Protocols: []string{"mis"},
		Engine:    "async",
		Adversary: "uniform",
		Families:  []Family{{Kind: "gnp"}},
		Sizes:     []int{16},
		Trials:    3,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsUnit != "time-units" || res.TxUnit != "steps" {
		t.Fatalf("async units = (%s, %s)", res.RoundsUnit, res.TxUnit)
	}
	if res.Cells[0].Rounds.Mean <= 0 {
		t.Fatal("async campaign produced no time units")
	}
}

// TestGraphPerTrial draws a fresh instance per trial and checks the
// mode changes the aggregates of a random family but not a
// deterministic one.
func TestGraphPerTrial(t *testing.T) {
	sp := Spec{
		Protocols: []string{"mis"},
		Families:  []Family{{Kind: "gnp"}, {Kind: "cycle"}},
		Sizes:     []int{32},
		Trials:    6,
		Seed:      9,
	}
	shared, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	sp.GraphPerTrial = true
	fresh, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Graph instance 0 is the same in both modes, so trial 0 agrees;
	// later trials see different graphs, so the gnp aggregates should
	// differ (if they ever collide, the seed below needs changing —
	// astronomically unlikely). Cells are in canonical order: cycle
	// sorts before gnp.
	if shared.Cells[1].Rounds == fresh.Cells[1].Rounds &&
		shared.Cells[1].Transmissions == fresh.Cells[1].Transmissions {
		t.Fatal("graphPerTrial left gnp aggregates unchanged")
	}
	if shared.Cells[0].Rounds != fresh.Cells[0].Rounds {
		t.Fatal("graphPerTrial changed the deterministic cycle family")
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		sp   Spec
		want string
	}{
		{"no protocols", Spec{Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}, Trials: 1}, "no protocols"},
		{"unknown protocol", Spec{Protocols: []string{"routing"}, Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}, Trials: 1}, "unknown protocol"},
		{"unknown family", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "hypercube"}}, Sizes: []int{8}, Trials: 1}, "unknown graph family"},
		{"bad engine", Spec{Protocols: []string{"mis"}, Engine: "quantum", Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}, Trials: 1}, "unknown engine"},
		{"bad adversary", Spec{Protocols: []string{"mis"}, Engine: "async", Adversary: "oracle", Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}, Trials: 1}, "unknown adversary"},
		{"duplicate protocol", Spec{Protocols: []string{"mis", "mis"}, Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}, Trials: 1}, "duplicate protocol"},
		{"duplicate family", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "gnp"}, {Kind: "gnp", Param: Param(4)}}, Sizes: []int{8}, Trials: 1}, "duplicate family"},
		{"relabeled duplicate family", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "gnp"}, {Kind: "gnp", Label: "gnp-2"}}, Sizes: []int{8}, Trials: 1}, "duplicate family"},
		{"duplicate size", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "gnp"}}, Sizes: []int{8, 8}, Trials: 1}, "duplicate size"},
		{"fractional powerlaw m", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "powerlaw", Param: Param(2.5)}}, Sizes: []int{8}, Trials: 1}, "positive integer"},
		{"smallworld beta > 1", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "smallworld", Param: Param(1.5)}}, Sizes: []int{8}, Trials: 1}, "[0,1]"},
		{"negative gnp degree", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "gnp", Param: Param(-1)}}, Sizes: []int{8}, Trials: 1}, "positive"},
		{"param on parameterless kind", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "cycle", Param: Param(7)}}, Sizes: []int{8}, Trials: 1}, "takes no parameter"},
		{"no sizes", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "gnp"}}, Trials: 1}, "no sizes"},
		{"no trials", Spec{Protocols: []string{"mis"}, Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}}, "trials"},
	}
	for _, tc := range cases {
		err := tc.sp.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestSpecValidationFromRegistryCaps derives the capability-mismatch
// cases from the registry itself instead of a hardcoded protocol map:
// every tree-only protocol must be rejected on a non-tree family, every
// path-only protocol on a tree-but-not-path family, and every sync-only
// protocol on the async engine — including protocols registered after
// this test was written.
func TestSpecValidationFromRegistryCaps(t *testing.T) {
	base := func(p string) Spec {
		return Spec{Protocols: []string{p}, Families: []Family{{Kind: "gnp"}}, Sizes: []int{8}, Trials: 1}
	}
	covered := 0
	for _, d := range protocol.All() {
		if d.Caps.Has(protocol.CapNeedsTree) || d.Caps.Has(protocol.CapNeedsPath) {
			sp := base(d.Name)
			want := "needs tree families"
			if d.Caps.Has(protocol.CapNeedsPath) {
				want = "needs path families"
				sp.Families = []Family{{Kind: "star"}} // a tree, but not a path
			}
			if err := sp.Validate(); err == nil || !strings.Contains(err.Error(), want) {
				t.Errorf("%s × %s: error %v, want containing %q", d.Name, sp.Families[0].Kind, err, want)
			}
			covered++
		}
		if d.Caps.Has(protocol.CapSyncOnly) {
			sp := base(d.Name)
			sp.Engine = "async"
			sp.Families = []Family{{Kind: "path"}} // family always compatible
			if err := sp.Validate(); err == nil || !strings.Contains(err.Error(), "sync engine only") {
				t.Errorf("%s async: error %v, want sync-only rejection", d.Name, err)
			}
			covered++
		}
	}
	if covered < 5 {
		t.Fatalf("registry yielded only %d capability cases; std protocols missing?", covered)
	}
}

// registerCampaignToy registers a trivial single-round protocol once.
// It exists to prove the drop-in contract: one Register call makes a
// protocol sweepable with zero campaign edits.
var registerCampaignToy = sync.OnceValue(func() string {
	name := "toy-beacon"
	protocol.Register(&protocol.Descriptor{
		Name:    name,
		Summary: "test-only: every node outputs after one beacon round",
		Machine: func(protocol.Args) (*nfsm.RoundProtocol, error) {
			return &nfsm.RoundProtocol{
				Name:        name,
				StateNames:  []string{"start", "done"},
				LetterNames: []string{"beacon"},
				Input:       []nfsm.State{0},
				Output:      []bool{false, true},
				Initial:     0,
				B:           1,
				Transition: func(q nfsm.State, _ []nfsm.Count) []nfsm.Move {
					if q == 1 {
						return []nfsm.Move{{Next: 1, Emit: nfsm.NoLetter}}
					}
					return []nfsm.Move{{Next: 1, Emit: 0}}
				},
			}, nil
		},
		Decode: func(_ protocol.Args, states []nfsm.State) (protocol.Output, error) {
			mask := make(protocol.Mask, len(states))
			for v, q := range states {
				mask[v] = q == 1
			}
			return mask, nil
		},
		Check: func(_ protocol.Args, _ *graph.Graph, out protocol.Output) error {
			for v, done := range out.(protocol.Mask) {
				if !done {
					return fmt.Errorf("toy-beacon: node %d never finished", v)
				}
			}
			return nil
		},
		Mutate: protocol.FlipMask,
	})
	return name
})

// TestRegistryDropIn is the acceptance check for the refactor's point:
// a protocol added with a single Register call sweeps through the
// campaign — spec validation, cell binding, execution and output
// checking — without any campaign edits.
func TestRegistryDropIn(t *testing.T) {
	name := registerCampaignToy()
	res, err := Run(Spec{
		Protocols: []string{name, "mis"},
		Families:  []Family{{Kind: "gnp"}, {Kind: "cycle"}},
		Sizes:     []int{16},
		Trials:    3,
		Seed:      13,
		Engine:    "async", // the toy is engine-hosted, so async works too
	})
	if err != nil {
		t.Fatal(err)
	}
	// Canonical cell order: mis sorts before toy-beacon, cycle before
	// gnp within each protocol block.
	if len(res.Cells) != 4 || res.Cells[0].Protocol != "mis" || res.Cells[2].Protocol != name {
		t.Fatalf("unexpected cells: %+v", res.Cells)
	}
}

// TestSweepEveryRegisteredProtocol runs one spec naming every
// registered protocol over the path family (the one family every
// capability set accepts) — the acceptance criterion that the registry
// is the single source of protocol truth for the sweep pipeline.
func TestSweepEveryRegisteredProtocol(t *testing.T) {
	sp := Spec{
		Name:      "all-protocols",
		Protocols: protocol.Names(),
		Families:  []Family{{Kind: "path"}},
		Sizes:     []int{17},
		Trials:    2,
		Seed:      3,
	}
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(sp.Protocols) {
		t.Fatalf("%d cells for %d protocols", len(res.Cells), len(sp.Protocols))
	}
	for _, c := range res.Cells {
		if c.Rounds.N != 2 {
			t.Fatalf("cell %s has %d samples, want 2", c.Protocol, c.Rounds.N)
		}
	}
}

// TestFailFast runs a sweep whose every trial exhausts its round
// budget: the campaign must surface a real engine error (with cell and
// trial coordinates), never the internal cancellation marker.
func TestFailFast(t *testing.T) {
	_, err := Run(Spec{
		Protocols: []string{"mis"},
		Families:  []Family{{Kind: "gnp"}},
		Sizes:     []int{64},
		Trials:    16,
		Seed:      1,
		MaxRounds: 1,
	})
	if err == nil {
		t.Fatal("MaxRounds=1 sweep succeeded")
	}
	if !strings.Contains(err.Error(), "mis/gnp/n=64 trial") ||
		!strings.Contains(err.Error(), "no output configuration") {
		t.Fatalf("error = %v", err)
	}
}

// TestExplicitZeroParam pins the pointer semantics of Family.Param: an
// explicit 0 (the β=0 pure small-world lattice) must not be replaced
// by the kind's default, in the build, the display name, or the seeds.
func TestExplicitZeroParam(t *testing.T) {
	zero := Family{Kind: "smallworld", Param: Param(0)}
	dflt := Family{Kind: "smallworld"}
	g, err := BuildGraph(zero, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	// β=0 is the deterministic ring lattice: every node has degree 4.
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("β=0 lattice node %d has degree %d, want 4", v, g.Degree(v))
		}
	}
	if zero.Name() != "smallworld(0)" {
		t.Fatalf("explicit-zero name = %q", zero.Name())
	}
	sp := Spec{Seed: 1}
	if sp.TrialSeed("mis", zero, 64, 0) == sp.TrialSeed("mis", dflt, 64, 0) {
		t.Fatal("β=0 trial seed collides with the default-param cell")
	}
}

// scenarioSpec is the dynamic-axis fixture: mis (restart-based
// recovery) and ssmis (self-stabilizing, no reset) against the static
// baseline, a crash wave and Poisson churn.
func scenarioSpec(workers int) Spec {
	return Spec{
		Name:      "test-dynamic",
		Protocols: []string{"mis", "ssmis"},
		Families:  []Family{{Kind: "gnp"}},
		Sizes:     []int{24, 48},
		Scenarios: []scenario.Def{
			{Kind: "none"},
			{Kind: "crash", Frac: 0.3, At: scenario.Round(4), Every: 8},
			{Kind: "churn", Rate: 2, Count: 3, At: scenario.Round(4), Every: 24},
		},
		Trials:    6,
		Seed:      17,
		MaxRounds: 1 << 14,
		Workers:   workers,
	}
}

// TestScenarioAxis runs the dynamic cross product end to end: cells
// carry their scenario name, dynamic cells report recovery and
// perturbation aggregates (validated per trial against the final
// graph), and the static axis stays bit-identical to a spec without a
// scenarios field at all.
func TestScenarioAxis(t *testing.T) {
	res, err := Run(scenarioSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	// 2 protocols × 3 scenarios × 1 family × 2 sizes.
	if len(res.Cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(res.Cells))
	}
	static := scenarioSpec(0)
	static.Scenarios = nil
	base, err := Run(static)
	if err != nil {
		t.Fatal(err)
	}
	bi := 0
	for _, c := range res.Cells {
		if c.Scenario == "" {
			// Static cells: bit-identical to the scenario-free sweep.
			b := base.Cells[bi]
			bi++
			if c.Rounds != b.Rounds || c.Transmissions != b.Transmissions {
				t.Fatalf("static cell %s/%s/n=%d diverges from the scenario-free sweep", c.Protocol, c.Family, c.Size)
			}
			if c.Recovery.N != 0 || c.Perturbations.N != 0 {
				t.Fatalf("static cell %s/n=%d reports recovery stats", c.Protocol, c.Size)
			}
			continue
		}
		if c.Recovery.N != 6 || c.Recovery.Mean <= 0 {
			t.Fatalf("dynamic cell %s@%s/n=%d recovery = %+v", c.Protocol, c.Scenario, c.Size, c.Recovery)
		}
		if c.Perturbations.Mean <= 0 {
			t.Fatalf("dynamic cell %s@%s/n=%d has no perturbations", c.Protocol, c.Scenario, c.Size)
		}
	}
	if bi != len(base.Cells) {
		t.Fatalf("matched %d static cells, want %d", bi, len(base.Cells))
	}
}

// TestScenarioWorkerInvariance extends the campaign's acceptance
// property to the dynamic axis: content-derived scenario seeds keep the
// aggregates bit-identical at every worker count.
func TestScenarioWorkerInvariance(t *testing.T) {
	base, err := Run(scenarioSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	base.StripWall()
	for _, workers := range []int{3, 8} {
		got, err := Run(scenarioSpec(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got.StripWall()
		if !reflect.DeepEqual(got.Cells, base.Cells) {
			t.Fatalf("workers=%d: dynamic aggregates diverged from workers=1", workers)
		}
	}
}

// TestScenarioSpecValidation covers the dynamic-axis rejection cases.
func TestScenarioSpecValidation(t *testing.T) {
	base := func(p string, defs ...scenario.Def) Spec {
		return Spec{
			Protocols: []string{p}, Families: []Family{{Kind: "gnp"}},
			Sizes: []int{8}, Trials: 1, Scenarios: defs,
		}
	}
	cases := []struct {
		name string
		sp   Spec
		want string
	}{
		{"bespoke engine", base("matching", scenario.Def{Kind: "crash"}), "bespoke engine"},
		{"unknown kind", base("mis", scenario.Def{Kind: "meteor"}), "unknown kind"},
		{"bad frac", base("mis", scenario.Def{Kind: "crash", Frac: 2}), "frac"},
		{"bad reset", base("mis", scenario.Def{Kind: "churn", Reset: "later"}), "reset policy"},
		{"duplicate scenario", base("mis", scenario.Def{Kind: "crash"}, scenario.Def{Kind: "crash", Label: "again"}), "duplicate scenario"},
	}
	tree := base("color3", scenario.Def{Kind: "churn"})
	tree.Families = []Family{{Kind: "tree"}}
	cases = append(cases, struct {
		name string
		sp   Spec
		want string
	}{"tree protocol under churn", tree, "churns the topology"})
	for _, tc := range cases {
		err := tc.sp.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want containing %q", tc.name, err, tc.want)
		}
	}
	// Liveness-only scenarios are fine for shape-constrained protocols.
	ok := base("color3", scenario.Def{Kind: "crash"})
	ok.Families = []Family{{Kind: "tree"}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("crash scenario on a tree protocol rejected: %v", err)
	}
}

func TestReadSpecRejectsUnknownFields(t *testing.T) {
	_, err := ReadSpec(strings.NewReader(`{"protocols":["mis"],"families":[{"kind":"gnp"}],"sizes":[8],"trials":1,"turbo":true}`))
	if err == nil || !strings.Contains(err.Error(), "turbo") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}
