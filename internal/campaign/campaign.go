package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stoneage/internal/coloring"
	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/harness"
	"stoneage/internal/matching"
	"stoneage/internal/mis"
)

// CellResult aggregates the Trials runs of one
// (protocol, family, size) cell.
type CellResult struct {
	Protocol string `json:"protocol"`
	Family   string `json:"family"`
	Size     int    `json:"size"`
	// N, M, MaxDeg describe the (first) graph instance of the cell.
	N      int `json:"n"`
	M      int `json:"m"`
	MaxDeg int `json:"maxDeg"`
	Trials int `json:"trials"`
	// Rounds aggregates the per-trial cost in the engine's own measure:
	// synchronous rounds, or normalized time units under async (see
	// Result.RoundsUnit).
	Rounds harness.Stats `json:"rounds"`
	// Transmissions aggregates sent letters (sync) or node steps
	// (async; see Result.TxUnit). The matching protocol's bespoke
	// engine does not count transmissions, so its cells report zeros
	// here — unmeasured, not free.
	Transmissions harness.Stats `json:"transmissions"`
	// WallMS aggregates per-trial wall-clock milliseconds. Unlike the
	// other aggregates it depends on the machine and the worker count.
	WallMS harness.Stats `json:"wallMS"`
}

// Result is a completed campaign. Cells appear in the deterministic
// spec order (protocol-major, then family, then size), independent of
// the worker schedule.
type Result struct {
	Spec       Spec         `json:"spec"`
	RoundsUnit string       `json:"roundsUnit"` // "rounds" | "time-units"
	TxUnit     string       `json:"txUnit"`     // "transmissions" | "steps"
	Cells      []CellResult `json:"cells"`
}

// errCanceled marks trials skipped after another trial already failed;
// aggregation reports only real errors.
var errCanceled = fmt.Errorf("campaign: canceled after earlier failure")

// sample is one trial's measurements, plus the descriptive shape of the
// graph it ran on (so aggregation never has to regenerate a graph).
type sample struct {
	rounds float64
	tx     float64
	wallMS float64
	n, m   int
	maxDeg int
	err    error
}

// cell is the runtime state of one spec cell: its coordinates plus the
// lazily built shared graph and bound program (shared-graph mode only).
type cell struct {
	protocol string
	family   Family
	size     int

	once sync.Once
	g    *graph.Graph
	prog *engine.Program // sync mis/color3 on the shared graph
	err  error
}

// Run executes the campaign: every (protocol, family, size, trial)
// tuple is an independent job fanned out over Spec.Workers goroutines.
// Per-protocol machine code is compiled once and rebound per graph;
// with shared graphs (the default) the bind too happens once per cell
// and all trials run the same immutable engine.Program concurrently.
// Every trial's output is validated (MIS maximality, proper coloring,
// maximal matching) before it counts.
func Run(sp Spec) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}

	// Graph-independent machine code, shared by every trial of a sync
	// protocol (matching is not engine-hosted and compiles nothing;
	// async trials compile per trial — see runAsyncTrial).
	codes := map[string]*engine.MachineCode{}
	if sp.engine() == "sync" {
		for _, p := range sp.Protocols {
			switch p {
			case "mis":
				codes[p] = engine.CompileMachine(mis.Protocol())
			case "color3":
				codes[p] = engine.CompileMachine(coloring.Protocol())
			}
		}
	}

	cells := make([]*cell, 0, len(sp.Protocols)*len(sp.Families)*len(sp.Sizes))
	for _, p := range sp.Protocols {
		for _, f := range sp.Families {
			for _, n := range sp.Sizes {
				cells = append(cells, &cell{protocol: p, family: f, size: n})
			}
		}
	}

	workers := sp.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs := len(cells) * sp.Trials
	if workers > jobs {
		workers = jobs
	}

	samples := make([][]sample, len(cells))
	for i := range samples {
		samples[i] = make([]sample, sp.Trials)
	}

	// A failing trial flips the flag; workers skip the remaining jobs
	// (marking them canceled) so a doomed sweep fails fast instead of
	// burning the full grid. The failing worker's sample write
	// happens-before the flag store, so the real error is always
	// visible to the aggregation pass.
	var failed atomic.Bool
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				cell, trial := j/sp.Trials, j%sp.Trials
				if failed.Load() {
					samples[cell][trial] = sample{err: errCanceled}
					continue
				}
				s := runTrial(&sp, codes, cells[cell], trial)
				samples[cell][trial] = s
				if s.err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for j := 0; j < jobs; j++ {
		next <- j
	}
	close(next)
	wg.Wait()

	// Report the first real failure in deterministic (spec) order.
	for i, c := range cells {
		for trial, s := range samples[i] {
			if s.err != nil && s.err != errCanceled {
				return nil, fmt.Errorf("campaign: %s/%s/n=%d trial %d: %w",
					c.protocol, c.family.Name(), c.size, trial, s.err)
			}
		}
	}
	if failed.Load() {
		return nil, errCanceled // unreachable: a real error always precedes it
	}

	res := &Result{Spec: sp, RoundsUnit: "rounds", TxUnit: "transmissions"}
	if sp.engine() == "async" {
		res.RoundsUnit, res.TxUnit = "time-units", "steps"
	}
	for i, c := range cells {
		rounds := make([]float64, 0, sp.Trials)
		tx := make([]float64, 0, sp.Trials)
		wall := make([]float64, 0, sp.Trials)
		for _, s := range samples[i] {
			rounds = append(rounds, s.rounds)
			tx = append(tx, s.tx)
			wall = append(wall, s.wallMS)
		}
		// The cell's descriptive shape is graph instance 0's — under
		// shared graphs the instance every trial ran on.
		first := samples[i][0]
		res.Cells = append(res.Cells, CellResult{
			Protocol:      c.protocol,
			Family:        c.family.Name(),
			Size:          c.size,
			N:             first.n,
			M:             first.m,
			MaxDeg:        first.maxDeg,
			Trials:        sp.Trials,
			Rounds:        harness.Summarize(rounds),
			Transmissions: harness.Summarize(tx),
			WallMS:        harness.Summarize(wall),
		})
	}
	return res, nil
}

// prepare lazily builds the cell's shared graph and, for engine-hosted
// sync protocols, binds the compiled machine code to it. Safe for
// concurrent callers; the first one pays the cost.
func (c *cell) prepare(sp *Spec, codes map[string]*engine.MachineCode) error {
	c.once.Do(func() {
		g, err := BuildGraph(c.family, c.size, sp.GraphSeed(c.family, c.size, 0))
		if err != nil {
			c.err = err
			return
		}
		c.g = g
		if code := codes[c.protocol]; code != nil && sp.engine() == "sync" {
			c.prog = code.Bind(g)
		}
	})
	return c.err
}

// runTrial executes one trial and validates its output.
func runTrial(sp *Spec, codes map[string]*engine.MachineCode, c *cell, trial int) sample {
	var (
		g    *graph.Graph
		prog *engine.Program
	)
	if sp.GraphPerTrial {
		var err error
		g, err = BuildGraph(c.family, c.size, sp.GraphSeed(c.family, c.size, trial))
		if err != nil {
			return sample{err: err}
		}
		if code := codes[c.protocol]; code != nil && sp.engine() == "sync" {
			prog = code.Bind(g)
		}
	} else {
		if err := c.prepare(sp, codes); err != nil {
			return sample{err: err}
		}
		g, prog = c.g, c.prog
	}

	seed := sp.TrialSeed(c.protocol, c.family, c.size, trial)
	start := time.Now()
	var s sample
	if sp.engine() == "async" {
		s = runAsyncTrial(sp, c.protocol, g, seed)
	} else {
		s = runSyncTrial(sp, c.protocol, g, prog, seed)
	}
	s.wallMS = float64(time.Since(start)) / float64(time.Millisecond)
	s.n, s.m, s.maxDeg = g.N(), g.M(), g.MaxDegree()
	return s
}

func runSyncTrial(sp *Spec, protocol string, g *graph.Graph, prog *engine.Program, seed uint64) sample {
	switch protocol {
	case "mis":
		res, err := prog.RunSync(engine.SyncConfig{Seed: seed, MaxRounds: sp.MaxRounds, Workers: 1})
		if err != nil {
			return sample{err: err}
		}
		inSet, err := mis.Extract(res.States)
		if err == nil {
			err = g.IsMaximalIndependentSet(inSet)
		}
		if err != nil {
			return sample{err: err}
		}
		return sample{rounds: float64(res.Rounds), tx: float64(res.Transmissions)}
	case "color3":
		res, err := prog.RunSync(engine.SyncConfig{Seed: seed, MaxRounds: sp.MaxRounds, Workers: 1})
		if err != nil {
			return sample{err: err}
		}
		colors, err := coloring.Extract(res.States)
		if err == nil {
			err = g.IsProperColoring(colors, 3)
		}
		if err != nil {
			return sample{err: err}
		}
		return sample{rounds: float64(res.Rounds), tx: float64(res.Transmissions)}
	case "matching":
		res, err := matching.Solve(g, seed, sp.MaxRounds)
		if err != nil {
			return sample{err: err}
		}
		if err := g.IsMaximalMatching(res.Mate); err != nil {
			return sample{err: err}
		}
		return sample{rounds: float64(res.Rounds)}
	}
	return sample{err: fmt.Errorf("campaign: unknown protocol %q", protocol)}
}

// runAsyncTrial compiles the protocol through the Theorem 3.1/3.4
// synchronizer *per trial* (inside SolveAsync), deliberately not
// sharing a compiled machine across trials: synchro machines intern
// their state sets lazily during execution, so a shared machine's
// state numbering would depend on how the worker schedule interleaves
// trials — per-trial compilation keeps every trial a pure function of
// its seed.
func runAsyncTrial(sp *Spec, protocol string, g *graph.Graph, seed uint64) sample {
	// The adversary's coins must be oblivious to the protocol's, so its
	// seed is a distinct derivation of the trial seed.
	adv := engine.NamedAdversaries(seed ^ saltAdversary)[sp.adversary()]
	switch protocol {
	case "mis":
		res, err := mis.SolveAsync(g, seed, adv, sp.MaxSteps)
		if err != nil {
			return sample{err: err}
		}
		if err := g.IsMaximalIndependentSet(res.InSet); err != nil {
			return sample{err: err}
		}
		return sample{rounds: res.TimeUnits, tx: float64(res.Steps)}
	case "color3":
		res, err := coloring.SolveAsync(g, seed, adv, sp.MaxSteps)
		if err != nil {
			return sample{err: err}
		}
		if err := g.IsProperColoring(res.Colors, 3); err != nil {
			return sample{err: err}
		}
		return sample{rounds: res.TimeUnits, tx: float64(res.Steps)}
	}
	return sample{err: fmt.Errorf("campaign: unknown protocol %q", protocol)}
}
