package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stoneage/internal/channel"
	"stoneage/internal/engine"
	"stoneage/internal/harness"
	"stoneage/internal/protocol"
	"stoneage/internal/scenario"
)

// CellResult aggregates the Trials runs of one
// (protocol, engine, scenario, channel, family, size) cell.
type CellResult struct {
	Protocol string `json:"protocol"`
	// Engine names the cell's execution engine (sync, sync-packed,
	// async, async-tolerant or async-voted); empty when the spec runs a
	// single implicit engine, so pre-axis results are unchanged.
	Engine string `json:"engine,omitempty"`
	// Scenario names the cell's dynamic-network scenario; empty for the
	// static axis.
	Scenario string `json:"scenario,omitempty"`
	// Channel names the cell's unreliable-channel definition; empty for
	// the reliable axis.
	Channel string `json:"channel,omitempty"`
	Family  string `json:"family"`
	Size    int    `json:"size"`
	// N, M, MaxDeg describe the (first) graph instance of the cell.
	N      int `json:"n"`
	M      int `json:"m"`
	MaxDeg int `json:"maxDeg"`
	Trials int `json:"trials"`
	// Rounds aggregates the per-trial cost in the engine's own measure:
	// synchronous rounds, or normalized time units under async (see
	// Result.RoundsUnit).
	Rounds harness.Stats `json:"rounds"`
	// Transmissions aggregates sent letters (sync) or node steps
	// (async; see Result.TxUnit). Bespoke engines (matching, the
	// baselines) do not count transmissions, so their cells report
	// zeros here — unmeasured, not free.
	Transmissions harness.Stats `json:"transmissions"`
	// Recovery aggregates the per-trial recovery-time metric of dynamic
	// cells: rounds (sync) or time units (async) from the last
	// perturbation to the final valid output configuration. All zero
	// for static cells.
	Recovery harness.Stats `json:"recovery"`
	// Perturbations aggregates the number of mutation batches each
	// trial's scenario applied. All zero for static cells.
	Perturbations harness.Stats `json:"perturbations"`
	// WallMS aggregates per-trial wall-clock milliseconds. Unlike the
	// other aggregates it depends on the machine and the worker count.
	WallMS harness.Stats `json:"wallMS"`

	// ConvergedRate and ValidRate are the robustness measurements of a
	// channel cell: the fraction of trials that reached an output
	// configuration within the step/round budget, and the fraction
	// whose output passed the protocol's validator (on the
	// honest-induced subgraph when Byzantine nodes are present). A
	// pathological channel never hard-fails a cell — degradation is
	// recorded here instead. Both are 1 on the reliable axis, where any
	// failure aborts the campaign as before. The cost and channel
	// aggregates below summarize converged trials only.
	ConvergedRate float64 `json:"convergedRate"`
	ValidRate     float64 `json:"validRate"`
	// Dropped/Duplicated/Delayed/Reordered/Corrupted aggregate the
	// per-trial channel-model event counts (all zero on the reliable
	// axis). Delayed counts attempted reorders (copies assigned extra
	// delay); Reordered counts the attempts that materialized as
	// overtakes — under the self-pacing α-synchronizer the former can
	// be large while the latter stays 0.
	Dropped    harness.Stats `json:"dropped,omitzero"`
	Duplicated harness.Stats `json:"duplicated,omitzero"`
	Delayed    harness.Stats `json:"delayed,omitzero"`
	Reordered  harness.Stats `json:"reordered,omitzero"`
	Corrupted  harness.Stats `json:"corrupted,omitzero"`
	// Outvoted aggregates corrupted receipts the voted synchronizer's
	// vote refused to commit (zero except on async-voted channel cells).
	Outvoted harness.Stats `json:"outvoted,omitzero"`
	// Evicted aggregates the per-trial count of edges the voted
	// synchronizer evicted for persistent silence. Unlike the channel
	// aggregates it can be non-zero on the reliable axis too (a crashed
	// neighbor stalls its edges the same way a Byzantine-silent one
	// does), so it is summarized on every async-voted cell.
	Evicted harness.Stats `json:"evicted,omitzero"`
}

// Result is a completed campaign. Cells appear in canonical cell
// order (CellID.less: protocol, engine, scenario, channel, family,
// size — sorted coordinates, not spec-list positions), independent of
// the worker schedule, the shard count and the order the spec's lists
// were written in.
type Result struct {
	Spec       Spec         `json:"spec"`
	RoundsUnit string       `json:"roundsUnit"` // "rounds" | "time-units"
	TxUnit     string       `json:"txUnit"`     // "transmissions" | "steps"
	Cells      []CellResult `json:"cells"`
}

// errCanceled marks trials skipped after another trial already failed;
// aggregation reports only real errors.
var errCanceled = fmt.Errorf("campaign: canceled after earlier failure")

// sample is one trial's measurements, plus the descriptive shape of the
// graph it ran on (so aggregation never has to regenerate a graph).
// converged and valid are 1/0 indicators; cost measurements of a
// non-converged trial are meaningless and excluded from aggregation.
type sample struct {
	rounds    float64
	tx        float64
	recovery  float64
	perturb   float64
	wallMS    float64
	converged float64
	valid     float64
	dropped   float64
	dup       float64
	delayed   float64
	reordered float64
	corrupted float64
	outvoted  float64
	evicted   float64
	n, m      int
	maxDeg    int
	err       error
}

// cell is the runtime state of one spec cell: its coordinates, the
// registry descriptor, and the lazily bound shared protocol program
// (shared-graph mode only; a protocol.Bound pairs the graph with the
// descriptor's cached machine code bound to its CSR layout).
type cell struct {
	desc   *protocol.Descriptor
	eng    string
	scn    scenario.Def
	ch     channel.Def
	family Family
	size   int

	once  sync.Once
	bound *protocol.Bound
	err   error
}

// Run executes the campaign: every (protocol, scenario, family, size,
// trial) tuple is an independent job fanned out over Spec.Workers
// goroutines.
// Protocol behavior is resolved entirely through the registry: machine
// code is compiled once per protocol in the descriptor's cache, bound
// once per cell to the shared graph (all trials run the same immutable
// program concurrently), and every trial's output is validated by the
// descriptor's Check before it counts.
func Run(sp Spec) (*Result, error) {
	return RunContext(context.Background(), sp)
}

// RunContext is Run with cancellation: when the context is canceled,
// workers stop claiming jobs at the next trial boundary and the
// campaign returns an "interrupted" error instead of a partial result
// (a killed sweep must never emit half-aggregated cells).
func RunContext(ctx context.Context, sp Spec) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}

	ids := sp.CellIDs()
	cells := make([]*cell, len(ids))
	for i, id := range ids {
		d, err := protocol.Lookup(id.Protocol) // Validate already vouched for it
		if err != nil {
			return nil, err
		}
		cells[i] = &cell{desc: d, eng: id.Engine, scn: id.Scenario, ch: id.Channel, family: id.Family, size: id.Size}
	}

	workers := sp.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs := len(cells) * sp.Trials
	if workers > jobs {
		workers = jobs
	}

	samples := make([][]sample, len(cells))
	for i := range samples {
		samples[i] = make([]sample, sp.Trials)
	}

	// A failing trial flips the flag; workers skip the remaining jobs
	// (marking them canceled) so a doomed sweep fails fast instead of
	// burning the full grid. The failing worker's sample write
	// happens-before the flag store, so the real error is always
	// visible to the aggregation pass.
	//
	// Jobs are claimed off an atomic counter (no producer goroutine, no
	// channel handoff per trial), and each worker owns one scratch
	// arena reused across every trial it runs — with the shared
	// immutable per-cell programs, a worker's steady state allocates
	// almost nothing, which is what lets trial fan-out scale with cores
	// instead of serializing on the allocator and GC.
	var failed atomic.Bool
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := protocol.NewScratch()
			for {
				j := int(next.Add(1)) - 1
				if j >= jobs {
					return
				}
				cell, trial := j/sp.Trials, j%sp.Trials
				if failed.Load() || ctx.Err() != nil {
					samples[cell][trial] = sample{err: errCanceled}
					continue
				}
				s := runTrial(&sp, cells[cell], trial, scratch)
				samples[cell][trial] = s
				if s.err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()

	// Report the first real failure in canonical cell order.
	for i, c := range cells {
		for trial, s := range samples[i] {
			if s.err != nil && s.err != errCanceled {
				return nil, fmt.Errorf("campaign: %s trial %d: %w", c.describe(&sp), trial, s.err)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("campaign: interrupted: %w", err)
	}
	if failed.Load() {
		return nil, errCanceled // unreachable: a real error always precedes it
	}

	res := newResult(sp)
	for i, c := range cells {
		res.Cells = append(res.Cells, sp.aggregateCell(c, samples[i]))
	}
	return res, nil
}

// describe renders the cell's coordinates the way campaign errors name
// them.
func (c *cell) describe(sp *Spec) string {
	where := fmt.Sprintf("%s/%s/n=%d", c.desc.Name, c.family.Name(), c.size)
	if !c.scn.None() {
		where = fmt.Sprintf("%s/%s@%s/n=%d", c.desc.Name, c.family.Name(), c.scn.Name(), c.size)
	}
	if !c.ch.None() {
		where = fmt.Sprintf("%s ch=%s", where, c.ch.Name())
	}
	if len(sp.Engines) > 0 {
		where = fmt.Sprintf("%s eng=%s", where, c.eng)
	}
	return where
}

// newResult builds the empty result shell: the spec plus the campaign
// units. Units describe the whole campaign when every engine agrees; a
// mixed-engine sweep labels them per-cell via CellResult.Engine.
func newResult(sp Spec) *Result {
	anySync, anyAsync := false, false
	for _, eng := range sp.engineAxis() {
		if eng == "sync" || eng == "sync-packed" {
			anySync = true
		} else {
			anyAsync = true
		}
	}
	res := &Result{Spec: sp, RoundsUnit: "rounds", TxUnit: "transmissions"}
	switch {
	case anySync && anyAsync:
		res.RoundsUnit, res.TxUnit = "mixed", "mixed"
	case anyAsync:
		res.RoundsUnit, res.TxUnit = "time-units", "steps"
	}
	return res
}

// aggregateCell folds one cell's trial samples into its CellResult.
// The fold is a pure function of the samples (which are pure functions
// of content-derived seeds), so a cell aggregated in a worker process
// is bit-identical to the same cell of an in-process sweep.
func (sp *Spec) aggregateCell(c *cell, samples []sample) CellResult {
	rounds := make([]float64, 0, sp.Trials)
	tx := make([]float64, 0, sp.Trials)
	recovery := make([]float64, 0, sp.Trials)
	perturb := make([]float64, 0, sp.Trials)
	wall := make([]float64, 0, sp.Trials)
	var dropped, dup, delayed, reordered, corrupted, outvoted []float64
	var evicted []float64
	conv, valid := 0.0, 0.0
	for _, s := range samples {
		conv += s.converged
		valid += s.valid
		wall = append(wall, s.wallMS)
		if s.converged == 0 {
			continue // cost of a non-converged trial is meaningless
		}
		rounds = append(rounds, s.rounds)
		tx = append(tx, s.tx)
		recovery = append(recovery, s.recovery)
		perturb = append(perturb, s.perturb)
		if c.eng == "async-voted" {
			evicted = append(evicted, s.evicted)
		}
		if !c.ch.None() {
			dropped = append(dropped, s.dropped)
			dup = append(dup, s.dup)
			delayed = append(delayed, s.delayed)
			reordered = append(reordered, s.reordered)
			corrupted = append(corrupted, s.corrupted)
			outvoted = append(outvoted, s.outvoted)
		}
	}
	// The cell's descriptive shape is graph instance 0's — under
	// shared graphs the instance every trial ran on.
	first := samples[0]
	cr := CellResult{
		Protocol:      c.desc.Name,
		Family:        c.family.Name(),
		Size:          c.size,
		N:             first.n,
		M:             first.m,
		MaxDeg:        first.maxDeg,
		Trials:        sp.Trials,
		Rounds:        harness.Summarize(rounds),
		Transmissions: harness.Summarize(tx),
		WallMS:        harness.Summarize(wall),
		ConvergedRate: conv / float64(sp.Trials),
		ValidRate:     valid / float64(sp.Trials),
	}
	if len(sp.Engines) > 0 {
		cr.Engine = c.eng
	}
	if !c.scn.None() {
		cr.Scenario = c.scn.Name()
		cr.Recovery = harness.Summarize(recovery)
		cr.Perturbations = harness.Summarize(perturb)
	}
	if !c.ch.None() {
		cr.Channel = c.ch.Name()
		cr.Dropped = harness.Summarize(dropped)
		cr.Duplicated = harness.Summarize(dup)
		cr.Delayed = harness.Summarize(delayed)
		cr.Reordered = harness.Summarize(reordered)
		cr.Corrupted = harness.Summarize(corrupted)
		cr.Outvoted = harness.Summarize(outvoted)
	}
	if c.eng == "async-voted" {
		cr.Evicted = harness.Summarize(evicted)
	}
	return cr
}

// prepare lazily binds the cell's protocol to its shared graph. Safe
// for concurrent callers; the first one pays the cost.
func (c *cell) prepare(sp *Spec) (*protocol.Bound, error) {
	c.once.Do(func() {
		g, err := BuildGraph(c.family, c.size, sp.GraphSeed(c.family, c.size, 0))
		if err != nil {
			c.err = err
			return
		}
		c.bound, c.err = c.desc.Bind(g, nil)
	})
	return c.bound, c.err
}

// runTrial executes one trial through the registry's shared runner and
// validates its output with the descriptor's Check. scratch is the
// calling worker's reusable arena.
func runTrial(sp *Spec, c *cell, trial int, scratch *protocol.Scratch) sample {
	var (
		bound *protocol.Bound
		err   error
	)
	if sp.GraphPerTrial {
		g, gerr := BuildGraph(c.family, c.size, sp.GraphSeed(c.family, c.size, trial))
		if gerr != nil {
			return sample{err: gerr}
		}
		bound, err = c.desc.Bind(g, nil)
	} else {
		bound, err = c.prepare(sp)
	}
	if err != nil {
		return sample{err: err}
	}

	// A dynamic cell generates its own scenario instance per trial from
	// the content-derived scenario seed, against the trial's graph (the
	// churn generator needs the edge set to produce valid flips).
	var sc *scenario.Scenario
	if !c.scn.None() {
		sc, err = c.scn.Generate(bound.Graph(), sp.ScenarioSeed(c.scn, c.family, c.size, trial))
		if err != nil {
			return sample{err: err}
		}
	}

	// A channel cell derives its wire model and Byzantine node draw from
	// the content-derived channel seed. Byzantine nodes ride the
	// scenario (per-trial instances, so the mutation is private); a
	// byz-only cell synthesizes one with the protocol-resolved reset.
	var model channel.Model
	if !c.ch.None() {
		chSeed := sp.ChannelSeed(c.ch, c.family, c.size, trial)
		model = c.ch.Model(chSeed)
		if byz := c.ch.Byzantine(bound.Graph().N(), chSeed); len(byz) > 0 {
			if sc == nil {
				sc = &scenario.Scenario{Reset: scenario.ResetAuto}
			}
			sc.Byzantine = byz
		}
	}

	seed := sp.TrialSeed(c.desc.Name, c.family, c.size, trial)
	start := time.Now()
	var (
		run *protocol.Run
	)
	syncCell := c.eng == "sync" || c.eng == "sync-packed"
	if !syncCell {
		// The adversary's coins must be oblivious to the protocol's, so
		// its seed is a distinct derivation of the trial seed. The
		// synchronizer machine (α, or αβ for async-tolerant cells) is
		// compiled once in the registry cache — one slot per variant —
		// and shared by every trial; which trial interns a compiled
		// state first depends on the worker schedule, but the numbering
		// is invisible post-decode, so aggregates stay bit-identical at
		// every worker count (TestWorkerCountInvariance and
		// TestScenarioWorkerInvariance pin this).
		synchro := ""
		switch c.eng {
		case "async-tolerant":
			synchro = protocol.SynchroTolerant
		case "async-voted":
			synchro = protocol.SynchroVoted
		}
		adv := engine.NamedAdversaries(seed ^ saltAdversary)[sp.adversary()]
		run, err = bound.RunAsyncReusing(protocol.AsyncConfig{
			Seed: seed, Adversary: adv, MaxSteps: sp.MaxSteps, Scenario: sc,
			Channel: model, Synchro: synchro,
		}, scratch)
	} else {
		// A sync-packed cell forces the bit-plane backend (never auto:
		// the axis exists to pin the two executors against each other).
		backend := ""
		if c.eng == "sync-packed" {
			backend = engine.BackendPacked
		}
		run, err = bound.RunSyncReusing(protocol.SyncConfig{
			Seed: seed, MaxRounds: sp.MaxRounds, Workers: 1, Scenario: sc,
			Channel: model, Backend: backend,
		}, scratch)
	}
	s := sample{wallMS: float64(time.Since(start)) / float64(time.Millisecond)}
	g := bound.Graph()
	s.n, s.m, s.maxDeg = g.N(), g.M(), g.MaxDegree()
	if err != nil {
		// A pathological channel is expected to starve some protocols of
		// convergence — that is the robustness measurement, not a sweep
		// failure. Anything else (and any reliable-axis error) aborts.
		if !c.ch.None() && errors.Is(err, engine.ErrNoConvergence) {
			return s
		}
		return sample{err: err}
	}
	s.converged = 1
	// Dynamic runs are validated against the graph the run ended on
	// (the post-mutation topology), static runs against the bound
	// graph; Byzantine nodes are excluded either way.
	if cerr := bound.CheckRun(run); cerr != nil {
		if c.ch.None() {
			return sample{err: cerr}
		}
	} else {
		s.valid = 1
	}
	if !syncCell {
		s.rounds, s.tx = run.TimeUnits, float64(run.Steps)
	} else {
		s.rounds, s.tx = float64(run.Rounds), float64(run.Transmissions)
	}
	s.recovery, s.perturb = run.Recovery, float64(run.Perturbations())
	s.dropped, s.dup = float64(run.Dropped), float64(run.Duplicated)
	s.delayed = float64(run.Delayed)
	s.reordered, s.corrupted = float64(run.Reordered), float64(run.Corrupted)
	s.outvoted = float64(run.Outvoted)
	s.evicted = float64(len(run.EvictedEdges))
	return s
}
