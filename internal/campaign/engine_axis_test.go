package campaign

// The engine-axis suite: execution engines as a campaign dimension.
// The axis exists to measure the loss-tolerant αβ-hybrid synchronizer
// against the plain α compilation under identical per-trial randomness
// (the engine never enters seed derivation), so the acceptance
// properties are: single-engine specs stay bit-identical to the
// pre-axis campaign, a multi-engine sweep labels every cell, and the
// tolerant engine actually closes the async robustness gap the α rows
// expose under loss.

import (
	"reflect"
	"strings"
	"testing"

	"stoneage/internal/channel"
	"stoneage/internal/scenario"
)

func engineAxisSpec(workers int) Spec {
	return Spec{
		Name:      "test-engines",
		Protocols: []string{"mis"},
		Engines:   []string{"async", "async-tolerant"},
		Families:  []Family{{Kind: "gnp"}},
		Sizes:     []int{24},
		Channels: []channel.Def{
			{},
			{Drop: 0.1, Label: "drop-10"},
		},
		Trials:   4,
		Seed:     31,
		MaxSteps: 1 << 19,
		Workers:  workers,
	}
}

// TestEngineAxis is the campaign-level robustness-gap measurement: the
// α synchronizer deadlocks under 10% loss (mutual pause-stall — every
// node waits for a letter the channel ate) while the αβ hybrid
// re-pulses through it, on otherwise identical trials.
func TestEngineAxis(t *testing.T) {
	res, err := Run(engineAxisSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(res.Cells))
	}
	rates := map[string]float64{}
	for _, c := range res.Cells {
		if c.Engine == "" {
			t.Fatalf("multi-engine cell %s ch=%q has no engine label", c.Protocol, c.Channel)
		}
		key := c.Engine + "/" + c.Channel
		rates[key] = c.ConvergedRate
		if c.Channel == "" && (c.ConvergedRate != 1 || c.ValidRate != 1) {
			t.Fatalf("reliable %s cell rates (%g, %g), want (1, 1)", c.Engine, c.ConvergedRate, c.ValidRate)
		}
	}
	if r := rates["async-tolerant/drop-10"]; r != 1 {
		t.Fatalf("αβ hybrid converged rate %g under 10%% loss, want 1", r)
	}
	if r := rates["async/drop-10"]; r >= rates["async-tolerant/drop-10"] {
		t.Fatalf("α converged rate %g under loss not below the hybrid's %g — the gap the axis measures is gone",
			r, rates["async-tolerant/drop-10"])
	}
	// The hybrid's loss tolerance is not free: on the reliable baseline
	// its re-pulse timers never fire but its phase structure is the
	// same, so time-unit cost must be in the same regime — the overhead
	// bench pins the exact ratio; here we only require both measured.
	for _, c := range res.Cells {
		if c.Channel == "" && c.Rounds.Mean <= 0 {
			t.Fatalf("reliable %s cell has no time-unit measurement", c.Engine)
		}
	}
	if res.RoundsUnit != "time-units" || res.TxUnit != "steps" {
		t.Fatalf("all-async axis units = (%s, %s), want (time-units, steps)", res.RoundsUnit, res.TxUnit)
	}
}

// TestEngineAxisSingleMatchesImplicit pins the implicit-axis contract:
// engines:["sync"] must aggregate bit-identically to the pre-axis
// engine:"sync" spec — same seeds, same cells — differing only in the
// per-cell engine label.
func TestEngineAxisSingleMatchesImplicit(t *testing.T) {
	explicit := engineAxisSpec(1)
	explicit.Engines = []string{"sync"}
	explicit.MaxSteps = 0
	explicit.MaxRounds = 1 << 13
	implicit := explicit
	implicit.Engines = nil
	implicit.Engine = "sync"

	a, err := Run(explicit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(implicit)
	if err != nil {
		t.Fatal(err)
	}
	a.StripWall()
	b.StripWall()
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts diverge: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ac, bc := a.Cells[i], b.Cells[i]
		if ac.Engine != "sync" || bc.Engine != "" {
			t.Fatalf("engine labels = (%q, %q), want (sync, empty)", ac.Engine, bc.Engine)
		}
		ac.Engine, bc.Engine = "", ""
		if !reflect.DeepEqual(ac, bc) {
			t.Fatalf("cell %d diverges between explicit and implicit single-engine specs", i)
		}
	}
}

// TestEngineAxisSyncPacked pins the bit-plane backend as an engine-axis
// value: a ["sync", "sync-packed"] sweep must produce pairwise
// bit-identical aggregates (the packed executor is the same machine on
// a different layout), sync units, and distinct cell labels.
func TestEngineAxisSyncPacked(t *testing.T) {
	sp := Spec{
		Name:      "test-sync-packed",
		Protocols: []string{"mis", "ssmis"},
		Engines:   []string{"sync", "sync-packed"},
		Families:  []Family{{Kind: "gnp"}, {Kind: "cycle"}},
		Sizes:     []int{48},
		Trials:    3,
		Seed:      17,
		MaxRounds: 1 << 13,
	}
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsUnit != "rounds" || res.TxUnit != "transmissions" {
		t.Fatalf("all-sync axis units = (%s, %s), want (rounds, transmissions)", res.RoundsUnit, res.TxUnit)
	}
	res.StripWall()
	byEngine := map[string][]CellResult{}
	for _, c := range res.Cells {
		key := c.Engine
		if key != "sync" && key != "sync-packed" {
			t.Fatalf("unexpected engine label %q", key)
		}
		c.Engine = ""
		byEngine[key] = append(byEngine[key], c)
	}
	if len(byEngine["sync"]) == 0 || len(byEngine["sync"]) != len(byEngine["sync-packed"]) {
		t.Fatalf("cell counts diverge: %d sync vs %d sync-packed",
			len(byEngine["sync"]), len(byEngine["sync-packed"]))
	}
	if !reflect.DeepEqual(byEngine["sync"], byEngine["sync-packed"]) {
		t.Fatal("sync and sync-packed aggregates diverge — the backends are not bit-identical")
	}
}

// votedAxisSpec pits the αβ hybrid against the voted αβv tier on the
// two hostile cells the voted tier exists for: letter corruption
// (outvoted) and Byzantine silence (evicted).
func votedAxisSpec(workers int) Spec {
	return Spec{
		Name:      "test-voted",
		Protocols: []string{"mis"},
		Engines:   []string{"async-tolerant", "async-voted"},
		Families:  []Family{{Kind: "gnp"}},
		Sizes:     []int{24},
		Channels: []channel.Def{
			{},
			{Corrupt: 0.05, Label: "corrupt-5"},
			{Byz: []channel.ByzDef{{Behavior: channel.BehaviorSilent, Frac: 0.1}}, Label: "byz-silent"},
		},
		Trials:   4,
		Seed:     41,
		MaxSteps: 1 << 19,
		Workers:  workers,
	}
}

// TestEngineAxisVoted is the campaign-level measurement of the voted
// tier's claims: corrupted receipts are outvoted and Byzantine-silent
// edges are evicted on cells where the αβ hybrid mis-decodes or
// stalls, while the reliable baseline stays at the hybrid's exact
// time-unit cost with zero evictions.
func TestEngineAxisVoted(t *testing.T) {
	res, err := Run(votedAxisSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(res.Cells))
	}
	cells := map[string]CellResult{}
	for _, c := range res.Cells {
		cells[c.Engine+"/"+c.Channel] = c
		// The hybrid has no vote and no eviction clock: its Outvoted
		// column (summarized on every channel cell) must read zero, and
		// its Evicted column must be absent entirely.
		if c.Engine == "async-tolerant" && (c.Outvoted.Mean != 0 || c.Evicted.N != 0) {
			t.Fatalf("hybrid cell ch=%q carries voted aggregates: outvoted %+v, evicted %+v",
				c.Channel, c.Outvoted, c.Evicted)
		}
	}
	// Reliable baseline: both tiers at unit survival, bit-identical
	// time-unit cost (the K-th burst copy lands when the single αβ copy
	// would), and nothing evicted.
	vr, tr := cells["async-voted/"], cells["async-tolerant/"]
	if vr.ConvergedRate != 1 || vr.ValidRate != 1 {
		t.Fatalf("voted reliable rates (%g, %g), want (1, 1)", vr.ConvergedRate, vr.ValidRate)
	}
	if vr.Rounds != tr.Rounds {
		t.Fatalf("voted reliable time-units %+v diverge from the hybrid's %+v", vr.Rounds, tr.Rounds)
	}
	if vr.Evicted.N == 0 || vr.Evicted.Mean != 0 {
		t.Fatalf("voted reliable Evicted = %+v, want measured zero", vr.Evicted)
	}
	// Corruption: the vote refuses the flipped letters the hybrid
	// believes.
	vc, tc := cells["async-voted/corrupt-5"], cells["async-tolerant/corrupt-5"]
	if vc.ValidRate != 1 {
		t.Fatalf("voted corrupt-5 valid rate %g, want 1", vc.ValidRate)
	}
	if tc.ValidRate >= vc.ValidRate {
		t.Fatalf("hybrid corrupt-5 valid rate %g not below the voted tier's %g — the gap the tier closes is gone",
			tc.ValidRate, vc.ValidRate)
	}
	if vc.Outvoted.Mean <= 0 {
		t.Fatalf("voted corrupt-5 Outvoted = %+v, want positive mean", vc.Outvoted)
	}
	// Byzantine silence: eviction unsticks the pausing feature the
	// hybrid deadlocks on.
	vb, tb := cells["async-voted/byz-silent"], cells["async-tolerant/byz-silent"]
	if vb.ConvergedRate != 1 || vb.ValidRate != 1 {
		t.Fatalf("voted byz-silent rates (%g, %g), want (1, 1)", vb.ConvergedRate, vb.ValidRate)
	}
	if tb.ConvergedRate >= vb.ConvergedRate {
		t.Fatalf("hybrid byz-silent converged rate %g not below the voted tier's %g",
			tb.ConvergedRate, vb.ConvergedRate)
	}
	if vb.Evicted.Mean <= 0 {
		t.Fatalf("voted byz-silent Evicted = %+v, want positive mean", vb.Evicted)
	}
}

// TestEngineAxisVotedWorkerInvariance pins the new Outvoted/Evicted
// aggregates to the axis acceptance property: identical at every
// worker count, because they derive from per-trial content seeds.
func TestEngineAxisVotedWorkerInvariance(t *testing.T) {
	base, err := Run(votedAxisSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	base.StripWall()
	for _, workers := range []int{3, 8} {
		got, err := Run(votedAxisSpec(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got.StripWall()
		if !reflect.DeepEqual(got.Cells, base.Cells) {
			t.Fatalf("workers=%d: voted aggregates diverged from workers=1", workers)
		}
	}
}

// TestEngineAxisWorkerInvariance: identical aggregates at every worker
// count, like every other axis.
func TestEngineAxisWorkerInvariance(t *testing.T) {
	base, err := Run(engineAxisSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	base.StripWall()
	got, err := Run(engineAxisSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	got.StripWall()
	if !reflect.DeepEqual(got.Cells, base.Cells) {
		t.Fatal("engine-axis aggregates diverged across worker counts")
	}
}

// TestEngineAxisValidation covers the axis's rejection cases.
func TestEngineAxisValidation(t *testing.T) {
	base := func(mut func(*Spec)) Spec {
		sp := Spec{
			Protocols: []string{"mis"}, Families: []Family{{Kind: "gnp"}},
			Sizes: []int{8}, Trials: 1,
		}
		mut(&sp)
		return sp
	}
	cases := []struct {
		name string
		sp   Spec
		want string
	}{
		{"both fields", base(func(sp *Spec) { sp.Engine = "sync"; sp.Engines = []string{"async"} }), "mutually exclusive"},
		{"unknown engine", base(func(sp *Spec) { sp.Engines = []string{"warp"} }), "unknown engine"},
		{"unknown single engine", base(func(sp *Spec) { sp.Engine = "warp" }), "unknown engine"},
		{"duplicate engine", base(func(sp *Spec) { sp.Engines = []string{"async", "async"} }), "duplicate engine"},
		{"sync-only protocol", base(func(sp *Spec) {
			sp.Protocols = []string{"matching"}
			sp.Engines = []string{"sync", "async-tolerant"}
		}), "sync engine only"},
		{"packed scenario clash", base(func(sp *Spec) {
			sp.Engines = []string{"sync", "sync-packed"}
			sp.Scenarios = []scenario.Def{{Kind: "crash"}}
		}), "static-topology only"},
		{"packed channel clash", base(func(sp *Spec) {
			sp.Engine = "sync-packed"
			sp.Channels = []channel.Def{{Drop: 0.1}}
		}), "reliable-links only"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sp.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want mention of %q", err, tc.want)
			}
		})
	}
	// The tolerant engine alone is a valid single-value axis, and
	// "async-tolerant" is accepted in the scalar Engine field too.
	ok := base(func(sp *Spec) { sp.Engines = []string{"async-tolerant"} })
	if err := ok.Validate(); err != nil {
		t.Fatalf("async-tolerant axis rejected: %v", err)
	}
	ok = base(func(sp *Spec) { sp.Engine = "async-tolerant" })
	if err := ok.Validate(); err != nil {
		t.Fatalf("scalar async-tolerant engine rejected: %v", err)
	}
	// sync-packed is valid alone, and next to "none" axis baselines.
	ok = base(func(sp *Spec) {
		sp.Engines = []string{"sync", "sync-packed"}
		sp.Scenarios = []scenario.Def{{Kind: "none"}}
		sp.Channels = []channel.Def{{}}
	})
	if err := ok.Validate(); err != nil {
		t.Fatalf("sync-packed with baseline axes rejected: %v", err)
	}
}
