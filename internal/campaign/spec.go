// Package campaign turns the repository's one-off experiment runs into
// declarative, parallel, reproducible sweeps. A Spec names a cross
// product — protocols × dynamic-network scenarios × graph families × a
// size ladder — plus a trial count and an engine; Run fans the trials
// out over a worker pool, derives every trial's seeds (protocol coins,
// graph instance, scenario schedule) deterministically from its
// coordinates (so trial i is reproducible in isolation and the
// aggregates are identical at every worker count), reuses the compiled
// engine.MachineCode across all trials of a protocol, and summarizes
// each cell into harness.Stats aggregates — including recovery-time
// stats for dynamic cells — with JSON/CSV emitters.
//
// The paper's claims are statistical — round counts are expectations
// over coins, graphs and schedules — and a campaign is the unit at
// which those expectations are measured: every table of
// cmd/experiments is a campaign, and `stonesim sweep -spec file.json`
// runs one from the command line.
package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"stoneage/internal/channel"
	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/protocol"
	"stoneage/internal/scenario"
	"stoneage/internal/xrand"
)

// Family selects one graph family of a sweep. Param is interpreted per
// kind (see familyDefs); nil (omitted in JSON) selects the kind's
// default, and an explicit value — including 0, e.g. the β=0 pure
// small-world lattice — is taken as given. Label, when set, overrides
// the display name in tables and emitted rows.
type Family struct {
	Kind  string   `json:"kind"`
	Param *float64 `json:"param,omitempty"`
	Label string   `json:"label,omitempty"`
}

// Param wraps a literal parameter value for a Family composed in Go
// (JSON specs just write the number).
func Param(v float64) *float64 { return &v }

// param resolves the family's effective parameter.
func (f Family) param() float64 {
	if f.Param != nil {
		return *f.Param
	}
	return familyDefs[f.Kind].defaultParam
}

// Name returns the family's display name.
func (f Family) Name() string {
	if f.Label != "" {
		return f.Label
	}
	def, ok := familyDefs[f.Kind]
	if ok && f.Param != nil && *f.Param != def.defaultParam {
		return fmt.Sprintf("%s(%g)", f.Kind, *f.Param)
	}
	return f.Kind
}

// familyDef describes one graph family kind: how to build an instance,
// whether every instance is a tree or a graph.Path-ordered path
// (tree-only and path-only protocol capabilities are checked against
// these flags statically in Spec.Validate), and — for parameterized
// kinds — the parameter's valid domain.
type familyDef struct {
	tree         bool
	path         bool
	defaultParam float64
	paramCheck   func(p float64) error // nil: the kind takes no parameter
	build        func(n int, param float64, src *xrand.Source) *graph.Graph
}

// validateParam checks the family's parameter against its kind's
// domain; parameterless kinds reject an explicit parameter outright (a
// stray param would silently do nothing while still perturbing seeds).
// The caller ensures the kind is known.
func (f Family) validateParam() error {
	def := familyDefs[f.Kind]
	if def.paramCheck == nil {
		if f.Param != nil {
			return fmt.Errorf("campaign: family %q takes no parameter (got %g)", f.Kind, *f.Param)
		}
		return nil
	}
	if err := def.paramCheck(f.param()); err != nil {
		return fmt.Errorf("campaign: family %q: %w", f.Kind, err)
	}
	return nil
}

func side(n int) int { return int(math.Round(math.Sqrt(float64(n)))) }

func positiveParam(what string) func(float64) error {
	return func(p float64) error {
		if p <= 0 {
			return fmt.Errorf("%s must be positive, got %g", what, p)
		}
		return nil
	}
}

var familyDefs = map[string]familyDef{
	"gnp": {defaultParam: 4, paramCheck: positiveParam("mean degree"), build: func(n int, p float64, src *xrand.Source) *graph.Graph {
		return graph.GnpConnected(n, p/float64(n), src)
	}},
	"geometric": {defaultParam: 1.5, paramCheck: positiveParam("radius multiplier"), build: func(n int, c float64, src *xrand.Source) *graph.Graph {
		return graph.RandomGeometric(n, graph.GeometricRadius(n, c), src)
	}},
	"powerlaw": {defaultParam: 3, paramCheck: func(p float64) error {
		if p < 1 || p != math.Trunc(p) {
			return fmt.Errorf("attachment count must be a positive integer, got %g", p)
		}
		return nil
	}, build: func(n int, m float64, src *xrand.Source) *graph.Graph {
		return graph.PreferentialAttachment(n, int(m), src)
	}},
	"smallworld": {defaultParam: 0.1, paramCheck: func(p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("rewiring probability must be in [0,1], got %g", p)
		}
		return nil
	}, build: func(n int, beta float64, src *xrand.Source) *graph.Graph {
		return graph.SmallWorld(n, 4, beta, src)
	}},
	"grid": {build: func(n int, _ float64, _ *xrand.Source) *graph.Graph {
		return graph.Grid(side(n), side(n))
	}},
	"torus": {build: func(n int, _ float64, _ *xrand.Source) *graph.Graph {
		return graph.Torus(side(n), side(n))
	}},
	"lattice": {build: func(n int, _ float64, _ *xrand.Source) *graph.Graph {
		return graph.ProneuralLattice(side(n), side(n))
	}},
	"cycle": {build: func(n int, _ float64, _ *xrand.Source) *graph.Graph {
		return graph.Cycle(n)
	}},
	"clique": {build: func(n int, _ float64, _ *xrand.Source) *graph.Graph {
		return graph.Clique(n)
	}},
	"tree": {tree: true, build: func(n int, _ float64, src *xrand.Source) *graph.Graph {
		return graph.RandomTree(n, src)
	}},
	"path": {tree: true, path: true, build: func(n int, _ float64, _ *xrand.Source) *graph.Graph {
		return graph.Path(n)
	}},
	"star": {tree: true, build: func(n int, _ float64, _ *xrand.Source) *graph.Graph {
		return graph.Star(n)
	}},
	"binary": {tree: true, build: func(n int, _ float64, _ *xrand.Source) *graph.Graph {
		return graph.BinaryTree(n)
	}},
	"caterpillar": {tree: true, build: func(n int, _ float64, _ *xrand.Source) *graph.Graph {
		return graph.Caterpillar(n)
	}},
	"broom": {tree: true, build: func(n int, _ float64, _ *xrand.Source) *graph.Graph {
		return graph.Broom(n)
	}},
}

// FamilyKinds returns the known family kinds, sorted.
func FamilyKinds() []string {
	out := make([]string, 0, len(familyDefs))
	for k := range familyDefs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BuildGraph constructs one instance of the family at size n from the
// given seed. Deterministic families ignore the seed; every instance is
// checked against graph.Validate before it is returned.
func BuildGraph(f Family, n int, seed uint64) (*graph.Graph, error) {
	def, ok := familyDefs[f.Kind]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown graph family %q (known: %v)", f.Kind, FamilyKinds())
	}
	if err := f.validateParam(); err != nil {
		return nil, err
	}
	g := def.build(n, f.param(), xrand.NewStream(seed, fnv(f.Kind)))
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: %s n=%d: %w", f.Name(), n, err)
	}
	return g, nil
}

// Spec is a declarative campaign: the full cross product
// Protocols × Families × Sizes, with Trials runs per cell.
type Spec struct {
	// Name labels the campaign in reports.
	Name string `json:"name,omitempty"`
	// Protocols to sweep, by registry name (see protocol.Names();
	// `stonesim protocols` lists them with capabilities and parameter
	// domains).
	Protocols []string `json:"protocols"`
	// Engine is "sync" (locally synchronous, default), "sync-packed"
	// (the same semantics on the bit-plane backend — bit-identical
	// aggregates, forced rather than auto-selected), "async" (the
	// Theorem 3.1/3.4 α-synchronizer under an adversary),
	// "async-tolerant" (the loss-tolerant αβ-hybrid synchronizer) or
	// "async-voted" (the voted tier: k-of-(2k−1) pulse decoding,
	// dead-edge eviction, adaptive re-pulse backoff).
	Engine string `json:"engine,omitempty"`
	// Engines is the execution-engine axis: each entry is one of the
	// Engine values, swept against every (protocol, scenario, channel,
	// family, size) cell. Mutually exclusive with Engine; empty means
	// the single engine Engine selects (exactly the pre-axis campaign).
	// The engine never enters seed derivation: every engine of a sweep
	// replays identical graph instances, scenario schedules and channel
	// pathology, which is what makes its rows comparable — the whole
	// point of sweeping α against αβ under loss.
	Engines []string `json:"engines,omitempty"`
	// Adversary names the async scheduling policy (default "uniform");
	// ignored by the sync engine.
	Adversary string `json:"adversary,omitempty"`
	// Families and Sizes span the topology grid.
	Families []Family `json:"families"`
	Sizes    []int    `json:"sizes"`
	// Trials is the number of runs per (protocol, family, size) cell.
	Trials int `json:"trials"`
	// Seed keys every derived per-trial seed (see TrialSeed).
	Seed uint64 `json:"seed,omitempty"`
	// MaxRounds / MaxSteps bound each trial (0 = engine defaults).
	MaxRounds int   `json:"maxRounds,omitempty"`
	MaxSteps  int64 `json:"maxSteps,omitempty"`
	// Scenarios is the dynamic-network axis: each entry is a scenario
	// generator (one-shot region crash, Poisson edge churn, staggered
	// wake-up, or the static "none" baseline) swept against every
	// (protocol, family, size) cell. Empty means one static axis —
	// exactly the pre-scenario campaign. Every trial generates its own
	// scenario instance from a content-derived seed (ScenarioSeed), so
	// aggregates stay bit-identical at any worker count. Requires
	// engine-hosted protocols; topology-churning kinds are rejected for
	// tree-only and path-only protocols (the mutations would break the
	// graph shape the protocol needs).
	Scenarios []scenario.Def `json:"scenarios,omitempty"`
	// Channels is the unreliable-channel axis: each entry is a channel
	// definition (loss, duplication, reordering, corruption rates plus
	// Byzantine node populations — see channel.Def) swept against every
	// (protocol, scenario, family, size) cell. Empty means one reliable
	// axis — exactly the pre-channel campaign. Every trial derives its
	// own channel seed (ChannelSeed) from content coordinates, so
	// aggregates stay bit-identical at any worker count. Unlike every
	// other axis, a pathological channel cell never hard-fails on
	// non-convergence or an invalid output: the cell's ConvergedRate and
	// ValidRate record how often the protocol survived, which is the
	// robustness measurement itself. Requires engine-hosted protocols.
	Channels []channel.Def `json:"channels,omitempty"`
	// GraphPerTrial draws a fresh graph instance for every trial instead
	// of sharing one instance per cell. Sharing (the default) amortizes
	// generation and the CSR bind across trials and isolates the
	// variance of the protocol's coins; per-trial graphs additionally
	// average over the family's randomness.
	GraphPerTrial bool `json:"graphPerTrial,omitempty"`
	// Workers sizes the trial worker pool (0 = GOMAXPROCS). Aggregates
	// are identical for every value.
	Workers int `json:"workers,omitempty"`
}

// Validate checks the spec's static well-formedness: protocols found in
// the registry, known engine and families; capability compatibility
// (tree-only and path-only protocols paired with tree/path families,
// sync-only protocols kept off the async engine); positive sizes and
// trials. The protocol registry is the single source of protocol truth:
// a protocol registered anywhere in the process is sweepable here with
// no campaign edits.
func (sp *Spec) Validate() error {
	if len(sp.Protocols) == 0 {
		return fmt.Errorf("campaign: spec has no protocols")
	}
	if len(sp.Engines) > 0 && sp.Engine != "" {
		return fmt.Errorf("campaign: engine and engines are mutually exclusive")
	}
	engs := sp.engineAxis()
	seenEng := map[string]bool{}
	anyAsync := false
	for _, eng := range engs {
		if eng != "sync" && eng != "sync-packed" && eng != "async" && eng != "async-tolerant" && eng != "async-voted" {
			return fmt.Errorf("campaign: unknown engine %q (want sync, sync-packed, async, async-tolerant or async-voted)", eng)
		}
		if seenEng[eng] {
			return fmt.Errorf("campaign: duplicate engine %q", eng)
		}
		seenEng[eng] = true
		anyAsync = anyAsync || (eng != "sync" && eng != "sync-packed")
	}
	if anyAsync {
		if _, ok := engine.NamedAdversaries(0)[sp.adversary()]; !ok {
			return fmt.Errorf("campaign: unknown adversary %q", sp.adversary())
		}
	}
	// The bit-plane backend runs static, reliable cells only; catch the
	// clash here rather than as a per-trial engine error mid-sweep.
	if seenEng["sync-packed"] {
		for _, d := range sp.Scenarios {
			if !d.None() {
				return fmt.Errorf("campaign: engine sync-packed cannot run scenario %q (the packed backend is static-topology only)", d.Name())
			}
		}
		for _, d := range sp.Channels {
			if !d.None() {
				return fmt.Errorf("campaign: engine sync-packed cannot run channel %q (the packed backend is reliable-links only)", d.Name())
			}
		}
	}
	seen := map[string]bool{}
	for _, p := range sp.Protocols {
		d, err := protocol.Lookup(p)
		if err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		if seen[p] {
			return fmt.Errorf("campaign: duplicate protocol %q", p)
		}
		seen[p] = true
		if d.Caps.Has(protocol.CapSyncOnly) && anyAsync {
			return fmt.Errorf("campaign: protocol %q runs on the sync engine only", p)
		}
		// The tolerance-declaration hygiene the reorder-overclaim fix
		// pinned: a protocol may only claim reorder tolerance together
		// with the window bound it was measured at, so a sweep's
		// tolerance columns always name a bounded claim.
		if d.Caps.Has(protocol.CapToleratesReorder) && d.ReorderWindow <= 0 {
			return fmt.Errorf("campaign: protocol %q declares reorder tolerance without a measured window bound", p)
		}
		// Same hygiene for the Byzantine claim: tolerance exists only at
		// a measured dead-edge eviction bound (registry validate enforces
		// this at registration; re-checked here so a descriptor built by
		// hand cannot smuggle an unbounded claim into a sweep).
		if d.Caps.Has(protocol.CapToleratesByzantine) && d.EvictionBound <= 0 {
			return fmt.Errorf("campaign: protocol %q declares byzantine tolerance without a measured eviction bound", p)
		}
		for _, f := range sp.Families {
			fd, ok := familyDefs[f.Kind]
			if !ok {
				return fmt.Errorf("campaign: unknown graph family %q (known: %v)", f.Kind, FamilyKinds())
			}
			switch {
			case d.Caps.Has(protocol.CapNeedsPath) && !fd.path:
				return fmt.Errorf("campaign: protocol %q needs path families, but %q is not one", p, f.Kind)
			case d.Caps.Has(protocol.CapNeedsTree) && !fd.tree:
				return fmt.Errorf("campaign: protocol %q needs tree families, but %q is not one", p, f.Kind)
			}
		}
		for _, s := range sp.Scenarios {
			if s.None() {
				continue
			}
			if d.Machine == nil {
				return fmt.Errorf("campaign: protocol %q cannot run scenario %q (bespoke engine, no scenario hook)", p, s.Name())
			}
			if s.Kind == "churn" && (d.Caps.Has(protocol.CapNeedsTree) || d.Caps.Has(protocol.CapNeedsPath)) {
				return fmt.Errorf("campaign: protocol %q needs a fixed graph shape, but scenario %q churns the topology", p, s.Name())
			}
		}
		for _, ch := range sp.Channels {
			if ch.None() {
				continue
			}
			if d.Machine == nil {
				return fmt.Errorf("campaign: protocol %q cannot run channel %q (bespoke engine, no channel hook)", p, ch.Name())
			}
		}
	}
	if len(sp.Families) == 0 {
		return fmt.Errorf("campaign: spec has no graph families")
	}
	// Duplicate families or sizes would run identical cells (seeds are
	// content-derived), silently double-weighting them in any
	// downstream averaging. The key deliberately excludes Label — a
	// label changes only the display name, not the data.
	seenFam := map[string]bool{}
	for _, f := range sp.Families {
		if err := f.validateParam(); err != nil {
			return err
		}
		key := fmt.Sprintf("%s/%g", f.Kind, f.param())
		if seenFam[key] {
			return fmt.Errorf("campaign: duplicate family %s", f.Name())
		}
		seenFam[key] = true
	}
	if len(sp.Sizes) == 0 {
		return fmt.Errorf("campaign: spec has no sizes")
	}
	seenSize := map[int]bool{}
	for _, n := range sp.Sizes {
		if n < 1 {
			return fmt.Errorf("campaign: non-positive size %d", n)
		}
		if seenSize[n] {
			return fmt.Errorf("campaign: duplicate size %d", n)
		}
		seenSize[n] = true
	}
	seenScn := map[string]bool{}
	for _, s := range sp.Scenarios {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		if seenScn[s.Key()] {
			return fmt.Errorf("campaign: duplicate scenario %s", s.Name())
		}
		seenScn[s.Key()] = true
	}
	seenCh := map[string]bool{}
	for _, ch := range sp.Channels {
		if err := ch.Validate(); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		if seenCh[ch.Key()] {
			return fmt.Errorf("campaign: duplicate channel %s", ch.Name())
		}
		seenCh[ch.Key()] = true
	}
	if sp.Trials < 1 {
		return fmt.Errorf("campaign: trials must be >= 1, got %d", sp.Trials)
	}
	return nil
}

// scenarioAxis returns the scenario axis of the cross product: the
// spec's scenarios, or the single static baseline when none are given
// (which reproduces the pre-scenario campaign bit for bit — the
// implicit "none" does not perturb any seed derivation).
func (sp *Spec) scenarioAxis() []scenario.Def {
	if len(sp.Scenarios) == 0 {
		return []scenario.Def{{}}
	}
	return sp.Scenarios
}

// channelAxis returns the channel axis of the cross product: the spec's
// channels, or the single reliable baseline when none are given (the
// implicit "none" does not perturb any seed derivation).
func (sp *Spec) channelAxis() []channel.Def {
	if len(sp.Channels) == 0 {
		return []channel.Def{{}}
	}
	return sp.Channels
}

func (sp *Spec) engine() string {
	if sp.Engine == "" {
		return "sync"
	}
	return sp.Engine
}

// engineAxis returns the execution-engine axis of the cross product:
// the spec's engines, or the single engine Engine selects when none are
// given. Like the other implicit axes the single-engine form does not
// perturb any seed derivation; unlike them the engine never enters
// seeds at all, so every engine of a multi-engine sweep replays the
// same per-trial randomness.
func (sp *Spec) engineAxis() []string {
	if len(sp.Engines) == 0 {
		return []string{sp.engine()}
	}
	return sp.Engines
}

func (sp *Spec) adversary() string {
	if sp.Adversary == "" {
		return "uniform"
	}
	return sp.Adversary
}

// fnv folds campaign coordinates into seed derivations without
// positional coupling (reordering the spec's lists does not change any
// trial's seed).
var fnv = xrand.FNV

const (
	saltTrial     = 0x7472_6961_6c00 // "trial"
	saltGraph     = 0x6772_6170_6800 // "graph"
	saltAdversary = 0x6164_7600      // "adv"
	saltScenario  = 0x7363_6e00      // "scn"
	saltChannel   = 0x6368_616e00    // "chan"
)

// TrialSeed derives the seed of one trial from its content coordinates:
// it depends on the spec seed, the protocol, the family (kind and
// parameter), the size and the trial index — not on the position of any
// of these in the spec's lists or on the worker schedule. A single
// trial is therefore exactly reproducible in isolation.
func (sp *Spec) TrialSeed(protocol string, f Family, size, trial int) uint64 {
	return xrand.Mix(sp.Seed, saltTrial, fnv(protocol), fnv(f.Kind),
		math.Float64bits(f.param()), uint64(size), uint64(trial))
}

// GraphSeed derives the seed of the graph instance a trial runs on. It
// is independent of the protocol, so all protocols of a sweep see the
// same topology sample. With GraphPerTrial unset every trial of a cell
// shares instance 0.
func (sp *Spec) GraphSeed(f Family, size, trial int) uint64 {
	if !sp.GraphPerTrial {
		trial = 0
	}
	return xrand.Mix(sp.Seed, saltGraph, fnv(f.Kind),
		math.Float64bits(f.param()), uint64(size), uint64(trial))
}

// ScenarioSeed derives the seed of the scenario instance one trial runs
// under. Like TrialSeed it is a pure function of content coordinates —
// the spec seed, the scenario's generator key, the family, the size and
// the trial index — so trial i's churn schedule is reproducible in
// isolation and independent of the worker schedule. It is independent
// of the protocol: every protocol of a sweep faces the same sequence of
// perturbations, which is what makes their recovery columns comparable.
func (sp *Spec) ScenarioSeed(s scenario.Def, f Family, size, trial int) uint64 {
	return xrand.Mix(sp.Seed, saltScenario, fnv(s.Key()), fnv(f.Kind),
		math.Float64bits(f.param()), uint64(size), uint64(trial))
}

// ChannelSeed derives the seed keying one trial's channel model and
// Byzantine node draw. Like ScenarioSeed it is a pure function of
// content coordinates and independent of the protocol: every protocol
// of a sweep faces identical per-trial channel pathology, which is what
// makes their survival columns comparable.
func (sp *Spec) ChannelSeed(ch channel.Def, f Family, size, trial int) uint64 {
	return xrand.Mix(sp.Seed, saltChannel, fnv(ch.Key()), fnv(f.Kind),
		math.Float64bits(f.param()), uint64(size), uint64(trial))
}

// ReadSpec decodes a Spec from JSON, rejecting unknown fields (a typo'd
// knob silently reverting to a default would invalidate a sweep).
func ReadSpec(r io.Reader) (Spec, error) {
	var sp Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return sp, fmt.Errorf("campaign: decoding spec: %w", err)
	}
	return sp, sp.Validate()
}

// LoadSpec reads a Spec from a JSON file.
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	sp, err := ReadSpec(f)
	if err != nil {
		return sp, fmt.Errorf("%s: %w", path, err)
	}
	return sp, nil
}
