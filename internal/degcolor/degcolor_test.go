package degcolor

import (
	"errors"
	"math"
	"testing"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/xrand"
)

func TestProtocolValidatesAndAudits(t *testing.T) {
	for _, d := range []int{1, 2, 4, 6} {
		p, err := Protocol(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Δ=%d: %v", d, err)
		}
	}
	p, err := Protocol(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Audit(0); err != nil {
		t.Fatal(err)
	}
	if _, err := Protocol(0); err == nil {
		t.Fatal("degree bound 0 accepted")
	}
	if _, err := Protocol(64); err == nil {
		t.Fatal("unbounded palette accepted")
	}
}

func TestSolveSyncBoundedDegreeFamilies(t *testing.T) {
	src := xrand.New(1)
	workloads := []struct {
		name   string
		g      *graph.Graph
		maxDeg int
	}{
		{"path", graph.Path(100), 2},
		{"cycle", graph.Cycle(101), 2},
		{"grid", graph.Grid(9, 9), 4},
		{"torus", graph.Torus(8, 8), 4},
		{"binary", graph.BinaryTree(127), 3},
		{"nearregular", graph.NearRegular(120, 5, src), 5},
		{"clique5", graph.Clique(5), 4},
		{"single", graph.New(1), 1},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			for seed := uint64(0); seed < 5; seed++ {
				run, err := SolveSync(w.g, w.maxDeg, seed, 0)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := w.g.IsProperColoring(run.Colors, w.maxDeg+1); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestRejectsOversizedDegree(t *testing.T) {
	if _, err := SolveSync(graph.Star(10), 4, 1, 0); !errors.Is(err, ErrDegreeTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunTimeLogarithmic(t *testing.T) {
	ratioAt := func(n int) float64 {
		g := graph.Torus(n, n)
		total := 0.0
		for seed := uint64(0); seed < 3; seed++ {
			run, err := SolveSync(g, 4, seed, 0)
			if err != nil {
				t.Fatal(err)
			}
			total += float64(run.Rounds)
		}
		return total / 3 / math.Log2(float64(n*n))
	}
	small, large := ratioAt(8), ratioAt(32)
	if large > 4*small {
		t.Fatalf("rounds/log n grew from %.2f to %.2f", small, large)
	}
}

func TestSolveAsyncUnderAdversaries(t *testing.T) {
	g := graph.Cycle(12)
	for name, adv := range engine.NamedAdversaries(3) {
		run, err := SolveAsync(g, 2, 4, adv, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.IsProperColoring(run.Colors, 3); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestExtractRejectsUncolored(t *testing.T) {
	if _, err := Extract(2, []nfsm.State{0}); err == nil {
		t.Fatal("uncolored state accepted")
	}
	colors, err := Extract(2, []nfsm.State{4}) // palette=3: state 4 = colored1
	if err != nil || colors[0] != 1 {
		t.Fatalf("Extract = %v, %v", colors, err)
	}
}
