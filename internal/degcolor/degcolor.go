// Package degcolor implements (Δ+1)-coloring of bounded-degree graphs
// under the pure nFSM model — an extension beyond the paper's Section 5.
//
// The paper's coloring section restricts itself to trees because the
// nFSM output set must be constant-size; the same constraint admits
// general graphs whenever the maximum degree Δ is a universal constant
// (requirement (M4) then holds: states, letters and the palette size
// Δ+1 are all constants independent of n). The protocol is the
// stone-age version of the classical randomized palette race:
//
//	round 1 of each phase: every uncolored node picks a color uniformly
//	   from its current free palette (colors no colored neighbor holds —
//	   readable from the persistent COLOR letters with b = 1) and
//	   transmits a PROPOSE letter for it;
//	round 2: a proposer adopts its color unless some neighbor proposed
//	   the same color; adopted colors are announced with a COLOR letter
//	   and are final.
//
// Every phase colors each remaining node with probability bounded below
// by a constant (a free color survives contention with probability
// ≥ (1−1/(Δ+1))^Δ ≥ 1/e), so the run-time is O(log n) w.h.p.
package degcolor

import (
	"errors"
	"fmt"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/protocol"
)

// ErrDegreeTooLarge is returned when the input graph exceeds the
// protocol's compiled-in degree bound.
var ErrDegreeTooLarge = errors.New("degcolor: graph degree exceeds the protocol's bound")

// MaxDegreeBound caps the universal degree constant Δ: the compiled
// δ-table enumerates (1+2(Δ+1))·2^(2(Δ+1)) rows, which stays inside the
// engine's tabulation budget up to here.
const MaxDegreeBound = 16

// Protocol builds the (Δ+1)-coloring round protocol for the universal
// degree constant maxDeg ≥ 1. The palette is {1..maxDeg+1}.
//
// State layout: 0 = picking; 1..palette = "proposed color c";
// palette+1..2·palette = colored output sinks.
// Letters: PROP_c (0..palette−1) then COLOR_c (palette..2·palette−1).
func Protocol(maxDeg int) (*nfsm.RoundProtocol, error) {
	if maxDeg < 1 || maxDeg > MaxDegreeBound {
		return nil, fmt.Errorf("degcolor: degree bound %d outside [1,%d]", maxDeg, MaxDegreeBound)
	}
	palette := maxDeg + 1
	numStates := 1 + 2*palette
	stateNames := make([]string, numStates)
	stateNames[0] = "pick"
	letterNames := make([]string, 2*palette)
	for c := 0; c < palette; c++ {
		stateNames[1+c] = fmt.Sprintf("proposed%d", c+1)
		stateNames[1+palette+c] = fmt.Sprintf("colored%d", c+1)
		letterNames[c] = fmt.Sprintf("PROP%d", c+1)
		letterNames[palette+c] = fmt.Sprintf("COLOR%d", c+1)
	}
	output := make([]bool, numStates)
	for c := 0; c < palette; c++ {
		output[1+palette+c] = true
	}
	propLetter := func(c int) nfsm.Letter { return nfsm.Letter(c) }
	colLetter := func(c int) nfsm.Letter { return nfsm.Letter(palette + c) }

	transition := func(q nfsm.State, counts []nfsm.Count) []nfsm.Move {
		switch {
		case int(q) > palette: // colored sink
			return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}}
		case q == 0: // pick a free color
			moves := make([]nfsm.Move, 0, palette)
			for c := 0; c < palette; c++ {
				if counts[colLetter(c)] == 0 {
					moves = append(moves, nfsm.Move{
						Next: nfsm.State(1 + c),
						Emit: propLetter(c),
					})
				}
			}
			if len(moves) == 0 {
				// Free palette empty: only possible when the degree
				// bound is violated; stall (Solve validates the input,
				// so this is unreachable there).
				return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}}
			}
			return moves
		default: // proposed color c
			c := int(q) - 1
			if counts[propLetter(c)] > 0 || counts[colLetter(c)] > 0 {
				// Contention (or a neighbor adopted c in the same phase
				// we proposed): retry. The COLOR check covers the race
				// where a neighbor's adoption letter lands while our
				// proposal was in flight.
				return []nfsm.Move{{Next: 0, Emit: nfsm.NoLetter}}
			}
			return []nfsm.Move{{Next: nfsm.State(1 + palette + c), Emit: colLetter(c)}}
		}
	}

	return &nfsm.RoundProtocol{
		Name:        fmt.Sprintf("degcolor%d", maxDeg),
		StateNames:  stateNames,
		LetterNames: letterNames,
		Input:       []nfsm.State{0},
		Output:      output,
		Initial:     propLetter(0), // overwritten before anyone reads it
		B:           1,
		Transition:  transition,
	}, nil
}

// Extract converts final states into colors in {1..palette}.
func Extract(maxDeg int, states []nfsm.State) ([]int, error) {
	palette := maxDeg + 1
	colors := make([]int, len(states))
	for v, q := range states {
		if int(q) <= palette {
			return nil, fmt.Errorf("degcolor: node %d ended uncolored (state %d)", v, q)
		}
		colors[v] = int(q) - palette
	}
	return colors, nil
}

// Run reports a coloring execution.
type Run struct {
	// Colors assigns each node a color in {1..maxDeg+1}.
	Colors []int
	// Rounds is the synchronous round count.
	Rounds int
}

// desc self-registers the protocol. The registry caches the compiled
// δ-table per degree bound — the tabulation enumerates
// (1+2(Δ+1))·2^(2(Δ+1)) rows, which is worth amortizing across the runs
// of an experiment sweep — keyed by the resolved "maxdeg" argument. A
// maxdeg of 0 (the default) derives the bound from the bound graph's Δ,
// which is what makes the protocol sweepable over bounded-degree graph
// families without per-family spec knobs.
var desc = protocol.Register(&protocol.Descriptor{
	Name:    "degcolor",
	Summary: "(Δ+1)-coloring of bounded-degree graphs — the palette-race extension beyond Section 5",
	// Duplication is invisible to overwrite-only ports under FIFO
	// delivery; the palette race does not survive loss or reordering.
	Caps: protocol.CapToleratesDup,
	Params: []protocol.ParamDef{{
		Name:    "maxdeg",
		Desc:    "universal degree bound Δ (0 derives Δ from the bound graph)",
		Default: 0, Min: 0, Max: MaxDegreeBound, Integer: true,
	}},
	Prepare: func(args protocol.Args, g *graph.Graph) (protocol.Args, error) {
		maxDeg := int(args["maxdeg"])
		if maxDeg == 0 {
			maxDeg = g.MaxDegree()
			if maxDeg < 1 {
				maxDeg = 1
			}
			if maxDeg > MaxDegreeBound {
				return nil, fmt.Errorf("%w: Δ=%d > %d", ErrDegreeTooLarge, g.MaxDegree(), MaxDegreeBound)
			}
			args["maxdeg"] = float64(maxDeg)
		}
		if g.MaxDegree() > maxDeg {
			return nil, fmt.Errorf("%w: Δ=%d > %d", ErrDegreeTooLarge, g.MaxDegree(), maxDeg)
		}
		return args, nil
	},
	Machine: func(args protocol.Args) (*nfsm.RoundProtocol, error) {
		return Protocol(int(args["maxdeg"]))
	},
	Decode: func(args protocol.Args, states []nfsm.State) (protocol.Output, error) {
		colors, err := Extract(int(args["maxdeg"]), states)
		if err != nil {
			return nil, err
		}
		return protocol.Colors(colors), nil
	},
	Check: func(args protocol.Args, g *graph.Graph, out protocol.Output) error {
		return g.IsProperColoring(out.(protocol.Colors), int(args["maxdeg"])+1)
	},
	Mutate: protocol.ClashColor,
})

// SolveSync colors g with maxDeg+1 colors on the compiled synchronous
// engine. The graph's maximum degree must not exceed maxDeg.
func SolveSync(g *graph.Graph, maxDeg int, seed uint64, maxRounds int) (*Run, error) {
	if maxDeg < 1 || maxDeg > MaxDegreeBound {
		return nil, fmt.Errorf("degcolor: degree bound %d outside [1,%d]", maxDeg, MaxDegreeBound)
	}
	if g.MaxDegree() > maxDeg {
		return nil, fmt.Errorf("%w: Δ=%d > %d", ErrDegreeTooLarge, g.MaxDegree(), maxDeg)
	}
	run, err := desc.SolveSync(g, protocol.Args{"maxdeg": float64(maxDeg)},
		protocol.SyncConfig{Seed: seed, MaxRounds: maxRounds})
	if err != nil {
		return nil, err
	}
	return &Run{Colors: run.Output.(protocol.Colors), Rounds: run.Rounds}, nil
}

// SolveAsync colors g asynchronously through the Theorem 3.1/3.4
// compiler.
func SolveAsync(g *graph.Graph, maxDeg int, seed uint64, adv engine.Adversary, maxSteps int64) (*Run, error) {
	if maxDeg < 1 || maxDeg > MaxDegreeBound {
		return nil, fmt.Errorf("degcolor: degree bound %d outside [1,%d]", maxDeg, MaxDegreeBound)
	}
	if g.MaxDegree() > maxDeg {
		return nil, fmt.Errorf("%w: Δ=%d > %d", ErrDegreeTooLarge, g.MaxDegree(), maxDeg)
	}
	run, err := desc.SolveAsync(g, protocol.Args{"maxdeg": float64(maxDeg)},
		protocol.AsyncConfig{Seed: seed, Adversary: adv, MaxSteps: maxSteps})
	if err != nil {
		return nil, err
	}
	return &Run{Colors: run.Output.(protocol.Colors), Rounds: 0}, nil
}
