// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used by every stochastic component of the repository.
//
// Determinism across engines is a load-bearing property: the synchronous
// engine (internal/engine), the asynchronous engine, and the rLBA sweep
// simulator of Lemma 6.1 (internal/lba) must be able to consume *identical*
// coin-toss sequences so that their executions can be compared step for
// step in tests. To that end, randomness is derived functionally from
// (seed, stream, counter) triples via splitmix64 rather than from shared
// mutable generator state.
package xrand

// splitmix64 is the finalizer of the SplitMix64 generator (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014). It is a
// bijection on 64-bit integers with excellent avalanche behaviour, which
// makes hash-derived streams statistically independent for our purposes.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FNV returns the FNV-1a hash of s. It folds string coordinates
// (protocol names, family kinds, scenario keys) into seed derivations
// without positional coupling; collision avoidance between different
// derivation families comes from the distinct salts mixed alongside
// it, not from the hash itself.
func FNV(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Mix combines an arbitrary number of 64-bit values into a single
// well-mixed 64-bit value. It is used to derive stream identifiers from
// structured coordinates such as (seed, node, step).
func Mix(vs ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3) // pi fractional bits, arbitrary non-zero
	for _, v := range vs {
		h = splitmix64(h ^ v)
	}
	return h
}

// MixWord extends a Mix fold by one value: MixWord(Mix(a, b), c) ==
// Mix(a, b, c). Hot loops that vary only the last coordinate hoist the
// prefix fold and pay a single splitmix64 round per iteration.
func MixWord(h, v uint64) uint64 {
	return splitmix64(h ^ v)
}

// Source is a deterministic PRNG stream. The zero value is a valid stream
// (seeded with 0); use New or NewStream for explicit seeding.
type Source struct {
	state uint64
}

// New returns a Source seeded with the given seed.
func New(seed uint64) *Source {
	return &Source{state: splitmix64(seed)}
}

// NewStream returns a Source whose sequence is a pure function of the given
// coordinates. Two calls with equal coordinates yield identical streams.
func NewStream(coords ...uint64) *Source {
	return &Source{state: Mix(coords...)}
}

// Uint64 returns the next 64 bits of the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Intn returns a uniformly distributed integer in [0, n). n must be > 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		// A zero-sized choice is a programming error in the caller; keep
		// the failure loud in tests but avoid a panic chain in production
		// paths by clamping to the only defensible value.
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded rejection sampling.
	un := uint64(n)
	v := s.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			v = s.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo1 := t & mask32
	hi1 := t >> 32
	lo1 += a0 * b1
	hi = a1*b1 + hi1 + lo1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin toss.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Geometric returns a sample from the geometric distribution with success
// probability 1/2: the number of fair-coin tosses up to and including the
// first head. The support is {1, 2, 3, ...}. This is the distribution of the
// UP-phase lengths in the paper's MIS tournaments (Section 4).
func (s *Source) Geometric() int {
	n := 1
	for !s.Bool() {
		n++
	}
	return n
}

// Coin is the deterministic per-(seed,node,step,draw) coin used by the
// execution engines. Engines that must agree on randomness (Lemma 6.1
// cross-check) call Coin with identical coordinates.
func Coin(seed uint64, node, step, draw int) uint64 {
	return Mix(seed, uint64(node), uint64(step), uint64(draw))
}
