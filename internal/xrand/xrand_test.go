package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewStreamDeterminism(t *testing.T) {
	a := NewStream(1, 2, 3)
	b := NewStream(1, 2, 3)
	for i := 0; i < 100; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at draw %d: %d != %d", i, got, want)
		}
	}
}

func TestNewStreamDistinctCoordinates(t *testing.T) {
	a := NewStream(1, 2, 3)
	b := NewStream(1, 2, 4)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct streams produced %d identical draws out of 64", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(42)
	for _, n := range []int{1, 2, 3, 7, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(7)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from expectation %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	s := New(11)
	const draws = 100000
	heads := 0
	for i := 0; i < draws; i++ {
		if s.Bool() {
			heads++
		}
	}
	if math.Abs(float64(heads)-draws/2) > 3*math.Sqrt(draws/4) {
		t.Fatalf("heads = %d out of %d, too far from fair", heads, draws)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(9)
	const draws = 100000
	sum := 0
	for i := 0; i < draws; i++ {
		g := s.Geometric()
		if g < 1 {
			t.Fatalf("Geometric returned %d < 1", g)
		}
		sum += g
	}
	mean := float64(sum) / draws
	// Geom(1/2) has mean 2 and variance 2.
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("geometric mean = %.3f, want ~2", mean)
	}
}

func TestCoinDeterminism(t *testing.T) {
	if Coin(1, 2, 3, 4) != Coin(1, 2, 3, 4) {
		t.Fatal("Coin is not deterministic")
	}
	if Coin(1, 2, 3, 4) == Coin(1, 2, 3, 5) {
		t.Fatal("Coin collision across draw index (astronomically unlikely)")
	}
}

func TestMixAvalancheProperty(t *testing.T) {
	// Flipping one input bit should change roughly half the output bits.
	f := func(a, b uint64, bit uint8) bool {
		h1 := Mix(a, b)
		h2 := Mix(a^(1<<(bit%64)), b)
		diff := popcount(h1 ^ h2)
		return diff >= 8 && diff <= 56
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestMul64AgainstBigShift(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via 32-bit limb arithmetic done differently.
		const mask = 1<<32 - 1
		a0, a1 := a&mask, a>>32
		b0, b1 := b&mask, b>>32
		p00 := a0 * b0
		p01 := a0 * b1
		p10 := a1 * b0
		p11 := a1 * b1
		mid := p00>>32 + p10&mask + p01&mask
		wantLo := p00&mask | mid<<32
		wantHi := p11 + p10>>32 + p01>>32 + mid>>32
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(7)
	}
}
