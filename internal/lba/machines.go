package lba

// This file defines the concrete machines used by the Lemma 6.2
// experiments. ABC decides the canonical context-sensitive language
// aⁿbⁿcⁿ — a language no finite automaton or pushdown automaton decides,
// which is what makes running it on a path of finite state machines (via
// the Lemma 6.2 compiler) the paper's computational-power showcase.
// Palindrome zigzags across the tape and stresses repeated head
// reversals; RandomWalk exercises the randomized transition relation.

// ABC symbols.
const (
	SymA Symbol = iota
	SymB
	SymC
	SymMa // marked a
	SymMb // marked b
	SymMc // marked c
)

// ABC states.
const (
	abcScan   TMState = iota // at the left region: pick the next unmarked a
	abcFindB                 // mark the matching b
	abcFindC                 // mark the matching c
	abcRewind                // return to the left end
	abcVerify                // all a's consumed: check only marked b's and c's remain
	abcAccept
	abcReject
)

// ABC returns a deterministic LBA deciding { aⁿbⁿcⁿ : n ≥ 1 } over the
// input alphabet {a, b, c}: each pass marks one a, one b and one c; the
// final pass verifies nothing unmarked remains.
func ABC() *TM {
	m := &TM{
		Name:        "abc",
		StateNames:  []string{"scan", "findB", "findC", "rewind", "verify", "accept", "reject"},
		SymbolNames: []string{"a", "b", "c", "A", "B", "C"},
		Start:       abcScan,
		Accept:      abcAccept,
		Reject:      abcReject,
	}
	reject := func(s Symbol) []TMMove { return []TMMove{{Next: abcReject, Write: s, Dir: Stay}} }
	scan := func(s Symbol, b Boundary) []TMMove {
		switch s {
		case SymMa: // skip already-marked a's
			if b.AtRight() {
				return reject(s)
			}
			return []TMMove{{Next: abcScan, Write: s, Dir: Right}}
		case SymA:
			if b.AtRight() {
				return reject(s) // an a with nothing after it
			}
			return []TMMove{{Next: abcFindB, Write: SymMa, Dir: Right}}
		case SymMb: // all a's consumed: verify the tail
			return []TMMove{{Next: abcVerify, Write: s, Dir: Stay}}
		default:
			return reject(s)
		}
	}
	m.Delta = func(q TMState, s Symbol, b Boundary) []TMMove {
		switch q {
		case abcScan:
			return scan(s, b)
		case abcFindB:
			switch s {
			case SymA, SymMb: // unmarked a's, then previously marked b's
				if b.AtRight() {
					return reject(s)
				}
				return []TMMove{{Next: abcFindB, Write: s, Dir: Right}}
			case SymB:
				if b.AtRight() {
					return reject(s) // a b with no c after it
				}
				return []TMMove{{Next: abcFindC, Write: SymMb, Dir: Right}}
			default:
				return reject(s)
			}
		case abcFindC:
			switch s {
			case SymB, SymMc:
				if b.AtRight() {
					return reject(s)
				}
				return []TMMove{{Next: abcFindC, Write: s, Dir: Right}}
			case SymC:
				return []TMMove{{Next: abcRewind, Write: SymMc, Dir: Left}}
			default:
				return reject(s)
			}
		case abcRewind:
			if b.AtLeft() {
				// Back at the left end: process this cell as abcScan.
				return scan(s, b)
			}
			return []TMMove{{Next: abcRewind, Write: s, Dir: Left}}
		case abcVerify:
			switch s {
			case SymMb, SymMc:
				if b.AtRight() {
					return []TMMove{{Next: abcAccept, Write: s, Dir: Stay}}
				}
				return []TMMove{{Next: abcVerify, Write: s, Dir: Right}}
			default:
				return reject(s)
			}
		default:
			return nil // halting states
		}
	}
	return m
}

// Palindrome symbols.
const (
	PalA Symbol = iota
	PalB
	PalX // matched-off cell
)

// Palindrome states.
const (
	palPick   TMState = iota // at the leftmost unmarked cell: remember it
	palSeekA                 // carrying a: find the rightmost unmarked cell
	palSeekB                 // carrying b
	palCheckA                // stepped back onto the rightmost unmarked cell
	palCheckB                // (X here means the carried cell was the middle)
	palRewind                // return to the left end
	palAccept
	palReject
)

// Palindrome returns a deterministic LBA deciding palindromes over
// {a, b}: mark the leftmost cell, zigzag to the rightmost unmarked cell,
// compare, repeat.
func Palindrome() *TM {
	m := &TM{
		Name:        "palindrome",
		StateNames:  []string{"pick", "seekA", "seekB", "checkA", "checkB", "rewind", "accept", "reject"},
		SymbolNames: []string{"a", "b", "X"},
		Start:       palPick,
		Accept:      palAccept,
		Reject:      palReject,
	}
	accept := func(s Symbol) []TMMove { return []TMMove{{Next: palAccept, Write: s, Dir: Stay}} }
	reject := func(s Symbol) []TMMove { return []TMMove{{Next: palReject, Write: s, Dir: Stay}} }
	pick := func(s Symbol, b Boundary) []TMMove {
		switch s {
		case PalX:
			return accept(s) // unmarked region is empty
		case PalA:
			return []TMMove{{Next: palSeekA, Write: PalX, Dir: Right}}
		default: // PalB
			return []TMMove{{Next: palSeekB, Write: PalX, Dir: Right}}
		}
	}
	check := func(q TMState, s Symbol, carried Symbol) []TMMove {
		switch s {
		case PalX:
			// We stepped back onto our own mark: the carried cell was the
			// middle of an odd palindrome.
			return accept(s)
		case carried:
			return []TMMove{{Next: palRewind, Write: PalX, Dir: Left}}
		default:
			return reject(s)
		}
	}
	seek := func(q TMState, s Symbol, b Boundary, carried Symbol, checkState TMState) []TMMove {
		switch {
		case s == PalX:
			// One past the unmarked region: step back and compare.
			return []TMMove{{Next: checkState, Write: s, Dir: Left}}
		case b.AtRight():
			// Rightmost cell and unmarked: compare in place.
			return check(checkState, s, carried)
		default:
			return []TMMove{{Next: q, Write: s, Dir: Right}}
		}
	}
	m.Delta = func(q TMState, s Symbol, b Boundary) []TMMove {
		switch q {
		case palPick:
			return pick(s, b)
		case palSeekA:
			return seek(q, s, b, PalA, palCheckA)
		case palSeekB:
			return seek(q, s, b, PalB, palCheckB)
		case palCheckA:
			return check(q, s, PalA)
		case palCheckB:
			return check(q, s, PalB)
		case palRewind:
			if s == PalX || b.AtLeft() {
				if s == PalX {
					return []TMMove{{Next: palPick, Write: s, Dir: Right}}
				}
				return pick(s, b) // left boundary, still unmarked
			}
			return []TMMove{{Next: palRewind, Write: s, Dir: Left}}
		default:
			return nil
		}
	}
	return m
}

// RandomWalk symbols and states.
const (
	WalkZero Symbol = iota
	WalkOne
)

const (
	walkStep TMState = iota
	walkAccept
	walkReject
)

// RandomWalk returns a randomized LBA over {0, 1} that performs an
// unbiased random walk and accepts upon reading a 1. On inputs containing
// a 1 it halts with probability 1; on all-zero inputs it walks forever
// (callers must bound steps). It exercises the randomized transition
// relation of the rLBA model.
func RandomWalk() *TM {
	m := &TM{
		Name:        "randomwalk",
		StateNames:  []string{"step", "accept", "reject"},
		SymbolNames: []string{"0", "1"},
		Start:       walkStep,
		Accept:      walkAccept,
		Reject:      walkReject,
	}
	m.Delta = func(q TMState, s Symbol, b Boundary) []TMMove {
		if q != walkStep {
			return nil
		}
		if s == WalkOne {
			return []TMMove{{Next: walkAccept, Write: s, Dir: Stay}}
		}
		switch {
		case b == BothEnds:
			return []TMMove{{Next: walkStep, Write: s, Dir: Stay}}
		case b.AtLeft():
			return []TMMove{{Next: walkStep, Write: s, Dir: Right}}
		case b.AtRight():
			return []TMMove{{Next: walkStep, Write: s, Dir: Left}}
		default:
			return []TMMove{
				{Next: walkStep, Write: s, Dir: Left},
				{Next: walkStep, Write: s, Dir: Right},
			}
		}
	}
	return m
}

// Majority symbols and states.
const (
	MajA Symbol = iota
	MajB
	MajX // paired-off cell
)

const (
	majFindA TMState = iota // find the leftmost unmarked a
	majFindB                // find the leftmost unmarked b
	majBackB                // rewind before searching for the b
	majBackA                // rewind before the next pass
	majAccept
	majReject
)

// Majority returns a deterministic LBA deciding strict majority over
// {a, b}: accept iff the input has more a's than b's. Each pass pairs
// off one a with one b; an unpairable a means majority, an exhausted
// supply of a's means no majority.
func Majority() *TM {
	m := &TM{
		Name:        "majority",
		StateNames:  []string{"findA", "findB", "backB", "backA", "accept", "reject"},
		SymbolNames: []string{"a", "b", "X"},
		Start:       majFindA,
		Accept:      majAccept,
		Reject:      majReject,
	}
	findA := func(s Symbol, b Boundary) []TMMove {
		switch s {
		case MajA:
			return []TMMove{{Next: majBackB, Write: MajX, Dir: Left}}
		default: // MajB or MajX: keep scanning right
			if b.AtRight() {
				// No unmarked a remains: the a's cannot outnumber the b's.
				return []TMMove{{Next: majReject, Write: s, Dir: Stay}}
			}
			return []TMMove{{Next: majFindA, Write: s, Dir: Right}}
		}
	}
	findB := func(s Symbol, b Boundary) []TMMove {
		switch s {
		case MajB:
			return []TMMove{{Next: majBackA, Write: MajX, Dir: Left}}
		default: // MajA or MajX
			if b.AtRight() {
				// An a was marked with no b to pair it: strict majority.
				return []TMMove{{Next: majAccept, Write: s, Dir: Stay}}
			}
			return []TMMove{{Next: majFindB, Write: s, Dir: Right}}
		}
	}
	m.Delta = func(q TMState, s Symbol, b Boundary) []TMMove {
		switch q {
		case majFindA:
			return findA(s, b)
		case majFindB:
			return findB(s, b)
		case majBackB:
			if b.AtLeft() {
				return findB(s, b)
			}
			return []TMMove{{Next: majBackB, Write: s, Dir: Left}}
		case majBackA:
			if b.AtLeft() {
				return findA(s, b)
			}
			return []TMMove{{Next: majBackA, Write: s, Dir: Left}}
		default:
			return nil
		}
	}
	return m
}
