package lba

import (
	"fmt"

	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
)

// This file implements Lemma 6.1: an rLBA can simulate any nFSM protocol
// on a graph of arbitrary topology. The simulator lays the graph out as
// an adjacency-list tape exactly as in the lemma's proof — per node, a
// state cell and a pending-transmission cell; per adjacency entry, a port
// cell — and executes each round as two left-to-right sweeps:
//
//	sweep 1: for every node, count the occurrences of the query letter
//	         among its port cells and apply δ, recording the next state
//	         and the transmitted letter in the node's own cells (the
//	         transmission is *not* yet applied, so later nodes in the
//	         sweep still see the old port contents);
//	sweep 2: for every port cell ψ_v(u), overwrite it with u's recorded
//	         transmission if u transmitted.
//
// The extra storage is O(1) cells per node and per edge — linear in the
// input — and the head only ever scans the tape, so the whole procedure
// is an rLBA with the protocol's finite control hard-wired.
//
// The simulator draws its coin tosses from nfsm.PickMove with the same
// (seed, node, round) coordinates as the synchronous engine, so for any
// protocol, graph and seed the two executions are identical step for
// step. The tests exploit this for an exact cross-check.

// SweepConfig parameterizes a Lemma 6.1 simulation.
type SweepConfig struct {
	// Seed keys the protocol's random choices.
	Seed uint64
	// MaxRounds aborts the simulation; zero selects 1<<20.
	MaxRounds int
	// Init optionally assigns per-node initial states.
	Init []nfsm.State
}

// SweepResult reports a Lemma 6.1 simulation.
type SweepResult struct {
	// Rounds is the number of simulated rounds.
	Rounds int
	// States is the final state of every node.
	States []nfsm.State
	// TapeCells is the size of the simulated tape: 2 cells per node plus
	// 1 cell per directed adjacency entry (the linear space bound of the
	// lemma).
	TapeCells int
	// HeadMoves counts simulated tape-head movements: every sweep visits
	// each cell a constant number of times.
	HeadMoves int64
}

// SimulateNFSM executes machine m on graph g with the two-sweep rLBA
// discipline of Lemma 6.1.
func SimulateNFSM(m nfsm.Machine, g *graph.Graph, cfg SweepConfig) (*SweepResult, error) {
	n := g.N()
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1 << 20
	}

	// Tape layout: states[v] and emits[v] are v's two node cells;
	// ports[v][i] is the port cell for the i-th adjacency entry of v.
	states := make([]nfsm.State, n)
	if cfg.Init != nil {
		if len(cfg.Init) != n {
			return nil, fmt.Errorf("lba: init vector length %d != n %d", len(cfg.Init), n)
		}
		copy(states, cfg.Init)
	} else {
		for v := range states {
			states[v] = m.InputState()
		}
	}
	emits := make([]nfsm.Letter, n)
	ports := make([][]nfsm.Letter, n)
	tapeCells := 2 * n
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		ports[v] = make([]nfsm.Letter, deg)
		for i := range ports[v] {
			ports[v][i] = m.InitialLetter()
		}
		tapeCells += deg
	}

	single, _ := m.(nfsm.SingleQuery)
	counts := make([]nfsm.Count, m.NumLetters())
	res := &SweepResult{TapeCells: tapeCells}

	outputs := 0
	for _, q := range states {
		if m.IsOutput(q) {
			outputs++
		}
	}
	if outputs == n {
		res.States = states
		return res, nil
	}

	for round := 1; round <= maxRounds; round++ {
		// Sweep 1: compute every node's move from the *current* port
		// cells; record next state and transmission without applying.
		for v := 0; v < n; v++ {
			q := states[v]
			b := m.Bound()
			if single != nil {
				ql := single.QueryLetter(q)
				c := 0
				for _, l := range ports[v] {
					if l == ql {
						c++
					}
					res.HeadMoves++
				}
				counts[ql] = nfsm.ClampCount(c, b)
			} else {
				for i := range counts {
					counts[i] = 0
				}
				for _, l := range ports[v] {
					if l >= 0 && int(counts[l]) < b {
						counts[l]++
					}
					res.HeadMoves++
				}
			}
			moves := m.Moves(q, counts)
			if len(moves) == 0 {
				return nil, fmt.Errorf("lba: δ empty at node %d state %d round %d", v, q, round)
			}
			mv := nfsm.PickMove(cfg.Seed, v, round, moves)
			if m.IsOutput(mv.Next) != m.IsOutput(q) {
				if m.IsOutput(mv.Next) {
					outputs++
				} else {
					outputs--
				}
			}
			states[v] = mv.Next
			emits[v] = mv.Emit
			res.HeadMoves += 2
		}
		// Sweep 2: deliver the recorded transmissions into the port cells.
		for v := 0; v < n; v++ {
			for i, u := range g.Neighbors(v) {
				if emits[u] != nfsm.NoLetter {
					ports[v][i] = emits[u]
				}
				res.HeadMoves++
			}
		}
		if outputs == n {
			res.Rounds = round
			res.States = states
			return res, nil
		}
	}
	return nil, fmt.Errorf("lba: no output configuration within %d rounds", maxRounds)
}
