package lba_test

import (
	"fmt"
	"log"

	"stoneage/internal/lba"
)

// ExampleRunOnPath decides a word of the context-sensitive language
// aⁿbⁿcⁿ on a path network of finite state machines (Lemma 6.2).
func ExampleRunOnPath() {
	tm := lba.ABC()
	input := []lba.Symbol{lba.SymA, lba.SymA, lba.SymB, lba.SymB, lba.SymC, lba.SymC}
	run, err := lba.RunOnPath(tm, input, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("aabbcc accepted:", run.Accepted)
	// Output: aabbcc accepted: true
}

// ExampleTM_Run executes a machine directly, without the network.
func ExampleTM_Run() {
	tm := lba.Palindrome()
	res, err := tm.Run([]lba.Symbol{lba.PalA, lba.PalB, lba.PalA}, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("aba accepted:", res.Accepted)
	// Output: aba accepted: true
}
