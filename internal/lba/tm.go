// Package lba implements the Section 6 computational-power substrate: a
// randomized linear bounded automaton (rLBA — a randomized Turing machine
// whose working tape is restricted to the cells holding the input), the
// Lemma 6.2 compiler that turns any rLBA into an nFSM protocol on a path
// network, and the Lemma 6.1 two-sweep simulator that executes any nFSM
// protocol on any graph within the rLBA's linear space discipline.
package lba

import (
	"fmt"

	"stoneage/internal/xrand"
)

// Symbol indexes the working alphabet Γ of a machine.
type Symbol int

// TMState indexes the state set P of a machine.
type TMState int

// Dir is a head movement.
type Dir int

// Head movements. An LBA head never leaves the input cells; Left at the
// leftmost cell or Right at the rightmost cell is clamped to Stay (the
// conventional end-marker behaviour).
const (
	Stay Dir = iota
	Left
	Right
)

// Boundary tells a transition where the head stands, playing the role of
// the customary ⊢ and ⊣ end markers of LBA definitions.
type Boundary int

// Boundary values.
const (
	Interior Boundary = iota
	LeftEnd
	RightEnd
	BothEnds // single-cell tape
)

// AtLeft reports whether the head cannot move further left.
func (b Boundary) AtLeft() bool { return b == LeftEnd || b == BothEnds }

// AtRight reports whether the head cannot move further right.
func (b Boundary) AtRight() bool { return b == RightEnd || b == BothEnds }

// TMMove is one option of the randomized transition relation.
type TMMove struct {
	Next  TMState
	Write Symbol
	Dir   Dir
}

// TM is a randomized linear bounded automaton. Delta must return a
// non-empty move set for every non-halting (state, symbol, boundary)
// triple; the executor picks uniformly at random among the options.
// Accept and Reject are halting states with no outgoing moves.
type TM struct {
	// Name identifies the machine.
	Name string
	// StateNames gives |P| names; SymbolNames gives |Γ| names.
	StateNames  []string
	SymbolNames []string
	// Start, Accept and Reject are distinguished states.
	Start, Accept, Reject TMState
	// Delta is the randomized transition relation.
	Delta func(q TMState, s Symbol, b Boundary) []TMMove
}

// NumStates returns |P|.
func (m *TM) NumStates() int { return len(m.StateNames) }

// NumSymbols returns |Γ|.
func (m *TM) NumSymbols() int { return len(m.SymbolNames) }

// Halting reports whether q is the accept or reject state.
func (m *TM) Halting(q TMState) bool { return q == m.Accept || q == m.Reject }

// Validate enumerates the finite transition domain and checks totality
// and range discipline.
func (m *TM) Validate() error {
	np, ns := m.NumStates(), m.NumSymbols()
	if np == 0 || ns == 0 {
		return fmt.Errorf("lba(%s): empty state set or alphabet", m.Name)
	}
	for _, q := range []TMState{m.Start, m.Accept, m.Reject} {
		if q < 0 || int(q) >= np {
			return fmt.Errorf("lba(%s): distinguished state %d out of range", m.Name, q)
		}
	}
	if m.Accept == m.Reject {
		return fmt.Errorf("lba(%s): accept and reject coincide", m.Name)
	}
	if m.Delta == nil {
		return fmt.Errorf("lba(%s): nil transition", m.Name)
	}
	for q := 0; q < np; q++ {
		for s := 0; s < ns; s++ {
			for _, b := range []Boundary{Interior, LeftEnd, RightEnd, BothEnds} {
				moves := m.Delta(TMState(q), Symbol(s), b)
				if m.Halting(TMState(q)) {
					if len(moves) != 0 {
						return fmt.Errorf("lba(%s): halting state %d has outgoing moves", m.Name, q)
					}
					continue
				}
				if len(moves) == 0 {
					return fmt.Errorf("lba(%s): no move at state %d symbol %d boundary %d", m.Name, q, s, b)
				}
				for _, mv := range moves {
					if mv.Next < 0 || int(mv.Next) >= np {
						return fmt.Errorf("lba(%s): move to out-of-range state %d", m.Name, mv.Next)
					}
					if mv.Write < 0 || int(mv.Write) >= ns {
						return fmt.Errorf("lba(%s): write of out-of-range symbol %d", m.Name, mv.Write)
					}
				}
			}
		}
	}
	return nil
}

// RunResult reports a direct rLBA execution.
type RunResult struct {
	// Accepted is the machine's verdict.
	Accepted bool
	// Steps is the number of transitions applied.
	Steps int
	// Tape is the final tape contents.
	Tape []Symbol
}

// Run executes the machine directly on the given input, drawing
// randomized choices from the deterministic (seed, step) coin. maxSteps
// of zero selects 1<<20.
func (m *TM) Run(input []Symbol, seed uint64, maxSteps int) (*RunResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := len(input)
	if n == 0 {
		return nil, fmt.Errorf("lba(%s): empty input (the tape must hold at least one cell)", m.Name)
	}
	for i, s := range input {
		if s < 0 || int(s) >= m.NumSymbols() {
			return nil, fmt.Errorf("lba(%s): input symbol %d at cell %d out of range", m.Name, s, i)
		}
	}
	if maxSteps <= 0 {
		maxSteps = 1 << 20
	}
	tape := append([]Symbol(nil), input...)
	head, q := 0, m.Start
	for step := 1; step <= maxSteps; step++ {
		if m.Halting(q) {
			return &RunResult{Accepted: q == m.Accept, Steps: step - 1, Tape: tape}, nil
		}
		b := boundaryAt(head, n)
		moves := m.Delta(q, tape[head], b)
		mv := moves[0]
		if len(moves) > 1 {
			mv = moves[int(xrand.Coin(seed, head, step, 0)%uint64(len(moves)))]
		}
		tape[head] = mv.Write
		q = mv.Next
		switch mv.Dir {
		case Left:
			if !b.AtLeft() {
				head--
			}
		case Right:
			if !b.AtRight() {
				head++
			}
		}
	}
	if m.Halting(q) {
		return &RunResult{Accepted: q == m.Accept, Steps: maxSteps, Tape: tape}, nil
	}
	return nil, fmt.Errorf("lba(%s): no halt within %d steps", m.Name, maxSteps)
}

func boundaryAt(head, n int) Boundary {
	switch {
	case n == 1:
		return BothEnds
	case head == 0:
		return LeftEnd
	case head == n-1:
		return RightEnd
	default:
		return Interior
	}
}
