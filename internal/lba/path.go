package lba

import (
	"fmt"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
)

// This file implements Lemma 6.2: an rLBA can be simulated by an nFSM
// protocol on a path. Node i of the path embodies tape cell i; its state
// records the cell's symbol, whether the head is here or on which side it
// is, and (when here) the machine state. Head movements are hand-off
// letters (dir, p) transmitted to both neighbors; the neighbor on the
// matching side activates.
//
// Two implementation details harden the paper's proof sketch against the
// model's persistent ports (an nFSM node cannot detect message *arrival*,
// only port contents, and old letters linger):
//
//   - Activation ACK: a node that becomes the head first spends one round
//     transmitting the ACK letter H. The previous head waits for H before
//     arming its own hand-off trigger; the H also overwrites the stale
//     hand-off letter sitting in the previous head's port, so a node can
//     never be re-activated by its own history.
//
//   - Halt wave: when the machine halts, the head floods a FIN letter so
//     that every node reaches an output state — Section 2 defines
//     termination as a global output configuration.
//
// Both cost O(1) states and letters, preserving the lemma.

// pathProto carries the letter/state encodings for a compiled machine.
type pathProto struct {
	tm *TM
	np int // |P|
	ns int // |Γ|
}

// Letters: NIL (initial, inert), H (activation ACK), FINA, FINR, then the
// hand-off letters (Left, p) and (Right, p) for every machine state.
const (
	letNil nfsm.Letter = iota
	letAck
	letFinA
	letFinR
	letHandBase
)

func (pp *pathProto) numLetters() int { return int(letHandBase) + 2*pp.np }

func (pp *pathProto) handLetter(d Dir, p TMState) nfsm.Letter {
	side := 0
	if d == Right {
		side = 1
	}
	return letHandBase + nfsm.Letter(side*pp.np+int(p))
}

// Roles within a node state. Active roles carry the machine state.
const (
	roleAwaitAckL = iota // handed the head leftward, waiting for H
	roleAwaitAckR
	roleDormantL // head is somewhere to my left
	roleDormantR
	roleAcceptOut // output sinks
	roleRejectOut
	roleActiveBase // roleActiveBase+p: head is here in machine state p
)

func (pp *pathProto) numRoles() int { return roleActiveBase + pp.np }

// state encoding: ((symbol·4)+boundary)·numRoles + role.
func (pp *pathProto) encState(sym Symbol, b Boundary, role int) nfsm.State {
	return nfsm.State(((int(sym)*4)+int(b))*pp.numRoles() + role)
}

func (pp *pathProto) decState(q nfsm.State) (sym Symbol, b Boundary, role int) {
	nr := pp.numRoles()
	role = int(q) % nr
	rest := int(q) / nr
	return Symbol(rest / 4), Boundary(rest % 4), role
}

func (pp *pathProto) numStates() int { return pp.ns * 4 * pp.numRoles() }

func (pp *pathProto) transition(q nfsm.State, counts []nfsm.Count) []nfsm.Move {
	sym, bnd, role := pp.decState(q)
	staying := []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}}

	switch role {
	case roleAcceptOut, roleRejectOut:
		return staying
	}
	// The halt wave preempts everything: adopt the verdict and pass it on.
	if counts[letFinA] > 0 {
		return []nfsm.Move{{Next: pp.encState(sym, bnd, roleAcceptOut), Emit: letFinA}}
	}
	if counts[letFinR] > 0 {
		return []nfsm.Move{{Next: pp.encState(sym, bnd, roleRejectOut), Emit: letFinR}}
	}

	switch {
	case role >= roleActiveBase:
		p := TMState(role - roleActiveBase)
		tmMoves := pp.tm.Delta(p, sym, bnd)
		moves := make([]nfsm.Move, 0, len(tmMoves))
		for _, mv := range tmMoves {
			moves = append(moves, pp.applyTMMove(bnd, mv))
		}
		if len(moves) == 0 {
			// Delta is empty only at halting states, which applyTMMove
			// never re-enters; defensively reject.
			return []nfsm.Move{{Next: pp.encState(sym, bnd, roleRejectOut), Emit: letFinR}}
		}
		return moves

	case role == roleAwaitAckL || role == roleAwaitAckR:
		if counts[letAck] > 0 {
			dormant := roleDormantL
			if role == roleAwaitAckR {
				dormant = roleDormantR
			}
			return []nfsm.Move{{Next: pp.encState(sym, bnd, dormant), Emit: nfsm.NoLetter}}
		}
		return staying

	default: // roleDormantL, roleDormantR
		// A dormant node activates on a hand-off letter moving toward it:
		// (Right, p) when the head is to its left, (Left, p) when to its
		// right. The activation round transmits only the ACK.
		want := Right
		if role == roleDormantR {
			want = Left
		}
		for p := 0; p < pp.np; p++ {
			if counts[pp.handLetter(want, TMState(p))] > 0 {
				return []nfsm.Move{{
					Next: pp.encState(sym, bnd, roleActiveBase+p),
					Emit: letAck,
				}}
			}
		}
		return staying
	}
}

// applyTMMove turns one machine move into the head node's nFSM move:
// write the symbol, then halt, stay, or hand the head off.
func (pp *pathProto) applyTMMove(bnd Boundary, mv TMMove) nfsm.Move {
	switch {
	case mv.Next == pp.tm.Accept:
		return nfsm.Move{Next: pp.encState(mv.Write, bnd, roleAcceptOut), Emit: letFinA}
	case mv.Next == pp.tm.Reject:
		return nfsm.Move{Next: pp.encState(mv.Write, bnd, roleRejectOut), Emit: letFinR}
	}
	dir := mv.Dir
	// An LBA head never leaves the tape: clamp boundary moves to Stay,
	// mirroring TM.Run.
	if (dir == Left && bnd.AtLeft()) || (dir == Right && bnd.AtRight()) {
		dir = Stay
	}
	switch dir {
	case Stay:
		return nfsm.Move{
			Next: pp.encState(mv.Write, bnd, roleActiveBase+int(mv.Next)),
			Emit: nfsm.NoLetter,
		}
	case Left:
		return nfsm.Move{
			Next: pp.encState(mv.Write, bnd, roleAwaitAckL),
			Emit: pp.handLetter(Left, mv.Next),
		}
	default: // Right
		return nfsm.Move{
			Next: pp.encState(mv.Write, bnd, roleAwaitAckR),
			Emit: pp.handLetter(Right, mv.Next),
		}
	}
}

// PathProtocol compiles the machine into an nFSM round protocol for a
// path network (Lemma 6.2). Use PathInit to build the per-node input
// states for a concrete tape, and Verdict to read the result.
func PathProtocol(tm *TM) (*nfsm.RoundProtocol, error) {
	if err := tm.Validate(); err != nil {
		return nil, err
	}
	pp := &pathProto{tm: tm, np: tm.NumStates(), ns: tm.NumSymbols()}

	stateNames := make([]string, pp.numStates())
	for i := range stateNames {
		sym, b, role := pp.decState(nfsm.State(i))
		var r string
		switch {
		case role == roleAwaitAckL:
			r = "ackL"
		case role == roleAwaitAckR:
			r = "ackR"
		case role == roleDormantL:
			r = "dormL"
		case role == roleDormantR:
			r = "dormR"
		case role == roleAcceptOut:
			r = "acc"
		case role == roleRejectOut:
			r = "rej"
		default:
			r = "head:" + tm.StateNames[role-roleActiveBase]
		}
		stateNames[i] = fmt.Sprintf("%s/b%d/%s", tm.SymbolNames[sym], b, r)
	}
	letterNames := make([]string, pp.numLetters())
	letterNames[letNil], letterNames[letAck] = "NIL", "ACK"
	letterNames[letFinA], letterNames[letFinR] = "FIN-ACC", "FIN-REJ"
	for p := 0; p < pp.np; p++ {
		letterNames[pp.handLetter(Left, TMState(p))] = "L:" + tm.StateNames[p]
		letterNames[pp.handLetter(Right, TMState(p))] = "R:" + tm.StateNames[p]
	}

	output := make([]bool, pp.numStates())
	inputs := make([]nfsm.State, 0, pp.numStates())
	for i := 0; i < pp.numStates(); i++ {
		_, _, role := pp.decState(nfsm.State(i))
		if role == roleAcceptOut || role == roleRejectOut {
			output[i] = true
		}
		// Input states: a head at the left end in the start state, or a
		// dormant cell with the head to its left.
		if role == roleActiveBase+int(tm.Start) || role == roleDormantL {
			inputs = append(inputs, nfsm.State(i))
		}
	}

	return &nfsm.RoundProtocol{
		Name:        "lba-path:" + tm.Name,
		StateNames:  stateNames,
		LetterNames: letterNames,
		Input:       inputs,
		Output:      output,
		Initial:     letNil,
		B:           1,
		Transition:  pp.transition,
	}, nil
}

// PathInit builds the per-node initial states placing the input on the
// path: node 0 is the head in the start state, every other node is
// dormant with the head to its left.
func PathInit(tm *TM, input []Symbol) ([]nfsm.State, error) {
	n := len(input)
	if n == 0 {
		return nil, fmt.Errorf("lba(%s): empty input", tm.Name)
	}
	pp := &pathProto{tm: tm, np: tm.NumStates(), ns: tm.NumSymbols()}
	init := make([]nfsm.State, n)
	for i, s := range input {
		if s < 0 || int(s) >= tm.NumSymbols() {
			return nil, fmt.Errorf("lba(%s): input symbol %d at cell %d out of range", tm.Name, s, i)
		}
		role := roleDormantL
		if i == 0 {
			role = roleActiveBase + int(tm.Start)
		}
		init[i] = pp.encState(s, boundaryAt(i, n), role)
	}
	return init, nil
}

// Verdict inspects a final state vector of the path protocol and returns
// the machine's verdict. Every node must agree.
func Verdict(tm *TM, states []nfsm.State) (accepted bool, err error) {
	pp := &pathProto{tm: tm, np: tm.NumStates(), ns: tm.NumSymbols()}
	accepts, rejects := 0, 0
	for v, q := range states {
		_, _, role := pp.decState(q)
		switch role {
		case roleAcceptOut:
			accepts++
		case roleRejectOut:
			rejects++
		default:
			return false, fmt.Errorf("lba: node %d ended in non-output state", v)
		}
	}
	if accepts > 0 && rejects > 0 {
		return false, fmt.Errorf("lba: verdict split: %d accept, %d reject", accepts, rejects)
	}
	return accepts > 0, nil
}

// TapeSymbols decodes the final tape contents from a state vector.
func TapeSymbols(tm *TM, states []nfsm.State) []Symbol {
	pp := &pathProto{tm: tm, np: tm.NumStates(), ns: tm.NumSymbols()}
	out := make([]Symbol, len(states))
	for v, q := range states {
		sym, _, _ := pp.decState(q)
		out[v] = sym
	}
	return out
}

// PathRun reports a Lemma 6.2 execution.
type PathRun struct {
	// Accepted is the machine's verdict.
	Accepted bool
	// Rounds is the number of locally synchronous rounds used.
	Rounds int
	// Tape is the final tape contents decoded from the node states.
	Tape []Symbol
}

// RunOnPath compiles the machine, runs it on the path network embodying
// the input, and returns the verdict (Lemma 6.2 end to end).
func RunOnPath(tm *TM, input []Symbol, seed uint64, maxRounds int) (*PathRun, error) {
	proto, err := PathProtocol(tm)
	if err != nil {
		return nil, err
	}
	init, err := PathInit(tm, input)
	if err != nil {
		return nil, err
	}
	g := graph.Path(len(input))
	res, err := engine.RunSync(proto, g, engine.SyncConfig{Seed: seed, MaxRounds: maxRounds, Init: init})
	if err != nil {
		return nil, err
	}
	accepted, err := Verdict(tm, res.States)
	if err != nil {
		return nil, err
	}
	return &PathRun{Accepted: accepted, Rounds: res.Rounds, Tape: TapeSymbols(tm, res.States)}, nil
}
