package lba

import (
	"strings"
	"testing"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/mis"
	"stoneage/internal/nfsm"
	"stoneage/internal/xrand"
)

func abcInput(s string) []Symbol {
	in := make([]Symbol, len(s))
	for i, c := range s {
		switch c {
		case 'a':
			in[i] = SymA
		case 'b':
			in[i] = SymB
		default:
			in[i] = SymC
		}
	}
	return in
}

func palInput(s string) []Symbol {
	in := make([]Symbol, len(s))
	for i, c := range s {
		if c == 'a' {
			in[i] = PalA
		} else {
			in[i] = PalB
		}
	}
	return in
}

func abcWord(n int) string {
	return strings.Repeat("a", n) + strings.Repeat("b", n) + strings.Repeat("c", n)
}

func isPalindrome(s string) bool {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		if s[i] != s[j] {
			return false
		}
	}
	return true
}

func TestMachinesValidate(t *testing.T) {
	for _, m := range []*TM{ABC(), Palindrome(), RandomWalk()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestTMValidateRejects(t *testing.T) {
	m := ABC()
	m.Delta = nil
	if err := m.Validate(); err == nil {
		t.Fatal("nil delta accepted")
	}
	m = ABC()
	m.Accept = m.Reject
	if err := m.Validate(); err == nil {
		t.Fatal("accept == reject accepted")
	}
	m = ABC()
	m.StateNames = nil
	if err := m.Validate(); err == nil {
		t.Fatal("empty state set accepted")
	}
	m = ABC()
	old := m.Delta
	m.Delta = func(q TMState, s Symbol, b Boundary) []TMMove {
		if q == abcAccept {
			return []TMMove{{Next: abcAccept, Write: s, Dir: Stay}}
		}
		return old(q, s, b)
	}
	if err := m.Validate(); err == nil {
		t.Fatal("halting state with outgoing moves accepted")
	}
}

func TestABCDirect(t *testing.T) {
	m := ABC()
	accepts := []string{"abc", "aabbcc", abcWord(3), abcWord(7)}
	rejects := []string{
		"a", "b", "c", "ab", "ba", "ac", "abcc", "aabc", "abbc",
		"abca", "cba", "aabbc", "abcabc", "aaabbbcc", "bca", "ccc",
	}
	for _, s := range accepts {
		res, err := m.Run(abcInput(s), 1, 0)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if !res.Accepted {
			t.Errorf("%q rejected, want accept", s)
		}
	}
	for _, s := range rejects {
		res, err := m.Run(abcInput(s), 1, 0)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if res.Accepted {
			t.Errorf("%q accepted, want reject", s)
		}
	}
}

func TestPalindromeDirect(t *testing.T) {
	m := Palindrome()
	words := []string{
		"a", "b", "aa", "ab", "aba", "abb", "abba", "abab",
		"aabaa", "aabab", "bbabb", "babab", "baab", "baba",
		"abbbbba", "abbabba", "ababab",
	}
	for _, s := range words {
		res, err := m.Run(palInput(s), 1, 0)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if res.Accepted != isPalindrome(s) {
			t.Errorf("%q: accepted=%v, want %v", s, res.Accepted, isPalindrome(s))
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	m := ABC()
	if _, err := m.Run(nil, 1, 0); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := m.Run([]Symbol{99}, 1, 0); err == nil {
		t.Fatal("out-of-range symbol accepted")
	}
}

func TestRunStepBudget(t *testing.T) {
	m := RandomWalk()
	// All-zero input: the walk never halts.
	if _, err := m.Run([]Symbol{WalkZero, WalkZero, WalkZero}, 1, 500); err == nil {
		t.Fatal("non-halting run did not error")
	}
}

func TestRandomWalkFindsOne(t *testing.T) {
	m := RandomWalk()
	input := []Symbol{WalkZero, WalkZero, WalkZero, WalkZero, WalkOne}
	for seed := uint64(0); seed < 10; seed++ {
		res, err := m.Run(input, seed, 1<<16)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Accepted {
			t.Fatalf("seed %d: rejected", seed)
		}
	}
}

// TestPathMatchesDirect is the Lemma 6.2 equivalence check: for
// deterministic machines, the path-network simulation must reach exactly
// the verdict (and final tape) of the direct execution on every input.
func TestPathMatchesDirect(t *testing.T) {
	words := []string{
		"abc", "aabbcc", abcWord(4), "a", "ab", "abcc", "aabc",
		"cba", "abca", "aabbc", "bca",
	}
	m := ABC()
	for _, s := range words {
		direct, err := m.Run(abcInput(s), 1, 0)
		if err != nil {
			t.Fatalf("%q direct: %v", s, err)
		}
		path, err := RunOnPath(m, abcInput(s), 2, 0)
		if err != nil {
			t.Fatalf("%q path: %v", s, err)
		}
		if path.Accepted != direct.Accepted {
			t.Errorf("%q: path verdict %v, direct %v", s, path.Accepted, direct.Accepted)
		}
		for i := range direct.Tape {
			if path.Tape[i] != direct.Tape[i] {
				t.Errorf("%q: tape cell %d differs: %d vs %d", s, i, path.Tape[i], direct.Tape[i])
			}
		}
	}
}

func TestPathPalindromeZigzag(t *testing.T) {
	// The palindrome machine reverses direction on every pass, stressing
	// the hand-off/ACK machinery against stale port letters.
	m := Palindrome()
	words := []string{"a", "aa", "ab", "aba", "abba", "abab", "aabaa", "bbabb", "babab", "abbabba", "abababa"}
	for _, s := range words {
		run, err := RunOnPath(m, palInput(s), 3, 0)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if run.Accepted != isPalindrome(s) {
			t.Errorf("%q: accepted=%v, want %v", s, run.Accepted, isPalindrome(s))
		}
	}
}

func TestPathSingleCell(t *testing.T) {
	m := ABC()
	run, err := RunOnPath(m, abcInput("a"), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run.Accepted {
		t.Fatal("single 'a' accepted")
	}
}

func TestPathRandomWalk(t *testing.T) {
	m := RandomWalk()
	input := []Symbol{WalkZero, WalkZero, WalkOne}
	for seed := uint64(0); seed < 5; seed++ {
		run, err := RunOnPath(m, input, seed, 1<<16)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !run.Accepted {
			t.Fatalf("seed %d: walk did not find the 1", seed)
		}
	}
}

func TestPathRoundsLinearInTMSteps(t *testing.T) {
	// Each machine step costs O(1) rounds (hand-off, ACK, activation),
	// plus the O(n) halt wave.
	m := ABC()
	for _, n := range []int{2, 4, 8} {
		s := abcWord(n)
		direct, err := m.Run(abcInput(s), 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		run, err := RunOnPath(m, abcInput(s), 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		bound := 4*direct.Steps + 4*len(s) + 16
		if run.Rounds > bound {
			t.Errorf("n=%d: %d rounds for %d machine steps (bound %d)", n, run.Rounds, direct.Steps, bound)
		}
	}
}

func TestPathProtocolValidates(t *testing.T) {
	for _, m := range []*TM{ABC(), Palindrome(), RandomWalk()} {
		p, err := PathProtocol(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}

func TestVerdictErrors(t *testing.T) {
	m := ABC()
	p, err := PathProtocol(m)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	pp := &pathProto{tm: m, np: m.NumStates(), ns: m.NumSymbols()}
	active := pp.encState(SymA, LeftEnd, roleActiveBase)
	if _, err := Verdict(m, []nfsm.State{active}); err == nil {
		t.Fatal("Verdict accepted a non-output state")
	}
	acc := pp.encState(SymA, LeftEnd, roleAcceptOut)
	rej := pp.encState(SymA, RightEnd, roleRejectOut)
	if _, err := Verdict(m, []nfsm.State{acc, rej}); err == nil {
		t.Fatal("Verdict accepted a split verdict")
	}
	got, err := Verdict(m, []nfsm.State{acc, acc})
	if err != nil || !got {
		t.Fatalf("verdict = %v, %v", got, err)
	}
}

// TestSweepMatchesEngineExactly is the Lemma 6.1 cross-check: the
// two-sweep rLBA simulation must reproduce the synchronous engine's
// execution exactly — same round count, same final states — even for
// randomized protocols, because both draw coins from the same
// deterministic source.
func TestSweepMatchesEngineExactly(t *testing.T) {
	src := xrand.New(4)
	graphs := map[string]*graph.Graph{
		"path":  graph.Path(30),
		"cycle": graph.Cycle(25),
		"star":  graph.Star(20),
		"gnp":   graph.Gnp(40, 0.15, src),
		"grid":  graph.Grid(5, 6),
	}
	proto := mis.Protocol()
	for name, g := range graphs {
		for seed := uint64(0); seed < 4; seed++ {
			eng, err := engine.RunSync(proto, g, engine.SyncConfig{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d engine: %v", name, seed, err)
			}
			sim, err := SimulateNFSM(proto, g, SweepConfig{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d sweep: %v", name, seed, err)
			}
			if sim.Rounds != eng.Rounds {
				t.Fatalf("%s seed %d: rounds %d vs %d", name, seed, sim.Rounds, eng.Rounds)
			}
			for v := range eng.States {
				if sim.States[v] != eng.States[v] {
					t.Fatalf("%s seed %d: node %d state %d vs %d",
						name, seed, v, sim.States[v], eng.States[v])
				}
			}
		}
	}
}

func TestSweepProducesValidMIS(t *testing.T) {
	src := xrand.New(6)
	g := graph.Gnp(60, 0.1, src)
	sim, err := SimulateNFSM(mis.Protocol(), g, SweepConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	inSet, err := mis.Extract(sim.States)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.IsMaximalIndependentSet(inSet); err != nil {
		t.Fatal(err)
	}
}

func TestSweepLinearSpace(t *testing.T) {
	// The lemma's space bound: O(1) cells per node and per edge.
	g := graph.Grid(10, 10)
	sim, err := SimulateNFSM(mis.Protocol(), g, SweepConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 2*g.N() + 2*g.M()
	if sim.TapeCells != want {
		t.Fatalf("tape cells = %d, want %d", sim.TapeCells, want)
	}
	if sim.HeadMoves <= 0 {
		t.Fatal("no head moves recorded")
	}
}

func TestSweepInitValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := SimulateNFSM(mis.Protocol(), g, SweepConfig{Init: make([]nfsm.State, 2)}); err == nil {
		t.Fatal("short init accepted")
	}
}

func TestSweepMaxRounds(t *testing.T) {
	// A protocol that never reaches an output configuration must hit the
	// round budget.
	idle := &nfsm.RoundProtocol{
		Name:        "idle",
		StateNames:  []string{"spin", "done"},
		LetterNames: []string{"x"},
		Input:       []nfsm.State{0},
		Output:      []bool{false, true},
		Initial:     0,
		B:           1,
		Transition: func(q nfsm.State, counts []nfsm.Count) []nfsm.Move {
			return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}}
		},
	}
	if _, err := SimulateNFSM(idle, graph.Path(2), SweepConfig{MaxRounds: 10}); err == nil {
		t.Fatal("non-terminating protocol did not error")
	}
}

func majInput(s string) []Symbol {
	in := make([]Symbol, len(s))
	for i, c := range s {
		if c == 'a' {
			in[i] = MajA
		} else {
			in[i] = MajB
		}
	}
	return in
}

func TestMajorityDirect(t *testing.T) {
	m := Majority()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	words := []string{
		"a", "b", "ab", "ba", "aa", "bb", "aab", "aba", "baa",
		"abb", "bab", "abab", "aabb", "aaab", "abba", "bbaa",
		"aababa", "bbbaaa", "aaabbb", "ababababa",
	}
	for _, s := range words {
		want := 2*strings.Count(s, "a") > len(s)
		res, err := m.Run(majInput(s), 1, 0)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if res.Accepted != want {
			t.Errorf("%q: accepted=%v, want %v", s, res.Accepted, want)
		}
	}
}

func TestMajorityOnPath(t *testing.T) {
	m := Majority()
	for _, s := range []string{"a", "ab", "aab", "abb", "aababa", "bbbaaa", "ababa"} {
		direct, err := m.Run(majInput(s), 1, 0)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		run, err := RunOnPath(m, majInput(s), 2, 0)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if run.Accepted != direct.Accepted {
			t.Errorf("%q: path %v vs direct %v", s, run.Accepted, direct.Accepted)
		}
	}
}
