package channel

import (
	"encoding/json"
	"strings"
	"testing"

	"stoneage/internal/nfsm"
)

// TestCorruptStaysInAlphabet exhausts the corruption decision over many
// coordinates and every alphabet size: the flipped letter must always be
// a *different* valid letter — never ε, never out of range — and a
// one-letter alphabet must never flip at all.
func TestCorruptStaysInAlphabet(t *testing.T) {
	for nl := 1; nl <= 5; nl++ {
		c := Corrupt{Rate: 1, Seed: 7}
		var st Stats
		var buf []Fate
		for from := 0; from < 8; from++ {
			for step := 0; step < 64; step++ {
				in := nfsm.Letter(step % nl)
				buf = Expand(c, from, step, from+1, in, nl, buf, &st)
				if len(buf) != 1 {
					t.Fatalf("nl=%d: corrupt fan-out %d, want 1", nl, len(buf))
				}
				got := buf[0].Letter
				if got == nfsm.NoLetter || int(got) < 0 || int(got) >= nl {
					t.Fatalf("nl=%d: corrupted letter %d outside the alphabet", nl, got)
				}
				if nl == 1 && got != in {
					t.Fatalf("one-letter alphabet: corrupt flipped %d to %d", in, got)
				}
				if nl > 1 && got == in {
					t.Fatalf("nl=%d from=%d step=%d: rate-1 corruption left the letter unchanged", nl, from, step)
				}
			}
		}
		if nl == 1 && st.Corrupted != 0 {
			t.Fatalf("one-letter alphabet counted %d corruptions", st.Corrupted)
		}
	}
}

// TestExpandDeterminism pins the obliviousness contract: the same
// (model, coordinates) must yield the same fates on every call, and the
// buffer reuse idiom must not leak state between transmissions.
func TestExpandDeterminism(t *testing.T) {
	m := Stack{
		Duplicate{Rate: 0.5, MaxCopies: 4, Seed: 1},
		Drop{Rate: 0.3, Seed: 2},
		Reorder{Window: 2, Seed: 3},
		Corrupt{Rate: 0.2, Seed: 4},
	}
	var st1, st2 Stats
	var b1, b2 []Fate
	for step := 0; step < 200; step++ {
		b1 = Expand(m, 3, step, 5, nfsm.Letter(step%3), 3, b1, &st1)
		b2 = Expand(m, 3, step, 5, nfsm.Letter(step%3), 3, b2, &st2)
		if len(b1) != len(b2) {
			t.Fatalf("step %d: fan-out %d vs %d across identical calls", step, len(b1), len(b2))
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("step %d copy %d: fate %+v vs %+v", step, i, b1[i], b2[i])
			}
		}
		if len(b1) > m.MaxFanout() {
			t.Fatalf("step %d: fan-out %d exceeds MaxFanout %d", step, len(b1), m.MaxFanout())
		}
	}
	if st1 != st2 {
		t.Fatalf("stats diverged across identical transmission sequences: %+v vs %+v", st1, st2)
	}
	if st1.Dropped == 0 || st1.Duplicated == 0 || st1.Corrupted == 0 {
		t.Fatalf("stack exercised nothing: %+v", st1)
	}
}

// TestExpandAtCopyZeroMatchesExpand pins the burst-coordinate contract
// the voted synchronizer's bit-identity rests on: copy 0 of a burst
// reproduces Expand's stream exactly (so a K=1 voted run makes the
// same channel decisions as an αβ run), while higher burst copies draw
// independent decisions.
func TestExpandAtCopyZeroMatchesExpand(t *testing.T) {
	m := Stack{
		Duplicate{Rate: 0.5, MaxCopies: 4, Seed: 1},
		Drop{Rate: 0.3, Seed: 2},
		Reorder{Window: 2, Seed: 3},
		Corrupt{Rate: 0.2, Seed: 4},
	}
	var stE, st0, st1 Stats
	var bE, b0, b1 []Fate
	diverged := false
	for step := 0; step < 200; step++ {
		in := nfsm.Letter(step % 3)
		bE = Expand(m, 3, step, 5, in, 3, bE, &stE)
		b0 = ExpandAt(m, 3, step, 5, 0, in, 3, b0, &st0)
		if len(bE) != len(b0) {
			t.Fatalf("step %d: copy-0 fan-out %d vs Expand's %d", step, len(b0), len(bE))
		}
		for i := range bE {
			if bE[i] != b0[i] {
				t.Fatalf("step %d copy %d: copy-0 fate %+v vs Expand's %+v", step, i, b0[i], bE[i])
			}
		}
		b1 = ExpandAt(m, 3, step, 5, 1, in, 3, b1, &st1)
		if len(b1) != len(bE) {
			diverged = true
			continue
		}
		for i := range b1 {
			if b1[i] != bE[i] {
				diverged = true
			}
		}
	}
	if stE != st0 {
		t.Fatalf("copy-0 stats %+v diverged from Expand's %+v", st0, stE)
	}
	if !diverged {
		t.Fatal("burst copy 1 never diverged from copy 0 — burst copies are not independent coordinates")
	}
}

// TestStackComposition checks that duplicates created by an early layer
// are processed per copy by later layers: with rate-1 duplication and
// rate-1 corruption every delivered copy is corrupted, and the
// duplicated count matches the extra copies.
func TestStackComposition(t *testing.T) {
	m := Stack{
		Duplicate{Rate: 1, MaxCopies: 2, Seed: 5},
		Corrupt{Rate: 1, Seed: 6},
	}
	var st Stats
	fates := Expand(m, 0, 1, 1, 0, 3, nil, &st)
	if len(fates) != 2 {
		t.Fatalf("fan-out %d, want 2", len(fates))
	}
	for i, f := range fates {
		if f.Letter == 0 {
			t.Errorf("copy %d not corrupted", i)
		}
	}
	if st.Duplicated != 1 || st.Corrupted != 2 {
		t.Errorf("stats %+v, want Duplicated=1 Corrupted=2", st)
	}
}

// TestByzEmit pins the behaviors: Silent never emits, StuckAt always
// emits its letter, and a babbler emits a deterministic in-alphabet
// stream that varies with time.
func TestByzEmit(t *testing.T) {
	const nl = 3
	if l := Silent(0).Emit(7, nl); l != nfsm.NoLetter {
		t.Errorf("Silent emitted %d", l)
	}
	if l := StuckAt(0, 2).Emit(7, nl); l != 2 {
		t.Errorf("StuckAt(2) emitted %d", l)
	}
	b := RandomBabbler(0, 11)
	seen := map[nfsm.Letter]bool{}
	for step := 0; step < 64; step++ {
		l := b.Emit(step, nl)
		if l == nfsm.NoLetter || int(l) < 0 || int(l) >= nl {
			t.Fatalf("babbler emitted %d outside the alphabet", l)
		}
		if l != b.Emit(step, nl) {
			t.Fatalf("babbler is not deterministic at step %d", step)
		}
		seen[l] = true
	}
	if len(seen) < 2 {
		t.Errorf("babbler emitted only %d distinct letters over 64 steps", len(seen))
	}
}

// TestDefValidate walks the rejection surface, including the
// allocation-hardening bounds a hostile decoded Def must not pass.
func TestDefValidate(t *testing.T) {
	bad := []Def{
		{Drop: -0.1},
		{Drop: 1.5},
		{Dup: 2},
		{Corrupt: -1},
		{Reorder: -1},
		{DupMax: 3},            // dupMax without dup
		{Dup: 0.5, DupMax: 1},  // below 2
		{Dup: 0.5, DupMax: 99}, // fan-out bomb
		{Byz: []ByzDef{{Behavior: "chaotic", Frac: 0.1}}},
		{Byz: []ByzDef{{Behavior: BehaviorSilent, Frac: 0}}},
		{Byz: []ByzDef{{Behavior: BehaviorSilent, Frac: 0.6}, {Behavior: BehaviorBabble, Frac: 0.6}}},
		{Byz: []ByzDef{{Behavior: BehaviorSilent, Frac: 0.1, Letter: 2}}},
		{Byz: []ByzDef{{Behavior: BehaviorStuck, Frac: 0.1, Letter: -1}}},
		{Byz: []ByzDef{
			{Behavior: BehaviorSilent, Frac: 0.1}, {Behavior: BehaviorSilent, Frac: 0.1},
			{Behavior: BehaviorSilent, Frac: 0.1}, {Behavior: BehaviorSilent, Frac: 0.1},
			{Behavior: BehaviorSilent, Frac: 0.1},
		}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted an invalid def", i, d)
		}
	}
	good := []Def{
		{},
		{Drop: 0.2, Dup: 0.1, Reorder: 1.5, Corrupt: 0.05},
		{Dup: 1, DupMax: 8},
		{Byz: []ByzDef{{Behavior: BehaviorStuck, Frac: 0.2, Letter: 1}}},
	}
	for i, d := range good {
		if err := d.Validate(); err != nil {
			t.Errorf("case %d: Validate rejected a valid def: %v", i, err)
		}
	}
}

// TestDefKeyAndName checks that Key covers exactly the model-relevant
// content (label excluded, dupMax resolved) and Name prefers the label.
func TestDefKeyAndName(t *testing.T) {
	if k := (Def{}).Key(); k != "none" {
		t.Errorf("zero def key = %q", k)
	}
	a := Def{Drop: 0.2, Label: "lossy"}
	b := Def{Drop: 0.2}
	if a.Key() != b.Key() {
		t.Errorf("label changed the key: %q vs %q", a.Key(), b.Key())
	}
	if a.Name() != "lossy" || b.Name() != "drop=0.2" {
		t.Errorf("names = %q, %q", a.Name(), b.Name())
	}
	c := Def{Dup: 0.5}
	d := Def{Dup: 0.5, DupMax: 3}
	if c.Key() == d.Key() {
		t.Error("dupMax is model-relevant but did not change the key")
	}
}

// TestDefModel checks the wire-policy lowering: the zero def and
// byzantine-only defs yield nil (the engines' fast path), single
// pathologies yield the single policy, several stack.
func TestDefModel(t *testing.T) {
	if m := (Def{}).Model(1); m != nil {
		t.Errorf("zero def model = %v", m)
	}
	byzOnly := Def{Byz: []ByzDef{{Behavior: BehaviorSilent, Frac: 0.1}}}
	if m := byzOnly.Model(1); m != nil {
		t.Errorf("byzantine-only def model = %v", m)
	}
	if m := (Def{Drop: 0.3}).Model(1); m == nil || m.Reorders() {
		t.Errorf("drop def model = %v", m)
	}
	m := Def{Drop: 0.3, Dup: 0.2, Reorder: 1, Corrupt: 0.1}.Model(1)
	if m == nil || !m.Reorders() {
		t.Fatalf("full def model = %v", m)
	}
	if !strings.Contains(m.String(), "drop") || !strings.Contains(m.String(), "reorder") {
		t.Errorf("full def model string %q missing layers", m)
	}
}

// TestDefByzantine checks the population assignment: disjoint groups,
// sorted by node, sized ⌈frac·n⌉, deterministic in (def, n, seed).
func TestDefByzantine(t *testing.T) {
	d := Def{Byz: []ByzDef{
		{Behavior: BehaviorSilent, Frac: 0.25},
		{Behavior: BehaviorStuck, Frac: 0.25, Letter: 1},
	}}
	const n = 16
	byz := d.Byzantine(n, 3)
	if len(byz) != 8 {
		t.Fatalf("got %d byzantine nodes, want 8", len(byz))
	}
	seen := map[int]bool{}
	for i, z := range byz {
		if z.Node < 0 || z.Node >= n {
			t.Fatalf("node %d out of range", z.Node)
		}
		if seen[z.Node] {
			t.Fatalf("node %d assigned twice", z.Node)
		}
		seen[z.Node] = true
		if i > 0 && byz[i-1].Node > z.Node {
			t.Fatal("byzantine set not sorted by node")
		}
	}
	again := d.Byzantine(n, 3)
	for i := range byz {
		if byz[i].Node != again[i].Node || byz[i].Behavior != again[i].Behavior {
			t.Fatal("byzantine assignment is not deterministic")
		}
	}
	other := d.Byzantine(n, 4)
	same := true
	for i := range byz {
		if byz[i].Node != other[i].Node {
			same = false
		}
	}
	if same {
		t.Error("seed does not vary the byzantine assignment")
	}
	if got := (Def{}).Byzantine(n, 3); got != nil {
		t.Errorf("zero def assigned byzantine nodes: %v", got)
	}
}

// FuzzDecodeChannel hardens the JSON surface the campaign spec and the
// stonesim -channel flag expose: whatever bytes arrive, decoding plus
// Validate must never panic, and every def that validates must resolve
// to a model within the fan-out bound and a byzantine set within n.
func FuzzDecodeChannel(f *testing.F) {
	f.Add([]byte(`{"drop":0.2,"dup":0.1,"dupMax":3,"reorder":1.5,"corrupt":0.05}`))
	f.Add([]byte(`{"byz":[{"behavior":"babble","frac":0.5}]}`))
	f.Add([]byte(`{"dup":1,"dupMax":8}`))
	f.Add([]byte(`{"drop":1e308,"reorder":-1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Def
		if err := json.Unmarshal(data, &d); err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			return
		}
		m := d.Model(1)
		if m != nil {
			if m.MaxFanout() > maxLayerFanout {
				t.Fatalf("validated def %+v fans out %d > %d", d, m.MaxFanout(), maxLayerFanout)
			}
			var st Stats
			fates := Expand(m, 0, 1, 1, 0, 2, nil, &st)
			if len(fates) > m.MaxFanout() {
				t.Fatalf("expand emitted %d copies, MaxFanout %d", len(fates), m.MaxFanout())
			}
		}
		const n = 32
		byz := d.Byzantine(n, 2)
		if len(byz) > n {
			t.Fatalf("byzantine set %d exceeds n=%d", len(byz), n)
		}
		for _, z := range byz {
			if err := z.Validate(n, 2); err != nil {
				t.Fatalf("validated def produced invalid byz node: %v", err)
			}
		}
	})
}
