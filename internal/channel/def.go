package channel

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"stoneage/internal/nfsm"
	"stoneage/internal/xrand"
)

// Def is a declarative channel-model generator: the JSON-friendly form
// the campaign Spec's `channels` axis and the stonesim -channel flag
// use. A Def plus a seed deterministically yields a Model (and, given a
// node count, a Byzantine node set) — the campaign derives the seed
// from the trial's content coordinates, so aggregates stay bit-identical
// at every worker count.
//
// The zero Def is the reliable baseline: no wire pathology, no
// Byzantine nodes. Wire policies stack in the fixed order
// duplicate → drop → reorder → corrupt: duplicates are created first so
// every copy is independently lost, delayed and corrupted downstream.
type Def struct {
	// Drop is the per-copy loss probability in [0, 1].
	Drop float64 `json:"drop,omitempty"`
	// Dup is the duplication probability in [0, 1].
	Dup float64 `json:"dup,omitempty"`
	// DupMax bounds total copies per duplicated transmission
	// (2..8, default 2; meaningful only with dup > 0).
	DupMax int `json:"dupMax,omitempty"`
	// Reorder is the extra-delay window (>= 0) in adversary time units.
	Reorder float64 `json:"reorder,omitempty"`
	// Corrupt is the per-copy corruption probability in [0, 1].
	Corrupt float64 `json:"corrupt,omitempty"`
	// Byz assigns Byzantine behaviors to random node fractions.
	Byz []ByzDef `json:"byz,omitempty"`
	// Label overrides the display name.
	Label string `json:"label,omitempty"`
}

// ByzDef declares one Byzantine population: a behavior applied to a
// random ⌈Frac·n⌉-node group. Groups within one Def are disjoint.
type ByzDef struct {
	// Behavior is one of the Behavior* kinds.
	Behavior string `json:"behavior"`
	// Frac is the node fraction in (0, 1].
	Frac float64 `json:"frac"`
	// Letter is the fixed letter for BehaviorStuck.
	Letter int `json:"letter,omitempty"`
}

// None reports whether the def is the reliable baseline.
func (d Def) None() bool {
	return d.Drop == 0 && d.Dup == 0 && d.DupMax == 0 &&
		d.Reorder == 0 && d.Corrupt == 0 && len(d.Byz) == 0
}

func (d Def) dupMax() int {
	if d.DupMax == 0 {
		return 2
	}
	return d.DupMax
}

// Name returns the def's display name: the label if set, otherwise a
// compact rendering of the active pathologies ("none" for the reliable
// baseline).
func (d Def) Name() string {
	if d.Label != "" {
		return d.Label
	}
	if d.None() {
		return "none"
	}
	var parts []string
	if d.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", d.Drop))
	}
	if d.Dup > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", d.Dup))
	}
	if d.Reorder > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%g", d.Reorder))
	}
	if d.Corrupt > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%g", d.Corrupt))
	}
	for _, b := range d.Byz {
		parts = append(parts, fmt.Sprintf("byz=%s:%g", b.Behavior, b.Frac))
	}
	return strings.Join(parts, ",")
}

// Key canonicalizes the def's content for seed derivation and duplicate
// detection: exactly the fields that change the resolved model
// participate, resolved to their effective values (dupMax defaults to
// its explicit spelling; dupMax without dup is rejected by Validate).
// The display label does not participate.
func (d Def) Key() string {
	if d.None() {
		return "none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "drop=%g/dup=%g", d.Drop, d.Dup)
	if d.Dup > 0 {
		fmt.Fprintf(&b, "/max=%d", d.dupMax())
	}
	fmt.Fprintf(&b, "/re=%g/co=%g", d.Reorder, d.Corrupt)
	for _, z := range d.Byz {
		fmt.Fprintf(&b, "/byz=%s:%g", z.Behavior, z.Frac)
		if z.Behavior == BehaviorStuck {
			fmt.Fprintf(&b, ":%d", z.Letter)
		}
	}
	return b.String()
}

// Validate checks the def's static well-formedness, including the
// allocation-hardening bounds (DupMax and the Byzantine population
// count) that keep a hostile decoded Def from becoming a fan-out or
// allocation bomb.
func (d Def) Validate() error {
	rates := []struct {
		name string
		p    float64
	}{{"drop", d.Drop}, {"dup", d.Dup}, {"corrupt", d.Corrupt}}
	for _, r := range rates {
		if math.IsNaN(r.p) || r.p < 0 || r.p > 1 {
			return fmt.Errorf("channel: %s %g outside [0,1]", r.name, r.p)
		}
	}
	if math.IsNaN(d.Reorder) || math.IsInf(d.Reorder, 0) || d.Reorder < 0 {
		return fmt.Errorf("channel: reorder window %g must be finite and >= 0", d.Reorder)
	}
	if d.DupMax != 0 && d.Dup == 0 {
		return fmt.Errorf("channel: dupMax without dup does nothing (got dupMax=%d)", d.DupMax)
	}
	if d.DupMax != 0 && (d.DupMax < 2 || d.DupMax > maxLayerFanout) {
		return fmt.Errorf("channel: dupMax %d outside [2,%d]", d.DupMax, maxLayerFanout)
	}
	if len(d.Byz) > 4 {
		return fmt.Errorf("channel: %d byzantine populations (max 4)", len(d.Byz))
	}
	total := 0.0
	for i, z := range d.Byz {
		switch z.Behavior {
		case BehaviorSilent, BehaviorBabble:
			if z.Letter != 0 {
				return fmt.Errorf("channel: byz[%d] letter is not a %s parameter", i, z.Behavior)
			}
		case BehaviorStuck:
			if z.Letter < 0 {
				return fmt.Errorf("channel: byz[%d] stuck letter %d negative", i, z.Letter)
			}
		default:
			return fmt.Errorf("channel: byz[%d] unknown behavior %q (want %s, %s or %s)",
				i, z.Behavior, BehaviorSilent, BehaviorStuck, BehaviorBabble)
		}
		if math.IsNaN(z.Frac) || z.Frac <= 0 || z.Frac > 1 {
			return fmt.Errorf("channel: byz[%d] frac %g outside (0,1]", i, z.Frac)
		}
		total += z.Frac
	}
	if total > 1 {
		return fmt.Errorf("channel: byzantine fractions sum to %g > 1", total)
	}
	return nil
}

// Model builds the def's wire model, each layer keyed from seed. It
// returns nil when the def has no wire pathology (Byzantine-only defs
// run over reliable links), which engines treat as the zero-overhead
// fast path.
func (d Def) Model(seed uint64) Model {
	var s Stack
	if d.Dup > 0 {
		s = append(s, Duplicate{Rate: d.Dup, MaxCopies: d.dupMax(), Seed: xrand.Mix(seed, saltDupHit)})
	}
	if d.Drop > 0 {
		s = append(s, Drop{Rate: d.Drop, Seed: xrand.Mix(seed, saltDrop)})
	}
	if d.Reorder > 0 {
		s = append(s, Reorder{Window: d.Reorder, Seed: xrand.Mix(seed, saltReorder)})
	}
	if d.Corrupt > 0 {
		s = append(s, Corrupt{Rate: d.Corrupt, Seed: xrand.Mix(seed, saltCorrupt)})
	}
	switch len(s) {
	case 0:
		return nil
	case 1:
		return s[0]
	}
	return s
}

// Byzantine assigns the def's Byzantine populations to concrete nodes:
// disjoint groups of ⌈frac·n⌉ nodes drawn off one seed-derived
// permutation, returned sorted by node. Babbler seeds derive from the
// same seed, so the whole faulty set is a pure function of (d, n, seed).
func (d Def) Byzantine(n int, seed uint64) []ByzNode {
	if len(d.Byz) == 0 || n == 0 {
		return nil
	}
	src := xrand.NewStream(seed, xrand.FNV("channel-byz"))
	perm := src.Perm(n)
	var out []ByzNode
	next := 0
	for _, z := range d.Byz {
		k := int(math.Ceil(z.Frac * float64(n)))
		if k < 1 {
			k = 1
		}
		if k > n-next {
			k = n - next
		}
		for i := 0; i < k; i++ {
			v := perm[next]
			next++
			switch z.Behavior {
			case BehaviorStuck:
				out = append(out, StuckAt(v, nfsm.Letter(z.Letter)))
			case BehaviorBabble:
				out = append(out, RandomBabbler(v, src.Uint64()))
			default:
				out = append(out, Silent(v))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
