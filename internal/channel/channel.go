// Package channel models unreliable communication links and Byzantine
// node behaviors as a deterministic execution axis. The paper's
// asynchronous model already tolerates one message pathology natively —
// ports are overwritten, not queued, so a slow reader simply loses
// intermediate letters — but the links themselves are perfectly
// reliable. A channel Model makes the remaining classical pathologies
// explicit: loss, duplication, reordering (bounded extra delay) and
// corruption, composed in any order with Stack.
//
// Like engine.Adversary, a Model is oblivious and content-seeded: every
// decision is a pure function of the transmission's coordinates
// (from, step, to, copy) and the model's seed, never of the protocol's
// coin tosses or the letter values. Two engines running the same model
// over the same transmission sequence therefore make bit-identical
// channel decisions — the property the differential and fuzz walls
// pin between the ladder and reference asynchronous executors.
//
// Byzantine behaviors (Silent, StuckAt, RandomBabbler) are the node-side
// counterpart: a Byzantine node never executes its machine and instead
// emits a behavior-chosen letter at every step. They attach per node via
// scenario.Scenario.Byzantine and ride the same channel models as honest
// traffic.
package channel

import (
	"fmt"
	"strings"

	"stoneage/internal/nfsm"
	"stoneage/internal/xrand"
)

// Decision salts separate the per-policy hash streams (same discipline
// as the adversary policies' 0x5745/0xde1a salts).
const (
	saltDrop    = 0x6c6f_7373 // "loss"
	saltDupHit  = 0x6475_7031 // "dup1": whether to duplicate
	saltDupN    = 0x6475_7032 // "dup2": how many extra copies
	saltReorder = 0x7264_6c79 // "rdly"
	saltCorrupt = 0x666c_6970 // "flip": whether to corrupt
	saltPick    = 0x7069_636b // "pick": replacement letter
	saltBabble  = 0x6261_6262 // "babb": RandomBabbler letters
)

// maxLayerFanout bounds the copies any single policy may emit per
// incoming copy (Duplicate's MaxCopies is validated against it). It
// both sizes Stack's scratch and caps the per-layer copy coordinate, so
// a hostile Def can never turn the expansion into an allocation bomb.
const maxLayerFanout = 8

// Fate is one delivered copy of a transmission after the channel has
// acted on it: the letter that actually arrives and any extra delay on
// top of the adversary's.
type Fate struct {
	// Extra is added to the adversary delay; non-zero values (Reorder)
	// void the per-edge FIFO guarantee.
	Extra float64
	// Letter is the letter delivered (possibly corrupted).
	Letter nfsm.Letter
	// Corrupt marks a copy whose letter was rewritten by a Corrupt
	// policy. Voted engines use it to count corrupted copies that lost
	// the receipt vote (Stats.Outvoted); it never influences delivery.
	Corrupt bool
}

// Stats counts a model's interventions over one run. Engines hold one
// Stats per run and surface the counters in their results.
type Stats struct {
	// Dropped counts copies the channel eliminated.
	Dropped int64
	// Duplicated counts extra copies the channel created.
	Duplicated int64
	// Delayed counts copies a reordering policy assigned a non-zero
	// extra delay — the *attempted* reorder fates. Whether an attempt
	// materializes as an actual overtake depends on the scheduling gap
	// on that edge and is what the engines count separately (the
	// Reordered counter): under the self-pacing α-synchronizer Delayed
	// can be large while Reordered stays 0, which is how a live model
	// is distinguished from a dead one.
	Delayed int64
	// Corrupted counts letters the channel flipped.
	Corrupted int64
	// Outvoted counts corrupted copies a voted synchronizer refused to
	// commit: the receipt arrived, entered the port's vote window, and
	// was not the winning letter. Engines (not the model) increment it,
	// since only the decoder knows which copy won.
	Outvoted int64
}

// Model is one channel policy. Apply maps one incoming copy of a
// transmission to the copies leaving the policy, appended to out:
// dropping it (no append), passing it through, duplicating it, delaying
// it or rewriting its letter. The coordinates identify the transmission
// — from's step-t send toward to, copy index within the expansion so
// far — and nl is the protocol's alphabet size; every random decision
// must be a pure function of (model, coordinates), mirroring the
// obliviousness contract of engine.Adversary.
type Model interface {
	Apply(from, step, to, copy int, f Fate, nl int, out []Fate, st *Stats) []Fate
	// Reorders reports whether Apply may return non-zero Extra delays.
	// Engines use it to decide whether per-edge FIFO clamping (and the
	// ladder's pooled FIFO fast path) remains sound.
	Reorders() bool
	// MaxFanout bounds the copies Apply can emit per incoming copy
	// (<= maxLayerFanout for a single policy).
	MaxFanout() int
	// String names the model for results and error messages.
	String() string
}

// Expand runs one transmission through the model: the full fan-out of
// delivered copies, in delivery-schedule order, appended to buf[:0].
// Both asynchronous engines (ladder and reference) call exactly this
// helper, so their channel decisions cannot diverge.
func Expand(m Model, from, step, to int, letter nfsm.Letter, nl int, buf []Fate, st *Stats) []Fate {
	return ExpandAt(m, from, step, to, 0, letter, nl, buf, st)
}

// ExpandAt is Expand with an explicit top-level copy coordinate. Voted
// engines transmit K burst copies per edge per emission; each copy gets
// its own coordinate so the model's decisions stay independent across
// the burst, while copy 0 reproduces Expand's stream exactly (a K=1
// voted run makes bit-identical channel decisions to an αβ run).
func ExpandAt(m Model, from, step, to, copy int, letter nfsm.Letter, nl int, buf []Fate, st *Stats) []Fate {
	return m.Apply(from, step, to, copy, Fate{Letter: letter}, nl, buf[:0], st)
}

// chance derives the policy's decision uniform in [0, 1) from the
// transmission coordinates.
func chance(seed, salt uint64, from, step, to, copy int) float64 {
	return float64(draw(seed, salt, from, step, to, copy)>>11) / (1 << 53)
}

// draw is the raw 64-bit decision hash behind chance.
func draw(seed, salt uint64, from, step, to, copy int) uint64 {
	return xrand.Mix(seed, salt, uint64(from), uint64(step), uint64(to), uint64(copy))
}

// Drop loses each copy independently with probability Rate.
type Drop struct {
	// Rate is the per-copy loss probability in [0, 1].
	Rate float64
	// Seed keys the policy.
	Seed uint64
}

var _ Model = Drop{}

// Apply implements Model.
func (d Drop) Apply(from, step, to, copy int, f Fate, nl int, out []Fate, st *Stats) []Fate {
	if chance(d.Seed, saltDrop, from, step, to, copy) < d.Rate {
		st.Dropped++
		return out
	}
	return append(out, f)
}

// Reorders implements Model.
func (Drop) Reorders() bool { return false }

// MaxFanout implements Model.
func (Drop) MaxFanout() int { return 1 }

// String implements Model.
func (d Drop) String() string { return fmt.Sprintf("drop(%g)", d.Rate) }

// Duplicate delivers each copy 2..MaxCopies times with probability
// Rate. The duplicates share the incoming fate; under a FIFO channel
// (no Reorder stacked after it) they land back-to-back on an
// overwrite-only port, so duplication alone is invisible to protocol
// behavior — stacking Reorder after it is what resurrects stale
// letters.
type Duplicate struct {
	// Rate is the duplication probability in [0, 1].
	Rate float64
	// MaxCopies bounds the total copies per duplicated transmission
	// (2..maxLayerFanout; 0 selects 2).
	MaxCopies int
	// Seed keys the policy.
	Seed uint64
}

var _ Model = Duplicate{}

func (d Duplicate) maxCopies() int {
	if d.MaxCopies == 0 {
		return 2
	}
	return d.MaxCopies
}

// Apply implements Model.
func (d Duplicate) Apply(from, step, to, copy int, f Fate, nl int, out []Fate, st *Stats) []Fate {
	out = append(out, f)
	if chance(d.Seed, saltDupHit, from, step, to, copy) >= d.Rate {
		return out
	}
	extra := 1
	if mc := d.maxCopies(); mc > 2 {
		extra += int(draw(d.Seed, saltDupN, from, step, to, copy) % uint64(mc-1))
	}
	st.Duplicated += int64(extra)
	for i := 0; i < extra; i++ {
		out = append(out, f)
	}
	return out
}

// Reorders implements Model.
func (Duplicate) Reorders() bool { return false }

// MaxFanout implements Model.
func (d Duplicate) MaxFanout() int { return d.maxCopies() }

// String implements Model.
func (d Duplicate) String() string {
	return fmt.Sprintf("dup(%g,max=%d)", d.Rate, d.maxCopies())
}

// Reorder adds an independent uniform extra delay in [0, Window) to
// every copy, so deliveries on the same edge may overtake each other —
// a bounded-reordering channel. Engines detect it via Reorders and
// disable per-edge FIFO clamping.
type Reorder struct {
	// Window is the extra-delay bound (> 0), in adversary time units.
	Window float64
	// Seed keys the policy.
	Seed uint64
}

var _ Model = Reorder{}

// Apply implements Model.
func (r Reorder) Apply(from, step, to, copy int, f Fate, nl int, out []Fate, st *Stats) []Fate {
	if extra := r.Window * chance(r.Seed, saltReorder, from, step, to, copy); extra > 0 {
		f.Extra += extra
		st.Delayed++
	}
	return append(out, f)
}

// Reorders implements Model.
func (r Reorder) Reorders() bool { return r.Window > 0 }

// MaxFanout implements Model.
func (Reorder) MaxFanout() int { return 1 }

// String implements Model.
func (r Reorder) String() string { return fmt.Sprintf("reorder(%g)", r.Window) }

// Corrupt flips each copy's letter, with probability Rate, to a
// uniformly random *different* valid letter — never ε and never a
// letter outside the protocol's alphabet, so a corrupted delivery is
// indistinguishable from a legal transmission at the receiving port.
// On a one-letter alphabet there is nothing to flip to and Corrupt is
// a no-op.
type Corrupt struct {
	// Rate is the per-copy corruption probability in [0, 1].
	Rate float64
	// Seed keys the policy.
	Seed uint64
}

var _ Model = Corrupt{}

// Apply implements Model.
func (c Corrupt) Apply(from, step, to, copy int, f Fate, nl int, out []Fate, st *Stats) []Fate {
	if nl > 1 && chance(c.Seed, saltCorrupt, from, step, to, copy) < c.Rate {
		shift := 1 + int(draw(c.Seed, saltPick, from, step, to, copy)%uint64(nl-1))
		f.Letter = nfsm.Letter((int(f.Letter) + shift) % nl)
		f.Corrupt = true
		st.Corrupted++
	}
	return append(out, f)
}

// Reorders implements Model.
func (Corrupt) Reorders() bool { return false }

// MaxFanout implements Model.
func (Corrupt) MaxFanout() int { return 1 }

// String implements Model.
func (c Corrupt) String() string { return fmt.Sprintf("corrupt(%g)", c.Rate) }

// Stack composes policies in order: the copies leaving layer i enter
// layer i+1. A transmission duplicated by an early layer is dropped,
// delayed and corrupted per copy by later layers (each copy has its own
// coordinate, so decisions are independent).
type Stack []Model

var _ Model = Stack{}

// Apply implements Model.
func (s Stack) Apply(from, step, to, copy int, f Fate, nl int, out []Fate, st *Stats) []Fate {
	var a, b [maxLayerFanout * maxLayerFanout]Fate
	cur, nxt := append(a[:0], f), b[:0]
	for _, layer := range s {
		nxt = nxt[:0]
		for i, g := range cur {
			// The per-layer copy coordinate: incoming index within this
			// transmission's expansion, offset by the caller's copy so
			// nested stacks stay decorrelated.
			nxt = layer.Apply(from, step, to, copy*len(a)+i, g, nl, nxt, st)
		}
		cur, nxt = nxt, cur
	}
	return append(out, cur...)
}

// Reorders implements Model.
func (s Stack) Reorders() bool {
	for _, layer := range s {
		if layer.Reorders() {
			return true
		}
	}
	return false
}

// MaxFanout implements Model.
func (s Stack) MaxFanout() int {
	n := 1
	for _, layer := range s {
		n *= layer.MaxFanout()
	}
	return n
}

// String implements Model.
func (s Stack) String() string {
	if len(s) == 0 {
		return "reliable"
	}
	parts := make([]string, len(s))
	for i, layer := range s {
		parts[i] = layer.String()
	}
	return strings.Join(parts, "+")
}
