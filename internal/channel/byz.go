package channel

import (
	"fmt"

	"stoneage/internal/nfsm"
	"stoneage/internal/xrand"
)

// Byzantine behavior kinds. A ByzNode is plain data (JSON-friendly,
// comparable) rather than an interface so scenarios and fuzz inputs can
// carry it verbatim; the Silent/StuckAt/RandomBabbler constructors are
// the composition vocabulary.
const (
	// BehaviorSilent never transmits: a crashed-looking node that still
	// occupies its ports (neighbors keep their stale letters forever).
	BehaviorSilent = "silent"
	// BehaviorStuck transmits one fixed letter at every step.
	BehaviorStuck = "stuck"
	// BehaviorBabble transmits an independent uniformly random letter at
	// every step.
	BehaviorBabble = "babble"
)

// ByzNode assigns one Byzantine behavior to one node. A Byzantine node
// never executes its machine: it holds its input state, emits the
// behavior's letter at every step (sync round or async step), is
// counted in Steps/Transmissions like any node, and is excluded from
// output-configuration detection and output validation. Its emissions
// ride the run's channel model like honest traffic, and scenario
// mutations (crash, restart, wake) apply to it normally.
type ByzNode struct {
	// Node is the faulty node.
	Node int `json:"node"`
	// Behavior is one of the Behavior* kinds.
	Behavior string `json:"behavior"`
	// Letter is the fixed letter for BehaviorStuck.
	Letter nfsm.Letter `json:"letter,omitempty"`
	// Seed keys BehaviorBabble's letter stream.
	Seed uint64 `json:"seed,omitempty"`
}

// Silent returns a silent Byzantine node.
func Silent(node int) ByzNode { return ByzNode{Node: node, Behavior: BehaviorSilent} }

// StuckAt returns a node stuck transmitting one letter.
func StuckAt(node int, letter nfsm.Letter) ByzNode {
	return ByzNode{Node: node, Behavior: BehaviorStuck, Letter: letter}
}

// RandomBabbler returns a node transmitting random letters.
func RandomBabbler(node int, seed uint64) ByzNode {
	return ByzNode{Node: node, Behavior: BehaviorBabble, Seed: seed}
}

// Emit returns the letter the node transmits at its step t
// (nfsm.NoLetter = transmit nothing). Deterministic in (b, t, nl).
func (b ByzNode) Emit(t, nl int) nfsm.Letter {
	switch b.Behavior {
	case BehaviorStuck:
		return b.Letter
	case BehaviorBabble:
		return nfsm.Letter(xrand.Mix(b.Seed, saltBabble, uint64(b.Node), uint64(t)) % uint64(nl))
	}
	return nfsm.NoLetter
}

// Validate checks the behavior against a node count and alphabet size.
// Engines call it with the protocol's alphabet at run start, so both
// executors reject an ill-formed Byzantine set identically.
func (b ByzNode) Validate(n, nl int) error {
	if b.Node < 0 || b.Node >= n {
		return fmt.Errorf("channel: byzantine node %d out of range [0,%d)", b.Node, n)
	}
	switch b.Behavior {
	case BehaviorSilent, BehaviorBabble:
	case BehaviorStuck:
		if int(b.Letter) < 0 || int(b.Letter) >= nl {
			return fmt.Errorf("channel: byzantine node %d stuck at letter %d outside alphabet [0,%d)", b.Node, b.Letter, nl)
		}
	default:
		return fmt.Errorf("channel: byzantine node %d has unknown behavior %q (want %s, %s or %s)",
			b.Node, b.Behavior, BehaviorSilent, BehaviorStuck, BehaviorBabble)
	}
	return nil
}

// String names the behavior for results and error messages.
func (b ByzNode) String() string {
	switch b.Behavior {
	case BehaviorStuck:
		return fmt.Sprintf("%s(%d)@%d", b.Behavior, b.Letter, b.Node)
	default:
		return fmt.Sprintf("%s@%d", b.Behavior, b.Node)
	}
}
