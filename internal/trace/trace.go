// Package trace provides execution-recording observers for the engines:
// per-round state histograms, full per-node timelines, and CSV export.
// The experiment harness uses histograms to visualize protocol dynamics
// (e.g. the active/waiting/colored populations of Section 5); the
// timelines support debugging and the invariant tests.
package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"stoneage/internal/nfsm"
)

// Histogram records, for every round of a synchronous run, how many
// nodes resided in each state.
type Histogram struct {
	// StateNames labels the columns.
	StateNames []string
	// Counts[r][q] is the population of state q after round r+1.
	Counts [][]int
	// Marks lists perturbation rounds of a dynamic run, in the
	// engine's convention (engine.SyncResult.PerturbedAt): an entry r
	// means a mutation batch was applied between rounds r and r+1.
	// WriteCSV renders them as the "perturbed" column, flagging the
	// first round executed after each perturbation.
	Marks []int
}

// NewHistogram builds a recorder for a machine with the given state
// names.
func NewHistogram(stateNames []string) *Histogram {
	return &Histogram{StateNames: stateNames}
}

// Observer returns the engine.SyncConfig observer that feeds the
// histogram.
func (h *Histogram) Observer() func(round int, states []nfsm.State) {
	return func(round int, states []nfsm.State) {
		row := make([]int, len(h.StateNames))
		for _, q := range states {
			if int(q) < len(row) {
				row[q]++
			}
		}
		h.Counts = append(h.Counts, row)
	}
}

// WriteCSV renders the histogram as CSV with a round column; dynamic
// runs (Marks non-empty) additionally carry a perturbed column that is
// 1 on the first round executed after each mutation batch.
func (h *Histogram) WriteCSV(w io.Writer) error {
	marked := make(map[int]bool, len(h.Marks))
	for _, r := range h.Marks {
		marked[r+1] = true
	}
	var b strings.Builder
	b.WriteString("round")
	for _, name := range h.StateNames {
		b.WriteString(",")
		b.WriteString(csvEscape(name))
	}
	if len(h.Marks) > 0 {
		b.WriteString(",perturbed")
	}
	b.WriteString("\n")
	for r, row := range h.Counts {
		b.WriteString(strconv.Itoa(r + 1))
		for _, c := range row {
			b.WriteString(",")
			b.WriteString(strconv.Itoa(c))
		}
		if len(h.Marks) > 0 {
			if marked[r+1] {
				b.WriteString(",1")
			} else {
				b.WriteString(",0")
			}
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Timeline records the full per-node state evolution of a synchronous
// run. Memory is O(rounds·n); intended for small diagnostic runs.
type Timeline struct {
	// States[r][v] is node v's state after round r+1.
	States [][]nfsm.State
}

// Observer returns the engine.SyncConfig observer that feeds the
// timeline.
func (tl *Timeline) Observer() func(round int, states []nfsm.State) {
	return func(round int, states []nfsm.State) {
		tl.States = append(tl.States, append([]nfsm.State(nil), states...))
	}
}

// ChangedAt returns the rounds (1-based) at which node v changed state.
func (tl *Timeline) ChangedAt(v int) []int {
	var out []int
	for r := 1; r < len(tl.States); r++ {
		if tl.States[r][v] != tl.States[r-1][v] {
			out = append(out, r+1)
		}
	}
	return out
}

// StepLog records asynchronous node steps: (time, node, step, state)
// tuples in execution order.
type StepLog struct {
	// Times, Nodes, Steps and States are parallel slices.
	Times  []float64
	Nodes  []int
	Steps  []int
	States []nfsm.State
}

// Observer returns the engine.AsyncConfig observer that feeds the log.
func (l *StepLog) Observer() func(time float64, node, step int, state nfsm.State) {
	return func(time float64, node, step int, state nfsm.State) {
		l.Times = append(l.Times, time)
		l.Nodes = append(l.Nodes, node)
		l.Steps = append(l.Steps, step)
		l.States = append(l.States, state)
	}
}

// Len returns the number of recorded steps.
func (l *StepLog) Len() int { return len(l.Times) }

// WriteCSV renders the step log as CSV.
func (l *StepLog) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("time,node,step,state\n")
	for i := range l.Times {
		fmt.Fprintf(&b, "%g,%d,%d,%d\n", l.Times[i], l.Nodes[i], l.Steps[i], l.States[i])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MonotoneTimes reports whether the recorded step times are
// non-decreasing — a sanity check on the event queue's ordering.
func (l *StepLog) MonotoneTimes() bool {
	for i := 1; i < len(l.Times); i++ {
		if l.Times[i] < l.Times[i-1] {
			return false
		}
	}
	return true
}
