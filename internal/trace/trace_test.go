package trace

import (
	"strings"
	"testing"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/mis"
	"stoneage/internal/nfsm"
)

func TestHistogramRecordsRun(t *testing.T) {
	g := graph.Cycle(20)
	p := mis.Protocol()
	h := NewHistogram(p.StateNames)
	res, err := engine.RunSync(p, g, engine.SyncConfig{Seed: 1, Observer: h.Observer()})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Counts) != res.Rounds {
		t.Fatalf("histogram rows %d != rounds %d", len(h.Counts), res.Rounds)
	}
	// Row sums must equal n in every round.
	for r, row := range h.Counts {
		sum := 0
		for _, c := range row {
			sum += c
		}
		if sum != g.N() {
			t.Fatalf("round %d histogram sums to %d", r+1, sum)
		}
	}
	// Final round: everyone in WIN or LOSE.
	last := h.Counts[len(h.Counts)-1]
	if last[mis.Win]+last[mis.Lose] != g.N() {
		t.Fatalf("final histogram %v not all-output", last)
	}
}

func TestHistogramCSV(t *testing.T) {
	h := NewHistogram([]string{"a", "b,c"})
	h.Observer()(1, []nfsm.State{0, 1, 1})
	var sb strings.Builder
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `round,a,"b,c"`) {
		t.Fatalf("header = %q", out)
	}
	if !strings.Contains(out, "1,1,2") {
		t.Fatalf("row missing: %q", out)
	}
}

// TestHistogramPerturbationMarkers checks the dynamic-run column: a
// mark at round r (engine convention: batch applied between rounds r
// and r+1) flags the CSV row of round r+1, and static histograms carry
// no perturbed column at all.
func TestHistogramPerturbationMarkers(t *testing.T) {
	h := NewHistogram([]string{"a", "b"})
	obs := h.Observer()
	for r := 1; r <= 4; r++ {
		obs(r, []nfsm.State{0, 1})
	}
	h.Marks = []int{0, 2} // batches before round 1 and before round 3
	var sb strings.Builder
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "round,a,b,perturbed" {
		t.Fatalf("header = %q", lines[0])
	}
	want := []string{"1,1,1,1", "2,1,1,0", "3,1,1,1", "4,1,1,0"}
	for i, w := range want {
		if lines[i+1] != w {
			t.Fatalf("row %d = %q, want %q", i+1, lines[i+1], w)
		}
	}

	static := NewHistogram([]string{"a", "b"})
	static.Observer()(1, []nfsm.State{0, 1})
	sb.Reset()
	if err := static.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "perturbed") {
		t.Fatalf("static histogram grew a perturbed column: %q", sb.String())
	}
}

func TestTimelineChangedAt(t *testing.T) {
	var tl Timeline
	obs := tl.Observer()
	obs(1, []nfsm.State{0, 0})
	obs(2, []nfsm.State{0, 1})
	obs(3, []nfsm.State{2, 1})
	if got := tl.ChangedAt(0); len(got) != 1 || got[0] != 3 {
		t.Fatalf("node 0 changes = %v", got)
	}
	if got := tl.ChangedAt(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("node 1 changes = %v", got)
	}
}

func TestTimelineCopiesStates(t *testing.T) {
	var tl Timeline
	obs := tl.Observer()
	states := []nfsm.State{0}
	obs(1, states)
	states[0] = 7
	if tl.States[0][0] != 0 {
		t.Fatal("timeline aliased the engine's state slice")
	}
}

func TestStepLogOnAsyncRun(t *testing.T) {
	g := graph.Path(6)
	// A three-step countdown protocol: deterministic, no communication,
	// terminates after every node takes three steps.
	countdown := &nfsm.RoundProtocol{
		Name:        "countdown",
		StateNames:  []string{"three", "two", "one", "done"},
		LetterNames: []string{"x"},
		Input:       []nfsm.State{0},
		Output:      []bool{false, false, false, true},
		Initial:     0,
		B:           1,
		Transition: func(q nfsm.State, counts []nfsm.Count) []nfsm.Move {
			if q == 3 {
				return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}}
			}
			return []nfsm.Move{{Next: q + 1, Emit: nfsm.NoLetter}}
		},
	}
	var log StepLog
	_, err := engine.RunAsync(countdown, g, engine.AsyncConfig{
		Seed:      1,
		Adversary: engine.UniformRandom{Seed: 2},
		Observer:  log.Observer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Fatal("no steps recorded")
	}
	if !log.MonotoneTimes() {
		t.Fatal("step times are not monotone")
	}
	var sb strings.Builder
	if err := log.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "time,node,step,state\n") {
		t.Fatalf("csv header wrong: %q", sb.String()[:40])
	}
}
