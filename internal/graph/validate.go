package graph

import "fmt"

// This file implements the solution validators: the correctness side of
// every experiment asserts its protocol output with these checks.

// Validate checks the structural invariants every generator must
// preserve: adjacency lists sorted and duplicate-free, no self-loops,
// port symmetry (u appears in adj[v] exactly when v appears in adj[u],
// so PortOf is total on edges in both directions), and an edge count
// consistent with the lists. The campaign runner validates every
// generated graph before handing it to an engine.
func (g *Graph) Validate() error {
	degSum := 0
	for v, nb := range g.adj {
		degSum += len(nb)
		for i, u := range nb {
			if u < 0 || u >= g.N() {
				return fmt.Errorf("graph: node %d lists out-of-range neighbor %d", v, u)
			}
			if u == v {
				return fmt.Errorf("graph: self-loop at node %d", v)
			}
			if i > 0 && nb[i-1] >= u {
				return fmt.Errorf("graph: adjacency of node %d not sorted/duplicate-free at index %d", v, i)
			}
			if g.PortOf(u, v) < 0 {
				return fmt.Errorf("graph: asymmetric edge: %d lists %d but not vice versa", v, u)
			}
		}
	}
	if degSum != 2*g.m {
		return fmt.Errorf("graph: edge count %d inconsistent with degree sum %d", g.m, degSum)
	}
	return nil
}

// IsPathOrdered reports whether g is the Path generator's ordering:
// node i adjacent to exactly i−1 and i+1. Path-only protocols (e.g.
// Cole–Vishkin, which derives the parent port from it) validate their
// input with this check.
func (g *Graph) IsPathOrdered() error {
	n := g.N()
	if n == 0 {
		return fmt.Errorf("graph: empty graph is not a path")
	}
	if g.m != n-1 {
		return fmt.Errorf("graph: %d edges on %d nodes is not a path", g.m, n)
	}
	for v := 0; v+1 < n; v++ {
		if !g.HasEdge(v, v+1) {
			return fmt.Errorf("graph: missing path edge (%d,%d); need graph.Path ordering", v, v+1)
		}
	}
	return nil
}

// IsIndependentSet reports whether the node set given by inSet (length n)
// is independent: no edge has both endpoints in the set.
func (g *Graph) IsIndependentSet(inSet []bool) error {
	if len(inSet) != g.N() {
		return fmt.Errorf("graph: set mask length %d != n %d", len(inSet), g.N())
	}
	for u, nb := range g.adj {
		if !inSet[u] {
			continue
		}
		for _, v := range nb {
			if inSet[v] {
				return fmt.Errorf("graph: nodes %d and %d are adjacent and both in the set", u, v)
			}
		}
	}
	return nil
}

// IsMaximalIndependentSet reports whether inSet is an MIS: independent, and
// every node outside the set has a neighbor inside it.
func (g *Graph) IsMaximalIndependentSet(inSet []bool) error {
	if err := g.IsIndependentSet(inSet); err != nil {
		return err
	}
	for v := range g.adj {
		if inSet[v] {
			continue
		}
		dominated := false
		for _, u := range g.adj[v] {
			if inSet[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("graph: node %d is outside the set but has no neighbor inside (not maximal)", v)
		}
	}
	return nil
}

// IsProperColoring reports whether colors (length n) assigns different
// colors to adjacent nodes and uses only colors in [1, maxColors].
func (g *Graph) IsProperColoring(colors []int, maxColors int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("graph: color vector length %d != n %d", len(colors), g.N())
	}
	for v, c := range colors {
		if c < 1 || c > maxColors {
			return fmt.Errorf("graph: node %d has color %d outside [1,%d]", v, c, maxColors)
		}
	}
	for u, nb := range g.adj {
		for _, v := range nb {
			if u < v && colors[u] == colors[v] {
				return fmt.Errorf("graph: adjacent nodes %d and %d share color %d", u, v, colors[u])
			}
		}
	}
	return nil
}

// IsMatching reports whether mate (length n, mate[v] = matched partner or
// -1) encodes a matching: symmetric, over edges only.
func (g *Graph) IsMatching(mate []int) error {
	if len(mate) != g.N() {
		return fmt.Errorf("graph: mate vector length %d != n %d", len(mate), g.N())
	}
	for v, u := range mate {
		if u == -1 {
			continue
		}
		if u < 0 || u >= g.N() {
			return fmt.Errorf("graph: node %d matched to out-of-range %d", v, u)
		}
		if mate[u] != v {
			return fmt.Errorf("graph: matching not symmetric at (%d,%d)", v, u)
		}
		if !g.HasEdge(v, u) {
			return fmt.Errorf("graph: matched pair (%d,%d) is not an edge", v, u)
		}
	}
	return nil
}

// IsMaximalMatching reports whether mate encodes a maximal matching: a
// matching such that every edge has at least one matched endpoint.
func (g *Graph) IsMaximalMatching(mate []int) error {
	if err := g.IsMatching(mate); err != nil {
		return err
	}
	for u, nb := range g.adj {
		for _, v := range nb {
			if u < v && mate[u] == -1 && mate[v] == -1 {
				return fmt.Errorf("graph: edge (%d,%d) has both endpoints unmatched (not maximal)", u, v)
			}
		}
	}
	return nil
}

// GoodTreeNodes returns the "good" nodes of Section 5: leaves, and
// degree-2 nodes both of whose neighbors have degree at most 2. It also
// returns the count. Observation 5.2 asserts the count is at least n/5 in
// every tree.
func (g *Graph) GoodTreeNodes() ([]bool, int) {
	good := make([]bool, g.N())
	count := 0
	for v, nb := range g.adj {
		switch {
		case len(nb) == 1:
			good[v] = true
		case len(nb) == 2:
			if g.Degree(nb[0]) <= 2 && g.Degree(nb[1]) <= 2 {
				good[v] = true
			}
		}
		if good[v] {
			count++
		}
	}
	return good, count
}

// GoodMISNodes returns the "good" nodes of Section 4 (following Alon,
// Babai, Itai): nodes v with at least d(v)/3 neighbors of degree ≤ d(v).
// Isolated nodes are good vacuously. Lemma 4.4 asserts more than half the
// edges are incident on good nodes; EdgesIncidentOnGood measures that.
func (g *Graph) GoodMISNodes() []bool {
	good := make([]bool, g.N())
	for v, nb := range g.adj {
		d := len(nb)
		if d == 0 {
			good[v] = true
			continue
		}
		le := 0
		for _, u := range nb {
			if g.Degree(u) <= d {
				le++
			}
		}
		// "at least a third": 3·le ≥ d avoids float arithmetic.
		if 3*le >= d {
			good[v] = true
		}
	}
	return good
}

// EdgesIncidentOnGood returns the number of edges with at least one good
// endpoint, given a goodness mask.
func (g *Graph) EdgesIncidentOnGood(good []bool) int {
	count := 0
	for u, nb := range g.adj {
		for _, v := range nb {
			if u < v && (good[u] || good[v]) {
				count++
			}
		}
	}
	return count
}
