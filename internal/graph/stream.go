package graph

import (
	"fmt"
	"math"

	"stoneage/internal/xrand"
)

// This file is the implicit-graph path to million-node instances. The
// materialized Graph keeps nested adjacency slices and per-edge structs,
// which is fine up to tens of thousands of nodes but dominates memory
// long before the engines do at n = 10⁶. An EdgeStream instead *emits*
// edges from a closed-form or seeded-RNG description, and BuildCSR
// consumes the stream twice (degree pass, fill pass) to assemble the
// exact CSR layout the engines execute — never holding an O(m) edge
// list, only the O(n + m) CSR arrays themselves plus O(n) scratch.

// EdgeStream describes a graph implicitly as a repeatable edge emitter.
//
// Edges must invoke emit exactly once per undirected edge {u, v}
// (either endpoint order), with 0 ≤ u, v < N(), u ≠ v, and no
// duplicates. Every call to Edges must emit the identical edge multiset
// — implementations that sample from randomness must re-derive their
// source from a stored seed on each call, not consume a shared stream.
type EdgeStream interface {
	// N returns the number of nodes.
	N() int
	// Edges calls emit once per undirected edge.
	Edges(emit func(u, v int32))
}

// BuildCSR assembles the compressed-sparse-row snapshot of the stream
// with two passes: a degree-counting pass sizes the runs, a fill pass
// writes them, then each run is sorted in place and the reverse-port
// table is derived with the same ascending-scan cursor trick as
// Graph.CSR. The result is layout-identical to ToGraph(s).CSR(), so the
// engines (and the differential tests) cannot tell the two apart.
//
// Peak extra memory beyond the returned CSR is one int32 per node.
func BuildCSR(s EdgeStream) (*CSR, error) {
	n := s.N()
	if n < 0 {
		return nil, fmt.Errorf("graph: stream reports negative n %d", n)
	}
	deg := make([]int32, n)
	var m int64
	var streamErr error
	s.Edges(func(u, v int32) {
		if streamErr != nil {
			return
		}
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			streamErr = fmt.Errorf("graph: stream edge (%d,%d) out of range [0,%d)", u, v, n)
			return
		}
		if u == v {
			streamErr = fmt.Errorf("graph: stream emitted self-loop at node %d", u)
			return
		}
		deg[u]++
		deg[v]++
		m++
	})
	if streamErr != nil {
		return nil, streamErr
	}
	if 2*m > math.MaxInt32 {
		return nil, fmt.Errorf("graph: %d edges exceed the int32 CSR index space", m)
	}
	c := &CSR{
		NbrOff:  make([]int32, n+1),
		NbrDat:  make([]int32, 2*m),
		RevPort: make([]int32, 2*m),
	}
	var off int32
	for v := 0; v < n; v++ {
		c.NbrOff[v] = off
		off += deg[v]
	}
	c.NbrOff[n] = off
	// Fill pass, reusing deg as the per-node write cursor.
	cur := deg
	copy(cur, c.NbrOff[:n])
	var m2 int64
	s.Edges(func(u, v int32) {
		if streamErr != nil {
			return
		}
		m2++
		if m2 > m {
			streamErr = fmt.Errorf("graph: stream is not repeatable: second pass emitted more than %d edges", m)
			return
		}
		c.NbrDat[cur[u]] = v
		cur[u]++
		c.NbrDat[cur[v]] = u
		cur[v]++
	})
	if streamErr != nil {
		return nil, streamErr
	}
	if m2 != m {
		return nil, fmt.Errorf("graph: stream is not repeatable: passes emitted %d then %d edges", m, m2)
	}
	for v := 0; v < n; v++ {
		run := c.NbrDat[c.NbrOff[v]:c.NbrOff[v+1]]
		sortRun(run)
		for i := 1; i < len(run); i++ {
			if run[i] == run[i-1] {
				return nil, fmt.Errorf("graph: stream emitted duplicate edge {%d,%d}", v, run[i])
			}
		}
	}
	// Reverse ports: scanning u ascending, the successive occurrences of
	// w visit adj(w) in sorted order (see Graph.CSR).
	for v := range cur {
		cur[v] = 0
	}
	for u := 0; u < n; u++ {
		for k := c.NbrOff[u]; k < c.NbrOff[u+1]; k++ {
			w := c.NbrDat[k]
			c.RevPort[c.NbrOff[w]+cur[w]] = k - c.NbrOff[u]
			cur[w]++
		}
	}
	return c, nil
}

// sortRun sorts a (typically short) adjacency run in place: insertion
// sort below a small threshold, in-place heapsort above it. Both avoid
// the per-call closure allocations of sort.Slice across n runs.
func sortRun(a []int32) {
	if len(a) < 24 {
		for i := 1; i < len(a); i++ {
			x := a[i]
			j := i - 1
			for j >= 0 && a[j] > x {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = x
		}
		return
	}
	heapify(a)
	for end := len(a) - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDown(a[:end], 0)
	}
}

func heapify(a []int32) {
	for i := len(a)/2 - 1; i >= 0; i-- {
		siftDown(a, i)
	}
}

func siftDown(a []int32, i int) {
	for {
		l := 2*i + 1
		if l >= len(a) {
			return
		}
		big := l
		if r := l + 1; r < len(a) && a[r] > a[l] {
			big = r
		}
		if a[big] <= a[i] {
			return
		}
		a[i], a[big] = a[big], a[i]
		i = big
	}
}

// ToGraph materializes the stream as an adjacency-list Graph. It exists
// for the small-n differential tests (streamed-vs-materialized builders
// compared edge for edge) and for code paths that still need Graph
// semantics; at large n use BuildCSR directly.
func ToGraph(s EdgeStream) (*Graph, error) {
	g := New(s.N())
	var streamErr error
	s.Edges(func(u, v int32) {
		if streamErr != nil {
			return
		}
		if err := g.AddEdge(int(u), int(v)); err != nil {
			streamErr = err
		}
	})
	if streamErr != nil {
		return nil, streamErr
	}
	return g, nil
}

// funcStream adapts (n, edges) pairs to EdgeStream.
type funcStream struct {
	n     int
	edges func(emit func(u, v int32))
}

func (s funcStream) N() int                      { return s.n }
func (s funcStream) Edges(emit func(u, v int32)) { s.edges(emit) }

// CycleStream streams the cycle graph C_n, matching Cycle(n) (a path
// for n < 3).
func CycleStream(n int) EdgeStream {
	return funcStream{n: n, edges: func(emit func(u, v int32)) {
		for v := 0; v+1 < n; v++ {
			emit(int32(v), int32(v+1))
		}
		if n >= 3 {
			emit(int32(n-1), 0)
		}
	}}
}

// RandomTreeStream streams the uniform-attachment random tree,
// draw-identical to RandomTree(n, xrand.New(seed)).
func RandomTreeStream(n int, seed uint64) EdgeStream {
	return funcStream{n: n, edges: func(emit func(u, v int32)) {
		src := xrand.New(seed)
		for v := 1; v < n; v++ {
			emit(int32(v), int32(src.Intn(v)))
		}
	}}
}

// GnpConnectedStream streams a G(n,p) sample over a random-attachment
// spanning backbone — the same model as GnpConnected, but the pair scan
// is replaced by geometric skip sampling: instead of flipping a coin
// per pair (O(n²) draws), it jumps directly between successful pairs in
// the lexicographic (u,v) order, costing O(n + m) expected time. The
// instance for a given seed therefore differs from GnpConnected's (the
// two consume randomness differently) but follows the same
// distribution, up to the backbone-collision detail: both emit each
// backbone edge exactly once and sample every remaining pair with
// probability p.
func GnpConnectedStream(n int, p float64, seed uint64) EdgeStream {
	return funcStream{n: n, edges: func(emit func(u, v int32)) {
		src := xrand.New(seed)
		parent := make([]int32, n)
		for v := 1; v < n; v++ {
			parent[v] = int32(src.Intn(v))
			emit(int32(v), parent[v])
		}
		if n < 2 || p <= 0 {
			return
		}
		isBackbone := func(u, v int32) bool {
			// u < v, and v's backbone parent is < v, so only one
			// direction can match.
			return parent[v] == u
		}
		if p >= 1 {
			for u := int32(0); u < int32(n); u++ {
				for v := u + 1; v < int32(n); v++ {
					if !isBackbone(u, v) {
						emit(u, v)
					}
				}
			}
			return
		}
		// Geometric skip sampling over the C(n,2) pairs in row-major
		// (u,v) order: after each hit, skip ~Geometric(p) pairs.
		lq := math.Log1p(-p) // ln(1-p) < 0
		total := int64(n) * int64(n-1) / 2
		var u int32
		rowStart, rowEnd := int64(0), int64(n-1)
		t := int64(-1)
		for {
			gap := math.Log1p(-src.Float64()) / lq
			if gap >= float64(total-t) {
				return
			}
			t += 1 + int64(gap)
			if t >= total {
				return
			}
			for t >= rowEnd {
				u++
				rowStart = rowEnd
				rowEnd += int64(n) - 1 - int64(u)
			}
			v := u + 1 + int32(t-rowStart)
			if !isBackbone(u, v) {
				emit(u, v)
			}
		}
	}}
}

// RandomGeometricStream streams the random geometric graph,
// draw-identical to RandomGeometric(n, r, xrand.New(seed)): n points in
// the unit square bucketed into an r-sized grid, edges between pairs
// within distance r. Point coordinates are O(n) scratch regenerated on
// every pass; edges are never stored.
func RandomGeometricStream(n int, r float64, seed uint64) EdgeStream {
	return funcStream{n: n, edges: func(emit func(u, v int32)) {
		if n == 0 || r <= 0 {
			return
		}
		src := xrand.New(seed)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = src.Float64()
			ys[i] = src.Float64()
		}
		side := int(1 / r)
		if side < 1 {
			side = 1
		}
		bucket := make(map[[2]int][]int32, n)
		cellOf := func(i int) [2]int {
			cx := int(xs[i] * float64(side))
			cy := int(ys[i] * float64(side))
			if cx >= side {
				cx = side - 1
			}
			if cy >= side {
				cy = side - 1
			}
			return [2]int{cx, cy}
		}
		for i := 0; i < n; i++ {
			c := cellOf(i)
			bucket[c] = append(bucket[c], int32(i))
		}
		r2 := r * r
		for i := 0; i < n; i++ {
			c := cellOf(i)
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					for _, j := range bucket[[2]int{c[0] + dx, c[1] + dy}] {
						if int(j) <= i {
							continue
						}
						ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
						if ddx*ddx+ddy*ddy <= r2 {
							emit(int32(i), j)
						}
					}
				}
			}
		}
	}}
}
