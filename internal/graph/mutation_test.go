package graph_test

import (
	"strings"
	"testing"

	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

func TestRemoveEdge(t *testing.T) {
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.RemoveEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	if g.M() != 3 || g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatalf("edge (1,2) survived removal: m=%d", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(1, 2); err == nil {
		t.Fatal("second removal of (1,2) should fail")
	}
	if err := g.RemoveEdge(0, 9); err == nil {
		t.Fatal("out-of-range removal should fail")
	}
	// Re-adding after removal restores the edge.
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 || !g.HasEdge(1, 2) {
		t.Fatal("re-add after removal failed")
	}
}

func TestMutationApply(t *testing.T) {
	g := graph.Path(5)
	cases := []struct {
		m  graph.Mutation
		ok bool
	}{
		{graph.Mutation{Kind: graph.MutAddEdge, U: 0, V: 4}, true},
		{graph.Mutation{Kind: graph.MutAddEdge, U: 0, V: 1}, false}, // duplicate
		{graph.Mutation{Kind: graph.MutAddEdge, U: 2, V: 2}, false}, // self-loop
		{graph.Mutation{Kind: graph.MutRemoveEdge, U: 1, V: 2}, true},
		{graph.Mutation{Kind: graph.MutRemoveEdge, U: 1, V: 2}, false}, // absent
		{graph.Mutation{Kind: graph.MutCrashNode, U: 3}, true},
		{graph.Mutation{Kind: graph.MutCrashNode, U: 7}, false}, // out of range
		{graph.Mutation{Kind: graph.MutRestartNode, U: 3}, true},
		{graph.Mutation{Kind: graph.MutWakeNode, U: 0}, true},
		{graph.Mutation{Kind: graph.MutWakeNode, U: 0, V: 2}, false}, // stray V
		{graph.Mutation{Kind: graph.MutationKind(99), U: 0}, false},
	}
	for _, c := range cases {
		err := c.m.Apply(g)
		if (err == nil) != c.ok {
			t.Errorf("%s: error = %v, want ok=%v", c.m, err, c.ok)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 { // path had 4 edges: +1 (chord) −1 (removal)
		t.Fatalf("m = %d after mutations, want 4", g.M())
	}
}

func TestMutationTouchesAndString(t *testing.T) {
	add := graph.Mutation{Kind: graph.MutAddEdge, U: 1, V: 2}
	if got := add.Touches(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("add.Touches() = %v", got)
	}
	if got := (graph.Mutation{Kind: graph.MutCrashNode, U: 3}).Touches(); got != nil {
		t.Fatalf("crash.Touches() = %v, want nil", got)
	}
	if got := (graph.Mutation{Kind: graph.MutRestartNode, U: 3}).Touches(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("restart.Touches() = %v", got)
	}
	if !add.Topological() || (graph.Mutation{Kind: graph.MutWakeNode}).Topological() {
		t.Fatal("Topological misclassifies kinds")
	}
	if s := add.String(); !strings.Contains(s, "add-edge") {
		t.Fatalf("String() = %q", s)
	}
}

// TestRemapPorts pins the port-identity contract: after an arbitrary
// add/remove batch, every directed edge that exists in both snapshots
// maps to the slot holding the same (from, to) pair, and new edges map
// to -1.
func TestRemapPorts(t *testing.T) {
	src := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		g := graph.Gnp(20, 0.2, src)
		old := g.CSR()
		gOld := g.Clone()

		// Random batch: flip ~6 node pairs.
		for i := 0; i < 6; i++ {
			u, v := src.Intn(20), src.Intn(20)
			if u == v {
				continue
			}
			if g.HasEdge(u, v) {
				if err := g.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		cur := g.CSR()
		remap := graph.RemapPorts(old, cur)

		for v := 0; v < g.N(); v++ {
			nb := g.Neighbors(v)
			for i, u := range nb {
				k := int(cur.NbrOff[v]) + i
				if cur.NbrDat[k] != int32(u) {
					t.Fatalf("CSR slot %d of node %d holds %d, want %d", i, v, cur.NbrDat[k], u)
				}
				if gOld.HasEdge(v, u) {
					o := remap[k]
					if o < 0 {
						t.Fatalf("surviving edge %d→%d mapped to -1", v, u)
					}
					if int(old.NbrDat[o]) != u || o < old.NbrOff[v] || o >= old.NbrOff[v+1] {
						t.Fatalf("edge %d→%d remapped to slot %d holding %d→%d",
							v, u, o, v, old.NbrDat[o])
					}
				} else if remap[k] != -1 {
					t.Fatalf("new edge %d→%d mapped to old slot %d", v, u, remap[k])
				}
			}
		}
	}
}

// TestInducedSubgraphInvariants pins the port/relabel contract of
// InducedSubgraph: the orig mapping is strictly increasing (so relative
// port order of surviving neighbors is preserved), degrees match the
// kept-neighbor counts, every subgraph edge pulls back to an original
// edge and vice versa, and the result passes Validate.
func TestInducedSubgraphInvariants(t *testing.T) {
	src := xrand.New(11)
	for trial := 0; trial < 40; trial++ {
		n := 5 + src.Intn(30)
		g := graph.Gnp(n, 0.25, src)
		keep := make([]bool, n)
		for v := range keep {
			keep[v] = src.Intn(3) > 0
		}
		sub, orig := g.InducedSubgraph(keep)
		if err := sub.Validate(); err != nil {
			t.Fatalf("induced subgraph invalid: %v", err)
		}
		for i := 1; i < len(orig); i++ {
			if orig[i-1] >= orig[i] {
				t.Fatalf("orig not strictly increasing at %d: %v", i, orig)
			}
		}
		for i, v := range orig {
			if !keep[v] {
				t.Fatalf("orig[%d] = %d was not kept", i, v)
			}
			// Degree = number of kept neighbors of the original node.
			kept := 0
			for _, u := range g.Neighbors(v) {
				if keep[u] {
					kept++
				}
			}
			if sub.Degree(i) != kept {
				t.Fatalf("degree of %d (orig %d) = %d, want %d", i, v, sub.Degree(i), kept)
			}
			// Port order: successive sub-neighbors pull back to
			// successive kept original neighbors, in the same order.
			prev := -1
			for port, u := range sub.Neighbors(i) {
				ou := orig[u]
				if !g.HasEdge(v, ou) {
					t.Fatalf("sub edge (%d,%d) pulls back to non-edge (%d,%d)", i, u, v, ou)
				}
				if ou <= prev {
					t.Fatalf("port %d of %d breaks relative order: orig %d after %d", port, i, ou, prev)
				}
				prev = ou
			}
		}
		// Every original edge with both endpoints kept appears in sub.
		newID := make(map[int]int, len(orig))
		for i, v := range orig {
			newID[v] = i
		}
		want := 0
		for _, e := range g.Edges() {
			if keep[e[0]] && keep[e[1]] {
				want++
				if !sub.HasEdge(newID[e[0]], newID[e[1]]) {
					t.Fatalf("kept edge (%d,%d) missing from subgraph", e[0], e[1])
				}
			}
		}
		if sub.M() != want {
			t.Fatalf("sub.M() = %d, want %d", sub.M(), want)
		}
	}
}
