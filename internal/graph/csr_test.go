package graph

import (
	"testing"

	"stoneage/internal/xrand"
)

func checkCSR(t *testing.T, g *Graph) {
	t.Helper()
	c := g.CSR()
	if c.N() != g.N() {
		t.Fatalf("CSR.N() = %d, want %d", c.N(), g.N())
	}
	if len(c.NbrDat) != 2*g.M() || len(c.RevPort) != 2*g.M() {
		t.Fatalf("CSR arrays have %d/%d entries, want %d", len(c.NbrDat), len(c.RevPort), 2*g.M())
	}
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		if c.Degree(v) != len(nb) {
			t.Fatalf("node %d: CSR degree %d != %d", v, c.Degree(v), len(nb))
		}
		for i, u := range nb {
			k := int(c.NbrOff[v]) + i
			if int(c.NbrDat[k]) != u {
				t.Fatalf("node %d: NbrDat[%d] = %d, want %d", v, k, c.NbrDat[k], u)
			}
			// RevPort must invert the port numbering: following the
			// reverse port from v's edge to u lands back on v.
			rp := int(c.RevPort[k])
			if rp != g.PortOf(u, v) {
				t.Fatalf("edge %d→%d: RevPort = %d, want %d", v, u, rp, g.PortOf(u, v))
			}
			if back := int(c.NbrDat[int(c.NbrOff[u])+rp]); back != v {
				t.Fatalf("edge %d→%d: reverse port %d points at %d", v, u, rp, back)
			}
		}
	}
}

func TestCSRMatchesAdjacency(t *testing.T) {
	graphs := map[string]*Graph{
		"empty":    New(0),
		"isolated": New(5),
		"path":     Path(17),
		"cycle":    Cycle(12),
		"star":     Star(9),
		"clique":   Clique(8),
		"gnp":      Gnp(64, 0.15, xrand.New(7)),
		"tree":     RandomTree(40, xrand.New(8)),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) { checkCSR(t, g) })
	}
}

func TestCSRIsASnapshot(t *testing.T) {
	g := New(4)
	g.mustAddEdge(0, 1)
	c := g.CSR()
	g.mustAddEdge(2, 3)
	if len(c.NbrDat) != 2 {
		t.Fatalf("snapshot grew to %d entries after AddEdge", len(c.NbrDat))
	}
}
