package graph

import (
	"stoneage/internal/xrand"
)

// This file contains the workload generators used by the experiment
// harness. Section 4 of the paper evaluates MIS on arbitrary graphs;
// Section 5 evaluates 3-coloring on undirected trees. The tree families
// below deliberately include the extreme shapes for the coloring analysis
// (stars stress the waiting hierarchy, paths and caterpillars stress the
// good-node census of Observation 5.2).

// Path returns the path graph P_n: 0-1-2-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.mustAddEdge(v, v+1)
	}
	return g
}

// Cycle returns the cycle graph C_n (n >= 3); for n < 3 it returns a path.
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.mustAddEdge(n-1, 0)
	}
	return g
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.mustAddEdge(0, v)
	}
	return g
}

// Clique returns the complete graph K_n.
func Clique(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.mustAddEdge(u, v)
		}
	}
	return g
}

// Grid returns the rows×cols grid graph (4-neighbor lattice).
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.mustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.mustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows×cols torus (grid with wraparound), rows, cols >= 3.
// For smaller dimensions it degrades to Grid to keep the graph simple.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		return Grid(rows, cols)
	}
	g := Grid(rows, cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		g.mustAddEdge(id(r, cols-1), id(r, 0))
	}
	for c := 0; c < cols; c++ {
		g.mustAddEdge(id(rows-1, c), id(0, c))
	}
	return g
}

// Gnp returns a binomial random graph G(n, p): every pair becomes an edge
// independently with probability p, drawn from the given deterministic
// stream.
func Gnp(n int, p float64, src *xrand.Source) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if src.Float64() < p {
				g.mustAddEdge(u, v)
			}
		}
	}
	return g
}

// GnpConnected returns a G(n,p) sample augmented with a random spanning
// backbone so the result is always connected (a convenience for run-time
// experiments where disconnected shards trivially parallelize).
func GnpConnected(n int, p float64, src *xrand.Source) *Graph {
	g := New(n)
	// Random-attachment spanning tree backbone.
	for v := 1; v < n; v++ {
		g.mustAddEdge(v, src.Intn(v))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && src.Float64() < p {
				g.mustAddEdge(u, v)
			}
		}
	}
	return g
}

// RandomTree returns a uniform-attachment random tree: node v attaches to a
// uniformly random earlier node. These trees have O(log n) expected height
// and a broad degree distribution.
func RandomTree(n int, src *xrand.Source) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.mustAddEdge(v, src.Intn(v))
	}
	return g
}

// BinaryTree returns the complete-ish binary tree on n nodes (heap order:
// node v has children 2v+1 and 2v+2).
func BinaryTree(n int) *Graph {
	g := New(n)
	for v := 0; v < n; v++ {
		if 2*v+1 < n {
			g.mustAddEdge(v, 2*v+1)
		}
		if 2*v+2 < n {
			g.mustAddEdge(v, 2*v+2)
		}
	}
	return g
}

// Caterpillar returns a caterpillar tree: a spine path of ⌈n/2⌉ nodes with
// the remaining nodes attached as legs spread round-robin along the spine.
// Caterpillars maximize degree-2 spine structure, the "good node" shape of
// Observation 5.2.
func Caterpillar(n int) *Graph {
	if n <= 0 {
		return New(0)
	}
	spine := (n + 1) / 2
	g := New(n)
	for v := 0; v+1 < spine; v++ {
		g.mustAddEdge(v, v+1)
	}
	for leg := spine; leg < n; leg++ {
		g.mustAddEdge(leg, (leg-spine)%spine)
	}
	return g
}

// Broom returns a "broom" tree: a path of length n/2 ending in a star of
// the remaining nodes. It mixes the two extreme tree shapes.
func Broom(n int) *Graph {
	if n <= 0 {
		return New(0)
	}
	handle := n / 2
	if handle == 0 {
		handle = 1
	}
	g := New(n)
	for v := 0; v+1 < handle; v++ {
		g.mustAddEdge(v, v+1)
	}
	for v := handle; v < n; v++ {
		g.mustAddEdge(handle-1, v)
	}
	return g
}

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.mustAddEdge(u, v)
		}
	}
	return g
}

// NearRegular returns a random graph where every node has degree ~d,
// produced by d/2 superimposed random perfect matchings over random
// permutations (parallel edges and self-loops are skipped, so degrees are
// approximate). Useful as a bounded-degree workload.
func NearRegular(n, d int, src *xrand.Source) *Graph {
	g := New(n)
	rounds := d
	for r := 0; r < rounds; r++ {
		p := src.Perm(n)
		for i := 0; i+1 < n; i += 2 {
			u, v := p[i], p[i+1]
			if u != v && !g.HasEdge(u, v) && g.Degree(u) < d && g.Degree(v) < d {
				g.mustAddEdge(u, v)
			}
		}
	}
	return g
}

// ProneuralLattice models the fly sensory-organ-precursor workload of Afek
// et al. (Science 2011), cited in the paper's introduction: cells arranged
// in a hexagonal-ish lattice where each cell inhibits neighbors within
// radius 2 in grid distance. SOP selection is exactly MIS on this graph.
func ProneuralLattice(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for dr := -2; dr <= 2; dr++ {
				for dc := -2; dc <= 2; dc++ {
					if dr == 0 && dc == 0 {
						continue
					}
					if abs(dr)+abs(dc) > 2 {
						continue
					}
					r2, c2 := r+dr, c+dc
					if r2 < 0 || r2 >= rows || c2 < 0 || c2 >= cols {
						continue
					}
					u, v := id(r, c), id(r2, c2)
					if u < v {
						g.mustAddEdge(u, v)
					}
				}
			}
		}
	}
	return g
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
