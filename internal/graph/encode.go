package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The edge-list format is a minimal interchange format used by the CLI
// tools: the first non-comment line is "n <nodes>", every subsequent line
// "u v" declares an edge, '#' starts a comment.

// Encode writes the graph in edge-list format.
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses a graph in edge-list format.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if g == nil {
			if len(fields) != 2 || fields[0] != "n" {
				return nil, fmt.Errorf("graph: line %d: expected header \"n <nodes>\", got %q", line, text)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", line, fields[1])
			}
			g = New(n)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected \"u v\", got %q", line, text)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing header line")
	}
	return g, nil
}
