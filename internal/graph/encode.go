package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The edge-list format is a minimal interchange format used by the CLI
// tools: the first non-comment line is "n <nodes>", every subsequent line
// "u v" declares an edge, '#' starts a comment.

// Encode writes the graph in edge-list format.
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxDecodeNodes bounds the node count Decode accepts. The header
// allocates adjacency storage proportional to its claim, so without a
// cap a 10-byte malformed input can demand gigabytes; 1<<26 nodes is
// far beyond any instance the engines can execute anyway.
const maxDecodeNodes = 1 << 26

// Decode parses a graph in edge-list format.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if g == nil {
			if len(fields) != 2 || fields[0] != "n" {
				return nil, fmt.Errorf("graph: line %d: expected header \"n <nodes>\", got %q", line, text)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", line, fields[1])
			}
			if n > maxDecodeNodes {
				return nil, fmt.Errorf("graph: line %d: node count %d exceeds limit %d", line, n, maxDecodeNodes)
			}
			g = New(n)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected \"u v\", got %q", line, text)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing header line")
	}
	// Decoded graphs feed the same engines as generated ones; hold them
	// to the same structural contract (sorted duplicate-free adjacency,
	// port symmetry, consistent edge count) before anything binds them.
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: decoded graph invalid: %w", err)
	}
	return g, nil
}
