// Package graph provides the undirected-graph substrate on which every
// protocol in this repository runs: the adjacency structure itself, the
// generators used by the experiment workloads (Sections 4 and 5 of the
// paper evaluate on arbitrary graphs and on trees respectively), and the
// validators that decide whether a protocol's output is a correct solution
// (maximal independent set, proper coloring, maximal matching).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a finite simple undirected graph G = (V, E) with V = {0..n-1}.
// The adjacency lists are kept sorted by neighbor id, which gives
// deterministic port numbering to the execution engines.
type Graph struct {
	adj [][]int
	m   int // number of edges
}

// New returns an empty graph on n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns Δ(G), the largest degree in the graph (0 for the empty
// graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for _, nb := range g.adj {
		if len(nb) > d {
			d = len(nb)
		}
	}
	return d
}

// Neighbors returns the sorted adjacency list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.adj[u]
	i := sort.SearchInts(nb, v)
	return i < len(nb) && nb[i] == v
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are rejected with an error (the nFSM model is defined on simple
// graphs).
func (g *Graph) AddEdge(u, v int) error {
	n := g.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.insert(u, v)
	g.insert(v, u)
	g.m++
	return nil
}

// RemoveEdge deletes the undirected edge {u, v}. Removing an absent edge
// (or an out-of-range endpoint) is an error: the dynamic-network layer
// treats a redundant removal as a scenario bug, not a no-op.
func (g *Graph) RemoveEdge(u, v int) error {
	n := g.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
	}
	if !g.HasEdge(u, v) {
		return fmt.Errorf("graph: removing absent edge (%d,%d)", u, v)
	}
	g.remove(u, v)
	g.remove(v, u)
	g.m--
	return nil
}

func (g *Graph) remove(u, v int) {
	nb := g.adj[u]
	i := sort.SearchInts(nb, v)
	g.adj[u] = append(nb[:i], nb[i+1:]...)
}

// mustAddEdge is the internal generator helper: generators construct edges
// they know to be fresh and in range.
func (g *Graph) mustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic("graph: generator bug: " + err.Error())
	}
}

func (g *Graph) insert(u, v int) {
	nb := g.adj[u]
	i := sort.SearchInts(nb, v)
	nb = append(nb, 0)
	copy(nb[i+1:], nb[i:])
	nb[i] = v
	g.adj[u] = nb
}

// Edges returns every edge exactly once as ordered pairs (u < v),
// lexicographically sorted.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u, nb := range g.adj {
		for _, v := range nb {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int, g.N()), m: g.m}
	for v, nb := range g.adj {
		c.adj[v] = append([]int(nil), nb...)
	}
	return c
}

// InducedSubgraph returns the subgraph induced by the node set keep
// (keep[v] true means v survives), together with the mapping from new node
// ids to original ids. Used by the MIS analysis to build the virtual graphs
// G^i of Section 4.
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []int) {
	if len(keep) != g.N() {
		panic("graph: keep mask has wrong length")
	}
	newID := make([]int, g.N())
	var orig []int
	for v := range g.adj {
		if keep[v] {
			newID[v] = len(orig)
			orig = append(orig, v)
		} else {
			newID[v] = -1
		}
	}
	sub := New(len(orig))
	for u, nb := range g.adj {
		if !keep[u] {
			continue
		}
		for _, v := range nb {
			if u < v && keep[v] {
				sub.mustAddEdge(newID[u], newID[v])
			}
		}
	}
	return sub, orig
}

// Connected reports whether the graph is connected. The empty graph is
// considered connected.
func (g *Graph) Connected() bool {
	n := g.N()
	if n == 0 {
		return true
	}
	return g.bfsCount(0) == n
}

func (g *Graph) bfsCount(start int) int {
	seen := make([]bool, g.N())
	queue := []int{start}
	seen[start] = true
	count := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		count++
		for _, u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return count
}

// IsTree reports whether the graph is a tree: connected with exactly n-1
// edges. The single-node graph is a tree; the empty graph is not.
func (g *Graph) IsTree() bool {
	n := g.N()
	return n >= 1 && g.m == n-1 && g.Connected()
}

// Diameter returns the diameter of a connected graph via repeated BFS, or
// an error when the graph is disconnected or empty. Intended for analysis
// of small and medium instances (O(n·m) time).
func (g *Graph) Diameter() (int, error) {
	n := g.N()
	if n == 0 || !g.Connected() {
		return 0, errors.New("graph: diameter undefined for empty or disconnected graph")
	}
	diam := 0
	dist := make([]int, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if dist[v] > diam {
				diam = dist[v]
			}
			for _, u := range g.adj[v] {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
	}
	return diam, nil
}

// PortOf returns the port index of neighbor u at node v: the position of u
// in v's sorted adjacency list. It returns -1 when {u,v} is not an edge.
// The execution engines identify each port ψ_v(u) of the paper's model by
// this index.
func (g *Graph) PortOf(v, u int) int {
	nb := g.adj[v]
	i := sort.SearchInts(nb, u)
	if i < len(nb) && nb[i] == u {
		return i
	}
	return -1
}
