package graph

import (
	"math"

	"stoneage/internal/xrand"
)

// This file contains the sparse-topology families the campaign sweeps
// run on, beyond the hand-shaped generators of generators.go: random
// geometric graphs (the standard wireless / sensor-deployment model),
// preferential-attachment power-law graphs, and small-world rewirings.
// All three are deterministic functions of their xrand source, so a
// campaign trial seed reproduces its graph exactly.

// RandomGeometric returns a random geometric graph: n points placed
// uniformly in the unit square, with an edge between every pair at
// Euclidean distance at most r. Edges are found through an r-sized
// bucket grid, so construction costs O(n + m) expected time instead of
// the naive O(n²) pair scan.
//
// The connectivity threshold is r ≈ √(ln n / (π n)); callers that need a
// connected instance should choose r comfortably above it (see
// GeometricRadius) — the generator itself does not augment the sample.
func RandomGeometric(n int, r float64, src *xrand.Source) *Graph {
	g := New(n)
	if n == 0 || r <= 0 {
		return g
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = src.Float64()
		ys[i] = src.Float64()
	}
	// Bucket the points into an ⌈1/r⌉² grid: all neighbors of a point
	// live in its own or an adjacent bucket.
	side := int(1 / r)
	if side < 1 {
		side = 1
	}
	bucket := make(map[[2]int][]int, n)
	cellOf := func(i int) [2]int {
		cx := int(xs[i] * float64(side))
		cy := int(ys[i] * float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return [2]int{cx, cy}
	}
	for i := 0; i < n; i++ {
		c := cellOf(i)
		bucket[c] = append(bucket[c], i)
	}
	r2 := r * r
	for i := 0; i < n; i++ {
		c := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range bucket[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						g.mustAddEdge(i, j)
					}
				}
			}
		}
	}
	return g
}

// GeometricRadius returns c times the connectivity-threshold radius
// √(ln n / (π n)) of the random geometric model. c = 1.5 gives connected
// instances with high probability at the campaign's sizes.
func GeometricRadius(n int, c float64) float64 {
	if n < 2 {
		return 1
	}
	return c * math.Sqrt(math.Log(float64(n))/(math.Pi*float64(n)))
}

// PreferentialAttachment returns a Barabási–Albert power-law graph: the
// first m+1 nodes form a clique, and every later node attaches to m
// distinct existing nodes chosen with probability proportional to their
// current degree. The result is connected by construction and its degree
// distribution has a heavy tail — the high-degree hubs stress the
// one-two-many clamping in a way near-regular workloads cannot.
func PreferentialAttachment(n, m int, src *xrand.Source) *Graph {
	if m < 1 {
		m = 1
	}
	g := New(n)
	if n <= 1 {
		return g
	}
	seed := m + 1
	if seed > n {
		seed = n
	}
	// targets holds each node once per unit of degree: a uniform pick
	// from it is a degree-proportional pick from the nodes.
	targets := make([]int, 0, 2*m*n)
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			g.mustAddEdge(u, v)
			targets = append(targets, u, v)
		}
	}
	picked := make([]int, 0, m)
	for v := seed; v < n; v++ {
		picked = picked[:0]
		for len(picked) < m {
			u := targets[src.Intn(len(targets))]
			dup := false
			for _, w := range picked {
				if w == u {
					dup = true
					break
				}
			}
			if !dup {
				picked = append(picked, u)
			}
		}
		for _, u := range picked {
			g.mustAddEdge(v, u)
			targets = append(targets, v, u)
		}
	}
	return g
}

// SmallWorld returns a Watts–Strogatz small-world graph: a ring lattice
// where every node is joined to its k nearest neighbors (k even), with
// each clockwise lattice edge rewired to a uniformly random endpoint
// with probability beta. beta = 0 is the pure lattice; beta = 1 is close
// to a random k-regular-ish graph; small beta gives the short-diameter,
// high-clustering regime. Rewiring skips moves that would create a
// self-loop or duplicate edge, so the graph stays simple with exactly
// n·k/2 edges.
func SmallWorld(n, k int, beta float64, src *xrand.Source) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	if k < 2 {
		k = 2
	}
	k &^= 1 // even
	if k >= n {
		k = (n - 1) &^ 1
	}
	for d := 1; d <= k/2; d++ {
		for v := 0; v < n; v++ {
			u := (v + d) % n
			// For d = n/2 the clockwise and counterclockwise edges
			// coincide; mustAddEdge would reject the duplicate.
			if g.HasEdge(v, u) {
				continue
			}
			g.mustAddEdge(v, u)
		}
	}
	edges := g.Edges()
	for _, e := range edges {
		if src.Float64() >= beta {
			continue
		}
		u, v := e[0], e[1]
		w := src.Intn(n)
		if w == u || w == v || g.HasEdge(u, w) {
			continue // keep the lattice edge: the rewire target is taken
		}
		g.removeEdge(u, v)
		g.mustAddEdge(u, w)
	}
	return g
}

// removeEdge deletes the undirected edge {u, v}; it must exist.
func (g *Graph) removeEdge(u, v int) {
	g.removeArc(u, v)
	g.removeArc(v, u)
	g.m--
}

func (g *Graph) removeArc(u, v int) {
	nb := g.adj[u]
	i := g.PortOf(u, v)
	if i < 0 {
		panic("graph: removeEdge on a non-edge")
	}
	g.adj[u] = append(nb[:i], nb[i+1:]...)
}
