package graph

import "fmt"

// This file defines the topology-mutation vocabulary of the dynamic
// network layer (internal/scenario schedules mutations; the engines
// apply them between rounds / at absolute times). The nFSM paper's
// networks are "highly dynamic and error-prone"; a Mutation is one
// atomic perturbation of that kind.
//
// The node-id space is fixed for the lifetime of a run: mutations add
// and remove edges and toggle node liveness, but never renumber nodes.
// Liveness (crash/restart/wake) is execution state, not topology — a
// crashed node keeps its incident edges (its neighbors' ports retain
// whatever it last transmitted, stale) — so the liveness kinds validate
// their node id here and are interpreted by the engines.

// MutationKind enumerates the perturbation vocabulary.
type MutationKind uint8

const (
	// MutAddEdge inserts the edge {U, V}. Both new ports start at the
	// machine's initial letter, exactly like a port at round 0.
	MutAddEdge MutationKind = iota
	// MutRemoveEdge deletes the edge {U, V}; both ports disappear and
	// their letters leave the endpoints' counts.
	MutRemoveEdge
	// MutCrashNode halts node U: it stops taking steps and transmits
	// nothing. Its state and its neighbors' ports from it freeze.
	MutCrashNode
	// MutRestartNode reboots a crashed node U: it resumes from the
	// machine's input state with all of its own ports reset to the
	// initial letter (a reboot clears local memory, ports included).
	MutRestartNode
	// MutWakeNode starts a node U that has been asleep since round 0
	// (scenario.Scenario.Asleep); semantics of the start are identical
	// to MutRestartNode, but waking a node that was never asleep — or
	// restarting one that never crashed — is a scenario bug, and the
	// two kinds keep that validation distinct.
	MutWakeNode
)

// String names the kind for error messages and traces.
func (k MutationKind) String() string {
	switch k {
	case MutAddEdge:
		return "add-edge"
	case MutRemoveEdge:
		return "remove-edge"
	case MutCrashNode:
		return "crash"
	case MutRestartNode:
		return "restart"
	case MutWakeNode:
		return "wake"
	}
	return fmt.Sprintf("mutation(%d)", uint8(k))
}

// Mutation is one atomic perturbation. U and V are the edge endpoints
// for the edge kinds; the liveness kinds use U alone (V must be 0).
type Mutation struct {
	Kind MutationKind `json:"kind"`
	U    int          `json:"u"`
	V    int          `json:"v,omitempty"`
}

// String renders the mutation compactly.
func (m Mutation) String() string {
	switch m.Kind {
	case MutAddEdge, MutRemoveEdge:
		return fmt.Sprintf("%s(%d,%d)", m.Kind, m.U, m.V)
	default:
		return fmt.Sprintf("%s(%d)", m.Kind, m.U)
	}
}

// Touches returns the nodes whose local neighborhood the mutation
// perturbs: both endpoints for the edge kinds, the node itself for
// restart/wake. A crash touches nothing — the crashed node stops
// executing and is reset at restart, and its neighbors' views merely go
// stale, which is exactly the error-proneness protocols must tolerate.
func (m Mutation) Touches() []int {
	switch m.Kind {
	case MutAddEdge, MutRemoveEdge:
		return []int{m.U, m.V}
	case MutRestartNode, MutWakeNode:
		return []int{m.U}
	}
	return nil
}

// Topological reports whether the mutation changes the edge set (and
// therefore forces the engines down the CSR rebind path; liveness-only
// batches take the patch path and keep the layout).
func (m Mutation) Topological() bool {
	return m.Kind == MutAddEdge || m.Kind == MutRemoveEdge
}

// Apply applies the mutation's topological effect to g, validating node
// ranges for every kind. Liveness kinds leave the graph untouched (the
// engines interpret them against their own liveness state).
func (m Mutation) Apply(g *Graph) error {
	switch m.Kind {
	case MutAddEdge:
		return g.AddEdge(m.U, m.V)
	case MutRemoveEdge:
		return g.RemoveEdge(m.U, m.V)
	case MutCrashNode, MutRestartNode, MutWakeNode:
		if m.U < 0 || m.U >= g.N() {
			return fmt.Errorf("graph: %s node %d out of range [0,%d)", m.Kind, m.U, g.N())
		}
		if m.V != 0 {
			return fmt.Errorf("graph: %s carries a stray second node %d", m.Kind, m.V)
		}
		return nil
	}
	return fmt.Errorf("graph: unknown mutation kind %d", m.Kind)
}
