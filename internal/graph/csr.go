package graph

// CSR is a compressed-sparse-row view of the graph: the adjacency lists
// packed into two flat arrays, plus the flattened reverse-port table the
// execution engines need to route transmissions. It exists so the hot
// round loop walks contiguous memory instead of pointer-chasing through
// nested slices.
//
// For every node v the directed edges v → u occupy the index range
// [NbrOff[v], NbrOff[v+1]) of NbrDat, in the same sorted order as
// Neighbors(v); the port index of u at v is therefore k - NbrOff[v].
// RevPort is aligned with NbrDat: for the directed edge at index k from v
// to u = NbrDat[k], RevPort[k] is the port index of v at u — i.e. the
// slot of u's port array that v's transmissions land in.
//
// A CSR is an immutable snapshot: it does not observe edges added to the
// graph after it was built.
type CSR struct {
	// NbrOff has length N()+1; NbrOff[v] is the first index of node v's
	// neighbor run in NbrDat.
	NbrOff []int32
	// NbrDat has length 2·M(); the concatenated sorted adjacency lists.
	NbrDat []int32
	// RevPort has length 2·M(); RevPort[k] is the port of v at NbrDat[k]
	// for the k-th directed edge v → NbrDat[k].
	RevPort []int32
}

// CSR builds the compressed-sparse-row snapshot of the graph in O(n + m),
// amortized over the rounds of any execution that uses it.
func (g *Graph) CSR() *CSR {
	n := g.N()
	c := &CSR{
		NbrOff:  make([]int32, n+1),
		NbrDat:  make([]int32, 2*g.m),
		RevPort: make([]int32, 2*g.m),
	}
	k := 0
	for v := 0; v < n; v++ {
		c.NbrOff[v] = int32(k)
		for _, u := range g.adj[v] {
			c.NbrDat[k] = int32(u)
			k++
		}
	}
	c.NbrOff[n] = int32(k)
	// Reverse ports without per-edge searches: scanning nodes u in
	// ascending order, the successive occurrences of w across the
	// adjacency lists visit exactly adj[w] in sorted order, so a cursor
	// per node tracks where the edge (w → u) lives in w's run.
	cur := make([]int32, n)
	for u := 0; u < n; u++ {
		for i, w := range g.adj[u] {
			c.RevPort[c.NbrOff[w]+cur[w]] = int32(i)
			cur[w]++
		}
	}
	return c
}

// RemapPorts aligns an old CSR snapshot with a new one after a topology
// mutation: it returns, for every directed-edge slot k of the new
// snapshot, the slot the same directed edge occupied in the old
// snapshot, or -1 for an edge that did not exist before. This is the
// port-identity carrier of the dynamic execution path — per-edge state
// (the letter a port holds, its last write time, its FIFO horizon) is
// keyed by the directed edge, not by its slot, so surviving edges keep
// their state across a rebind even though sorted-insertion shifts their
// slot indices.
//
// Both snapshots must cover the same node-id space. The adjacency runs
// are sorted, so a single merge walk per node aligns them in O(n + m)
// with no per-edge searches.
func RemapPorts(old, cur *CSR) []int32 {
	if old.N() != cur.N() {
		panic("graph: RemapPorts across different node-id spaces")
	}
	remap := make([]int32, len(cur.NbrDat))
	for v := 0; v < cur.N(); v++ {
		o, oEnd := old.NbrOff[v], old.NbrOff[v+1]
		for k := cur.NbrOff[v]; k < cur.NbrOff[v+1]; k++ {
			u := cur.NbrDat[k]
			for o < oEnd && old.NbrDat[o] < u {
				o++
			}
			if o < oEnd && old.NbrDat[o] == u {
				remap[k] = o
				o++
			} else {
				remap[k] = -1
			}
		}
	}
	return remap
}

// N returns the number of nodes of the snapshot.
func (c *CSR) N() int { return len(c.NbrOff) - 1 }

// Degree returns the degree of node v in the snapshot.
func (c *CSR) Degree(v int) int { return int(c.NbrOff[v+1] - c.NbrOff[v]) }
