package graph_test

import (
	"bytes"
	"strings"
	"testing"

	"stoneage/internal/graph"
)

// FuzzDecode hardens the edge-list parser against malformed input: on
// arbitrary bytes Decode must return cleanly (graph or error, never a
// panic), every successfully decoded graph must satisfy the structural
// Validate contract, and Encode∘Decode must be the identity on it.
func FuzzDecode(f *testing.F) {
	f.Add([]byte("n 3\n0 1\n1 2\n"))
	f.Add([]byte("# comment\nn 0\n"))
	f.Add([]byte("n 2\n0 1\n0 1\n"))   // duplicate edge
	f.Add([]byte("n 2\n1 1\n"))        // self-loop
	f.Add([]byte("n 2\n0 7\n"))        // out of range
	f.Add([]byte("n -1\n"))            // bad count
	f.Add([]byte("0 1\n"))             // missing header
	f.Add([]byte("n 4\n0 1 2\n"))      // wrong arity
	f.Add([]byte("n 99999999999\n"))   // allocation-bomb header
	f.Add([]byte("n 3\n\n #x\n2 0\n")) // blanks and comments
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := graph.Decode(bytes.NewReader(data))
		if err != nil {
			if g != nil {
				t.Fatalf("Decode returned both a graph and error %v", err)
			}
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoded graph fails Validate: %v", err)
		}
		var enc strings.Builder
		if err := g.Encode(&enc); err != nil {
			t.Fatalf("Encode: %v", err)
		}
		back, err := graph.Decode(strings.NewReader(enc.String()))
		if err != nil {
			t.Fatalf("re-decoding encoded graph: %v", err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("roundtrip shape (%d,%d) != (%d,%d)", back.N(), back.M(), g.N(), g.M())
		}
		for v := 0; v < g.N(); v++ {
			a, b := g.Neighbors(v), back.Neighbors(v)
			if len(a) != len(b) {
				t.Fatalf("roundtrip degree of %d: %d != %d", v, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("roundtrip neighbor %d of %d: %d != %d", i, v, b[i], a[i])
				}
			}
		}
	})
}
