package graph

import (
	"reflect"
	"testing"

	"stoneage/internal/xrand"
)

// TestFamiliesStructurallyValid runs every sweep family through the
// structural validator: sorted duplicate-free adjacency, port symmetry,
// no self-loops, consistent edge count.
func TestFamiliesStructurallyValid(t *testing.T) {
	for _, n := range []int{1, 2, 17, 200} {
		cases := map[string]*Graph{
			"geometric":  RandomGeometric(n, GeometricRadius(n, 1.5), xrand.New(uint64(n))),
			"powerlaw":   PreferentialAttachment(n, 3, xrand.New(uint64(n))),
			"smallworld": SmallWorld(n, 4, 0.2, xrand.New(uint64(n))),
		}
		for name, g := range cases {
			if g.N() != n {
				t.Errorf("%s: N = %d, want %d", name, g.N(), n)
			}
			if err := g.Validate(); err != nil {
				t.Errorf("%s n=%d: %v", name, n, err)
			}
		}
	}
}

// TestFamiliesDeterministicPerSeed pins the reproducibility contract:
// the same seed yields the same graph, different seeds differ (at sizes
// where collision is implausible).
func TestFamiliesDeterministicPerSeed(t *testing.T) {
	gens := map[string]func(seed uint64) *Graph{
		"geometric": func(s uint64) *Graph {
			return RandomGeometric(150, GeometricRadius(150, 1.5), xrand.New(s))
		},
		"powerlaw": func(s uint64) *Graph {
			return PreferentialAttachment(150, 3, xrand.New(s))
		},
		"smallworld": func(s uint64) *Graph {
			return SmallWorld(150, 4, 0.3, xrand.New(s))
		},
	}
	for name, gen := range gens {
		a, b := gen(42), gen(42)
		if !reflect.DeepEqual(a.Edges(), b.Edges()) {
			t.Errorf("%s: same seed produced different graphs", name)
		}
		c := gen(43)
		if reflect.DeepEqual(a.Edges(), c.Edges()) {
			t.Errorf("%s: different seeds produced identical graphs", name)
		}
	}
}

// TestPreferentialAttachmentShape checks the BA invariants: connected
// by construction, every post-seed node has degree >= m, edge count is
// exactly clique(m+1) + m·(n-m-1), and the hub degrees dominate (a
// heavy-tailed distribution has a max degree well above m).
func TestPreferentialAttachmentShape(t *testing.T) {
	const n, m = 400, 3
	g := PreferentialAttachment(n, m, xrand.New(1))
	if !g.Connected() {
		t.Fatal("BA graph disconnected")
	}
	wantM := m * (m + 1) / 2 // seed clique
	wantM += m * (n - m - 1)
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) < m {
			t.Fatalf("node %d has degree %d < m=%d", v, g.Degree(v), m)
		}
	}
	if g.MaxDegree() < 4*m {
		t.Errorf("max degree %d suspiciously small for a power-law graph", g.MaxDegree())
	}
}

// TestSmallWorldShape checks the Watts–Strogatz invariants: the edge
// count of the k-ring is preserved under rewiring, degrees stay near k,
// beta=0 reproduces the pure lattice, and the fixed-seed instances used
// by the campaigns are connected.
func TestSmallWorldShape(t *testing.T) {
	const n, k = 120, 4
	lattice := SmallWorld(n, k, 0, xrand.New(5))
	if lattice.M() != n*k/2 {
		t.Fatalf("lattice M = %d, want %d", lattice.M(), n*k/2)
	}
	for v := 0; v < n; v++ {
		if lattice.Degree(v) != k {
			t.Fatalf("lattice node %d has degree %d, want %d", v, lattice.Degree(v), k)
		}
	}
	for _, seed := range []uint64{1, 2, 3} {
		g := SmallWorld(n, k, 0.2, xrand.New(seed))
		if g.M() != n*k/2 {
			t.Fatalf("seed %d: rewiring changed edge count to %d", seed, g.M())
		}
		if !g.Connected() {
			t.Fatalf("seed %d: rewired small-world graph disconnected", seed)
		}
	}
}

// TestRandomGeometricShape checks the geometric model: a radius
// comfortably above the connectivity threshold yields connected
// fixed-seed instances, a tiny radius yields almost no edges, and the
// bucket-grid edge detection agrees with the O(n²) definition.
func TestRandomGeometricShape(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := RandomGeometric(300, GeometricRadius(300, 2.0), xrand.New(seed))
		if !g.Connected() {
			t.Fatalf("seed %d: geometric graph at 2× threshold disconnected", seed)
		}
	}
	sparse := RandomGeometric(300, 0.001, xrand.New(4))
	if sparse.M() > 2 {
		t.Fatalf("r=0.001 produced %d edges", sparse.M())
	}

	// Differential check against the quadratic reference: same points
	// (same seed/stream), brute-force pair scan.
	const n = 120
	r := GeometricRadius(n, 1.5)
	g := RandomGeometric(n, r, xrand.New(9))
	src := xrand.New(9)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = src.Float64()
		ys[i] = src.Float64()
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			want := dx*dx+dy*dy <= r*r
			if got := g.HasEdge(u, v); got != want {
				t.Fatalf("edge (%d,%d): bucket grid says %v, definition says %v", u, v, got, want)
			}
		}
	}
}

// TestSmallWorldDegenerateSizes exercises the clamping paths.
func TestSmallWorldDegenerateSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5} {
		g := SmallWorld(n, 4, 0.5, xrand.New(7))
		if err := g.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
	if g := PreferentialAttachment(0, 3, xrand.New(1)); g.N() != 0 {
		t.Error("BA n=0 not empty")
	}
	if g := RandomGeometric(0, 0.5, xrand.New(1)); g.N() != 0 {
		t.Error("geometric n=0 not empty")
	}
}
