package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"stoneage/internal/xrand"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if err := g.AddEdge(2, 2); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(0, 7); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
}

func TestNeighborsSortedAndPorts(t *testing.T) {
	g := New(5)
	for _, e := range [][2]int{{3, 1}, {3, 4}, {3, 0}, {3, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	nb := g.Neighbors(3)
	want := []int{0, 1, 2, 4}
	if len(nb) != len(want) {
		t.Fatalf("neighbors = %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", nb, want)
		}
	}
	for i, u := range want {
		if p := g.PortOf(3, u); p != i {
			t.Fatalf("PortOf(3,%d) = %d, want %d", u, p, i)
		}
	}
	if g.PortOf(3, 3) != -1 {
		t.Fatal("PortOf for non-edge should be -1")
	}
}

func TestGeneratorShapes(t *testing.T) {
	tests := []struct {
		name   string
		g      *Graph
		n, m   int
		isTree bool
	}{
		{"path5", Path(5), 5, 4, true},
		{"path1", Path(1), 1, 0, true},
		{"cycle5", Cycle(5), 5, 5, false},
		{"star7", Star(7), 7, 6, true},
		{"clique5", Clique(5), 5, 10, false},
		{"grid3x4", Grid(3, 4), 12, 17, false},
		{"binary7", BinaryTree(7), 7, 6, true},
		{"caterpillar9", Caterpillar(9), 9, 8, true},
		{"broom10", Broom(10), 10, 9, true},
		{"bipartite", CompleteBipartite(3, 4), 7, 12, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.n {
				t.Errorf("N = %d, want %d", tt.g.N(), tt.n)
			}
			if tt.g.M() != tt.m {
				t.Errorf("M = %d, want %d", tt.g.M(), tt.m)
			}
			if got := tt.g.IsTree(); got != tt.isTree {
				t.Errorf("IsTree = %v, want %v", got, tt.isTree)
			}
		})
	}
}

// TestClassicGeneratorsValidate runs the structural checker over every
// classic generator of generators.go, including the degenerate small
// sizes (the new-family tests of families_test.go already validate the
// random families at scale): sorted duplicate-free adjacency, no
// self-loops, port symmetry, consistent edge count.
func TestClassicGeneratorsValidate(t *testing.T) {
	src := xrand.New(5)
	cases := map[string]*Graph{
		"path1":        Path(1),
		"path5":        Path(5),
		"cycle1":       Cycle(1),
		"cycle2":       Cycle(2),
		"cycle7":       Cycle(7),
		"star1":        Star(1),
		"star2":        Star(2),
		"star9":        Star(9),
		"clique1":      Clique(1),
		"clique2":      Clique(2),
		"clique6":      Clique(6),
		"grid1x1":      Grid(1, 1),
		"grid1x5":      Grid(1, 5),
		"grid3x4":      Grid(3, 4),
		"torus1x1":     Torus(1, 1),
		"torus2x2":     Torus(2, 2),
		"torus2x5":     Torus(2, 5),
		"torus4x5":     Torus(4, 5),
		"tree1":        RandomTree(1, src),
		"tree64":       RandomTree(64, src),
		"binary1":      BinaryTree(1),
		"binary12":     BinaryTree(12),
		"caterpillar2": Caterpillar(2),
		"caterpillar9": Caterpillar(9),
		"broom3":       Broom(3),
		"broom10":      Broom(10),
		"bipartite1x1": CompleteBipartite(1, 1),
		"bipartite3x4": CompleteBipartite(3, 4),
		"nearregular":  NearRegular(60, 5, src),
		"lattice1x1":   ProneuralLattice(1, 1),
		"lattice5x5":   ProneuralLattice(5, 5),
		"gnp":          Gnp(40, 0.2, src),
		"gnpdense":     Gnp(25, 0.9, src),
		"gnpconnected": GnpConnected(40, 0.05, src),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			if err := g.Validate(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
}

func TestTorusIsFourRegular(t *testing.T) {
	g := Torus(4, 5)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("node %d has degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	src := xrand.New(1)
	for _, n := range []int{1, 2, 3, 10, 100, 500} {
		g := RandomTree(n, src)
		if !g.IsTree() {
			t.Fatalf("RandomTree(%d) is not a tree", n)
		}
	}
}

func TestGnpConnectedIsConnected(t *testing.T) {
	src := xrand.New(2)
	for _, n := range []int{1, 5, 50, 200} {
		g := GnpConnected(n, 0.01, src)
		if !g.Connected() {
			t.Fatalf("GnpConnected(%d) disconnected", n)
		}
	}
}

func TestGnpEdgeCountPlausible(t *testing.T) {
	src := xrand.New(3)
	n, p := 200, 0.1
	g := Gnp(n, p, src)
	expect := p * float64(n*(n-1)/2)
	if f := float64(g.M()); f < expect*0.8 || f > expect*1.2 {
		t.Fatalf("G(n,p) edge count %d far from expectation %.0f", g.M(), expect)
	}
}

func TestNearRegularDegreesBounded(t *testing.T) {
	src := xrand.New(4)
	g := NearRegular(100, 6, src)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > 6 {
			t.Fatalf("node %d has degree %d > 6", v, g.Degree(v))
		}
	}
	if g.M() < 100 {
		t.Fatalf("near-regular graph suspiciously sparse: %d edges", g.M())
	}
}

func TestProneuralLatticeRadius(t *testing.T) {
	g := ProneuralLattice(5, 5)
	if g.N() != 25 {
		t.Fatalf("N = %d", g.N())
	}
	// Center node (2,2) should see all nodes within Manhattan distance 2: 12.
	center := 2*5 + 2
	if g.Degree(center) != 12 {
		t.Fatalf("center degree = %d, want 12", g.Degree(center))
	}
}

func TestDiameter(t *testing.T) {
	if d, err := Path(10).Diameter(); err != nil || d != 9 {
		t.Fatalf("path diameter = %d, %v", d, err)
	}
	if d, err := Clique(6).Diameter(); err != nil || d != 1 {
		t.Fatalf("clique diameter = %d, %v", d, err)
	}
	if d, err := Cycle(8).Diameter(); err != nil || d != 4 {
		t.Fatalf("cycle diameter = %d, %v", d, err)
	}
	if _, err := New(0).Diameter(); err == nil {
		t.Fatal("empty graph diameter should error")
	}
	disconnected := New(3)
	if err := disconnected.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := disconnected.Diameter(); err == nil {
		t.Fatal("disconnected graph diameter should error")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	keep := []bool{true, true, true, false, true, true}
	sub, orig := g.InducedSubgraph(keep)
	if sub.N() != 5 {
		t.Fatalf("sub N = %d", sub.N())
	}
	// Edges surviving: (0,1),(1,2),(4,5),(5,0). Edge (2,3),(3,4) die.
	if sub.M() != 4 {
		t.Fatalf("sub M = %d, want 4", sub.M())
	}
	wantOrig := []int{0, 1, 2, 4, 5}
	for i, v := range wantOrig {
		if orig[i] != v {
			t.Fatalf("orig = %v", orig)
		}
	}
}

func TestIndependentSetValidators(t *testing.T) {
	g := Path(4) // 0-1-2-3
	if err := g.IsMaximalIndependentSet([]bool{true, false, true, false}); err != nil {
		t.Fatalf("valid MIS rejected: %v", err)
	}
	if err := g.IsMaximalIndependentSet([]bool{false, true, false, true}); err != nil {
		t.Fatalf("valid MIS rejected: %v", err)
	}
	if err := g.IsIndependentSet([]bool{true, true, false, false}); err == nil {
		t.Fatal("dependent set accepted")
	}
	// Independent but not maximal: {0} leaves 2,3 undominated.
	if err := g.IsMaximalIndependentSet([]bool{true, false, false, false}); err == nil {
		t.Fatal("non-maximal set accepted as MIS")
	}
	if err := g.IsIndependentSet([]bool{true}); err == nil {
		t.Fatal("wrong-length mask accepted")
	}
}

func TestColoringValidator(t *testing.T) {
	g := Path(4)
	if err := g.IsProperColoring([]int{1, 2, 1, 2}, 3); err != nil {
		t.Fatalf("valid coloring rejected: %v", err)
	}
	if err := g.IsProperColoring([]int{1, 1, 2, 1}, 3); err == nil {
		t.Fatal("improper coloring accepted")
	}
	if err := g.IsProperColoring([]int{1, 2, 4, 2}, 3); err == nil {
		t.Fatal("out-of-palette color accepted")
	}
	if err := g.IsProperColoring([]int{0, 1, 2, 1}, 3); err == nil {
		t.Fatal("color 0 accepted")
	}
}

func TestMatchingValidators(t *testing.T) {
	g := Path(4)
	if err := g.IsMaximalMatching([]int{1, 0, 3, 2}); err != nil {
		t.Fatalf("perfect matching rejected: %v", err)
	}
	// {1-2} alone is maximal on a path 0-1-2-3.
	if err := g.IsMaximalMatching([]int{-1, 2, 1, -1}); err != nil {
		t.Fatalf("maximal matching rejected: %v", err)
	}
	// {0-1} alone is NOT maximal: edge (2,3) uncovered.
	if err := g.IsMaximalMatching([]int{1, 0, -1, -1}); err == nil {
		t.Fatal("non-maximal matching accepted")
	}
	// Asymmetric.
	if err := g.IsMatching([]int{1, -1, -1, -1}); err == nil {
		t.Fatal("asymmetric matching accepted")
	}
	// Non-edge pair.
	if err := g.IsMatching([]int{2, -1, 0, -1}); err == nil {
		t.Fatal("non-edge matching accepted")
	}
}

func TestGoodTreeNodesObservation52(t *testing.T) {
	// Observation 5.2: every tree has at least n/5 good nodes.
	src := xrand.New(7)
	families := map[string]func(n int) *Graph{
		"path":        Path,
		"star":        Star,
		"binary":      BinaryTree,
		"caterpillar": Caterpillar,
		"broom":       Broom,
		"random":      func(n int) *Graph { return RandomTree(n, src) },
	}
	for name, gen := range families {
		for _, n := range []int{2, 3, 5, 17, 64, 200} {
			g := gen(n)
			if !g.IsTree() {
				t.Fatalf("%s(%d) is not a tree", name, n)
			}
			_, count := g.GoodTreeNodes()
			if 5*count < n {
				t.Errorf("%s(%d): only %d good nodes, below n/5", name, n, count)
			}
		}
	}
}

func TestGoodMISNodesLemma44(t *testing.T) {
	// Lemma 4.4: more than half the edges are incident on good nodes.
	src := xrand.New(8)
	graphs := []*Graph{
		Path(50), Cycle(50), Star(50), Clique(20), Grid(7, 7),
		Gnp(60, 0.1, src), Gnp(60, 0.5, src), RandomTree(80, src),
	}
	for i, g := range graphs {
		if g.M() == 0 {
			continue
		}
		good := g.GoodMISNodes()
		covered := g.EdgesIncidentOnGood(good)
		if 2*covered <= g.M() {
			t.Errorf("graph %d: %d/%d edges incident on good nodes, want > half", i, covered, g.M())
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	src := xrand.New(9)
	orig := Gnp(30, 0.2, src)
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != orig.N() || back.M() != orig.M() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", back.N(), back.M(), orig.N(), orig.M())
	}
	for _, e := range orig.Edges() {
		if !back.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",               // no header
		"x 5\n",          // bad header
		"n -1\n",         // negative
		"n 3\n0\n",       // malformed edge
		"n 3\n0 9\n",     // out of range
		"n 3\na b\n",     // non-numeric
		"n 3\n0 1\n0 13", // trailing garbage forms out-of-range edge
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", c)
		}
	}
	// Comments and blank lines are fine.
	g, err := Decode(strings.NewReader("# comment\n\nn 3\n0 1\n# more\n1 2\n"))
	if err != nil || g.M() != 2 {
		t.Fatalf("commented decode failed: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	if err := c.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 2) {
		t.Fatal("Clone shares adjacency storage")
	}
}

func TestPropertyDegreeSumTwiceEdges(t *testing.T) {
	f := func(seed uint64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := float64(pRaw%100) / 100
		g := Gnp(n, p, xrand.New(seed))
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInducedSubgraphDegrees(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		src := xrand.New(seed)
		g := Gnp(n, 0.3, src)
		keep := make([]bool, n)
		for i := range keep {
			keep[i] = src.Bool()
		}
		sub, orig := g.InducedSubgraph(keep)
		// Every subgraph edge must exist in the original graph.
		for _, e := range sub.Edges() {
			if !g.HasEdge(orig[e[0]], orig[e[1]]) {
				return false
			}
		}
		// Every original edge between kept nodes must survive.
		want := 0
		for _, e := range g.Edges() {
			if keep[e[0]] && keep[e[1]] {
				want++
			}
		}
		return sub.M() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
