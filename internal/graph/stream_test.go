package graph

import (
	"reflect"
	"testing"

	"stoneage/internal/xrand"
)

// csrEqual reports a field-for-field comparison of two CSR snapshots.
func csrEqual(t *testing.T, name string, a, b *CSR) {
	t.Helper()
	if !reflect.DeepEqual(a.NbrOff, b.NbrOff) {
		t.Errorf("%s: NbrOff differs", name)
	}
	if !reflect.DeepEqual(a.NbrDat, b.NbrDat) {
		t.Errorf("%s: NbrDat differs", name)
	}
	if !reflect.DeepEqual(a.RevPort, b.RevPort) {
		t.Errorf("%s: RevPort differs", name)
	}
}

// TestBuildCSRMatchesMaterialized checks that the streaming CSR builder
// produces the exact layout Graph.CSR does — offsets, sorted runs, and
// reverse ports — for every stream family across sizes, including the
// degenerate ones.
func TestBuildCSRMatchesMaterialized(t *testing.T) {
	streams := []struct {
		name string
		s    EdgeStream
	}{
		{"cycle/0", CycleStream(0)},
		{"cycle/1", CycleStream(1)},
		{"cycle/2", CycleStream(2)},
		{"cycle/3", CycleStream(3)},
		{"cycle/97", CycleStream(97)},
		{"tree/1", RandomTreeStream(1, 7)},
		{"tree/2", RandomTreeStream(2, 7)},
		{"tree/300", RandomTreeStream(300, 12345)},
		{"gnp/2", GnpConnectedStream(2, 0.5, 3)},
		{"gnp/64", GnpConnectedStream(64, 0.1, 42)},
		{"gnp/193", GnpConnectedStream(193, 4.0/193, 99)},
		{"gnp/p0", GnpConnectedStream(50, 0, 5)},
		{"gnp/p1", GnpConnectedStream(20, 1, 5)},
		{"geo/64", RandomGeometricStream(64, GeometricRadius(64, 1.5), 8)},
		{"geo/200", RandomGeometricStream(200, GeometricRadius(200, 1.5), 21)},
		{"geo/r0", RandomGeometricStream(30, 0, 4)},
	}
	for _, tc := range streams {
		g, err := ToGraph(tc.s)
		if err != nil {
			t.Fatalf("%s: ToGraph: %v", tc.name, err)
		}
		c, err := BuildCSR(tc.s)
		if err != nil {
			t.Fatalf("%s: BuildCSR: %v", tc.name, err)
		}
		csrEqual(t, tc.name, g.CSR(), c)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: materialized graph invalid: %v", tc.name, err)
		}
	}
}

// TestStreamsMatchMaterializedGenerators pins the stream variants that
// promise draw-identity to their materialized generators.
func TestStreamsMatchMaterializedGenerators(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 33, 257} {
		want := Cycle(n).CSR()
		got, err := BuildCSR(CycleStream(n))
		if err != nil {
			t.Fatalf("cycle n=%d: %v", n, err)
		}
		csrEqual(t, "cycle", want, got)
	}
	for _, n := range []int{1, 2, 17, 400} {
		seed := uint64(n) * 31
		want := RandomTree(n, xrand.New(seed)).CSR()
		got, err := BuildCSR(RandomTreeStream(n, seed))
		if err != nil {
			t.Fatalf("tree n=%d: %v", n, err)
		}
		csrEqual(t, "tree", want, got)
	}
	for _, n := range []int{2, 50, 300} {
		seed := uint64(n)*977 + 1
		r := GeometricRadius(n, 1.5)
		want := RandomGeometric(n, r, xrand.New(seed)).CSR()
		got, err := BuildCSR(RandomGeometricStream(n, r, seed))
		if err != nil {
			t.Fatalf("geo n=%d: %v", n, err)
		}
		csrEqual(t, "geo", want, got)
	}
}

// TestGnpConnectedStreamShape checks the skip-sampled G(n,p) stream's
// structural promises: always connected, no duplicates (BuildCSR
// verifies), and an edge count near the binomial expectation.
func TestGnpConnectedStreamShape(t *testing.T) {
	n, p := 2000, 3.0/2000
	g, err := ToGraph(GnpConnectedStream(n, p, 7))
	if err != nil {
		t.Fatalf("ToGraph: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
	if !connected(g) {
		t.Fatalf("GnpConnectedStream sample is disconnected")
	}
	// Backbone contributes n-1 edges; the pair sweep adds ≈ p·C(n,2).
	exp := float64(n-1) + p*float64(n)*float64(n-1)/2
	m := float64(g.M())
	if m < exp*0.7 || m > exp*1.3 {
		t.Errorf("edge count %v far from expectation %v", m, exp)
	}
	// Degenerate and extreme p.
	if g, _ := ToGraph(GnpConnectedStream(10, 0, 3)); g.M() != 9 {
		t.Errorf("p=0: want backbone only (9 edges), got %d", g.M())
	}
	if g, _ := ToGraph(GnpConnectedStream(10, 1, 3)); g.M() != 45 {
		t.Errorf("p=1: want complete graph (45 edges), got %d", g.M())
	}
}

// TestBuildCSRRejectsBadStreams checks the builder's validation paths.
func TestBuildCSRRejectsBadStreams(t *testing.T) {
	bad := []struct {
		name string
		s    EdgeStream
	}{
		{"self-loop", funcStream{n: 3, edges: func(emit func(u, v int32)) { emit(1, 1) }}},
		{"out-of-range", funcStream{n: 3, edges: func(emit func(u, v int32)) { emit(0, 3) }}},
		{"duplicate", funcStream{n: 3, edges: func(emit func(u, v int32)) { emit(0, 1); emit(1, 0) }}},
	}
	for _, tc := range bad {
		if _, err := BuildCSR(tc.s); err == nil {
			t.Errorf("%s: BuildCSR accepted an invalid stream", tc.name)
		}
	}
}

func connected(g *Graph) bool {
	n := g.N()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				cnt++
				stack = append(stack, u)
			}
		}
	}
	return cnt == n
}
