// Package coloring implements the paper's Section 5 protocol: 3-coloring
// an arbitrary undirected tree in O(log n) locally synchronous rounds
// (Theorem 5.4).
//
// The protocol structures its execution into phases of four rounds:
//
//	round 1: every ACTIVE node announces 'I am ACTIVE';
//	round 2: every ACTIVE node reads its active degree through the
//	         one-two-many counter with b = 3 (so it distinguishes
//	         0, 1, 2, ≥3) and announces f₃(d);
//	round 3: depending on its own degree and the announced degrees of its
//	         active neighbors, a node starts Procedure RandColor (propose
//	         a color not used by any colored neighbor), moves to mode
//	         WAITING (a degree-1 node whose neighbor is busier), or idles;
//	round 4: a proposing node adopts its color unless a neighbor proposed
//	         the same color; adopted colors are announced and final.
//
// WAITING nodes sleep silently; they detect the coloring of the neighbor
// they wait on by comparing the clamped color counts in their ports
// against a snapshot taken when they went to sleep (the waiting hierarchy
// of the paper guarantees at most two colored neighbors exist at
// sleep-entry, so the new color always changes the clamped vector), then
// rejoin the next phase as active degree-0 nodes and color immediately.
//
// The protocol is correct only on trees (on general graphs the palette
// {1,2,3} can be exhausted); Solve validates the input.
package coloring

import (
	"errors"
	"fmt"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/protocol"
)

// ErrNotATree is returned when the input graph is not a tree.
var ErrNotATree = errors.New("coloring: input graph is not a tree")

// The communication alphabet.
const (
	letAct  nfsm.Letter = iota // 'I am ACTIVE'
	letWait                    // 'I am WAITING'
	letDeg0                    // degree announcements f₃(d) ∈ {0,1,2,≥3}
	letDeg1
	letDeg2
	letDeg3p
	letProp1 // 'proposing color c'
	letProp2
	letProp3
	letCol1 // 'my color is c'
	letCol2
	letCol3

	numLetters = 12
)

// State layout. Active-mode states track the position inside the 4-round
// phase; waiting-mode states additionally carry the color-count snapshot.
const (
	stA1   nfsm.State = iota // about to send 'I am ACTIVE' (round 1)
	stA2                     // about to read the active degree (round 2)
	stA3d0                   // round 3 with own degree 0, 1, 2, ≥3
	stA3d1
	stA3d2
	stA3d3
	stA4p1 // round 4 after proposing color 1, 2, 3
	stA4p2
	stA4p3
	stA4idle // round 4 without a proposal
	stCol1   // colored with 1, 2, 3 (output sinks)
	stCol2
	stCol3
	stWaitBase // waiting states: stWaitBase + 4·snapshot + (round−1)
)

// numWaitSnapshots is 4³: the clamped counts of the three color letters.
const (
	numWaitSnapshots = 64
	numStates        = int(stWaitBase) + numWaitSnapshots*4
)

func waitState(snapshot, round int) nfsm.State {
	return stWaitBase + nfsm.State(snapshot*4+(round-1))
}

func snapshotOf(counts []nfsm.Count) int {
	return int(counts[letCol1])*16 + int(counts[letCol2])*4 + int(counts[letCol3])
}

func stateNames() []string {
	names := make([]string, numStates)
	fixed := []string{
		"A1", "A2", "A3deg0", "A3deg1", "A3deg2", "A3deg3+",
		"A4prop1", "A4prop2", "A4prop3", "A4idle",
		"COLORED1", "COLORED2", "COLORED3",
	}
	copy(names, fixed)
	for s := 0; s < numWaitSnapshots; s++ {
		for r := 1; r <= 4; r++ {
			names[int(stWaitBase)+s*4+r-1] = fmt.Sprintf("WAIT[s=%d,r=%d]", s, r)
		}
	}
	return names
}

var letterNames = []string{
	"ACTIVE", "WAITING", "DEG0", "DEG1", "DEG2", "DEG3+",
	"PROP1", "PROP2", "PROP3", "COLOR1", "COLOR2", "COLOR3",
}

func stay(q nfsm.State) []nfsm.Move {
	return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}}
}

func transition(q nfsm.State, counts []nfsm.Count) []nfsm.Move {
	switch {
	case q == stA1:
		// Round 1: announce activity.
		return []nfsm.Move{{Next: stA2, Emit: letAct}}

	case q == stA2:
		// Round 2: the ports hold the round-1 announcements; the clamped
		// ACTIVE count is exactly f₃ of the active degree. Announce it.
		d := counts[letAct] // 0..3 under b = 3
		return []nfsm.Move{{Next: stA3d0 + nfsm.State(d), Emit: letDeg0 + nfsm.Letter(d)}}

	case q >= stA3d0 && q <= stA3d3:
		// Round 3: the ports hold the degree announcements.
		d := int(q - stA3d0)
		switch {
		case d == 0:
			return proposeMoves(counts)
		case d == 1:
			if counts[letDeg1] > 0 {
				// The unique active neighbor also has degree 1.
				return proposeMoves(counts)
			}
			// Wait on the busier neighbor; remember the color counts so
			// its eventual coloring is detectable.
			return []nfsm.Move{{Next: waitState(snapshotOf(counts), 4), Emit: letWait}}
		case d == 2 && counts[letDeg3p] == 0:
			// Both active neighbors have degree ≤ 2.
			return proposeMoves(counts)
		default:
			return []nfsm.Move{{Next: stA4idle, Emit: nfsm.NoLetter}}
		}

	case q >= stA4p1 && q <= stA4p3:
		// Round 4: adopt the proposed color unless contested.
		c := int(q-stA4p1) + 1
		if counts[letProp1+nfsm.Letter(c-1)] > 0 {
			return []nfsm.Move{{Next: stA1, Emit: nfsm.NoLetter}}
		}
		return []nfsm.Move{{Next: stCol1 + nfsm.State(c-1), Emit: letCol1 + nfsm.Letter(c-1)}}

	case q == stA4idle:
		return []nfsm.Move{{Next: stA1, Emit: nfsm.NoLetter}}

	case q >= stCol1 && q <= stCol3:
		return stay(q)

	case q >= stWaitBase:
		idx := int(q - stWaitBase)
		snapshot, round := idx/4, idx%4+1
		if round == 1 {
			// Phase boundary: the ports now include any color adopted in
			// round 4 of the previous phase. A changed clamped color
			// vector means the awaited neighbor is colored: rejoin as an
			// active node (necessarily of active degree 0).
			if snapshotOf(counts) != snapshot {
				return []nfsm.Move{{Next: stA2, Emit: letAct}}
			}
		}
		next := round + 1
		if next == 5 {
			next = 1
		}
		return []nfsm.Move{{Next: waitState(snapshot, next), Emit: nfsm.NoLetter}}

	default:
		// Unreachable by construction; keep δ total.
		return stay(q)
	}
}

// proposeMoves implements the first round of Procedure RandColor: pick a
// color uniformly from C(v), the palette minus the colors of colored
// neighbors, and propose it. On trees C(v) is provably non-empty; on
// malformed inputs the node idles defensively.
func proposeMoves(counts []nfsm.Count) []nfsm.Move {
	moves := make([]nfsm.Move, 0, 3)
	for c := 0; c < 3; c++ {
		if counts[letCol1+nfsm.Letter(c)] == 0 {
			moves = append(moves, nfsm.Move{
				Next: stA4p1 + nfsm.State(c),
				Emit: letProp1 + nfsm.Letter(c),
			})
		}
	}
	if len(moves) == 0 {
		return []nfsm.Move{{Next: stA4idle, Emit: nfsm.NoLetter}}
	}
	return moves
}

// Protocol returns the tree 3-coloring round protocol: b = 3 (the
// one-two-many bound needed to distinguish degrees 0, 1, 2, ≥3), twelve
// letters, and a constant number of states.
func Protocol() *nfsm.RoundProtocol {
	output := make([]bool, numStates)
	output[stCol1], output[stCol2], output[stCol3] = true, true, true
	return &nfsm.RoundProtocol{
		Name:        "color3",
		StateNames:  stateNames(),
		LetterNames: letterNames,
		Input:       []nfsm.State{stA1},
		Output:      output,
		Initial:     letAct,
		B:           3,
		Transition:  transition,
	}
}

// Extract converts a final state vector into a color assignment in
// {1,2,3}. It fails if any node is not colored.
func Extract(states []nfsm.State) ([]int, error) {
	colors := make([]int, len(states))
	for v, q := range states {
		if q < stCol1 || q > stCol3 {
			return nil, fmt.Errorf("coloring: node %d ended in non-output state %d", v, q)
		}
		colors[v] = int(q-stCol1) + 1
	}
	return colors, nil
}

// SyncRun reports a synchronous coloring execution.
type SyncRun struct {
	// Colors assigns each node a color in {1,2,3}.
	Colors []int
	// Rounds is the round count; Phases is Rounds/4 rounded up.
	Rounds int
	// Phases is the number of 4-round phases used.
	Phases int
	// Transmissions counts letters sent.
	Transmissions int64
}

// desc self-registers the protocol. The registry lowers it once per
// process; its 269·4¹² count domain is far beyond the engine's
// tabulation bound, so the program runs on the dynamic path — it still
// gains the CSR layout, incremental count maintenance and sharded
// rounds (the Transition is pure). The tree-only capability makes the
// campaign and the CLI reject non-tree inputs statically.
var desc = protocol.Register(&protocol.Descriptor{
	Name:    "color3",
	Summary: "3-coloring of undirected trees in O(log n) rounds (Section 5)",
	// Duplicated copies land back-to-back on overwrite-only ports, so
	// duplication alone cannot change what a node observes.
	Caps:    protocol.CapNeedsTree | protocol.CapToleratesDup,
	Machine: func(protocol.Args) (*nfsm.RoundProtocol, error) { return Protocol(), nil },
	Decode: func(_ protocol.Args, states []nfsm.State) (protocol.Output, error) {
		colors, err := Extract(states)
		if err != nil {
			return nil, err
		}
		return protocol.Colors(colors), nil
	},
	Check: func(_ protocol.Args, g *graph.Graph, out protocol.Output) error {
		return g.IsProperColoring(out.(protocol.Colors), 3)
	},
	Mutate: protocol.ClashColor,
})

// SolveSync runs the protocol on the compiled synchronous engine. The
// input must be a tree.
func SolveSync(g *graph.Graph, seed uint64, maxRounds int) (*SyncRun, error) {
	if !g.IsTree() {
		return nil, ErrNotATree
	}
	run, err := desc.SolveSync(g, nil, protocol.SyncConfig{Seed: seed, MaxRounds: maxRounds})
	if err != nil {
		return nil, err
	}
	return &SyncRun{
		Colors:        run.Output.(protocol.Colors),
		Rounds:        run.Rounds,
		Phases:        (run.Rounds + 3) / 4,
		Transmissions: run.Transmissions,
	}, nil
}

// AsyncRun reports an asynchronous coloring execution through the
// Theorem 3.1/3.4 compiler.
type AsyncRun struct {
	// Colors assigns each node a color in {1,2,3}.
	Colors []int
	// TimeUnits is the paper's normalized run-time.
	TimeUnits float64
	// Steps is the total number of machine steps.
	Steps int64
}

// SolveAsync compiles the protocol through the registry's Theorem
// 3.1/3.4 route and runs it asynchronously under the given adversary.
// The input must be a tree.
func SolveAsync(g *graph.Graph, seed uint64, adv engine.Adversary, maxSteps int64) (*AsyncRun, error) {
	if !g.IsTree() {
		return nil, ErrNotATree
	}
	run, err := desc.SolveAsync(g, nil, protocol.AsyncConfig{
		Seed: seed, Adversary: adv, MaxSteps: maxSteps,
	})
	if err != nil {
		return nil, err
	}
	return &AsyncRun{
		Colors:    run.Output.(protocol.Colors),
		TimeUnits: run.TimeUnits,
		Steps:     run.Steps,
	}, nil
}

// ActiveCensus instruments a synchronous run: for every phase it records
// how many nodes were in each mode at the phase boundary. Used by the E7
// experiment to visualize the active-forest decay of Observation 5.3.
type ActiveCensus struct {
	// Active[i], Waiting[i], Colored[i] count nodes in each mode at the
	// end of phase i+1.
	Active, Waiting, Colored []int
}

// SolveSyncInstrumented runs the protocol synchronously and returns the
// per-phase mode census alongside the result.
func SolveSyncInstrumented(g *graph.Graph, seed uint64, maxRounds int) (*SyncRun, *ActiveCensus, error) {
	if !g.IsTree() {
		return nil, nil, ErrNotATree
	}
	census := &ActiveCensus{}
	observer := func(round int, states []nfsm.State) {
		if round%4 != 0 {
			return
		}
		var act, wait, col int
		for _, q := range states {
			switch {
			case q >= stCol1 && q <= stCol3:
				col++
			case q >= stWaitBase:
				wait++
			default:
				act++
			}
		}
		census.Active = append(census.Active, act)
		census.Waiting = append(census.Waiting, wait)
		census.Colored = append(census.Colored, col)
	}
	res, err := desc.SolveSync(g, nil, protocol.SyncConfig{
		Seed: seed, MaxRounds: maxRounds, Observer: observer,
	})
	if err != nil {
		return nil, nil, err
	}
	run := &SyncRun{
		Colors:        res.Output.(protocol.Colors),
		Rounds:        res.Rounds,
		Phases:        (res.Rounds + 3) / 4,
		Transmissions: res.Transmissions,
	}
	return run, census, nil
}
