package coloring

import (
	"errors"
	"math"
	"testing"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/xrand"
)

func TestProtocolValidates(t *testing.T) {
	p := Protocol()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.B != 3 {
		t.Fatalf("b = %d, want 3 (the one-two-many bound of Section 5)", p.B)
	}
	if p.NumLetters() != numLetters {
		t.Fatalf("|Σ| = %d, want %d", p.NumLetters(), numLetters)
	}
}

func TestTransitionTotalOverSampledDomain(t *testing.T) {
	// The full audit domain (|Q|·4¹²) is too large; sample the count
	// space densely instead and check totality and move validity.
	p := Protocol()
	src := xrand.New(3)
	counts := make([]nfsm.Count, numLetters)
	for trial := 0; trial < 20000; trial++ {
		for i := range counts {
			counts[i] = nfsm.Count(src.Intn(4))
		}
		q := nfsm.State(src.Intn(numStates))
		moves := transition(q, counts)
		if len(moves) == 0 {
			t.Fatalf("empty move set at state %d counts %v", q, counts)
		}
		for _, mv := range moves {
			if mv.Next < 0 || int(mv.Next) >= numStates {
				t.Fatalf("state %d counts %v: move to out-of-range %d", q, counts, mv.Next)
			}
			if mv.Emit != nfsm.NoLetter && (mv.Emit < 0 || int(mv.Emit) >= p.NumLetters()) {
				t.Fatalf("state %d counts %v: emit out-of-range %d", q, counts, mv.Emit)
			}
		}
	}
}

func TestDegreeAnnouncement(t *testing.T) {
	counts := make([]nfsm.Count, numLetters)
	for d := 0; d <= 3; d++ {
		counts[letAct] = nfsm.Count(d)
		mv := transition(stA2, counts)
		if len(mv) != 1 || mv[0].Next != stA3d0+nfsm.State(d) || mv[0].Emit != letDeg0+nfsm.Letter(d) {
			t.Fatalf("degree %d announcement = %v", d, mv)
		}
	}
}

func TestRandColorPaletteExclusion(t *testing.T) {
	counts := make([]nfsm.Count, numLetters)
	counts[letCol2] = 1 // a neighbor holds color 2
	moves := proposeMoves(counts)
	if len(moves) != 2 {
		t.Fatalf("palette size = %d, want 2", len(moves))
	}
	for _, mv := range moves {
		if mv.Next == stA4p2 {
			t.Fatal("proposed a color already taken by a neighbor")
		}
	}
	// Full palette exhaustion falls back to idling (trees never reach
	// this, but δ must be total).
	counts[letCol1], counts[letCol3] = 1, 1
	moves = proposeMoves(counts)
	if len(moves) != 1 || moves[0].Next != stA4idle {
		t.Fatalf("exhausted palette moves = %v", moves)
	}
}

func TestWaitingDetectsColorChange(t *testing.T) {
	counts := make([]nfsm.Count, numLetters)
	counts[letCol1] = 2
	snap := snapshotOf(counts)
	w1 := waitState(snap, 1)
	// Same counts: keep sleeping.
	mv := transition(w1, counts)
	if len(mv) != 1 || mv[0].Next != waitState(snap, 2) {
		t.Fatalf("unchanged snapshot moves = %v", mv)
	}
	// A neighbor adopted color 1: wake up and announce activity.
	counts[letCol1] = 3
	mv = transition(w1, counts)
	if len(mv) != 1 || mv[0].Next != stA2 || mv[0].Emit != letAct {
		t.Fatalf("changed snapshot moves = %v", mv)
	}
	// Waiting rounds 2..4 never check and never transmit.
	for r := 2; r <= 4; r++ {
		mv = transition(waitState(snap, r), counts)
		next := r + 1
		if next == 5 {
			next = 1
		}
		if len(mv) != 1 || mv[0].Next != waitState(snap, next) || mv[0].Emit != nfsm.NoLetter {
			t.Fatalf("wait round %d moves = %v", r, mv)
		}
	}
}

func TestSolveSyncRejectsNonTrees(t *testing.T) {
	if _, err := SolveSync(graph.Cycle(5), 1, 0); !errors.Is(err, ErrNotATree) {
		t.Fatalf("cycle accepted: %v", err)
	}
	if _, err := SolveSync(graph.New(3), 1, 0); !errors.Is(err, ErrNotATree) {
		t.Fatalf("forest accepted: %v", err)
	}
}

func TestSolveSyncAllTreeFamilies(t *testing.T) {
	src := xrand.New(5)
	families := map[string]func(n int) *graph.Graph{
		"path":        graph.Path,
		"star":        graph.Star,
		"binary":      graph.BinaryTree,
		"caterpillar": graph.Caterpillar,
		"broom":       graph.Broom,
		"random":      func(n int) *graph.Graph { return graph.RandomTree(n, src) },
	}
	for name, gen := range families {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{1, 2, 3, 8, 50, 150} {
				g := gen(n)
				for seed := uint64(0); seed < 3; seed++ {
					run, err := SolveSync(g, seed, 0)
					if err != nil {
						t.Fatalf("n=%d seed=%d: %v", n, seed, err)
					}
					if err := g.IsProperColoring(run.Colors, 3); err != nil {
						t.Fatalf("n=%d seed=%d: %v", n, seed, err)
					}
				}
			}
		})
	}
}

func TestSingleNodeColorsInOnePhase(t *testing.T) {
	run, err := SolveSync(graph.New(1), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run.Phases != 1 || run.Rounds != 4 {
		t.Fatalf("phases = %d rounds = %d, want 1 phase of 4 rounds", run.Phases, run.Rounds)
	}
}

func TestStarWaitsThenColors(t *testing.T) {
	// In a star, all leaves wait on the center in phase 1; the center
	// (degree ≥3) cannot color until its active degree drops to 0 —
	// which happens in phase 2 once every leaf sleeps. Leaves then wake
	// and color. The whole process is a constant number of phases.
	run, err := SolveSync(graph.Star(40), 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run.Phases > 6 {
		t.Fatalf("star took %d phases, expected a small constant", run.Phases)
	}
	center := run.Colors[0]
	for v := 1; v < 40; v++ {
		if run.Colors[v] == center {
			t.Fatalf("leaf %d shares the center's color", v)
		}
	}
}

func TestRunTimeScalesLogarithmically(t *testing.T) {
	// Theorem 5.4: O(log n) rounds. Check rounds/log n stays bounded.
	const trials = 3
	ratioAt := func(n int) float64 {
		total := 0.0
		for s := 0; s < trials; s++ {
			g := graph.RandomTree(n, xrand.New(uint64(n)*31+uint64(s)))
			run, err := SolveSync(g, uint64(s), 0)
			if err != nil {
				t.Fatal(err)
			}
			total += float64(run.Rounds)
		}
		return total / trials / math.Log2(float64(n))
	}
	small, large := ratioAt(64), ratioAt(2048)
	if large > 4*small {
		t.Fatalf("rounds/log n grew from %.2f to %.2f: not logarithmic", small, large)
	}
}

func TestInstrumentedCensus(t *testing.T) {
	g := graph.RandomTree(120, xrand.New(8))
	run, census, err := SolveSyncInstrumented(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.IsProperColoring(run.Colors, 3); err != nil {
		t.Fatal(err)
	}
	if len(census.Colored) == 0 {
		t.Fatal("no census rows recorded")
	}
	last := len(census.Colored) - 1
	if census.Colored[last] != g.N() || census.Active[last] != 0 || census.Waiting[last] != 0 {
		t.Fatalf("final census %d/%d/%d, want all colored",
			census.Active[last], census.Waiting[last], census.Colored[last])
	}
	// Colored counts are monotone non-decreasing.
	for i := 1; i < len(census.Colored); i++ {
		if census.Colored[i] < census.Colored[i-1] {
			t.Fatalf("colored count decreased at phase %d: %v", i, census.Colored)
		}
	}
}

func TestSolveAsyncAllAdversaries(t *testing.T) {
	g := graph.RandomTree(16, xrand.New(10))
	for name, adv := range engine.NamedAdversaries(19) {
		t.Run(name, func(t *testing.T) {
			run, err := SolveAsync(g, 4, adv, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.IsProperColoring(run.Colors, 3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSolveAsyncRejectsNonTree(t *testing.T) {
	if _, err := SolveAsync(graph.Clique(4), 1, nil, 0); !errors.Is(err, ErrNotATree) {
		t.Fatalf("clique accepted: %v", err)
	}
}

func TestExtractRejectsUncolored(t *testing.T) {
	if _, err := Extract([]nfsm.State{stCol1, stA1}); err == nil {
		t.Fatal("Extract accepted an active state")
	}
}
