package coloring

import (
	"testing"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/xrand"
)

// TestWaitEntrySnapshotInvariant verifies the invariant the WAITING
// wake-up detection relies on: when a node enters mode WAITING, at most
// two of its neighbors are already colored (so the clamped color-count
// snapshot, with b = 3, always changes when the awaited neighbor
// colors). The package documentation derives this from the waiting
// hierarchy; this test checks it empirically on every tree family.
func TestWaitEntrySnapshotInvariant(t *testing.T) {
	src := xrand.New(17)
	trees := []*graph.Graph{
		graph.RandomTree(120, src),
		graph.Star(40),
		graph.Caterpillar(60),
		graph.Broom(50),
		graph.BinaryTree(63),
		graph.Path(80),
	}
	for gi, g := range trees {
		n := g.N()
		prevWaiting := make([]bool, n)
		observer := func(round int, states []nfsm.State) {
			for v := 0; v < n; v++ {
				waiting := states[v] >= stWaitBase
				if waiting && !prevWaiting[v] {
					colored := 0
					for _, u := range g.Neighbors(v) {
						if states[u] >= stCol1 && states[u] <= stCol3 {
							colored++
						}
					}
					if colored > 2 {
						t.Fatalf("tree %d round %d: node %d entered WAITING with %d colored neighbors",
							gi, round, v, colored)
					}
				}
				prevWaiting[v] = waiting
			}
		}
		if _, err := engine.RunSync(Protocol(), g, engine.SyncConfig{Seed: 3, Observer: observer}); err != nil {
			t.Fatalf("tree %d: %v", gi, err)
		}
	}
}

// TestPaletteNeverExhausted verifies the Section 5 Observation: C(v) is
// non-empty whenever a node runs Procedure RandColor (i.e. the protocol
// never takes the defensive idle fallback on a tree).
func TestPaletteNeverExhausted(t *testing.T) {
	src := xrand.New(19)
	trees := []*graph.Graph{
		graph.RandomTree(150, src),
		graph.Star(50),
		graph.BinaryTree(127),
	}
	for gi, g := range trees {
		n := g.N()
		observer := func(round int, states []nfsm.State) {
			// A node whose round-3 decision was the defensive fallback
			// would be in stA4idle having all three colors among its
			// neighbors; detect the palette exhaustion directly.
			for v := 0; v < n; v++ {
				if states[v] != stA4idle {
					continue
				}
				seen := [4]bool{}
				for _, u := range g.Neighbors(v) {
					if states[u] >= stCol1 && states[u] <= stCol3 {
						seen[int(states[u]-stCol1)+1] = true
					}
				}
				if seen[1] && seen[2] && seen[3] {
					t.Fatalf("tree %d round %d: node %d faces an exhausted palette", gi, round, v)
				}
			}
		}
		if _, err := engine.RunSync(Protocol(), g, engine.SyncConfig{Seed: 5, Observer: observer}); err != nil {
			t.Fatalf("tree %d: %v", gi, err)
		}
	}
}

// TestColoredCountMonotone asserts colors are final: once a node is in a
// colored state it never changes color (outputs are sinks).
func TestColoredCountMonotone(t *testing.T) {
	g := graph.RandomTree(100, xrand.New(23))
	n := g.N()
	final := make([]nfsm.State, n)
	for v := range final {
		final[v] = -1
	}
	observer := func(round int, states []nfsm.State) {
		for v := 0; v < n; v++ {
			if states[v] >= stCol1 && states[v] <= stCol3 {
				if final[v] == -1 {
					final[v] = states[v]
				} else if final[v] != states[v] {
					t.Fatalf("node %d changed color after finalizing", v)
				}
			} else if final[v] != -1 {
				t.Fatalf("node %d left its colored state", v)
			}
		}
	}
	if _, err := engine.RunSync(Protocol(), g, engine.SyncConfig{Seed: 7, Observer: observer}); err != nil {
		t.Fatal(err)
	}
}

// TestPhaseAlignment asserts every ACTIVE node is in the same phase
// round as the global round counter — the protocol's 4-round structure
// relies on global round alignment under property (S1)/(S2).
func TestPhaseAlignment(t *testing.T) {
	g := graph.RandomTree(80, xrand.New(29))
	observer := func(round int, states []nfsm.State) {
		pos := (round-1)%4 + 1 // the phase round that was just executed
		for v, q := range states {
			var want bool
			switch {
			case q == stA1: // next executes round 1 → just finished round 4
				want = pos == 4
			case q == stA2:
				want = pos == 1
			case q >= stA3d0 && q <= stA3d3:
				want = pos == 2
			case q >= stA4p1 && q <= stA4idle:
				want = pos == 3
			default:
				continue // colored or waiting states carry their own counters
			}
			if !want {
				t.Fatalf("round %d (phase pos %d): node %d in state %d is out of phase", round, pos, v, q)
			}
		}
	}
	if _, err := engine.RunSync(Protocol(), g, engine.SyncConfig{Seed: 11, Observer: observer}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndTinyTrees(t *testing.T) {
	if _, err := SolveSync(graph.New(0), 1, 0); err == nil {
		t.Fatal("empty graph accepted (not a tree by definition)")
	}
	run, err := SolveSync(graph.Path(2), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run.Colors[0] == run.Colors[1] {
		t.Fatal("adjacent pair shares a color")
	}
}
