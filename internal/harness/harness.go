// Package harness provides the experiment plumbing shared by
// cmd/experiments and the benchmark suite: trial statistics, scaling-law
// diagnostics (is a series Θ(log n), Θ(log² n), …?), and fixed-width
// table rendering for the EXPERIMENTS.md reports.
package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Stats summarizes a sample.
type Stats struct {
	N                int
	Mean, Std        float64
	Min, Median, P90 float64
	Max              float64
}

// Summarize computes sample statistics. An empty sample yields zeros.
func Summarize(xs []float64) Stats {
	s := Stats{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	varSum := 0.0
	for _, x := range sorted {
		d := x - s.Mean
		varSum += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(varSum / float64(s.N-1))
	}
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	s.Median = quantile(sorted, 0.5)
	s.P90 = quantile(sorted, 0.9)
	return s
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ScalingLaw is a candidate asymptotic shape for a measured series.
type ScalingLaw struct {
	// Name labels the law in reports, e.g. "log²n".
	Name string
	// F evaluates the law at n.
	F func(n int) float64
}

// StandardLaws returns the candidate shapes relevant to the paper's
// claims: constant, log n, log² n, √n and n.
func StandardLaws() []ScalingLaw {
	return []ScalingLaw{
		{Name: "1", F: func(n int) float64 { return 1 }},
		{Name: "log n", F: func(n int) float64 { return math.Log2(float64(n)) }},
		{Name: "log² n", F: func(n int) float64 { l := math.Log2(float64(n)); return l * l }},
		{Name: "√n", F: func(n int) float64 { return math.Sqrt(float64(n)) }},
		{Name: "n", F: func(n int) float64 { return float64(n) }},
	}
}

// FitQuality reports how well y(n) ≈ c·law(n) explains a series: the
// fitted constant and the spread of the per-point ratios y/law(n)
// (max/min — 1 is a perfect fit; the smallest spread wins).
type FitQuality struct {
	Law    string
	C      float64
	Spread float64
}

// FitSeries evaluates every law against the measured series and returns
// the qualities sorted best-first. Points with n < 4 are ignored (the
// asymptotic shapes are indistinguishable there).
func FitSeries(ns []int, ys []float64, laws []ScalingLaw) []FitQuality {
	if len(ns) != len(ys) {
		panic("harness: series length mismatch")
	}
	out := make([]FitQuality, 0, len(laws))
	for _, law := range laws {
		var ratios []float64
		for i, n := range ns {
			if n < 4 {
				continue
			}
			f := law.F(n)
			if f <= 0 {
				continue
			}
			ratios = append(ratios, ys[i]/f)
		}
		if len(ratios) == 0 {
			continue
		}
		st := Summarize(ratios)
		spread := math.Inf(1)
		if st.Min > 0 {
			spread = st.Max / st.Min
		}
		out = append(out, FitQuality{Law: law.Name, C: st.Mean, Spread: spread})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spread < out[j].Spread })
	return out
}

// BestLaw returns the name of the best-fitting law for the series.
func BestLaw(ns []int, ys []float64) string {
	fits := FitSeries(ns, ys, StandardLaws())
	if len(fits) == 0 {
		return "?"
	}
	return fits[0].Law
}

// Table is a fixed-width report table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are free-text lines printed under the table.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: three significant decimals for
// small magnitudes, fewer for large ones.
func FormatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table in a fixed-width layout.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", note)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// GeoSizes returns geometrically spaced sizes from lo to hi (inclusive
// when the progression lands on hi), multiplying by factor each step.
func GeoSizes(lo, hi, factor int) []int {
	if factor < 2 {
		factor = 2
	}
	var out []int
	for n := lo; n <= hi; n *= factor {
		out = append(out, n)
	}
	return out
}

// ASCIIChart renders series as a fixed-size ASCII scatter chart with a
// logarithmic x-axis (network sizes) — the textual analogue of a
// run-time-vs-n figure. Each series is drawn with its own glyph.
func ASCIIChart(title string, ns []int, series map[string][]float64, width, height int) string {
	if width < 16 {
		width = 60
	}
	if height < 4 {
		height = 16
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)

	maxY := 0.0
	for _, ys := range series {
		for _, y := range ys {
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxY == 0 || len(ns) < 2 {
		return title + ": (no data)\n"
	}
	minX := math.Log2(float64(ns[0]))
	maxX := math.Log2(float64(ns[len(ns)-1]))
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, name := range names {
		g := glyphs[si%len(glyphs)]
		ys := series[name]
		for i, n := range ns {
			if i >= len(ys) {
				break
			}
			col := int((math.Log2(float64(n)) - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int(ys[i]/maxY*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = g
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s  (y: 0..%s, x: n=%d..%d log-scale)\n", title, FormatFloat(maxY), ns[0], ns[len(ns)-1])
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n   ")
	for si, name := range names {
		fmt.Fprintf(&b, "%c=%s  ", glyphs[si%len(glyphs)], name)
	}
	b.WriteString("\n")
	return b.String()
}
