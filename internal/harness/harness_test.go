package harness

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Median != 2.5 {
		t.Fatalf("median = %v", s.Median)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeEmptyAndSingleton(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Std != 0 || s.P90 != 7 {
		t.Fatalf("singleton stats = %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := quantile(sorted, 0.5); q != 5 {
		t.Fatalf("median of {0,10} = %v", q)
	}
	if q := quantile(sorted, 0.9); q != 9 {
		t.Fatalf("p90 of {0,10} = %v", q)
	}
}

func TestFitSeriesRecognizesShapes(t *testing.T) {
	ns := []int{16, 32, 64, 128, 256, 512, 1024}
	mk := func(f func(n int) float64) []float64 {
		ys := make([]float64, len(ns))
		for i, n := range ns {
			ys[i] = 3 * f(n)
		}
		return ys
	}
	cases := map[string]func(n int) float64{
		"log n":  func(n int) float64 { return math.Log2(float64(n)) },
		"log² n": func(n int) float64 { l := math.Log2(float64(n)); return l * l },
		"n":      func(n int) float64 { return float64(n) },
		"1":      func(n int) float64 { return 1 },
	}
	for want, f := range cases {
		if got := BestLaw(ns, mk(f)); got != want {
			t.Errorf("BestLaw for exact %s series = %s", want, got)
		}
	}
}

func TestFitSeriesNoisy(t *testing.T) {
	// 20% multiplicative noise must not confuse log n with n.
	ns := []int{16, 64, 256, 1024, 4096}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		noise := 1.0 + 0.2*float64(i%2*2-1)
		ys[i] = 5 * math.Log2(float64(n)) * noise
	}
	got := BestLaw(ns, ys)
	if got != "log n" {
		t.Fatalf("noisy log n series classified as %s", got)
	}
}

func TestFitSeriesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	FitSeries([]int{1}, []float64{1, 2}, StandardLaws())
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"n", "rounds"},
		Notes:  []string{"note line"},
	}
	tb.AddRow(16, 12.5)
	tb.AddRow(1024, 99)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## demo", "| n ", "| 16 ", "12.5", "| 1024", "note line"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header row and data rows must have equal width.
	var rowLens []int
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			rowLens = append(rowLens, len(l))
		}
	}
	for _, l := range rowLens {
		if l != rowLens[0] {
			t.Fatalf("ragged table rows: %v\n%s", rowLens, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		3.25:   "3.250",
		123.45: "123.5",
		0.001:  "0.001",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestGeoSizes(t *testing.T) {
	got := GeoSizes(16, 128, 2)
	want := []int{16, 32, 64, 128}
	if len(got) != len(want) {
		t.Fatalf("GeoSizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GeoSizes = %v", got)
		}
	}
	if got := GeoSizes(10, 100, 0); len(got) == 0 {
		t.Fatal("degenerate factor not defaulted")
	}
}

func TestASCIIChart(t *testing.T) {
	ns := []int{16, 64, 256, 1024}
	series := map[string][]float64{
		"log n":  {4, 6, 8, 10},
		"linear": {16, 64, 256, 1024},
	}
	out := ASCIIChart("demo", ns, series, 40, 10)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "*=linear") || !strings.Contains(out, "o=log n") {
		t.Fatalf("chart legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("chart glyphs missing:\n%s", out)
	}
	// Degenerate inputs do not panic.
	if out := ASCIIChart("empty", []int{1}, map[string][]float64{}, 0, 0); !strings.Contains(out, "no data") {
		t.Fatalf("degenerate chart = %q", out)
	}
}
