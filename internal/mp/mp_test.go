package mp

import (
	"testing"

	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

// echoNode broadcasts its id in round 1, records the ids heard in round
// 2 and terminates.
type echoNode struct {
	id    int
	deg   int
	heard []int
}

func (e *echoNode) Init(id, degree int, src *xrand.Source) { e.id, e.deg = id, degree }

func (e *echoNode) Round(round int, inbox []any) ([]any, bool) {
	if round == 1 {
		return Broadcast(e.deg, e.id), false
	}
	for _, m := range inbox {
		if id, ok := m.(int); ok {
			e.heard = append(e.heard, id)
		}
	}
	return nil, true
}

func TestRunDeliversPerPort(t *testing.T) {
	g := graph.Star(5)
	rounds, nodes, err := Run(g, func() Node { return &echoNode{} }, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Fatalf("rounds = %d, want 2", rounds)
	}
	center := nodes[0].(*echoNode)
	if len(center.heard) != 4 {
		t.Fatalf("center heard %v", center.heard)
	}
	leaf := nodes[1].(*echoNode)
	if len(leaf.heard) != 1 || leaf.heard[0] != 0 {
		t.Fatalf("leaf heard %v", leaf.heard)
	}
}

// directedNode sends a distinct message per port — the capability that
// distinguishes LOCAL from the nFSM model.
type directedNode struct {
	deg  int
	got  []any
	done bool
}

func (d *directedNode) Init(id, degree int, src *xrand.Source) { d.deg = degree }

func (d *directedNode) Round(round int, inbox []any) ([]any, bool) {
	if round == 1 {
		out := make([]any, d.deg)
		for i := range out {
			out[i] = i * 100 // per-port payload
		}
		return out, false
	}
	d.got = append([]any(nil), inbox...)
	return nil, true
}

func TestRunPerNeighborMessages(t *testing.T) {
	g := graph.Path(3)
	_, nodes, err := Run(g, func() Node { return &directedNode{} }, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Middle node 1 has ports {0:node0, 1:node2}. Node 0 sent payload 0
	// on its only port (toward 1); node 2 likewise.
	mid := nodes[1].(*directedNode)
	if mid.got[0] != 0 || mid.got[1] != 0 {
		t.Fatalf("middle inbox = %v", mid.got)
	}
	// Node 0 receives node 1's port-0 payload (0); node 2 receives node
	// 1's port-1 payload (100).
	if nodes[0].(*directedNode).got[0] != 0 {
		t.Fatalf("node0 inbox = %v", nodes[0].(*directedNode).got)
	}
	if nodes[2].(*directedNode).got[0] != 100 {
		t.Fatalf("node2 inbox = %v", nodes[2].(*directedNode).got)
	}
}

type badOutboxNode struct{ deg int }

func (b *badOutboxNode) Init(id, degree int, src *xrand.Source) { b.deg = degree }
func (b *badOutboxNode) Round(round int, inbox []any) ([]any, bool) {
	return make([]any, b.deg+1), false
}

func TestRunRejectsWrongOutboxLength(t *testing.T) {
	if _, _, err := Run(graph.Path(2), func() Node { return &badOutboxNode{} }, 1, 0); err == nil {
		t.Fatal("oversized outbox accepted")
	}
}

type spinNode struct{}

func (spinNode) Init(int, int, *xrand.Source) {}
func (spinNode) Round(int, []any) ([]any, bool) {
	return nil, false
}

func TestRunRoundBudget(t *testing.T) {
	if _, _, err := Run(graph.Path(2), func() Node { return spinNode{} }, 1, 10); err == nil {
		t.Fatal("non-terminating algorithm did not error")
	}
}

func TestRunSeedsDistinctStreams(t *testing.T) {
	g := graph.New(2)
	vals := map[uint64]bool{}
	_, _, err := Run(g, func() Node { return &coinNode{vals: vals} }, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("nodes shared a random stream: %v", vals)
	}
}

type coinNode struct{ vals map[uint64]bool }

func (c *coinNode) Init(id, degree int, src *xrand.Source) { c.vals[src.Uint64()] = true }
func (c *coinNode) Round(int, []any) ([]any, bool)         { return nil, true }
