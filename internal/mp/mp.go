// Package mp is the classical synchronous message-passing substrate (the
// LOCAL model of Linial and Peleg): in every round each node may send a
// distinct, arbitrarily large message to each neighbor and perform
// arbitrary local computation. It is the "gold standard" model the paper
// contrasts the nFSM model against — per-neighbor messages, unbounded
// local state and unbounded message size are exactly the capabilities
// requirement (M4) forbids. The baselines of package baseline run here.
package mp

import (
	"fmt"

	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

// Node is one process of a message-passing algorithm. Implementations
// hold arbitrary local state.
type Node interface {
	// Init is called once before round 1 with the node's identifier, its
	// degree, and a private random stream.
	Init(id, degree int, src *xrand.Source)
	// Round executes one synchronous round. inbox[i] is the message the
	// i-th neighbor sent in the previous round (nil if none); the
	// returned outbox assigns a message per port (nil entries send
	// nothing; a nil outbox sends nothing at all). done reports that the
	// node has terminated with an output — a done node stops sending and
	// its Round is no longer called.
	Round(round int, inbox []any) (outbox []any, done bool)
}

// Run executes the algorithm given by the node factory on g until every
// node is done. It returns the number of rounds used and the final node
// objects (callers extract outputs by type assertion). maxRounds of zero
// selects 1<<20.
func Run(g *graph.Graph, newNode func() Node, seed uint64, maxRounds int) (int, []Node, error) {
	n := g.N()
	if maxRounds <= 0 {
		maxRounds = 1 << 20
	}
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = newNode()
		nodes[v].Init(v, g.Degree(v), xrand.NewStream(seed, 0x6d70, uint64(v)))
	}

	// revPort[v][i] is the port index of v at its i-th neighbor.
	revPort := make([][]int, n)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		revPort[v] = make([]int, len(nb))
		for i, u := range nb {
			revPort[v][i] = g.PortOf(u, v)
		}
	}

	inboxes := make([][]any, n)
	nextInboxes := make([][]any, n)
	for v := 0; v < n; v++ {
		inboxes[v] = make([]any, g.Degree(v))
		nextInboxes[v] = make([]any, g.Degree(v))
	}
	done := make([]bool, n)
	remaining := n

	for round := 1; round <= maxRounds; round++ {
		for v := range nextInboxes {
			for i := range nextInboxes[v] {
				nextInboxes[v][i] = nil
			}
		}
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			outbox, fin := nodes[v].Round(round, inboxes[v])
			if outbox != nil {
				if len(outbox) != g.Degree(v) {
					return 0, nil, fmt.Errorf("mp: node %d returned outbox of length %d, degree is %d",
						v, len(outbox), g.Degree(v))
				}
				for i, msg := range outbox {
					if msg != nil {
						nextInboxes[g.Neighbors(v)[i]][revPort[v][i]] = msg
					}
				}
			}
			if fin {
				done[v] = true
				remaining--
			}
		}
		inboxes, nextInboxes = nextInboxes, inboxes
		if remaining == 0 {
			return round, nodes, nil
		}
	}
	return 0, nil, fmt.Errorf("mp: %d nodes still running after %d rounds", remaining, maxRounds)
}

// Broadcast is a convenience for algorithms that send the same message on
// every port (the CONGEST-BC discipline).
func Broadcast(deg int, msg any) []any {
	out := make([]any, deg)
	for i := range out {
		out[i] = msg
	}
	return out
}
